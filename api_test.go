package psketch

import (
	"math/big"
	"strings"
	"testing"
)

func TestDetectTarget(t *testing.T) {
	tgt, err := DetectTarget(`harness void M() { fork (i; 1) { } }`)
	if err != nil || tgt != "M" {
		t.Fatalf("got %q, %v", tgt, err)
	}
	tgt, err = DetectTarget(`int s(int x) { return x; } int f(int x) implements s { return x; }`)
	if err != nil || tgt != "f" {
		t.Fatalf("got %q, %v", tgt, err)
	}
	if _, err := DetectTarget(`void f() { }`); err == nil {
		t.Fatal("expected no-target error")
	}
	if _, err := DetectTarget(`harness void A() { fork (i; 1) { } } harness void B() { fork (i; 1) { } }`); err == nil {
		t.Fatal("expected multi-target error")
	}
}

func TestCountAPI(t *testing.T) {
	n, err := Count(`
int g;
harness void M() {
	fork (i; 1) { }
	g = {| 1 | 2 | 3 |};
}
`, "M", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("|C| = %s", n)
	}
}

func TestModelCheckAPI(t *testing.T) {
	sk, err := Compile(`
int g = 0;
harness void M() {
	fork (i; 2) {
		if ({| true | false |}) {
			atomic { g = g + 1; }
		} else {
			int t = g;
			t = t + 1;
			g = t;
		}
	}
	assert g == 2;
}
`, "M", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := sk.ModelCheck(Candidate{0})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("atomic candidate must verify")
	}
	ok, cex, err := sk.ModelCheck(Candidate{1})
	if err != nil {
		t.Fatal(err)
	}
	if ok || !strings.Contains(cex, "assertion") {
		t.Fatalf("racy candidate: ok=%v cex=%q", ok, cex)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("void f() { x = 1; }", "f", Options{}); err == nil {
		t.Fatal("expected type error")
	}
	if _, err := Compile("void f() { }", "g", Options{}); err == nil {
		t.Fatal("expected unknown-target error")
	}
}

// The quadratic encoding must synthesize the same problems as the
// default insertion encoding.
func TestQuadraticEncodingEndToEnd(t *testing.T) {
	src := `
int a = 0;
int b = 0;
harness void M() {
	fork (i; 1) { }
	reorder {
		a = b + 1;
		b = 5;
	}
	assert a == 6;
}
`
	for _, enc := range []Encoding{EncodeInsertion, EncodeQuadratic} {
		res, err := Synthesize(src, "M", Options{Encoding: enc})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Resolved {
			t.Fatalf("encoding %v did not resolve", enc)
		}
		if !strings.Contains(res.Code, "b = 5;") {
			t.Fatalf("bad code:\n%s", res.Code)
		}
		// The chosen order must put b = 5 first.
		if strings.Index(res.Code, "b = 5;") > strings.Index(res.Code, "a = b + 1;") {
			t.Fatalf("wrong order:\n%s", res.Code)
		}
	}
}

// Enumerate must return distinct correct candidates (the §8.3.1
// multiple-solutions hook) and stop when the space is exhausted.
func TestEnumerate(t *testing.T) {
	sk, err := Compile(`
int a = 0;
harness void M() {
	fork (i; 1) { }
	a = {| 1 | 2 | 3 | 0 - 1 |};
	assert a > 0;
}
`, "M", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sk.Enumerate(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("found %d candidates, want 3", len(rs))
	}
	seen := map[string]bool{}
	for _, r := range rs {
		key := CandidateString(r.Candidate)
		if seen[key] {
			t.Fatalf("duplicate candidate %s", key)
		}
		seen[key] = true
	}
}

// ModelCheck counterexamples include a readable schedule.
func TestModelCheckTraceFormat(t *testing.T) {
	sk, err := Compile(`
int g = 0;
harness void M() {
	fork (i; 2) {
		int t = g;
		t = t + 1;
		g = t;
	}
	assert g == 2;
}
`, "M", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, cex, err := sk.ModelCheck(Candidate{})
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	for _, want := range []string{"counterexample:", "thread 0:", "thread 1:", "= counter"} {
		if want == "= counter" {
			continue // local names vary
		}
		if !strings.Contains(cex, want) {
			t.Fatalf("missing %q in:\n%s", want, cex)
		}
	}
}
