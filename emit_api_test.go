package psketch

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"psketch/internal/sketches"
)

// queueE1Sketch compiles the queueE1 Table 1 row ("ed(ee|dd)") with
// the given engine configuration. The row's verified space is small
// enough that MaxSolutions 64 always exhausts it to UNSAT, so the
// enumerated set — not just its size — is a whole-space fact.
func queueE1Sketch(t *testing.T, opts Options) *Sketch {
	t.Helper()
	bm := sketches.ByName("queueE1")
	if bm == nil {
		t.Fatal("queueE1 benchmark not registered")
	}
	src, err := bm.Source("ed(ee|dd)")
	if err != nil {
		t.Fatal(err)
	}
	d := bm.Opts("ed(ee|dd)")
	opts.IntWidth = d.IntWidth
	opts.LoopBound = d.LoopBound
	opts.MaxSolutions = 64
	sk, err := Compile(src, "Main", opts)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// candidateSet runs enumerate-all mode and returns the verified
// candidate set as a sorted slice of candidate strings.
func candidateSet(t *testing.T, opts Options) []string {
	t.Helper()
	rs, err := queueE1Sketch(t, opts).SynthesizeAll()
	if err != nil {
		t.Fatal(err)
	}
	set := make([]string, 0, len(rs))
	seen := map[string]bool{}
	for _, r := range rs {
		key := CandidateString(r.Candidate)
		if seen[key] {
			t.Fatalf("SynthesizeAll returned duplicate candidate %s", key)
		}
		seen[key] = true
		set = append(set, key)
	}
	sort.Strings(set)
	return set
}

// The enumerate-all verified set is a property of the sketch, not of
// the engine configuration: sequential, parallel-portfolio, and
// cube-and-conquer runs must all converge on the same set of blocked
// solutions before hitting UNSAT. Blocking clauses are whole-space
// facts, so this holds under cube assumptions too.
func TestEnumerateAllInvariantAcrossConfigs(t *testing.T) {
	base := candidateSet(t, Options{Parallelism: 1})
	if len(base) == 0 {
		t.Fatal("queueE1 ed(ee|dd) enumerated no verified candidates")
	}
	configs := map[string]Options{
		"parallel-4": {Parallelism: 4},
		"cubes-4":    {Parallelism: 2, Cubes: 4},
	}
	for name, opts := range configs {
		got := candidateSet(t, opts)
		if fmt.Sprint(got) != fmt.Sprint(base) {
			t.Errorf("%s: enumerated set %v, sequential baseline %v", name, got, base)
		}
	}
}

// SynthesizeEmit writes one compilable package per distinct verified
// candidate plus a manifest that RankEmitted can reload.
func TestSynthesizeEmitManifest(t *testing.T) {
	dir := t.TempDir()
	sk := queueE1Sketch(t, Options{Parallelism: 1})
	rs, dirs, err := sk.SynthesizeEmit(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 || len(rs) != len(dirs) {
		t.Fatalf("got %d results, %d dirs", len(rs), len(dirs))
	}
	for _, d := range dirs {
		for _, f := range []string{"ds.go", "bench.go", "ds_test.go", "go.mod"} {
			if _, err := os.Stat(filepath.Join(d, f)); err != nil {
				t.Errorf("emitted package missing %s: %v", f, err)
			}
		}
	}
	man, err := ReadEmitManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Sketch == "" || len(man.Candidates) != len(dirs) {
		t.Fatalf("manifest: sketch %q, %d candidates, want %d", man.Sketch, len(man.Candidates), len(dirs))
	}
}
