// Package psketch is a from-scratch reproduction of PSKETCH, the
// concurrent program-sketching synthesizer of "Sketching Concurrent
// Data Structures" (Solar-Lezama, Jones, Bodík; PLDI 2008).
//
// A sketch is a partial program: holes (??), regular-expression
// expression generators ({| ... |}), and reorder blocks mark the parts
// the programmer left open. Given a correctness harness — assertions
// checked over all inputs and all thread interleavings, plus an
// optional `implements` reference implementation — Synthesize completes
// the sketch by counterexample-guided inductive synthesis: a CDCL SAT
// solver proposes candidates, an explicit-state model checker verifies
// them across every interleaving, and failing executions are projected
// back onto the whole candidate space as inductive constraints.
//
// Quickstart:
//
//	res, err := psketch.Synthesize(src, "Harness", psketch.Options{})
//	if err != nil { ... }
//	if res.Resolved {
//	    fmt.Println(res.Code) // the completed implementation
//	}
package psketch

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math/big"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"psketch/internal/core"
	"psketch/internal/cube"
	"psketch/internal/desugar"
	"psketch/internal/drat"
	"psketch/internal/emit"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/obs"
	"psketch/internal/parser"
	"psketch/internal/printer"
	"psketch/internal/project"
	"psketch/internal/state"
)

// Encoding selects the reorder-block translation of §7.2.
type Encoding = desugar.Encoding

// The reorder encodings.
const (
	EncodeInsertion = desugar.EncodeInsertion
	EncodeQuadratic = desugar.EncodeQuadratic
)

// Options configure the bounded machine and the synthesis loop.
type Options struct {
	// IntWidth is the bit width of int values (default 5).
	IntWidth int
	// HoleWidth is the default bit width of ?? holes (default 3).
	HoleWidth int
	// LoopBound unrolls while loops (default 4); candidates must
	// terminate within it (liveness as bounded safety, §6).
	LoopBound int
	// MaxRepeat bounds repeat(??) replication (default 8).
	MaxRepeat int
	// Encoding picks the reorder encoding (default insertion).
	Encoding Encoding
	// MaxIterations bounds the CEGIS loop (default 256).
	MaxIterations int
	// MaxSolutions bounds enumerate-all mode (SynthesizeAll and the
	// -emit-dir/-rank pipeline): verified candidates are blocked and
	// the space re-solved until UNSAT or this many solutions
	// (default 8).
	MaxSolutions int
	// MCMaxStates bounds the model checker (default 4,000,000).
	MCMaxStates int
	// TracesPerIteration asks the verifier for several counterexample
	// traces per CEGIS iteration (default 1, the paper's behaviour).
	// Larger values speed up deadlock-heavy spaces considerably.
	TracesPerIteration int
	// Parallelism sizes the SAT portfolio and the model checker's
	// worker pool (default runtime.GOMAXPROCS(0)); 1 selects the fully
	// deterministic sequential engine. See ARCHITECTURE.md.
	Parallelism int
	// NoPOR disables the model checker's footprint-based partial-order
	// reduction (on by default; see ARCHITECTURE.md for the reduction
	// knobs and their soundness cross-checks).
	NoPOR bool
	// NoSymmetry disables the model checker's thread-symmetry (orbit)
	// reduction (on by default; see ARCHITECTURE.md).
	NoSymmetry bool
	// MCCompress selects the model checker's visited-set representation:
	// "" (exact fingerprint table, the default), "collapse" (exact,
	// component-interned), or "bitstate" (lossy supertrace; verdicts lose
	// their completeness guarantee). Non-empty modes force the verifier
	// sequential.
	MCCompress string
	// NoPipeline disables the speculative solve/verify overlap of the
	// concurrent CEGIS engine (on by default at Parallelism > 1).
	NoPipeline bool
	// NoShareClauses disables learned-clause exchange between the SAT
	// portfolio's workers (on by default at Parallelism > 1) and, under
	// Cubes > 1, between cubes.
	NoShareClauses bool
	// Cubes > 1 switches Synthesize to cube-and-conquer CEGIS: the
	// candidate space is split on high-fanout hole bits into that many
	// disjoint cubes (rounded down to a power of two), independent
	// engines race them, the first verified completion cancels the
	// rest, and per-cube exhaustions merge into a whole-space NO (one
	// merged DRAT certificate under Proof). Parallelism is divided
	// among the cubes: each engine runs with max(1,
	// Parallelism/Cubes)-way inner parallelism. 0 and 1 run the
	// ordinary single-engine loop, bit-for-bit unchanged.
	Cubes int
	// CubeWorkers bounds how many cube engines run concurrently under
	// Cubes > 1 (default 0 = one per cube); finished workers steal
	// unstarted cubes from the queue.
	CubeWorkers int
	// Proof enables DRAT proof logging in the SAT backends and replays
	// every committed UNSAT verdict through the internal/drat backward
	// checker, so a "cannot be resolved" answer carries a verified
	// certificate. Adds solver and memory overhead; see EXPERIMENTS.md.
	Proof bool
	// Cancel, when set and stored true by another goroutine, aborts
	// Synthesize and ModelCheck cooperatively (solves and searches
	// unwind, workers are joined, and an error is returned).
	Cancel *atomic.Bool
	// Verbose receives progress lines when non-nil.
	Verbose func(format string, args ...any)
	// Trace, when set, receives hierarchical spans from every layer of
	// the run (CEGIS iterations, SAT solves, model-checker searches,
	// projection encodings). Build one with obs.NewTracer over a journal
	// sink, a flight-recorder ring, or both; nil disables tracing at
	// zero cost. See internal/obs and cmd/psktrace.
	Trace *obs.Tracer
	// TraceParent is the span new root spans parent to (0 = top level).
	TraceParent obs.SpanID
	// Metrics, when set, is the registry the run's counters live in —
	// expose it live via obs.ServeDebug, or snapshot it into a journal
	// trailer. Stats is computed from the same counters either way.
	Metrics *obs.Metrics
	// HeapSampleEvery samples the heap high-water mark every N CEGIS
	// iterations. runtime.ReadMemStats stops the world, so the default
	// 0 samples only once per Synthesize; pskbench sets 1 to keep the
	// historical per-iteration MemMiB measurement.
	HeapSampleEvery int
	// Warm, when set, is a cross-request warm-state store (build one
	// with NewWarmStore): Synthesize checks the sketch's encoding
	// context — hash-consed builder, hole inputs, projection cache —
	// out of it before running and returns the grown context after, so
	// repeated synthesis of the same sketch (psketchd's workload)
	// starts with earlier runs' projection prefixes memoized. Keyed by
	// SketchHash; concurrent runs of one sketch are safe (the checkout
	// is exclusive — losers build cold). Ignored under Cubes > 1 and
	// for sequential sketches.
	Warm *WarmStore
}

func (o Options) desugarOpts() desugar.Options {
	return desugar.Options{
		IntWidth:  o.IntWidth,
		HoleWidth: o.HoleWidth,
		LoopBound: o.LoopBound,
		MaxRepeat: o.MaxRepeat,
		Encoding:  o.Encoding,
	}.Defaults()
}

// Stats reports the work done by a synthesis run (the Figure 9
// columns).
type Stats = core.Stats

// ErrCanceled is returned by Synthesize when Options.Cancel fired
// before the loop converged (compare with errors.Is — cube and
// model-checker cancellations unwrap to it too).
var ErrCanceled = core.ErrCanceled

// WarmStore is the cross-request warm-state cache behind Options.Warm:
// idle encoding contexts keyed by SketchHash, bounded by estimated
// retained bytes, evicted least-recently-used first. Safe for
// concurrent use; hit/miss/eviction counters register as warm.* in the
// metrics registry passed to NewWarmStore.
type WarmStore = project.Store

// WarmStats is a point-in-time view of a WarmStore's effectiveness.
type WarmStats = project.StoreStats

// NewWarmStore builds a warm-state store bounded to maxBytes of
// estimated retained memory (<= 0 for unbounded), registering its
// counters in m (nil for none).
func NewWarmStore(maxBytes int64, m *obs.Metrics) *WarmStore {
	return project.NewStore(maxBytes, m)
}

// SketchHash returns the stable warm-store key for (src, target, opts):
// it folds in the sketch source, the synthesis target, and every
// desugar-level option that shapes the candidate-space encoding.
// Engine-level options (parallelism, budgets, proof, tracing) do not
// contribute — they never change the encoding, so runs differing only
// in them share warm state soundly.
func SketchHash(src, target string, opts Options) string {
	d := opts.desugarOpts()
	h := sha256.New()
	fmt.Fprintf(h, "v1|%d|%d|%d|%d|%d|%s|", d.IntWidth, d.HoleWidth, d.LoopBound, d.MaxRepeat, d.Encoding, target)
	io.WriteString(h, src)
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Sketch) coreOpts() core.Options {
	return core.Options{
		Warm:               s.opts.Warm,
		WarmKey:            s.warmKey,
		MaxIterations:      s.opts.MaxIterations,
		MaxSolutions:       s.opts.MaxSolutions,
		MCMaxStates:        s.opts.MCMaxStates,
		TracesPerIteration: s.opts.TracesPerIteration,
		Parallelism:        s.opts.Parallelism,
		NoPOR:              s.opts.NoPOR,
		NoSymmetry:         s.opts.NoSymmetry,
		MCCompress:         s.opts.MCCompress,
		NoPipeline:         s.opts.NoPipeline,
		NoShareClauses:     s.opts.NoShareClauses,
		Proof:              s.opts.Proof,
		Cancel:             s.opts.Cancel,
		Verbose:            s.opts.Verbose,
		Trace:              s.opts.Trace,
		TraceParent:        s.opts.TraceParent,
		Metrics:            s.opts.Metrics,
		HeapSampleEvery:    s.opts.HeapSampleEvery,
	}
}

// Candidate is a concrete assignment to every hole of a sketch.
type Candidate = desugar.Candidate

// Sketch is a compiled synthesis problem.
type Sketch struct {
	sk      *desugar.Sketch
	opts    Options
	warmKey string
}

// Compile parses, type-checks and desugars the sketch for the given
// harness (or `implements` function).
func Compile(src, target string, opts Options) (*Sketch, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	sk, err := desugar.Desugar(prog, target, opts.desugarOpts())
	if err != nil {
		return nil, err
	}
	out := &Sketch{sk: sk, opts: opts}
	if opts.Warm != nil {
		out.warmKey = SketchHash(src, target, opts)
	}
	return out, nil
}

// CandidateCount returns |C|, the number of syntactically distinct
// candidates the sketch denotes (Table 1 counting rules).
func (s *Sketch) CandidateCount() *big.Int { return new(big.Int).Set(s.sk.Count) }

// Holes returns the number of synthesis unknowns after desugaring.
func (s *Sketch) Holes() int { return len(s.sk.Holes) }

// Result is a synthesis outcome.
type Result struct {
	// Resolved reports whether a correct completion exists. A false
	// value is a definitive "NO" for the bounded machine: every
	// candidate was refuted (as for the lazyset ar(ar|ar) benchmark).
	Resolved bool
	// Candidate is the found hole assignment.
	Candidate Candidate
	// Code is the resolved sketch, pretty-printed with all choices
	// substituted and the chosen statement order restored.
	Code string
	// Stats reports iterations, per-phase times and memory.
	Stats Stats
	// Certificate, under Options.Proof, is the verified DRAT
	// certificate backing the run's final UNSAT verdict (candidate-
	// space exhaustion, or the sequential verifier's final check). Nil
	// when proof logging is off or no SAT verdict closed the run. For
	// cube runs this is the MERGED whole-space certificate.
	Certificate *drat.Certificate
	// Cube reports the per-cube breakdown of a cube-and-conquer run
	// (Options.Cubes > 1); nil otherwise.
	Cube *cube.Result
}

// Synthesize runs CEGIS on a compiled sketch (cube-and-conquer when
// Options.Cubes > 1).
func (s *Sketch) Synthesize() (*Result, error) {
	if s.opts.Cubes > 1 {
		r, err := cube.Synthesize(s.sk, s.cubeOpts())
		if err != nil {
			return nil, err
		}
		return s.cubeResult(r)
	}
	syn, err := core.New(s.sk, s.coreOpts())
	if err != nil {
		return nil, err
	}
	// Return the encoding context to the warm store whatever happens —
	// after a cancellation or error the builder and projection cache are
	// still consistent (workers are joined before Synthesize returns),
	// and the next run of this sketch should start warm regardless.
	defer syn.Release()
	r, err := syn.Synthesize()
	if err != nil {
		return nil, err
	}
	out := &Result{Resolved: r.Resolved, Candidate: r.Candidate, Stats: r.Stats, Certificate: r.Certificate}
	if r.Resolved {
		code, err := printer.Program(s.sk, r.Candidate)
		if err != nil {
			return nil, err
		}
		out.Code = code
	}
	return out, nil
}

// cubeOpts derives the cube coordinator options: proof moves from the
// per-cube engines to the coordinator's merged recorder, and the
// requested parallelism is divided among the cubes.
func (s *Sketch) cubeOpts() cube.Options {
	copts := s.coreOpts()
	copts.Proof = false
	// Cube engines race concurrently and are owned by internal/cube, so
	// none of them can hold the sketch's exclusive warm context.
	copts.Warm, copts.WarmKey = nil, ""
	total := copts.Parallelism
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	cubes := 2
	for cubes*2 <= s.opts.Cubes {
		cubes *= 2
	}
	copts.Parallelism = total / cubes
	if copts.Parallelism < 1 {
		copts.Parallelism = 1
	}
	return cube.Options{
		Cubes:   s.opts.Cubes,
		Workers: s.opts.CubeWorkers,
		Proof:   s.opts.Proof,
		Core:    copts,
	}
}

// cubeResult maps a merged cube outcome onto the public Result.
func (s *Sketch) cubeResult(r *cube.Result) (*Result, error) {
	out := &Result{Resolved: r.Resolved, Candidate: r.Candidate, Stats: r.Stats,
		Certificate: r.Certificate, Cube: r}
	if r.Resolved {
		code, err := printer.Program(s.sk, r.Candidate)
		if err != nil {
			return nil, err
		}
		out.Code = code
	}
	return out, nil
}

// ResolveFunc pretty-prints one function under a candidate.
func (s *Sketch) ResolveFunc(cand Candidate, fn string) (string, error) {
	return printer.Resolve(s.sk, cand, fn)
}

// Synthesize compiles and synthesizes in one call.
func Synthesize(src, target string, opts Options) (*Result, error) {
	sk, err := Compile(src, target, opts)
	if err != nil {
		return nil, err
	}
	return sk.Synthesize()
}

// ModelCheck verifies one concrete candidate of the sketch over all
// thread interleavings, returning nil when it is correct and a
// counterexample description otherwise.
func (s *Sketch) ModelCheck(cand Candidate) (ok bool, counterexample string, err error) {
	prog, err := ir.Lower(s.sk)
	if err != nil {
		return false, "", err
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		return false, "", err
	}
	res, err := mc.Check(layout, cand, mc.Options{
		MaxStates: s.opts.MCMaxStates, Parallelism: s.opts.Parallelism, NoPOR: s.opts.NoPOR,
		NoSymmetry: s.opts.NoSymmetry, Compress: s.opts.MCCompress,
		Cancel: s.opts.Cancel,
		Tracer: s.opts.Trace, ParentSpan: s.opts.TraceParent,
	})
	if err != nil {
		return false, "", err
	}
	if res.OK {
		return true, "", nil
	}
	return false, res.Trace.Format(prog), nil
}

// Count parses the program and returns Table 1's |C| for the target.
func Count(src, target string, opts Options) (*big.Int, error) {
	sk, err := Compile(src, target, opts)
	if err != nil {
		return nil, err
	}
	return sk.CandidateCount(), nil
}

// String renders a candidate compactly for logs.
func CandidateString(c Candidate) string { return fmt.Sprint([]int64(c)) }

// DetectTarget finds the synthesis entry point of a source file: the
// unique harness function, or the unique function with an implements
// clause.
func DetectTarget(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	var targets []string
	for _, f := range prog.Funcs {
		if f.Harness || f.Implements != "" {
			targets = append(targets, f.Name)
		}
	}
	switch len(targets) {
	case 0:
		return "", fmt.Errorf("psketch: no harness or implements function found")
	case 1:
		return targets[0], nil
	}
	return "", fmt.Errorf("psketch: multiple synthesis targets (%v); pick one with -target", targets)
}

// ServeCubes runs the coordinator side of a multi-process
// cube-and-conquer synthesis: it splits the sketch's candidate space
// into Options.Cubes cubes, listens on addr (localhost JSON-line
// protocol, see internal/cube), dispatches cubes to joining psketch
// -join processes alongside localWorkers in-process engines, and
// returns the merged verdict. Under Options.Proof a NO verdict carries
// the merged, replayed DRAT certificate.
func ServeCubes(addr, src, target string, localWorkers int, opts Options) (*Result, error) {
	sk, err := Compile(src, target, opts)
	if err != nil {
		return nil, err
	}
	copts := sk.cubeOpts()
	copts.Workers = localWorkers
	r, err := cube.Serve(addr, cube.RemoteOptions{
		Src: src, Target: target, Desugar: opts.desugarOpts(),
	}, copts, opts.Verbose)
	if err != nil {
		return nil, err
	}
	return sk.cubeResult(r)
}

// JoinCubes connects to a ServeCubes coordinator at addr and runs
// cubes it is handed until the coordinator releases it. The sketch
// arrives over the wire; nothing is configured locally.
func JoinCubes(addr string, verbose func(format string, args ...any)) error {
	return cube.Join(addr, verbose)
}

// Enumerate returns up to max distinct correct completions of the
// sketch (the §8.3.1 autotuning hook: synthesize many candidates, then
// pick the best by measurement).
func (s *Sketch) Enumerate(max int) ([]*Result, error) {
	syn, err := core.New(s.sk, s.coreOpts())
	if err != nil {
		return nil, err
	}
	defer syn.Release()
	rs, err := syn.Enumerate(max)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, r := range rs {
		res := &Result{Resolved: true, Candidate: r.Candidate, Stats: r.Stats}
		code, err := printer.Program(s.sk, r.Candidate)
		if err != nil {
			return nil, err
		}
		res.Code = code
		out = append(out, res)
	}
	return out, nil
}

// SynthesizeAll is enumerate-all-solutions mode: verified candidates
// are blocked and the space re-solved until UNSAT, bounded by
// Options.MaxSolutions. Under Options.Cubes > 1 each re-solve is its
// own cube-and-conquer run with the found candidates pre-blocked
// (blocking clauses are whole-space facts, so they stay sound under
// cube assumptions) — the returned candidate set is invariant under
// parallelism and cube settings, only its order may differ.
func (s *Sketch) SynthesizeAll() ([]*Result, error) {
	max := s.opts.MaxSolutions
	if max <= 0 {
		max = 8
	}
	if s.opts.Cubes <= 1 {
		return s.Enumerate(max)
	}
	var out []*Result
	var blocked []Candidate
	for len(out) < max {
		co := s.cubeOpts()
		co.Core.Block = append([]Candidate(nil), blocked...)
		r, err := cube.Synthesize(s.sk, co)
		if err != nil {
			return out, err
		}
		res, err := s.cubeResult(r)
		if err != nil {
			return out, err
		}
		if !res.Resolved {
			break
		}
		out = append(out, res)
		blocked = append(blocked, res.Candidate)
	}
	return out, nil
}

// EmittedPackage is one candidate lowered to a compilable Go package
// (see internal/emit for the lowering map and its soundness caveat).
type EmittedPackage = emit.Package

// RankOptions configure the throughput-ranking pass over emitted
// candidates.
type RankOptions = emit.RankOptions

// Measurement is one emitted candidate's measured throughput.
type Measurement = emit.Measurement

// EmitManifest is the saved verdict -emit-dir leaves at the emit root.
type EmitManifest = emit.Manifest

// ReadEmitManifest loads the manifest.json a SynthesizeEmit run saved
// under root.
func ReadEmitManifest(root string) (*EmitManifest, error) {
	return emit.ReadManifest(root)
}

// EmitGo lowers one verified candidate into a compilable Go package:
// real sync/atomic operations, real goroutines, the structure's ops as
// exported methods, plus a generated load harness and race-detector
// stress test.
func (s *Sketch) EmitGo(cand Candidate, name string) (*EmittedPackage, error) {
	return emit.Emit(s.sk, cand, emit.Options{
		Name:    name,
		Tracer:  s.opts.Trace,
		Parent:  s.opts.TraceParent,
		Metrics: s.opts.Metrics,
	})
}

// SynthesizeEmit runs enumerate-all mode, deduplicates completions that
// resolve to identical code (distinct hole assignments can fold to the
// same program), writes one Go package per distinct candidate under
// dir (cand00, cand01, ...) and saves dir/manifest.json as the verdict
// record cmd/pskemit can re-rank from. It returns the kept results and
// their package directories, in enumeration order.
func (s *Sketch) SynthesizeEmit(dir string) ([]*Result, []string, error) {
	rs, err := s.SynthesizeAll()
	if err != nil {
		return nil, nil, err
	}
	man := &EmitManifest{}
	if s.sk.Harness != nil {
		man.Sketch = s.sk.Harness.Name
	}
	seen := map[string]bool{}
	var kept []*Result
	var dirs []string
	for _, r := range rs {
		if seen[r.Code] {
			continue
		}
		seen[r.Code] = true
		name := fmt.Sprintf("cand%02d", len(kept))
		p, err := s.EmitGo(r.Candidate, name)
		if err != nil {
			return nil, nil, err
		}
		cdir := filepath.Join(dir, name)
		if err := p.WriteDir(cdir); err != nil {
			return nil, nil, err
		}
		man.Candidates = append(man.Candidates, emit.ManifestEntry{
			Name: name, Candidate: r.Candidate, Code: r.Code, Ops: p.Ops,
		})
		kept = append(kept, r)
		dirs = append(dirs, cdir)
	}
	if err := emit.WriteManifest(dir, man); err != nil {
		return nil, nil, err
	}
	return kept, dirs, nil
}

// SynthesizeRanked is the full pipeline: enumerate all verified
// completions, emit each distinct one as a Go package under dir, build
// and run every package's load harness, and return the results ordered
// by measured ops/sec (fastest first) with per-candidate throughput in
// Stats.Throughput. The measurements are also persisted into the
// manifest. Candidates that fail to build or run sort last with
// Stats.Throughput zero.
func (s *Sketch) SynthesizeRanked(dir string, ropts RankOptions) ([]*Result, []Measurement, error) {
	kept, dirs, err := s.SynthesizeEmit(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(kept) == 0 {
		return nil, nil, nil
	}
	if ropts.Tracer == nil {
		ropts.Tracer = s.opts.Trace
		ropts.Parent = s.opts.TraceParent
	}
	if ropts.Metrics == nil {
		ropts.Metrics = s.opts.Metrics
	}
	ms, err := emit.Rank(dirs, ropts)
	if err != nil {
		return kept, nil, err
	}
	byDir := map[string]*Result{}
	for i, d := range dirs {
		byDir[d] = kept[i]
	}
	ordered := make([]*Result, 0, len(kept))
	for _, m := range ms {
		r := byDir[m.Dir]
		if r == nil {
			continue
		}
		r.Stats.Throughput = m.OpsPerSec
		ordered = append(ordered, r)
	}
	if man, err := emit.ReadManifest(dir); err == nil {
		man.Ranked = ms
		_ = emit.WriteManifest(dir, man)
	}
	return ordered, ms, nil
}

// RankEmitted re-ranks previously emitted candidate directories (a
// saved -emit-dir verdict) by measured throughput without
// re-synthesizing — cmd/pskemit's -dir mode.
func RankEmitted(root string, ropts RankOptions) (*EmitManifest, []Measurement, error) {
	man, err := emit.ReadManifest(root)
	if err != nil {
		return nil, nil, err
	}
	ms, err := emit.Rank(man.CandidateDirs(root), ropts)
	if err != nil {
		return man, nil, err
	}
	man.Ranked = ms
	_ = emit.WriteManifest(root, man)
	return man, ms, nil
}
