package psketch

import "testing"

// Force the CEGIS loop through counterexample traces: the first SAT
// model (all zero bits) picks the racy branch, which must be refuted by
// a trace, and learning must converge on the atomic one.
func TestConcurrentLearning(t *testing.T) {
	src := `
int counter = 0;

void Incr() {
	if ({| true | false |}) {
		int t = counter;
		t = t + 1;
		counter = t;
	} else {
		atomic { counter = counter + 1; }
	}
}

harness void Main() {
	fork (i; 2) {
		Incr();
		Incr();
	}
	assert counter == 4;
}
`
	res, err := Synthesize(src, "Main", Options{Verbose: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("expected resolution")
	}
	if res.Stats.Iterations < 2 {
		t.Fatalf("expected at least 2 iterations, got %d", res.Stats.Iterations)
	}
	t.Logf("iterations=%d code:\n%s", res.Stats.Iterations, res.Code)
}

// An unresolvable sketch must come back NO (UNSAT) rather than loop.
func TestConcurrentUnresolvable(t *testing.T) {
	src := `
int counter = 0;

harness void Main() {
	fork (i; 2) {
		int t = counter;
		t = t + {| 1 | 2 |};
		counter = t;
	}
	assert counter == 2;
}
`
	res, err := Synthesize(src, "Main", Options{Verbose: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved {
		t.Fatalf("expected NO, got candidate %v\n%s", res.Candidate, res.Code)
	}
	t.Logf("unresolvable after %d iterations", res.Stats.Iterations)
}
