package psketch

import (
	"strings"
	"sync"
	"testing"

	"psketch/internal/circuit"
	"psketch/internal/desugar"
	"psketch/internal/drat"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/oracle"
	"psketch/internal/parser"
	"psketch/internal/project"
	"psketch/internal/sat"
	"psketch/internal/sketches"
	"psketch/internal/state"
	"psketch/internal/sym"
)

// Seed sketches for FuzzParse, covering every Table 1 construct: holes,
// generators, reorder, fork, atomics (plain, conditional, lock sugar),
// and #define. The same sources are checked in under
// testdata/fuzz/FuzzParse/.
var parseSeeds = []string{
	`
int g = 0;
harness void M() {
	fork (i; 2) {
		atomic { g = g + ??(2); }
	}
	assert g == 2;
}
`,
	`
#define N 2
int c = 0;
harness void M() {
	fork (i; N) {
		atomic (c == i) { c = c + 1; }
	}
	assert c == N;
}
`,
	`
int a = 0;
int b = 0;
harness void M() {
	fork (i; 2) {
		reorder {
			a = a + 1;
			b = {| a | a + 1 | 0 |};
		}
	}
}
`,
	`
struct Node { int val; Node next; }
int g = 0;
harness void M() {
	fork (i; 2) {
		if ({| true | false |}) {
			int t = g;
			t = t + 1;
			g = t;
		} else {
			atomic { g = g + 1; }
		}
	}
	assert g == 2;
}
`,
	`
int l = 0;
int x = 0;
harness void M() {
	fork (i; 2) {
		lock(l);
		x = x + 1;
		unlock(l);
	}
	assert x == 2;
}
`,
	`
int spec(int x) { return 3 * x + 5; }
int f(int x) implements spec { return ??(2) * x + ??(3); }
`,
}

// FuzzParse feeds arbitrary source through the whole compilation front
// half: parse, desugar each synthesis target, lower to the step IR and
// lay out the state vector. Nothing may panic or hang; errors are the
// expected outcome for malformed inputs.
func FuzzParse(f *testing.F) {
	for _, s := range parseSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		prog, err := parser.Parse(src)
		if err != nil {
			return
		}
		// Loop unrolling multiplies body size per nesting level; deeply
		// nested loops are a size bomb, not a parser bug.
		if strings.Count(src, "while")+strings.Count(src, "repeat") > 6 {
			return
		}
		opts := desugar.Options{IntWidth: 4, HoleWidth: 2, LoopBound: 2, MaxRepeat: 3}.Defaults()
		for _, fn := range prog.Funcs {
			if !fn.Harness && fn.Implements == "" {
				continue
			}
			// Desugar mutates nothing it shouldn't, but reparse per
			// target so each run starts from a pristine AST.
			p2, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("reparse of accepted input failed: %v", err)
			}
			sk, err := desugar.Desugar(p2, fn.Name, opts)
			if err != nil {
				continue
			}
			ir2, err := ir.Lower(sk)
			if err != nil {
				continue
			}
			if _, err := state.NewLayout(ir2); err != nil {
				continue
			}
		}
	})
}

// decodeCNF maps fuzz bytes onto a small CNF: byte 0 sets the variable
// count, a zero byte ends a clause, any other byte is a literal.
func decodeCNF(data []byte) (nv int, clauses [][]sat.Lit) {
	if len(data) == 0 {
		return 2, nil
	}
	nv = 2 + int(data[0]%7)
	var cur []sat.Lit
	for _, b := range data[1:] {
		if len(clauses) >= 48 {
			break
		}
		if b == 0 {
			clauses = append(clauses, cur)
			cur = nil
			continue
		}
		cur = append(cur, sat.MkLit(int(b>>1)%nv, b&1 == 1))
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur)
	}
	return nv, clauses
}

// bruteCNF decides satisfiability by model enumeration (nv <= 8 here).
func bruteCNF(nv int, clauses [][]sat.Lit) bool {
	for m := 0; m < 1<<uint(nv); m++ {
		ok := true
		for _, c := range clauses {
			if len(c) == 0 {
				return false
			}
			good := false
			for _, l := range c {
				if (m>>uint(l.Var()))&1 == 1 != l.Neg() {
					good = true
					break
				}
			}
			if !good {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// FuzzCNF cross-checks the CDCL solver and the racing portfolio
// against model enumeration on arbitrary small CNFs, and replays every
// UNSAT verdict through the DRAT checker.
func FuzzCNF(f *testing.F) {
	f.Add([]byte{3, 2, 0, 3, 0, 5, 0, 4, 0})             // tiny UNSAT-ish
	f.Add([]byte{0})                                     // empty formula
	f.Add([]byte{6, 2, 4, 0, 3, 5, 0, 7, 9, 0})          // 3 clauses, 4 vars
	f.Add([]byte{8, 2, 0, 2, 0})                         // duplicate units
	f.Add([]byte{4, 2, 3, 0, 4, 5, 0, 2, 5, 0, 3, 4, 0}) // 2-var square
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip("oversized input")
		}
		nv, clauses := decodeCNF(data)
		want := bruteCNF(nv, clauses)

		s := sat.New()
		r := drat.NewRecorder()
		s.SetProof(r)
		p := sat.NewPortfolio(3)
		pr := drat.NewRecorder()
		p.SetProof(pr)
		for i := 0; i < nv; i++ {
			s.NewVar()
			p.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
			p.AddClause(c...)
		}
		if got := s.Solve(); got != want {
			t.Fatalf("solver says %v, enumeration says %v (nv=%d clauses=%v)", got, want, nv, clauses)
		}
		if got := p.Solve(); got != want {
			t.Fatalf("portfolio says %v, enumeration says %v (nv=%d clauses=%v)", got, want, nv, clauses)
		}
		if !want {
			if _, err := r.Certificate(nil).Verify(); err != nil {
				t.Fatalf("solo UNSAT certificate rejected: %v", err)
			}
			if _, err := pr.Certificate(nil).Verify(); err != nil {
				t.Fatalf("portfolio UNSAT certificate rejected: %v", err)
			}
		}
	})
}

// projFix holds the once-compiled projection fuzz instance: the
// queueE1 sketch (4 candidates) and, per candidate, the reference
// checker's ground-truth verdict.
type projFix struct {
	sk     *desugar.Sketch
	prog   *ir.Program
	layout *state.Layout
	truth  [4]bool
	err    error
}

var (
	projOnce sync.Once
	projF    projFix
)

func projFixture() *projFix {
	projOnce.Do(func() {
		b := sketches.QueueE1()
		src, err := b.Source("ed(ed|ed)")
		if err != nil {
			projF.err = err
			return
		}
		prog, err := parser.Parse(src)
		if err != nil {
			projF.err = err
			return
		}
		sk, err := desugar.Desugar(prog, "Main", b.Opts("ed(ed|ed)"))
		if err != nil {
			projF.err = err
			return
		}
		lowered, err := ir.Lower(sk)
		if err != nil {
			projF.err = err
			return
		}
		layout, err := state.NewLayout(lowered)
		if err != nil {
			projF.err = err
			return
		}
		projF.sk, projF.prog, projF.layout = sk, lowered, layout
		for c := 0; c < 4; c++ {
			cand := desugar.Candidate{int64(c & 1), int64(c >> 1)}
			v, err := oracle.CheckExhaustive(layout, cand, 0)
			if err != nil {
				projF.err = err
				return
			}
			projF.truth[c] = v.OK
		}
	})
	return &projF
}

// FuzzProjection drives the model checker over the queueE1 candidate
// space under fuzz-chosen engine configurations and holds every trace
// projection to its contract: the entry list satisfies the structural
// invariants, and no projected constraint refutes a candidate the
// exhaustive reference checker proved correct (the PR 3 soundness-bug
// class).
func FuzzProjection(f *testing.F) {
	f.Add(byte(1), byte(1), false, false)
	f.Add(byte(2), byte(4), true, true)
	f.Add(byte(3), byte(2), true, false)
	f.Add(byte(0), byte(3), false, true)
	f.Fuzz(func(t *testing.T, candByte, tracesByte byte, noPOR, noFusion bool) {
		fix := projFixture()
		if fix.err != nil {
			t.Fatal(fix.err)
		}
		ci := int(candByte % 4)
		cand := desugar.Candidate{int64(ci & 1), int64(ci >> 1)}
		res, err := mc.Check(fix.layout, cand, mc.Options{
			MaxTraces:     1 + int(tracesByte%4),
			NoPOR:         noPOR,
			NoLocalFusion: noFusion,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OK != fix.truth[ci] {
			t.Fatalf("mc verdict %v for candidate %v, reference says %v", res.OK, cand, fix.truth[ci])
		}
		if res.OK {
			return
		}
		b := circuit.NewBuilder()
		holes := sym.HoleInputs(b, fix.sk)
		assign := func(c desugar.Candidate) map[circuit.Lit]bool {
			m := map[circuit.Lit]bool{}
			for i, w := range holes {
				for j, lit := range w {
					m[lit] = (c.Value(i)>>uint(j))&1 == 1
				}
			}
			return m
		}
		for _, tr := range res.Traces {
			entries := project.Build(fix.prog, tr)
			if err := project.Validate(fix.prog, entries); err != nil {
				t.Fatalf("projection invariant broken: %v", err)
			}
			fail, err := project.Encode(b, fix.layout, holes, entries)
			if err != nil {
				t.Fatal(err)
			}
			for g := 0; g < 4; g++ {
				if !fix.truth[g] {
					continue
				}
				good := desugar.Candidate{int64(g & 1), int64(g >> 1)}
				if b.Eval(assign(good), fail) {
					t.Fatalf("projection of %v's trace refutes the verified candidate %v", cand, good)
				}
			}
		}
	})
}

// The differential mini-corpus for FuzzMCvsReference: small concurrent
// sketches with holes, blocking conditions, and a deadlock.
var diffSrcs = []string{
	`
int g = 0;
harness void M() {
	fork (i; 2) {
		if ({| true | false |}) {
			int t = g;
			t = t + 1;
			g = t;
		} else {
			atomic { g = g + 1; }
		}
	}
	assert g == 2;
}
`,
	`
int g = 0;
harness void M() {
	fork (i; 2) {
		atomic { g = g + ??(2); }
	}
	assert g == 6;
}
`,
	`
int turn = 0;
int done = 0;
harness void M() {
	fork (i; 2) {
		atomic (turn == i) { turn = turn + 1; done = done + 1; }
	}
	assert done == 2;
}
`,
	`
int a = 0;
harness void M() {
	fork (i; 2) {
		atomic (a == i + 5) { a = 0; }
	}
}
`,
}

type diffProg struct {
	layout *state.Layout
	dims   []int64
}

var (
	diffOnce  sync.Once
	diffProgs []diffProg
	diffErr   error

	diffMu    sync.Mutex
	diffTruth = map[[2]int64]bool{}
)

func diffFixture() ([]diffProg, error) {
	diffOnce.Do(func() {
		for _, src := range diffSrcs {
			prog, err := parser.Parse(src)
			if err != nil {
				diffErr = err
				return
			}
			sk, err := desugar.Desugar(prog, "M", desugar.Options{})
			if err != nil {
				diffErr = err
				return
			}
			lowered, err := ir.Lower(sk)
			if err != nil {
				diffErr = err
				return
			}
			layout, err := state.NewLayout(lowered)
			if err != nil {
				diffErr = err
				return
			}
			dims := make([]int64, len(sk.Holes))
			for i, h := range sk.Holes {
				if h.Kind == desugar.HoleChoice {
					dims[i] = int64(h.Choices)
				} else {
					dims[i] = int64(1) << uint(h.Bits)
				}
			}
			diffProgs = append(diffProgs, diffProg{layout: layout, dims: dims})
		}
	})
	return diffProgs, diffErr
}

// FuzzMCvsReference races the optimized model checker — under a
// fuzz-chosen mix of POR, local fusion, and parallel sharding —
// against the naive exhaustive checker on small candidate programs.
// Verdicts must agree exactly.
func FuzzMCvsReference(f *testing.F) {
	f.Add(byte(0), byte(0), false, false, byte(1))
	f.Add(byte(1), byte(3), true, false, byte(4))
	f.Add(byte(2), byte(0), false, true, byte(2))
	f.Add(byte(3), byte(1), true, true, byte(1))
	f.Fuzz(func(t *testing.T, progByte, candByte byte, noPOR, noFusion bool, parByte byte) {
		progs, err := diffFixture()
		if err != nil {
			t.Fatal(err)
		}
		pi := int(progByte) % len(progs)
		p := progs[pi]
		var cand desugar.Candidate
		rem := int64(candByte)
		for _, d := range p.dims {
			cand = append(cand, rem%d)
			rem /= d
		}

		key := [2]int64{int64(pi), int64(candByte)}
		diffMu.Lock()
		want, seen := diffTruth[key]
		diffMu.Unlock()
		if !seen {
			v, err := oracle.CheckExhaustive(p.layout, cand, 0)
			if err != nil {
				t.Fatal(err)
			}
			want = v.OK
			diffMu.Lock()
			diffTruth[key] = want
			diffMu.Unlock()
		}

		res, err := mc.Check(p.layout, cand, mc.Options{
			NoPOR:         noPOR,
			NoLocalFusion: noFusion,
			Parallelism:   1 + int(parByte%4),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OK != want {
			t.Fatalf("mc (por=%v fusion=%v par=%d) says %v on prog %d cand %v, reference says %v",
				!noPOR, !noFusion, 1+int(parByte%4), res.OK, pi, cand, want)
		}
	})
}
