// Benchmarks regenerating the paper's evaluation (one per table/figure;
// see DESIGN.md's per-experiment index):
//
//   - BenchmarkTable1 — candidate-space counting for all ten sketches;
//   - BenchmarkFig9/<bench>/<test> — full CEGIS runs over the Figure 9
//     grid (synthesis + model checking);
//   - BenchmarkFig_TransSSE — the §3 sequential shufps transpose;
//   - BenchmarkAblationReorder* — the §7.2 quadratic vs insertion
//     reorder encodings on the Figure 1 queue sketch;
//   - BenchmarkMC_QueueE1 — one full verifier pass (all interleavings);
//   - BenchmarkProjection_QueueE2 — one trace projection + encoding.
//
// Absolute times are not expected to match the paper's 2008 testbed;
// the shape (who resolves, iteration counts, relative cost of the
// phases) is the reproduction target. Run with:
//
//	go test -bench=. -benchmem
package psketch

import (
	"strings"
	"testing"

	"psketch/internal/circuit"
	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/parser"
	"psketch/internal/project"
	"psketch/internal/sketches"
	"psketch/internal/state"
	"psketch/internal/sym"
)

func compileBench(b *testing.B, bm *sketches.Benchmark, test string) *desugar.Sketch {
	b.Helper()
	src, err := bm.Source(test)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "Main", bm.Opts(test))
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

// BenchmarkTable1 measures compiling + counting all ten sketches
// (Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bm := range sketches.All() {
			sk := compileBench(b, bm, bm.Tests[0])
			if sk.Count.Sign() <= 0 {
				b.Fatalf("%s: bad count", bm.Name)
			}
		}
	}
}

// BenchmarkFig9 runs the full synthesis grid. The dinphilo N=5 row
// needs a large verifier budget and minutes of time; it is skipped in
// short mode.
func BenchmarkFig9(b *testing.B) {
	for _, bm := range sketches.All() {
		for _, test := range bm.Tests {
			bm, test := bm, test
			name := bm.Name + "/" + sanitize(test)
			b.Run(name, func(b *testing.B) {
				if testing.Short() && (bm.Name == "dinphilo" && strings.HasPrefix(test, "N=5")) {
					b.Skip("large state space")
				}
				sk := compileBench(b, bm, test)
				maxStates := 0
				if bm.Name == "dinphilo" && strings.HasPrefix(test, "N=5") {
					maxStates = 60_000_000
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					syn, err := core.New(sk, core.Options{MCMaxStates: maxStates})
					if err != nil {
						b.Fatal(err)
					}
					res, err := syn.Synthesize()
					if err != nil {
						b.Fatal(err)
					}
					if res.Resolved != bm.Resolvable[test] {
						b.Fatalf("resolved=%v want %v", res.Resolved, bm.Resolvable[test])
					}
					b.ReportMetric(float64(res.Stats.Iterations), "iters")
					b.ReportMetric(float64(res.Stats.MCStates), "mc-states")
				}
			})
		}
	}
}

// BenchmarkFig_TransSSE is the §3 sequential example (2×2 variant; the
// 4×4 takes about a minute and runs in the examples and long tests).
func BenchmarkFig_TransSSE(b *testing.B) {
	src := sketches.TransposeSource(2)
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "trans_sse", sketches.TransposeOpts(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn, err := core.New(sk, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := syn.Synthesize()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Resolved {
			b.Fatal("did not resolve")
		}
	}
}

// ablation: the two reorder encodings of §7.2 on the Figure 1 sketch.
func benchEncoding(b *testing.B, enc desugar.Encoding) {
	bm := sketches.QueueE2()
	src, err := bm.Source("ed(ed|ed)")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	opts := bm.Opts("ed(ed|ed)")
	opts.Encoding = enc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk, err := desugar.Desugar(prog, "Main", opts)
		if err != nil {
			b.Fatal(err)
		}
		syn, err := core.New(sk, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := syn.Synthesize()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Resolved {
			b.Fatal("did not resolve")
		}
		b.ReportMetric(float64(res.Stats.Iterations), "iters")
	}
}

func BenchmarkAblationReorderInsertion(b *testing.B) { benchEncoding(b, desugar.EncodeInsertion) }
func BenchmarkAblationReorderQuadratic(b *testing.B) { benchEncoding(b, desugar.EncodeQuadratic) }

// BenchmarkMC_QueueE1 measures one exhaustive verifier pass (the Vsolve
// column) on the correct queueE1 candidate.
func BenchmarkMC_QueueE1(b *testing.B) {
	sk := compileBench(b, sketches.QueueE1(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(layout, desugar.Candidate{0, 0}, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("expected OK")
		}
	}
}

// BenchmarkProjection_QueueE2 measures one trace projection + symbolic
// encoding (the Smodel column) for a failing queueE2 candidate.
func BenchmarkProjection_QueueE2(b *testing.B) {
	sk := compileBench(b, sketches.QueueE2(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		b.Fatal(err)
	}
	bad := make(desugar.Candidate, len(sk.Holes))
	res, err := mc.Check(layout, bad, mc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if res.OK {
		b.Fatal("expected a counterexample")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb := circuit.NewBuilder()
		holes := sym.HoleInputs(cb, sk)
		entries := project.Build(prog, res.Trace)
		if _, err := project.Encode(cb, layout, holes, entries); err != nil {
			b.Fatal(err)
		}
	}
}

func sanitize(s string) string {
	r := strings.NewReplacer("(", "_", ")", "_", "|", "-", ",", "_", "=", "")
	return r.Replace(s)
}

// ablation: the model checker's partial-order reduction (eager
// thread-local steps) on vs off, on one full queueE1 verification.
func benchPOR(b *testing.B, disable bool) {
	sk := compileBench(b, sketches.QueueE1(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(layout, desugar.Candidate{0, 0}, mc.Options{NoLocalFusion: disable})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("expected OK")
		}
		b.ReportMetric(float64(res.States), "states")
	}
}

func BenchmarkAblationPOROn(b *testing.B)  { benchPOR(b, false) }
func BenchmarkAblationPOROff(b *testing.B) { benchPOR(b, true) }
