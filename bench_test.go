// Benchmarks regenerating the paper's evaluation (one per table/figure;
// see DESIGN.md's per-experiment index):
//
//   - BenchmarkTable1 — candidate-space counting for all ten sketches;
//   - BenchmarkFig9/<bench>/<test> — full CEGIS runs over the Figure 9
//     grid (synthesis + model checking);
//   - BenchmarkFig_TransSSE — the §3 sequential shufps transpose;
//   - BenchmarkAblationReorder* — the §7.2 quadratic vs insertion
//     reorder encodings on the Figure 1 queue sketch;
//   - BenchmarkMC_QueueE1 — one full verifier pass (all interleavings);
//   - BenchmarkMC_Allocs/<bench>/j* — allocation-tracked verifier
//     passes (allocs/op + states/sec, the hot-path overhaul metrics);
//   - BenchmarkAblationLocalFusion*/AblationFootprintPOR* — the two
//     state-space reductions on vs off;
//   - BenchmarkProjection_QueueE2 — one trace projection + encoding;
//   - BenchmarkMC_CexLateShard/j* — parallel verifier counterexample
//     search where the failing schedule hides behind large benign
//     first-event subtrees (the -j N win; see EXPERIMENTS.md);
//   - BenchmarkMC_Exhaustive_QueueE1/j* — sharded exhaustive
//     verification vs the sequential DFS;
//   - BenchmarkSynthPortfolio_QueueE2/j* — full CEGIS with the SAT
//     portfolio and parallel verifier on vs off.
//
// Absolute times are not expected to match the paper's 2008 testbed;
// the shape (who resolves, iteration counts, relative cost of the
// phases) is the reproduction target. Run with:
//
//	go test -bench=. -benchmem
package psketch

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"psketch/internal/circuit"
	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/obs"
	"psketch/internal/parser"
	"psketch/internal/project"
	"psketch/internal/sat"
	"psketch/internal/sketches"
	"psketch/internal/state"
	"psketch/internal/sym"
)

func compileBench(b *testing.B, bm *sketches.Benchmark, test string) *desugar.Sketch {
	b.Helper()
	src, err := bm.Source(test)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "Main", bm.Opts(test))
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

// BenchmarkTable1 measures compiling + counting all ten sketches
// (Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bm := range sketches.All() {
			sk := compileBench(b, bm, bm.Tests[0])
			if sk.Count.Sign() <= 0 {
				b.Fatalf("%s: bad count", bm.Name)
			}
		}
	}
}

// BenchmarkFig9 runs the full synthesis grid. The dinphilo N=5 row
// needs a large verifier budget and minutes of time; it is skipped in
// short mode.
func BenchmarkFig9(b *testing.B) {
	for _, bm := range sketches.All() {
		for _, test := range bm.Tests {
			bm, test := bm, test
			name := bm.Name + "/" + sanitize(test)
			b.Run(name, func(b *testing.B) {
				if testing.Short() && (bm.Name == "dinphilo" && strings.HasPrefix(test, "N=5")) {
					b.Skip("large state space")
				}
				sk := compileBench(b, bm, test)
				maxStates := 0
				if bm.Name == "dinphilo" && strings.HasPrefix(test, "N=5") {
					maxStates = 60_000_000
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					syn, err := core.New(sk, core.Options{MCMaxStates: maxStates})
					if err != nil {
						b.Fatal(err)
					}
					res, err := syn.Synthesize()
					if err != nil {
						b.Fatal(err)
					}
					if res.Resolved != bm.Resolvable[test] {
						b.Fatalf("resolved=%v want %v", res.Resolved, bm.Resolvable[test])
					}
					b.ReportMetric(float64(res.Stats.Iterations), "iters")
					b.ReportMetric(float64(res.Stats.MCStates), "mc-states")
				}
			})
		}
	}
}

// BenchmarkFig_TransSSE is the §3 sequential example (2×2 variant; the
// 4×4 takes about a minute and runs in the examples and long tests).
func BenchmarkFig_TransSSE(b *testing.B) {
	src := sketches.TransposeSource(2)
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "trans_sse", sketches.TransposeOpts(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn, err := core.New(sk, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := syn.Synthesize()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Resolved {
			b.Fatal("did not resolve")
		}
	}
}

// ablation: the two reorder encodings of §7.2 on the Figure 1 sketch.
func benchEncoding(b *testing.B, enc desugar.Encoding) {
	bm := sketches.QueueE2()
	src, err := bm.Source("ed(ed|ed)")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	opts := bm.Opts("ed(ed|ed)")
	opts.Encoding = enc
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk, err := desugar.Desugar(prog, "Main", opts)
		if err != nil {
			b.Fatal(err)
		}
		syn, err := core.New(sk, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := syn.Synthesize()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Resolved {
			b.Fatal("did not resolve")
		}
		b.ReportMetric(float64(res.Stats.Iterations), "iters")
	}
}

func BenchmarkAblationReorderInsertion(b *testing.B) { benchEncoding(b, desugar.EncodeInsertion) }
func BenchmarkAblationReorderQuadratic(b *testing.B) { benchEncoding(b, desugar.EncodeQuadratic) }

// BenchmarkMC_QueueE1 measures one exhaustive verifier pass (the Vsolve
// column) on the correct queueE1 candidate.
func BenchmarkMC_QueueE1(b *testing.B) {
	sk := compileBench(b, sketches.QueueE1(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(layout, desugar.Candidate{0, 0}, mc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("expected OK")
		}
	}
}

// BenchmarkProjection_QueueE2 measures one trace projection + symbolic
// encoding (the Smodel column) for a failing queueE2 candidate.
func BenchmarkProjection_QueueE2(b *testing.B) {
	sk := compileBench(b, sketches.QueueE2(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		b.Fatal(err)
	}
	bad := make(desugar.Candidate, len(sk.Holes))
	res, err := mc.Check(layout, bad, mc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if res.OK {
		b.Fatal("expected a counterexample")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb := circuit.NewBuilder()
		holes := sym.HoleInputs(cb, sk)
		entries := project.Build(prog, res.Trace)
		if _, err := project.Encode(cb, layout, holes, entries); err != nil {
			b.Fatal(err)
		}
	}
}

// serialAdder hides AddClauses so ToSAT falls back to clause-by-clause
// insertion — the pre-batching baseline.
type serialAdder struct{ sat.Adder }

// BenchmarkProjectionInsert_QueueE2 measures pushing one projected
// trace constraint into a 4-worker SAT portfolio — the per-iteration
// cost on the CEGIS critical path. The batch case hands the whole
// Tseitin CNF to Portfolio.AddClauses in one worker-major broadcast;
// the serial case inserts clause by clause through the same portfolio.
func BenchmarkProjectionInsert_QueueE2(b *testing.B) {
	sk := compileBench(b, sketches.QueueE2(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		b.Fatal(err)
	}
	bad := make(desugar.Candidate, len(sk.Holes))
	res, err := mc.Check(layout, bad, mc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if res.OK {
		b.Fatal("expected a counterexample")
	}
	cb := circuit.NewBuilder()
	holes := sym.HoleInputs(cb, sk)
	entries := project.Build(prog, res.Trace)
	fail, err := project.Encode(cb, layout, holes, entries)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, wrap func(*sat.Portfolio) sat.Adder) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := sat.NewPortfolio(4)
			s := wrap(p)
			lit := cb.ToSAT(s, circuit.NewVarMap(), fail.Not())
			if !s.AddClause(lit) {
				b.Fatal("projection clause unsatisfiable on its own")
			}
		}
	}
	b.Run("batch", func(b *testing.B) {
		run(b, func(p *sat.Portfolio) sat.Adder { return p })
	})
	b.Run("serial", func(b *testing.B) {
		run(b, func(p *sat.Portfolio) sat.Adder { return serialAdder{p} })
	})
}

func sanitize(s string) string {
	r := strings.NewReplacer("(", "_", ")", "_", "|", "-", ",", "_", "=", "")
	return r.Replace(s)
}

// ablation: the model checker's two reductions on one full queueE1
// verification — local fusion (eager thread-local steps) and the
// footprint-based partial-order reduction (persistent + sleep sets).
func benchReduction(b *testing.B, opts mc.Options) {
	sk := compileBench(b, sketches.QueueE1(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(layout, desugar.Candidate{0, 0}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("expected OK")
		}
		b.ReportMetric(float64(res.States), "states")
	}
}

func BenchmarkAblationLocalFusionOn(b *testing.B) { benchReduction(b, mc.Options{}) }
func BenchmarkAblationLocalFusionOff(b *testing.B) {
	benchReduction(b, mc.Options{NoLocalFusion: true})
}
func BenchmarkAblationFootprintPOROn(b *testing.B) { benchReduction(b, mc.Options{}) }
func BenchmarkAblationFootprintPOROff(b *testing.B) {
	benchReduction(b, mc.Options{NoPOR: true})
}

// benchMCAlloc is the allocation-tracked model-checker microbenchmark:
// one exhaustive verifier pass per iteration on a verified candidate,
// reporting allocs/op (the hot-path overhaul target) and a sustained
// states/sec throughput metric.
func benchMCAlloc(b *testing.B, bm *sketches.Benchmark, test string, cand desugar.Candidate, opts mc.Options) {
	b.Helper()
	sk := compileBench(b, bm, test)
	if cand == nil {
		syn, err := core.New(sk, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := syn.Synthesize()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Resolved {
			b.Fatalf("%s %s did not resolve", bm.Name, test)
		}
		cand = res.Candidate
	}
	prog, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	states := 0
	for i := 0; i < b.N; i++ {
		res, err := mc.Check(layout, cand, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("expected OK")
		}
		states += res.States
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(states)/secs, "states/sec")
	}
}

// BenchmarkMC_Allocs tracks the verifier's allocation behaviour on two
// paper sketches, sequentially and sharded (see EXPERIMENTS.md for the
// before/after history of the hot-path overhaul).
func BenchmarkMC_Allocs(b *testing.B) {
	for _, j := range []int{1, 4} {
		opts := mc.Options{Parallelism: j}
		b.Run(fmt.Sprintf("queueE1/j%d", j), func(b *testing.B) {
			benchMCAlloc(b, sketches.QueueE1(), "ed(ed|ed)", desugar.Candidate{0, 0}, opts)
		})
		b.Run(fmt.Sprintf("barrier1/j%d", j), func(b *testing.B) {
			benchMCAlloc(b, sketches.Barrier1(), "N=2,B=2", nil, opts)
		})
	}
}

// lateShardSrc is a program whose only failing schedules start with
// thread 2 (it reads flag before thread 0's first step sets it), while
// threads 0 and 1 generate large, benign, value-dependent state spaces.
// The sequential DFS must exhaust tens of thousands of benign states
// before it reaches a failing schedule; the sharded search hands thread
// 2's subtree to its own worker, which finds the counterexample almost
// immediately and cancels the rest.
const lateShardSrc = `
int flag = 0;
int a = 0;
int b = 1;
harness void Main() {
	fork (i; 3) {
		if (i == 0) {
			flag = 1;
			a = a + b; a = a + b; a = a + b; a = a + b;
			a = a + b; a = a + b; a = a + b; a = a + b;
			a = a + b; a = a + b; a = a + b; a = a + b;
			a = a + b; a = a + b; a = a + b; a = a + b;
			a = a + b; a = a + b; a = a + b; a = a + b;
			a = a + b; a = a + b; a = a + b; a = a + b;
		}
		if (i == 1) {
			b = b + b; b = b + 1; b = b + b; b = b + 1;
			b = b + b; b = b + 1; b = b + b; b = b + 1;
			b = b + b; b = b + 1; b = b + b; b = b + 1;
			b = b + b; b = b + 1; b = b + b; b = b + 1;
			b = b + b; b = b + 1; b = b + b; b = b + 1;
			b = b + b; b = b + 1; b = b + b; b = b + 1;
		}
		if (i == 2) {
			int x = flag;
			assert x == 1;
		}
	}
}
`

func lateShardLayout(b *testing.B) *state.Layout {
	b.Helper()
	prog, err := parser.Parse(lateShardSrc)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "Main", desugar.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(p)
	if err != nil {
		b.Fatal(err)
	}
	return layout
}

// BenchmarkMC_CexLateShard measures the counterexample search of the
// parallel verifier against the sequential DFS when the failing
// schedule lives in a late first-event shard (the headline -j N case;
// measured numbers are recorded in EXPERIMENTS.md).
func BenchmarkMC_CexLateShard(b *testing.B) {
	layout := lateShardLayout(b)
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mc.Check(layout, desugar.Candidate{}, mc.Options{Parallelism: j})
				if err != nil {
					b.Fatal(err)
				}
				if res.OK {
					b.Fatal("expected a counterexample")
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

// BenchmarkMC_Exhaustive_QueueE1 measures a full (no-counterexample)
// verification pass sequentially and sharded: with nothing to cancel,
// this exposes the sharding overhead rather than a win, which is the
// honest baseline for -j N on verified candidates.
func BenchmarkMC_Exhaustive_QueueE1(b *testing.B) {
	sk := compileBench(b, sketches.QueueE1(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := mc.Check(layout, desugar.Candidate{0, 0}, mc.Options{Parallelism: j})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatal("expected OK")
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

// BenchmarkSynthPortfolio_QueueE2 runs the full CEGIS loop on the
// Figure 1 queue sketch with the parallel pipeline off (-j 1, the
// deterministic paper configuration) and on (-j 4: SAT portfolio +
// sharded verifier).
func BenchmarkSynthPortfolio_QueueE2(b *testing.B) {
	sk := compileBench(b, sketches.QueueE2(), "ed(ed|ed)")
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				syn, err := core.New(sk, core.Options{Parallelism: j})
				if err != nil {
					b.Fatal(err)
				}
				res, err := syn.Synthesize()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Resolved {
					b.Fatal("did not resolve")
				}
				b.ReportMetric(float64(res.Stats.Iterations), "iters")
			}
		})
	}
}

// BenchmarkHeapSampling measures the cost of the heap high-water-mark
// sampling cadence on the full queueE2 CEGIS loop. Every sample is a
// runtime.ReadMemStats, which stops the world — the loop used to pay
// it unconditionally each iteration; it is now behind the
// HeapSampleEvery knob (0 = one final sample, the library default;
// 1 = the historical per-iteration behaviour pskbench keeps for
// baseline comparability).
func BenchmarkHeapSampling(b *testing.B) {
	sk := compileBench(b, sketches.QueueE2(), "ed(ed|ed)")
	for _, every := range []int{0, 1} {
		b.Run(fmt.Sprintf("every%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				syn, err := core.New(sk, core.Options{Parallelism: 1, HeapSampleEvery: every})
				if err != nil {
					b.Fatal(err)
				}
				res, err := syn.Synthesize()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Resolved || res.Stats.MaxHeap == 0 {
					b.Fatalf("resolved=%v heap=%d", res.Resolved, res.Stats.MaxHeap)
				}
			}
		})
	}
}

// BenchmarkJournalOverhead_QueueE2 measures the full CEGIS loop with
// tracing off (nil tracer) vs journaling to an in-memory sink — the
// EXPERIMENTS.md "<3% with a journal attached" number.
func BenchmarkJournalOverhead_QueueE2(b *testing.B) {
	sk := compileBench(b, sketches.QueueE2(), "ed(ed|ed)")
	run := func(b *testing.B, trace bool) {
		for i := 0; i < b.N; i++ {
			opts := core.Options{Parallelism: 1}
			var js *obs.JournalSink
			if trace {
				js = obs.NewJournalSink(io.Discard, nil)
				opts.Trace = obs.NewTracer(js)
				opts.Metrics = obs.NewMetrics()
			}
			syn, err := core.New(sk, opts)
			if err != nil {
				b.Fatal(err)
			}
			res, err := syn.Synthesize()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Resolved {
				b.Fatal("did not resolve")
			}
			if js != nil {
				js.WriteMetrics(opts.Metrics.Snapshot())
				if err := js.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("journal", func(b *testing.B) { run(b, true) })
}
