// Command pskemit emits verified sketch candidates as compilable
// concurrent Go and ranks them by measured throughput:
//
//	pskemit [flags] file.psk      synthesize, emit every verified candidate, rank
//	pskemit -dir out/             re-rank a saved -emit-dir verdict (no synthesis)
//
// In file mode pskemit is `psketch -emit-dir -rank` with the ranking
// knobs exposed: it enumerates all verified completions (bounded by
// -max-solutions), lowers each distinct one to a Go package under
// -out, builds every package, drives its generated load harness, and
// prints candidates fastest first. In -dir mode it reloads the
// manifest.json an earlier emit run saved and re-measures without
// re-synthesizing — the saved-verdict path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"psketch"
)

func main() {
	var (
		dir        = flag.String("dir", "", "re-rank a saved -emit-dir directory (manifest.json) instead of synthesizing")
		out        = flag.String("out", "emitted", "output directory for emitted candidate packages (file mode)")
		target     = flag.String("target", "", "harness/implements function to synthesize (default: autodetect)")
		intWidth   = flag.Int("intwidth", 5, "bit width of int values")
		holeWidth  = flag.Int("holewidth", 3, "default bit width of ?? holes")
		loopBound  = flag.Int("loopbound", 4, "while-loop unroll bound")
		maxSol     = flag.Int("max-solutions", 8, "enumerate-all bound (block verified candidates and re-solve until UNSAT or N solutions)")
		par        = flag.Int("j", 0, "solver/verifier parallelism (0 = all cores, 1 = deterministic)")
		goroutines = flag.Int("goroutines", 8, "load-harness goroutines per measurement")
		durMS      = flag.Int("duration-ms", 500, "measurement window per run, milliseconds")
		runs       = flag.Int("runs", 3, "measurement runs per candidate (best is kept)")
		mix        = flag.String("mix", "", "comma-separated op mix override for the load harness (default: the sketch harness mix)")
		jsonOut    = flag.Bool("json", false, "print measurements as JSON instead of text")
		verbose    = flag.Bool("v", false, "per-iteration synthesis progress")
	)
	flag.Parse()

	ropts := psketch.RankOptions{
		Goroutines: *goroutines,
		Duration:   time.Duration(*durMS) * time.Millisecond,
		Runs:       *runs,
		Mix:        *mix,
	}

	if *dir != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: pskemit -dir out/ (no file argument in re-rank mode)")
			os.Exit(1)
		}
		man, ms, err := psketch.RankEmitted(*dir, ropts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report(man.Sketch, ms, *jsonOut)
		os.Exit(0)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pskemit [flags] file.psk  (or: pskemit -dir out/)")
		os.Exit(1)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := psketch.Options{
		IntWidth:     *intWidth,
		HoleWidth:    *holeWidth,
		LoopBound:    *loopBound,
		MaxSolutions: *maxSol,
		Parallelism:  *par,
	}
	if *verbose {
		opts.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	tgt := *target
	if tgt == "" {
		tgt, err = psketch.DetectTarget(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	sk, err := psketch.Compile(string(src), tgt, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rs, ms, err := sk.SynthesizeRanked(*out, ropts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rs) == 0 {
		fmt.Println("NO — the sketch cannot be resolved")
		os.Exit(2)
	}
	report(tgt, ms, *jsonOut)
	if !*jsonOut {
		fmt.Printf("\n// ---- fastest candidate ----\n\n%s", rs[0].Code)
	}
}

// report prints the ranked measurements.
func report(sketch string, ms []psketch.Measurement, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Sketch string                `json:"sketch"`
			Ranked []psketch.Measurement `json:"ranked"`
		}{sketch, ms})
		return
	}
	fmt.Printf("// %s: %d candidate(s), fastest first\n", sketch, len(ms))
	for i, m := range ms {
		if m.Err != "" {
			fmt.Printf("// #%d %s: FAILED (%s)\n", i+1, m.Dir, m.Err)
			continue
		}
		fmt.Printf("// #%d %s: %.0f ops/sec (%d ops, build %dms)\n", i+1, m.Dir, m.OpsPerSec, m.Ops, m.BuildMS)
	}
}
