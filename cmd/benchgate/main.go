// Command benchgate is the CI benchmark regression gate: it compares
// a freshly measured pskbench -json report against a checked-in
// baseline and exits non-zero on a regression.
//
//	pskbench -fig9 -filter queueE1 -json new.json
//	benchgate -baseline BENCH_pr3.json -candidate new.json
//
// Verdict changes (a test resolving where the baseline said NO, or
// vice versa) and rows that error fail outright. Wall-clock fails
// only past -tolerance x the baseline and above the -min-ms noise
// floor, so shared CI runners don't flake the gate. Peak visited-set
// memory (the mc_visited_bytes column) is gated the same way at
// -mem-tolerance x above the -min-mib floor, when both reports carry
// the column. Configuration skew between the two reports
// (parallelism, host, proof replay, reduction knobs) is printed as
// warnings — and with -strict-config also fails the gate.
//
// With -journal the two reports are run journals (pskbench -journal)
// instead: per-benchmark wall clock comes from the bench.run spans and
// the engine's per-phase totals (solve, verify, projection) are each
// gated too, catching regressions confined to one phase.
//
//	pskbench -fig9 -filter queueE1 -journal new.jsonl
//	benchgate -journal -baseline baseline.jsonl -candidate new.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"psketch/internal/bench"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_pr3.json", "baseline report (checked-in)")
		candidate = flag.String("candidate", "", "candidate report to gate (required)")
		tolerance = flag.Float64("tolerance", 3.0, "max candidate/baseline wall-clock ratio")
		minMS     = flag.Float64("min-ms", 250, "noise floor: rows faster than this are not timed")
		memTol    = flag.Float64("mem-tolerance", 3.0, "max candidate/baseline peak visited-set memory ratio (mc_visited_bytes)")
		minMiB    = flag.Float64("min-mib", 8, "memory floor: rows whose visited set is smaller are not memory-gated")
		strict    = flag.Bool("strict-config", false, "treat configuration-skew warnings as failures")
		journal   = flag.Bool("journal", false, "baseline and candidate are run journals (pskbench -journal); gate per-phase times too")
	)
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		flag.Usage()
		os.Exit(2)
	}
	base, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cand, err := os.ReadFile(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	gate := bench.Gate
	if *journal {
		gate = bench.GateJournals
	}
	g, err := gate(base, cand, bench.GateOptions{
		Tolerance: *tolerance, MinMS: *minMS,
		MemTolerance: *memTol, MinBytes: uint64(*minMiB * (1 << 20)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	for _, w := range g.Warnings {
		fmt.Printf("WARN  %s\n", w)
	}
	for _, f := range g.Failures {
		fmt.Printf("FAIL  %s\n", f)
	}
	fmt.Printf("benchgate: %d row(s) compared, %d failure(s), %d warning(s)\n",
		g.Compared, len(g.Failures), len(g.Warnings))
	if !g.OK() || (*strict && len(g.Warnings) > 0) {
		os.Exit(1)
	}
}
