// Command psketchd serves sketch synthesis over HTTP — the
// synthesis-as-a-service front of the psketch engine:
//
//	psketchd [flags]
//
// Clients POST sketch sources to /v1/jobs and get back a job ID; jobs
// run on a bounded worker pool fed by a batched intake queue, so a
// burst of submissions degrades into 429 + Retry-After instead of
// unbounded latency. Per-iteration CEGIS progress streams from
// /v1/jobs/{id}/events as NDJSON; the final verdict (resolved code, or
// a definitive NO with DRAT-certificate metadata under proof mode)
// lands on /v1/jobs/{id}. Repeat submissions of one sketch start warm:
// the hash-consed encoding context and projection-prefix cache persist
// across requests in a size-bounded LRU store (watch warm.* on
// /metrics; -no-warm-cache ablates it).
//
// A quickstart curl session lives in README.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"psketch/internal/obs"
	"psketch/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:7333", "HTTP listen address (\":0\" picks a free port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file once listening (CI/scripts with -addr :0)")
		workers   = flag.Int("workers", 2, "concurrent synthesis jobs (the fixed worker-array size)")
		queue     = flag.Int("queue-depth", 64, "intake queue bound; submissions beyond it get 429")
		batch     = flag.Int("batch", 8, "max jobs one worker pulls from the queue per critical section")
		jobTime   = flag.Duration("job-timeout", 5*time.Minute, "per-job wall-clock budget (requests may shorten, never extend)")
		maxStates = flag.Int("max-states", 4_000_000, "per-job model-checker state budget cap")
		maxIters  = flag.Int("max-iterations", 256, "per-job CEGIS iteration cap")
		maxPar    = flag.Int("max-parallelism", runtime.GOMAXPROCS(0), "per-job engine parallelism cap")
		noWarm    = flag.Bool("no-warm-cache", false, "disable the cross-request warm-state cache (ablation)")
		warmMiB   = flag.Int64("warm-mib", 256, "warm-state cache bound, MiB of estimated retained memory")
		journals  = flag.String("journal-dir", "", "write one JSONL journal per job into this directory (inspect with psktrace)")
		drainTime = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT before jobs are force-canceled")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof and the raw server registry on this address")
		verbose   = flag.Bool("v", false, "log job lifecycle to stderr")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: psketchd [flags] (no arguments; sketches arrive over HTTP)")
		os.Exit(1)
	}
	if *journals != "" {
		if err := os.MkdirAll(*journals, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "psketchd: "+format+"\n", args...)
	}
	cfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		Batch:          *batch,
		JobTimeout:     *jobTime,
		MaxMCStates:    *maxStates,
		MaxIterations:  *maxIters,
		MaxParallelism: *maxPar,
		NoWarmCache:    *noWarm,
		WarmBytes:      *warmMiB << 20,
		JournalDir:     *journals,
	}
	if *verbose {
		cfg.Verbose = logf
	}
	srv := service.New(cfg)

	var dbg *obs.DebugServer
	if *debugAddr != "" {
		d, err := obs.ServeDebug(*debugAddr, srv.Metrics())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dbg = d
		logf("debug endpoint on http://%s", d.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	logf("listening on http://%s (workers=%d queue=%d job-timeout=%v warm-cache=%v)",
		ln.Addr(), *workers, *queue, *jobTime, !*noWarm)

	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Graceful drain on SIGTERM/SIGINT: stop intake (503), let admitted
	// jobs finish inside the drain budget, then force-cancel stragglers.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logf("%v: draining (budget %v)", sig, *drainTime)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		logf("drain budget exceeded; running jobs were canceled")
	}
	httpSrv.Shutdown(ctx)
	if dbg != nil {
		dbg.Shutdown(ctx)
	}
	logf("bye")
}
