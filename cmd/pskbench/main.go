// Command pskbench regenerates the paper's evaluation artifacts:
//
//	pskbench -table1            # Table 1: candidate-space sizes
//	pskbench -fig9              # Figure 9: per-test synthesis performance
//	pskbench -fig9 -filter queue -timeout 10m
//	pskbench -fig10             # Figure 10: log|C| vs iterations
//
// Every table prints measured values next to the paper's, matching the
// per-experiment index in DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"psketch/internal/bench"
	"psketch/internal/obs"
	"psketch/internal/sketches"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "regenerate Table 1")
		fig9       = flag.Bool("fig9", false, "regenerate Figure 9")
		fig10      = flag.Bool("fig10", false, "regenerate Figure 10 (runs the Figure 9 grid)")
		filter     = flag.String("filter", "", "benchmark name substring filter")
		extras     = flag.Bool("extras", false, "include extension benchmarks (treiber)")
		traces     = flag.Int("traces", 1, "counterexample traces per CEGIS iteration (multi-trace learning)")
		timeout    = flag.Duration("timeout", 30*time.Minute, "per-test synthesis timeout")
		verbose    = flag.Bool("v", false, "per-iteration progress")
		par        = flag.Int("j", runtime.GOMAXPROCS(0), "solver/verifier parallelism (use 1 for deterministic paper-comparable runs)")
		noPOR      = flag.Bool("nopor", false, "disable the verifier's partial-order reduction (ablation)")
		noSym      = flag.Bool("nosym", false, "disable the verifier's thread-symmetry reduction (ablation)")
		compress   = flag.String("compress", "", "verifier visited-set compression: collapse or bitstate (forces sequential verification)")
		pipeline   = flag.Bool("pipeline", true, "overlap speculative solves with verification (needs -j > 1)")
		share      = flag.Bool("share-clauses", true, "share learned clauses between SAT portfolio workers (needs -j > 1)")
		proof      = flag.Bool("proofcheck", false, "log DRAT proofs and replay every UNSAT verdict through the backward checker")
		jsonOut    = flag.String("json", "", "write the measured Figure 9 rows to this file as JSON")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		journal    = flag.String("journal", "", "write a structured run journal (JSONL) to this file; inspect with psktrace")
		flight     = flag.Int("flight", 0, "keep a flight recorder of the last N spans, dumped to <journal>.flight.jsonl if a run errors")
		debugAddr  = flag.String("debug-addr", "", "serve live /metrics and /debug/pprof on this address (e.g. localhost:6060)")
		heapSample = flag.Int("heap-sample", 1, "sample the heap high-water mark every N CEGIS iterations (0 = once per run)")
		cubes      = flag.Int("cubes", 0, "run every test cube-and-conquer with N cubes racing (0/1 = single engine)")
		cubeWork   = flag.Int("cube-workers", 0, "concurrent cube engines under -cubes (0 = one per cube)")
		dumpSketch = flag.String("dump-sketch", "", "print the sketch source of benchmark NAME[:test] and exit (feeds psketch -serve-cubes)")
		rankEmit   = flag.Bool("rank-emitted", false, "emit each winning candidate as Go and measure its load-harness throughput (needs the go tool)")
		maxSol     = flag.Int("max-solutions", 0, "enumerate-all bound recorded in the report header (psketch/pskemit -max-solutions)")
	)
	flag.Parse()
	if *dumpSketch != "" {
		if err := dumpSketchSource(*dumpSketch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if !*table1 && !*fig9 && !*fig10 {
		*table1, *fig9, *fig10 = true, true, true
	}
	// Observability: a journal sink persists every span, the flight
	// recorder keeps the last N in memory for post-mortems, and both
	// feed off one tracer so the engine pays a single emit per span.
	met := obs.NewMetrics()
	var (
		tr    *obs.Tracer
		js    *obs.JournalSink
		jf    *os.File
		ring  *obs.RingSink
		sinks []obs.Sink
	)
	meta := map[string]string{
		"cmd":         "pskbench",
		"filter":      *filter,
		"parallelism": strconv.Itoa(*par),
		"goos":        runtime.GOOS,
	}
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "journal:", err)
			os.Exit(1)
		}
		jf = f
		js = obs.NewJournalSink(f, meta)
		sinks = append(sinks, js)
	}
	if *flight > 0 {
		ring = obs.NewRingSink(*flight)
		sinks = append(sinks, ring)
	}
	if len(sinks) > 0 {
		tr = obs.NewTracer(obs.MultiSink(sinks...))
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, met)
		if err != nil {
			fmt.Fprintln(os.Stderr, "debug-addr:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pskbench: live /metrics and /debug/pprof on http://%s\n", srv.Addr())
	}
	// closeObs finishes the journal (metrics trailer + flush) and, when
	// a run failed, dumps the flight recorder next to it.
	closeObs := func(failed bool) {
		if js != nil {
			js.WriteMetrics(met.Snapshot())
			if err := js.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "journal:", err)
			}
			jf.Close()
			fmt.Fprintf(os.Stderr, "wrote journal to %s\n", *journal)
		}
		if failed && ring != nil {
			dumpFlight(ring, *journal, meta, met.Snapshot())
		}
	}
	opts := bench.Options{
		Filter: *filter, Timeout: *timeout, IncludeExtras: *extras,
		TracesPerIteration: *traces, Parallelism: *par, NoPOR: *noPOR,
		NoSymmetry: *noSym, MCCompress: *compress,
		NoPipeline: !*pipeline, NoShareClauses: !*share, Proof: *proof,
		Cubes: *cubes, CubeWorkers: *cubeWork,
		RankEmitted: *rankEmit, MaxSolutions: *maxSol,
		Trace: tr, Metrics: met, HeapSampleEvery: *heapSample,
	}
	if *verbose {
		opts.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *table1 {
		fmt.Println("== Table 1: candidate-space sizes ==")
		if err := bench.Table1(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			closeObs(false)
			os.Exit(1)
		}
		fmt.Println()
	}
	var rows []bench.Row
	if *fig9 || *fig10 {
		fmt.Println("== Figure 9: synthesis performance (measured | paper) ==")
		rows = bench.RunFig9(os.Stdout, opts)
		fmt.Println()
	}
	if *fig10 {
		fmt.Println("== Figure 10: log10|C| vs CEGIS iterations ==")
		bench.Fig10(os.Stdout, rows)
	}
	failed := false
	for _, r := range rows {
		if r.Err != nil {
			failed = true
		}
	}
	closeObs(failed)
	if *jsonOut != "" {
		if err := bench.WriteJSON(*jsonOut, rows, opts); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d row(s) to %s\n", len(rows), *jsonOut)
	}
}

// dumpSketchSource prints the complete sketch text of one benchmark
// row ("lazyset" or "lazyset:ar(ar|ar)"; the default test is the
// benchmark's first) so a multi-process cube run can be driven from
// the Table 1 grid without checked-in .psk copies:
//
//	pskbench -dump-sketch 'lazyset:ar(ar|ar)' > lazyset.psk
//	psketch -serve-cubes 127.0.0.1:7331 -cubes 4 lazyset.psk
func dumpSketchSource(spec string) error {
	name, test, _ := strings.Cut(spec, ":")
	for _, b := range append(sketches.All(), sketches.Extras()...) {
		if b.Name != name {
			continue
		}
		if test == "" {
			test = b.Tests[0]
		}
		src, err := b.Source(test)
		if err != nil {
			return err
		}
		fmt.Print(src)
		return nil
	}
	return fmt.Errorf("unknown benchmark %q (see pskbench -table1 for names)", name)
}

// dumpFlight writes the flight recorder's last spans as a well-formed
// journal next to the main one (or to pskbench.flight.jsonl).
func dumpFlight(ring *obs.RingSink, journal string, meta map[string]string, snap map[string]int64) {
	path := "pskbench.flight.jsonl"
	if journal != "" {
		path = journal + ".flight.jsonl"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flight:", err)
		return
	}
	defer f.Close()
	if err := ring.Dump(f, meta, snap); err != nil {
		fmt.Fprintln(os.Stderr, "flight:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "dumped flight recorder to %s\n", path)
}
