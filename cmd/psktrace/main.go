// Command psktrace summarizes and compares run journals written by the
// -journal flag of psketch, pskbench and pskmc (and by flight-recorder
// dumps):
//
//	psktrace run.jsonl             # phase totals, time tree, iterations
//	psktrace -top 20 run.jsonl     # widen the hottest-spans table
//	psktrace coord.jsonl w1.jsonl  # merge multiple journals first
//	psktrace -diff old.jsonl new.jsonl
//	psktrace -diff old.jsonl c.jsonl,w1.jsonl,w2.jsonl
//
// Multiple positional journals (and comma-separated members of a -diff
// side) are merged before summarizing: span IDs are offset per input
// and metrics trailers fold (sums add, high-water marks max), which is
// how the per-process journals of a distributed cube run — the
// psketch -serve-cubes coordinator plus each -join worker — combine
// into one report.
//
// The summary cross-checks the span tree against the journal's metrics
// trailer: per-phase wall-clock reconstructed from spans must agree
// with the counters the engine maintained, so drift flags lost spans.
// The diff mode prints per-phase deltas between two journals and is
// what benchgate's -journal mode builds on.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"psketch/internal/obs"
)

func main() {
	var (
		diff = flag.Bool("diff", false, "compare two journals or journal groups (old new; comma-separate group members)")
		top  = flag.Int("top", 10, "number of hottest spans to list")
	)
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: psktrace -diff old.jsonl new.jsonl (comma-separate merged group members)")
			os.Exit(2)
		}
		old, err := readGroup(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "psktrace:", err)
			os.Exit(2)
		}
		new, err := readGroup(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "psktrace:", err)
			os.Exit(2)
		}
		obs.Diff(os.Stdout, old, new)
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: psktrace [-top N] run.jsonl [more.jsonl ...] | psktrace -diff old.jsonl new.jsonl")
		os.Exit(2)
	}
	js := make([]*obs.Journal, 0, flag.NArg())
	for _, path := range flag.Args() {
		j, err := readJournal(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psktrace:", err)
			os.Exit(2)
		}
		js = append(js, j)
	}
	obs.Summarize(os.Stdout, obs.MergeJournals(js...), *top)
}

// readGroup reads one -diff side: a single journal, or several
// comma-separated ones merged (a distributed run's process set).
func readGroup(arg string) (*obs.Journal, error) {
	paths := strings.Split(arg, ",")
	js := make([]*obs.Journal, 0, len(paths))
	for _, p := range paths {
		j, err := readJournal(p)
		if err != nil {
			return nil, err
		}
		js = append(js, j)
	}
	return obs.MergeJournals(js...), nil
}

func readJournal(path string) (*obs.Journal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadJournal(f)
}
