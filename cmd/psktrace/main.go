// Command psktrace summarizes and compares run journals written by the
// -journal flag of psketch, pskbench and pskmc (and by flight-recorder
// dumps):
//
//	psktrace run.jsonl             # phase totals, time tree, iterations
//	psktrace -top 20 run.jsonl     # widen the hottest-spans table
//	psktrace -diff old.jsonl new.jsonl
//
// The summary cross-checks the span tree against the journal's metrics
// trailer: per-phase wall-clock reconstructed from spans must agree
// with the counters the engine maintained, so drift flags lost spans.
// The diff mode prints per-phase deltas between two journals and is
// what benchgate's -journal mode builds on.
package main

import (
	"flag"
	"fmt"
	"os"

	"psketch/internal/obs"
)

func main() {
	var (
		diff = flag.Bool("diff", false, "compare two journals (old new)")
		top  = flag.Int("top", 10, "number of hottest spans to list")
	)
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: psktrace -diff old.jsonl new.jsonl")
			os.Exit(2)
		}
		old, err := readJournal(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "psktrace:", err)
			os.Exit(2)
		}
		new, err := readJournal(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "psktrace:", err)
			os.Exit(2)
		}
		obs.Diff(os.Stdout, old, new)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psktrace [-top N] run.jsonl | psktrace -diff old.jsonl new.jsonl")
		os.Exit(2)
	}
	j, err := readJournal(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "psktrace:", err)
		os.Exit(2)
	}
	obs.Summarize(os.Stdout, j, *top)
}

func readJournal(path string) (*obs.Journal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadJournal(f)
}
