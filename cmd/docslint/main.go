// Command docslint keeps README.md honest about the CLI surface: it
// parses every cmd/*/main.go for flag definitions and fails when a
// flag (or a whole command) is missing from README.md.
//
//	docslint            # lint README.md against cmd/*/main.go
//	docslint -root dir  # lint another checkout
//
// It is wired into CI's lint job, so adding a flag without documenting
// it breaks the build. The check is textual on purpose — a flag named
// "journal" is satisfied by any occurrence of "-journal" in the README
// — because the README documents flags in prose tables, not in
// machine-readable form.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root (containing README.md and cmd/)")
	flag.Parse()

	readme, err := os.ReadFile(filepath.Join(*root, "README.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "docslint:", err)
		os.Exit(2)
	}
	mains, err := filepath.Glob(filepath.Join(*root, "cmd", "*", "main.go"))
	if err != nil || len(mains) == 0 {
		fmt.Fprintln(os.Stderr, "docslint: no cmd/*/main.go found")
		os.Exit(2)
	}
	sort.Strings(mains)

	var missing []string
	for _, path := range mains {
		cmd := filepath.Base(filepath.Dir(path))
		if !strings.Contains(string(readme), cmd) {
			missing = append(missing, fmt.Sprintf("command %q is not mentioned in README.md", cmd))
			continue
		}
		flags, err := flagNames(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docslint:", err)
			os.Exit(2)
		}
		for _, name := range flags {
			if !strings.Contains(string(readme), "-"+name) {
				missing = append(missing, fmt.Sprintf("%s: flag -%s is not documented in README.md", cmd, name))
			}
		}
	}
	if len(missing) > 0 {
		for _, m := range missing {
			fmt.Println("FAIL ", m)
		}
		fmt.Printf("docslint: %d undocumented flag(s)/command(s)\n", len(missing))
		os.Exit(1)
	}
	fmt.Printf("docslint: %d command(s) documented\n", len(mains))
}

// flagNames extracts the names passed to flag.String/Bool/Int/... calls
// in one file.
func flagNames(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	var names []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "flag" {
			return true
		}
		switch sel.Sel.Name {
		case "String", "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration",
			"StringVar", "BoolVar", "IntVar", "Int64Var", "UintVar", "Uint64Var", "Float64Var", "DurationVar":
		default:
			return true
		}
		arg := call.Args[0]
		if sel.Sel.Name[len(sel.Sel.Name)-3:] == "Var" && len(call.Args) > 1 {
			arg = call.Args[1]
		}
		if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if name, err := strconv.Unquote(lit.Value); err == nil {
				names = append(names, name)
			}
		}
		return true
	})
	return names, nil
}
