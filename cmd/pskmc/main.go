// Command pskmc model checks a concrete candidate of a sketch over all
// thread interleavings (the verifier half of the CEGIS loop, standing
// in for SPIN):
//
//	pskmc -cand 0,1,3 file.psk
//
// With no -cand every hole is 0. Exit status is 0 for a verified
// candidate and 2 with a counterexample trace otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"psketch"
	"psketch/internal/obs"
)

func main() {
	var (
		target     = flag.String("target", "", "harness function (default: autodetect)")
		candFlag   = flag.String("cand", "", "comma-separated hole values (default: all zero)")
		intWidth   = flag.Int("intwidth", 5, "bit width of int values")
		loopBound  = flag.Int("loopbound", 4, "while-loop unroll bound")
		maxStates  = flag.Int("maxstates", 0, "state budget (0 = default)")
		par        = flag.Int("j", runtime.GOMAXPROCS(0), "search parallelism (1 = deterministic DFS)")
		noPOR      = flag.Bool("nopor", false, "disable the partial-order reduction (soundness cross-checks)")
		noSym      = flag.Bool("nosym", false, "disable the thread-symmetry reduction")
		compress   = flag.String("compress", "", "visited-set compression: collapse or bitstate (forces sequential search)")
		timeout    = flag.Duration("timeout", 0, "abort the search after this long (0 = no limit)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		journal    = flag.String("journal", "", "write a structured run journal (JSONL) to this file; inspect with psktrace")
		debugAddr  = flag.String("debug-addr", "", "serve live /metrics and /debug/pprof on this address")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pskmc [flags] file.psk")
		os.Exit(1)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	// Observability: the model-check search traces its mc.check /
	// mc.worker spans into the journal; the same counters serve live
	// on -debug-addr.
	met := obs.NewMetrics()
	var (
		tr *obs.Tracer
		js *obs.JournalSink
		jf *os.File
	)
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "journal:", err)
			os.Exit(1)
		}
		jf = f
		js = obs.NewJournalSink(f, map[string]string{
			"cmd":  "pskmc",
			"file": flag.Arg(0),
		})
		tr = obs.NewTracer(js)
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, met)
		if err != nil {
			fmt.Fprintln(os.Stderr, "debug-addr:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pskmc: live /metrics and /debug/pprof on http://%s\n", srv.Addr())
	}
	exit := func(code int) {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			writeMemProfile(*memProfile)
		}
		if js != nil {
			js.WriteMetrics(met.Snapshot())
			if err := js.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "journal:", err)
			}
			jf.Close()
			fmt.Fprintf(os.Stderr, "wrote journal to %s\n", *journal)
		}
		os.Exit(code)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	tgt := *target
	if tgt == "" {
		tgt, err = psketch.DetectTarget(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	var cancel atomic.Bool
	if *timeout > 0 {
		t := time.AfterFunc(*timeout, func() { cancel.Store(true) })
		defer t.Stop()
	}
	sk, err := psketch.Compile(string(src), tgt, psketch.Options{
		IntWidth: *intWidth, LoopBound: *loopBound, MCMaxStates: *maxStates,
		Parallelism: *par, NoPOR: *noPOR, NoSymmetry: *noSym, MCCompress: *compress, Cancel: &cancel,
		Trace: tr, Metrics: met,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	cand := make(psketch.Candidate, sk.Holes())
	if *candFlag != "" {
		parts := strings.Split(*candFlag, ",")
		for i, p := range parts {
			if i >= len(cand) {
				break
			}
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -cand:", err)
				exit(1)
			}
			cand[i] = v
		}
	}
	ok, cex, err := sk.ModelCheck(cand)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if ok {
		fmt.Println("verified: no assertion violations, memory errors or deadlocks on any interleaving")
		exit(0)
	}
	fmt.Print(cex)
	exit(2)
}

func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
