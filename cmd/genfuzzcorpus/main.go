// Command genfuzzcorpus regenerates the checked-in seed corpora under
// testdata/fuzz/. The seeds mirror the f.Add calls in fuzz_test.go and
// cover every Table 1 construct: holes, generators, reorder, fork,
// atomics (plain, conditional, lock sugar), and #define. Run from the
// repository root:
//
//	go run ./cmd/genfuzzcorpus
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
)

const header = "go test fuzz v1\n"

func write(dir, name string, lines ...string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := header
	for _, l := range lines {
		body += l + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}

var parseSeeds = map[string]string{
	"seed_hole_atomic": `
int g = 0;
harness void M() {
	fork (i; 2) {
		atomic { g = g + ??(2); }
	}
	assert g == 2;
}
`,
	"seed_define_condatomic": `
#define N 2
int c = 0;
harness void M() {
	fork (i; N) {
		atomic (c == i) { c = c + 1; }
	}
	assert c == N;
}
`,
	"seed_reorder_generator": `
int a = 0;
int b = 0;
harness void M() {
	fork (i; 2) {
		reorder {
			a = a + 1;
			b = {| a | a + 1 | 0 |};
		}
	}
}
`,
	"seed_struct_choice": `
struct Node { int val; Node next; }
int g = 0;
harness void M() {
	fork (i; 2) {
		if ({| true | false |}) {
			int t = g;
			t = t + 1;
			g = t;
		} else {
			atomic { g = g + 1; }
		}
	}
	assert g == 2;
}
`,
	"seed_lock_sugar": `
int l = 0;
int x = 0;
harness void M() {
	fork (i; 2) {
		lock(l);
		x = x + 1;
		unlock(l);
	}
	assert x == 2;
}
`,
	"seed_sequential_spec": `
int spec(int x) { return 3 * x + 5; }
int f(int x) implements spec { return ??(2) * x + ??(3); }
`,
}

var cnfSeeds = map[string][]byte{
	"seed_tiny_unsat":  {3, 2, 0, 3, 0, 5, 0, 4, 0},
	"seed_empty":       {0},
	"seed_three_cl":    {6, 2, 4, 0, 3, 5, 0, 7, 9, 0},
	"seed_dup_units":   {8, 2, 0, 2, 0},
	"seed_square":      {4, 2, 3, 0, 4, 5, 0, 2, 5, 0, 3, 4, 0},
	"seed_empty_claus": {5, 2, 3, 0, 0},
}

// (candidate, maxTraces, noPOR, noLocalFusion)
var projSeeds = map[string][4]any{
	"seed_cand1_por":   {byte(1), byte(1), false, false},
	"seed_cand2_nored": {byte(2), byte(4), true, true},
	"seed_cand3_nopor": {byte(3), byte(2), true, false},
	"seed_good_nofuse": {byte(0), byte(3), false, true},
}

// (program, candidate, noPOR, noLocalFusion, parallelism)
var diffSeeds = map[string][5]any{
	"seed_choice_seq":     {byte(0), byte(0), false, false, byte(1)},
	"seed_hole_nopor_par": {byte(1), byte(3), true, false, byte(4)},
	"seed_blocking":       {byte(2), byte(0), false, true, byte(2)},
	"seed_deadlock":       {byte(3), byte(1), true, true, byte(1)},
}

func enc(v any) string {
	switch x := v.(type) {
	case byte:
		return fmt.Sprintf("byte(%q)", rune(x))
	case bool:
		return fmt.Sprintf("bool(%v)", x)
	default:
		log.Fatalf("unsupported seed type %T", v)
		return ""
	}
}

func main() {
	root := "testdata/fuzz"
	for name, src := range parseSeeds {
		write(filepath.Join(root, "FuzzParse"), name, fmt.Sprintf("string(%q)", src))
	}
	for name, data := range cnfSeeds {
		write(filepath.Join(root, "FuzzCNF"), name, fmt.Sprintf("[]byte(%q)", string(data)))
	}
	for name, args := range projSeeds {
		write(filepath.Join(root, "FuzzProjection"), name,
			enc(args[0]), enc(args[1]), enc(args[2]), enc(args[3]))
	}
	for name, args := range diffSeeds {
		write(filepath.Join(root, "FuzzMCvsReference"), name,
			enc(args[0]), enc(args[1]), enc(args[2]), enc(args[3]), enc(args[4]))
	}
	fmt.Println("wrote seed corpora under", root)
}
