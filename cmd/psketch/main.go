// Command psketch synthesizes a sketch file:
//
//	psketch [flags] file.psk
//
// The target defaults to the single harness (or implements) function in
// the file; -target overrides. On success the resolved program is
// printed (holes filled, chosen statement order restored); if the
// sketch cannot be completed the exit status is 2 and the tool prints
// NO, as PSKETCH did for the lazyset benchmark.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"

	"psketch"
	"psketch/internal/obs"
)

func main() {
	var (
		target    = flag.String("target", "", "harness/implements function to synthesize (default: autodetect)")
		intWidth  = flag.Int("intwidth", 5, "bit width of int values")
		holeWidth = flag.Int("holewidth", 3, "default bit width of ?? holes")
		loopBound = flag.Int("loopbound", 4, "while-loop unroll bound")
		maxRepeat = flag.Int("maxrepeat", 8, "repeat(??) bound")
		quadratic = flag.Bool("quadratic", false, "use the quadratic reorder encoding (default: insertion)")
		maxStates = flag.Int("maxstates", 0, "model-checker state budget (0 = default)")
		verbose   = flag.Bool("v", false, "per-iteration progress")
		showCount = flag.Bool("count", false, "print |C| and exit")
		all       = flag.Int("all", 0, "enumerate up to N distinct solutions (0 = first only)")
		traces    = flag.Int("traces", 1, "counterexample traces per CEGIS iteration")
		par       = flag.Int("j", runtime.GOMAXPROCS(0), "solver/verifier parallelism (1 = deterministic)")
		noSym     = flag.Bool("nosym", false, "disable the verifier's thread-symmetry reduction")
		compress  = flag.String("compress", "", "verifier visited-set compression: collapse or bitstate (forces sequential search)")
		pipeline  = flag.Bool("pipeline", true, "overlap speculative solves with verification (needs -j > 1)")
		share     = flag.Bool("share-clauses", true, "share learned clauses between SAT portfolio workers (needs -j > 1)")
		proof     = flag.Bool("proofcheck", false, "log DRAT proofs and replay every UNSAT verdict through the backward checker")
		journal   = flag.String("journal", "", "write a structured run journal (JSONL) to this file; inspect with psktrace")
		debugAddr = flag.String("debug-addr", "", "serve live /metrics and /debug/pprof on this address")
		cubes     = flag.Int("cubes", 0, "split the candidate space into N cubes and race them (cube-and-conquer; 0/1 = off)")
		cubeWork  = flag.Int("cube-workers", 0, "concurrent cube engines under -cubes (0 = one per cube)")
		serve     = flag.String("serve-cubes", "", "coordinate a multi-process cube run on this address (e.g. 127.0.0.1:7331); pair with psketch -join")
		serveLoc  = flag.Int("serve-local", 1, "in-process cube engines the -serve-cubes coordinator runs alongside joiners")
		join      = flag.String("join", "", "join a -serve-cubes coordinator at this address and run cubes it hands out (no file argument)")
		emitDir   = flag.String("emit-dir", "", "enumerate all verified candidates and emit each as a compilable Go package under this directory")
		rank      = flag.Bool("rank", false, "with -emit-dir: go build each emitted candidate, run its load harness, and order candidates by measured ops/sec")
		maxSol    = flag.Int("max-solutions", 8, "enumerate-all bound for -emit-dir (block verified candidates and re-solve until UNSAT or N solutions)")
	)
	flag.Parse()
	if *join != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: psketch -join host:port (the sketch arrives over the wire)")
			os.Exit(1)
		}
		vf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
		if err := psketch.JoinCubes(*join, vf); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: psketch [flags] file.psk")
		os.Exit(1)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Observability: -journal traces the whole run to JSONL (psktrace
	// renders it), -debug-addr serves the same counters live.
	met := obs.NewMetrics()
	var (
		tr *obs.Tracer
		js *obs.JournalSink
		jf *os.File
	)
	if *journal != "" {
		f, err := os.Create(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "journal:", err)
			os.Exit(1)
		}
		jf = f
		js = obs.NewJournalSink(f, map[string]string{
			"cmd":         "psketch",
			"file":        flag.Arg(0),
			"parallelism": strconv.Itoa(*par),
			"goos":        runtime.GOOS,
		})
		tr = obs.NewTracer(js)
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, met)
		if err != nil {
			fmt.Fprintln(os.Stderr, "debug-addr:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "psketch: live /metrics and /debug/pprof on http://%s\n", srv.Addr())
	}
	// exit finishes the journal (metrics trailer + flush) first, since
	// os.Exit skips deferred calls.
	exit := func(code int) {
		if js != nil {
			js.WriteMetrics(met.Snapshot())
			if err := js.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "journal:", err)
			}
			jf.Close()
			fmt.Fprintf(os.Stderr, "wrote journal to %s\n", *journal)
		}
		os.Exit(code)
	}
	opts := psketch.Options{
		IntWidth:           *intWidth,
		HoleWidth:          *holeWidth,
		LoopBound:          *loopBound,
		MaxRepeat:          *maxRepeat,
		MCMaxStates:        *maxStates,
		TracesPerIteration: *traces,
		MaxSolutions:       *maxSol,
		Parallelism:        *par,
		NoSymmetry:         *noSym,
		MCCompress:         *compress,
		NoPipeline:         !*pipeline,
		NoShareClauses:     !*share,
		Proof:              *proof,
		Cubes:              *cubes,
		CubeWorkers:        *cubeWork,
		Trace:              tr,
		Metrics:            met,
	}
	if *quadratic {
		opts.Encoding = psketch.EncodeQuadratic
	}
	if *verbose {
		opts.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	tgt := *target
	if tgt == "" {
		tgt, err = autodetectTarget(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
	}
	sk, err := psketch.Compile(string(src), tgt, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if *showCount {
		fmt.Printf("|C| = %s\n", sk.CandidateCount())
		exit(0)
	}
	if *all > 0 {
		rs, err := sk.Enumerate(*all)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		if len(rs) == 0 {
			fmt.Println("NO — the sketch cannot be resolved")
			exit(2)
		}
		seen := map[string]bool{}
		n := 0
		for _, r := range rs {
			if seen[r.Code] {
				continue
			}
			seen[r.Code] = true
			n++
			fmt.Printf("// ---- solution %d (%d iteration(s)) ----\n\n%s\n", n, r.Stats.Iterations, r.Code)
		}
		exit(0)
	}
	if *emitDir != "" {
		code := runEmit(sk, *emitDir, *rank)
		exit(code)
	}
	var res *psketch.Result
	if *serve != "" {
		if opts.Cubes < 2 {
			opts.Cubes = 2 // serving implies a split; default to the minimum
		}
		res, err = psketch.ServeCubes(*serve, string(src), tgt, *serveLoc, opts)
	} else {
		res, err = sk.Synthesize()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if res.Cube != nil && *verbose {
		for _, pc := range res.Cube.PerCube {
			fmt.Fprintf(os.Stderr, "cube %d: resolved=%v exhausted=%v canceled=%v remote=%v stolen=%v iters=%d remote_traces=%d pruned=%d\n",
				pc.ID, pc.Resolved, pc.Exhausted, pc.Canceled, pc.Remote, pc.Stolen,
				pc.Stats.Iterations, pc.RemoteTraces, pc.PrunedByRemote)
		}
	}
	if !res.Resolved {
		fmt.Println("NO — the sketch cannot be resolved")
		if res.Certificate != nil {
			fmt.Printf("// DRAT-certified: %d premises, %d lemmas replayed\n",
				res.Certificate.NumPremises(), res.Certificate.NumLemmas())
		}
		exit(2)
	}
	fmt.Printf("// resolved in %d iteration(s), %v\n\n", res.Stats.Iterations, res.Stats.Total.Round(1000000))
	fmt.Print(res.Code)
	exit(0)
}

func autodetectTarget(src string) (string, error) {
	return psketch.DetectTarget(src)
}

// runEmit drives the -emit-dir pipeline: enumerate all verified
// candidates, lower each distinct one to a Go package under dir, and
// (with -rank) order them by measured throughput. Returns the exit
// code.
func runEmit(sk *psketch.Sketch, dir string, rank bool) int {
	if rank {
		rs, ms, err := sk.SynthesizeRanked(dir, psketch.RankOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if len(rs) == 0 {
			fmt.Println("NO — the sketch cannot be resolved")
			return 2
		}
		fmt.Printf("// %d distinct verified candidate(s) emitted under %s, ranked by measured ops/sec\n", len(rs), dir)
		for i, m := range ms {
			if m.Err != "" {
				fmt.Printf("// #%d %s: FAILED (%s)\n", i+1, m.Dir, m.Err)
				continue
			}
			fmt.Printf("// #%d %s: %.0f ops/sec (%d ops, build %dms)\n", i+1, m.Dir, m.OpsPerSec, m.Ops, m.BuildMS)
		}
		fmt.Printf("\n// ---- fastest candidate ----\n\n%s", rs[0].Code)
		return 0
	}
	rs, dirs, err := sk.SynthesizeEmit(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(rs) == 0 {
		fmt.Println("NO — the sketch cannot be resolved")
		return 2
	}
	fmt.Printf("// %d distinct verified candidate(s) emitted under %s\n", len(rs), dir)
	for i, d := range dirs {
		fmt.Printf("// %s (%d iteration(s))\n", d, rs[i].Stats.Iterations)
	}
	return 0
}
