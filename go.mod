module psketch

go 1.22
