package psketch

import "testing"

// Sequential CEGIS on a one-hole sketch: f(x) = x + ?? implements x+3.
func TestSequentialTiny(t *testing.T) {
	src := `
int spec(int x) { return x + 3; }
int f(int x) implements spec { return x + ??; }
`
	res, err := Synthesize(src, "f", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("expected resolution")
	}
	t.Logf("iterations=%d code:\n%s", res.Stats.Iterations, res.Code)
}

// Concurrent CEGIS: two threads must increment a shared counter; the
// sketch chooses between a racy increment and an atomic one.
func TestConcurrentTiny(t *testing.T) {
	src := `
int counter = 0;
int choice = 0;

void Incr() {
	if ({| true | false |}) {
		atomic { counter = counter + 1; }
	} else {
		int t = counter;
		t = t + 1;
		counter = t;
	}
}

harness void Main() {
	fork (i; 2) {
		Incr();
		Incr();
	}
	assert counter == 4;
}
`
	res, err := Synthesize(src, "Main", Options{Verbose: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("expected resolution")
	}
	t.Logf("iterations=%d code:\n%s", res.Stats.Iterations, res.Code)
}
