package psketch_test

import (
	"fmt"

	"psketch"
)

// ExampleSynthesize shows the smallest end-to-end use: a sketch with a
// binary choice, refuted and repaired through one counterexample trace.
func ExampleSynthesize() {
	src := `
int counter = 0;

harness void Main() {
	fork (i; 2) {
		if ({| true | false |}) {
			int t = counter;
			t = t + 1;
			counter = t;
		} else {
			atomic { counter = counter + 1; }
		}
	}
	assert counter == 2;
}
`
	res, err := psketch.Synthesize(src, "Main", psketch.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("resolved:", res.Resolved)
	// Output:
	// resolved: true
}

// ExampleSketch_CandidateCount reproduces the paper's §2 figure: the
// Figure 1 Enqueue sketch denotes 1,975,680 candidate programs.
func ExampleSketch_CandidateCount() {
	src := `
struct QueueEntry { QueueEntry next = null; int stored; int taken = 0; }
QueueEntry prevHead;
QueueEntry tail;

#define aLocation {| tail(.next)? | (tmp|newEntry).next |}
#define aValue {| (tail|tmp|newEntry)(.next)? | null |}
#define anExpr(x,y) {| x==y | x!=y | false |}

void Enqueue(int v) {
	QueueEntry tmp = null;
	QueueEntry newEntry = new QueueEntry(v);
	reorder {
		aLocation = aValue;
		tmp = AtomicSwap(aLocation, aValue);
		if (anExpr(tmp, aValue)) { aLocation = aValue; }
	}
}

harness void Main() {
	prevHead = new QueueEntry(0);
	tail = prevHead;
	fork (i; 2) { Enqueue(i); }
}
`
	sk, err := psketch.Compile(src, "Main", psketch.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("|C| =", sk.CandidateCount())
	// Output:
	// |C| = 1975680
}

// ExampleSketch_ModelCheck uses the verifier directly (the SPIN role):
// check one candidate over every thread interleaving.
func ExampleSketch_ModelCheck() {
	src := `
int g = 0;
harness void Main() {
	fork (i; 2) {
		if ({| true | false |}) {
			atomic { g = g + 1; }
		} else {
			int t = g;
			t = t + 1;
			g = t;
		}
	}
	assert g == 2;
}
`
	sk, _ := psketch.Compile(src, "Main", psketch.Options{})
	ok, _, _ := sk.ModelCheck(psketch.Candidate{0}) // atomic branch
	fmt.Println("atomic verified:", ok)
	ok, _, _ = sk.ModelCheck(psketch.Candidate{1}) // racy branch
	fmt.Println("racy verified:", ok)
	// Output:
	// atomic verified: true
	// racy verified: false
}

// ExampleSynthesize_sequential shows §5's mode: complete a sketch
// against a reference implementation, over all inputs.
func ExampleSynthesize_sequential() {
	src := `
int spec(int x) { return 3 * x + 5; }

int f(int x) implements spec {
	return ??(2) * x + ??(3);
}
`
	res, err := psketch.Synthesize(src, "f", psketch.Options{IntWidth: 6})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("holes:", psketch.CandidateString(res.Candidate))
	// Output:
	// holes: [3 5]
}
