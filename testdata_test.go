package psketch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The documented file workflow: every testdata sketch autodetects its
// target and synthesizes (this is what cmd/psketch does).
func TestTestdataSketches(t *testing.T) {
	files, err := filepath.Glob("testdata/*.psk")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata sketches: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			srcb, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			src := string(srcb)
			tgt, err := DetectTarget(src)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{}
			if strings.Contains(f, "queue") {
				opts.IntWidth = 6
				opts.LoopBound = 5
			}
			res, err := Synthesize(src, tgt, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Resolved {
				t.Fatalf("%s did not resolve", f)
			}
			if res.Code == "" {
				t.Fatal("no code printed")
			}
		})
	}
}
