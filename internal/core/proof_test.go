package core

import (
	"testing"

	"psketch/internal/desugar"
)

// A resolved sequential run's final verdict is "no violating input",
// i.e. UNSAT under the goal assumption — the result must carry a
// certificate that replays independently.
func TestProofSequentialResolved(t *testing.T) {
	syn := build(t, `
int spec(int x) { return 3 * x + 5; }
int f(int x) implements spec { return ??(2) * x + ??(3); }
`, "f", desugar.Options{IntWidth: 6}, Options{Proof: true})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("should resolve")
	}
	if res.Certificate == nil {
		t.Fatal("resolved sequential run carries no verification certificate")
	}
	if _, err := res.Certificate.Verify(); err != nil {
		t.Fatalf("certificate does not re-verify: %v", err)
	}
	if res.Stats.ProofCheck <= 0 {
		t.Fatalf("proof-check time not recorded: %+v", res.Stats)
	}
}

// An unresolvable sequential sketch exits on candidate-space
// exhaustion; the UNSAT must be certified.
func TestProofSequentialUnresolvable(t *testing.T) {
	syn := build(t, `
int spec(int x) { return x * x; }
int f(int x) implements spec { return x + ??(2); }
`, "f", desugar.Options{IntWidth: 5}, Options{Proof: true})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved {
		t.Fatal("x+c cannot implement x²")
	}
	if res.Certificate == nil {
		t.Fatal("definitive NO without a certificate")
	}
	if _, err := res.Certificate.Verify(); err != nil {
		t.Fatalf("exhaustion certificate does not re-verify: %v", err)
	}
}

// The concurrent engine's exhaustion exit must be certified under the
// full parallel configuration (portfolio, clause sharing, pipeline).
func TestProofConcurrentUnresolvable(t *testing.T) {
	src := `
int g = 0;
harness void M() {
	fork (i; 2) {
		int t = g;
		t = t + 1;
		g = t;
	}
	assert g == 2;
}
`
	for _, par := range []int{1, 4} {
		syn := build(t, src, "M", desugar.Options{}, Options{Proof: true, Parallelism: par})
		res, err := syn.Synthesize()
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Resolved {
			t.Fatalf("parallelism %d: racy increment resolved", par)
		}
		if res.Certificate == nil {
			t.Fatalf("parallelism %d: definitive NO without a certificate", par)
		}
		if _, err := res.Certificate.Verify(); err != nil {
			t.Fatalf("parallelism %d: certificate does not re-verify: %v", par, err)
		}
		// A hole-free space can be refuted by unit propagation alone, so
		// lemma counts may legitimately be zero; the replay itself must
		// still have run.
		if res.Stats.ProofCheck <= 0 {
			t.Fatalf("parallelism %d: proof replay time not recorded: %+v", par, res.Stats)
		}
	}
}

// A resolved concurrent run's final verdict is the model checker's, so
// no SAT certificate applies; the run must still complete cleanly with
// proof logging on.
func TestProofConcurrentResolved(t *testing.T) {
	syn := build(t, raceySketch, "M", desugar.Options{}, Options{Proof: true, Parallelism: 4})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("should resolve")
	}
	if res.Certificate != nil {
		t.Fatal("concurrent resolution is model-checked, not SAT-certified")
	}
}
