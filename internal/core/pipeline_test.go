package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"psketch/internal/desugar"
)

// The pipelined engine must reach the same verdict as the unpipelined
// parallel engine and the sequential engine, and must actually
// speculate on a multi-iteration sketch.
func TestPipelineMatchesUnpipelined(t *testing.T) {
	seq := build(t, raceySketch, "M", desugar.Options{}, Options{Parallelism: 1})
	seqRes, err := seq.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	plain := build(t, raceySketch, "M", desugar.Options{}, Options{Parallelism: 4, NoPipeline: true})
	plainRes, err := plain.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	piped := build(t, raceySketch, "M", desugar.Options{}, Options{Parallelism: 4})
	pipedRes, err := piped.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if pipedRes.Resolved != seqRes.Resolved || plainRes.Resolved != seqRes.Resolved {
		t.Fatalf("verdicts differ: piped=%v plain=%v seq=%v",
			pipedRes.Resolved, plainRes.Resolved, seqRes.Resolved)
	}
	// The unique correct choice is the atomic branch.
	if pipedRes.Candidate.Value(0) != seqRes.Candidate.Value(0) {
		t.Fatalf("candidates differ: piped=%v seq=%v", pipedRes.Candidate, seqRes.Candidate)
	}
	if pipedRes.Stats.SpecSolves == 0 {
		t.Fatalf("pipelined run never speculated: %+v", pipedRes.Stats)
	}
	if plainRes.Stats.SpecSolves != 0 {
		t.Fatalf("NoPipeline run speculated: %+v", plainRes.Stats)
	}
	// Projections only happen on refute iterations; a lucky first
	// candidate legitimately skips the cache.
	if pipedRes.Stats.Iterations > 1 && pipedRes.Stats.ProjMisses+pipedRes.Stats.ProjHits == 0 {
		t.Fatal("projection cache saw no Encode calls despite refuted iterations")
	}
}

// Unresolvable must stay a definitive NO under the pipeline (a
// speculative model adopted without a blocking solve still satisfies
// every learned constraint).
func TestPipelineUnresolvable(t *testing.T) {
	syn := build(t, `
int g = 0;
harness void M() {
	fork (i; 2) {
		int t = g;
		t = t + ??(2);
		g = t;
	}
	assert g == 2;
}
`, "M", desugar.Options{}, Options{Parallelism: 4})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved {
		t.Fatalf("racy increment cannot be resolved; got %v", res.Candidate)
	}
}

// Clause sharing off must not change verdicts.
func TestPipelineNoShareClauses(t *testing.T) {
	syn := build(t, raceySketch, "M", desugar.Options{}, Options{Parallelism: 4, NoShareClauses: true})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("should resolve")
	}
	if res.Stats.SATExported != 0 || res.Stats.SATImported != 0 {
		t.Fatalf("sharing disabled but clauses moved: %+v", res.Stats)
	}
}

// A pre-fired Cancel token must abort immediately with ErrCanceled and
// leave no goroutines behind (the -race run would flag a leaked solve).
func TestPipelineCancel(t *testing.T) {
	var cancel atomic.Bool
	cancel.Store(true)
	syn := build(t, raceySketch, "M", desugar.Options{}, Options{Parallelism: 4, Cancel: &cancel})
	_, err := syn.Synthesize()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// Enumerate must keep working across Synthesize calls with the
// persistent projection cache and speculation state.
func TestPipelineEnumerate(t *testing.T) {
	syn := build(t, `
int g = 0;
harness void M() {
	fork (i; 1) { }
	g = ??(2);
	assert g >= 2;
}
`, "M", desugar.Options{}, Options{Parallelism: 4})
	rs, err := syn.Enumerate(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 { // 2 and 3
		t.Fatalf("got %d candidates", len(rs))
	}
}
