// Package core contains the paper's primary contribution: the
// counterexample-guided inductive synthesis (CEGIS) engines. The
// sequential engine (§5) learns from counterexample inputs; the
// concurrent engine (§6) learns from counterexample traces projected
// onto the candidate space.
//
// # Concurrency contract
//
// A Synthesizer is driven from a single goroutine — its methods are not
// goroutine-safe — but with Options.Parallelism > 1 (the default is
// runtime.GOMAXPROCS(0)) both CEGIS phases fan out internally: the
// synthesize phase races a portfolio of diversified incremental SAT
// solvers (internal/sat.Portfolio), and the verify phase shards the
// model checker's interleaving DFS across workers (internal/mc). All
// worker goroutines are joined before each phase returns, so the loop
// itself stays sequential and the phases never overlap.
//
// Determinism: Parallelism == 1 reproduces the single-threaded engine
// bit-for-bit — same candidates in the same order, same iteration
// counts, same counterexamples. Parallelism > 1 keeps verdicts and
// soundness (a resolved candidate is still verified over every
// interleaving; UNSAT is still a definitive NO) but may visit different
// intermediate candidates run to run, because portfolio models and the
// first-found counterexample are race-dependent.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"psketch/internal/circuit"
	"psketch/internal/desugar"
	"psketch/internal/drat"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/obs"
	"psketch/internal/project"
	"psketch/internal/sat"
	"psketch/internal/state"
	"psketch/internal/sym"
	"psketch/internal/types"
)

// Options configure synthesis.
type Options struct {
	// MaxIterations bounds the CEGIS loop (default 256).
	MaxIterations int
	// MaxSolutions bounds enumerate-all mode (EnumerateAll): keep
	// blocking verified candidates and re-solving until UNSAT or this
	// many solutions (default 8). The paper's §8.3.1 autotuning hook,
	// bounded.
	MaxSolutions int
	// Block rules out candidates before synthesis starts: each entry
	// gets a blocking clause exactly as Exclude would add after a
	// solution. Blocking clauses are whole-space facts, so they stay
	// sound under cube assumptions — internal/cube uses this to resume
	// enumeration across independently cubed re-solves.
	Block []desugar.Candidate
	// MCMaxStates bounds the model checker (default 4,000,000).
	MCMaxStates int
	// TracesPerIteration asks the verifier for several counterexample
	// traces per CEGIS iteration (default 1, the paper's behaviour);
	// each is projected into its own inductive constraint.
	TracesPerIteration int
	// Parallelism sizes both the SAT portfolio and the model checker's
	// worker pool (default runtime.GOMAXPROCS(0)). 1 runs the fully
	// deterministic sequential engine.
	Parallelism int
	// NoPOR disables the model checker's footprint-based partial-order
	// reduction (soundness cross-checks and measurement; the reduction
	// is on by default).
	NoPOR bool
	// NoSymmetry disables the model checker's thread-symmetry (orbit)
	// reduction (on by default; see mc.Options.NoSymmetry).
	NoSymmetry bool
	// MCCompress selects the model checker's visited-set representation:
	// "" (exact fingerprint table), "collapse", or "bitstate". Non-empty
	// modes force the verifier sequential (see mc.Options.Compress).
	MCCompress string
	// NoPipeline disables the speculative synthesize/verify overlap of
	// the concurrent engine (on by default at Parallelism > 1; the
	// pipeline never runs at Parallelism 1, which stays bit-for-bit the
	// sequential engine).
	NoPipeline bool
	// NoShareClauses disables learned-clause exchange between the SAT
	// portfolio's workers (on by default at Parallelism > 1).
	NoShareClauses bool
	// Proof enables DRAT proof logging in the SAT backends (solver or
	// portfolio, shared-clause pool included) and replays every UNSAT
	// verdict the loop commits to — candidate-space exhaustion and the
	// sequential verifier's final "no counterexample input" — through
	// the internal/drat backward checker before the verdict is
	// returned. A failed replay surfaces as an error, so a "cannot be
	// resolved" answer always carries a machine-checked certificate.
	Proof bool
	// Cancel, when set and stored true by another goroutine, aborts the
	// synthesis cooperatively: in-flight SAT solves and model-checker
	// searches unwind, worker goroutines are joined, and Synthesize
	// returns ErrCanceled.
	Cancel *atomic.Bool
	// Trace, when set, receives hierarchical spans for every phase of
	// the loop: per-iteration solve/verify/project/spec spans, the SAT
	// backend's per-solve (and per-portfolio-worker) spans, the model
	// checker's per-check and per-shard-worker spans, and the projection
	// cache's per-encode spans. Nil disables tracing at zero cost.
	Trace *obs.Tracer
	// TraceParent is the span the run's root spans parent to (0 for
	// top-level), letting a driver such as internal/bench nest whole
	// synthesis runs under its own spans.
	TraceParent obs.SpanID
	// Metrics, when set, is the registry the loop's counters live in;
	// Stats is a view computed from it, so an external registry sees
	// live values mid-run (the -debug-addr endpoint). Nil uses a
	// private registry — Stats works either way.
	Metrics *obs.Metrics
	// HeapSampleEvery samples the heap high-water mark every N CEGIS
	// iterations. runtime.ReadMemStats stops the world, so the default
	// 0 samples only once, at the end of Synthesize, keeping the pause
	// off the hot loop; pskbench sets 1 to preserve the historical
	// per-iteration MemMiB measurement.
	HeapSampleEvery int
	// Verbose, when set, receives progress lines.
	Verbose func(format string, args ...any)
	// WatchCandidate, when non-nil, is checked against every learned
	// constraint; if a projection claims this candidate fails, the
	// synthesizer reports it via Verbose (soundness debugging).
	WatchCandidate desugar.Candidate

	// Cube restricts the synthesizer to the sub-space of candidates in
	// which each listed hole bit takes the given value (cube-and-conquer
	// CEGIS, internal/cube). The cube literals are passed to every
	// synthesis solve as ASSUMPTIONS, never added as clauses — the
	// soundness lever of the whole scheme: first-UIP learning resolves
	// only on reason clauses, so assumption literals surface in learnt
	// clauses instead of becoming hidden premises, every clause this
	// synthesizer learns or derives is implied by the problem clauses
	// alone, and cross-cube clause sharing plus merged DRAT logging stay
	// sound. An empty Cube is the whole space.
	Cube []CubeLit
	// CubeID identifies this synthesizer on TraceBus and ClauseBus (and
	// in spans/counters). Zero outside cube mode.
	CubeID int
	// TraceBus, when set, connects the synthesizer to the cross-cube
	// counterexample exchange: every projected trace is published, and
	// other cubes' projections are imported at iteration boundaries and
	// installed as constraints (projections are facts about the entire
	// candidate space — see internal/project — so a trace found in one
	// cube prunes every other).
	TraceBus *project.Bus
	// ClauseBus likewise connects the SAT backend to the cross-cube
	// learnt-clause exchange (prefix-only clauses; see sat.Bus).
	ClauseBus *sat.Bus
	// ProofSink, when set, is an external DRAT sink (typically a
	// drat.Namespace of internal/cube's shared Recorder) the SAT backend
	// logs into instead of a private recorder. The sink's owner is then
	// responsible for certifying the merged UNSAT verdict: the
	// synthesizer skips its own certification and Result.Certificate
	// stays nil. Overrides Proof.
	ProofSink drat.Sink
	// Prog, when set, is a pre-lowered program for the sketch, shared
	// read-only; New skips its own ir.Lower call. In-process cube mode
	// requires this: ir.Lower mutates AST nodes the sketch shares
	// across engines (alloc-site numbering), so concurrent workers must
	// lower once, before the race starts, not once each.
	Prog *ir.Program

	// Warm, when set together with WarmKey, connects the synthesizer to
	// a cross-request warm-state store (psketchd's cross-request cache):
	// New tries to check out a previously built encoding context —
	// hash-consed builder, hole inputs, projection cache with its
	// memoized trace prefixes — for the same sketch, and Release returns
	// the (possibly grown) context for the next run of that sketch. The
	// checkout is exclusive, so concurrent jobs of one sketch never share
	// a live context. Only concurrent sketches carry warm state (the
	// sequential engine has no projection cache). The caller must
	// guarantee WarmKey identifies the (source, target, desugar options)
	// triple exactly — psketch.SketchHash does.
	Warm *project.Store
	// WarmKey is the sketch-hash key into Warm ("" disables).
	WarmKey string
}

// CubeLit fixes one bit of one hole: bit Bit of hole Hole takes value
// Val throughout this synthesizer's cube.
type CubeLit struct {
	Hole int  `json:"hole"`
	Bit  int  `json:"bit"`
	Val  bool `json:"val"`
}

func (o Options) defaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 256
	}
	if o.MaxSolutions == 0 {
		o.MaxSolutions = 8
	}
	if o.MCMaxStates == 0 {
		o.MCMaxStates = 4_000_000
	}
	if o.TracesPerIteration == 0 {
		o.TracesPerIteration = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Verbose == nil {
		o.Verbose = func(string, ...any) {}
	}
	return o
}

// Stats mirrors the Figure 9 columns: per-phase solver and model-build
// times, iteration count, and memory. It is a point-in-time view
// computed from the synthesizer's metrics registry (statsView), not a
// separately maintained side channel, so a journal's metrics trailer
// and the Stats a caller sees are the same numbers.
type Stats struct {
	Iterations int
	SSolve     time.Duration // synthesizer SAT time
	SModel     time.Duration // synthesizer encoding time (projection + Tseitin)
	VSolve     time.Duration // verifier search time (model checking / SAT)
	VModel     time.Duration // verifier model-build time (lowering/layout)
	Total      time.Duration
	SATVars    int
	SATClauses int
	SATConfl   int64
	MCStates   int
	MCTrans    int // transitions the model checker executed
	// MCSymClasses is the largest number of thread-symmetry classes any
	// verified candidate exhibited; MCOrbitHits totals visited-set hits
	// that needed a non-identity orbit representative; MCVisitedBytes is
	// the peak estimated visited-set footprint of any single check.
	// Unlike the fields above, these three are per-run (tracked on the
	// synthesizer, not read back from the registry, whose counters of
	// the same names accumulate across runs sharing one Metrics).
	MCSymClasses   int
	MCOrbitHits    int64
	MCVisitedBytes uint64
	MaxHeap        uint64 // peak observed heap, bytes
	// Parallelism is the worker count both phases ran at; the
	// per-worker columns below are empty at Parallelism 1.
	Parallelism int
	// SATWorkers holds the synthesis portfolio's per-worker totals
	// (wins, conflicts, decisions) across all iterations.
	SATWorkers []sat.WorkerStats
	// MCWorkerStates accumulates the states each verifier worker
	// expanded across all iterations.
	MCWorkerStates []int
	// SpecSolves counts speculative solves launched by the pipelined
	// engine; SpecHits counts the speculative candidates that survived
	// the new constraints and were adopted without a blocking solve.
	// SpecSolve is the wall time those solves ran — overlapped with
	// verification, so it is NOT part of the critical path that SSolve
	// measures.
	SpecSolves int
	SpecHits   int
	SpecSolve  time.Duration
	// SATExported/SATImported total the clauses exchanged through the
	// portfolio's shared pool across all workers;
	// SATBusExported/SATBusImported total the clauses relayed over the
	// cross-cube bus. Like the reduction stats above (and unlike in
	// earlier revisions), all four are per-run deltas tracked on the
	// synthesizer, so concurrent cube workers and repeated runs sharing
	// one Metrics registry no longer overwrite each other's registry
	// values — the registry accumulates (Add), Stats stays per-run.
	SATExported    int64
	SATImported    int64
	SATBusExported int64
	SATBusImported int64
	// Projection-encoding cache effectiveness: Encode calls that
	// restored a memoized trace prefix (ProjHits) vs. replayed from the
	// base state (ProjMisses), and the total projected entries skipped.
	ProjHits   int64
	ProjMisses int64
	ProjSaved  int64
	// WarmStart reports that the run checked its encoding context out of
	// a cross-request warm store (Options.Warm) instead of building it
	// cold — projection-cache hits then include prefixes memoized by
	// earlier runs of the same sketch.
	WarmStart bool
	// DRAT certificate replay totals (Options.Proof only): lemmas the
	// recorder held at certification time, lemmas the backward pass
	// actually checked / found core, and the wall time Verify spent.
	ProofLemmas  int
	ProofChecked int
	ProofCore    int
	ProofCheck   time.Duration
	// Throughput is the candidate's measured ops/sec from the emitted
	// Go load harness (internal/emit ranking pass); zero when the
	// candidate was never emitted and measured.
	Throughput float64
}

// ErrCanceled is returned by Synthesize when Options.Cancel fired
// before the loop converged.
var ErrCanceled = errors.New("core: canceled")

// Result is the synthesis outcome.
type Result struct {
	Resolved  bool
	Candidate desugar.Candidate
	Stats     Stats
	// LastTrace holds the final counterexample for unresolvable
	// sketches (nil otherwise).
	LastTrace *mc.Trace
	// Certificate, under Options.Proof, is the verified DRAT
	// certificate backing the result's final UNSAT verdict: the
	// candidate-space exhaustion for unresolved results, or the
	// sequential verifier's "no violating input" verdict for resolved
	// sequential results. Resolved concurrent results carry none —
	// there the final verdict is the model checker's, cross-checked by
	// internal/oracle instead.
	Certificate *drat.Certificate
}

// Synthesizer runs CEGIS for one lowered sketch.
type Synthesizer struct {
	Sk     *desugar.Sketch
	Prog   *ir.Program
	Layout *state.Layout
	opts   Options

	b        *circuit.Builder
	holes    []circuit.Word
	solver   satSolver
	vmap     *circuit.VarMap
	holeVars [][]int

	// The sequential verifier's backend persists across CEGIS
	// iterations: one solver keeps its learnt clauses and saved phases,
	// each iteration's violation circuit is added incrementally, and the
	// current goal is passed as a Solve assumption (so stale goals from
	// earlier candidates stay inert). The builder and variable map must
	// live exactly as long as the solver — circuit literal ids are only
	// unique within one builder.
	vb       *circuit.Builder
	verifier satSolver
	vvmap    *circuit.VarMap

	// DRAT recorders (Options.Proof): one per SAT backend. vcert holds
	// the verified certificate of the sequential verifier's final
	// UNSAT-under-goal verdict for the Result.
	proof  *drat.Recorder
	vproof *drat.Recorder
	vcert  *drat.Certificate

	// projCache memoizes projection encodings per trace prefix on b; it
	// persists across iterations and Synthesize calls (Enumerate).
	projCache *project.Cache

	// warmStart records that b/holes/projCache came from Options.Warm;
	// released marks that Release already returned them.
	warmStart bool
	released  bool

	// specAct is the activation variable gating speculative blocking
	// clauses (-1 until first used). Each pipelined iteration adds
	// (¬specAct ∨ block(cand_k)); a speculative solve assumes specAct,
	// activating every such clause at once — sound, because by the time
	// iteration k+1 speculates, candidates 1..k are all permanently
	// refuted by ungated clauses. Regular solves leave specAct free.
	specAct int

	// Observability. tr is nil when tracing is off (span calls are then
	// no-ops); met always points at a registry — Options.Metrics or a
	// private one — so the counter handles in ct are always valid. The
	// speculative-solve goroutine bumps its counters concurrently with
	// the driver; counters are single atomics, so no lock is involved.
	tr      *obs.Tracer
	met     *obs.Metrics
	ct      counters
	runSpan obs.Span // current Synthesize root span

	// statsMu guards the two slice-valued stats the registry cannot
	// hold: per-worker model-checker state totals and the portfolio's
	// per-worker solver totals.
	statsMu        sync.Mutex
	mcWorkerStates []int
	satWorkers     []sat.WorkerStats
	// Per-run reduction stats. The registry counters with the same
	// names are process-wide (a shared Options.Metrics accumulates
	// across runs, which is what a live /metrics endpoint wants); these
	// fields are this synthesizer's own maxima/totals so Stats and
	// bench rows stay per-run even in a multi-benchmark sweep.
	runSymClasses   int
	runOrbitHits    int64
	runVisitedBytes uint64
	// Per-run SAT exchange/conflict stats, same pattern: the solver
	// backend counts lifetime totals (Enumerate reuses it across runs),
	// so Synthesize snapshots baselines at entry and reports deltas,
	// Add-ing (never Set-ing) them into the registry. This is what lets
	// several portfolios — cube workers, sweep rows — share one process
	// without double-counting or overwriting each other.
	baseConfl, baseExported, baseImported       int64
	baseBusExported, baseBusImported            int64
	baseProjHits, baseProjMisses, baseProjSaved int64
	runSATConfl, runSATExported, runSATImported int64
	runBusExported, runBusImported              int64
	runProjHits, runProjMisses, runProjSaved    int64
	runSATVars, runSATClauses                   int

	// Cube mode: the assumption literals of Options.Cube (translated to
	// solver literals by New), the number of SAT variables the setup
	// encoding allocated (the cross-cube shared prefix), and the
	// TraceBus fetch cursor.
	cubeAssume  []sat.Lit
	setupVars   int
	traceCursor int
}

// counters caches the registry handles the loop bumps. Durations are
// nanoseconds; the cegis.*_ns names match obs.PhaseCounter, which is
// what lets psktrace cross-check journal span totals against the
// metrics trailer.
type counters struct {
	iterations, totalNS                    *obs.Counter
	ssolveNS, smodelNS, vsolveNS, vmodelNS *obs.Counter
	specSolves, specHits, specNS           *obs.Counter
	mcStates, mcTrans                      *obs.Counter
	mcSymClasses, mcOrbitHits              *obs.Counter
	mcVisitedBytes                         *obs.Counter
	heapMax                                *obs.Counter
	satVars, satClauses, satConfl          *obs.Counter
	satExported, satImported               *obs.Counter
	satBusExported, satBusImported         *obs.Counter
	remoteTraces, prunedRemote             *obs.Counter
	projHits, projMisses, projSaved        *obs.Counter

	proofLemmas, proofChecked, proofCore, proofCheckNS *obs.Counter
}

func newCounters(m *obs.Metrics) counters {
	return counters{
		iterations:   m.Counter("cegis.iterations"),
		totalNS:      m.Counter("cegis.total_ns"),
		ssolveNS:     m.Counter(obs.PhaseCounter(obs.PhaseSSolve)),
		smodelNS:     m.Counter(obs.PhaseCounter(obs.PhaseSModel)),
		vsolveNS:     m.Counter(obs.PhaseCounter(obs.PhaseVSolve)),
		vmodelNS:     m.Counter(obs.PhaseCounter(obs.PhaseVModel)),
		specNS:       m.Counter(obs.PhaseCounter(obs.PhaseSpec)),
		specSolves:   m.Counter("cegis.spec_solves"),
		specHits:     m.Counter("cegis.spec_hits"),
		mcStates:     m.Counter("mc.states"),
		mcTrans:      m.Counter("mc.trans"),
		mcSymClasses: m.Counter("mc.sym_classes"),
		mcOrbitHits:  m.Counter("mc.orbit_hits"),
		// high-water mark across iterations, not a running sum
		mcVisitedBytes: m.Counter("mc.visited_bytes"),
		heapMax:        m.Counter("heap.max_bytes"),
		satVars:        m.Counter("sat.vars"),
		satClauses:     m.Counter("sat.clauses"),
		satConfl:       m.Counter("sat.conflicts"),
		satExported:    m.Counter("sat.exported"),
		satImported:    m.Counter("sat.imported"),
		satBusExported: m.Counter("sat.bus_exported"),
		satBusImported: m.Counter("sat.bus_imported"),
		remoteTraces:   m.Counter("cube.remote_traces"),
		prunedRemote:   m.Counter("cube.pruned_by_remote"),
		projHits:       m.Counter("proj.hits"),
		projMisses:     m.Counter("proj.misses"),
		projSaved:      m.Counter("proj.saved_entries"),
		proofLemmas:    m.Counter("proof.lemmas"),
		proofChecked:   m.Counter("proof.checked"),
		proofCore:      m.Counter("proof.core"),
		proofCheckNS:   m.Counter("proof.check_ns"),
	}
}

// statsView materializes Stats from the metrics registry.
func (s *Synthesizer) statsView() Stats {
	st := Stats{
		Iterations:   int(s.ct.iterations.Get()),
		SSolve:       time.Duration(s.ct.ssolveNS.Get()),
		SModel:       time.Duration(s.ct.smodelNS.Get()),
		VSolve:       time.Duration(s.ct.vsolveNS.Get()),
		VModel:       time.Duration(s.ct.vmodelNS.Get()),
		Total:        time.Duration(s.ct.totalNS.Get()),
		MCStates:     int(s.ct.mcStates.Get()),
		MCTrans:      int(s.ct.mcTrans.Get()),
		MaxHeap:      uint64(s.ct.heapMax.Get()),
		Parallelism:  s.opts.Parallelism,
		SpecSolves:   int(s.ct.specSolves.Get()),
		SpecHits:     int(s.ct.specHits.Get()),
		SpecSolve:    time.Duration(s.ct.specNS.Get()),
		ProofLemmas:  int(s.ct.proofLemmas.Get()),
		ProofChecked: int(s.ct.proofChecked.Get()),
		ProofCore:    int(s.ct.proofCore.Get()),
		ProofCheck:   time.Duration(s.ct.proofCheckNS.Get()),
	}
	// Per-run values (see the field comments): the registry counters of
	// the same names accumulate across runs sharing one Metrics.
	st.SATVars = s.runSATVars
	st.SATClauses = s.runSATClauses
	st.SATConfl = s.runSATConfl
	st.SATExported = s.runSATExported
	st.SATImported = s.runSATImported
	st.SATBusExported = s.runBusExported
	st.SATBusImported = s.runBusImported
	st.ProjHits = s.runProjHits
	st.ProjMisses = s.runProjMisses
	st.ProjSaved = s.runProjSaved
	st.WarmStart = s.warmStart
	s.statsMu.Lock()
	st.MCSymClasses = s.runSymClasses
	st.MCOrbitHits = s.runOrbitHits
	st.MCVisitedBytes = s.runVisitedBytes
	st.MCWorkerStates = append([]int(nil), s.mcWorkerStates...)
	st.SATWorkers = append([]sat.WorkerStats(nil), s.satWorkers...)
	s.statsMu.Unlock()
	return st
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// satSolver is the incremental-solving interface the CEGIS loop needs;
// both the plain sat.Solver and the racing sat.Portfolio satisfy it.
type satSolver interface {
	sat.Adder
	SetProof(drat.Sink)
	SetBus(*sat.Bus, int)
	SetTracer(*obs.Tracer)
	SetSpanParent(obs.SpanID)
	Solve(assumptions ...sat.Lit) bool
	SolveCancel(cancel *atomic.Bool, assumptions ...sat.Lit) (sat, canceled bool)
	Value(v int) bool
	NumVars() int
	NumClauses() int
	Conflicts() int64
}

// newSolver picks the solving backend: a portfolio of diversified
// workers when parallelism allows, else the deterministic single
// solver.
func newSolver(parallelism int, noShare bool) satSolver {
	if parallelism > 1 {
		p := sat.NewPortfolio(parallelism)
		p.SetSharing(!noShare)
		return p
	}
	return sat.New()
}

// New prepares a synthesizer: lowering, layout, hole inputs, and the
// structural constraints of the candidate space.
func New(sk *desugar.Sketch, opts Options) (*Synthesizer, error) {
	opts = opts.defaults()
	s := &Synthesizer{Sk: sk, opts: opts, specAct: -1}
	s.tr = opts.Trace
	s.met = opts.Metrics
	if s.met == nil {
		s.met = obs.NewMetrics()
	}
	s.ct = newCounters(s.met)

	t0 := time.Now()
	sp := s.tr.Start("setup.lower", opts.TraceParent)
	prog := opts.Prog
	if prog == nil {
		var err error
		prog, err = ir.Lower(sk)
		if err != nil {
			return nil, err
		}
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		return nil, err
	}
	s.Prog, s.Layout = prog, layout
	d := time.Since(t0)
	s.ct.vmodelNS.Add(int64(d))
	sp.EndDur(d, obs.Str(obs.AttrPhase, obs.PhaseVModel))

	t0 = time.Now()
	sp = s.tr.Start("setup.encode", opts.TraceParent)
	// Warm start: check a previously built encoding context out of the
	// cross-request store. The hash-consed builder makes reuse free of
	// surprises — re-evaluating the structural constraints below returns
	// the literals already in the builder — and the projection cache
	// arrives with earlier runs' trace prefixes memoized. A context that
	// does not structurally match the sketch (a WarmKey collision) is
	// dropped, never trusted.
	if opts.Warm != nil && opts.WarmKey != "" && prog.Concurrent() {
		if w := opts.Warm.Acquire(opts.WarmKey); w != nil {
			if warmMatches(w, sk) {
				s.b, s.holes, s.projCache = w.B, w.Holes, w.Cache
				s.warmStart = true
			}
		}
	}
	if s.b == nil {
		s.b = circuit.NewBuilder()
		s.holes = sym.HoleInputs(s.b, sk)
	}
	s.solver = newSolver(opts.Parallelism, opts.NoShareClauses)
	s.solver.SetTracer(opts.Trace)
	if opts.ProofSink != nil {
		// Cube mode: log into the external (shared, namespaced) sink.
		// The sink's owner certifies the merged verdict, so s.proof
		// stays nil and this synthesizer never self-certifies.
		s.solver.SetProof(opts.ProofSink)
	} else if opts.Proof {
		// Attach before the first AddClause: the recorder must see
		// every problem clause or later replays cannot close.
		s.proof = drat.NewRecorder()
		s.solver.SetProof(s.proof)
	}
	if opts.ClauseBus != nil {
		s.solver.SetBus(opts.ClauseBus, opts.CubeID)
	}
	s.vmap = circuit.NewVarMap()
	s.holeVars = make([][]int, len(sk.Holes))
	for i, w := range s.holes {
		vars := make([]int, len(w))
		for j, in := range w {
			vars[j] = s.b.SATVar(s.solver, s.vmap, in)
		}
		s.holeVars[i] = vars
	}

	// Structural constraints: reorder permutations, repeat bounds, and
	// generator index ranges.
	ev := sym.New(s.b, layout, s.holes)
	for ci, c := range sk.Constraints {
		lit := ev.EvalConstraint(c)
		if opts.WatchCandidate != nil && !s.b.Eval(s.inputAssignment(opts.WatchCandidate), lit) {
			opts.Verbose("WATCH: structural constraint %d (%s) is false on the watched candidate", ci, types.ExprString(c))
		}
		s.solver.AddClause(s.b.ToSAT(s.solver, s.vmap, lit))
	}
	if err := ev.Err(); err != nil {
		return nil, err
	}
	for i, m := range sk.Holes {
		if m.Kind != desugar.HoleChoice {
			continue
		}
		valid := circuit.False
		for k := 0; k < m.Choices; k++ {
			valid = s.b.Or(valid, s.b.EqW(s.holes[i], circuit.ConstW(m.Bits, int64(k))))
		}
		if opts.WatchCandidate != nil && !s.b.Eval(s.inputAssignment(opts.WatchCandidate), valid) {
			opts.Verbose("WATCH: choice-range constraint for hole %d is false on the watched candidate", i)
		}
		s.solver.AddClause(s.b.ToSAT(s.solver, s.vmap, valid))
	}
	d = time.Since(t0)
	s.ct.smodelNS.Add(int64(d))
	sp.EndDur(d, obs.Str(obs.AttrPhase, obs.PhaseSModel))
	// The setup encoding is deterministic given (sketch, desugar
	// options): every cube worker of one split allocates the identical
	// variable prefix up to this point, which is what makes the clause
	// bus filter and the DRAT namespace boundary sound. internal/cube
	// cross-checks this count across workers.
	s.setupVars = s.solver.NumVars()
	// Pre-blocked candidates (enumeration resume): added after the
	// deterministic setup prefix, like any other learned clause.
	for _, cand := range opts.Block {
		s.excludeCandidate(cand)
	}
	for _, cl := range opts.Cube {
		if cl.Hole < 0 || cl.Hole >= len(s.holeVars) || cl.Bit < 0 || cl.Bit >= len(s.holeVars[cl.Hole]) {
			return nil, fmt.Errorf("core: cube literal out of range: hole %d bit %d", cl.Hole, cl.Bit)
		}
		s.cubeAssume = append(s.cubeAssume, sat.MkLit(s.holeVars[cl.Hole][cl.Bit], !cl.Val))
	}
	if opts.WatchCandidate != nil {
		var assume []sat.Lit
		for i, vars := range s.holeVars {
			for j, sv := range vars {
				bit := (opts.WatchCandidate.Value(i)>>uint(j))&1 == 1
				assume = append(assume, sat.MkLit(sv, !bit))
			}
		}
		if !s.solver.Solve(assume...) {
			opts.Verbose("WATCH: initial structural constraints already contradict the watched candidate")
		} else {
			opts.Verbose("WATCH: initial constraints admit the watched candidate")
		}
	}
	return s, nil
}

// warmMatches verifies a checked-out warm context structurally fits the
// sketch: one hole input word per hole, each of the hole's bit width.
// Desugaring is deterministic, so a context built from the same
// (source, target, desugar options) always matches; anything else is a
// key collision and must be rebuilt cold.
func warmMatches(w *project.WarmState, sk *desugar.Sketch) bool {
	if w.B == nil || w.Cache == nil || len(w.Holes) != len(sk.Holes) {
		return false
	}
	for i, m := range sk.Holes {
		if len(w.Holes[i]) != m.Bits {
			return false
		}
	}
	return true
}

// Release returns the synthesizer's encoding context — builder, hole
// inputs, projection cache — to the warm store for the next run of the
// same sketch. It is idempotent and a no-op without Options.Warm, for
// sequential sketches (no projection cache), or before the first
// concurrent Synthesize call. The synthesizer must not be used again
// after Release: another run may check the context out immediately.
func (s *Synthesizer) Release() {
	if s.released || s.opts.Warm == nil || s.opts.WarmKey == "" || s.projCache == nil {
		return
	}
	s.released = true
	s.opts.Warm.Release(s.opts.WarmKey, &project.WarmState{
		B:     s.b,
		Holes: s.holes,
		Cache: s.projCache,
	})
}

// sampleHeap records the heap high-water mark. runtime.ReadMemStats
// stops the world, so the CEGIS loop reaches this only through
// maybeSampleHeap (gated by Options.HeapSampleEvery) plus one
// unconditional sample at the end of Synthesize.
func (s *Synthesizer) sampleHeap() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.ct.heapMax.Max(int64(ms.HeapAlloc))
}

func (s *Synthesizer) maybeSampleHeap(iter int) {
	if every := s.opts.HeapSampleEvery; every > 0 && iter%every == 0 {
		s.sampleHeap()
	}
}

// certifyUNSAT snapshots the recorder and replays the proof of the
// UNSAT verdict just returned (speculative-solve UNSATs need no
// certificate of their own: the blocking re-solve that confirms them
// runs on the same or a larger clause set and is the verdict the loop
// acts on). A failed replay is a soundness bug and surfaces as an
// error, never a silent downgrade.
func (s *Synthesizer) certifyUNSAT(r *drat.Recorder, assumptions []int, what string) (*drat.Certificate, error) {
	if r == nil {
		return nil, nil
	}
	t0 := time.Now()
	sp := s.tr.Start("proof.certify", s.runSpan.ID())
	cert := r.Certificate(assumptions)
	cs, err := cert.Verify()
	d := time.Since(t0)
	s.ct.proofLemmas.Add(int64(cs.Lemmas))
	s.ct.proofChecked.Add(int64(cs.Checked))
	s.ct.proofCore.Add(int64(cs.Core))
	s.ct.proofCheckNS.Add(int64(d))
	sp.EndDur(d, obs.Int("lemmas", int64(cs.Lemmas)), obs.Int("checked", int64(cs.Checked)))
	if err != nil {
		return nil, fmt.Errorf("core: DRAT replay of %s UNSAT verdict failed: %w", what, err)
	}
	s.opts.Verbose("certified %s UNSAT verdict: %d lemmas, %d checked", what, cs.Lemmas, cs.Checked)
	return cert, nil
}

// canceled reports whether the external cancellation token fired.
func (s *Synthesizer) canceled() bool {
	return s.opts.Cancel != nil && s.opts.Cancel.Load()
}

// SetupVars returns the number of SAT variables the setup encoding
// allocated: the variable prefix every synthesizer of the same sketch
// and desugar options shares before per-iteration Tseitin allocations
// diverge. internal/cube keys the clause bus and the DRAT namespace
// boundary on it.
func (s *Synthesizer) SetupVars() int { return s.setupVars }

// HoleDimacs returns the positive DIMACS index of hole h's bit b in
// the shared setup prefix (internal/cube derives the cube-refutation
// clauses of the merged certificate from these).
func (s *Synthesizer) HoleDimacs(h, b int) int { return s.holeVars[h][b] + 1 }

// cubeDimacs returns the cube assumptions in DIMACS form (nil outside
// cube mode) — the assumption set a standalone exhaustion certificate
// is conditional on.
func (s *Synthesizer) cubeDimacs() []int {
	if len(s.cubeAssume) == 0 {
		return nil
	}
	out := make([]int, len(s.cubeAssume))
	for i, l := range s.cubeAssume {
		out[i] = sat.Dimacs(l)
	}
	return out
}

// extractCandidate reads the hole assignment out of the solver's model.
// The caller must own the solver (no concurrent solve in flight).
func (s *Synthesizer) extractCandidate() desugar.Candidate {
	cand := make(desugar.Candidate, len(s.holeVars))
	for i, vars := range s.holeVars {
		v := int64(0)
		for j, sv := range vars {
			if s.solver.Value(sv) {
				v |= 1 << uint(j)
			}
		}
		cand[i] = v
	}
	return cand
}

// nextCandidate asks the SAT solver for a candidate consistent with all
// observations so far. err is non-nil only on cancellation. parent is
// the span the solve nests under (the current iteration).
func (s *Synthesizer) nextCandidate(parent obs.SpanID) (desugar.Candidate, bool, error) {
	sp := s.tr.Start("cegis.solve", parent)
	if s.tr != nil {
		s.solver.SetSpanParent(sp.ID())
	}
	t0 := time.Now()
	okSat, canceled := s.solver.SolveCancel(s.opts.Cancel, s.cubeAssume...)
	d := time.Since(t0)
	s.ct.ssolveNS.Add(int64(d))
	sp.EndDur(d, obs.Str(obs.AttrPhase, obs.PhaseSSolve), obs.Int("sat", b2i(okSat)))
	if canceled {
		return nil, false, ErrCanceled
	}
	if !okSat {
		return nil, false, nil
	}
	return s.extractCandidate(), true, nil
}

// Synthesize runs the appropriate CEGIS loop.
func (s *Synthesizer) Synthesize() (*Result, error) {
	start := time.Now()
	s.runSpan = s.tr.Start("cegis.synthesize", s.opts.TraceParent)
	// Snapshot the solver backend's lifetime totals so the end-of-run
	// fold can report this run's deltas (Enumerate reuses the solver
	// across runs; cube workers share the projection cache's builder
	// lifetime with nobody, but the same bookkeeping keeps all paths
	// uniform).
	s.baseConfl = s.solver.Conflicts()
	s.baseExported, s.baseImported, s.baseBusExported, s.baseBusImported = 0, 0, 0, 0
	if p, ok := s.solver.(*sat.Portfolio); ok {
		for _, w := range p.WorkerStats() {
			s.baseExported += w.Exported
			s.baseImported += w.Imported
			s.baseBusExported += w.BusExported
			s.baseBusImported += w.BusImported
		}
	} else if p, ok := s.solver.(*sat.Solver); ok {
		s.baseExported, s.baseImported = p.Stats.Exported, p.Stats.Imported
		s.baseBusExported, s.baseBusImported = p.Stats.BusExported, p.Stats.BusImported
	}
	if c := s.projCache; c != nil {
		s.baseProjHits, s.baseProjMisses, s.baseProjSaved = c.Hits, c.Misses, c.SavedEntries
	} else {
		s.baseProjHits, s.baseProjMisses, s.baseProjSaved = 0, 0, 0
	}
	var res *Result
	var err error
	if s.Prog.Concurrent() {
		res, err = s.synthesizeConcurrent()
	} else {
		res, err = s.synthesizeSequential()
	}
	if err != nil {
		status := "error"
		if errors.Is(err, ErrCanceled) {
			status = "canceled"
		}
		s.runSpan.End(obs.Str("status", status))
		return nil, err
	}
	// All worker goroutines are joined by now, so the solver and the
	// projection cache are quiescent; fold this run's deltas into the
	// registry. Everything summable is Add-ed (a registry shared by
	// several synthesizers — cube workers, a sweep — accumulates) and
	// sizes are Max-ed (monotone high-water): no Set, so concurrent or
	// repeated runs never overwrite each other.
	s.runSATVars = s.solver.NumVars()
	s.runSATClauses = s.solver.NumClauses()
	s.runSATConfl = s.solver.Conflicts() - s.baseConfl
	s.ct.satVars.Max(int64(s.runSATVars))
	s.ct.satClauses.Max(int64(s.runSATClauses))
	s.ct.satConfl.Add(s.runSATConfl)
	var exp, imp, bexp, bimp int64
	if p, ok := s.solver.(*sat.Portfolio); ok {
		ws := p.WorkerStats()
		for _, w := range ws {
			exp += w.Exported
			imp += w.Imported
			bexp += w.BusExported
			bimp += w.BusImported
		}
		s.statsMu.Lock()
		s.satWorkers = ws
		s.statsMu.Unlock()
	} else if p, ok := s.solver.(*sat.Solver); ok {
		exp, imp = p.Stats.Exported, p.Stats.Imported
		bexp, bimp = p.Stats.BusExported, p.Stats.BusImported
	}
	s.runSATExported = exp - s.baseExported
	s.runSATImported = imp - s.baseImported
	s.runBusExported = bexp - s.baseBusExported
	s.runBusImported = bimp - s.baseBusImported
	s.ct.satExported.Add(s.runSATExported)
	s.ct.satImported.Add(s.runSATImported)
	s.ct.satBusExported.Add(s.runBusExported)
	s.ct.satBusImported.Add(s.runBusImported)
	if c := s.projCache; c != nil {
		s.runProjHits = c.Hits - s.baseProjHits
		s.runProjMisses = c.Misses - s.baseProjMisses
		s.runProjSaved = c.SavedEntries - s.baseProjSaved
		s.ct.projHits.Add(s.runProjHits)
		s.ct.projMisses.Add(s.runProjMisses)
		s.ct.projSaved.Add(s.runProjSaved)
	}
	s.sampleHeap()
	total := time.Since(start)
	s.ct.totalNS.Set(int64(total))
	res.Stats = s.statsView()
	s.runSpan.EndDur(total,
		obs.Str("status", "done"),
		obs.Int("resolved", b2i(res.Resolved)),
		obs.Int("iterations", s.ct.iterations.Get()))
	return res, nil
}

// specResult is what a speculative solve hands back to the driver.
type specResult struct {
	cand     desugar.Candidate // model, when found
	found    bool              // SAT: a next candidate exists
	canceled bool              // solve was torn down before a verdict
}

// startSpec launches the speculative solve for the candidate after
// cand: a gated blocking clause (¬specAct ∨ block(cand)) is added, then
// a goroutine solves under the assumption specAct and extracts the
// model. The goroutine owns s.solver until its channel delivers; the
// driver must join (receive) before touching the solver again. cancel
// tears the solve down without a verdict. parent is the span the
// speculative solve nests under (the iteration that launched it).
func (s *Synthesizer) startSpec(cand desugar.Candidate, parent obs.SpanID) (<-chan specResult, *atomic.Bool) {
	if s.specAct < 0 {
		s.specAct = s.solver.NewVar()
	}
	lits := []sat.Lit{sat.MkLit(s.specAct, true)}
	for i, vars := range s.holeVars {
		for j, sv := range vars {
			bit := (cand.Value(i)>>uint(j))&1 == 1
			lits = append(lits, sat.MkLit(sv, bit))
		}
	}
	s.solver.AddClause(lits...)

	sp := s.tr.Start("cegis.spec", parent)
	if s.tr != nil {
		// Safe before the goroutine launches: the driver does not touch
		// the solver again until it joins the result channel.
		s.solver.SetSpanParent(sp.ID())
	}
	cancel := &atomic.Bool{}
	ch := make(chan specResult, 1)
	assume := append([]sat.Lit{sat.MkLit(s.specAct, false)}, s.cubeAssume...)
	go func() {
		t0 := time.Now()
		ok, canceled := s.solver.SolveCancel(cancel, assume...)
		dur := time.Since(t0)
		r := specResult{canceled: canceled}
		if !canceled && ok {
			r.found = true
			r.cand = s.extractCandidate()
		}
		s.ct.specSolves.Add(1)
		s.ct.specNS.Add(int64(dur))
		sp.EndDur(dur,
			obs.Str(obs.AttrPhase, obs.PhaseSpec),
			obs.Int("found", b2i(r.found)),
			obs.Int("canceled", b2i(canceled)))
		ch <- r
	}()
	return ch, cancel
}

// synthesizeConcurrent is the CEGIS loop of §6: candidates are model
// checked over all interleavings; failing traces are projected onto the
// candidate space and added as inductive constraints.
//
// With Parallelism > 1 (and NoPipeline unset) the loop is pipelined:
// while the model checker verifies candidate k on the driver goroutine,
// a speculative goroutine solves for candidate k+1 from the clauses
// known so far. When the verifier refutes k, the new projection clauses
// are evaluated directly on the speculative model (b.Eval); a surviving
// model is adopted without any blocking solve, otherwise the re-solve
// starts warm from the portfolio's saved phases. Solver ownership
// alternates strictly — spec goroutine during verification, driver
// otherwise — with the result channel as the happens-before edge.
func (s *Synthesizer) synthesizeConcurrent() (*Result, error) {
	pipelined := s.opts.Parallelism > 1 && !s.opts.NoPipeline
	if s.projCache == nil {
		s.projCache = project.NewCache(s.b, s.Layout, s.holes)
	}
	var lastTrace *mc.Trace
	var cand desugar.Candidate
	haveCand := false
	for iter := 1; iter <= s.opts.MaxIterations; iter++ {
		s.ct.iterations.Set(int64(iter))
		if s.canceled() {
			return nil, ErrCanceled
		}
		isp := s.tr.Start(obs.SpanIteration, s.runSpan.ID())
		endIter := func(status string, states, traces int) {
			if isp.Active() {
				isp.End(obs.Int("iter", int64(iter)),
					obs.Str("status", status),
					obs.Int("states", int64(states)),
					obs.Int("traces", int64(traces)))
			}
		}
		// Adopt other cubes' counterexamples before solving: a trace
		// found in cube 3 prunes this cube's space before it ever
		// solves (and may refute the candidate held over from the
		// pipeline, forcing a fresh solve against the tightened space).
		if s.opts.TraceBus != nil {
			alive, err := s.importRemoteTraces(isp.ID(), cand, haveCand)
			if err != nil {
				endIter("error", 0, 0)
				return nil, err
			}
			haveCand = alive
		}
		if !haveCand {
			c, ok, err := s.nextCandidate(isp.ID())
			if err != nil {
				endIter("canceled", 0, 0)
				return nil, err
			}
			if !ok {
				s.opts.Verbose("iteration %d: candidate space exhausted (UNSAT) — sketch cannot be resolved", iter)
				cert, cerr := s.certifyUNSAT(s.proof, s.cubeDimacs(), "candidate-space exhaustion")
				endIter("exhausted", 0, 0)
				if cerr != nil {
					return nil, cerr
				}
				return &Result{Resolved: false, LastTrace: lastTrace, Certificate: cert}, nil
			}
			cand = c
		}
		haveCand = false
		s.opts.Verbose("iteration %d: model checking candidate %v", iter, cand)

		var specCh <-chan specResult
		var specCancel *atomic.Bool
		if pipelined {
			specCh, specCancel = s.startSpec(cand, isp.ID())
		}
		joinSpec := func(cancel bool) specResult {
			if specCh == nil {
				return specResult{}
			}
			if cancel {
				specCancel.Store(true)
			}
			r := <-specCh
			specCh = nil
			return r
		}

		vsp := s.tr.Start("cegis.verify", isp.ID())
		t0 := time.Now()
		mres, err := mc.Check(s.Layout, cand, mc.Options{
			MaxStates:   s.opts.MCMaxStates,
			MaxTraces:   s.opts.TracesPerIteration,
			Parallelism: s.opts.Parallelism,
			NoPOR:       s.opts.NoPOR,
			NoSymmetry:  s.opts.NoSymmetry,
			Compress:    s.opts.MCCompress,
			Cancel:      s.opts.Cancel,
			Tracer:      s.tr,
			ParentSpan:  vsp.ID(),
		})
		d := time.Since(t0)
		s.ct.vsolveNS.Add(int64(d))
		vsp.EndDur(d, obs.Str(obs.AttrPhase, obs.PhaseVSolve))
		if err != nil {
			joinSpec(true)
			if errors.Is(err, mc.ErrCanceled) {
				err = ErrCanceled
				endIter("canceled", 0, 0)
			} else {
				endIter("error", 0, 0)
			}
			return nil, err
		}
		s.ct.mcStates.Add(int64(mres.States))
		s.ct.mcTrans.Add(int64(mres.Trans))
		s.ct.mcSymClasses.Max(int64(mres.SymClasses))
		s.ct.mcOrbitHits.Add(mres.OrbitHits)
		s.ct.mcVisitedBytes.Max(int64(mres.VisitedBytes))
		s.statsMu.Lock()
		if mres.SymClasses > s.runSymClasses {
			s.runSymClasses = mres.SymClasses
		}
		s.runOrbitHits += mres.OrbitHits
		if mres.VisitedBytes > s.runVisitedBytes {
			s.runVisitedBytes = mres.VisitedBytes
		}
		for len(s.mcWorkerStates) < len(mres.WorkerStates) {
			s.mcWorkerStates = append(s.mcWorkerStates, 0)
		}
		for i, n := range mres.WorkerStates {
			s.mcWorkerStates[i] += n
		}
		s.statsMu.Unlock()
		s.maybeSampleHeap(iter)
		if mres.OK {
			// The speculative next candidate is moot; tear it down.
			joinSpec(true)
			s.opts.Verbose("iteration %d: candidate verified (%d states)", iter, mres.States)
			endIter("resolved", mres.States, 0)
			return &Result{Resolved: true, Candidate: cand}, nil
		}
		lastTrace = mres.Trace
		s.opts.Verbose("iteration %d: %d counterexample(s): %s", iter, len(mres.Traces), mres.Trace)

		// Reclaim the solver before projecting: the projection adds
		// clauses. Not canceling here costs nothing on the critical
		// path — an unfinished speculative solve is exactly the solve
		// the unpipelined loop would now run in the foreground.
		spec := joinSpec(false)

		psp := s.tr.Start("cegis.project", isp.ID())
		if s.tr != nil {
			s.projCache.Tracer = s.tr
			s.projCache.Parent = psp.ID()
		}
		t0 = time.Now()
		refuted := false
		specAlive := spec.found
		var specAsn map[circuit.Lit]bool
		if specAlive {
			specAsn = s.inputAssignment(spec.cand)
		}
		candAsn := s.inputAssignment(cand)
		for _, tr := range mres.Traces {
			entries := project.Build(s.Prog, tr)
			failLit, err := s.projCache.Encode(entries)
			if err != nil {
				endIter("error", mres.States, len(mres.Traces))
				return nil, err
			}
			s.solver.AddClause(s.b.ToSAT(s.solver, s.vmap, failLit.Not()))
			// A projection is a whole-space fact: broadcast it so every
			// other cube installs it too.
			if s.opts.TraceBus != nil {
				s.opts.TraceBus.Publish(s.opts.CubeID, entries)
			}
			if s.b.Eval(candAsn, failLit) {
				refuted = true
			}
			// Re-check the speculative candidate against each learned
			// constraint: it survives only if no new clause refutes it.
			if specAlive && s.b.Eval(specAsn, failLit) {
				specAlive = false
			}
		}
		d = time.Since(t0)
		s.ct.smodelNS.Add(int64(d))
		psp.EndDur(d,
			obs.Str(obs.AttrPhase, obs.PhaseSModel),
			obs.Int("traces", int64(len(mres.Traces))))
		s.maybeSampleHeap(iter)

		// Guard against projections too weak to eliminate the failing
		// candidate (would loop forever): exclude it explicitly then.
		if !refuted {
			s.opts.Verbose("iteration %d: projection kept the candidate; excluding it directly", iter)
			s.excludeCandidate(cand)
		}
		if s.opts.WatchCandidate != nil {
			var assume []sat.Lit
			for i, vars := range s.holeVars {
				for j, sv := range vars {
					bit := (s.opts.WatchCandidate.Value(i)>>uint(j))&1 == 1
					assume = append(assume, sat.MkLit(sv, !bit))
				}
			}
			if !s.solver.Solve(assume...) {
				s.opts.Verbose("iteration %d: WATCH: clause set now contradicts the watched candidate", iter)
			}
		}
		if specAlive {
			// The speculative model satisfies every constraint learned
			// this iteration (and, by construction, everything earlier):
			// adopt it and skip the next blocking solve entirely.
			s.ct.specHits.Add(1)
			s.opts.Verbose("iteration %d: speculative candidate %v survived the new constraints", iter, spec.cand)
			cand = spec.cand
			haveCand = true
		}
		endIter("refuted", mres.States, len(mres.Traces))
	}
	return nil, fmt.Errorf("core: no convergence after %d iterations", s.opts.MaxIterations)
}

// importRemoteTraces adopts every projection other cubes published on
// the TraceBus since the last import and installs each as a constraint
// — the exchange re-encodes the ENTRIES through this cube's own
// projection cache rather than shipping CNF, because Tseitin variable
// numbering above the setup prefix diverges per cube. Entries are
// whole-space facts (see internal/project), so installing them in any
// cube is sound; the encoding goes through AddClause and is therefore
// logged as a DRAT premise exactly like a locally discovered
// projection. Returns whether the currently held candidate (if any)
// survived the imported constraints. The caller must own the solver.
func (s *Synthesizer) importRemoteTraces(parent obs.SpanID, cand desugar.Candidate, haveCand bool) (bool, error) {
	batches, next := s.opts.TraceBus.Fetch(s.traceCursor, s.opts.CubeID)
	s.traceCursor = next
	if len(batches) == 0 {
		return haveCand, nil
	}
	sp := s.tr.Start("cube.import", parent)
	t0 := time.Now()
	alive := haveCand
	var candAsn map[circuit.Lit]bool
	if haveCand {
		candAsn = s.inputAssignment(cand)
	}
	pruned := false
	for _, b := range batches {
		failLit, err := s.projCache.Encode(b.Entries)
		if err != nil {
			return false, err
		}
		s.solver.AddClause(s.b.ToSAT(s.solver, s.vmap, failLit.Not()))
		if alive && s.b.Eval(candAsn, failLit) {
			alive = false
			pruned = true
		}
	}
	s.ct.remoteTraces.Add(int64(len(batches)))
	if pruned {
		s.ct.prunedRemote.Add(1)
	}
	d := time.Since(t0)
	s.ct.smodelNS.Add(int64(d))
	sp.EndDur(d,
		obs.Str(obs.AttrPhase, obs.PhaseSModel),
		obs.Int("cube.id", int64(s.opts.CubeID)),
		obs.Int("traces", int64(len(batches))),
		obs.Int("pruned", b2i(pruned)))
	return alive, nil
}

// inputAssignment maps the builder's hole input literals to the bits of
// a concrete candidate.
func (s *Synthesizer) inputAssignment(cand desugar.Candidate) map[circuit.Lit]bool {
	m := map[circuit.Lit]bool{}
	for i, w := range s.holes {
		for j, in := range w {
			m[in] = (cand.Value(i)>>uint(j))&1 == 1
		}
	}
	return m
}

// excludeCandidate adds a blocking clause for one exact candidate.
func (s *Synthesizer) excludeCandidate(cand desugar.Candidate) {
	var lits []sat.Lit
	for i, vars := range s.holeVars {
		for j, sv := range vars {
			bit := (cand.Value(i)>>uint(j))&1 == 1
			lits = append(lits, sat.MkLit(sv, bit))
		}
	}
	s.solver.AddClause(lits...)
}

// synthesizeSequential is the CEGIS loop of §5: candidates are verified
// against the spec over all inputs via SAT; counterexample inputs
// become observations.
func (s *Synthesizer) synthesizeSequential() (*Result, error) {
	for iter := 1; iter <= s.opts.MaxIterations; iter++ {
		s.ct.iterations.Set(int64(iter))
		if s.canceled() {
			return nil, ErrCanceled
		}
		isp := s.tr.Start(obs.SpanIteration, s.runSpan.ID())
		endIter := func(status string) {
			if isp.Active() {
				isp.End(obs.Int("iter", int64(iter)), obs.Str("status", status))
			}
		}
		cand, ok, err := s.nextCandidate(isp.ID())
		if err != nil {
			endIter("canceled")
			return nil, err
		}
		if !ok {
			cert, cerr := s.certifyUNSAT(s.proof, s.cubeDimacs(), "candidate-space exhaustion")
			endIter("exhausted")
			if cerr != nil {
				return nil, cerr
			}
			return &Result{Resolved: false, Certificate: cert}, nil
		}
		s.opts.Verbose("iteration %d: verifying candidate %v", iter, cand)

		cex, verr := s.verifySequential(cand, isp.ID())
		if verr != nil {
			if errors.Is(verr, ErrCanceled) {
				endIter("canceled")
			} else {
				endIter("error")
			}
			return nil, verr
		}
		s.maybeSampleHeap(iter)
		if cex == nil {
			endIter("resolved")
			return &Result{Resolved: true, Candidate: cand, Certificate: s.vcert}, nil
		}
		s.opts.Verbose("iteration %d: counterexample input %v", iter, cex)

		osp := s.tr.Start("cegis.observe", isp.ID())
		t0 := time.Now()
		if err := s.addInputObservation(cex); err != nil {
			endIter("error")
			return nil, err
		}
		d := time.Since(t0)
		s.ct.smodelNS.Add(int64(d))
		osp.EndDur(d, obs.Str(obs.AttrPhase, obs.PhaseSModel))
		endIter("refuted")
	}
	return nil, fmt.Errorf("core: no convergence after %d iterations", s.opts.MaxIterations)
}

// inputWidth gives the symbolic width of a sequential input cell.
func (s *Synthesizer) inputWidth(v ir.Var) (int, error) {
	switch v.Type.Base {
	case types.Int:
		return s.Prog.W, nil
	case types.Bool:
		return 1, nil
	}
	return 0, fmt.Errorf("core: sequential input %s must be int or bool (got %s)", v.Name, v.Type)
}

// equivalenceViolation runs the sketch and (if present) the spec
// symbolically in vb, binding the harness inputs to inputWords
// (flattened per input variable, one word per array cell), and returns
// the violation literal: the sketch fails, or — when the spec does not
// itself fail — the outputs differ.
func (s *Synthesizer) equivalenceViolation(vb *circuit.Builder, holes []circuit.Word, inputWords [][]circuit.Word) (circuit.Lit, error) {
	p := s.Prog

	e1 := sym.New(vb, s.Layout, holes)
	for i, in := range p.Inputs {
		if err := e1.SetVarCells(p.Prologue, in.Name, inputWords[i]); err != nil {
			return circuit.False, err
		}
	}
	e1.RunSeq(p.GlobalInit, circuit.True)
	e1.RunSeq(p.Prologue, circuit.True)
	if err := e1.Err(); err != nil {
		return circuit.False, err
	}
	violation := e1.Fail

	if p.Spec != nil {
		e2 := sym.New(vb, s.Layout, holes)
		for i := range p.Inputs {
			if err := e2.SetVarCells(p.Spec, p.Spec.Locals[i].Name, inputWords[i]); err != nil {
				return circuit.False, err
			}
		}
		e2.RunSeq(p.GlobalInit, circuit.True)
		e2.RunSeq(p.Spec, circuit.True)
		if err := e2.Err(); err != nil {
			return circuit.False, err
		}
		out1, err := e1.ReadVar(p.Prologue, p.ResultVar)
		if err != nil {
			return circuit.False, err
		}
		out2, err := e2.ReadVar(p.Spec, p.SpecResultVar)
		if err != nil {
			return circuit.False, err
		}
		if len(out1) != len(out2) {
			return circuit.False, fmt.Errorf("core: result arity mismatch")
		}
		differ := circuit.False
		for i := range out1 {
			w := len(out1[i])
			if len(out2[i]) > w {
				w = len(out2[i])
			}
			eq := vb.EqW(circuit.ZextW(out1[i], w), circuit.ZextW(out2[i], w))
			differ = vb.Or(differ, eq.Not())
		}
		violation = vb.Or(violation, vb.And(e2.Fail.Not(), differ))
	}
	return violation, nil
}

// verifySequential checks one candidate against the spec on all inputs
// by SAT-solving for a violating input. The solver instance is reused
// across iterations (building a fresh backend — a whole portfolio under
// parallelism — per candidate dominated small-benchmark verify time);
// the candidate's violation goal is a Solve assumption, never a clause.
func (s *Synthesizer) verifySequential(cand desugar.Candidate, parent obs.SpanID) ([][]int64, error) {
	esp := s.tr.Start("verify.encode", parent)
	t0 := time.Now()
	if s.verifier == nil {
		s.vb = circuit.NewBuilder()
		s.verifier = newSolver(s.opts.Parallelism, s.opts.NoShareClauses)
		s.verifier.SetTracer(s.opts.Trace)
		if s.opts.Proof {
			s.vproof = drat.NewRecorder()
			s.verifier.SetProof(s.vproof)
		}
		s.vvmap = circuit.NewVarMap()
	}
	vb := s.vb
	holeConsts := sym.HoleConsts(s.Sk, cand)

	inputWords := make([][]circuit.Word, len(s.Prog.Inputs))
	for i, in := range s.Prog.Inputs {
		w, err := s.inputWidth(in)
		if err != nil {
			return nil, err
		}
		n := 1
		if in.Type.IsArray() {
			n = in.Type.Len
		}
		ws := make([]circuit.Word, n)
		for c := 0; c < n; c++ {
			ws[c] = vb.InputW(w)
		}
		inputWords[i] = ws
	}

	violation, err := s.equivalenceViolation(vb, holeConsts, inputWords)
	if err != nil {
		return nil, err
	}
	vs, vm := s.verifier, s.vvmap
	goal := vb.ToSAT(vs, vm, violation)
	d := time.Since(t0)
	s.ct.vmodelNS.Add(int64(d))
	esp.EndDur(d, obs.Str(obs.AttrPhase, obs.PhaseVModel))

	ssp := s.tr.Start("verify.solve", parent)
	if s.tr != nil {
		vs.SetSpanParent(ssp.ID())
	}
	t0 = time.Now()
	found, canceled := vs.SolveCancel(s.opts.Cancel, goal)
	d = time.Since(t0)
	s.ct.vsolveNS.Add(int64(d))
	ssp.EndDur(d, obs.Str(obs.AttrPhase, obs.PhaseVSolve), obs.Int("sat", b2i(found)))
	if canceled {
		return nil, ErrCanceled
	}
	if !found {
		// Verified on all inputs: the verdict is "UNSAT under the goal
		// assumption" (the candidate's violation circuit is the only
		// live goal; stale goals from earlier candidates stay free).
		cert, cerr := s.certifyUNSAT(s.vproof, []int{sat.Dimacs(goal)}, "sequential verification")
		if cerr != nil {
			return nil, cerr
		}
		s.vcert = cert
		return nil, nil
	}
	cex := make([][]int64, len(inputWords))
	for i, ws := range inputWords {
		vals := make([]int64, len(ws))
		for c, word := range ws {
			v := int64(0)
			for j, in := range word {
				sv := vb.SATVar(vs, vm, in)
				if vs.Value(sv) {
					v |= 1 << uint(j)
				}
			}
			vals[c] = v
		}
		cex[i] = vals
	}
	return cex, nil
}

// addInputObservation adds P(x, c) for a concrete counterexample input
// to the incremental synthesis instance (§5: the universal quantifier
// over the observation set unrolls into a conjunction).
func (s *Synthesizer) addInputObservation(cex [][]int64) error {
	inputWords := make([][]circuit.Word, len(cex))
	for i, vals := range cex {
		w, err := s.inputWidth(s.Prog.Inputs[i])
		if err != nil {
			return err
		}
		ws := make([]circuit.Word, len(vals))
		for c, v := range vals {
			ws[c] = circuit.ConstW(w, v)
		}
		inputWords[i] = ws
	}
	violation, err := s.equivalenceViolation(s.b, s.holes, inputWords)
	if err != nil {
		return err
	}
	s.solver.AddClause(s.b.ToSAT(s.solver, s.vmap, violation.Not()))
	return nil
}

// Exclude adds a blocking clause ruling out one candidate, so the next
// Synthesize call returns a different solution. This is the paper's
// §8.3.1 extension hook: "the CEGIS algorithm can trivially produce
// multiple correct candidates", e.g. to pick the best by autotuning.
func (s *Synthesizer) Exclude(cand desugar.Candidate) {
	s.excludeCandidate(cand)
}

// Enumerate returns up to max distinct correct candidates by repeatedly
// synthesizing and excluding. It stops early when the space is
// exhausted.
func (s *Synthesizer) Enumerate(max int) ([]*Result, error) {
	var out []*Result
	for len(out) < max {
		r, err := s.Synthesize()
		if err != nil {
			return out, err
		}
		if !r.Resolved {
			break
		}
		out = append(out, r)
		s.Exclude(r.Candidate)
	}
	return out, nil
}

// EnumerateAll is enumerate-all-solutions mode: block each verified
// candidate and re-solve until the space is UNSAT, bounded by
// Options.MaxSolutions.
func (s *Synthesizer) EnumerateAll() ([]*Result, error) {
	return s.Enumerate(s.opts.MaxSolutions)
}
