package core

import (
	"strings"
	"testing"

	"psketch/internal/desugar"
	"psketch/internal/parser"
)

func build(t *testing.T, src, target string, dopts desugar.Options, copts Options) *Synthesizer {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, target, dopts)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := New(sk, copts)
	if err != nil {
		t.Fatal(err)
	}
	return syn
}

// Sequential CEGIS (§5): learn a constant from counterexample inputs.
func TestSequentialCEGIS(t *testing.T) {
	syn := build(t, `
int spec(int x) { return 3 * x + 5; }
int f(int x) implements spec { return ??(2) * x + ??(3); }
`, "f", desugar.Options{IntWidth: 6}, Options{})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("should resolve")
	}
	if res.Candidate.Value(0) != 3 || res.Candidate.Value(1) != 5 {
		t.Fatalf("candidate %v", res.Candidate)
	}
	if res.Stats.Iterations < 1 {
		t.Fatal("stats missing")
	}
}

// Sequential UNSAT: no constant matches.
func TestSequentialUnresolvable(t *testing.T) {
	syn := build(t, `
int spec(int x) { return x * x; }
int f(int x) implements spec { return x + ??(2); }
`, "f", desugar.Options{IntWidth: 5}, Options{})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved {
		t.Fatalf("x+c cannot implement x²; got %v", res.Candidate)
	}
}

// Sequential mode with asserts and no spec: the holes must satisfy the
// asserts on all inputs.
func TestSequentialAssertOnly(t *testing.T) {
	syn := build(t, `
int f(int x) {
	int y = x + ??(2);
	assert y != x;
	return y;
}
`, "f", desugar.Options{IntWidth: 5}, Options{})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved || res.Candidate.Value(0) == 0 {
		t.Fatalf("resolved=%v cand=%v (c=0 would violate y != x)", res.Resolved, res.Candidate)
	}
}

// Bit-array inputs exercise the array-input path of verification.
func TestSequentialArrayInput(t *testing.T) {
	syn := build(t, `
int spec(int[3] xs) { return xs[0] + xs[1] + xs[2]; }
int f(int[3] xs) implements spec {
	return xs[??(2)] + xs[??(2)] + xs[??(2)];
}
`, "f", desugar.Options{IntWidth: 6}, Options{})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("should resolve")
	}
	got := map[int64]bool{
		res.Candidate.Value(0): true,
		res.Candidate.Value(1): true,
		res.Candidate.Value(2): true,
	}
	if len(got) != 3 {
		t.Fatalf("indices must be a permutation of 0..2: %v", res.Candidate)
	}
}

// Concurrent CEGIS statistics should populate the Figure 9 columns.
func TestConcurrentStats(t *testing.T) {
	syn := build(t, `
int g = 0;
harness void M() {
	fork (i; 2) {
		if ({| true | false |}) {
			int t = g;
			t = t + 1;
			g = t;
		} else {
			atomic { g = g + 1; }
		}
	}
	assert g == 2;
}
`, "M", desugar.Options{}, Options{})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("should resolve")
	}
	st := res.Stats
	if st.Iterations < 2 || st.MCStates == 0 || st.SATVars == 0 || st.Total <= 0 {
		t.Fatalf("stats look empty: %+v", st)
	}
}

// MaxIterations must abort a loop rather than hang.
func TestMaxIterations(t *testing.T) {
	// A sketch with no solution but a large-ish space to iterate.
	syn := build(t, `
int g = 0;
harness void M() {
	fork (i; 2) {
		int t = g;
		t = t + ??(3);
		g = t;
	}
	assert g == 2;
}
`, "M", desugar.Options{}, Options{MaxIterations: 3})
	_, err := syn.Synthesize()
	if err == nil {
		// UNSAT in under 3 iterations is also acceptable.
		return
	}
	if !strings.Contains(err.Error(), "convergence") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestEnumerateCore(t *testing.T) {
	syn := build(t, `
int g = 0;
harness void M() {
	fork (i; 1) { }
	g = ??(2);
	assert g >= 2;
}
`, "M", desugar.Options{}, Options{})
	rs, err := syn.Enumerate(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 { // 2 and 3
		t.Fatalf("got %d candidates", len(rs))
	}
}

// Regression: defaults() must apply the documented MCMaxStates and
// TracesPerIteration defaults (they were previously left at zero and
// only patched downstream by mc.Check).
func TestOptionsDefaults(t *testing.T) {
	o := (Options{}).defaults()
	if o.MCMaxStates != 4_000_000 {
		t.Fatalf("MCMaxStates default: got %d, want 4000000", o.MCMaxStates)
	}
	if o.TracesPerIteration != 1 {
		t.Fatalf("TracesPerIteration default: got %d, want 1", o.TracesPerIteration)
	}
	if o.MaxIterations != 256 {
		t.Fatalf("MaxIterations default: got %d, want 256", o.MaxIterations)
	}
	if o.Parallelism < 1 {
		t.Fatalf("Parallelism default: got %d, want >= 1", o.Parallelism)
	}
	// Explicit settings must survive.
	o = (Options{MCMaxStates: 7, TracesPerIteration: 2, Parallelism: 3}).defaults()
	if o.MCMaxStates != 7 || o.TracesPerIteration != 2 || o.Parallelism != 3 {
		t.Fatalf("explicit options clobbered: %+v", o)
	}
}

const raceySketch = `
int g = 0;
harness void M() {
	fork (i; 2) {
		if ({| true | false |}) {
			int t = g;
			t = t + 1;
			g = t;
		} else {
			atomic { g = g + 1; }
		}
	}
	assert g == 2;
}
`

// The parallel engine (portfolio + sharded MC) must reach the same
// verdict as the sequential one on a concurrent sketch, and its
// resolved candidate must itself verify. This is the race-detector
// exercise for the whole pipeline.
func TestParallelSynthesizeMatchesSequential(t *testing.T) {
	seqSyn := build(t, raceySketch, "M", desugar.Options{}, Options{Parallelism: 1})
	seqRes, err := seqSyn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	parSyn := build(t, raceySketch, "M", desugar.Options{}, Options{Parallelism: 4})
	parRes, err := parSyn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Resolved != seqRes.Resolved {
		t.Fatalf("verdicts differ: parallel=%v sequential=%v", parRes.Resolved, seqRes.Resolved)
	}
	if !parRes.Resolved {
		t.Fatal("should resolve")
	}
	// Any resolved candidate is verified over all interleavings by
	// construction; for this sketch the atomic branch is the unique
	// correct choice, so the candidates must agree too.
	if parRes.Candidate.Value(0) != seqRes.Candidate.Value(0) {
		t.Fatalf("candidates differ: parallel=%v sequential=%v", parRes.Candidate, seqRes.Candidate)
	}
	st := parRes.Stats
	if st.Parallelism != 4 {
		t.Fatalf("Stats.Parallelism = %d, want 4", st.Parallelism)
	}
	if len(st.SATWorkers) != 4 {
		t.Fatalf("Stats.SATWorkers has %d entries, want 4", len(st.SATWorkers))
	}
	var wins int64
	for _, w := range st.SATWorkers {
		wins += w.Wins
	}
	if wins < int64(st.Iterations) {
		t.Fatalf("%d portfolio wins for %d iterations", wins, st.Iterations)
	}
	if len(st.MCWorkerStates) == 0 {
		t.Fatal("no per-worker verifier stats")
	}
}

// An unresolvable sketch must still be a definitive NO in parallel
// mode (every portfolio verdict and every shard verdict is sound).
func TestParallelUnresolvable(t *testing.T) {
	syn := build(t, `
int g = 0;
harness void M() {
	fork (i; 2) {
		int t = g;
		t = t + 1;
		g = t;
	}
	assert g == 2;
}
`, "M", desugar.Options{}, Options{Parallelism: 4})
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved {
		t.Fatalf("racy increment cannot be resolved; got %v", res.Candidate)
	}
}

// Parallelism 1 must be deterministic run to run: same candidate, same
// iteration count, same conflict totals.
func TestSequentialModeDeterminism(t *testing.T) {
	run := func() *Result {
		syn := build(t, raceySketch, "M", desugar.Options{}, Options{Parallelism: 1})
		res, err := syn.Synthesize()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	for i := 0; i < 2; i++ {
		again := run()
		if again.Resolved != first.Resolved ||
			again.Stats.Iterations != first.Stats.Iterations ||
			again.Stats.SATConfl != first.Stats.SATConfl ||
			again.Stats.MCStates != first.Stats.MCStates {
			t.Fatalf("sequential mode nondeterministic:\nfirst %+v\nagain %+v", first.Stats, again.Stats)
		}
	}
}
