package desugar

import (
	"fmt"

	"psketch/internal/ast"
)

// renamer performs scope-aware alpha-renaming of local variables so
// that every local in a function body has a unique name. Globals and
// function names are untouched. The inliner reuses it with a per-site
// prefix and pre-seeded parameter bindings.
type renamer struct {
	d      *desugarer
	prefix string
	scopes []map[string]string
	errs   []error
}

func (d *desugarer) newRenamer(prefix string, seed map[string]string) *renamer {
	top := map[string]string{}
	for k, v := range seed {
		top[k] = v
	}
	return &renamer{d: d, prefix: prefix, scopes: []map[string]string{top}}
}

func (r *renamer) push() { r.scopes = append(r.scopes, map[string]string{}) }
func (r *renamer) pop()  { r.scopes = r.scopes[:len(r.scopes)-1] }

func (r *renamer) bind(name string) string {
	n := r.d.fresh(r.prefix + name)
	r.scopes[len(r.scopes)-1][name] = n
	return n
}

func (r *renamer) lookup(name string) (string, bool) {
	for i := len(r.scopes) - 1; i >= 0; i-- {
		if n, ok := r.scopes[i][name]; ok {
			return n, true
		}
	}
	return "", false
}

// alphaRename uniquifies all locals declared in the function body.
// Parameters keep their names (bound to themselves).
func (d *desugarer) alphaRename(f *ast.FuncDecl) error {
	seed := map[string]string{}
	for _, p := range f.Params {
		seed[p.Name] = p.Name
	}
	r := d.newRenamer("", seed)
	r.renameBlockInPlace(f.Body)
	if len(r.errs) > 0 {
		return r.errs[0]
	}
	return nil
}

// renameBody renames a cloned function body for inlining: parameters
// are redirected per seed, and every local gets the site prefix.
func (d *desugarer) renameBody(b *ast.Block, prefix string, seed map[string]string) error {
	r := d.newRenamer(prefix, seed)
	r.push()
	for _, s := range b.Stmts {
		r.renameStmt(s)
	}
	r.pop()
	if len(r.errs) > 0 {
		return r.errs[0]
	}
	return nil
}

// renameBlockInPlace renames within a block, opening a child scope.
func (r *renamer) renameBlockInPlace(b *ast.Block) {
	if b == nil {
		return
	}
	r.push()
	for _, s := range b.Stmts {
		r.renameStmt(s)
	}
	r.pop()
}

func (r *renamer) renameStmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.Block:
		r.renameBlockInPlace(x)
	case *ast.DeclStmt:
		r.renameExpr(x.Init)
		x.Name = r.bind(x.Name)
	case *ast.AssignStmt:
		r.renameExpr(x.LHS)
		r.renameExpr(x.RHS)
	case *ast.IfStmt:
		r.renameExpr(x.Cond)
		r.renameBlockInPlace(x.Then)
		r.renameStmt(x.Else)
	case *ast.WhileStmt:
		r.renameExpr(x.Cond)
		r.renameBlockInPlace(x.Body)
	case *ast.ReturnStmt:
		r.renameExpr(x.Val)
	case *ast.AssertStmt:
		r.renameExpr(x.Cond)
	case *ast.AtomicStmt:
		r.renameExpr(x.Cond)
		r.renameBlockInPlace(x.Body)
	case *ast.ForkStmt:
		r.renameExpr(x.N)
		r.push()
		old := x.Var
		x.Var = r.bind(old)
		for _, s2 := range x.Body.Stmts {
			r.renameStmt(s2)
		}
		r.pop()
	case *ast.ReorderStmt:
		// The reorder block's statements share one scope with each
		// other but declarations inside it are visible only there.
		r.renameBlockInPlace(x.Body)
	case *ast.RepeatStmt:
		r.renameExpr(x.Count)
		r.push()
		r.renameStmt(x.Body)
		r.pop()
	case *ast.LockStmt:
		r.renameExpr(x.Target)
	case *ast.ExprStmt:
		r.renameExpr(x.X)
	default:
		r.errs = append(r.errs, fmt.Errorf("rename: unhandled statement %T", s))
	}
}

func (r *renamer) renameExpr(e ast.Expr) {
	ast.WalkExpr(e, func(x ast.Expr) {
		if id, ok := x.(*ast.Ident); ok {
			if n, bound := r.lookup(id.Name); bound {
				id.Name = n
			}
		}
	})
}
