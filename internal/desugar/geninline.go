package desugar

import (
	"fmt"

	"psketch/internal/ast"
)

// Expression-level inlining of simple generator functions.
//
// A generator whose body is a single `return expr;` is substituted
// directly at the expression level (fresh holes per call site, §4.1),
// with arguments substituted for parameters. This is required — not
// just convenient — for two paper idioms:
//
//   - `if (predicate(...)) { ... }` inside a reorder block (the barrier
//     of §8.2.2): the call sits in condition position;
//   - any generator call inside a reorder block: the encoding
//     replicates statements with shared holes, so the call's holes must
//     be materialized before encoding.
//
// Generators with more complex bodies remain restricted to
// statement-level calls, handled by the ordinary inliner.

// isSimpleGenerator reports whether fn can be expression-inlined.
func isSimpleGenerator(fn *ast.FuncDecl) bool {
	if fn == nil || !fn.Generator || fn.Ret == nil || len(fn.Body.Stmts) != 1 {
		return false
	}
	ret, ok := fn.Body.Stmts[0].(*ast.ReturnStmt)
	return ok && ret.Val != nil
}

// exprInlineGenerators rewrites every call to a simple generator inside
// the block into its body expression with fresh, immediately numbered
// holes.
func (d *desugarer) exprInlineGenerators(b *ast.Block) error {
	return d.gilBlock(b, 0)
}

func (d *desugarer) gilBlock(b *ast.Block, depth int) error {
	if b == nil {
		return nil
	}
	for _, s := range b.Stmts {
		if err := d.gilStmt(s, depth); err != nil {
			return err
		}
	}
	return nil
}

func (d *desugarer) gilStmt(s ast.Stmt, depth int) error {
	switch x := s.(type) {
	case nil:
		return nil
	case *ast.Block:
		return d.gilBlock(x, depth)
	case *ast.DeclStmt:
		return d.gilExpr(&x.Init, depth)
	case *ast.AssignStmt:
		if err := d.gilExpr(&x.LHS, depth); err != nil {
			return err
		}
		return d.gilExpr(&x.RHS, depth)
	case *ast.IfStmt:
		if err := d.gilExpr(&x.Cond, depth); err != nil {
			return err
		}
		if err := d.gilBlock(x.Then, depth); err != nil {
			return err
		}
		return d.gilStmt(x.Else, depth)
	case *ast.WhileStmt:
		if err := d.gilExpr(&x.Cond, depth); err != nil {
			return err
		}
		return d.gilBlock(x.Body, depth)
	case *ast.ReturnStmt:
		return d.gilExpr(&x.Val, depth)
	case *ast.AssertStmt:
		return d.gilExpr(&x.Cond, depth)
	case *ast.AtomicStmt:
		if x.Cond != nil {
			if err := d.gilExpr(&x.Cond, depth); err != nil {
				return err
			}
		}
		return d.gilBlock(x.Body, depth)
	case *ast.ForkStmt:
		return d.gilBlock(x.Body, depth)
	case *ast.ReorderStmt:
		return d.gilBlock(x.Body, depth)
	case *ast.LockStmt:
		return d.gilExpr(&x.Target, depth)
	case *ast.ExprStmt:
		return d.gilExpr(&x.X, depth)
	case *ast.RepeatStmt:
		if err := d.gilExpr(&x.Count, depth); err != nil {
			return err
		}
		return d.gilStmt(x.Body, depth)
	}
	return nil
}

// gilExpr rewrites *ep in place.
func (d *desugarer) gilExpr(ep *ast.Expr, depth int) error {
	if ep == nil || *ep == nil {
		return nil
	}
	if depth > maxInlineDepth {
		return fmt.Errorf("generator inlining too deep (recursive generator?)")
	}
	switch x := (*ep).(type) {
	case *ast.CallExpr:
		for i := range x.Args {
			if err := d.gilExpr(&x.Args[i], depth); err != nil {
				return err
			}
		}
		fn := d.work.Func(x.Fun)
		if !isSimpleGenerator(fn) {
			return nil
		}
		if len(x.Args) != len(fn.Params) {
			return fmt.Errorf("%s: %s expects %d argument(s), got %d", x.P, x.Fun, len(fn.Params), len(x.Args))
		}
		ret := fn.Body.Stmts[0].(*ast.ReturnStmt).Val
		cl := ast.NewCloner(ast.CloneFresh)
		body := cl.Expr(ret)
		// Substitute arguments for parameters.
		sub := map[string]ast.Expr{}
		for i, p := range fn.Params {
			sub[p.Name] = x.Args[i]
		}
		body = substIdentsExpr(body, sub)
		// Fresh holes get IDs now; simple generators cannot contribute
		// side constraints (their body is one expression).
		d.assignIDsExpr(body)
		*ep = body
		// The generator may itself call simple generators.
		return d.gilExpr(ep, depth+1)
	case *ast.Regen:
		for i := range x.Choices {
			if err := d.gilExpr(&x.Choices[i], depth); err != nil {
				return err
			}
		}
	case *ast.Unary:
		return d.gilExpr(&x.X, depth)
	case *ast.Binary:
		if err := d.gilExpr(&x.X, depth); err != nil {
			return err
		}
		return d.gilExpr(&x.Y, depth)
	case *ast.FieldExpr:
		return d.gilExpr(&x.X, depth)
	case *ast.IndexExpr:
		if err := d.gilExpr(&x.X, depth); err != nil {
			return err
		}
		return d.gilExpr(&x.Index, depth)
	case *ast.SliceExpr:
		if err := d.gilExpr(&x.X, depth); err != nil {
			return err
		}
		return d.gilExpr(&x.Start, depth)
	case *ast.CastExpr:
		return d.gilExpr(&x.X, depth)
	case *ast.NewExpr:
		for i := range x.Args {
			if err := d.gilExpr(&x.Args[i], depth); err != nil {
				return err
			}
		}
	}
	return nil
}

// substIdentsExpr replaces parameter identifiers with argument
// expressions (shared argument nodes: the sketch language has no
// side-effecting argument idioms for simple generators).
func substIdentsExpr(e ast.Expr, sub map[string]ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	if id, ok := e.(*ast.Ident); ok {
		if rep, bound := sub[id.Name]; bound {
			return ast.NewCloner(ast.CloneShare).Expr(rep)
		}
		return e
	}
	switch x := e.(type) {
	case *ast.Regen:
		for i := range x.Choices {
			x.Choices[i] = substIdentsExpr(x.Choices[i], sub)
		}
	case *ast.Unary:
		x.X = substIdentsExpr(x.X, sub)
	case *ast.Binary:
		x.X = substIdentsExpr(x.X, sub)
		x.Y = substIdentsExpr(x.Y, sub)
	case *ast.FieldExpr:
		x.X = substIdentsExpr(x.X, sub)
	case *ast.IndexExpr:
		x.X = substIdentsExpr(x.X, sub)
		x.Index = substIdentsExpr(x.Index, sub)
	case *ast.SliceExpr:
		x.X = substIdentsExpr(x.X, sub)
		x.Start = substIdentsExpr(x.Start, sub)
	case *ast.CallExpr:
		for i := range x.Args {
			x.Args[i] = substIdentsExpr(x.Args[i], sub)
		}
	case *ast.CastExpr:
		x.X = substIdentsExpr(x.X, sub)
	case *ast.NewExpr:
		for i := range x.Args {
			x.Args[i] = substIdentsExpr(x.Args[i], sub)
		}
	}
	return e
}
