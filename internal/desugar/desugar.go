// Package desugar lowers the high-level sketching constructs of §4.1
// and §7 onto the base language with integer holes:
//
//   - repeat(n)/repeat(??) bodies are replicated with fresh holes (§3);
//   - reorder blocks are encoded with either the quadratic or the
//     exponential (insertion) encoding of §7.2, introducing index holes
//     and side constraints;
//   - generator functions are inlined with fresh holes per call site,
//     ordinary sketched functions with shared holes across call sites
//     (one implementation serves every caller);
//   - the candidate-space size |C| of Table 1 is computed on the
//     pre-encoding form (product of generator choice counts, k! per
//     reorder block, 2^w per primitive hole).
//
// The result is a self-contained harness whose only synthesis
// constructs are primitive holes and resolved {|...|} generators,
// ready for if-conversion (internal/ir).
package desugar

import (
	"fmt"
	"math/big"

	"psketch/internal/ast"
	"psketch/internal/types"
)

// Encoding selects the reorder-block translation of §7.2.
type Encoding int

const (
	// EncodeInsertion is the exponential-size encoding that inserts
	// statements one at a time; the paper found it faster for the
	// typical small blocks.
	EncodeInsertion Encoding = iota
	// EncodeQuadratic is the k² encoding with an order array and a
	// no-duplicates constraint.
	EncodeQuadratic
)

// Options configure desugaring and the bounded machine.
type Options struct {
	IntWidth  int      // bit width of int values (default 5)
	HoleWidth int      // default bit width of ?? holes (default 3)
	LoopBound int      // while-loop unroll bound (default 4)
	MaxRepeat int      // bound for repeat(??) (default 8)
	Encoding  Encoding // reorder encoding (default insertion)
}

// Defaults fills zero fields with default values.
func (o Options) Defaults() Options {
	if o.IntWidth == 0 {
		o.IntWidth = 5
	}
	if o.HoleWidth == 0 {
		o.HoleWidth = 3
	}
	if o.LoopBound == 0 {
		o.LoopBound = 4
	}
	if o.MaxRepeat == 0 {
		o.MaxRepeat = 8
	}
	return o
}

// HoleKind distinguishes how a hole's bits are interpreted.
type HoleKind int

const (
	// HoleInt is a plain ?? constant (unsigned, zero-extended to int).
	HoleInt HoleKind = iota
	// HoleBool is a ?? in boolean context (1 bit).
	HoleBool
	// HoleBits is a ?? of bit-array type (one bit per cell).
	HoleBits
	// HoleChoice selects one alternative of a {|...|} generator.
	HoleChoice
)

// HoleMeta describes one synthesis unknown.
type HoleMeta struct {
	ID      int
	Kind    HoleKind
	Bits    int // number of control bits
	Choices int // for HoleChoice: number of alternatives
	Label   string
}

// Sketch is a desugared synthesis problem for one harness.
type Sketch struct {
	Opts    Options
	Prog    *ast.Program  // transformed program (structs, globals, harness [+ spec])
	Info    *types.Info   // types for the transformed program
	Harness *ast.FuncDecl // fully inlined synthesis target
	Spec    *ast.FuncDecl // fully inlined reference implementation, or nil
	// Holes lists every synthesis unknown, indexed by ID. Regens and
	// primitive holes share the ID space.
	Holes []HoleMeta
	// Constraints are synthesis-time side conditions over holes
	// (reorder permutation validity, repeat bounds). They contain only
	// hole expressions and literals.
	Constraints []ast.Expr
	// Count is the size |C| of the candidate space as counted in
	// Table 1 (product rule on the pre-encoding sketch).
	Count *big.Int
	// ResultVar / SpecResultVar name the locals that hold the return
	// values of a sequential harness and its spec ("" when void or
	// concurrent).
	ResultVar     string
	SpecResultVar string
	// WorkProg is the pre-inline working program (repeat expanded,
	// reorder encoded, hole IDs assigned). The pretty-printer uses it
	// to render resolved sketches function by function, as in the
	// paper's Figures 2, 4 and 6.
	WorkProg *ast.Program
}

// Desugar lowers the program for the named synthesis target.
func Desugar(prog *ast.Program, target string, opts Options) (*Sketch, error) {
	opts = opts.Defaults()
	d := &desugarer{opts: opts, sk: &Sketch{Opts: opts}}
	if err := d.run(prog, target); err != nil {
		return nil, err
	}
	return d.sk, nil
}

type desugarer struct {
	opts        Options
	sk          *Sketch
	info        *types.Info // info for the working copy
	work        *ast.Program
	nameCounter int
	// funcConstraints holds per-function side constraints on the
	// working copy (pre-inline): reorder permutation validity and
	// repeat-count bounds.
	funcConstraints map[string][]ast.Expr
	// holeCard overrides the cardinality of special holes (repeat
	// counts) for |C| counting.
	holeCard  map[*ast.Hole]int64
	holeSeen  map[*ast.Hole]bool
	regenSeen map[*ast.Regen]bool
}

// addConstraint records a synthesis-time side condition for fname.
func (d *desugarer) addConstraint(fname string, c ast.Expr) {
	d.funcConstraints[fname] = append(d.funcConstraints[fname], c)
}

func (d *desugarer) run(prog *ast.Program, target string) error {
	// Work on a deep copy so the caller's AST stays pristine.
	cl := ast.NewCloner(ast.CloneShare)
	d.work = &ast.Program{}
	for _, s := range prog.Structs {
		cp := &ast.StructDecl{P: s.P, Name: s.Name}
		for _, f := range s.Fields {
			t := *f.Type
			cp.Fields = append(cp.Fields, &ast.Field{P: f.P, Type: &t, Name: f.Name, Default: cl.Expr(f.Default)})
		}
		d.work.Structs = append(d.work.Structs, cp)
	}
	for _, g := range prog.Globals {
		t := *g.Type
		d.work.Globals = append(d.work.Globals, &ast.GlobalDecl{P: g.P, Type: &t, Name: g.Name, Init: cl.Expr(g.Init)})
	}
	for _, f := range prog.Funcs {
		cp := &ast.FuncDecl{P: f.P, Generator: f.Generator, Harness: f.Harness, Name: f.Name, Implements: f.Implements}
		if f.Ret != nil {
			t := *f.Ret
			cp.Ret = &t
		}
		for _, p := range f.Params {
			t := *p.Type
			cp.Params = append(cp.Params, &ast.Param{P: p.P, Type: &t, Name: p.Name})
		}
		cp.Body = cl.Block(f.Body)
		d.work.Funcs = append(d.work.Funcs, cp)
	}

	// Type-check the copy; this also resolves every generator's
	// choices, which counting and encoding need.
	info, err := types.Check(d.work)
	if err != nil {
		return err
	}
	d.info = info

	tf := d.work.Func(target)
	if tf == nil {
		return fmt.Errorf("desugar: no function named %s", target)
	}

	// Per-function structural lowering: repeat replication first (it
	// creates fresh holes), then local alpha-renaming so later passes
	// can hoist declarations without capture.
	d.funcConstraints = map[string][]ast.Expr{}
	d.holeCard = map[*ast.Hole]int64{}
	for _, f := range d.work.Funcs {
		if err := d.expandRepeatsIn(f.Body, f.Name); err != nil {
			return err
		}
		if err := d.alphaRename(f); err != nil {
			return err
		}
	}

	// |C| on the pre-encoding form (Table 1 counting rules).
	count, err := d.countTarget(tf)
	if err != nil {
		return err
	}
	d.sk.Count = count

	// Assign IDs to holes before reorder encoding so that the encoded
	// statement copies share their holes' identities.
	d.holeSeen = map[*ast.Hole]bool{}
	d.regenSeen = map[*ast.Regen]bool{}
	for _, f := range d.work.Funcs {
		d.assignIDs(f.Body, f.Name)
	}

	// Expression-inline simple generator functions (fresh holes per
	// call site) before reorder encoding, so that the encoding's
	// statement copies share the materialized holes.
	for _, f := range d.work.Funcs {
		if err := d.exprInlineGenerators(f.Body); err != nil {
			return err
		}
	}

	// Encode reorder blocks.
	for _, f := range d.work.Funcs {
		cons, err := d.encodeReorders(f.Body)
		if err != nil {
			return err
		}
		d.funcConstraints[f.Name] = append(d.funcConstraints[f.Name], cons...)
	}

	// Inline everything reachable from the target (and from its spec).
	inlined, cons, err := d.inlineFunc(tf)
	if err != nil {
		return err
	}
	d.sk.Constraints = append(d.sk.Constraints, cons...)

	var spec *ast.FuncDecl
	if tf.Implements != "" {
		sf := d.work.Func(tf.Implements)
		specInlined, specCons, err := d.inlineFunc(sf)
		if err != nil {
			return err
		}
		if len(specCons) > 0 || len(d.holesIn(specInlined)) > 0 {
			return fmt.Errorf("desugar: spec %s must not contain holes", sf.Name)
		}
		spec = specInlined
	}

	// Sequential targets return a value; lower their returns into a
	// result variable so the bodies become straight-line.
	if !containsFork(inlined.Body) && inlined.Ret != nil {
		v, err := wrapResult(inlined)
		if err != nil {
			return err
		}
		d.sk.ResultVar = v
	}
	if spec != nil && spec.Ret != nil {
		v, err := wrapResult(spec)
		if err != nil {
			return err
		}
		d.sk.SpecResultVar = v
	}

	// Build the final program and re-typecheck it (cloned nodes need
	// fresh type annotations).
	final := &ast.Program{Structs: d.work.Structs, Globals: d.work.Globals}
	final.Funcs = append(final.Funcs, inlined)
	if spec != nil {
		final.Funcs = append(final.Funcs, spec)
	}
	finfo, err := types.Check(final)
	if err != nil {
		return fmt.Errorf("desugar: internal error re-checking lowered program: %w", err)
	}
	d.sk.Prog = final
	d.sk.Info = finfo
	d.sk.WorkProg = d.work
	d.sk.Harness = inlined
	d.sk.Spec = spec

	if err := d.collectHoleMeta(); err != nil {
		return err
	}
	// Encoding holes are compared against position literals as W-bit
	// ints; the wrap is consistent only while the hole fits the width.
	for _, m := range d.sk.Holes {
		if m.Kind == HoleInt && m.Bits > d.opts.IntWidth {
			return fmt.Errorf("desugar: a synthesis hole needs %d bits but IntWidth is %d; raise IntWidth or shrink the reorder block", m.Bits, d.opts.IntWidth)
		}
	}
	return nil
}

// holesIn returns the holes appearing in a function body.
func (d *desugarer) holesIn(f *ast.FuncDecl) []*ast.Hole {
	var hs []*ast.Hole
	ast.WalkExprs(f.Body, func(e ast.Expr) {
		if h, ok := e.(*ast.Hole); ok {
			hs = append(hs, h)
		}
	})
	return hs
}

func (d *desugarer) fresh(base string) string {
	d.nameCounter++
	return fmt.Sprintf("%s_%d", base, d.nameCounter)
}

// assignIDs numbers every hole and generator in b (deduplicated by node
// identity) into the global ID space.
func (d *desugarer) assignIDs(b *ast.Block, label string) {
	ast.WalkExprs(b, func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Hole:
			if x.ID == -1 && !d.holeSeen[x] {
				x.ID = d.nextID()
				d.holeSeen[x] = true
			}
		case *ast.Regen:
			if x.ID == -1 && !d.regenSeen[x] {
				x.ID = d.nextID()
				d.regenSeen[x] = true
			}
		}
	})
}

// nextID reserves the next hole ID. Metadata is filled in later by
// collectHoleMeta, once final types are known.
func (d *desugarer) nextID() int {
	id := len(d.sk.Holes)
	d.sk.Holes = append(d.sk.Holes, HoleMeta{ID: id})
	return id
}

// collectHoleMeta fills the metadata table from the final typed AST.
func (d *desugarer) collectHoleMeta() error {
	filled := make([]bool, len(d.sk.Holes))
	var visitExpr func(e ast.Expr) error
	record := func(id int, m HoleMeta) error {
		if id < 0 || id >= len(d.sk.Holes) {
			return fmt.Errorf("desugar: hole with unassigned ID")
		}
		if filled[id] {
			prev := d.sk.Holes[id]
			if prev.Kind != m.Kind || prev.Bits != m.Bits || prev.Choices != m.Choices {
				return fmt.Errorf("desugar: hole %d has inconsistent uses", id)
			}
			return nil
		}
		m.ID = id
		d.sk.Holes[id] = m
		filled[id] = true
		return nil
	}
	visitExpr = func(e ast.Expr) error {
		var err error
		ast.WalkExpr(e, func(x ast.Expr) {
			if err != nil {
				return
			}
			switch h := x.(type) {
			case *ast.Hole:
				t := d.sk.Info.TypeOf(h)
				m := HoleMeta{Kind: HoleInt, Label: "??"}
				switch {
				case t.IsArray() && t.Base == types.Bool:
					m.Kind = HoleBits
					m.Bits = t.Len
				case t.Base == types.Bool:
					m.Kind = HoleBool
					m.Bits = 1
				default:
					m.Bits = h.Width
					if m.Bits == 0 {
						m.Bits = d.opts.HoleWidth
					}
				}
				err = record(h.ID, m)
			case *ast.Regen:
				k := len(h.Choices)
				m := HoleMeta{Kind: HoleChoice, Bits: bitsFor(k), Choices: k, Label: "{|" + h.Text + "|}"}
				err = record(h.ID, m)
			}
		})
		return err
	}
	visitStmt := func(s ast.Stmt) error {
		var err error
		walkTopExprs(s, func(e ast.Expr) {
			if err == nil {
				err = visitExpr(e)
			}
		})
		return err
	}
	if err := visitStmt(d.sk.Harness.Body); err != nil {
		return err
	}
	for _, c := range d.sk.Constraints {
		if err := visitExpr(c); err != nil {
			return err
		}
	}
	// Synthetic holes referenced only from constraints, or never used:
	// give unused slots 1-bit int metadata so downstream code is total.
	for i, ok := range filled {
		if !ok {
			if d.sk.Holes[i].Bits == 0 {
				d.sk.Holes[i] = HoleMeta{ID: i, Kind: HoleInt, Bits: 1, Label: "(unused)"}
			}
		}
	}
	return nil
}

// walkTopExprs calls f once for each top-level expression of s
// (conditions, operands, initializers), without descending into
// sub-expressions — visitExpr does its own descent.
func walkTopExprs(s ast.Stmt, f func(ast.Expr)) {
	switch x := s.(type) {
	case nil:
	case *ast.Block:
		for _, st := range x.Stmts {
			walkTopExprs(st, f)
		}
	case *ast.DeclStmt:
		if x.Init != nil {
			f(x.Init)
		}
	case *ast.AssignStmt:
		f(x.LHS)
		f(x.RHS)
	case *ast.IfStmt:
		f(x.Cond)
		walkTopExprs(x.Then, f)
		walkTopExprs(x.Else, f)
	case *ast.WhileStmt:
		f(x.Cond)
		walkTopExprs(x.Body, f)
	case *ast.ReturnStmt:
		if x.Val != nil {
			f(x.Val)
		}
	case *ast.AssertStmt:
		f(x.Cond)
	case *ast.AtomicStmt:
		if x.Cond != nil {
			f(x.Cond)
		}
		walkTopExprs(x.Body, f)
	case *ast.ForkStmt:
		f(x.N)
		walkTopExprs(x.Body, f)
	case *ast.ReorderStmt:
		walkTopExprs(x.Body, f)
	case *ast.RepeatStmt:
		f(x.Count)
		walkTopExprs(x.Body, f)
	case *ast.LockStmt:
		f(x.Target)
	case *ast.ExprStmt:
		f(x.X)
	}
}

// bitsFor returns ceil(log2(n)) with a minimum of 1.
func bitsFor(n int) int {
	b := 1
	for (1 << b) < n {
		b++
	}
	return b
}

// Candidate assigns a concrete value to every hole: the chosen constant
// for primitive holes (HoleInt/HoleBool/HoleBits, bit-packed) and the
// chosen alternative index for generators (HoleChoice).
type Candidate []int64

// Choice returns the clamped alternative index for a generator hole.
func (c Candidate) Choice(id, nchoices int) int {
	if id < 0 || id >= len(c) || nchoices == 0 {
		return 0
	}
	v := int(c[id])
	if v < 0 || v >= nchoices {
		return 0
	}
	return v
}

// Value returns the raw value of a hole (0 when out of range).
func (c Candidate) Value(id int) int64 {
	if id < 0 || id >= len(c) {
		return 0
	}
	return c[id]
}
