package desugar

import (
	"fmt"
	"sort"

	"psketch/internal/ast"
	"psketch/internal/token"
)

// encodeReorders rewrites every reorder block in b using the selected
// encoding of §7.2 and returns the side constraints it generated.
// Nested reorder blocks are encoded innermost-first.
func (d *desugarer) encodeReorders(b *ast.Block) ([]ast.Expr, error) {
	var cons []ast.Expr
	if err := d.encodeReordersIn(b, &cons); err != nil {
		return nil, err
	}
	return cons, nil
}

func (d *desugarer) encodeReordersIn(b *ast.Block, cons *[]ast.Expr) error {
	if b == nil {
		return nil
	}
	var out []ast.Stmt
	for _, s := range b.Stmts {
		rs, err := d.encodeReorderStmt(s, cons)
		if err != nil {
			return err
		}
		out = append(out, rs...)
	}
	b.Stmts = out
	return nil
}

func (d *desugarer) encodeReorderStmt(s ast.Stmt, cons *[]ast.Expr) ([]ast.Stmt, error) {
	switch x := s.(type) {
	case *ast.ReorderStmt:
		if err := d.encodeReordersIn(x.Body, cons); err != nil {
			return nil, err
		}
		return d.encodeOneReorder(x, cons)
	case *ast.Block:
		if err := d.encodeReordersIn(x, cons); err != nil {
			return nil, err
		}
	case *ast.IfStmt:
		if err := d.encodeReordersIn(x.Then, cons); err != nil {
			return nil, err
		}
		if x.Else != nil {
			rs, err := d.encodeReorderStmt(x.Else, cons)
			if err != nil {
				return nil, err
			}
			if len(rs) == 1 {
				x.Else = rs[0]
			} else {
				x.Else = &ast.Block{P: x.P, Stmts: rs}
			}
		}
	case *ast.WhileStmt:
		if err := d.encodeReordersIn(x.Body, cons); err != nil {
			return nil, err
		}
	case *ast.AtomicStmt:
		if len(collectReorders(x.Body)) > 0 {
			return nil, fmt.Errorf("%s: reorder inside atomic is not supported", x.P)
		}
	case *ast.ForkStmt:
		if err := d.encodeReordersIn(x.Body, cons); err != nil {
			return nil, err
		}
	}
	return []ast.Stmt{s}, nil
}

func collectReorders(b *ast.Block) []*ast.ReorderStmt {
	var rs []*ast.ReorderStmt
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.ReorderStmt:
			rs = append(rs, x)
		case *ast.Block:
			for _, st := range x.Stmts {
				walk(st)
			}
		case *ast.IfStmt:
			walk(x.Then)
			walk(x.Else)
		case *ast.WhileStmt:
			walk(x.Body)
		case *ast.AtomicStmt:
			walk(x.Body)
		case *ast.ForkStmt:
			walk(x.Body)
		}
	}
	for _, s := range b.Stmts {
		walk(s)
	}
	return rs
}

func (d *desugarer) encodeOneReorder(x *ast.ReorderStmt, cons *[]ast.Expr) ([]ast.Stmt, error) {
	stmts := x.Body.Stmts
	k := len(stmts)
	if k <= 1 {
		return stmts, nil
	}
	// Declarations cannot be reordered meaningfully (a use before the
	// chosen position would be out of scope); hoist is unsupported, so
	// require plain statements.
	for _, s := range stmts {
		if _, isDecl := s.(*ast.DeclStmt); isDecl {
			return nil, fmt.Errorf("%s: declarations inside reorder are not supported; declare before the block", s.Pos())
		}
	}
	if d.opts.Encoding == EncodeQuadratic {
		return d.encodeQuadratic(x, stmts, cons), nil
	}
	return d.encodeInsertion(x, stmts, cons), nil
}

// encodeQuadratic is the k² encoding: k index holes forming a
// permutation (enforced by side constraints), and k rounds each
// dispatching on its index hole.
func (d *desugarer) encodeQuadratic(x *ast.ReorderStmt, stmts []ast.Stmt, cons *[]ast.Expr) []ast.Stmt {
	k := len(stmts)
	holes := make([]*ast.Hole, k)
	for i := range holes {
		holes[i] = &ast.Hole{P: x.P, Width: bitsFor(k), ID: d.nextID()}
		if rc := rangeConstraint(holes[i], k-1); rc != nil {
			*cons = append(*cons, rc)
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			*cons = append(*cons, &ast.Binary{P: x.P, Op: token.NEQ, X: holes[i], Y: holes[j]})
		}
	}
	var out []ast.Stmt
	for round := 0; round < k; round++ {
		for j := 0; j < k; j++ {
			var body ast.Stmt
			if round == 0 {
				body = stmts[j]
			} else {
				body = ast.NewCloner(ast.CloneShare).Stmt(stmts[j])
			}
			blk, ok := body.(*ast.Block)
			if !ok {
				blk = &ast.Block{P: x.P, Stmts: []ast.Stmt{body}}
			}
			cond := &ast.Binary{P: x.P, Op: token.EQ, X: holes[round], Y: &ast.IntLit{P: x.P, Val: int64(j)}}
			out = append(out, &ast.IfStmt{P: x.P, Cond: cond, Then: blk})
		}
	}
	return out
}

// encodeInsertion is the exponential encoding of §7.2: statements are
// inserted one at a time; inserting statement m into a textual list of
// length L uses one hole with L+1 possible positions and adds L+1
// guarded copies of the statement.
func (d *desugarer) encodeInsertion(x *ast.ReorderStmt, stmts []ast.Stmt, cons *[]ast.Expr) []ast.Stmt {
	// Later insertions get more textual copies, so process the
	// expensive statements first (§7.2: "as long as we add them in the
	// right order").
	stmts = append([]ast.Stmt(nil), stmts...)
	sortBySizeDesc(stmts)
	list := []ast.Stmt{stmts[0]}
	for m := 1; m < len(stmts); m++ {
		L := len(list)
		h := &ast.Hole{P: x.P, Width: bitsFor(L + 1), ID: d.nextID()}
		if rc := rangeConstraint(h, L); rc != nil {
			*cons = append(*cons, rc)
		}
		guarded := func(pos int, first bool) ast.Stmt {
			var body ast.Stmt
			if first {
				body = stmts[m]
			} else {
				body = ast.NewCloner(ast.CloneShare).Stmt(stmts[m])
			}
			blk, ok := body.(*ast.Block)
			if !ok {
				blk = &ast.Block{P: x.P, Stmts: []ast.Stmt{body}}
			}
			cond := &ast.Binary{P: x.P, Op: token.EQ, X: h, Y: &ast.IntLit{P: x.P, Val: int64(pos)}}
			return &ast.IfStmt{P: x.P, Cond: cond, Then: blk}
		}
		next := make([]ast.Stmt, 0, 2*L+1)
		for i := 0; i < L; i++ {
			next = append(next, guarded(i, i == 0))
			next = append(next, list[i])
		}
		next = append(next, guarded(L, false))
		list = next
	}
	return list
}

// stmtSize estimates the textual weight of a statement.
func stmtSize(s ast.Stmt) int {
	n := 1
	ast.WalkExprs(s, func(ast.Expr) { n++ })
	switch x := s.(type) {
	case *ast.Block:
		for _, st := range x.Stmts {
			n += stmtSize(st)
		}
	case *ast.IfStmt:
		n += stmtSize(x.Then)
		if x.Else != nil {
			n += stmtSize(x.Else)
		}
	case *ast.WhileStmt:
		n += stmtSize(x.Body)
	case *ast.AtomicStmt:
		n += stmtSize(x.Body)
	}
	return n
}

// sortBySizeDesc stably orders statements from largest to smallest.
func sortBySizeDesc(stmts []ast.Stmt) {
	sort.SliceStable(stmts, func(i, j int) bool {
		return stmtSize(stmts[i]) > stmtSize(stmts[j])
	})
}

// rangeConstraint builds a wrap-safe "h ∈ [0, max]" side condition.
// Order comparisons on W-bit ints wrap (h <= 31 at W=5 means h <= -1),
// so the range is expressed as a disjunction of equalities — or elided
// entirely when the hole's bit width already enforces it.
func rangeConstraint(h *ast.Hole, max int) ast.Expr {
	if (1<<h.Width)-1 <= max {
		return nil
	}
	var or ast.Expr
	for v := 0; v <= max; v++ {
		eq := ast.Expr(&ast.Binary{P: h.P, Op: token.EQ, X: h, Y: &ast.IntLit{P: h.P, Val: int64(v)}})
		if or == nil {
			or = eq
		} else {
			or = &ast.Binary{P: h.P, Op: token.LOR, X: or, Y: eq}
		}
	}
	return or
}
