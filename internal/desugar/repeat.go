package desugar

import (
	"fmt"

	"psketch/internal/ast"
	"psketch/internal/token"
)

// expandRepeatsIn rewrites every repeat(n) statement in the block into
// n replicas of its body, each with fresh holes (§3). repeat(??)
// expands to MaxRepeat replicas guarded by `i < h` for a fresh count
// hole h, with the side constraint h <= MaxRepeat (fname keys the
// constraint to its function).
func (d *desugarer) expandRepeatsIn(b *ast.Block, fname string) error {
	if b == nil {
		return nil
	}
	var out []ast.Stmt
	for _, s := range b.Stmts {
		rs, err := d.expandRepeatStmt(s, fname)
		if err != nil {
			return err
		}
		out = append(out, rs...)
	}
	b.Stmts = out
	return nil
}

// expandRepeatStmt returns the replacement statements for s.
func (d *desugarer) expandRepeatStmt(s ast.Stmt, fname string) ([]ast.Stmt, error) {
	switch x := s.(type) {
	case *ast.RepeatStmt:
		return d.expandOneRepeat(x, fname)
	case *ast.Block:
		if err := d.expandRepeatsIn(x, fname); err != nil {
			return nil, err
		}
	case *ast.IfStmt:
		if err := d.expandRepeatsIn(x.Then, fname); err != nil {
			return nil, err
		}
		if x.Else != nil {
			rs, err := d.expandRepeatStmt(x.Else, fname)
			if err != nil {
				return nil, err
			}
			if len(rs) == 1 {
				x.Else = rs[0]
			} else {
				x.Else = &ast.Block{P: x.P, Stmts: rs}
			}
		}
	case *ast.WhileStmt:
		if err := d.expandRepeatsIn(x.Body, fname); err != nil {
			return nil, err
		}
	case *ast.AtomicStmt:
		if err := d.expandRepeatsIn(x.Body, fname); err != nil {
			return nil, err
		}
	case *ast.ForkStmt:
		if err := d.expandRepeatsIn(x.Body, fname); err != nil {
			return nil, err
		}
	case *ast.ReorderStmt:
		if err := d.expandRepeatsIn(x.Body, fname); err != nil {
			return nil, err
		}
	}
	return []ast.Stmt{s}, nil
}

func (d *desugarer) expandOneRepeat(x *ast.RepeatStmt, fname string) ([]ast.Stmt, error) {
	// Expand repeats nested inside the body first, so that each replica
	// of an inner repeat gets its own fresh holes.
	inner, err := d.expandRepeatStmt(x.Body, fname)
	if err != nil {
		return nil, err
	}
	body := x.Body
	if len(inner) != 1 {
		body = &ast.Block{P: x.P, Stmts: inner}
	} else {
		body = inner[0]
	}

	switch cnt := x.Count.(type) {
	case *ast.IntLit:
		n := int(cnt.Val)
		if n < 0 || n > 64 {
			return nil, fmt.Errorf("%s: repeat count %d out of range [0,64]", x.P, n)
		}
		out := make([]ast.Stmt, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, ast.NewCloner(ast.CloneFresh).Stmt(body))
		}
		return out, nil
	case *ast.Hole:
		m := d.opts.MaxRepeat
		h := &ast.Hole{P: x.P, Width: bitsFor(m + 1), ID: -1}
		d.holeCard[h] = int64(m + 1)
		if rc := rangeConstraint(h, m); rc != nil {
			d.addConstraint(fname, rc)
		}
		out := make([]ast.Stmt, 0, m)
		for i := 0; i < m; i++ {
			replica := ast.NewCloner(ast.CloneFresh).Stmt(body)
			guard := &ast.Binary{P: x.P, Op: token.LT, X: &ast.IntLit{P: x.P, Val: int64(i)}, Y: h}
			blk, ok := replica.(*ast.Block)
			if !ok {
				blk = &ast.Block{P: x.P, Stmts: []ast.Stmt{replica}}
			}
			out = append(out, &ast.IfStmt{P: x.P, Cond: guard, Then: blk})
		}
		return out, nil
	}
	return nil, fmt.Errorf("%s: repeat count must be an integer literal or ??", x.P)
}
