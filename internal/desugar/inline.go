package desugar

import (
	"fmt"

	"psketch/internal/ast"
	"psketch/internal/token"
	"psketch/internal/types"
)

const (
	notOp = token.NOT
	andOp = token.LAND
)

// inlineFunc returns a copy of f with every user-function call expanded
// in place, plus the side constraints contributed by the inlined
// functions. Ordinary sketched functions are inlined with shared holes
// (all call sites resolve to the same implementation); generator
// functions are inlined with fresh holes per call site.
func (d *desugarer) inlineFunc(f *ast.FuncDecl) (*ast.FuncDecl, []ast.Expr, error) {
	st := &inliner{d: d, consAdded: map[string]bool{}, stack: map[string]bool{f.Name: true}}
	st.cons = append(st.cons, d.funcConstraints[f.Name]...)
	st.consAdded[f.Name] = true
	// Work on a shared-hole clone so the pre-inline program (kept for
	// pretty-printing) stays intact.
	body, err := st.block(ast.NewCloner(ast.CloneShare).Block(f.Body))
	if err != nil {
		return nil, nil, err
	}
	out := &ast.FuncDecl{
		P: f.P, Harness: f.Harness, Name: f.Name, Implements: f.Implements,
		Ret: f.Ret, Params: f.Params, Body: body,
	}
	return out, st.cons, nil
}

type inliner struct {
	d         *desugarer
	cons      []ast.Expr
	consAdded map[string]bool
	stack     map[string]bool
	depth     int
}

const maxInlineDepth = 64

func (st *inliner) block(b *ast.Block) (*ast.Block, error) {
	out := &ast.Block{P: b.P}
	for _, s := range b.Stmts {
		rs, err := st.stmt(s)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, rs...)
	}
	return out, nil
}

// userCall returns the call expression if e is a call to a user
// function (not a builtin), else nil.
func (st *inliner) userCall(e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok || types.IsBuiltin(call.Fun) {
		return nil
	}
	return call
}

// checkNoUserCalls rejects user-function calls nested inside an
// expression (they are only supported at statement level).
func (st *inliner) checkNoUserCalls(e ast.Expr) error {
	var err error
	ast.WalkExpr(e, func(x ast.Expr) {
		if err != nil {
			return
		}
		if c, ok := x.(*ast.CallExpr); ok && !types.IsBuiltin(c.Fun) {
			err = fmt.Errorf("%s: call to %s must appear as its own statement (x = %s(...); or %s(...);)", c.P, c.Fun, c.Fun, c.Fun)
		}
	})
	return err
}

func (st *inliner) stmt(s ast.Stmt) ([]ast.Stmt, error) {
	switch x := s.(type) {
	case *ast.Block:
		b, err := st.block(x)
		if err != nil {
			return nil, err
		}
		return []ast.Stmt{b}, nil
	case *ast.DeclStmt:
		if call := st.userCall(x.Init); call != nil {
			seq, ret, err := st.expandCall(call, true)
			if err != nil {
				return nil, err
			}
			x.Init = &ast.Ident{P: call.P, Name: ret}
			return append(seq, x), nil
		}
		if err := st.checkNoUserCalls(x.Init); err != nil {
			return nil, err
		}
	case *ast.AssignStmt:
		if err := st.checkNoUserCalls(x.LHS); err != nil {
			return nil, err
		}
		if call := st.userCall(x.RHS); call != nil {
			seq, ret, err := st.expandCall(call, true)
			if err != nil {
				return nil, err
			}
			x.RHS = &ast.Ident{P: call.P, Name: ret}
			return append(seq, x), nil
		}
		if err := st.checkNoUserCalls(x.RHS); err != nil {
			return nil, err
		}
	case *ast.ExprStmt:
		if call := st.userCall(x.X); call != nil {
			seq, _, err := st.expandCall(call, false)
			if err != nil {
				return nil, err
			}
			return seq, nil
		}
		if err := st.checkNoUserCalls(x.X); err != nil {
			return nil, err
		}
	case *ast.IfStmt:
		if err := st.checkNoUserCalls(x.Cond); err != nil {
			return nil, err
		}
		thenB, err := st.block(x.Then)
		if err != nil {
			return nil, err
		}
		x.Then = thenB
		if x.Else != nil {
			rs, err := st.stmt(x.Else)
			if err != nil {
				return nil, err
			}
			if len(rs) == 1 {
				x.Else = rs[0]
			} else {
				x.Else = &ast.Block{P: x.P, Stmts: rs}
			}
		}
	case *ast.WhileStmt:
		if err := st.checkNoUserCalls(x.Cond); err != nil {
			return nil, err
		}
		body, err := st.block(x.Body)
		if err != nil {
			return nil, err
		}
		x.Body = body
	case *ast.AtomicStmt:
		if x.Cond != nil {
			if err := st.checkNoUserCalls(x.Cond); err != nil {
				return nil, err
			}
		}
		body, err := st.block(x.Body)
		if err != nil {
			return nil, err
		}
		x.Body = body
	case *ast.ForkStmt:
		body, err := st.block(x.Body)
		if err != nil {
			return nil, err
		}
		x.Body = body
	case *ast.ReturnStmt:
		if x.Val != nil {
			if call := st.userCall(x.Val); call != nil {
				seq, ret, err := st.expandCall(call, true)
				if err != nil {
					return nil, err
				}
				x.Val = &ast.Ident{P: call.P, Name: ret}
				return append(seq, x), nil
			}
			if err := st.checkNoUserCalls(x.Val); err != nil {
				return nil, err
			}
		}
	case *ast.AssertStmt:
		if err := st.checkNoUserCalls(x.Cond); err != nil {
			return nil, err
		}
	case *ast.LockStmt:
		if err := st.checkNoUserCalls(x.Target); err != nil {
			return nil, err
		}
	case *ast.ReorderStmt:
		return nil, fmt.Errorf("%s: internal error: reorder survived encoding", x.P)
	case *ast.RepeatStmt:
		return nil, fmt.Errorf("%s: internal error: repeat survived expansion", x.P)
	}
	return []ast.Stmt{s}, nil
}

// expandCall inlines one call, returning the statement sequence and the
// name of the result variable (if wantRet).
func (st *inliner) expandCall(call *ast.CallExpr, wantRet bool) ([]ast.Stmt, string, error) {
	d := st.d
	fn := d.work.Func(call.Fun)
	if fn == nil {
		return nil, "", fmt.Errorf("%s: call to unknown function %s", call.P, call.Fun)
	}
	if st.stack[fn.Name] {
		return nil, "", fmt.Errorf("%s: recursive call to %s is not supported", call.P, fn.Name)
	}
	st.depth++
	if st.depth > maxInlineDepth {
		return nil, "", fmt.Errorf("%s: inlining too deep", call.P)
	}
	defer func() { st.depth-- }()

	for _, a := range call.Args {
		if err := st.checkNoUserCalls(a); err != nil {
			return nil, "", err
		}
	}

	prefix := d.fresh("_"+fn.Name) + "_"
	var body *ast.Block
	if fn.Generator {
		cl := ast.NewCloner(ast.CloneFresh)
		body = cl.Block(fn.Body)
		for _, con := range d.funcConstraints[fn.Name] {
			st.cons = append(st.cons, cl.Expr(con))
		}
		// Fresh holes need IDs now; constraints share the clones' nodes.
		d.assignIDs(body, fn.Name)
		for _, con := range st.cons[len(st.cons)-len(d.funcConstraints[fn.Name]):] {
			d.assignIDsExpr(con)
		}
	} else {
		cl := ast.NewCloner(ast.CloneShare)
		body = cl.Block(fn.Body)
		if !st.consAdded[fn.Name] {
			st.consAdded[fn.Name] = true
			st.cons = append(st.cons, d.funcConstraints[fn.Name]...)
		}
	}

	// Parameter and result plumbing.
	seed := map[string]string{}
	var seq []ast.Stmt
	for i, p := range fn.Params {
		pn := prefix + p.Name
		seed[p.Name] = pn
		t := *p.Type
		seq = append(seq, &ast.DeclStmt{P: call.P, Type: &t, Name: pn, Init: call.Args[i]})
	}
	if err := d.renameBody(body, prefix, seed); err != nil {
		return nil, "", err
	}

	retName := ""
	if fn.Ret != nil {
		retName = prefix + "ret"
		t := *fn.Ret
		seq = append(seq, &ast.DeclStmt{P: call.P, Type: &t, Name: retName})
	} else if wantRet {
		return nil, "", fmt.Errorf("%s: void function %s used as a value", call.P, fn.Name)
	}
	if containsReturn(body) {
		doneName := prefix + "done"
		seq = append(seq, &ast.DeclStmt{P: call.P, Type: &ast.TypeExpr{P: call.P, Name: "bool"}, Name: doneName, Init: &ast.BoolLit{P: call.P, Val: false}})
		if err := lowerReturns(body, retName, doneName); err != nil {
			return nil, "", err
		}
	}

	// Recursively inline calls within the body.
	st.stack[fn.Name] = true
	inlined, err := st.block(body)
	st.stack[fn.Name] = false
	if err != nil {
		return nil, "", err
	}
	seq = append(seq, inlined)
	return seq, retName, nil
}

// assignIDsExpr numbers holes appearing only in a constraint.
func (d *desugarer) assignIDsExpr(e ast.Expr) {
	ast.WalkExpr(e, func(x ast.Expr) {
		switch h := x.(type) {
		case *ast.Hole:
			if h.ID == -1 && !d.holeSeen[h] {
				h.ID = d.nextID()
				d.holeSeen[h] = true
			}
		case *ast.Regen:
			if h.ID == -1 && !d.regenSeen[h] {
				h.ID = d.nextID()
				d.regenSeen[h] = true
			}
		}
	})
}

// containsReturn reports whether any return statement occurs in b.
func containsReturn(b *ast.Block) bool {
	found := false
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.Block:
			for _, st := range x.Stmts {
				walk(st)
			}
		case *ast.IfStmt:
			walk(x.Then)
			walk(x.Else)
		case *ast.WhileStmt:
			walk(x.Body)
		case *ast.AtomicStmt:
			walk(x.Body)
		case *ast.ForkStmt:
			walk(x.Body)
		}
	}
	for _, s := range b.Stmts {
		walk(s)
	}
	return found
}

// lowerReturns rewrites every return in the inlined body into
// "ret = val; done = true", guarding the statements that follow a
// potential return with !done and strengthening loop conditions.
func lowerReturns(b *ast.Block, retName, doneName string) error {
	_, err := lowerReturnsBlock(b, retName, doneName)
	return err
}

func lowerReturnsBlock(b *ast.Block, ret, done string) (bool, error) {
	mayReturn := false
	for i := 0; i < len(b.Stmts); i++ {
		s := b.Stmts[i]
		mr, repl, err := lowerReturnsStmt(s, ret, done)
		if err != nil {
			return false, err
		}
		if repl != nil {
			b.Stmts[i] = repl
		}
		if mr {
			mayReturn = true
			if i < len(b.Stmts)-1 {
				// Copy the tail: the append below overwrites the slot
				// the tail slice would otherwise alias.
				rest := &ast.Block{P: b.Stmts[i+1].Pos(), Stmts: append([]ast.Stmt(nil), b.Stmts[i+1:]...)}
				if _, err := lowerReturnsBlock(rest, ret, done); err != nil {
					return false, err
				}
				notDone := &ast.Unary{P: rest.P, Op: notOp, X: &ast.Ident{P: rest.P, Name: done}}
				b.Stmts = append(b.Stmts[:i+1], &ast.IfStmt{P: rest.P, Cond: notDone, Then: rest})
				return true, nil
			}
		}
	}
	return mayReturn, nil
}

func lowerReturnsStmt(s ast.Stmt, ret, done string) (bool, ast.Stmt, error) {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		blk := &ast.Block{P: x.P}
		if x.Val != nil {
			if ret == "" {
				return false, nil, fmt.Errorf("%s: value returned from void function", x.P)
			}
			blk.Stmts = append(blk.Stmts, &ast.AssignStmt{P: x.P, LHS: &ast.Ident{P: x.P, Name: ret}, RHS: x.Val})
		}
		blk.Stmts = append(blk.Stmts, &ast.AssignStmt{P: x.P, LHS: &ast.Ident{P: x.P, Name: done}, RHS: &ast.BoolLit{P: x.P, Val: true}})
		return true, blk, nil
	case *ast.Block:
		mr, err := lowerReturnsBlock(x, ret, done)
		return mr, nil, err
	case *ast.IfStmt:
		mrT, err := lowerReturnsBlock(x.Then, ret, done)
		if err != nil {
			return false, nil, err
		}
		mrE := false
		if x.Else != nil {
			var repl ast.Stmt
			mrE, repl, err = lowerReturnsStmt(x.Else, ret, done)
			if err != nil {
				return false, nil, err
			}
			if repl != nil {
				x.Else = repl
			}
		}
		return mrT || mrE, nil, nil
	case *ast.WhileStmt:
		mr, err := lowerReturnsBlock(x.Body, ret, done)
		if err != nil {
			return false, nil, err
		}
		if mr {
			notDone := &ast.Unary{P: x.P, Op: notOp, X: &ast.Ident{P: x.P, Name: done}}
			x.Cond = &ast.Binary{P: x.P, Op: andOp, X: notDone, Y: x.Cond}
		}
		return mr, nil, nil
	case *ast.AtomicStmt:
		if containsReturn(x.Body) {
			return false, nil, fmt.Errorf("%s: return inside atomic is not supported", x.P)
		}
		return false, nil, nil
	}
	return false, nil, nil
}

// containsFork reports whether the block forks threads.
func containsFork(b *ast.Block) bool {
	found := false
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.ForkStmt:
			found = true
		case *ast.Block:
			for _, st := range x.Stmts {
				walk(st)
			}
		case *ast.IfStmt:
			walk(x.Then)
			walk(x.Else)
		case *ast.WhileStmt:
			walk(x.Body)
		}
	}
	for _, s := range b.Stmts {
		walk(s)
	}
	return found
}

// wrapResult rewrites a value-returning function body into straight
// assignments to a fresh result variable, returning its name.
func wrapResult(f *ast.FuncDecl) (string, error) {
	const resultVar = "__result"
	const doneVar = "__done"
	pos := f.Body.P
	decls := []ast.Stmt{
		&ast.DeclStmt{P: pos, Type: f.Ret, Name: resultVar},
	}
	if containsReturn(f.Body) {
		decls = append(decls, &ast.DeclStmt{
			P: pos, Type: &ast.TypeExpr{P: pos, Name: "bool"}, Name: doneVar,
			Init: &ast.BoolLit{P: pos, Val: false},
		})
		if err := lowerReturns(f.Body, resultVar, doneVar); err != nil {
			return "", err
		}
	}
	f.Body.Stmts = append(decls, f.Body.Stmts...)
	return resultVar, nil
}
