package desugar

import (
	"fmt"
	"math/big"

	"psketch/internal/ast"
	"psketch/internal/types"
)

// countTarget computes |C|, the number of syntactically distinct
// candidate programs the sketch denotes, using the paper's counting
// rules (cf. the 1,975,680 figure of §2):
//
//   - a primitive hole of w bits contributes 2^w;
//   - a generator contributes the sum over its choices of the product
//     of holes nested in each choice;
//   - a reorder block of k statements contributes k! times the product
//     of its statements;
//   - an ordinary sketched function is counted once no matter how many
//     call sites it has (one shared implementation);
//   - a generator function is counted once per call site (fresh holes).
func (d *desugarer) countTarget(tf *ast.FuncDecl) (*big.Int, error) {
	c := &counter{d: d, countedFns: map[string]bool{}, seenHoles: map[*ast.Hole]bool{}, seenRegens: map[*ast.Regen]bool{}}
	total := c.countBlock(tf.Body)
	c.countedFns[tf.Name] = true
	// Multiply in every ordinary function reached from the target,
	// each exactly once (the call walk marks them).
	for changed := true; changed; {
		changed = false
		for name := range c.pendingFns {
			if c.countedFns[name] {
				continue
			}
			c.countedFns[name] = true
			fn := d.work.Func(name)
			total.Mul(total, c.countBlock(fn.Body))
			changed = true
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	return total, nil
}

type counter struct {
	d          *desugarer
	countedFns map[string]bool
	pendingFns map[string]bool
	// seen deduplicates shared synthesis nodes (the repeat-count hole
	// appears in every replica's guard but is one choice).
	seenHoles  map[*ast.Hole]bool
	seenRegens map[*ast.Regen]bool
	err        error
}

func (c *counter) markCall(name string) {
	fn := c.d.work.Func(name)
	if fn == nil {
		return // builtin
	}
	if c.pendingFns == nil {
		c.pendingFns = map[string]bool{}
	}
	c.pendingFns[name] = true
}

func (c *counter) countBlock(b *ast.Block) *big.Int {
	total := big.NewInt(1)
	if b == nil {
		return total
	}
	for _, s := range b.Stmts {
		total.Mul(total, c.countStmt(s))
	}
	return total
}

func (c *counter) countStmt(s ast.Stmt) *big.Int {
	one := big.NewInt(1)
	switch x := s.(type) {
	case nil:
		return one
	case *ast.Block:
		return c.countBlock(x)
	case *ast.DeclStmt:
		return c.countExpr(x.Init)
	case *ast.AssignStmt:
		return one.Mul(c.countExpr(x.LHS), c.countExpr(x.RHS))
	case *ast.IfStmt:
		t := c.countExpr(x.Cond)
		t.Mul(t, c.countBlock(x.Then))
		if x.Else != nil {
			t.Mul(t, c.countStmt(x.Else))
		}
		return t
	case *ast.WhileStmt:
		return one.Mul(c.countExpr(x.Cond), c.countBlock(x.Body))
	case *ast.ReturnStmt:
		return c.countExpr(x.Val)
	case *ast.AssertStmt:
		return c.countExpr(x.Cond)
	case *ast.AtomicStmt:
		t := c.countExpr(x.Cond)
		return t.Mul(t, c.countBlock(x.Body))
	case *ast.ForkStmt:
		return c.countBlock(x.Body)
	case *ast.ReorderStmt:
		t := factorial(len(x.Body.Stmts))
		return t.Mul(t, c.countBlock(x.Body))
	case *ast.RepeatStmt:
		c.err = fmt.Errorf("count: repeat should have been expanded")
		return one
	case *ast.LockStmt:
		return c.countExpr(x.Target)
	case *ast.ExprStmt:
		return c.countExpr(x.X)
	}
	c.err = fmt.Errorf("count: unhandled statement %T", s)
	return one
}

func (c *counter) countExpr(e ast.Expr) *big.Int {
	one := big.NewInt(1)
	switch x := e.(type) {
	case nil:
		return one
	case *ast.Hole:
		if c.seenHoles[x] {
			return one
		}
		c.seenHoles[x] = true
		if card, ok := c.d.holeCard[x]; ok {
			return big.NewInt(card)
		}
		if t := c.d.info.TypeOf(x); t.Base == types.Bool && !t.IsArray() {
			return big.NewInt(2)
		}
		bits := x.Width
		if bits == 0 {
			bits = c.d.opts.HoleWidth
		}
		if t := c.d.info.TypeOf(x); t.IsArray() && t.Base == types.Bool {
			bits = t.Len
		}
		return new(big.Int).Lsh(one, uint(bits))
	case *ast.Regen:
		if c.seenRegens[x] {
			return one
		}
		c.seenRegens[x] = true
		total := big.NewInt(0)
		for _, ch := range x.Choices {
			total.Add(total, c.countExpr(ch))
		}
		return total
	case *ast.Unary:
		return c.countExpr(x.X)
	case *ast.Binary:
		return one.Mul(c.countExpr(x.X), c.countExpr(x.Y))
	case *ast.FieldExpr:
		return c.countExpr(x.X)
	case *ast.IndexExpr:
		return one.Mul(c.countExpr(x.X), c.countExpr(x.Index))
	case *ast.SliceExpr:
		return one.Mul(c.countExpr(x.X), c.countExpr(x.Start))
	case *ast.CastExpr:
		return c.countExpr(x.X)
	case *ast.CallExpr:
		t := big.NewInt(1)
		for _, a := range x.Args {
			t.Mul(t, c.countExpr(a))
		}
		if fn := c.d.work.Func(x.Fun); fn != nil {
			if fn.Generator {
				// Fresh holes per call site: count the body in a fresh
				// dedup scope so repeated calls multiply.
				savedH, savedR := c.seenHoles, c.seenRegens
				c.seenHoles = map[*ast.Hole]bool{}
				c.seenRegens = map[*ast.Regen]bool{}
				t.Mul(t, c.countBlock(fn.Body))
				c.seenHoles, c.seenRegens = savedH, savedR
			} else {
				c.markCall(x.Fun) // shared: counted once, later
			}
		}
		return t
	case *ast.NewExpr:
		t := big.NewInt(1)
		for _, a := range x.Args {
			t.Mul(t, c.countExpr(a))
		}
		return t
	}
	return one
}

func factorial(k int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= k; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}
