package desugar

import (
	"math/big"
	"strings"
	"testing"

	"psketch/internal/ast"
	"psketch/internal/parser"
)

func desugarSrc(t *testing.T, src, target string, opts Options) *Sketch {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := Desugar(prog, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// §2's exact figure: the Figure 1 Enqueue sketch denotes 1,975,680
// candidates (28 · 28 · 420 · 3!).
func TestFigure1Count(t *testing.T) {
	src := `
struct QueueEntry { QueueEntry next = null; int stored; int taken = 0; }
QueueEntry prevHead;
QueueEntry tail;

#define aLocation {| tail(.next)? | (tmp|newEntry).next |}
#define aValue {| (tail|tmp|newEntry)(.next)? | null |}
#define anExpr(x,y) {| x==y | x!=y | false |}

void Enqueue(int v) {
	QueueEntry tmp = null;
	QueueEntry newEntry = new QueueEntry(v);
	reorder {
		aLocation = aValue;
		tmp = AtomicSwap(aLocation, aValue);
		if (anExpr(tmp, aValue)) { aLocation = aValue; }
	}
}

harness void Main() {
	prevHead = new QueueEntry(0);
	tail = prevHead;
	fork (i; 2) { Enqueue(i); }
}
`
	sk := desugarSrc(t, src, "Main", Options{})
	if sk.Count.Cmp(big.NewInt(1975680)) != 0 {
		t.Fatalf("|C| = %s, want 1975680", sk.Count)
	}
}

// Counting rules: k! per reorder, product of generators, 2^w per hole,
// shared functions once, generator functions per call site.
func TestCountingRules(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{`harness void Main() { int x = ??(3); x = x; fork (i; 1) { } }`, 8},
		{`harness void Main() { int x = {| 1 | 2 | 3 |}; x = x; fork (i; 1) { } }`, 3},
		{`int g;
		  harness void Main() { fork (i; 1) { } reorder { g = 1; g = 2; g = 3; } }`, 6},
		{`int g;
		  void f() { g = g + ??(2); }
		  harness void Main() { f(); f(); fork (i; 1) { } }`, 4}, // shared: counted once
		{`int g;
		  generator int p() { return {| 1 | 2 |}; }
		  harness void Main() { g = p(); g = p(); fork (i; 1) { } }`, 4}, // fresh per site
	}
	for _, c := range cases {
		sk := desugarSrc(t, c.src, "Main", Options{})
		if sk.Count.Int64() != c.want {
			t.Errorf("count of %q = %s, want %d", c.src, sk.Count, c.want)
		}
	}
}

// Ordinary functions inlined at several call sites share their holes;
// generator functions get fresh ones.
func TestHoleSharing(t *testing.T) {
	shared := desugarSrc(t, `
int g;
void f() { g = g + ??(2); }
harness void Main() { f(); f(); f(); fork (i; 1) { } }
`, "Main", Options{})
	ids := map[int]int{}
	ast.WalkExprs(shared.Harness.Body, func(e ast.Expr) {
		if h, ok := e.(*ast.Hole); ok {
			ids[h.ID]++
		}
	})
	if len(ids) != 1 {
		t.Fatalf("shared function: distinct hole IDs %v, want 1", ids)
	}

	fresh := desugarSrc(t, `
int g;
generator int p() { return ??(2); }
harness void Main() { g = p(); g = p(); g = p(); fork (i; 1) { } }
`, "Main", Options{})
	ids = map[int]int{}
	ast.WalkExprs(fresh.Harness.Body, func(e ast.Expr) {
		if h, ok := e.(*ast.Hole); ok {
			ids[h.ID]++
		}
	})
	if len(ids) != 3 {
		t.Fatalf("generator function: distinct hole IDs %v, want 3", ids)
	}
}

// Both reorder encodings must admit exactly the k! orders: check via
// the structural constraints that the number of satisfying reorder-hole
// assignments matches (quadratic: k! valid permutations).
func TestReorderEncodings(t *testing.T) {
	src := `
int g;
harness void Main() {
	fork (i; 1) { }
	reorder { g = 1; g = 2; g = 3; }
}
`
	for _, enc := range []Encoding{EncodeInsertion, EncodeQuadratic} {
		sk := desugarSrc(t, src, "Main", Options{Encoding: enc})
		if sk.Count.Int64() != 6 {
			t.Errorf("encoding %v: count %s", enc, sk.Count)
		}
		if len(sk.Holes) == 0 {
			t.Errorf("encoding %v: no holes", enc)
		}
	}
}

// repeat(n) replicates with fresh holes; repeat(??) is bounded with a
// count hole and constraint.
func TestRepeatExpansion(t *testing.T) {
	sk := desugarSrc(t, `
int g;
harness void Main() {
	fork (i; 1) { }
	repeat (3) g = g + ??(1);
}
`, "Main", Options{})
	ids := map[int]bool{}
	ast.WalkExprs(sk.Harness.Body, func(e ast.Expr) {
		if h, ok := e.(*ast.Hole); ok {
			ids[h.ID] = true
		}
	})
	if len(ids) != 3 {
		t.Fatalf("repeat(3): %d distinct holes, want 3", len(ids))
	}

	sk = desugarSrc(t, `
int g;
harness void Main() {
	fork (i; 1) { }
	repeat (??) g = g + 1;
}
`, "Main", Options{MaxRepeat: 5})
	// Count = (MaxRepeat+1) choices for the count hole.
	if sk.Count.Int64() != 6 {
		t.Fatalf("repeat(??): count %s, want 6", sk.Count)
	}
}

func TestReturnLowering(t *testing.T) {
	sk := desugarSrc(t, `
int g;
int f(int x) {
	if (x == 0) { return 7; }
	g = g + 1;
	return x;
}
harness void Main() {
	int a = f(0);
	assert a == 7;
	fork (i; 1) { }
}
`, "Main", Options{})
	// After inlining there must be no return statements left.
	var returns int
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		if _, ok := s.(*ast.ReturnStmt); ok {
			returns++
		}
		switch x := s.(type) {
		case *ast.Block:
			for _, st := range x.Stmts {
				walk(st)
			}
		case *ast.IfStmt:
			walk(x.Then)
			walk(x.Else)
		case *ast.WhileStmt:
			walk(x.Body)
		case *ast.ForkStmt:
			walk(x.Body)
		}
	}
	walk(sk.Harness.Body)
	if returns != 0 {
		t.Fatalf("%d returns survived inlining", returns)
	}
}

func TestRecursionRejected(t *testing.T) {
	prog, err := parser.Parse(`
int f(int x) { int y = f(x); return y; }
harness void Main() { int a = f(1); a = a; fork (i; 1) { } }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Desugar(prog, "Main", Options{}); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("got %v", err)
	}
}

func TestSpecMustBeHoleFree(t *testing.T) {
	prog, err := parser.Parse(`
int spec(int x) { return x + ??; }
int f(int x) implements spec { return x; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Desugar(prog, "f", Options{}); err == nil {
		t.Fatal("expected error for holes in spec")
	}
}

func TestConstraintsAreWrapSafe(t *testing.T) {
	// A 6-statement reorder produces insertion holes up to 5 bits; at
	// IntWidth 5 the old "h <= 31" constraint used to wrap to "h <= -1".
	src := `
int g;
harness void Main() {
	fork (i; 1) { }
	reorder { g = 1; g = 2; g = 3; g = 4; g = 5; g = 6; }
}
`
	sk := desugarSrc(t, src, "Main", Options{IntWidth: 5})
	// All-zero must satisfy every structural constraint (position 0 is
	// always legal for the insertion encoding).
	if sk.Count.Int64() != 720 {
		t.Fatalf("count %s", sk.Count)
	}
}
