package desugar

import (
	"testing"

	"psketch/internal/ast"
	"psketch/internal/parser"
)

// Simple generators inline as expressions, so they may appear in
// condition position — the paper's barrier idiom `if (predicate(...))`.
func TestGeneratorInCondition(t *testing.T) {
	sk := desugarSrc(t, `
int g;
generator bool pred(int a) {
	return {| a == 0 | a == 1 |};
}
harness void Main() {
	fork (i; 1) { }
	if (pred(g)) { g = 1; }
}
`, "Main", Options{})
	// The condition must contain the inlined generator, with the
	// argument substituted.
	var found bool
	ast.WalkExprs(sk.Harness.Body, func(e ast.Expr) {
		if r, ok := e.(*ast.Regen); ok {
			found = true
			for _, ch := range r.Choices {
				b, ok := ch.(*ast.Binary)
				if !ok {
					t.Fatalf("choice %T", ch)
				}
				if id, ok := b.X.(*ast.Ident); !ok || id.Name != "g" {
					t.Fatalf("argument not substituted: %v", b.X)
				}
			}
		}
	})
	if !found {
		t.Fatal("generator not inlined into condition")
	}
}

// Generator calls inside a reorder block must share their holes across
// the encoding's statement copies (the whole point of pre-encoding
// inlining).
func TestGeneratorInReorderSharesHoles(t *testing.T) {
	// The quadratic encoding duplicates every statement k times; all
	// copies must reference ONE generator choice (same ID). (The
	// insertion encoding inserts large statements first precisely so
	// they are NOT duplicated, §7.2.)
	sk := desugarSrc(t, `
int g;
generator bool pred(int a) {
	return {| a == 0 | a == 1 |};
}
harness void Main() {
	fork (i; 1) { }
	reorder {
		if (pred(g)) { g = 1; }
		g = 2;
	}
}
`, "Main", Options{Encoding: EncodeQuadratic})
	ids := map[int]int{}
	ast.WalkExprs(sk.Harness.Body, func(e ast.Expr) {
		if r, ok := e.(*ast.Regen); ok {
			ids[r.ID]++
		}
	})
	if len(ids) != 1 {
		t.Fatalf("distinct generator IDs across copies: %v", ids)
	}
	for id, n := range ids {
		if n < 2 {
			t.Fatalf("generator %d not replicated by the encoding (%d use)", id, n)
		}
	}
}

// Nested simple generators inline recursively.
func TestNestedGenerators(t *testing.T) {
	sk := desugarSrc(t, `
int g;
generator int small() { return {| 1 | 2 |}; }
generator int big() { return small() + {| 10 | 20 |}; }
harness void Main() {
	fork (i; 1) { }
	g = big();
}
`, "Main", Options{})
	regens := 0
	ast.WalkExprs(sk.Harness.Body, func(e ast.Expr) {
		if _, ok := e.(*ast.CallExpr); ok {
			t.Fatal("call survived inlining")
		}
		if _, ok := e.(*ast.Regen); ok {
			regens++
		}
	})
	if regens != 2 {
		t.Fatalf("regens %d, want 2", regens)
	}
	// |C| = 2 * 2.
	if sk.Count.Int64() != 4 {
		t.Fatalf("count %s", sk.Count)
	}
}

// A complex (multi-statement) generator in condition position is a
// clear error, not silent misbehavior.
func TestComplexGeneratorInConditionRejected(t *testing.T) {
	prog, err := parser.Parse(`
int g;
generator bool pred(int a) {
	int t = a;
	return {| t == 0 | t == 1 |};
}
harness void Main() {
	fork (i; 1) { }
	if (pred(g)) { g = 1; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Desugar(prog, "Main", Options{}); err == nil {
		t.Fatal("expected statement-level restriction error")
	}
}

// Statement-level complex generators still work via the ordinary
// inliner, with fresh holes per call site.
func TestComplexGeneratorStatementLevel(t *testing.T) {
	sk := desugarSrc(t, `
int g;
generator int pick(int a) {
	int t = {| a | a + 1 |};
	return t;
}
harness void Main() {
	fork (i; 1) { }
	g = pick(g);
	g = pick(g);
}
`, "Main", Options{})
	ids := map[int]bool{}
	ast.WalkExprs(sk.Harness.Body, func(e ast.Expr) {
		if r, ok := e.(*ast.Regen); ok {
			ids[r.ID] = true
		}
	})
	if len(ids) != 2 {
		t.Fatalf("fresh-per-site failed: %v", ids)
	}
}
