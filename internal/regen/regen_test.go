package regen

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func enum(t *testing.T, text string) []string {
	t.Helper()
	ss, err := Enumerate(text)
	if err != nil {
		t.Fatalf("Enumerate(%q): %v", text, err)
	}
	return ss
}

func TestSimpleAlternation(t *testing.T) {
	got := enum(t, "a | b | c")
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestOptionalSuffix(t *testing.T) {
	got := enum(t, "tail(.next)?")
	want := []string{"tail", "tail.next"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

// The paper's aValue generator (§2): 7 strings.
func TestPaperAValue(t *testing.T) {
	got := enum(t, "(tail|tmp|newEntry)(.next)? | null")
	want := []string{
		"(tail)", "(tail).next", "(tmp)", "(tmp).next",
		"(newEntry)", "(newEntry).next", "null",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

// The paper's aLocation generator (§2): 4 strings.
func TestPaperALocation(t *testing.T) {
	got := enum(t, "tail(.next)? | (tmp|newEntry).next")
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
}

// Double optional: prevHead(.next)?(.next)? has 3 strings.
func TestDoubleOptional(t *testing.T) {
	got := enum(t, "prevHead(.next)?(.next)?")
	want := []string{"prevHead", "prevHead.next", "prevHead.next.next"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

// Negation over a multi-arm group must re-parenthesize so precedence
// survives: "!(a == b)", never "! a == b".
func TestNegatedGroup(t *testing.T) {
	got := enum(t, "(!)? (a == b | c)")
	want := []string{"(a == b)", "(c)", "!(a == b)", "!(c)"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

// Arithmetic inside a group keeps its own parentheses: (p + t) % 2.
func TestGroupedArithmetic(t *testing.T) {
	got := enum(t, "(p + t) % 2 == 0")
	if len(got) != 1 || strings.Join(strings.Fields(strings.ReplaceAll(got[0], ")%", ") %")), " ") != "(p + t) % 2 == 0" {
		t.Fatalf("got %v", got)
	}
}

// Holes with explicit widths pass through atomically.
func TestHoleWidth(t *testing.T) {
	got := enum(t, "b == ??(1) | c")
	want := []string{"b == ??(1)", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

// Nested {| ... |} acts as a grouped alternation (macro splicing).
func TestNestedGenerator(t *testing.T) {
	got := enum(t, "x == {| a | b |} | false")
	want := []string{"x == (a)", "x == (b)", "false"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestDeduplication(t *testing.T) {
	got := enum(t, "a | a | a")
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestErrors(t *testing.T) {
	// Note: empty alternation arms ("a || b") are tolerated and dropped.
	for _, text := range []string{"", "(a", "? a"} {
		if _, err := Enumerate(text); err == nil {
			t.Errorf("Enumerate(%q): expected error", text)
		}
	}
}

// Property: every alternation of identifiers enumerates exactly its
// arms, in order, deduplicated.
func TestAlternationProperty(t *testing.T) {
	names := []string{"aa", "bb", "cc", "dd", "ee", "ff"}
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		if len(picks) > 6 {
			picks = picks[:6]
		}
		var arms []string
		for _, p := range picks {
			arms = append(arms, names[int(p)%len(names)])
		}
		got, err := Enumerate(strings.Join(arms, " | "))
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		var want []string
		for _, a := range arms {
			if !seen[a] {
				seen[a] = true
				want = append(want, a)
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the language size of a concatenation of optionals is the
// product of arm sizes (2^k for k optionals) before deduplication —
// with distinct fragments, no dedup occurs.
func TestOptionalCountProperty(t *testing.T) {
	frags := []string{".a", ".b", ".c", ".d"}
	for k := 1; k <= 4; k++ {
		text := "x"
		for i := 0; i < k; i++ {
			text += "(" + frags[i] + ")?"
		}
		got := enum(t, text)
		if len(got) != 1<<k {
			t.Fatalf("k=%d: got %d strings", k, len(got))
		}
	}
}
