// Package regen implements the regular-expression expression generators
// of §4.1/§7.1: {| e |} where e is a regular expression over program
// text with alternation e1|e2, optional e?, and grouping. Kleene
// closure is deliberately excluded, exactly as in the paper, so every
// generator denotes a finite language.
//
// Within a generator body the characters ( ) | ? are always regex
// operators, and a nested {| ... |} acts as a grouped alternation
// (this is what the paper's macro substitution produces when a
// generator macro is passed as a macro argument).
package regen

import (
	"fmt"
	"strings"
)

// node is a parsed regex node.
type node interface {
	enumerate(out *[]string, cap int) error
}

type lit struct{ text string }
type seq struct{ parts []node }
type alt struct{ arms []node }
type opt struct{ inner node }

// group is an explicit ( ... ) or nested {| ... |}. Its expansions are
// re-parenthesized in the output text (unless they are member-access
// fragments like ".next"), so that "(!)? (a == b | c)" yields "!(a == b)"
// — with correct precedence — rather than "! a == b".
type group struct{ inner node }

// MaxLanguage bounds the number of strings a single generator may
// denote; beyond this the sketch is considered malformed.
const MaxLanguage = 65536

// Enumerate parses the generator body and returns its language in
// deterministic order (alternatives in source order; for e? the empty
// expansion first).
func Enumerate(text string) ([]string, error) {
	p := &rparser{src: text}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("generator {|%s|}: unexpected %q at offset %d", text, p.src[p.pos], p.pos)
	}
	var out []string
	if err := n.enumerate(&out, MaxLanguage); err != nil {
		return nil, fmt.Errorf("generator {|%s|}: %w", text, err)
	}
	// Trim and de-duplicate while preserving order.
	seen := make(map[string]bool, len(out))
	res := out[:0]
	for _, s := range out {
		s = strings.Join(strings.Fields(s), " ")
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		res = append(res, s)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("generator {|%s|}: empty language", text)
	}
	return res, nil
}

type rparser struct {
	src string
	pos int
}

func (p *rparser) skipWS() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

// parseAlt := parseSeq ('|' parseSeq)*
func (p *rparser) parseAlt() (node, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	arms := []node{first}
	for {
		p.skipWS()
		if p.pos < len(p.src) && p.src[p.pos] == '|' && !p.at("|}") {
			p.pos++
			n, err := p.parseSeq()
			if err != nil {
				return nil, err
			}
			arms = append(arms, n)
			continue
		}
		break
	}
	if len(arms) == 1 {
		return arms[0], nil
	}
	return &alt{arms: arms}, nil
}

func (p *rparser) at(s string) bool {
	return strings.HasPrefix(p.src[p.pos:], s)
}

// parseSeq := (atom '?'*)* — stops at '|', ')' or '|}'.
func (p *rparser) parseSeq() (node, error) {
	var parts []node
	for {
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] == ')' || (p.src[p.pos] == '|' && !p.at("|}")) {
			break
		}
		if p.at("|}") {
			break
		}
		var n node
		var err error
		switch {
		case p.src[p.pos] == '(':
			p.pos++
			n, err = p.parseAlt()
			if err != nil {
				return nil, err
			}
			p.skipWS()
			if p.pos >= len(p.src) || p.src[p.pos] != ')' {
				return nil, fmt.Errorf("generator: missing )")
			}
			p.pos++
			n = &group{inner: n}
		case p.at("{|"):
			p.pos += 2
			n, err = p.parseAlt()
			if err != nil {
				return nil, err
			}
			p.skipWS()
			if !p.at("|}") {
				return nil, fmt.Errorf("generator: missing |}")
			}
			p.pos += 2
			n = &group{inner: n}
		case p.src[p.pos] == '?':
			return nil, fmt.Errorf("generator: ? with nothing to apply to")
		default:
			n = &lit{text: p.scanLiteral()}
		}
		for {
			p.skipWS()
			if p.pos < len(p.src) && p.src[p.pos] == '?' && !p.at("??") {
				p.pos++
				n = &opt{inner: n}
				continue
			}
			break
		}
		parts = append(parts, n)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &seq{parts: parts}, nil
}

// scanLiteral consumes a maximal run of non-operator characters. The
// hole token ?? passes through as literal text.
func (p *rparser) scanLiteral() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || c == '|' {
			break
		}
		if c == '{' && p.at("{|") {
			break
		}
		if c == '?' {
			if p.at("??") {
				p.pos += 2
				// A hole may carry an explicit width: ??(w). The
				// parenthesis belongs to the hole, not to grouping.
				if p.pos < len(p.src) && p.src[p.pos] == '(' {
					j := p.pos + 1
					for j < len(p.src) && p.src[j] >= '0' && p.src[j] <= '9' {
						j++
					}
					if j > p.pos+1 && j < len(p.src) && p.src[j] == ')' {
						p.pos = j + 1
					}
				}
				continue
			}
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (l *lit) enumerate(out *[]string, cap int) error {
	*out = append(*out, l.text)
	return nil
}

func (g *group) enumerate(out *[]string, cap int) error {
	var inner []string
	if err := g.inner.enumerate(&inner, cap); err != nil {
		return err
	}
	for _, s := range inner {
		t := strings.TrimSpace(s)
		if t == "" || strings.HasPrefix(t, ".") || !containsWord(t) {
			// Member-access fragments (".next") and operator fragments
			// ("!") are glue, not sub-expressions.
			*out = append(*out, s)
			continue
		}
		*out = append(*out, "("+t+")")
	}
	return nil
}

// containsWord reports whether the fragment holds identifier or number
// characters (i.e., could be a sub-expression rather than an operator).
func containsWord(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			return true
		}
	}
	return false
}

func (o *opt) enumerate(out *[]string, cap int) error {
	*out = append(*out, "")
	return o.inner.enumerate(out, cap)
}

func (a *alt) enumerate(out *[]string, cap int) error {
	for _, arm := range a.arms {
		if err := arm.enumerate(out, cap); err != nil {
			return err
		}
		if len(*out) > cap {
			return fmt.Errorf("language larger than %d strings", cap)
		}
	}
	return nil
}

func (s *seq) enumerate(out *[]string, cap int) error {
	acc := []string{""}
	for _, part := range s.parts {
		var opts []string
		if err := part.enumerate(&opts, cap); err != nil {
			return err
		}
		next := make([]string, 0, len(acc)*len(opts))
		for _, a := range acc {
			for _, o := range opts {
				next = append(next, a+o)
				if len(next) > cap {
					return fmt.Errorf("language larger than %d strings", cap)
				}
			}
		}
		acc = next
	}
	*out = append(*out, acc...)
	return nil
}
