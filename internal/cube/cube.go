// Package cube implements cube-and-conquer distributed CEGIS: the
// hole/generator space is split on a few high-fanout decision bits
// into 2^k disjoint cubes, an independent CEGIS engine races each cube
// (in-process goroutines, or OS processes over the localhost protocol
// in remote.go), the first verified YES cancels everyone else, and
// per-cube UNSATs merge into a whole-space NO backed by one DRAT
// certificate.
//
// # Soundness
//
// Three facts carry the whole scheme (argued in ARCHITECTURE.md,
// "Distributed CEGIS"):
//
//  1. Cube membership is enforced by Solve-time ASSUMPTIONS
//     (core.Options.Cube), never clauses, so every clause any cube's
//     solver learns is implied by the shared problem clauses alone and
//     may be broadcast to every other cube (sat.Bus).
//  2. Projected counterexamples are facts about the ENTIRE candidate
//     space (internal/project), so one cube's traces prune all others
//     (project.Bus) and enter the merged proof as legitimate premises.
//  3. The setup encoding is deterministic: all cubes allocate an
//     identical SAT-variable prefix (core.SetupVars, cross-checked at
//     worker start), which keys both the bus filter and the per-cube
//     DRAT namespaces of the merged certificate.
//
// The merged certificate closes with a top-level resolution over the
// cube literals: each exhausted cube contributes its refutation clause
// ¬cube_i (RUP — the cube's UNSAT-under-assumptions verdict is exactly
// "unit propagation from the cube literals conflicts"), and
// drat.CubeTree's prefix clauses resolve them down to the empty
// clause, replayable by the ordinary backward checker.
package cube

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/drat"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/obs"
	"psketch/internal/project"
	"psketch/internal/sat"
)

// Options configure a cube-and-conquer run.
type Options struct {
	// Cubes is the requested number of cubes, rounded DOWN to a power
	// of two (the splitter picks log2 bits). Values below 2 — or a
	// sketch without enough hole bits — fall back to one plain
	// whole-space run with the template options.
	Cubes int
	// Workers bounds how many cube engines run concurrently (0 = one
	// per cube). Fewer workers than cubes means finished workers STEAL
	// the next unstarted cube from the queue.
	Workers int
	// Proof merges every cube's DRAT log into one whole-space
	// certificate for NO verdicts (and replays it before the verdict is
	// returned).
	Proof bool
	// Core is the per-cube template. Parallelism is PER CUBE (each cube
	// runs its own portfolio/MC pool of that size); Cancel/Trace/
	// TraceParent/Metrics/Verbose apply to the coordinator, which hands
	// each cube a private registry and folds it back. Cube, CubeID,
	// buses, Proof and ProofSink in the template are ignored.
	Core core.Options
}

// BitRef names one hole bit chosen as a cube variable.
type BitRef struct {
	Hole int `json:"hole"`
	Bit  int `json:"bit"`
}

// PerCube reports one cube's outcome.
type PerCube struct {
	ID        int
	Cube      []core.CubeLit
	Resolved  bool
	Exhausted bool
	Canceled  bool
	// Stolen marks a cube run by a worker that had already finished
	// another cube (queue stealing), Remote one that ran in a joined
	// process.
	Stolen bool
	Remote bool
	Stats  core.Stats
	// RemoteTraces counts projections this cube imported from others;
	// PrunedByRemote counts iterations where an imported projection
	// refuted the cube's held candidate before it was ever verified.
	RemoteTraces   int64
	PrunedByRemote int64
}

// Result is the merged outcome of a cube-and-conquer run.
type Result struct {
	Resolved  bool
	Candidate desugar.Candidate
	// Winner is the cube that resolved (-1 for a NO verdict).
	Winner int
	// Stats aggregates all cubes: phase times and counts are summed
	// (total work, not wall-clock — Total alone is the coordinator's
	// wall time), sizes are maxima.
	Stats   core.Stats
	Bits    []BitRef
	PerCube []PerCube
	// Stolen counts cubes run by workers that had finished another.
	Stolen int64
	// LastTrace is a counterexample from some exhausted cube (NO
	// verdicts only).
	LastTrace *mc.Trace
	// Certificate, under Options.Proof, is the verified merged DRAT
	// certificate of a NO verdict.
	Certificate *drat.Certificate
}

// Split picks up to log2(want) cube bits, preferring high-fanout holes
// (a generator choosing among many alternatives splits the space more
// evenly than a narrow constant) and round-robining bit positions
// across the top holes LSB-first, so cubes differ in coarse structural
// decisions rather than one hole's fine bits. Returns fewer bits (or
// none) when the sketch's holes cannot support the requested fanout.
func Split(holes []desugar.HoleMeta, want int) []BitRef {
	k := 0
	for 1<<uint(k+1) <= want {
		k++
	}
	if k == 0 {
		return nil
	}
	type hf struct {
		id     int
		bits   int // bit positions usable as cube variables
		fanout int
	}
	var hs []hf
	for _, m := range holes {
		f := hf{id: m.ID, bits: m.Bits}
		switch {
		case m.Kind == desugar.HoleChoice:
			f.fanout = m.Choices
		case m.Bits >= 20:
			f.fanout = 1 << 20
		default:
			f.fanout = 1 << uint(m.Bits)
		}
		if f.fanout >= 2 && f.bits >= 1 {
			hs = append(hs, f)
		}
	}
	// Insertion-sort by fanout desc, ID asc: deterministic and tiny.
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0 && (hs[j].fanout > hs[j-1].fanout ||
			(hs[j].fanout == hs[j-1].fanout && hs[j].id < hs[j-1].id)); j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
	var out []BitRef
	for level := 0; len(out) < k; level++ {
		advanced := false
		for _, h := range hs {
			if len(out) == k {
				break
			}
			if level < h.bits {
				out = append(out, BitRef{Hole: h.id, Bit: level})
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}
	return out
}

// Assign expands cube index i over the chosen bits: bit j of i gives
// the polarity of bits[j].
func Assign(bits []BitRef, i int) []core.CubeLit {
	out := make([]core.CubeLit, len(bits))
	for j, b := range bits {
		out[j] = core.CubeLit{Hole: b.Hole, Bit: b.Bit, Val: i>>uint(j)&1 == 1}
	}
	return out
}

// run is the shared coordinator state of one cube-and-conquer
// execution, driven by in-process workers (Synthesize) and/or remote
// connections (Serve).
type run struct {
	sk       *desugar.Sketch
	opts     Options
	bits     []BitRef
	n        int
	nCommon  int
	cubeVars []int // positive DIMACS indices of the cube bits
	// prog is the sketch lowered exactly once (by the probe engine in
	// newRun) and shared read-only by every in-process cube worker.
	// ir.Lower renumbers alloc sites on AST nodes the sketch shares, so
	// letting each worker lower independently would race with another
	// worker's interpreter reading those nodes mid-renumber.
	prog *ir.Program

	rec  *drat.Recorder
	bus  *sat.Bus
	tbus *project.Bus
	tr   *obs.Tracer
	span obs.Span
	met  *obs.Metrics

	queue chan int
	// doneCh closes when the race is decided (first verified YES, first
	// error, or parent cancellation); remote connection handlers select
	// on it to push cancel messages to their joiners.
	doneCh chan struct{}

	mu             sync.Mutex
	winner         int
	winCand        desugar.Candidate
	firstErr       error
	lastTrace      *mc.Trace
	per            []PerCube
	cancels        []*atomic.Bool
	done           bool
	exhausted      int
	stolen         int64
	parentCanceled bool
	outcomes       chan struct{} // one push per finished cube
}

func newRun(sk *desugar.Sketch, opts Options) (*run, error) {
	bits := Split(sk.Holes, opts.Cubes)
	n := 1 << uint(len(bits))
	r := &run{
		sk:       sk,
		opts:     opts,
		bits:     bits,
		n:        n,
		winner:   -1,
		tr:       opts.Core.Trace,
		met:      opts.Core.Metrics,
		per:      make([]PerCube, n),
		cancels:  make([]*atomic.Bool, n),
		queue:    make(chan int, n),
		doneCh:   make(chan struct{}),
		outcomes: make(chan struct{}, n),
		tbus:     project.NewBus(),
	}
	if r.met == nil {
		r.met = obs.NewMetrics()
	}
	for i := 0; i < n; i++ {
		r.per[i] = PerCube{ID: i, Cube: Assign(bits, i)}
		r.queue <- i
	}
	close(r.queue)

	// Probe the setup encoding once: its variable count is the
	// cross-cube shared prefix (bus filter + DRAT namespace boundary)
	// and its hole-variable map yields the cube literals in DIMACS form
	// for the merged certificate's top-level resolution.
	probeOpts := core.Options{
		MaxIterations: opts.Core.MaxIterations,
		MCMaxStates:   opts.Core.MCMaxStates,
		Parallelism:   1,
	}
	probe, err := core.New(sk, probeOpts)
	if err != nil {
		return nil, err
	}
	r.nCommon = probe.SetupVars()
	r.prog = probe.Prog
	r.cubeVars = make([]int, len(bits))
	for j, b := range bits {
		r.cubeVars[j] = probe.HoleDimacs(b.Hole, b.Bit)
	}
	if opts.Proof {
		r.rec = drat.NewRecorder()
	}
	if !opts.Core.NoShareClauses {
		r.bus = sat.NewBus(r.nCommon)
	}
	r.span = r.tr.Start("cube.synthesize", opts.Core.TraceParent)
	return r, nil
}

// cancelAll stops every running cube (idempotent).
func (r *run) cancelAll() {
	r.mu.Lock()
	if !r.done {
		r.done = true
		close(r.doneCh)
	}
	for _, c := range r.cancels {
		if c != nil {
			c.Store(true)
		}
	}
	r.mu.Unlock()
}

// claim registers a fresh cancel token for cube id, unless the run is
// already decided.
func (r *run) claim(id int) (*atomic.Bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return nil, false
	}
	tok := &atomic.Bool{}
	r.cancels[id] = tok
	return tok, true
}

// decided reports whether a verdict or error already ended the race.
func (r *run) decided() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// cubeOpts builds the core options one cube engine runs with. met is
// the cube's private registry; sink is non-nil when proof logging is
// on (in-process cubes log through a Namespace of the master recorder;
// remote cubes log locally and ship the log).
func (r *run) cubeOpts(id int, tok *atomic.Bool, met *obs.Metrics, sink drat.Sink, parent obs.SpanID) core.Options {
	copts := r.opts.Core
	copts.Prog = r.prog
	copts.Cancel = tok
	copts.Cube = Assign(r.bits, id)
	copts.CubeID = id
	copts.Metrics = met
	copts.TraceBus = r.tbus
	copts.ClauseBus = r.bus
	copts.Proof = false
	copts.ProofSink = sink
	copts.Trace = r.tr
	copts.TraceParent = parent
	return copts
}

// finishResolved records a verified YES for cube id and cancels the
// race. The first resolver wins; late resolvers (already-running cubes
// that beat the cancellation signal) are recorded but do not replace
// the winner.
func (r *run) finishResolved(id int, cand desugar.Candidate, st core.Stats, stolen, remote bool) {
	r.mu.Lock()
	pc := &r.per[id]
	pc.Resolved, pc.Stolen, pc.Remote, pc.Stats = true, stolen, remote, st
	if stolen {
		r.stolen++
	}
	if r.winner < 0 {
		r.winner = id
		r.winCand = append(desugar.Candidate(nil), cand...)
	}
	r.mu.Unlock()
	r.cancelAll()
	r.outcomes <- struct{}{}
}

// finishExhausted records a definitive per-cube NO: the cube's
// refutation clause joins the merged proof (RUP — the engine's UNSAT
// verdict under exactly these assumption literals), and when the last
// cube exhausts, the caller's merge closes the certificate.
func (r *run) finishExhausted(id int, st core.Stats, last *mc.Trace, stolen, remote bool, remTraces, pruned int64) {
	if r.rec != nil {
		r.rec.AddLemma(drat.CubeClause(r.cubeVars, id))
	}
	r.mu.Lock()
	pc := &r.per[id]
	pc.Exhausted, pc.Stolen, pc.Remote, pc.Stats = true, stolen, remote, st
	pc.RemoteTraces, pc.PrunedByRemote = remTraces, pruned
	if stolen {
		r.stolen++
	}
	if last != nil {
		r.lastTrace = last
	}
	r.exhausted++
	r.mu.Unlock()
	r.outcomes <- struct{}{}
}

// fail records a cube error and cancels the race.
func (r *run) fail(id int, err error) {
	r.mu.Lock()
	if r.firstErr == nil {
		r.firstErr = fmt.Errorf("cube %d: %w", id, err)
	}
	r.mu.Unlock()
	r.cancelAll()
	r.outcomes <- struct{}{}
}

// finishCanceled records a cube torn down by the race ending.
func (r *run) finishCanceled(id int, stolen, remote bool) {
	r.mu.Lock()
	pc := &r.per[id]
	pc.Canceled, pc.Stolen, pc.Remote = true, stolen, remote
	r.mu.Unlock()
	r.outcomes <- struct{}{}
}

// foldMetrics merges a finished cube's private registry into the
// coordinator's: sums add, high-water marks max. This keeps a journal
// trailer written from the parent registry meaningful for the whole
// distributed run.
func (r *run) foldMetrics(met *obs.Metrics) {
	for name, v := range met.Snapshot() {
		if obs.HighWaterCounters[name] {
			r.met.Counter(name).Max(v)
		} else {
			r.met.Counter(name).Add(v)
		}
	}
}

// runCube executes one cube with a local engine. Returns after
// recording the outcome.
func (r *run) runCube(id int, tok *atomic.Bool, stolen bool) {
	sp := r.tr.Start("cube.run", r.span.ID())
	met := obs.NewMetrics()
	var sink drat.Sink
	if r.rec != nil {
		sink = r.rec.Namespace(r.nCommon)
	}
	copts := r.cubeOpts(id, tok, met, sink, sp.ID())
	endSpan := func(status string) {
		if sp.Active() {
			sp.End(obs.Str("status", status),
				obs.Int("cube.id", int64(id)),
				obs.Int("cube.stolen", b2i(stolen)))
		}
	}
	syn, err := core.New(r.sk, copts)
	if err == nil && syn.SetupVars() != r.nCommon {
		// Soundness guard: the bus filter and proof namespaces assume an
		// identical setup prefix; a mismatch means the encoding is not
		// deterministic and the whole split is invalid.
		err = fmt.Errorf("cube: setup prefix mismatch (%d vars, probe saw %d)", syn.SetupVars(), r.nCommon)
	}
	if err != nil {
		endSpan("error")
		r.fail(id, err)
		return
	}
	res, err := syn.Synthesize()
	r.foldMetrics(met)
	switch {
	case err == nil && res.Resolved:
		endSpan("resolved")
		r.finishResolved(id, res.Candidate, res.Stats, stolen, false)
	case err == nil:
		endSpan("exhausted")
		r.finishExhausted(id, res.Stats, res.LastTrace, stolen, false,
			met.Counter("cube.remote_traces").Get(), met.Counter("cube.pruned_by_remote").Get())
	case err == core.ErrCanceled || r.decided():
		endSpan("canceled")
		r.finishCanceled(id, stolen, false)
	default:
		endSpan("error")
		r.fail(id, err)
	}
}

// localWorker drains the cube queue until the race is decided.
func (r *run) localWorker() {
	first := true
	for id := range r.queue {
		tok, ok := r.claim(id)
		if !ok {
			return
		}
		r.runCube(id, tok, !first)
		first = false
		if r.decided() {
			return
		}
	}
}

// watchCancel propagates the caller's cancellation token into the
// race. Returns a stop function.
func (r *run) watchCancel() func() {
	ext := r.opts.Core.Cancel
	if ext == nil {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if ext.Load() {
					r.mu.Lock()
					r.parentCanceled = true
					r.mu.Unlock()
					r.cancelAll()
					return
				}
			}
		}
	}()
	return func() { close(stop) }
}

// merge builds the final Result (or error) once every claimed cube has
// recorded its outcome and all workers are joined.
func (r *run) merge(start time.Time) (*Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := &Result{
		Winner:    r.winner,
		Bits:      r.bits,
		PerCube:   r.per,
		Stolen:    r.stolen,
		LastTrace: r.lastTrace,
	}
	agg := aggregate(r.per)
	agg.Total = time.Since(start)
	workers := r.opts.Workers
	if workers <= 0 || workers > r.n {
		workers = r.n
	}
	par := r.opts.Core.Parallelism
	if par < 1 {
		par = 1
	}
	agg.Parallelism = workers * par
	r.met.Counter("cube.stolen").Add(r.stolen)
	endSpan := func(status string) {
		if r.span.Active() {
			r.span.End(obs.Str("status", status),
				obs.Int("cubes", int64(r.n)),
				obs.Int("winner", int64(r.winner)),
				obs.Int("stolen", r.stolen))
		}
	}
	switch {
	case r.winner >= 0:
		res.Resolved = true
		res.Candidate = r.winCand
		res.Stats = agg
		endSpan("resolved")
		return res, nil
	case r.firstErr != nil:
		endSpan("error")
		return nil, r.firstErr
	case r.parentCanceled:
		endSpan("canceled")
		return nil, core.ErrCanceled
	case r.exhausted != r.n:
		endSpan("error")
		return nil, fmt.Errorf("cube: internal error: race ended with %d/%d cubes exhausted and no verdict", r.exhausted, r.n)
	}
	// Whole-space NO: close the merged certificate with the top-level
	// resolution over the cube literals and replay it.
	if r.rec != nil {
		for _, c := range drat.CubeTree(r.cubeVars) {
			r.rec.AddLemma(c)
		}
		t0 := time.Now()
		cert := r.rec.Certificate(nil)
		cs, err := cert.Verify()
		d := time.Since(t0)
		agg.ProofLemmas = cs.Lemmas
		agg.ProofChecked = cs.Checked
		agg.ProofCore = cs.Core
		agg.ProofCheck = d
		r.met.Counter("proof.lemmas").Add(int64(cs.Lemmas))
		r.met.Counter("proof.checked").Add(int64(cs.Checked))
		r.met.Counter("proof.core").Add(int64(cs.Core))
		r.met.Counter("proof.check_ns").Add(int64(d))
		if err != nil {
			endSpan("error")
			return nil, fmt.Errorf("cube: DRAT replay of merged NO verdict failed: %w", err)
		}
		res.Certificate = cert
	}
	res.Stats = agg
	endSpan("exhausted")
	return res, nil
}

// aggregate sums the cubes' per-run stats (sizes max).
func aggregate(per []PerCube) core.Stats {
	var a core.Stats
	for i := range per {
		st := &per[i].Stats
		a.Iterations += st.Iterations
		a.SSolve += st.SSolve
		a.SModel += st.SModel
		a.VSolve += st.VSolve
		a.VModel += st.VModel
		a.SpecSolves += st.SpecSolves
		a.SpecHits += st.SpecHits
		a.SpecSolve += st.SpecSolve
		a.MCStates += st.MCStates
		a.MCTrans += st.MCTrans
		a.MCOrbitHits += st.MCOrbitHits
		a.SATConfl += st.SATConfl
		a.SATExported += st.SATExported
		a.SATImported += st.SATImported
		a.SATBusExported += st.SATBusExported
		a.SATBusImported += st.SATBusImported
		a.ProjHits += st.ProjHits
		a.ProjMisses += st.ProjMisses
		a.ProjSaved += st.ProjSaved
		if st.SATVars > a.SATVars {
			a.SATVars = st.SATVars
		}
		if st.SATClauses > a.SATClauses {
			a.SATClauses = st.SATClauses
		}
		if st.MCSymClasses > a.MCSymClasses {
			a.MCSymClasses = st.MCSymClasses
		}
		if st.MCVisitedBytes > a.MCVisitedBytes {
			a.MCVisitedBytes = st.MCVisitedBytes
		}
		if st.MaxHeap > a.MaxHeap {
			a.MaxHeap = st.MaxHeap
		}
	}
	return a
}

// plainRun executes the whole space with one engine (no cubes) and
// wraps the outcome, preserving the single-engine behaviour
// bit-for-bit — this is the Cubes<2 / unsplittable-sketch path.
func plainRun(sk *desugar.Sketch, opts Options) (*Result, error) {
	copts := opts.Core
	copts.Proof = opts.Proof
	syn, err := core.New(sk, copts)
	if err != nil {
		return nil, err
	}
	res, err := syn.Synthesize()
	if err != nil {
		return nil, err
	}
	out := &Result{
		Resolved:    res.Resolved,
		Candidate:   res.Candidate,
		Winner:      -1,
		Stats:       res.Stats,
		LastTrace:   res.LastTrace,
		Certificate: res.Certificate,
	}
	if res.Resolved {
		out.Winner = 0
	}
	return out, nil
}

// Synthesize runs cube-and-conquer CEGIS in-process: the space is
// split into cubes, Workers goroutine engines race them (stealing
// unstarted cubes as they finish), and verdicts merge per the package
// comment.
func Synthesize(sk *desugar.Sketch, opts Options) (*Result, error) {
	if opts.Cubes < 2 {
		return plainRun(sk, opts)
	}
	start := time.Now()
	r, err := newRun(sk, opts)
	if err != nil {
		return nil, err
	}
	if len(r.bits) == 0 {
		return plainRun(sk, opts)
	}
	workers := opts.Workers
	if workers <= 0 || workers > r.n {
		workers = r.n
	}
	stop := r.watchCancel()
	defer stop()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.localWorker()
		}()
	}
	wg.Wait()
	return r.merge(start)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
