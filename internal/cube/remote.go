// Multi-process cube-and-conquer: a coordinator (Serve) listens on
// localhost, compiles the sketch once, and hands out cubes over a
// newline-delimited JSON protocol; joiner processes (Join) dial in,
// recompile the sketch locally from the shipped source (the encoding
// is deterministic, cross-checked via the setup-prefix guard), run one
// cube engine at a time, and ship the outcome back. The coordinator
// may run local workers too, so local goroutines and remote processes
// steal from the same queue.
//
// What crosses the wire, and why it stays sound:
//
//   - Projected counterexamples travel as semantic []project.Entry
//     batches, never CNF: each side re-encodes them through its own
//     projection cache, because Tseitin numbering above the shared
//     setup prefix diverges per cube. Origins are preserved end to
//     end, so a relay never echoes a batch back to its producer.
//   - Learnt clauses (DIMACS over the shared prefix) are relayed only
//     when proof logging is OFF. The in-process bus is proof-sound
//     because producers stamp a lemma into the ONE merged recorder
//     before publishing; a remote importer logs into its own recorder,
//     where the imported clause would have no prior derivation and the
//     merged replay would fail. Traces stay shareable under proof
//     because their encodings enter each log as premises, and
//     drat.Certificate loads all premises before any lemma.
//   - A remote cube that exhausts ships its recorder's Export() —
//     premises then lemmas — and the coordinator replants both through
//     a drat.Namespace of the master recorder before appending the
//     cube's refutation clause, exactly like an in-process cube.
//
// Failure handling is deliberately simple: a connection that dies
// mid-cube aborts the whole run with an error (no re-queue), matching
// the trust model of a localhost experiment harness rather than a
// fault-tolerant cluster.
package cube

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/drat"
	"psketch/internal/obs"
	"psketch/internal/parser"
	"psketch/internal/project"
	"psketch/internal/sat"
)

// RemoteOptions describe the problem a coordinator serves: joiners
// receive the sketch SOURCE and desugar options and compile locally,
// so both sides derive the identical deterministic encoding instead of
// shipping CNF.
type RemoteOptions struct {
	Src     string
	Target  string
	Desugar desugar.Options
}

// wireCore is the plain-data subset of core.Options a job carries
// (function pointers, buses and tokens are per-process and never
// marshal).
type wireCore struct {
	MaxIterations      int    `json:"max_iterations,omitempty"`
	MCMaxStates        int    `json:"mc_max_states,omitempty"`
	TracesPerIteration int    `json:"traces_per_iteration,omitempty"`
	Parallelism        int    `json:"parallelism,omitempty"`
	NoPOR              bool   `json:"no_por,omitempty"`
	NoSymmetry         bool   `json:"no_symmetry,omitempty"`
	NoPipeline         bool   `json:"no_pipeline,omitempty"`
	NoShareClauses     bool   `json:"no_share_clauses,omitempty"`
	MCCompress         string `json:"mc_compress,omitempty"`
	HeapSampleEvery    int    `json:"heap_sample_every,omitempty"`
}

// wireClause is one relayed learnt clause in DIMACS literals, tagged
// with its origin cube.
type wireClause struct {
	Origin int   `json:"origin"`
	Lits   []int `json:"lits"`
}

// wireMsg is one line of the protocol. Type selects which fields are
// meaningful:
//
//	hello    joiner → coordinator  (Workers)
//	job      coordinator → joiner  (ID, Src, Target, Desugar, Core,
//	                                Cube, NCommon, Proof)
//	entries  both directions       (Batches)
//	clauses  both directions       (Shared; proof off only)
//	proof    joiner → coordinator  (Kind "p"|"l", Clauses; chunked,
//	                                sent before an exhausted result)
//	result   joiner → coordinator  (ID, Resolved/Exhausted/Canceled,
//	                                Candidate, Stats, RemoteTraces,
//	                                PrunedByRemote)
//	cancel   coordinator → joiner  (race decided; abort current cube)
//	bye      coordinator → joiner  (no more work)
//	err      joiner → coordinator  (Error)
type wireMsg struct {
	Type    string `json:"type"`
	Workers int    `json:"workers,omitempty"`

	ID      int              `json:"id"` // cube id; no omitempty — cube 0 is real
	Src     string           `json:"src,omitempty"`
	Target  string           `json:"target,omitempty"`
	Desugar *desugar.Options `json:"desugar,omitempty"`
	Core    *wireCore        `json:"core,omitempty"`
	Cube    []core.CubeLit   `json:"cube,omitempty"`
	NCommon int              `json:"ncommon,omitempty"`
	Proof   bool             `json:"proof,omitempty"`

	Batches []project.Batch `json:"batches,omitempty"`
	Shared  []wireClause    `json:"shared,omitempty"`

	Kind    string  `json:"kind,omitempty"`
	Clauses [][]int `json:"clauses,omitempty"`

	Resolved       bool              `json:"resolved,omitempty"`
	Exhausted      bool              `json:"exhausted,omitempty"`
	Canceled       bool              `json:"canceled,omitempty"`
	Candidate      desugar.Candidate `json:"candidate,omitempty"`
	Stats          *core.Stats       `json:"stats,omitempty"`
	RemoteTraces   int64             `json:"remote_traces,omitempty"`
	PrunedByRemote int64             `json:"pruned_by_remote,omitempty"`

	Error string `json:"error,omitempty"`
}

// proofChunk bounds clauses per proof message so a half-million-premise
// certificate streams as many lines instead of one enormous one.
const proofChunk = 8192

func dimacsOf(lits []sat.Lit) []int {
	out := make([]int, len(lits))
	for i, l := range lits {
		out[i] = sat.Dimacs(l)
	}
	return out
}

func litsOf(dimacs []int) []sat.Lit {
	out := make([]sat.Lit, len(dimacs))
	for i, d := range dimacs {
		if d > 0 {
			out[i] = sat.MkLit(d-1, false)
		} else {
			out[i] = sat.MkLit(-d-1, true)
		}
	}
	return out
}

// Serve runs the coordinator side of a distributed cube-and-conquer
// synthesis on addr. opts.Workers is the number of LOCAL cube engines
// (0 = pure coordinator, every cube runs on joiners); opts.Cubes must
// request a real split. Serve returns when the merged verdict is
// known, joiners still connected get a bye/cancel and are released.
func Serve(addr string, ropts RemoteOptions, opts Options, verbose func(string, ...any)) (*Result, error) {
	if verbose == nil {
		verbose = func(string, ...any) {}
	}
	if opts.Cubes < 2 {
		return nil, errors.New("cube: serving requires -cubes >= 2")
	}
	prog, err := parser.Parse(ropts.Src)
	if err != nil {
		return nil, err
	}
	sk, err := desugar.Desugar(prog, ropts.Target, ropts.Desugar)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	r, err := newRun(sk, opts)
	if err != nil {
		return nil, err
	}
	if len(r.bits) == 0 {
		return nil, errors.New("cube: sketch has too few hole bits to split; run without -serve-cubes")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	verbose("cube: serving %d cubes on %s (%d local workers)", r.n, ln.Addr(), opts.Workers)
	stop := r.watchCancel()
	defer stop()

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.localWorker()
		}()
	}
	go func() {
		idx := 0
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			idx++
			verbose("cube: joiner %d connected from %s", idx, conn.RemoteAddr())
			c := &remoteConn{r: r, ropts: &ropts, conn: conn,
				enc: json.NewEncoder(conn), dec: json.NewDecoder(conn),
				ran: make(map[int]bool), verbose: verbose}
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.handle()
			}()
		}
	}()

	// The race ends when every cube has an outcome, or early when a
	// verdict/error/cancel closes doneCh (cubes never claimed then have
	// no outcome to wait for).
	got := 0
	for got < r.n {
		select {
		case <-r.outcomes:
			got++
		case <-r.doneCh:
			got = r.n
		}
	}
	r.cancelAll()
	ln.Close()
	// Handlers finish their in-flight job (canceled joiners still send a
	// result), local workers drain via failed claims; everything records
	// its outcome before returning, so merge sees the final state.
	wg.Wait()
	return r.merge(start)
}

// remoteConn is the coordinator-side handler of one joiner.
type remoteConn struct {
	r     *run
	ropts *RemoteOptions
	conn  net.Conn
	enc   *json.Encoder
	dec   *json.Decoder
	wmu   sync.Mutex // serializes enc between job loop and relay pump

	ranMu sync.Mutex
	ran   map[int]bool // cubes this conn ran: never relay their output back

	verbose func(string, ...any)
}

func (c *remoteConn) send(m *wireMsg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(m)
}

func (c *remoteConn) didRun(origin int) bool {
	c.ranMu.Lock()
	defer c.ranMu.Unlock()
	return c.ran[origin]
}

func (c *remoteConn) setRan(id int) (stolen bool) {
	c.ranMu.Lock()
	defer c.ranMu.Unlock()
	stolen = len(c.ran) > 0
	c.ran[id] = true
	return stolen
}

// relay pushes trace batches (and, proof off, bus clauses) produced by
// everyone except this conn's own cubes.
func (c *remoteConn) relay(tcur *int, ccur *uint64) {
	batches, tnext := c.r.tbus.Fetch(*tcur, -1)
	*tcur = tnext
	var out []project.Batch
	for _, b := range batches {
		if !c.didRun(b.Origin) {
			out = append(out, b)
		}
	}
	if len(out) > 0 {
		c.send(&wireMsg{Type: "entries", Batches: out})
	}
	if c.r.bus != nil && !c.r.opts.Proof {
		tagged, cnext := c.r.bus.FetchTagged(*ccur)
		*ccur = cnext
		var sh []wireClause
		for _, tc := range tagged {
			if !c.didRun(tc.Origin) {
				sh = append(sh, wireClause{Origin: tc.Origin, Lits: dimacsOf(tc.Lits)})
			}
		}
		if len(sh) > 0 {
			c.send(&wireMsg{Type: "clauses", Shared: sh})
		}
	}
}

func (c *remoteConn) handle() {
	defer c.conn.Close()
	var hello wireMsg
	if err := c.dec.Decode(&hello); err != nil || hello.Type != "hello" {
		return
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() { // relay pump
		var tcur int
		var ccur uint64
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.relay(&tcur, &ccur)
			}
		}
	}()
	go func() { // cancel push: fires as soon as the race is decided
		select {
		case <-c.r.doneCh:
			c.send(&wireMsg{Type: "cancel"})
		case <-stop:
		}
	}()
	wcore := wireCore{
		MaxIterations:      c.r.opts.Core.MaxIterations,
		MCMaxStates:        c.r.opts.Core.MCMaxStates,
		TracesPerIteration: c.r.opts.Core.TracesPerIteration,
		Parallelism:        c.r.opts.Core.Parallelism,
		NoPOR:              c.r.opts.Core.NoPOR,
		NoSymmetry:         c.r.opts.Core.NoSymmetry,
		NoPipeline:         c.r.opts.Core.NoPipeline,
		NoShareClauses:     c.r.opts.Core.NoShareClauses,
		MCCompress:         c.r.opts.Core.MCCompress,
		HeapSampleEvery:    c.r.opts.Core.HeapSampleEvery,
	}
	for {
		id, ok := <-c.r.queue
		if !ok {
			c.send(&wireMsg{Type: "bye"})
			return
		}
		if _, ok := c.r.claim(id); !ok {
			c.send(&wireMsg{Type: "bye"})
			return
		}
		stolen := c.setRan(id)
		job := wireMsg{Type: "job", ID: id,
			Src: c.ropts.Src, Target: c.ropts.Target, Desugar: &c.ropts.Desugar,
			Core: &wcore, Cube: Assign(c.r.bits, id), NCommon: c.r.nCommon,
			Proof: c.r.opts.Proof}
		c.verbose("cube: dispatching cube %d to %s", id, c.conn.RemoteAddr())
		if err := c.send(&job); err != nil {
			c.r.fail(id, err)
			return
		}
		if err := c.runJob(id, stolen); err != nil {
			c.r.fail(id, err)
			return
		}
		if c.r.decided() {
			c.send(&wireMsg{Type: "bye"})
			return
		}
	}
}

// runJob reads the joiner's stream for one cube until its result.
func (c *remoteConn) runJob(id int, stolen bool) error {
	var premises, lemmas [][]int
	for {
		var m wireMsg
		if err := c.dec.Decode(&m); err != nil {
			return fmt.Errorf("joiner lost mid-cube: %w", err)
		}
		switch m.Type {
		case "entries":
			for _, b := range m.Batches {
				c.r.tbus.Publish(b.Origin, b.Entries)
			}
		case "clauses":
			if c.r.bus != nil && !c.r.opts.Proof {
				for _, sc := range m.Shared {
					c.r.bus.Publish(sc.Origin, litsOf(sc.Lits))
				}
			}
		case "proof":
			if m.Kind == "p" {
				premises = append(premises, m.Clauses...)
			} else {
				lemmas = append(lemmas, m.Clauses...)
			}
		case "err":
			return errors.New(m.Error)
		case "result":
			var st core.Stats
			if m.Stats != nil {
				st = *m.Stats
			}
			switch {
			case m.Resolved:
				c.verbose("cube: cube %d resolved remotely", id)
				c.r.finishResolved(id, m.Candidate, st, stolen, true)
			case m.Exhausted:
				// Replant the shipped log into the merged certificate:
				// premises and lemmas pass through this cube's namespace
				// (vars above the shared prefix get fresh global names),
				// then finishExhausted appends the refutation clause
				// ¬cube_id after the lemmas that justify it.
				if c.r.rec != nil {
					ns := c.r.rec.Namespace(c.r.nCommon)
					for _, p := range premises {
						ns.AddPremise(p)
					}
					for _, l := range lemmas {
						ns.AddLemma(l)
					}
				}
				c.verbose("cube: cube %d exhausted remotely (%d premises, %d lemmas shipped)",
					id, len(premises), len(lemmas))
				c.r.finishExhausted(id, st, nil, stolen, true, m.RemoteTraces, m.PrunedByRemote)
			default:
				c.r.finishCanceled(id, stolen, true)
			}
			return nil
		}
	}
}

// Join connects to a coordinator at addr and runs cubes until released
// with a bye. The joiner compiles the shipped sketch source locally,
// checks its setup prefix against the coordinator's, and runs one cube
// engine at a time with a local trace bus (relayed), a local clause
// bus (proof off only) and, under proof, a local DRAT recorder whose
// log ships back with the result.
func Join(addr string, verbose func(string, ...any)) error {
	if verbose == nil {
		verbose = func(string, ...any) {}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	j := &joiner{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn),
		msgs: make(chan wireMsg, 64), readErr: make(chan error, 1), verbose: verbose}
	if err := j.send(&wireMsg{Type: "hello", Workers: 1}); err != nil {
		return err
	}
	go func() {
		for {
			var m wireMsg
			if err := j.dec.Decode(&m); err != nil {
				j.readErr <- err
				return
			}
			j.msgs <- m
		}
	}()
	for {
		select {
		case err := <-j.readErr:
			return err
		case m := <-j.msgs:
			switch m.Type {
			case "bye":
				verbose("cube: released by coordinator")
				return nil
			case "job":
				if err := j.runJob(&m); err != nil {
					return err
				}
			default:
				// cancel/entries for a job that already ended: stale, drop.
			}
		}
	}
}

type joiner struct {
	conn    net.Conn
	enc     *json.Encoder
	dec     *json.Decoder
	wmu     sync.Mutex
	msgs    chan wireMsg
	readErr chan error
	verbose func(string, ...any)
}

func (j *joiner) send(m *wireMsg) error {
	j.wmu.Lock()
	defer j.wmu.Unlock()
	return j.enc.Encode(m)
}

// shipProof streams an exhausted cube's recorder contents ahead of its
// result message.
func (j *joiner) shipProof(kind string, clauses [][]int) error {
	for len(clauses) > 0 {
		n := len(clauses)
		if n > proofChunk {
			n = proofChunk
		}
		if err := j.send(&wireMsg{Type: "proof", Kind: kind, Clauses: clauses[:n]}); err != nil {
			return err
		}
		clauses = clauses[n:]
	}
	return nil
}

// runJob executes one cube locally, relaying buses both ways while the
// engine runs.
func (j *joiner) runJob(job *wireMsg) error {
	var dopts desugar.Options
	if job.Desugar != nil {
		dopts = *job.Desugar
	}
	jobErr := func(err error) error {
		// Report a per-cube failure and keep the connection: the
		// coordinator turns it into a run failure and says bye/closes.
		j.verbose("cube: cube %d failed: %v", job.ID, err)
		return j.send(&wireMsg{Type: "err", ID: job.ID, Error: err.Error()})
	}
	prog, err := parser.Parse(job.Src)
	if err != nil {
		return jobErr(err)
	}
	sk, err := desugar.Desugar(prog, job.Target, dopts)
	if err != nil {
		return jobErr(err)
	}
	tok := &atomic.Bool{}
	tbus := project.NewBus()
	met := obs.NewMetrics()
	var rec *drat.Recorder
	var sink drat.Sink
	if job.Proof {
		rec = drat.NewRecorder()
		sink = rec
	}
	var bus *sat.Bus
	wc := wireCore{}
	if job.Core != nil {
		wc = *job.Core
	}
	if !job.Proof && !wc.NoShareClauses {
		bus = sat.NewBus(job.NCommon)
	}
	copts := core.Options{
		MaxIterations:      wc.MaxIterations,
		MCMaxStates:        wc.MCMaxStates,
		TracesPerIteration: wc.TracesPerIteration,
		Parallelism:        wc.Parallelism,
		NoPOR:              wc.NoPOR,
		NoSymmetry:         wc.NoSymmetry,
		NoPipeline:         wc.NoPipeline,
		NoShareClauses:     wc.NoShareClauses,
		MCCompress:         wc.MCCompress,
		HeapSampleEvery:    wc.HeapSampleEvery,
		Cancel:             tok,
		Cube:               job.Cube,
		CubeID:             job.ID,
		TraceBus:           tbus,
		ClauseBus:          bus,
		ProofSink:          sink,
		Metrics:            met,
	}
	syn, err := core.New(sk, copts)
	if err == nil && syn.SetupVars() != job.NCommon {
		err = fmt.Errorf("cube: setup prefix mismatch (%d vars here, coordinator has %d) — differing binaries?",
			syn.SetupVars(), job.NCommon)
	}
	if err != nil {
		return jobErr(err)
	}
	j.verbose("cube: running cube %d %v", job.ID, job.Cube)

	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := syn.Synthesize()
		done <- outcome{res, err}
	}()

	// Outbound relay shares cursors between the ticker and the final
	// flush; only batches/clauses the local engine produced (origin ==
	// job.ID) go out — everything else arrived from the wire.
	var relayMu sync.Mutex
	var tcur int
	var ccur uint64
	flush := func() {
		relayMu.Lock()
		defer relayMu.Unlock()
		batches, tnext := tbus.Fetch(tcur, -1)
		tcur = tnext
		var out []project.Batch
		for _, b := range batches {
			if b.Origin == job.ID {
				out = append(out, b)
			}
		}
		if len(out) > 0 {
			j.send(&wireMsg{Type: "entries", ID: job.ID, Batches: out})
		}
		if bus != nil {
			tagged, cnext := bus.FetchTagged(ccur)
			ccur = cnext
			var sh []wireClause
			for _, tc := range tagged {
				if tc.Origin == job.ID {
					sh = append(sh, wireClause{Origin: tc.Origin, Lits: dimacsOf(tc.Lits)})
				}
			}
			if len(sh) > 0 {
				j.send(&wireMsg{Type: "clauses", ID: job.ID, Shared: sh})
			}
		}
	}
	stop := make(chan struct{})
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				flush()
			}
		}
	}()

	var o outcome
	var connErr error
loop:
	for {
		select {
		case m := <-j.msgs:
			switch m.Type {
			case "entries":
				for _, b := range m.Batches {
					tbus.Publish(b.Origin, b.Entries)
				}
			case "clauses":
				if bus != nil {
					for _, sc := range m.Shared {
						bus.Publish(sc.Origin, litsOf(sc.Lits))
					}
				}
			case "cancel":
				tok.Store(true)
			}
		case err := <-j.readErr:
			connErr = err
			tok.Store(true)
			o = <-done
			break loop
		case o = <-done:
			break loop
		}
	}
	close(stop)
	pumpWG.Wait()
	if connErr != nil {
		return connErr
	}
	flush()

	switch {
	case o.err == nil && o.res.Resolved:
		j.verbose("cube: cube %d resolved after %d iterations", job.ID, o.res.Stats.Iterations)
		return j.send(&wireMsg{Type: "result", ID: job.ID, Resolved: true,
			Candidate: o.res.Candidate, Stats: &o.res.Stats})
	case o.err == nil:
		if rec != nil {
			prem, lem := rec.Export()
			if err := j.shipProof("p", prem); err != nil {
				return err
			}
			if err := j.shipProof("l", lem); err != nil {
				return err
			}
		}
		j.verbose("cube: cube %d exhausted after %d iterations", job.ID, o.res.Stats.Iterations)
		return j.send(&wireMsg{Type: "result", ID: job.ID, Exhausted: true,
			Stats:          &o.res.Stats,
			RemoteTraces:   met.Counter("cube.remote_traces").Get(),
			PrunedByRemote: met.Counter("cube.pruned_by_remote").Get()})
	case errors.Is(o.err, core.ErrCanceled):
		j.verbose("cube: cube %d canceled", job.ID)
		return j.send(&wireMsg{Type: "result", ID: job.ID, Canceled: true})
	default:
		return jobErr(o.err)
	}
}
