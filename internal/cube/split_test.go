package cube

import (
	"reflect"
	"testing"

	"psketch/internal/desugar"
)

// Split picks the largest power-of-two cube count ≤ want, prefers
// high-fanout holes, and round-robins bit positions LSB-first so no
// single hole's low bits dominate the partition.
func TestSplitSelection(t *testing.T) {
	holes := []desugar.HoleMeta{
		{ID: 0, Kind: desugar.HoleInt, Bits: 1},                // fanout 2
		{ID: 1, Kind: desugar.HoleChoice, Bits: 3, Choices: 6}, // fanout 6
		{ID: 2, Kind: desugar.HoleInt, Bits: 4},                // fanout 16
	}
	// want=8 → k=3 bits. Fanout order: hole 2 (16), hole 1 (6),
	// hole 0 (2); level-0 bits of each, round-robin.
	want := []BitRef{{Hole: 2, Bit: 0}, {Hole: 1, Bit: 0}, {Hole: 0, Bit: 0}}
	if got := Split(holes, 8); !reflect.DeepEqual(got, want) {
		t.Fatalf("Split(8) = %v, want %v", got, want)
	}
	// want=16 → k=4: the fourth bit comes from the second level of the
	// highest-fanout hole (hole 0 has only one bit).
	want = append(want, BitRef{Hole: 2, Bit: 1})
	if got := Split(holes, 16); !reflect.DeepEqual(got, want) {
		t.Fatalf("Split(16) = %v, want %v", got, want)
	}
	// Non-power-of-two want rounds down: 7 → k=2.
	if got := Split(holes, 7); len(got) != 2 {
		t.Fatalf("Split(7) picked %d bits, want 2", len(got))
	}
	// Deterministic across calls.
	if !reflect.DeepEqual(Split(holes, 16), Split(holes, 16)) {
		t.Fatal("Split not deterministic")
	}
}

// Degenerate inputs: nothing to split on, or nothing asked for.
func TestSplitDegenerate(t *testing.T) {
	if got := Split(nil, 8); got != nil {
		t.Fatalf("no holes: %v", got)
	}
	if got := Split([]desugar.HoleMeta{{ID: 0, Bits: 3}}, 1); got != nil {
		t.Fatalf("want=1 must not split: %v", got)
	}
	// A 0-bit hole and a fanout-1 choice are unusable.
	holes := []desugar.HoleMeta{
		{ID: 0, Kind: desugar.HoleChoice, Bits: 1, Choices: 1},
		{ID: 1, Kind: desugar.HoleInt, Bits: 0},
	}
	if got := Split(holes, 4); got != nil {
		t.Fatalf("unusable holes produced bits: %v", got)
	}
	// Asking for more cubes than the space has bits caps at the
	// available bits instead of inventing refs.
	one := []desugar.HoleMeta{{ID: 0, Kind: desugar.HoleInt, Bits: 1}}
	if got := Split(one, 8); len(got) != 1 {
		t.Fatalf("1-bit space split into %d bits", len(got))
	}
}

// Assign maps cube index bits onto bit-ref polarities: bit j of the
// index is the value of bits[j] — the same convention CubeClause
// negates, which is what makes the merged proof line up.
func TestAssignPolarity(t *testing.T) {
	bits := []BitRef{{Hole: 2, Bit: 0}, {Hole: 1, Bit: 3}}
	got := Assign(bits, 2) // binary 10: bits[0]=false, bits[1]=true
	if len(got) != 2 {
		t.Fatalf("got %d lits", len(got))
	}
	if got[0].Hole != 2 || got[0].Bit != 0 || got[0].Val {
		t.Fatalf("lit 0: %+v", got[0])
	}
	if got[1].Hole != 1 || got[1].Bit != 3 || !got[1].Val {
		t.Fatalf("lit 1: %+v", got[1])
	}
}
