// Package project implements the trace-projection step of the
// concurrent CEGIS algorithm (§6): a counterexample trace produced on
// one candidate is turned into an observation valid for the whole
// candidate space.
//
// Because the sketch is in if-converted linear-step form, every
// candidate executes a subset of the same statement instances. The
// projection orders all statement instances of all threads so that
//
//	(i)   steps common with the trace keep the trace's order,
//	(ii)  per-thread program order is preserved, and
//	(iii) deadlock-set steps come after every step outside the set,
//
// and rewrites conditional atomics into the paper's
// "if (cond) body; else if (another thread can progress) OK; else
// deadlock" form. Mid-trace blocked steps abort the projection (the
// longest-preserving-prefix semantics); a trace that ended in deadlock
// contributes the constraint "all deadlocked threads are simultaneously
// stuck", with each stuck thread's remaining steps suppressed.
package project

import (
	"psketch/internal/circuit"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/state"
	"psketch/internal/sym"
)

// Entry is one statement instance of the projected trace program.
type Entry struct {
	Thread int // forked thread index
	Step   int // step index within that thread
	// Deadlock marks a step at which a thread was blocked when the
	// model checker declared deadlock.
	Deadlock bool
}

// Build computes the projected order of all thread-step instances for a
// counterexample trace.
func Build(p *ir.Program, tr *mc.Trace) []Entry {
	n := p.NumThreads()
	pos := make([]int, n)
	var out []Entry
	emitUpTo := func(t, step int) {
		for pos[t] <= step && pos[t] < len(p.Threads[t].Steps) {
			out = append(out, Entry{Thread: t, Step: pos[t]})
			pos[t]++
		}
	}
	// (i)+(ii): traced steps in trace order; untraced earlier steps of
	// the same thread (guard-skipped on the failing candidate) are
	// emitted just before, in program order.
	for _, ev := range tr.Events {
		emitUpTo(ev.Thread, ev.Step)
	}
	// (iii): steps outside the deadlock set first...
	inDeadlock := map[int]int{}
	for _, d := range tr.Deadlocked {
		inDeadlock[d.Thread] = d.Step
	}
	for t := 0; t < n; t++ {
		if b, ok := inDeadlock[t]; ok {
			emitUpTo(t, b-1)
		} else {
			emitUpTo(t, len(p.Threads[t].Steps)-1)
		}
	}
	// ...then each blocked step (marked) and its thread's suffix.
	for t := 0; t < n; t++ {
		if b, ok := inDeadlock[t]; ok {
			if pos[t] == b && b < len(p.Threads[t].Steps) {
				out = append(out, Entry{Thread: t, Step: b, Deadlock: true})
				pos[t]++
			}
			emitUpTo(t, len(p.Threads[t].Steps)-1)
		}
	}
	return out
}

// Encode symbolically evaluates the projected trace program over the
// hole inputs and returns fail(Skt[c]) as a single literal.
func Encode(b *circuit.Builder, l *state.Layout, holes []circuit.Word, entries []Entry) (circuit.Lit, error) {
	p := l.Prog
	e := sym.New(b, l, holes)
	e.RunSeq(p.GlobalInit, circuit.True)
	e.RunSeq(p.Prologue, circuit.True)

	active := circuit.True
	threadActive := make(map[int]circuit.Lit)
	tact := func(t int) circuit.Lit {
		if l, ok := threadActive[t]; ok {
			return l
		}
		return circuit.True
	}
	blockedAll := circuit.True
	anyDeadlock := false

	for i, en := range entries {
		seq := p.Threads[en.Thread]
		step := seq.Steps[en.Step]
		base := b.And(active, tact(en.Thread))
		g, c := e.StepParts(seq, step, base)
		switch {
		case en.Deadlock:
			// The thread is stuck here iff it reaches this step (guards
			// hold) and the condition is false; its remaining steps run
			// only if it was not stuck.
			blocked := b.And(g, c.Not())
			blockedAll = b.And(blockedAll, blocked)
			anyDeadlock = true
			threadActive[en.Thread] = b.And(tact(en.Thread), blocked.Not())
			g = b.And(g, c)
		case step.Cond != nil:
			blocked := b.And(g, c.Not())
			if othersFollow(entries, i) {
				// "Some other thread can make progress": the projected
				// trace diverges here; stop following it (OK).
				active = b.And(active, blocked.Not())
			} else {
				// Every other thread has terminated in this order; a
				// blocked step is a genuine deadlock.
				e.FailIf(blocked)
			}
			g = b.And(g, c)
		}
		e.ExecStepBody(seq, step, g)
	}
	if anyDeadlock {
		e.FailIf(blockedAll)
	}

	// The epilogue's correctness checks apply when the trace ran to
	// completion and no thread is stuck.
	epiActive := active
	for t := range p.Threads {
		epiActive = b.And(epiActive, tact(t))
	}
	e.RunSeq(p.Epilogue, epiActive)
	if err := e.Err(); err != nil {
		return circuit.False, err
	}
	return e.Fail, nil
}

// othersFollow reports whether any entry after position i belongs to a
// different thread ("some other thread can make progress").
func othersFollow(entries []Entry, i int) bool {
	t := entries[i].Thread
	for j := i + 1; j < len(entries); j++ {
		if entries[j].Thread != t {
			return true
		}
	}
	return false
}
