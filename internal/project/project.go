// Package project implements the trace-projection step of the
// concurrent CEGIS algorithm (§6): a counterexample trace produced on
// one candidate is turned into an observation valid for the whole
// candidate space.
//
// Because the sketch is in if-converted linear-step form, every
// candidate executes a subset of the same statement instances. The
// projection orders all statement instances of all threads so that
//
//	(i)   steps common with the trace keep the trace's order,
//	(ii)  per-thread program order is preserved, and
//	(iii) deadlock-set steps come after every step outside the set,
//
// and rewrites conditional atomics into the paper's
// "if (cond) body; else if (another thread can progress) OK; else
// deadlock" form. Mid-trace blocked steps abort the projection (the
// longest-preserving-prefix semantics); a trace that ended in deadlock
// contributes the constraint "all deadlocked threads are simultaneously
// stuck", with each stuck thread's remaining steps suppressed.
package project

import (
	"fmt"

	"psketch/internal/circuit"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/state"
	"psketch/internal/sym"
)

// Entry is one statement instance of the projected trace program.
type Entry struct {
	Thread int // forked thread index
	Step   int // step index within that thread
	// Deadlock marks a step at which a thread was blocked when the
	// model checker declared deadlock.
	Deadlock bool
}

// Build computes the projected order of all thread-step instances for a
// counterexample trace.
func Build(p *ir.Program, tr *mc.Trace) []Entry {
	n := p.NumThreads()
	pos := make([]int, n)
	var out []Entry
	emitUpTo := func(t, step int) {
		for pos[t] <= step && pos[t] < len(p.Threads[t].Steps) {
			out = append(out, Entry{Thread: t, Step: pos[t]})
			pos[t]++
		}
	}
	// (i)+(ii): traced steps in trace order; untraced earlier steps of
	// the same thread (guard-skipped on the failing candidate) are
	// emitted just before, in program order.
	for _, ev := range tr.Events {
		emitUpTo(ev.Thread, ev.Step)
	}
	// (iii): steps outside the deadlock set first...
	inDeadlock := map[int]int{}
	for _, d := range tr.Deadlocked {
		inDeadlock[d.Thread] = d.Step
	}
	for t := 0; t < n; t++ {
		if b, ok := inDeadlock[t]; ok {
			emitUpTo(t, b-1)
		} else {
			emitUpTo(t, len(p.Threads[t].Steps)-1)
		}
	}
	// ...then each blocked step (marked) and its thread's suffix.
	for t := 0; t < n; t++ {
		if b, ok := inDeadlock[t]; ok {
			if pos[t] == b && b < len(p.Threads[t].Steps) {
				out = append(out, Entry{Thread: t, Step: b, Deadlock: true})
				pos[t]++
			}
			emitUpTo(t, len(p.Threads[t].Steps)-1)
		}
	}
	return out
}

// Validate checks the structural invariants Build guarantees and
// Encode relies on: every (thread, step) instance of the program
// appears exactly once, and each thread's instances appear in
// ascending program order. It is the contract the fuzz targets and
// differential tests hold the projection to.
func Validate(p *ir.Program, entries []Entry) error {
	n := p.NumThreads()
	next := make([]int, n)
	for i, e := range entries {
		if e.Thread < 0 || e.Thread >= n {
			return fmt.Errorf("project: entry %d has thread %d out of range [0,%d)", i, e.Thread, n)
		}
		if e.Step != next[e.Thread] {
			return fmt.Errorf("project: entry %d (thread %d) has step %d, want %d (program order, no duplicates)", i, e.Thread, e.Step, next[e.Thread])
		}
		next[e.Thread]++
	}
	for t := 0; t < n; t++ {
		if next[t] != len(p.Threads[t].Steps) {
			return fmt.Errorf("project: thread %d emitted %d of %d steps", t, next[t], len(p.Threads[t].Steps))
		}
	}
	return nil
}

// encState is the projection-local control state threaded through the
// entries: the still-following-the-trace literal, per-thread liveness,
// and the accumulated deadlock condition.
type encState struct {
	active       circuit.Lit
	threadActive map[int]circuit.Lit
	blockedAll   circuit.Lit
	anyDeadlock  bool
}

func newEncState() *encState {
	return &encState{
		active:       circuit.True,
		threadActive: make(map[int]circuit.Lit),
		blockedAll:   circuit.True,
	}
}

func (st *encState) tact(t int) circuit.Lit {
	if l, ok := st.threadActive[t]; ok {
		return l
	}
	return circuit.True
}

func (st *encState) clone() *encState {
	cp := *st
	cp.threadActive = make(map[int]circuit.Lit, len(st.threadActive))
	for k, v := range st.threadActive {
		cp.threadActive[k] = v
	}
	return &cp
}

// applyEntry encodes one projected statement instance, mutating the
// evaluator and the control state. othersAfter is othersFollow(entries,
// i) precomputed by the caller (it looks at entries after this one).
func applyEntry(b *circuit.Builder, e *sym.Evaluator, p *ir.Program, st *encState, en Entry, othersAfter bool) {
	seq := p.Threads[en.Thread]
	step := seq.Steps[en.Step]
	base := b.And(st.active, st.tact(en.Thread))
	g, c := e.StepParts(seq, step, base)
	switch {
	case en.Deadlock:
		// The thread is stuck here iff it reaches this step (guards
		// hold) and the condition is false; its remaining steps run
		// only if it was not stuck.
		blocked := b.And(g, c.Not())
		st.blockedAll = b.And(st.blockedAll, blocked)
		st.anyDeadlock = true
		st.threadActive[en.Thread] = b.And(st.tact(en.Thread), blocked.Not())
		g = b.And(g, c)
	case step.Cond != nil:
		blocked := b.And(g, c.Not())
		if othersAfter {
			// "Some other thread can make progress": the projected
			// trace diverges here; stop following it (OK).
			st.active = b.And(st.active, blocked.Not())
		} else {
			// No later entry belongs to another thread, so blocking
			// here is a deadlock — but only if every other thread has
			// genuinely finished. A thread parked at its own blocked
			// step (deadlock traces) is not finished: writes executed
			// after this order diverged may re-enable it, so its
			// liveness literal must gate the claim. Either way the
			// projected order stops here — without the deactivation,
			// later steps of this thread would execute from a state
			// that skipped the blocked step.
			dl := blocked
			for u := range p.Threads {
				if u != en.Thread {
					dl = b.And(dl, st.tact(u))
				}
			}
			e.FailIf(dl)
			st.active = b.And(st.active, blocked.Not())
		}
		g = b.And(g, c)
	}
	e.ExecStepBody(seq, step, g)
}

// finishEncode applies the accumulated deadlock constraint and the
// epilogue, and returns the failure literal.
func finishEncode(b *circuit.Builder, e *sym.Evaluator, p *ir.Program, st *encState) (circuit.Lit, error) {
	if st.anyDeadlock {
		e.FailIf(st.blockedAll)
	}
	// The epilogue's correctness checks apply when the trace ran to
	// completion and no thread is stuck.
	epiActive := st.active
	for t := range p.Threads {
		epiActive = b.And(epiActive, st.tact(t))
	}
	e.RunSeq(p.Epilogue, epiActive)
	if err := e.Err(); err != nil {
		return circuit.False, err
	}
	return e.Fail, nil
}

// Encode symbolically evaluates the projected trace program over the
// hole inputs and returns fail(Skt[c]) as a single literal.
func Encode(b *circuit.Builder, l *state.Layout, holes []circuit.Word, entries []Entry) (circuit.Lit, error) {
	p := l.Prog
	e := sym.New(b, l, holes)
	e.RunSeq(p.GlobalInit, circuit.True)
	e.RunSeq(p.Prologue, circuit.True)
	st := newEncState()
	for i, en := range entries {
		applyEntry(b, e, p, st, en, othersFollow(entries, i))
	}
	return finishEncode(b, e, p, st)
}

// othersFollow reports whether any entry after position i belongs to a
// different thread ("some other thread can make progress").
func othersFollow(entries []Entry, i int) bool {
	t := entries[i].Thread
	for j := i + 1; j < len(entries); j++ {
		if entries[j].Thread != t {
			return true
		}
	}
	return false
}
