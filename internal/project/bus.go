package project

import "sync"

// Bus broadcasts projected counterexample traces between CEGIS workers
// exploring disjoint cubes of one candidate space (internal/cube). A
// projected trace is a fact about the ENTIRE space — Build quantifies
// over the candidate, never a single one (see the package comment) —
// so any cube may install every other cube's projections as inductive
// constraints. The exchange ships semantic projections ([]Entry), not
// CNF: each cube re-encodes an imported projection through its own
// builder/cache, because Tseitin variable numbering above the shared
// setup prefix diverges per cube.
//
// The bus is unbounded (unlike sat.Bus's clause ring): there are at
// most MaxIterations × TracesPerIteration projections per cube per
// run, every one of them is expensive model-checker output worth
// keeping, and batches are immutable after Publish, so late consumers
// — a cube worker started by stealing, a remote joiner — replay the
// full history from cursor zero.
type Bus struct {
	mu      sync.Mutex
	batches []Batch
}

// Batch is one published projection, tagged with the cube that
// discovered it so the origin never reimports its own work. Remote
// relays use origins outside the local cube range.
type Batch struct {
	Origin  int     `json:"origin"`
	Entries []Entry `json:"entries"`
}

// NewBus returns an empty exchange.
func NewBus() *Bus { return &Bus{} }

// Publish broadcasts one projected trace. The entries are copied.
func (b *Bus) Publish(origin int, entries []Entry) {
	cp := append([]Entry(nil), entries...)
	b.mu.Lock()
	b.batches = append(b.batches, Batch{Origin: origin, Entries: cp})
	b.mu.Unlock()
}

// Fetch returns the batches published at positions [from, len) that
// did not originate from self, plus the new cursor. The returned
// batches are immutable and may be retained.
func (b *Bus) Fetch(from, self int) ([]Batch, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	next := len(b.batches)
	var out []Batch
	for _, batch := range b.batches[from:next] {
		if batch.Origin != self {
			out = append(out, batch)
		}
	}
	return out, next
}

// Len returns the total number of batches ever published.
func (b *Bus) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.batches)
}
