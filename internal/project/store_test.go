package project

import (
	"fmt"
	"sync"
	"testing"

	"psketch/internal/circuit"
	"psketch/internal/obs"
)

// fakeState fabricates a WarmState whose SizeBytes is dominated by the
// given snapshot-byte count (plus the empty builder's fixed overhead),
// so eviction tests can dial sizes precisely.
func fakeState(snapBytes int64) *WarmState {
	return &WarmState{Cache: &Cache{b: circuit.NewBuilder(), snapBytes: snapBytes}}
}

func TestStoreAcquireIsExclusive(t *testing.T) {
	s := NewStore(0, nil)
	if got := s.Acquire("k"); got != nil {
		t.Fatalf("Acquire on empty store = %v, want nil", got)
	}
	w := fakeState(100)
	s.Release("k", w)
	got := s.Acquire("k")
	if got != w {
		t.Fatalf("Acquire = %p, want the released context %p", got, w)
	}
	// Checked out: a concurrent Acquire of the same key must miss.
	if again := s.Acquire("k"); again != nil {
		t.Fatalf("second Acquire = %v, want nil (context is checked out)", again)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses, 0 entries", st)
	}
}

func TestStoreEvictsLRUUnderByteBound(t *testing.T) {
	m := obs.NewMetrics()
	unit := fakeState(0).SizeBytes() // empty-builder overhead per entry
	// Room for two entries of snapBytes 256 each, not three.
	s := NewStore(2*(unit+256)+1, m)
	s.Release("a", fakeState(256))
	s.Release("b", fakeState(256))
	if st := s.Stats(); st.Evictions != 0 || st.Entries != 2 {
		t.Fatalf("stats after two releases = %+v, want 0 evictions, 2 entries", st)
	}
	// "a" is least recently used; releasing "c" must evict it.
	s.Release("c", fakeState(256))
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats after third release = %+v, want 1 eviction, 2 entries", st)
	}
	if got := s.Acquire("a"); got != nil {
		t.Fatalf("evicted key still acquirable: %v", got)
	}
	if got := s.Acquire("b"); got == nil {
		t.Fatal("survivor b missing")
	}
	if got := s.Acquire("c"); got == nil {
		t.Fatal("survivor c missing")
	}
	snap := m.Snapshot()
	if snap["warm.evictions"] != 1 {
		t.Fatalf("warm.evictions = %d, want 1", snap["warm.evictions"])
	}
	if snap["warm.entries"] != 0 || snap["warm.bytes"] != 0 {
		t.Fatalf("gauges after draining = entries %d bytes %d, want 0/0",
			snap["warm.entries"], snap["warm.bytes"])
	}
}

// A single oversized context must not wedge the store: it is admitted
// (Release always stores the newest context first) and then immediately
// evicted by the bound.
func TestStoreOversizedEntryEvictsItself(t *testing.T) {
	s := NewStore(10, nil)
	s.Release("big", fakeState(1<<20))
	st := s.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want the oversized entry evicted", st)
	}
}

// Releasing a second context under an idle key replaces the first (the
// last Release wins; bytes must not double-count).
func TestStoreReleaseReplacesIdleEntry(t *testing.T) {
	s := NewStore(0, nil)
	s.Release("k", fakeState(100))
	w2 := fakeState(200)
	s.Release("k", w2)
	st := s.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if want := w2.SizeBytes(); st.Bytes != want {
		t.Fatalf("bytes = %d, want %d (the replacement's size only)", st.Bytes, want)
	}
	if got := s.Acquire("k"); got != w2 {
		t.Fatalf("Acquire = %p, want the replacement %p", got, w2)
	}
}

func TestStoreNilIsInert(t *testing.T) {
	var s *Store
	if got := s.Acquire("k"); got != nil {
		t.Fatalf("nil store Acquire = %v", got)
	}
	s.Release("k", fakeState(1)) // must not panic
	if st := s.Stats(); st != (StoreStats{}) {
		t.Fatalf("nil store stats = %+v", st)
	}
}

// Hammer the store from many goroutines (run under -race): concurrent
// Acquire/Release of overlapping keys must stay consistent, and no
// context may ever be handed to two holders at once. Each holder
// mutates its context's cache without synchronization — if the store
// ever double-issued a context, the race detector fires on that write.
func TestStoreConcurrentCheckoutDiscipline(t *testing.T) {
	s := NewStore(1<<20, obs.NewMetrics())
	const keys = 4
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%keys)
				w := s.Acquire(key)
				if w == nil {
					w = fakeState(int64(i % 512))
				}
				w.Cache.snapBytes++ // exclusive by the checkout contract
				s.Release(key, w)
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("hits %d + misses %d != 1600 acquires", st.Hits, st.Misses)
	}
	if st.Entries > keys {
		t.Fatalf("entries = %d, want <= %d", st.Entries, keys)
	}
}
