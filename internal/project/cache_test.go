package project

import (
	"testing"

	"psketch/internal/circuit"
	"psketch/internal/desugar"
	"psketch/internal/mc"
	"psketch/internal/sym"
)

// The cached encoder must agree with the one-shot Encode on every
// candidate for every trace: same refutations, same survivors. The two
// run on separate builders, so agreement is checked semantically via
// Eval rather than by Lit identity.
func TestCacheMatchesEncode(t *testing.T) {
	sk, p, l := pipeline(t, learnSrc, desugar.Options{})
	bad := make(desugar.Candidate, len(sk.Holes))
	res, err := mc.Check(l, bad, mc.Options{MaxTraces: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("expected counterexamples")
	}

	cb := circuit.NewBuilder()
	cHoles := sym.HoleInputs(cb, sk)
	cache := NewCache(cb, l, cHoles)

	assign := func(b *circuit.Builder, holes []circuit.Word, c desugar.Candidate) map[circuit.Lit]bool {
		m := map[circuit.Lit]bool{}
		for i, w := range holes {
			for j, lit := range w {
				m[lit] = (c.Value(i)>>uint(j))&1 == 1
			}
		}
		return m
	}
	cands := enumerate(sk)
	for ti, tr := range res.Traces {
		entries := Build(p, tr)
		cFail, err := cache.Encode(entries)
		if err != nil {
			t.Fatal(err)
		}
		eb := circuit.NewBuilder()
		eHoles := sym.HoleInputs(eb, sk)
		eFail, err := Encode(eb, l, eHoles, entries)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			got := cb.Eval(assign(cb, cHoles, c), cFail)
			want := eb.Eval(assign(eb, eHoles, c), eFail)
			if got != want {
				t.Fatalf("trace %d cand %v: cached=%v encode=%v", ti, c, got, want)
			}
		}
	}

	// Re-encoding the same traces must hit memoized prefixes and give
	// the identical Lit (same builder, deterministic hash-consing).
	hits := cache.Hits
	for _, tr := range res.Traces {
		entries := Build(p, tr)
		f1, err := cache.Encode(entries)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := cache.Encode(entries)
		if err != nil {
			t.Fatal(err)
		}
		if f1 != f2 {
			t.Fatalf("re-encode of identical trace changed the fail lit: %v vs %v", f1, f2)
		}
	}
	if cache.Hits <= hits {
		t.Fatalf("no cache hits on repeated traces: hits=%d misses=%d", cache.Hits, cache.Misses)
	}
	if cache.SavedEntries == 0 {
		t.Fatal("cache hits saved no entries")
	}
}

// enumerate lists every candidate of a sketch with only choice/const
// holes of known width (learnSrc has a single 1-bit choice per Incr).
func enumerate(sk *desugar.Sketch) []desugar.Candidate {
	cands := []desugar.Candidate{make(desugar.Candidate, len(sk.Holes))}
	for i, h := range sk.Holes {
		n := int64(1) << uint(h.Bits)
		var next []desugar.Candidate
		for _, c := range cands {
			for v := int64(0); v < n; v++ {
				cc := append(desugar.Candidate(nil), c...)
				cc[i] = v
				next = append(next, cc)
			}
		}
		cands = next
	}
	return cands
}
