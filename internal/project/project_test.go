package project

import (
	"testing"

	"psketch/internal/circuit"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/parser"
	"psketch/internal/state"
	"psketch/internal/sym"
)

func pipeline(t *testing.T, src string, opts desugar.Options) (*desugar.Sketch, *ir.Program, *state.Layout) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "Main", opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := state.NewLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	return sk, p, l
}

const learnSrc = `
int counter = 0;

void Incr() {
	if ({| true | false |}) {
		int t = counter;
		t = t + 1;
		counter = t;
	} else {
		atomic { counter = counter + 1; }
	}
}

harness void Main() {
	fork (i; 2) {
		Incr();
		Incr();
	}
	assert counter == 4;
}
`

// Build preserves (i) trace order for traced steps, (ii) per-thread
// program order, and emits every step instance exactly once.
func TestBuildProperties(t *testing.T) {
	sk, p, l := pipeline(t, learnSrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes)) // choice 0: racy
	res, err := mc.Check(l, cand, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("expected a counterexample")
	}
	entries := Build(p, res.Trace)

	// Exactly once per (thread, step).
	seen := map[Entry]bool{}
	total := 0
	for _, e := range entries {
		key := Entry{Thread: e.Thread, Step: e.Step}
		if seen[key] {
			t.Fatalf("duplicate entry %v", e)
		}
		seen[key] = true
		total++
	}
	want := 0
	for _, th := range p.Threads {
		want += len(th.Steps)
	}
	if total != want {
		t.Fatalf("emitted %d of %d step instances", total, want)
	}

	// Per-thread program order.
	last := map[int]int{}
	for _, e := range entries {
		if prev, ok := last[e.Thread]; ok && e.Step <= prev {
			t.Fatalf("program order violated for thread %d: %d after %d", e.Thread, e.Step, prev)
		}
		last[e.Thread] = e.Step
	}

	// Trace order preserved: the traced steps appear as a subsequence
	// in the same relative order.
	pos := map[Entry]int{}
	for i, e := range entries {
		pos[Entry{Thread: e.Thread, Step: e.Step}] = i
	}
	prev := -1
	for _, ev := range res.Trace.Events {
		p := pos[Entry{Thread: ev.Thread, Step: ev.Step}]
		if p < prev {
			t.Fatalf("trace order violated at event %v", ev)
		}
		prev = p
	}
}

// The projection must refute the candidate that produced the trace:
// fail(Skt[c_bad]) evaluates true.
func TestProjectionRefutesFailingCandidate(t *testing.T) {
	sk, p, l := pipeline(t, learnSrc, desugar.Options{})
	bad := make(desugar.Candidate, len(sk.Holes))
	res, err := mc.Check(l, bad, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("expected a counterexample")
	}
	b := circuit.NewBuilder()
	holes := sym.HoleInputs(b, sk)
	fail, err := Encode(b, l, holes, Build(p, res.Trace))
	if err != nil {
		t.Fatal(err)
	}
	assign := func(c desugar.Candidate) map[circuit.Lit]bool {
		m := map[circuit.Lit]bool{}
		for i, w := range holes {
			for j, lit := range w {
				m[lit] = (c.Value(i)>>uint(j))&1 == 1
			}
		}
		return m
	}
	if !b.Eval(assign(bad), fail) {
		t.Fatal("projection does not refute the failing candidate")
	}
	// And the atomic candidate must survive this observation.
	good := make(desugar.Candidate, len(sk.Holes))
	for i, m := range sk.Holes {
		if m.Kind == desugar.HoleChoice {
			good[i] = 1 // choice 1: "false" → atomic branch
		}
	}
	if b.Eval(assign(good), fail) {
		t.Fatal("projection wrongly eliminates the correct candidate")
	}
}

// Deadlock traces must refute the deadlocking candidate (the lock-order
// choice below can deadlock when both threads pick opposite orders).
func TestDeadlockProjectionRefutes(t *testing.T) {
	src := `
struct L { int v = 0; }
L a;
L b;

void Go(int i) {
	if ({| true | false |}) {
		lock(a); lock(b); unlock(b); unlock(a);
	} else {
		if (i == 0) { lock(a); lock(b); unlock(b); unlock(a); }
		if (i == 1) { lock(b); lock(a); unlock(a); unlock(b); }
	}
}

harness void Main() {
	a = new L();
	b = new L();
	fork (i; 2) { Go(i); }
}
`
	sk, p, l := pipeline(t, src, desugar.Options{})
	bad := make(desugar.Candidate, len(sk.Holes))
	for i, m := range sk.Holes {
		if m.Kind == desugar.HoleChoice {
			bad[i] = 1 // "false" → the AB-BA branch
		}
	}
	res, err := mc.Check(l, bad, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || len(res.Trace.Deadlocked) == 0 {
		t.Fatalf("expected deadlock, got %v", res.Trace)
	}
	b := circuit.NewBuilder()
	holes := sym.HoleInputs(b, sk)
	fail, err := Encode(b, l, holes, Build(p, res.Trace))
	if err != nil {
		t.Fatal(err)
	}
	in := map[circuit.Lit]bool{}
	for i, w := range holes {
		for j, lit := range w {
			in[lit] = (bad.Value(i)>>uint(j))&1 == 1
		}
	}
	if !b.Eval(in, fail) {
		t.Fatal("deadlock projection does not refute the deadlocking candidate")
	}
	good := make(desugar.Candidate, len(sk.Holes)) // choice 0: consistent order
	in2 := map[circuit.Lit]bool{}
	for i, w := range holes {
		for j, lit := range w {
			in2[lit] = (good.Value(i)>>uint(j))&1 == 1
		}
	}
	if b.Eval(in2, fail) {
		t.Fatal("deadlock projection wrongly eliminates the safe candidate")
	}
}
