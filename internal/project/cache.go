package project

import (
	"psketch/internal/circuit"
	"psketch/internal/obs"
	"psketch/internal/state"
	"psketch/internal/sym"
)

// cacheCap bounds the number of memoized prefix states. Counterexample
// traces within and across CEGIS iterations share long prefixes (the
// scheduler diverges late), so even a modest cap hits constantly; on
// overflow the whole table is dropped and rebuilt from the live traces.
const cacheCap = 4096

// cachedState is the machine + control state after encoding some
// projected-entry prefix.
type cachedState struct {
	sym sym.Snapshot
	st  *encState
}

// Cache memoizes projection encodings per trace-entry prefix on a
// shared hash-consed builder. Traces of one iteration (and of later
// iterations) overlap heavily in their projected prefixes; restoring a
// snapshot skips the symbolic re-execution of the shared prefix, and —
// because the builder hash-conses and the restored cells hold exactly
// the literals a re-execution would rebuild — the resulting failure
// literal is bit-for-bit the one the uncached Encode returns.
//
// A Cache is single-goroutine (it owns one persistent evaluator); the
// synthesizer calls it only from the projection step.
type Cache struct {
	b         *circuit.Builder
	l         *state.Layout
	e         *sym.Evaluator
	base      sym.Snapshot // state after GlobalInit + Prologue
	snaps     map[string]cachedState
	snapBytes int64 // estimated retained bytes of snaps (keys + cells)

	// Hits counts Encode calls that restored at least one entry;
	// Misses counts calls replayed from the base state. SavedEntries
	// totals the projected entries skipped via restore.
	Hits, Misses, SavedEntries int64

	// Tracer, when set, emits one "project.encode" span per Encode
	// under Parent (the synthesizer repoints Parent at the current
	// iteration's projection span). Nil costs nothing.
	Tracer *obs.Tracer
	Parent obs.SpanID
}

// NewCache builds a cache bound to a builder/layout/holes triple. The
// global-init and prologue are evaluated once, here.
func NewCache(b *circuit.Builder, l *state.Layout, holes []circuit.Word) *Cache {
	e := sym.New(b, l, holes)
	e.RunSeq(l.Prog.GlobalInit, circuit.True)
	e.RunSeq(l.Prog.Prologue, circuit.True)
	return &Cache{
		b:     b,
		l:     l,
		e:     e,
		base:  e.Snapshot(),
		snaps: make(map[string]cachedState),
	}
}

// prefixKeys packs entries into per-prefix byte-string keys. keys[i]
// identifies the encoding of entries[0..i]. The key folds in the
// othersFollow lookahead bit: the encoding of a conditional entry
// depends on whether any later entry belongs to another thread, so two
// traces with equal prefix entries but different suffixes may still
// encode the prefix differently — the flag keeps such prefixes apart.
func prefixKeys(entries []Entry) []string {
	buf := make([]byte, 0, 4*len(entries))
	keys := make([]string, len(entries))
	for i, en := range entries {
		var flags byte
		if en.Deadlock {
			flags |= 1
		}
		if othersFollow(entries, i) {
			flags |= 2
		}
		buf = append(buf, byte(en.Thread), byte(en.Step), byte(en.Step>>8), flags)
		keys[i] = string(buf)
	}
	return keys
}

// Encode is Encode (package function) with prefix memoization. The
// returned literal is identical to the uncached encoding's.
func (c *Cache) Encode(entries []Entry) (circuit.Lit, error) {
	sp := c.Tracer.Start("project.encode", c.Parent)
	keys := prefixKeys(entries)

	// Longest memoized prefix wins.
	start := 0
	st := newEncState()
	c.e.Restore(c.base)
	for i := len(entries); i >= 1; i-- {
		if cs, ok := c.snaps[keys[i-1]]; ok {
			c.e.Restore(cs.sym)
			st = cs.st.clone()
			start = i
			break
		}
	}
	if start > 0 {
		c.Hits++
		c.SavedEntries += int64(start)
	} else {
		c.Misses++
	}

	for i := start; i < len(entries); i++ {
		applyEntry(c.b, c.e, c.l.Prog, st, entries[i], othersFollow(entries, i))
		if c.e.Err() != nil {
			break
		}
		if _, ok := c.snaps[keys[i]]; !ok {
			if len(c.snaps) >= cacheCap {
				c.snaps = make(map[string]cachedState)
				c.snapBytes = 0
			}
			cs := cachedState{sym: c.e.Snapshot(), st: st.clone()}
			c.snaps[keys[i]] = cs
			c.snapBytes += int64(len(keys[i])) + cs.sym.SizeBytes()
		}
	}
	// finishEncode mutates the evaluator past the last snapshot; that
	// is fine — every later Encode starts from a Restore.
	lit, err := finishEncode(c.b, c.e, c.l.Prog, st)
	if sp.Active() {
		sp.End(obs.Int("entries", int64(len(entries))),
			obs.Int("restored", int64(start)),
			obs.Int("hit", hitFlag(start)))
	}
	return lit, err
}

// builderNodeBytes approximates the per-node footprint of the
// hash-consed circuit builder (two literals, the hash-cons map entry,
// and amortized slice growth). The encoded projection clauses live in
// the builder, so this is the dominant term of a warm context's size.
const builderNodeBytes = 32

// SizeBytes estimates the cache's retained memory: the shared builder's
// node array (the encoded clauses) plus every memoized snapshot. The
// warm-state store (Store) evicts on this estimate.
func (c *Cache) SizeBytes() int64 {
	return int64(c.b.NumNodes())*builderNodeBytes + c.snapBytes
}

func hitFlag(start int) int64 {
	if start > 0 {
		return 1
	}
	return 0
}
