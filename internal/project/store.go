package project

import (
	"container/list"
	"sync"

	"psketch/internal/circuit"
	"psketch/internal/obs"
)

// WarmState is the reusable per-sketch encoding context a synthesis run
// builds and a later run of the *same* sketch can start from: the
// hash-consed circuit builder (which already holds every structural
// constraint and projected clause encoded so far), the hole input
// words allocated on it, and the projection cache with its memoized
// trace-prefix snapshots. All three are bound together — circuit
// literals are only meaningful within their builder — so they are
// checked out and returned as one unit.
//
// Soundness: everything retained here is a fact about the sketch's
// whole candidate space (structural constraints, hash-consed circuit
// nodes, projection snapshots keyed by trace entries), never about one
// job's candidate or schedule, so replaying a warm context for a new
// request of the same (source, target, desugar options) triple yields
// bit-identical encodings — internal/sketches' warm cross-check pins
// verdict parity on the Table 1 rows.
//
// A WarmState is single-goroutine (the Cache owns one persistent
// evaluator); the Store's checkout discipline enforces that at most one
// synthesizer uses it at a time.
type WarmState struct {
	B     *circuit.Builder
	Holes []circuit.Word
	Cache *Cache
}

// SizeBytes estimates the context's retained memory (the store's LRU
// eviction unit): the builder's encoded clauses plus the projection
// cache's snapshots.
func (w *WarmState) SizeBytes() int64 {
	if w == nil || w.Cache == nil {
		return 0
	}
	return w.Cache.SizeBytes()
}

// StoreStats is a point-in-time view of a Store's effectiveness.
type StoreStats struct {
	Hits      int64 // Acquire calls that found an idle context
	Misses    int64 // Acquire calls that found none
	Evictions int64 // contexts dropped by the byte bound
	Entries   int   // idle contexts currently held
	Bytes     int64 // estimated retained bytes of idle contexts
}

// Store is the cross-request warm-state cache: idle WarmStates keyed by
// sketch hash, bounded by total estimated bytes, evicted least-recently
// -used first. It is safe for concurrent use by many synthesizers; a
// context is EXCLUSIVELY checked out by Acquire and only becomes
// shareable again when Release returns it, so the single-goroutine
// contract of Cache is never violated even when identical sketches run
// concurrently (the loser of the Acquire race simply builds cold and
// the last Release wins the idle slot).
//
// A nil *Store is valid and inert: Acquire returns nil, Release drops
// the context.
type Store struct {
	mu       sync.Mutex
	maxBytes int64
	byKey    map[string]*list.Element
	lru      *list.List // front = most recently used; values are *storeEntry
	curBytes int64

	hits, misses, evictions int64

	// Registry counters (nil-safe): warm.hits / warm.misses /
	// warm.evictions accumulate, warm.bytes / warm.entries are gauges.
	cHits, cMisses, cEvict *obs.Counter
	cBytes, cEntries       *obs.Counter
}

type storeEntry struct {
	key  string
	w    *WarmState
	size int64
}

// NewStore builds a warm-state store bounded to maxBytes of estimated
// retained memory (<= 0 means unbounded). Counters are registered in m
// (nil for none) under the warm.* names.
func NewStore(maxBytes int64, m *obs.Metrics) *Store {
	return &Store{
		maxBytes: maxBytes,
		byKey:    make(map[string]*list.Element),
		lru:      list.New(),
		cHits:    m.Counter("warm.hits"),
		cMisses:  m.Counter("warm.misses"),
		cEvict:   m.Counter("warm.evictions"),
		cBytes:   m.Counter("warm.bytes"),
		cEntries: m.Counter("warm.entries"),
	}
}

// Acquire checks out the idle context for key, or returns nil (a miss:
// no context cached, or the cached one is currently checked out by
// another run). The caller owns the returned context until Release.
func (s *Store) Acquire(key string) *WarmState {
	if s == nil || key == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		s.misses++
		s.cMisses.Add(1)
		return nil
	}
	en := el.Value.(*storeEntry)
	s.lru.Remove(el)
	delete(s.byKey, key)
	s.curBytes -= en.size
	s.hits++
	s.cHits.Add(1)
	s.gauges()
	return en.w
}

// Release returns a context to the idle set (typically after a
// synthesis run grew it) and evicts least-recently-used contexts while
// the byte bound is exceeded. If an idle context for key already exists
// — a concurrent run of the same sketch released first — the newly
// released one replaces it (it is at least as warm). Releasing to a nil
// store drops the context.
func (s *Store) Release(key string, w *WarmState) {
	if s == nil || key == "" || w == nil {
		return
	}
	size := w.SizeBytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		old := el.Value.(*storeEntry)
		s.lru.Remove(el)
		delete(s.byKey, key)
		s.curBytes -= old.size
	}
	en := &storeEntry{key: key, w: w, size: size}
	s.byKey[key] = s.lru.PushFront(en)
	s.curBytes += size
	for s.maxBytes > 0 && s.curBytes > s.maxBytes && s.lru.Len() > 0 {
		back := s.lru.Back()
		victim := back.Value.(*storeEntry)
		s.lru.Remove(back)
		delete(s.byKey, victim.key)
		s.curBytes -= victim.size
		s.evictions++
		s.cEvict.Add(1)
	}
	s.gauges()
}

// gauges refreshes the point-in-time registry gauges; callers hold mu.
func (s *Store) gauges() {
	s.cBytes.Set(s.curBytes)
	s.cEntries.Set(int64(s.lru.Len()))
}

// Stats returns the store's counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Entries:   s.lru.Len(),
		Bytes:     s.curBytes,
	}
}
