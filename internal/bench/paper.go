// Package bench regenerates the paper's evaluation artifacts — Table 1
// (candidate-space sizes), Figure 9 (per-test synthesis performance)
// and Figure 10 (log |C| vs. CEGIS iterations) — and prints them next
// to the numbers reported in the paper.
package bench

// PaperFig9 holds the paper's Figure 9 rows (resolvable verdict,
// iteration count, total seconds, total MiB) for side-by-side
// reporting. Times were measured on a 2 GHz Core 2 Duo with SPIN as the
// verifier and are not expected to match in absolute terms.
type PaperRow struct {
	Bench      string
	Test       string
	Resolvable bool
	Itns       int
	TotalSec   float64
	TotalMiB   float64
}

// PaperFig9 is transcribed from Figure 9.
var PaperFig9 = []PaperRow{
	{"queueE1", "ed(ee|dd)", true, 1, 8.79, 54.41},
	{"queueE1", "ed(ed|ed)", true, 1, 9.24, 67.04},
	{"queueE1", "(e|e|e)ddd", true, 1, 13, 72.81},
	{"queueDE1", "ed(ee|dd)", true, 4, 46.97, 135.51},
	{"queueDE1", "ed(ed|ed)", true, 4, 64.18, 172.92},
	{"queueE2", "ed(ed|ed)", true, 5, 114.7, 171.69},
	{"queueE2", "(e|e|e)ddd", true, 8, 249.2, 213.69},
	{"queueDE2", "ed(ed|ed)", true, 10, 3091.37, 489.26},
	{"barrier1", "N=3,B=2", true, 4, 49.74, 177.31},
	{"barrier1", "N=3,B=3", true, 8, 120.21, 398.19},
	{"barrier2", "N=2,B=3", true, 9, 66.46, 153.67},
	{"fineset1", "ar(ar|ar)", true, 2, 130.44, 249},
	{"fineset1", "ar(ar|ar|ar)", true, 1, 363.89, 153.56},
	{"fineset1", "ar(a|r|a|r)", true, 1, 196.52, 259.25},
	{"fineset1", "ar(arar|arar)", true, 1, 165.43, 345.62},
	{"fineset1", "ar(aaaa|rrrr)", true, 2, 225.54, 161.14},
	{"fineset2", "ar(ar|ar)", true, 3, 281.46, 232.38},
	{"fineset2", "ar(ar|ar|ar)", true, 3, 795.19, 376.63},
	{"fineset2", "ar(a|r|a|r)", true, 2, 384.83, 325.26},
	{"fineset2", "ar(arar|arar)", true, 2, 299.97, 346.56},
	{"fineset2", "ar(aaaa|rrrr)", true, 3, 468.7, 563.1},
	{"lazyset", "ar(aa|rr)", true, 12, 179.17, 294.03},
	{"lazyset", "ar(ar|ar)", false, 7, 100.24, 246.81},
	{"dinphilo", "N=3,T=5", true, 4, 34.03, 194.08},
	{"dinphilo", "N=4,T=3", true, 3, 54.46, 158.69},
	{"dinphilo", "N=5,T=3", true, 3, 745.94, 1419.5},
}

// PaperTable1 is Table 1's |C| column as log10 orders of magnitude
// (queueE1 is the exact value 4).
var PaperTable1 = map[string]float64{
	"queueE1":  0.602, // exactly 4
	"queueE2":  6,
	"queueDE1": 3,
	"queueDE2": 8,
	"barrier1": 4,
	"barrier2": 7,
	"fineset1": 4,
	"fineset2": 7,
	"lazyset":  3,
	"dinphilo": 6,
}

// PaperRowFor finds the Figure 9 row for a bench/test pair.
func PaperRowFor(bench, test string) (PaperRow, bool) {
	for _, r := range PaperFig9 {
		if r.Bench == bench && r.Test == test {
			return r, true
		}
	}
	return PaperRow{}, false
}
