package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"

	"psketch/internal/sat"
)

// jsonRow is the machine-readable form of a Figure 9 row: durations in
// milliseconds, errors as strings, field names stable across PRs so the
// checked-in BENCH_*.json files diff cleanly.
type jsonRow struct {
	Bench    string `json:"bench"`
	Test     string `json:"test"`
	Resolved bool   `json:"resolved"`
	Expected bool   `json:"expected"`
	Error    string `json:"error,omitempty"`

	Iterations int     `json:"iterations"`
	LogC       float64 `json:"log10_candidates"`
	TotalMS    float64 `json:"total_ms"`
	SSolveMS   float64 `json:"ssolve_ms"`
	SModelMS   float64 `json:"smodel_ms"`
	VSolveMS   float64 `json:"vsolve_ms"`
	VModelMS   float64 `json:"vmodel_ms"`
	MemMiB     float64 `json:"mem_mib"`

	MCStates       int    `json:"mc_states"`
	MCTrans        int    `json:"mc_trans"`
	MCSymClasses   int    `json:"mc_sym_classes"`
	MCOrbitHits    int64  `json:"mc_orbit_hits"`
	MCVisitedBytes uint64 `json:"mc_visited_bytes"`
	SATVars        int    `json:"sat_vars"`
	SATClauses     int    `json:"sat_clauses"`
	SATConfl       int64  `json:"sat_conflicts"`

	Parallelism    int               `json:"parallelism"`
	SATWorkers     []sat.WorkerStats `json:"sat_workers,omitempty"`
	MCWorkerStates []int             `json:"mc_worker_states,omitempty"`

	SpecSolves  int     `json:"spec_solves"`
	SpecHits    int     `json:"spec_hits"`
	SpecSolveMS float64 `json:"spec_solve_ms"`
	SATExported int64   `json:"sat_exported"`
	SATImported int64   `json:"sat_imported"`
	ProjHits    int64   `json:"proj_hits"`
	ProjMisses  int64   `json:"proj_misses"`
	ProjSaved   int64   `json:"proj_saved_entries"`

	ProofLemmas  int     `json:"proof_lemmas,omitempty"`
	ProofChecked int     `json:"proof_checked,omitempty"`
	ProofCheckMS float64 `json:"proof_check_ms,omitempty"`

	// Emit/rank column (absent unless the sweep ran with
	// -rank-emitted): the resolved candidate's measured ops/sec from
	// its emitted Go load harness.
	ThroughputOpsSec float64 `json:"throughput_ops_sec,omitempty"`

	// Cube-and-conquer columns (absent in reports from single-engine
	// sweeps and pre-PR7 files; omitempty keeps them diff-clean).
	Cubes              int   `json:"cubes,omitempty"`
	CubeWinner         int   `json:"cube_winner,omitempty"`
	CubeStolen         int64 `json:"cube_stolen,omitempty"`
	CubeIters          []int `json:"cube_iters,omitempty"`
	SATBusExported     int64 `json:"sat_bus_exported,omitempty"`
	SATBusImported     int64 `json:"sat_bus_imported,omitempty"`
	CubeRemoteTraces   int64 `json:"cube_remote_traces,omitempty"`
	CubePrunedByRemote int64 `json:"cube_pruned_by_remote,omitempty"`
}

// jsonOptions is the engine + host configuration header of a report.
// A benchmark number is only comparable against another run under the
// same configuration, so everything that shapes the measurement is
// recorded here: engine knobs (parallelism, pipeline, clause sharing,
// POR, proof replay, verifier budget) and the host the run was taken
// on. The host fields use omitempty so reports written before they
// existed (BENCH_pr3.json) still round-trip; readers treat an absent
// field as "unknown", not as a mismatch.
type jsonOptions struct {
	Parallelism        int    `json:"parallelism"`
	Pipeline           bool   `json:"pipeline"`
	ShareClauses       bool   `json:"share_clauses"`
	POR                bool   `json:"por"`
	Symmetry           *bool  `json:"symmetry,omitempty"` // pointer: absent in pre-PR6 reports means unknown, not off
	MCCompress         string `json:"mc_compress,omitempty"`
	TracesPerIteration int    `json:"traces_per_iteration"`
	TimeoutMS          int64  `json:"timeout_ms"`
	Filter             string `json:"filter,omitempty"`

	MCMaxStates int  `json:"mc_max_states,omitempty"`
	Proof       bool `json:"proof,omitempty"`
	Cubes       int  `json:"cubes,omitempty"`
	CubeWorkers int  `json:"cube_workers,omitempty"`
	// Emit/rank knobs: throughput numbers are only comparable between
	// runs that measured the same way, so the gate needs them recorded
	// like the reduction knobs.
	RankEmitted  bool   `json:"rank_emitted,omitempty"`
	MaxSolutions int    `json:"max_solutions,omitempty"`
	GoVersion    string `json:"go_version,omitempty"`
	GOOS         string `json:"goos,omitempty"`
	GOARCH       string `json:"goarch,omitempty"`
	NumCPU       int    `json:"num_cpu,omitempty"`
	GOMAXPROCS   int    `json:"gomaxprocs,omitempty"`
}

// jsonReport is the top-level document pskbench -json writes.
type jsonReport struct {
	Options jsonOptions `json:"options"`
	Rows    []jsonRow   `json:"rows"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteJSON writes the measured rows (and the sweep configuration that
// produced them) to path as indented JSON.
func WriteJSON(path string, rows []Row, opts Options) error {
	var rep jsonReport
	rep.Options.Parallelism = opts.Parallelism
	rep.Options.Pipeline = !opts.NoPipeline
	rep.Options.ShareClauses = !opts.NoShareClauses
	rep.Options.POR = !opts.NoPOR
	symOn := !opts.NoSymmetry
	rep.Options.Symmetry = &symOn
	rep.Options.MCCompress = opts.MCCompress
	rep.Options.TracesPerIteration = opts.TracesPerIteration
	rep.Options.TimeoutMS = opts.Timeout.Milliseconds()
	rep.Options.Filter = opts.Filter
	rep.Options.MCMaxStates = opts.MCMaxStates
	rep.Options.Proof = opts.Proof
	rep.Options.Cubes = opts.Cubes
	rep.Options.CubeWorkers = opts.CubeWorkers
	rep.Options.RankEmitted = opts.RankEmitted
	rep.Options.MaxSolutions = opts.MaxSolutions
	rep.Options.GoVersion = runtime.Version()
	rep.Options.GOOS = runtime.GOOS
	rep.Options.GOARCH = runtime.GOARCH
	rep.Options.NumCPU = runtime.NumCPU()
	rep.Options.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Rows = make([]jsonRow, 0, len(rows))
	for _, r := range rows {
		jr := jsonRow{
			Bench: r.Bench, Test: r.Test, Resolved: r.Resolved, Expected: r.Expected,
			Iterations: r.Itns, LogC: r.LogC,
			TotalMS: ms(r.Total), SSolveMS: ms(r.SSolve), SModelMS: ms(r.SModel),
			VSolveMS: ms(r.VSolve), VModelMS: ms(r.VModel), MemMiB: r.MemMiB,
			MCStates: r.MCStates, MCTrans: r.MCTrans,
			MCSymClasses: r.MCSymClasses, MCOrbitHits: r.MCOrbitHits, MCVisitedBytes: r.MCVisitedBytes,
			SATVars: r.SATVars, SATClauses: r.SATClauses, SATConfl: r.SATConfl,
			Parallelism: r.Parallelism, SATWorkers: r.SATWorkers, MCWorkerStates: r.MCWorkerStates,
			SpecSolves: r.SpecSolves, SpecHits: r.SpecHits, SpecSolveMS: ms(r.SpecSolve),
			SATExported: r.SATExported, SATImported: r.SATImported,
			ProjHits: r.ProjHits, ProjMisses: r.ProjMisses, ProjSaved: r.ProjSaved,
			ProofLemmas: r.ProofLemmas, ProofChecked: r.ProofChecked, ProofCheckMS: ms(r.ProofCheck),
			ThroughputOpsSec: r.Throughput,
			Cubes:            r.Cubes, CubeWinner: r.CubeWinner, CubeStolen: r.CubeStolen,
			CubeIters: r.CubeIters, SATBusExported: r.SATBusExported, SATBusImported: r.SATBusImported,
			CubeRemoteTraces: r.CubeRemoteTraces, CubePrunedByRemote: r.CubePrunedByRemote,
		}
		if r.Err != nil {
			jr.Error = r.Err.Error()
		}
		rep.Rows = append(rep.Rows, jr)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
