package bench

import (
	"fmt"
	"io"
	"math"
	"math/big"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"psketch/internal/core"
	"psketch/internal/cube"
	"psketch/internal/desugar"
	"psketch/internal/emit"
	"psketch/internal/obs"
	"psketch/internal/parser"
	"psketch/internal/sat"
	"psketch/internal/sketches"
)

// Row is one measured Figure 9 row.
type Row struct {
	Bench, Test string
	Resolved    bool
	Expected    bool
	Itns        int
	Total       time.Duration
	SSolve      time.Duration
	SModel      time.Duration
	VSolve      time.Duration
	VModel      time.Duration
	MemMiB      float64
	MCStates    int
	MCTrans     int
	// State-space-reduction columns: symmetry classes on the most
	// symmetric candidate, orbit-representative visited-set hits, and
	// the peak visited-set footprint of any single check.
	MCSymClasses   int
	MCOrbitHits    int64
	MCVisitedBytes uint64
	SATVars        int
	SATClauses     int
	SATConfl       int64
	LogC           float64
	Err            error
	// Per-worker columns (empty at parallelism 1): portfolio wins and
	// conflicts per SAT worker, states expanded per verifier worker.
	Parallelism    int
	SATWorkers     []sat.WorkerStats
	MCWorkerStates []int
	// Pipeline columns: speculative solves launched/adopted and their
	// overlapped wall time; clause-sharing and projection-cache totals.
	SpecSolves  int
	SpecHits    int
	SpecSolve   time.Duration
	SATExported int64
	SATImported int64
	ProjHits    int64
	ProjMisses  int64
	ProjSaved   int64
	// Proof columns (zero unless Options.Proof): lemmas recorded,
	// lemmas RUP-checked, and total replay wall time.
	ProofLemmas  int
	ProofChecked int
	ProofCheck   time.Duration
	// Throughput is the resolved candidate's measured ops/sec from its
	// emitted Go load harness (zero unless Options.RankEmitted).
	Throughput float64
	// Cube-and-conquer columns (zero unless Options.Cubes > 1): actual
	// cube count, winning cube (-1 for NO), cubes run by stealing
	// workers, per-cube iteration counts, and the cross-cube exchange
	// totals (bus clauses, relayed traces, candidates pruned by a
	// remote trace before local verification).
	Cubes              int
	CubeWinner         int
	CubeStolen         int64
	CubeIters          []int
	SATBusExported     int64
	SATBusImported     int64
	CubeRemoteTraces   int64
	CubePrunedByRemote int64
}

// Options configure a benchmark sweep.
type Options struct {
	// Filter restricts benchmarks by name substring ("" = all).
	Filter string
	// Timeout bounds each test's synthesis run (0 = none).
	Timeout time.Duration
	// MCMaxStates overrides the verifier budget (0 = default; the
	// dinphilo N=5 row needs ~60M, like the paper's 746 s SPIN run).
	MCMaxStates int
	// Verbose streams per-iteration progress.
	Verbose func(format string, args ...any)
	// IncludeExtras adds the extension benchmarks (beyond Table 1) to
	// the sweep.
	IncludeExtras bool
	// TracesPerIteration forwards the multi-trace learning extension
	// (default 1 = the paper's single-counterexample loop).
	TracesPerIteration int
	// Parallelism sizes the SAT portfolio and verifier worker pool
	// (0 = core's default, GOMAXPROCS; 1 = the deterministic engine
	// whose numbers the paper comparison is calibrated against).
	Parallelism int
	// NoPOR disables the verifier's partial-order reduction (ablation
	// runs; the reduction is on by default).
	NoPOR bool
	// NoSymmetry disables the verifier's thread-symmetry reduction
	// (ablation; on by default).
	NoSymmetry bool
	// MCCompress selects the verifier's visited-set representation
	// ("", "collapse", or "bitstate"; non-empty forces the verifier
	// sequential).
	MCCompress string
	// NoPipeline disables the speculative solve/verify overlap
	// (ablation; on by default at Parallelism > 1).
	NoPipeline bool
	// NoShareClauses disables portfolio clause sharing (ablation).
	NoShareClauses bool
	// Proof replays every committed UNSAT verdict through the DRAT
	// backward checker (overhead measurement; off by default).
	Proof bool
	// Cubes > 1 runs every test cube-and-conquer (internal/cube): the
	// candidate space splits into that many cubes (rounded down to a
	// power of two) racing in-process, and Parallelism is divided among
	// them. 0/1 keeps the single-engine loop.
	Cubes int
	// CubeWorkers bounds concurrent cube engines (0 = one per cube).
	CubeWorkers int
	// Trace/Metrics forward the observability layer into every run:
	// each RunOne wraps its synthesis in a "bench.run" span (attrs:
	// bench, test) and the CEGIS spans nest under it. Nil disables.
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	// HeapSampleEvery forwards core's heap-sampling cadence. The cmds
	// default it to 1 so MemMiB stays comparable with checked-in
	// baselines; 0 samples once per run.
	HeapSampleEvery int
	// RankEmitted, after each resolved test, lowers the winning
	// candidate to a Go package (internal/emit), builds it, runs its
	// generated load harness, and records the measured ops/sec in
	// Row.Throughput / Stats.Throughput. Needs the go tool on PATH;
	// when it is missing the column stays zero and the sweep goes on.
	RankEmitted bool
	// MaxSolutions is recorded in the report header alongside
	// RankEmitted (the enumerate-all bound the emit pipeline ran
	// with); it does not change the sweep itself.
	MaxSolutions int
}

// logBig computes log10 of a big integer.
func logBig(x *big.Int) float64 {
	if x.Sign() <= 0 {
		return 0
	}
	m := new(big.Float)
	exp := new(big.Float).SetInt(x).MantExp(m)
	mf, _ := m.Float64()
	return math.Log10(mf) + float64(exp)*math.Log10(2)
}

// RunOne compiles and synthesizes one benchmark/test pair.
func RunOne(b *sketches.Benchmark, test string, opts Options) Row {
	row := Row{Bench: b.Name, Test: test, Expected: b.Resolvable[test]}
	src, err := b.Source(test)
	if err != nil {
		row.Err = err
		return row
	}
	prog, err := parser.Parse(src)
	if err != nil {
		row.Err = err
		return row
	}
	sk, err := desugar.Desugar(prog, "Main", b.Opts(test))
	if err != nil {
		row.Err = err
		return row
	}
	row.LogC = logBig(sk.Count)

	maxStates := opts.MCMaxStates
	if b.Name == "dinphilo" && strings.HasPrefix(test, "N=5") && maxStates == 0 {
		maxStates = 60_000_000
	}
	var cancel atomic.Bool
	rsp := opts.Trace.Start(obs.SpanBenchRun, 0)
	endRun := func(status string) {
		if rsp.Active() {
			rsp.End(obs.Str("bench", b.Name), obs.Str("test", test), obs.Str("status", status))
		}
	}
	copts := core.Options{
		MCMaxStates:        maxStates,
		Verbose:            opts.Verbose,
		TracesPerIteration: opts.TracesPerIteration,
		Parallelism:        opts.Parallelism,
		NoPOR:              opts.NoPOR,
		NoSymmetry:         opts.NoSymmetry,
		MCCompress:         opts.MCCompress,
		NoPipeline:         opts.NoPipeline,
		NoShareClauses:     opts.NoShareClauses,
		Proof:              opts.Proof,
		Cancel:             &cancel,
		Trace:              opts.Trace,
		TraceParent:        rsp.ID(),
		Metrics:            opts.Metrics,
		HeapSampleEvery:    opts.HeapSampleEvery,
	}
	type outcome struct {
		res *core.Result
		cr  *cube.Result
		err error
	}
	ch := make(chan outcome, 1)
	if opts.Cubes > 1 {
		// Cube-and-conquer sweep: the requested parallelism is divided
		// among the racing cube engines, mirroring psketch's -cubes.
		total := copts.Parallelism
		if total <= 0 {
			total = runtime.GOMAXPROCS(0)
		}
		cubes := 2
		for cubes*2 <= opts.Cubes {
			cubes *= 2
		}
		copts.Parallelism = total / cubes
		if copts.Parallelism < 1 {
			copts.Parallelism = 1
		}
		copts.Proof = false
		go func() {
			cr, e := cube.Synthesize(sk, cube.Options{
				Cubes: opts.Cubes, Workers: opts.CubeWorkers,
				Proof: opts.Proof, Core: copts,
			})
			ch <- outcome{cr: cr, err: e}
		}()
	} else {
		syn, err := core.New(sk, copts)
		if err != nil {
			endRun("compile_error")
			row.Err = err
			return row
		}
		go func() {
			r, e := syn.Synthesize()
			ch <- outcome{res: r, err: e}
		}()
	}
	var o outcome
	if opts.Timeout > 0 {
		select {
		case o = <-ch:
		case <-time.After(opts.Timeout):
			// Tear the run down cooperatively and join it, so a timed-out
			// benchmark does not leave solver/verifier goroutines running
			// under the next one.
			cancel.Store(true)
			<-ch
			endRun("timeout")
			row.Err = fmt.Errorf("timeout after %v", opts.Timeout)
			return row
		}
	} else {
		o = <-ch
	}
	if o.err != nil {
		endRun("error")
		row.Err = o.err
		return row
	}
	endRun("done")
	res := o.res
	if o.cr != nil {
		// Re-wrap the merged cube outcome as a core result for the
		// shared column extraction, then add the cube columns.
		res = &core.Result{Resolved: o.cr.Resolved, Candidate: o.cr.Candidate, Stats: o.cr.Stats}
		row.Cubes = len(o.cr.PerCube)
		row.CubeWinner = o.cr.Winner
		row.CubeStolen = o.cr.Stolen
		for _, pc := range o.cr.PerCube {
			row.CubeIters = append(row.CubeIters, pc.Stats.Iterations)
			row.CubeRemoteTraces += pc.RemoteTraces
			row.CubePrunedByRemote += pc.PrunedByRemote
		}
	}
	row.SATBusExported = res.Stats.SATBusExported
	row.SATBusImported = res.Stats.SATBusImported
	row.Resolved = res.Resolved
	row.Itns = res.Stats.Iterations
	row.Total = res.Stats.Total
	row.SSolve = res.Stats.SSolve
	row.SModel = res.Stats.SModel
	row.VSolve = res.Stats.VSolve
	row.VModel = res.Stats.VModel
	row.MemMiB = float64(res.Stats.MaxHeap) / (1 << 20)
	row.MCStates = res.Stats.MCStates
	row.MCTrans = res.Stats.MCTrans
	row.MCSymClasses = res.Stats.MCSymClasses
	row.MCOrbitHits = res.Stats.MCOrbitHits
	row.MCVisitedBytes = res.Stats.MCVisitedBytes
	row.SATVars = res.Stats.SATVars
	row.SATClauses = res.Stats.SATClauses
	row.SATConfl = res.Stats.SATConfl
	row.Parallelism = res.Stats.Parallelism
	row.SATWorkers = res.Stats.SATWorkers
	row.MCWorkerStates = res.Stats.MCWorkerStates
	row.SpecSolves = res.Stats.SpecSolves
	row.SpecHits = res.Stats.SpecHits
	row.SpecSolve = res.Stats.SpecSolve
	row.SATExported = res.Stats.SATExported
	row.SATImported = res.Stats.SATImported
	row.ProjHits = res.Stats.ProjHits
	row.ProjMisses = res.Stats.ProjMisses
	row.ProjSaved = res.Stats.ProjSaved
	row.ProofLemmas = res.Stats.ProofLemmas
	row.ProofChecked = res.Stats.ProofChecked
	row.ProofCheck = res.Stats.ProofCheck
	if opts.RankEmitted && res.Resolved {
		rankEmitted(sk, res, &row, opts)
	}
	return row
}

// rankEmitted lowers the resolved candidate to a Go package in a
// scratch directory and measures its generated load harness — the
// emit/rank throughput column. Failures are silent by design: a bench
// sweep must not die because the host lacks a go toolchain or the
// harness has no drivable ops.
func rankEmitted(sk *desugar.Sketch, res *core.Result, row *Row, opts Options) {
	if !emit.HaveGo("") {
		return
	}
	root, err := os.MkdirTemp("", "psketch-emit-")
	if err != nil {
		return
	}
	defer os.RemoveAll(root)
	p, err := emit.Emit(sk, res.Candidate, emit.Options{
		Name: "cand00", Tracer: opts.Trace, Metrics: opts.Metrics,
	})
	if err != nil {
		return
	}
	dir := filepath.Join(root, "cand00")
	if err := p.WriteDir(dir); err != nil {
		return
	}
	ms, err := emit.Rank([]string{dir}, emit.RankOptions{
		Runs: 1, Duration: 200 * time.Millisecond,
		Tracer: opts.Trace, Metrics: opts.Metrics,
	})
	if err != nil || len(ms) == 0 || ms[0].Err != "" {
		return
	}
	res.Stats.Throughput = ms[0].OpsPerSec
	row.Throughput = ms[0].OpsPerSec
}

// RunFig9 sweeps the Figure 9 grid and prints measured-vs-paper rows.
func RunFig9(w io.Writer, opts Options) []Row {
	var rows []Row
	fmt.Fprintf(w, "%-9s %-14s | %-5s %4s %9s %8s %8s %8s %8s %7s | %-5s %4s %9s\n",
		"bench", "test", "res", "itns", "total", "Ssolve", "Smodel", "Vsolve", "Vmodel", "MiB",
		"paper", "itns", "total")
	fmt.Fprintln(w, strings.Repeat("-", 130))
	grid := sketches.All()
	if opts.IncludeExtras {
		grid = append(grid, sketches.Extras()...)
	}
	for _, b := range grid {
		if opts.Filter != "" && !strings.Contains(b.Name, opts.Filter) {
			continue
		}
		for _, test := range b.Tests {
			row := RunOne(b, test, opts)
			rows = append(rows, row)
			pr, hasPaper := PaperRowFor(b.Name, test)
			pres, pit, ptot := "-", "-", "-"
			if hasPaper {
				pres = yesno(pr.Resolvable)
				pit = fmt.Sprintf("%d", pr.Itns)
				ptot = fmt.Sprintf("%.1fs", pr.TotalSec)
			}
			if row.Err != nil {
				fmt.Fprintf(w, "%-9s %-14s | ERROR: %v\n", row.Bench, row.Test, row.Err)
				continue
			}
			fmt.Fprintf(w, "%-9s %-14s | %-5s %4d %9s %8s %8s %8s %8s %7.1f | %-5s %4s %9s\n",
				row.Bench, row.Test, yesno(row.Resolved), row.Itns,
				short(row.Total), short(row.SSolve), short(row.SModel),
				short(row.VSolve), short(row.VModel), row.MemMiB,
				pres, pit, ptot)
			if row.Parallelism > 1 {
				fmt.Fprint(w, workerLine(row))
			}
			if row.Cubes > 0 {
				fmt.Fprint(w, cubeLine(row))
			}
		}
	}
	return rows
}

// workerLine renders the per-worker columns of a parallel run: which
// portfolio workers won the solve races (and their conflict totals),
// and how the verifier states spread over the MC workers.
func workerLine(row Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-14s |   j=%d sat[", "", "", row.Parallelism)
	for i, ws := range row.SATWorkers {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "w%d:%dwin/%dcf/%dexp/%dimp", i, ws.Wins, ws.Conflicts, ws.Exported, ws.Imported)
	}
	b.WriteString("] mc[")
	for i, n := range row.MCWorkerStates {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "w%d:%dst", i, n)
	}
	b.WriteString("]\n")
	fmt.Fprintf(&b, "%-9s %-14s |   pipe[%d spec, %d adopted, %s overlapped] proj[%d hit/%d miss, %d entries saved]\n",
		"", "", row.SpecSolves, row.SpecHits, short(row.SpecSolve),
		row.ProjHits, row.ProjMisses, row.ProjSaved)
	return b.String()
}

// cubeLine renders the cube-and-conquer columns of a -cubes run: the
// winning cube, per-cube iteration spread, queue stealing, and the
// cross-cube exchange totals.
func cubeLine(row Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-14s |   cubes=%d winner=%d stolen=%d iters=%v",
		"", "", row.Cubes, row.CubeWinner, row.CubeStolen, row.CubeIters)
	fmt.Fprintf(&b, " bus[%dexp/%dimp] traces[%d relayed, %d pruned]\n",
		row.SATBusExported, row.SATBusImported, row.CubeRemoteTraces, row.CubePrunedByRemote)
	return b.String()
}

// Table1 prints the candidate-space table next to the paper's.
func Table1(w io.Writer) error {
	fmt.Fprintf(w, "%-9s %-14s %22s %10s %10s\n", "sketch", "test", "|C|", "log10|C|", "paper")
	fmt.Fprintln(w, strings.Repeat("-", 70))
	for _, b := range sketches.All() {
		test := b.Tests[0]
		src, err := b.Source(test)
		if err != nil {
			return err
		}
		prog, err := parser.Parse(src)
		if err != nil {
			return err
		}
		sk, err := desugar.Desugar(prog, "Main", b.Opts(test))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-9s %-14s %22s %10.1f %9.1f\n",
			b.Name, test, sk.Count.String(), logBig(sk.Count), PaperTable1[b.Name])
	}
	return nil
}

// Fig10 prints the log|C|-vs-iterations series (the paper observed an
// approximately linear correlation).
func Fig10(w io.Writer, rows []Row) {
	type pt struct {
		logC float64
		itns int
		name string
	}
	var pts []pt
	for _, r := range rows {
		if r.Err == nil && r.Resolved {
			pts = append(pts, pt{r.LogC, r.Itns, r.Bench + "/" + r.Test})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].logC < pts[j].logC })
	fmt.Fprintf(w, "%-26s %9s %6s\n", "test", "log10|C|", "itns")
	fmt.Fprintln(w, strings.Repeat("-", 45))
	for _, p := range pts {
		bar := strings.Repeat("*", p.itns)
		fmt.Fprintf(w, "%-26s %9.1f %6d %s\n", p.name, p.logC, p.itns, bar)
	}
	// Least-squares slope as the trend indicator.
	if len(pts) >= 2 {
		var sx, sy, sxx, sxy float64
		for _, p := range pts {
			x, y := p.logC, float64(p.itns)
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		n := float64(len(pts))
		den := n*sxx - sx*sx
		if den != 0 {
			slope := (n*sxy - sx*sy) / den
			fmt.Fprintf(w, "\nleast-squares slope: %.2f iterations per decade of |C| (paper: positive, ~linear)\n", slope)
		}
	}
}

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

func short(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
