package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
)

func mustJSON(t *testing.T, rep jsonReport) []byte {
	t.Helper()
	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func report(rows ...jsonRow) jsonReport {
	var rep jsonReport
	rep.Options.Parallelism = 4
	rep.Options.Pipeline = true
	rep.Options.ShareClauses = true
	rep.Options.POR = true
	rep.Options.TracesPerIteration = 1
	rep.Rows = rows
	return rep
}

func row(bench, test string, resolved bool, totalMS float64) jsonRow {
	return jsonRow{Bench: bench, Test: test, Resolved: resolved, Expected: resolved, TotalMS: totalMS}
}

func TestGatePasses(t *testing.T) {
	base := report(row("queueE1", "ed(ed|ed)", true, 40), row("lazyset", "ar(ar|ar)", false, 1200))
	cand := report(row("queueE1", "ed(ed|ed)", true, 90), row("lazyset", "ar(ar|ar)", false, 2400))
	g, err := Gate(mustJSON(t, base), mustJSON(t, cand), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Fatalf("gate failed: %v", g.Failures)
	}
	if g.Compared != 2 {
		t.Fatalf("compared %d rows, want 2", g.Compared)
	}
}

func TestGateVerdictFlipFails(t *testing.T) {
	base := report(row("lazyset", "ar(ar|ar)", false, 1200))
	cand := base
	cand.Rows = []jsonRow{{Bench: "lazyset", Test: "ar(ar|ar)", Resolved: true, Expected: false, TotalMS: 100}}
	g, err := Gate(mustJSON(t, base), mustJSON(t, cand), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() || !strings.Contains(g.Failures[0], "expects") {
		t.Fatalf("verdict flip not caught: %+v", g)
	}
}

func TestGateBaselineDisagreementFails(t *testing.T) {
	// Candidate agrees with its own Expected but not with the baseline
	// verdict — the benchmark table changed out from under the gate.
	base := report(row("lazyset", "ar(ar|ar)", false, 1200))
	cand := report(jsonRow{Bench: "lazyset", Test: "ar(ar|ar)", Resolved: true, Expected: true, TotalMS: 100})
	g, err := Gate(mustJSON(t, base), mustJSON(t, cand), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() || !strings.Contains(g.Failures[0], "baseline resolved") {
		t.Fatalf("baseline disagreement not caught: %+v", g)
	}
}

func TestGateErrorFails(t *testing.T) {
	base := report(row("barrier1", "N=3,B=2", true, 50))
	cand := report(jsonRow{Bench: "barrier1", Test: "N=3,B=2", Error: "timeout after 10m"})
	g, err := Gate(mustJSON(t, base), mustJSON(t, cand), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() || !strings.Contains(g.Failures[0], "errored") {
		t.Fatalf("errored row not caught: %+v", g)
	}
}

func TestGateSlowdownFailsAboveToleranceOnly(t *testing.T) {
	base := report(row("fineset1", "ar(ar|ar)", true, 1000))
	slow := report(row("fineset1", "ar(ar|ar)", true, 3500))
	g, err := Gate(mustJSON(t, base), mustJSON(t, slow), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() {
		t.Fatal("3.5x slowdown passed a 3x gate")
	}
	ok := report(row("fineset1", "ar(ar|ar)", true, 2900))
	if g, err = Gate(mustJSON(t, base), mustJSON(t, ok), GateOptions{}); err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Fatalf("2.9x slowdown failed a 3x gate: %v", g.Failures)
	}
}

func TestGateNoiseFloor(t *testing.T) {
	// 20x regression on a 5ms row is scheduler noise, not a regression.
	base := report(row("queueE1", "ed(ed|ed)", true, 5))
	cand := report(row("queueE1", "ed(ed|ed)", true, 100))
	g, err := Gate(mustJSON(t, base), mustJSON(t, cand), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Fatalf("sub-floor row failed the gate: %v", g.Failures)
	}
	// ...but an explicit tighter floor catches it.
	if g, err = Gate(mustJSON(t, base), mustJSON(t, cand), GateOptions{MinMS: 50}); err != nil {
		t.Fatal(err)
	}
	if g.OK() {
		t.Fatal("50ms floor did not catch a 20x regression at 100ms")
	}
}

func TestGateMissingRow(t *testing.T) {
	base := report(row("queueE1", "ed(ed|ed)", true, 40), row("barrier1", "N=3,B=2", true, 50))
	cand := report(row("queueE1", "ed(ed|ed)", true, 40))
	g, err := Gate(mustJSON(t, base), mustJSON(t, cand), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() || !strings.Contains(g.Failures[0], "missing from candidate") {
		t.Fatalf("missing row not caught: %+v", g)
	}
	// A filtered candidate sweep legitimately covers a subset.
	cand.Options.Filter = "queue"
	if g, err = Gate(mustJSON(t, base), mustJSON(t, cand), GateOptions{}); err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Fatalf("filtered subset failed the gate: %v", g.Failures)
	}
}

func TestGateConfigSkewWarns(t *testing.T) {
	base := report(row("queueE1", "ed(ed|ed)", true, 40))
	cand := report(row("queueE1", "ed(ed|ed)", true, 40))
	cand.Options.Parallelism = 1
	cand.Options.Proof = true
	g, err := Gate(mustJSON(t, base), mustJSON(t, cand), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Fatalf("config skew must warn, not fail: %v", g.Failures)
	}
	if len(g.Warnings) < 2 {
		t.Fatalf("expected parallelism + proof warnings, got %v", g.Warnings)
	}
}

// TestGateAcceptsCheckedInBaseline pins the gate to the real artifact
// CI compares against: BENCH_pr3.json must parse, self-compare clean,
// and tolerate its own lack of the newer host-configuration fields.
func TestGateAcceptsCheckedInBaseline(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_pr3.json")
	if err != nil {
		t.Skipf("baseline not present: %v", err)
	}
	g, err := Gate(data, data, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Fatalf("baseline does not self-compare: %v", g.Failures)
	}
	if len(g.Warnings) != 0 {
		t.Fatalf("self-comparison warned: %v", g.Warnings)
	}
	if g.Compared == 0 {
		t.Fatal("no rows compared against the checked-in baseline")
	}
}

// journalFor builds a minimal run journal: one bench.run root per
// entry plus phase-tagged engine spans whose durations scale with the
// run's wall clock.
func journalFor(runs ...journalRun) []byte {
	var b strings.Builder
	b.WriteString(`{"psketch_journal":1,"meta":{"cmd":"pskbench","parallelism":"4"}}` + "\n")
	id := 0
	for _, r := range runs {
		id++
		root := id
		fmt.Fprintf(&b, `{"name":"bench.run","id":%d,"start_ns":%d,"dur_ns":%d,"attrs":{"bench":%q,"test":%q,"status":%q}}`+"\n",
			root, root*1000, r.ns, r.bench, r.test, r.status)
		id++
		fmt.Fprintf(&b, `{"name":"cegis.verify","id":%d,"parent":%d,"start_ns":%d,"dur_ns":%d,"attrs":{"phase":"vsolve"}}`+"\n",
			id, root, root*1000+1, r.ns*3/4)
		id++
		fmt.Fprintf(&b, `{"name":"cegis.solve","id":%d,"parent":%d,"start_ns":%d,"dur_ns":%d,"attrs":{"phase":"ssolve"}}`+"\n",
			id, root, root*1000+2, r.ns/4)
	}
	return []byte(b.String())
}

type journalRun struct {
	bench, test, status string
	ns                  int64
}

func TestGateJournalsPasses(t *testing.T) {
	base := journalFor(journalRun{"queueE1", "ed(ed|ed)", "done", 400e6})
	cand := journalFor(journalRun{"queueE1", "ed(ed|ed)", "done", 900e6})
	g, err := GateJournals(base, cand, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.OK() {
		t.Fatalf("gate failed: %v", g.Failures)
	}
	if g.Compared == 0 {
		t.Fatal("nothing compared")
	}
}

func TestGateJournalsCatchesRunRegression(t *testing.T) {
	base := journalFor(journalRun{"queueE1", "ed(ed|ed)", "done", 400e6})
	cand := journalFor(journalRun{"queueE1", "ed(ed|ed)", "done", 1300e6})
	g, err := GateJournals(base, cand, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() {
		t.Fatal("3.25x slowdown must fail the default 3x gate")
	}
	if !strings.Contains(g.Failures[0], "queueE1/ed(ed|ed)") {
		t.Fatalf("failure not attributed to the run: %v", g.Failures)
	}
}

// TestGateJournalsCatchesPhaseRegression is the case the -json gate
// cannot see: end-to-end time within tolerance, but one engine phase
// regressed past it.
func TestGateJournalsCatchesPhaseRegression(t *testing.T) {
	base := journalFor(journalRun{"queueE1", "ed(ed|ed)", "done", 400e6})
	// Same wall clock, but verification time quadrupled (solve shrank).
	cand := []byte(`{"psketch_journal":1,"meta":{"cmd":"pskbench","parallelism":"4"}}
{"name":"bench.run","id":1,"start_ns":1000,"dur_ns":400000000,"attrs":{"bench":"queueE1","test":"ed(ed|ed)","status":"done"}}
{"name":"cegis.verify","id":2,"parent":1,"start_ns":1001,"dur_ns":1200000000,"attrs":{"phase":"vsolve"}}
{"name":"cegis.solve","id":3,"parent":1,"start_ns":1002,"dur_ns":100000,"attrs":{"phase":"ssolve"}}
`)
	g, err := GateJournals(base, cand, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() {
		t.Fatal("4x vsolve regression must fail even with total in tolerance")
	}
	if !strings.Contains(strings.Join(g.Failures, "\n"), "phase vsolve") {
		t.Fatalf("failure not attributed to the phase: %v", g.Failures)
	}
}

func TestGateJournalsErroredRunFails(t *testing.T) {
	base := journalFor(journalRun{"queueE1", "ed(ed|ed)", "done", 400e6})
	cand := journalFor(journalRun{"queueE1", "ed(ed|ed)", "timeout", 400e6})
	g, err := GateJournals(base, cand, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.OK() || !strings.Contains(g.Failures[0], "timeout") {
		t.Fatalf("errored run not caught: %+v", g)
	}
}

func TestGateJournalsBadInput(t *testing.T) {
	if _, err := GateJournals([]byte("not json"), []byte("not json"), GateOptions{}); err == nil {
		t.Fatal("garbage journals must error")
	}
}
