package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"psketch/internal/sketches"
)

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"queueE1", "queueE2", "1975680", "dinphilo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunOneQueueE1(t *testing.T) {
	row := RunOne(sketches.QueueE1(), "ed(ee|dd)", Options{Timeout: 2 * time.Minute})
	if row.Err != nil {
		t.Fatal(row.Err)
	}
	if !row.Resolved || row.Itns != 1 {
		t.Fatalf("row %+v", row)
	}
	if row.LogC < 0.5 || row.LogC > 0.7 {
		t.Fatalf("logC %f", row.LogC)
	}
}

func TestRunOneTimeout(t *testing.T) {
	row := RunOne(sketches.QueueDE2(), "ed(ed|ed)", Options{Timeout: time.Millisecond})
	if row.Err == nil || !strings.Contains(row.Err.Error(), "timeout") {
		t.Fatalf("expected timeout, got %+v", row)
	}
}

func TestFig9AndFig10Output(t *testing.T) {
	var buf bytes.Buffer
	rows := RunFig9(&buf, Options{Filter: "queueE", Timeout: 5 * time.Minute})
	if len(rows) != 5 { // queueE1 ×3 + queueE2 ×2
		t.Fatalf("rows %d", len(rows))
	}
	if !strings.Contains(buf.String(), "paper") {
		t.Fatal("paper columns missing")
	}
	buf.Reset()
	Fig10(&buf, rows)
	if !strings.Contains(buf.String(), "slope") {
		t.Fatalf("no trend line:\n%s", buf.String())
	}
}

func TestPaperDataComplete(t *testing.T) {
	// Every benchmark/test in the grid has a paper row, and vice versa.
	for _, b := range sketches.All() {
		for _, test := range b.Tests {
			if _, ok := PaperRowFor(b.Name, test); !ok {
				t.Errorf("no paper row for %s %s", b.Name, test)
			}
		}
		if _, ok := PaperTable1[b.Name]; !ok {
			t.Errorf("no paper Table 1 entry for %s", b.Name)
		}
	}
	for _, r := range PaperFig9 {
		b := sketches.ByName(r.Bench)
		if b == nil {
			t.Errorf("paper row references unknown benchmark %s", r.Bench)
			continue
		}
		found := false
		for _, test := range b.Tests {
			if test == r.Test {
				found = true
			}
		}
		if !found {
			t.Errorf("paper row %s %s not in our grid", r.Bench, r.Test)
		}
	}
}
