package bench

import (
	"encoding/json"
	"fmt"
	"sort"

	"psketch/internal/obs"
)

// GateOptions tune the benchmark regression gate.
type GateOptions struct {
	// Tolerance is the maximum allowed candidate/baseline wall-clock
	// ratio per row (0 = default 3.0). CI runners are noisy and share
	// cores, so this is deliberately loose: the gate exists to catch
	// order-of-magnitude regressions and verdict flips, not 10% drift.
	Tolerance float64
	// MinMS is the noise floor in milliseconds (0 = default 250).
	// A row is only timed against the baseline when at least one side
	// took this long — sub-floor rows are dominated by scheduler and
	// allocator noise at any tolerance.
	MinMS float64
	// MemTolerance is the maximum allowed candidate/baseline ratio of
	// the peak visited-set footprint (mc_visited_bytes, 0 = default
	// 3.0). The footprint is an analytic estimate, not a heap sample,
	// so it is far less noisy than wall clock — but parallel searches
	// still race over which states each claims.
	MemTolerance float64
	// MinBytes is the memory-gate floor (0 = default 8 MiB): rows whose
	// candidate footprint is below it are not memory-gated, since tiny
	// tables are dominated by fixed map overhead.
	MinBytes uint64
}

func (o GateOptions) tolerance() float64 {
	if o.Tolerance <= 0 {
		return 3.0
	}
	return o.Tolerance
}

func (o GateOptions) minMS() float64 {
	if o.MinMS <= 0 {
		return 250
	}
	return o.MinMS
}

func (o GateOptions) memTolerance() float64 {
	if o.MemTolerance <= 0 {
		return 3.0
	}
	return o.MemTolerance
}

func (o GateOptions) minBytes() uint64 {
	if o.MinBytes == 0 {
		return 8 << 20
	}
	return o.MinBytes
}

// GateResult is the outcome of comparing a candidate report against a
// baseline: hard failures (verdict flips, new errors, missing rows,
// out-of-tolerance slowdowns), advisory warnings (configuration skew
// that makes the timing comparison apples-to-oranges), and how many
// rows were actually compared.
type GateResult struct {
	Failures []string
	Warnings []string
	Compared int
}

// OK reports whether the gate passed.
func (g *GateResult) OK() bool { return len(g.Failures) == 0 }

func (g *GateResult) failf(format string, args ...any) {
	g.Failures = append(g.Failures, fmt.Sprintf(format, args...))
}

func (g *GateResult) warnf(format string, args ...any) {
	g.Warnings = append(g.Warnings, fmt.Sprintf(format, args...))
}

// Gate compares a candidate pskbench -json report against a baseline
// one. Verdict disagreements — a row resolving where the baseline (or
// the benchmark's own expectation) said NO, or vice versa — and rows
// erroring where the baseline succeeded fail outright regardless of
// timing. Wall-clock is gated at Tolerance x above the noise floor.
//
// The candidate is allowed to be a subset sweep (pskbench -filter):
// baseline rows with no candidate counterpart only fail the gate when
// the candidate ran unfiltered. Rows new in the candidate are checked
// against their own Expected verdict but have no timing baseline.
//
// Configuration skew (different parallelism, pipeline, clause
// sharing, POR, traces, or host) demotes nothing to a failure but is
// surfaced as warnings, since the timing comparison is then
// unreliable. Header fields absent from an older baseline (host
// info, proof flag) are treated as unknown, not as a mismatch.
func Gate(baseline, candidate []byte, o GateOptions) (*GateResult, error) {
	var base, cand jsonReport
	if err := json.Unmarshal(baseline, &base); err != nil {
		return nil, fmt.Errorf("gate: parsing baseline: %w", err)
	}
	if err := json.Unmarshal(candidate, &cand); err != nil {
		return nil, fmt.Errorf("gate: parsing candidate: %w", err)
	}
	g := &GateResult{}
	compareOptions(g, base.Options, cand.Options)

	byKey := make(map[string]jsonRow, len(base.Rows))
	for _, r := range base.Rows {
		byKey[r.Bench+"/"+r.Test] = r
	}
	seen := make(map[string]bool, len(cand.Rows))
	for _, cr := range cand.Rows {
		key := cr.Bench + "/" + cr.Test
		seen[key] = true
		if cr.Error != "" {
			g.failf("%s: errored: %s", key, cr.Error)
			continue
		}
		if cr.Resolved != cr.Expected {
			g.failf("%s: resolved=%v but the benchmark expects %v", key, cr.Resolved, cr.Expected)
			continue
		}
		br, ok := byKey[key]
		if !ok {
			g.warnf("%s: not in baseline (new row, no timing reference)", key)
			continue
		}
		g.Compared++
		if br.Error == "" && cr.Resolved != br.Resolved {
			g.failf("%s: resolved=%v, baseline resolved=%v", key, cr.Resolved, br.Resolved)
			continue
		}
		tol, floor := o.tolerance(), o.minMS()
		if cr.TotalMS > floor && cr.TotalMS > tol*br.TotalMS {
			g.failf("%s: %.0fms vs baseline %.0fms (%.1fx > %.1fx tolerance)",
				key, cr.TotalMS, br.TotalMS, cr.TotalMS/br.TotalMS, tol)
		}
		// Peak visited-set memory, gated only when both reports carry
		// the column (baselines written before it read back as 0).
		mtol, mfloor := o.memTolerance(), o.minBytes()
		if br.MCVisitedBytes > 0 && cr.MCVisitedBytes > mfloor &&
			float64(cr.MCVisitedBytes) > mtol*float64(br.MCVisitedBytes) {
			g.failf("%s: peak visited set %.1f MiB vs baseline %.1f MiB (%.1fx > %.1fx tolerance)",
				key, float64(cr.MCVisitedBytes)/(1<<20), float64(br.MCVisitedBytes)/(1<<20),
				float64(cr.MCVisitedBytes)/float64(br.MCVisitedBytes), mtol)
		}
	}
	if cand.Options.Filter == "" {
		var missing []string
		for key, br := range byKey {
			if !seen[key] && br.Error == "" {
				missing = append(missing, key)
			}
		}
		sort.Strings(missing)
		for _, key := range missing {
			g.failf("%s: in baseline but missing from candidate", key)
		}
	}
	return g, nil
}

// GateJournals compares two run journals (pskbench -journal output) the
// way Gate compares two -json reports: per-benchmark wall-clock from the
// bench.run spans is gated at Tolerance x above the noise floor, a run
// erroring where the baseline finished fails outright, and the engine's
// per-phase totals (solve, verify, projection) are each gated too — so
// a regression confined to one phase is caught even when the end-to-end
// time hides it. Configuration skew (differing parallelism recorded in
// the journal headers) is surfaced as a warning.
func GateJournals(baseline, candidate []byte, o GateOptions) (*GateResult, error) {
	bj, err := obs.ReadJournalString(string(baseline))
	if err != nil {
		return nil, fmt.Errorf("gate: parsing baseline journal: %w", err)
	}
	cj, err := obs.ReadJournalString(string(candidate))
	if err != nil {
		return nil, fmt.Errorf("gate: parsing candidate journal: %w", err)
	}
	g := &GateResult{}
	if bp, cp := bj.Meta["parallelism"], cj.Meta["parallelism"]; bp != "" && cp != "" && bp != cp {
		g.warnf("config: parallelism %s vs baseline %s — timings not comparable", cp, bp)
	}
	tol, floor := o.tolerance(), o.minMS()

	// Per-benchmark wall clock and verdict, keyed by bench/test attrs.
	type run struct {
		ms     float64
		status string
	}
	runs := func(j *obs.Journal) map[string]run {
		out := map[string]run{}
		for _, r := range j.Roots(obs.SpanBenchRun) {
			key := r.StrAttr("bench") + "/" + r.StrAttr("test")
			out[key] = run{ms: float64(r.Dur) / 1e6, status: r.StrAttr("status")}
		}
		return out
	}
	brs, crs := runs(bj), runs(cj)
	keys := make([]string, 0, len(crs))
	for key := range crs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		cr := crs[key]
		if cr.status != "done" {
			g.failf("%s: run ended with status %q", key, cr.status)
			continue
		}
		br, ok := brs[key]
		if !ok {
			g.warnf("%s: not in baseline journal (no timing reference)", key)
			continue
		}
		g.Compared++
		if cr.ms > floor && br.ms > 0 && cr.ms > tol*br.ms {
			g.failf("%s: %.0fms vs baseline %.0fms (%.1fx > %.1fx tolerance)",
				key, cr.ms, br.ms, cr.ms/br.ms, tol)
		}
	}

	// Per-phase totals across the whole journal. Speculative solving
	// overlaps verification, so spec time is advisory only.
	bt, ct := bj.PhaseTotals(), cj.PhaseTotals()
	for _, p := range obs.Phases {
		bms, cms := float64(bt[p])/1e6, float64(ct[p])/1e6
		if bms == 0 && cms == 0 {
			continue
		}
		g.Compared++
		if cms > floor && bms > 0 && cms > tol*bms {
			if p == obs.PhaseSpec {
				g.warnf("phase %s: %.0fms vs baseline %.0fms (%.1fx; overlapped, not gated)", p, cms, bms, cms/bms)
			} else {
				g.failf("phase %s: %.0fms vs baseline %.0fms (%.1fx > %.1fx tolerance)",
					p, cms, bms, cms/bms, tol)
			}
		}
	}
	return g, nil
}

// compareOptions flags engine-configuration skew between the two
// reports. Zero-valued fields on either side (older reports predate
// the host header) mean "unknown" and are skipped.
func compareOptions(g *GateResult, b, c jsonOptions) {
	if b.Parallelism != c.Parallelism {
		g.warnf("config: parallelism %d vs baseline %d — timings not comparable", c.Parallelism, b.Parallelism)
	}
	if b.Pipeline != c.Pipeline {
		g.warnf("config: pipeline %v vs baseline %v", c.Pipeline, b.Pipeline)
	}
	if b.ShareClauses != c.ShareClauses {
		g.warnf("config: share_clauses %v vs baseline %v", c.ShareClauses, b.ShareClauses)
	}
	if b.POR != c.POR {
		g.warnf("config: por %v vs baseline %v", c.POR, b.POR)
	}
	if b.Symmetry != nil && c.Symmetry != nil && *b.Symmetry != *c.Symmetry {
		g.warnf("config: symmetry %v vs baseline %v", *c.Symmetry, *b.Symmetry)
	}
	if b.MCCompress != c.MCCompress {
		g.warnf("config: mc_compress %q vs baseline %q — memory not comparable", c.MCCompress, b.MCCompress)
	}
	if b.TracesPerIteration != c.TracesPerIteration {
		g.warnf("config: traces_per_iteration %d vs baseline %d", c.TracesPerIteration, b.TracesPerIteration)
	}
	if c.Proof && !b.Proof {
		g.warnf("config: candidate ran with proof replay on, baseline without — expect overhead")
	}
	if b.Cubes != c.Cubes {
		g.warnf("config: cubes %d vs baseline %d — per-test work not comparable", c.Cubes, b.Cubes)
	}
	if b.RankEmitted != c.RankEmitted {
		g.warnf("config: rank_emitted %v vs baseline %v — throughput columns not comparable", c.RankEmitted, b.RankEmitted)
	}
	if b.MaxSolutions != c.MaxSolutions && b.MaxSolutions != 0 && c.MaxSolutions != 0 {
		g.warnf("config: max_solutions %d vs baseline %d", c.MaxSolutions, b.MaxSolutions)
	}
	if b.GoVersion != "" && c.GoVersion != "" && b.GoVersion != c.GoVersion {
		g.warnf("config: %s vs baseline %s", c.GoVersion, b.GoVersion)
	}
	if b.GOARCH != "" && c.GOARCH != "" && b.GOARCH != c.GOARCH {
		g.warnf("config: %s/%s vs baseline %s/%s", c.GOOS, c.GOARCH, b.GOOS, b.GOARCH)
	}
	if b.NumCPU != 0 && c.NumCPU != 0 && b.NumCPU != c.NumCPU {
		g.warnf("config: %d CPUs vs baseline %d — timings not comparable", c.NumCPU, b.NumCPU)
	}
}
