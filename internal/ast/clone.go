package ast

// CloneMode controls how holes, generators and allocation sites are
// treated when cloning.
type CloneMode int

const (
	// CloneFresh resets hole/generator IDs and allocation sites to
	// unassigned, producing independent synthesis choices. Used for
	// repeat replicas and generator-function inlining (§3, §4.1).
	CloneFresh CloneMode = iota
	// CloneShare keeps IDs, so the copy denotes the same synthesis
	// choices as the original. Used when inlining an ordinary sketched
	// function at several call sites (one shared implementation) and
	// when unrolling loops.
	CloneShare
)

// Cloner deep-copies AST fragments. When Mode is CloneFresh it records
// the old→new node mapping for holes and generators, so that side
// constraints referring to the originals can be cloned consistently.
//
// Holes and generators with an assigned ID are deduplicated by ID, not
// by pointer: several distinct nodes carrying the same ID denote the
// same synthesis choice (this happens after reorder encoding, which
// replicates statements), and a fresh clone must keep them unified.
type Cloner struct {
	Mode       Mode
	Holes      map[*Hole]*Hole
	Regens     map[*Regen]*Regen
	holesByID  map[int]*Hole
	regensByID map[int]*Regen
}

// Mode is an alias for CloneMode.
type Mode = CloneMode

// NewCloner returns a cloner in the given mode.
func NewCloner(mode CloneMode) *Cloner {
	return &Cloner{
		Mode:  mode,
		Holes: map[*Hole]*Hole{}, Regens: map[*Regen]*Regen{},
		holesByID: map[int]*Hole{}, regensByID: map[int]*Regen{},
	}
}

// Expr deep-copies an expression.
func (c *Cloner) Expr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Ident:
		cp := *x
		return &cp
	case *IntLit:
		cp := *x
		return &cp
	case *BoolLit:
		cp := *x
		return &cp
	case *NullLit:
		cp := *x
		return &cp
	case *BitsLit:
		cp := *x
		return &cp
	case *Hole:
		if prev, ok := c.Holes[x]; ok {
			return prev
		}
		// In fresh mode, distinct nodes carrying the same assigned ID
		// are pre-renaming copies of one synthesis choice (reorder
		// encoding replicas) and must unify onto one fresh node. In
		// share mode they must stay distinct: the same choice can occur
		// at several inline sites with differently renamed operands.
		if c.Mode == CloneFresh && x.ID != -1 {
			if prev, ok := c.holesByID[x.ID]; ok {
				c.Holes[x] = prev
				return prev
			}
		}
		n := &Hole{P: x.P, Width: x.Width, ID: x.ID}
		if c.Mode == CloneFresh {
			n.ID = -1
		}
		c.Holes[x] = n
		if c.Mode == CloneFresh && x.ID != -1 {
			c.holesByID[x.ID] = n
		}
		return n
	case *Regen:
		if prev, ok := c.Regens[x]; ok {
			return prev
		}
		if c.Mode == CloneFresh && x.ID != -1 {
			if prev, ok := c.regensByID[x.ID]; ok {
				c.Regens[x] = prev
				return prev
			}
		}
		n := &Regen{P: x.P, Text: x.Text, ID: x.ID}
		if c.Mode == CloneFresh {
			n.ID = -1
		}
		for _, ch := range x.Choices {
			n.Choices = append(n.Choices, c.Expr(ch))
		}
		c.Regens[x] = n
		if c.Mode == CloneFresh && x.ID != -1 {
			c.regensByID[x.ID] = n
		}
		return n
	case *Unary:
		return &Unary{P: x.P, Op: x.Op, X: c.Expr(x.X)}
	case *Binary:
		return &Binary{P: x.P, Op: x.Op, X: c.Expr(x.X), Y: c.Expr(x.Y)}
	case *FieldExpr:
		return &FieldExpr{P: x.P, X: c.Expr(x.X), Name: x.Name}
	case *IndexExpr:
		return &IndexExpr{P: x.P, X: c.Expr(x.X), Index: c.Expr(x.Index)}
	case *SliceExpr:
		return &SliceExpr{P: x.P, X: c.Expr(x.X), Start: c.Expr(x.Start), Len: x.Len}
	case *CallExpr:
		n := &CallExpr{P: x.P, Fun: x.Fun}
		for _, a := range x.Args {
			n.Args = append(n.Args, c.Expr(a))
		}
		return n
	case *CastExpr:
		t := *x.Type
		return &CastExpr{P: x.P, Type: &t, X: c.Expr(x.X)}
	case *NewExpr:
		n := &NewExpr{P: x.P, Type: x.Type, Site: -1}
		for _, a := range x.Args {
			n.Args = append(n.Args, c.Expr(a))
		}
		return n
	}
	panic("ast: Cloner.Expr: unknown expression")
}

// Stmt deep-copies a statement.
func (c *Cloner) Stmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch x := s.(type) {
	case *Block:
		return c.Block(x)
	case *DeclStmt:
		t := *x.Type
		return &DeclStmt{P: x.P, Type: &t, Name: x.Name, Init: c.Expr(x.Init)}
	case *AssignStmt:
		return &AssignStmt{P: x.P, LHS: c.Expr(x.LHS), RHS: c.Expr(x.RHS)}
	case *IfStmt:
		return &IfStmt{P: x.P, Cond: c.Expr(x.Cond), Then: c.Block(x.Then), Else: c.Stmt(x.Else)}
	case *WhileStmt:
		return &WhileStmt{P: x.P, Cond: c.Expr(x.Cond), Body: c.Block(x.Body)}
	case *ReturnStmt:
		return &ReturnStmt{P: x.P, Val: c.Expr(x.Val)}
	case *AssertStmt:
		return &AssertStmt{P: x.P, Cond: c.Expr(x.Cond)}
	case *AtomicStmt:
		return &AtomicStmt{P: x.P, Cond: c.Expr(x.Cond), Body: c.Block(x.Body)}
	case *ForkStmt:
		return &ForkStmt{P: x.P, Var: x.Var, N: c.Expr(x.N), Body: c.Block(x.Body)}
	case *ReorderStmt:
		return &ReorderStmt{P: x.P, Body: c.Block(x.Body)}
	case *RepeatStmt:
		return &RepeatStmt{P: x.P, Count: c.Expr(x.Count), Body: c.Stmt(x.Body)}
	case *LockStmt:
		return &LockStmt{P: x.P, Target: c.Expr(x.Target), Unlock: x.Unlock}
	case *ExprStmt:
		return &ExprStmt{P: x.P, X: c.Expr(x.X)}
	}
	panic("ast: Cloner.Stmt: unknown statement")
}

// Block deep-copies a block.
func (c *Cloner) Block(b *Block) *Block {
	if b == nil {
		return nil
	}
	n := &Block{P: b.P}
	for _, s := range b.Stmts {
		n.Stmts = append(n.Stmts, c.Stmt(s))
	}
	return n
}

// CloneExpr deep-copies an expression with fresh holes.
func CloneExpr(e Expr) Expr { return NewCloner(CloneFresh).Expr(e) }

// CloneStmt deep-copies a statement with fresh holes.
func CloneStmt(s Stmt) Stmt { return NewCloner(CloneFresh).Stmt(s) }

// CloneBlock deep-copies a block with fresh holes.
func CloneBlock(b *Block) *Block { return NewCloner(CloneFresh).Block(b) }

// WalkExprs calls f on every expression nested in s, including
// sub-expressions (parents before children).
func WalkExprs(s Stmt, f func(Expr)) {
	switch x := s.(type) {
	case nil:
	case *Block:
		for _, st := range x.Stmts {
			WalkExprs(st, f)
		}
	case *DeclStmt:
		WalkExpr(x.Init, f)
	case *AssignStmt:
		WalkExpr(x.LHS, f)
		WalkExpr(x.RHS, f)
	case *IfStmt:
		WalkExpr(x.Cond, f)
		WalkExprs(x.Then, f)
		WalkExprs(x.Else, f)
	case *WhileStmt:
		WalkExpr(x.Cond, f)
		WalkExprs(x.Body, f)
	case *ReturnStmt:
		WalkExpr(x.Val, f)
	case *AssertStmt:
		WalkExpr(x.Cond, f)
	case *AtomicStmt:
		WalkExpr(x.Cond, f)
		WalkExprs(x.Body, f)
	case *ForkStmt:
		WalkExpr(x.N, f)
		WalkExprs(x.Body, f)
	case *ReorderStmt:
		WalkExprs(x.Body, f)
	case *RepeatStmt:
		WalkExpr(x.Count, f)
		WalkExprs(x.Body, f)
	case *LockStmt:
		WalkExpr(x.Target, f)
	case *ExprStmt:
		WalkExpr(x.X, f)
	}
}

// WalkExpr calls f on e and every sub-expression (parents first).
func WalkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *Regen:
		for _, c := range x.Choices {
			WalkExpr(c, f)
		}
	case *Unary:
		WalkExpr(x.X, f)
	case *Binary:
		WalkExpr(x.X, f)
		WalkExpr(x.Y, f)
	case *FieldExpr:
		WalkExpr(x.X, f)
	case *IndexExpr:
		WalkExpr(x.X, f)
		WalkExpr(x.Index, f)
	case *SliceExpr:
		WalkExpr(x.X, f)
		WalkExpr(x.Start, f)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	case *CastExpr:
		WalkExpr(x.X, f)
	case *NewExpr:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	}
}
