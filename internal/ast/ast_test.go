package ast

import (
	"testing"

	"psketch/internal/token"
)

// buildStmt makes a statement containing a hole, a generator and a
// nested structure for clone tests.
func buildStmt() (*Block, *Hole, *Regen) {
	h := &Hole{Width: 3, ID: 7}
	r := &Regen{Text: "a | b", ID: 8, Choices: []Expr{
		&Ident{Name: "a"}, &Ident{Name: "b"},
	}}
	blk := &Block{Stmts: []Stmt{
		&AssignStmt{LHS: &Ident{Name: "x"}, RHS: h},
		&IfStmt{
			Cond: &Binary{Op: token.EQ, X: r, Y: &IntLit{Val: 1}},
			Then: &Block{Stmts: []Stmt{
				&AssignStmt{LHS: &Ident{Name: "x"}, RHS: h}, // same hole twice
			}},
		},
	}}
	return blk, h, r
}

func collect(b *Block) (holes []*Hole, regens []*Regen) {
	WalkExprs(b, func(e Expr) {
		switch x := e.(type) {
		case *Hole:
			holes = append(holes, x)
		case *Regen:
			regens = append(regens, x)
		}
	})
	return
}

func TestCloneShareKeepsIDs(t *testing.T) {
	blk, _, _ := buildStmt()
	c := NewCloner(CloneShare).Block(blk)
	holes, regens := collect(c)
	if len(holes) != 2 || holes[0].ID != 7 || holes[1].ID != 7 {
		t.Fatalf("holes %v", holes)
	}
	if holes[0] != holes[1] {
		t.Fatal("shared hole node must stay one node within a clone")
	}
	if len(regens) != 1 || regens[0].ID != 8 {
		t.Fatalf("regens %v", regens)
	}
	// The clone must be a different node tree.
	origHoles, _ := collect(blk)
	if origHoles[0] == holes[0] {
		t.Fatal("clone aliases the original")
	}
}

func TestCloneFreshResetsIDs(t *testing.T) {
	blk, _, _ := buildStmt()
	c := NewCloner(CloneFresh).Block(blk)
	holes, regens := collect(c)
	if holes[0].ID != -1 || regens[0].ID != -1 {
		t.Fatal("fresh clone must reset IDs")
	}
	if holes[0] != holes[1] {
		t.Fatal("same-ID nodes must unify under a fresh clone")
	}
}

// Two share-mode clones must NOT unify distinct nodes that happen to
// carry the same ID when cloned separately (the multi-inline-site
// regression: their choice operands differ after renaming).
func TestCloneShareDistinctNodesStayDistinct(t *testing.T) {
	r1 := &Regen{Text: "g", ID: 3, Choices: []Expr{&Ident{Name: "x_site1"}}}
	r2 := &Regen{Text: "g", ID: 3, Choices: []Expr{&Ident{Name: "x_site2"}}}
	blk := &Block{Stmts: []Stmt{
		&AssignStmt{LHS: &Ident{Name: "a"}, RHS: r1},
		&AssignStmt{LHS: &Ident{Name: "b"}, RHS: r2},
	}}
	c := NewCloner(CloneShare).Block(blk)
	_, regens := collect(c)
	if len(regens) != 2 {
		t.Fatalf("regens %d", len(regens))
	}
	if regens[0] == regens[1] {
		t.Fatal("share clone wrongly unified same-ID nodes")
	}
	if regens[0].Choices[0].(*Ident).Name == regens[1].Choices[0].(*Ident).Name {
		t.Fatal("choice operands merged")
	}
}

func TestCloneDeepIndependence(t *testing.T) {
	blk, h, _ := buildStmt()
	c := NewCloner(CloneShare).Block(blk)
	h.Width = 99
	holes, _ := collect(c)
	if holes[0].Width == 99 {
		t.Fatal("clone shares hole storage with original")
	}
}

func TestWalkOrder(t *testing.T) {
	// Parents before children.
	e := &Binary{Op: token.ADD, X: &Ident{Name: "a"}, Y: &Unary{Op: token.SUB, X: &Ident{Name: "b"}}}
	var order []string
	WalkExpr(e, func(x Expr) {
		switch n := x.(type) {
		case *Binary:
			order = append(order, "+")
		case *Unary:
			order = append(order, "-")
		case *Ident:
			order = append(order, n.Name)
		}
	})
	want := "+ a - b"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += " "
		}
		got += s
	}
	if got != want {
		t.Fatalf("order %q", got)
	}
}

func TestProgramLookups(t *testing.T) {
	p := &Program{
		Structs: []*StructDecl{{Name: "S"}},
		Funcs:   []*FuncDecl{{Name: "f"}},
	}
	if p.Struct("S") == nil || p.Struct("T") != nil {
		t.Fatal("Struct lookup")
	}
	if p.Func("f") == nil || p.Func("g") != nil {
		t.Fatal("Func lookup")
	}
}

func TestTypeExprString(t *testing.T) {
	if (&TypeExpr{Name: "int", ArrayLen: 16}).String() != "int[16]" {
		t.Fatal("array type string")
	}
	if (&TypeExpr{Name: "Node"}).String() != "Node" {
		t.Fatal("scalar type string")
	}
	var nilT *TypeExpr
	if nilT.String() != "void" {
		t.Fatal("nil type string")
	}
}

// cloneEverything builds one statement of every kind and clones it in
// both modes, checking structural equality via the walker.
func TestCloneAllStatementKinds(t *testing.T) {
	mk := func() *Block {
		return &Block{Stmts: []Stmt{
			&DeclStmt{Type: &TypeExpr{Name: "int"}, Name: "x", Init: &IntLit{Val: 1}},
			&AssignStmt{LHS: &Ident{Name: "x"}, RHS: &Binary{Op: token.ADD, X: &Ident{Name: "x"}, Y: &IntLit{Val: 2}}},
			&IfStmt{Cond: &BoolLit{Val: true}, Then: &Block{}, Else: &Block{}},
			&WhileStmt{Cond: &Unary{Op: token.NOT, X: &BoolLit{}}, Body: &Block{}},
			&ReturnStmt{Val: &NullLit{}},
			&AssertStmt{Cond: &Binary{Op: token.EQ, X: &Ident{Name: "x"}, Y: &IntLit{Val: 3}}},
			&AtomicStmt{Cond: &BoolLit{Val: true}, Body: &Block{}},
			&ForkStmt{Var: "i", N: &IntLit{Val: 2}, Body: &Block{}},
			&ReorderStmt{Body: &Block{Stmts: []Stmt{
				&ExprStmt{X: &CallExpr{Fun: "AtomicSwap", Args: []Expr{&Ident{Name: "x"}, &IntLit{Val: 0}}}},
			}}},
			&RepeatStmt{Count: &Hole{ID: -1}, Body: &Block{}},
			&LockStmt{Target: &FieldExpr{X: &Ident{Name: "n"}, Name: "next"}},
			&ExprStmt{X: &CastExpr{Type: &TypeExpr{Name: "int"}, X: &SliceExpr{X: &Ident{Name: "b"}, Start: &IntLit{Val: 0}, Len: 2}}},
			&AssignStmt{LHS: &IndexExpr{X: &Ident{Name: "a"}, Index: &IntLit{Val: 1}}, RHS: &NewExpr{Type: "N", Site: 5}},
			&AssignStmt{LHS: &Ident{Name: "s"}, RHS: &BitsLit{Text: "101"}},
		}}
	}
	shape := func(b *Block) []string {
		var out []string
		WalkExprs(b, func(e Expr) {
			out = append(out, typeNameOf(e))
		})
		return out
	}
	orig := mk()
	for _, mode := range []CloneMode{CloneShare, CloneFresh} {
		c := NewCloner(mode).Block(orig)
		a, b := shape(orig), shape(c)
		if len(a) != len(b) {
			t.Fatalf("mode %v: walk lengths differ: %d vs %d", mode, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mode %v: node %d: %s vs %s", mode, i, a[i], b[i])
			}
		}
	}
	// Fresh clone resets alloc sites.
	c := NewCloner(CloneFresh).Block(orig)
	WalkExprs(c, func(e Expr) {
		if n, ok := e.(*NewExpr); ok && n.Site != -1 {
			t.Fatal("fresh clone kept an allocation site")
		}
	})
}

func typeNameOf(e Expr) string {
	switch e.(type) {
	case *Ident:
		return "Ident"
	case *IntLit:
		return "IntLit"
	case *BoolLit:
		return "BoolLit"
	case *NullLit:
		return "NullLit"
	case *BitsLit:
		return "BitsLit"
	case *Hole:
		return "Hole"
	case *Regen:
		return "Regen"
	case *Unary:
		return "Unary"
	case *Binary:
		return "Binary"
	case *FieldExpr:
		return "FieldExpr"
	case *IndexExpr:
		return "IndexExpr"
	case *SliceExpr:
		return "SliceExpr"
	case *CallExpr:
		return "CallExpr"
	case *CastExpr:
		return "CastExpr"
	case *NewExpr:
		return "NewExpr"
	}
	return "?"
}

func TestConvenienceClones(t *testing.T) {
	h := &Hole{ID: 3}
	if CloneExpr(h).(*Hole).ID != -1 {
		t.Fatal("CloneExpr must be fresh")
	}
	s := CloneStmt(&AssertStmt{Cond: &BoolLit{Val: true}})
	if _, ok := s.(*AssertStmt); !ok {
		t.Fatal("CloneStmt kind")
	}
	if CloneBlock(nil) != nil {
		t.Fatal("nil block clone")
	}
}
