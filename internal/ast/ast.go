// Package ast defines the abstract syntax tree of the PSketch language.
package ast

import "psketch/internal/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// TypeExpr is the syntactic form of a type: a base name plus an
// optional fixed array length ("int[16]", "bit[8]", "QueueEntry").
type TypeExpr struct {
	P        token.Pos
	Name     string // "int", "bool", "bit", "void", or a struct name
	ArrayLen int    // 0 => scalar
}

func (t *TypeExpr) Pos() token.Pos { return t.P }

func (t *TypeExpr) String() string {
	if t == nil {
		return "void"
	}
	if t.ArrayLen > 0 {
		return t.Name + "[" + itoa(t.ArrayLen) + "]"
	}
	return t.Name
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Program is a parsed compilation unit.
type Program struct {
	Structs []*StructDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Struct returns the struct declaration with the given name, or nil.
func (p *Program) Struct(name string) *StructDecl {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Func returns the function declaration with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// StructDecl declares a heap record type. Field defaults follow the
// paper's class syntax ("QueueEntry next = null;"); constructor
// arguments bind fields positionally in declaration order for fields
// without defaults.
type StructDecl struct {
	P      token.Pos
	Name   string
	Fields []*Field
}

func (d *StructDecl) Pos() token.Pos { return d.P }

// Field is one struct field with an optional default value.
type Field struct {
	P       token.Pos
	Type    *TypeExpr
	Name    string
	Default Expr // nil => constructor argument, in order
}

func (f *Field) Pos() token.Pos { return f.P }

// GlobalDecl declares a shared global variable.
type GlobalDecl struct {
	P    token.Pos
	Type *TypeExpr
	Name string
	Init Expr // may be nil (zero value / null)
}

func (d *GlobalDecl) Pos() token.Pos { return d.P }

// Param is one function parameter.
type Param struct {
	P    token.Pos
	Type *TypeExpr
	Name string
}

func (p *Param) Pos() token.Pos { return p.P }

// FuncDecl declares a function. Harness functions are synthesis entry
// points; generator functions get fresh holes at every call site (they
// are always inlined).
type FuncDecl struct {
	P          token.Pos
	Generator  bool
	Harness    bool
	Ret        *TypeExpr // nil => void
	Name       string
	Params     []*Param
	Implements string // spec function name, or ""
	Body       *Block
}

func (d *FuncDecl) Pos() token.Pos { return d.P }

// ---------------------------------------------------------------- Stmt

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a brace-delimited statement list.
type Block struct {
	P     token.Pos
	Stmts []Stmt
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	P    token.Pos
	Type *TypeExpr
	Name string
	Init Expr // may be nil
}

// AssignStmt assigns RHS to the l-value LHS.
type AssignStmt struct {
	P   token.Pos
	LHS Expr
	RHS Expr
}

// IfStmt is a conditional; Else may be nil, *Block, or *IfStmt.
type IfStmt struct {
	P    token.Pos
	Cond Expr
	Then *Block
	Else Stmt
}

// WhileStmt is a loop; loops are unrolled to a bound during lowering.
type WhileStmt struct {
	P    token.Pos
	Cond Expr
	Body *Block
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	P   token.Pos
	Val Expr // nil for void
}

// AssertStmt checks a correctness condition.
type AssertStmt struct {
	P    token.Pos
	Cond Expr
}

// AtomicStmt executes Body as one indivisible step; if Cond is non-nil
// the step blocks until Cond holds (a conditional atomic, §4.2).
type AtomicStmt struct {
	P    token.Pos
	Cond Expr // nil => plain atomic section
	Body *Block
}

// ForkStmt spawns N threads each running Body with the index variable
// bound to 0..N-1, and blocks until all terminate (§4.2).
type ForkStmt struct {
	P    token.Pos
	Var  string
	N    Expr
	Body *Block
}

// ReorderStmt lets the synthesizer pick the execution order of the
// statements in Body (§4.1).
type ReorderStmt struct {
	P    token.Pos
	Body *Block
}

// RepeatStmt replicates Body Count times at synthesis time, with fresh
// holes per replica (§3). Count may itself be a hole.
type RepeatStmt struct {
	P     token.Pos
	Count Expr
	Body  Stmt
}

// LockStmt is lock(e) / unlock(e) sugar over conditional atomics
// (Figure 7).
type LockStmt struct {
	P      token.Pos
	Target Expr
	Unlock bool
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	P token.Pos
	X Expr
}

func (s *Block) Pos() token.Pos       { return s.P }
func (s *DeclStmt) Pos() token.Pos    { return s.P }
func (s *AssignStmt) Pos() token.Pos  { return s.P }
func (s *IfStmt) Pos() token.Pos      { return s.P }
func (s *WhileStmt) Pos() token.Pos   { return s.P }
func (s *ReturnStmt) Pos() token.Pos  { return s.P }
func (s *AssertStmt) Pos() token.Pos  { return s.P }
func (s *AtomicStmt) Pos() token.Pos  { return s.P }
func (s *ForkStmt) Pos() token.Pos    { return s.P }
func (s *ReorderStmt) Pos() token.Pos { return s.P }
func (s *RepeatStmt) Pos() token.Pos  { return s.P }
func (s *LockStmt) Pos() token.Pos    { return s.P }
func (s *ExprStmt) Pos() token.Pos    { return s.P }

func (*Block) stmtNode()       {}
func (*DeclStmt) stmtNode()    {}
func (*AssignStmt) stmtNode()  {}
func (*IfStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()  {}
func (*AssertStmt) stmtNode()  {}
func (*AtomicStmt) stmtNode()  {}
func (*ForkStmt) stmtNode()    {}
func (*ReorderStmt) stmtNode() {}
func (*RepeatStmt) stmtNode()  {}
func (*LockStmt) stmtNode()    {}
func (*ExprStmt) stmtNode()    {}

// ---------------------------------------------------------------- Expr

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a variable reference.
type Ident struct {
	P    token.Pos
	Name string
}

// IntLit is an integer literal.
type IntLit struct {
	P   token.Pos
	Val int64
}

// BoolLit is true/false.
type BoolLit struct {
	P   token.Pos
	Val bool
}

// NullLit is the null reference.
type NullLit struct {
	P token.Pos
}

// BitsLit is a quoted bit-array initializer like "11001000", read
// left-to-right as in §3.
type BitsLit struct {
	P    token.Pos
	Text string
}

// Hole is the primitive synthesis hole ?? or ??(w). ID is assigned
// during lowering.
type Hole struct {
	P     token.Pos
	Width int // 0 => context-determined default
	ID    int // -1 until assigned
}

// Regen is a regular-expression expression generator {| e |} (§4.1).
// Text is the raw generator body; Choices is filled by the type checker
// with the type-valid parsed expressions of its bounded language, and
// ID is assigned during lowering.
type Regen struct {
	P       token.Pos
	Text    string
	Choices []Expr
	ID      int // -1 until assigned
}

// Unary is !x or -x.
type Unary struct {
	P  token.Pos
	Op token.Kind
	X  Expr
}

// Binary is a binary operation.
type Binary struct {
	P    token.Pos
	Op   token.Kind
	X, Y Expr
}

// FieldExpr is x.name.
type FieldExpr struct {
	P    token.Pos
	X    Expr
	Name string
}

// IndexExpr is a[i].
type IndexExpr struct {
	P     token.Pos
	X     Expr
	Index Expr
}

// SliceExpr is the sub-array a[i::k] of §3 (k cells starting at i).
type SliceExpr struct {
	P     token.Pos
	X     Expr
	Start Expr
	Len   int
}

// CallExpr is a function or builtin call.
type CallExpr struct {
	P    token.Pos
	Fun  string
	Args []Expr
}

// CastExpr is (int) e, converting a bit array to an integer (§3).
type CastExpr struct {
	P    token.Pos
	Type *TypeExpr
	X    Expr
}

// NewExpr allocates a struct instance; arguments bind the defaultless
// fields in declaration order. Site is the static allocation site id
// assigned during lowering.
type NewExpr struct {
	P    token.Pos
	Type string
	Args []Expr
	Site int // -1 until assigned
}

func (e *Ident) Pos() token.Pos     { return e.P }
func (e *IntLit) Pos() token.Pos    { return e.P }
func (e *BoolLit) Pos() token.Pos   { return e.P }
func (e *NullLit) Pos() token.Pos   { return e.P }
func (e *BitsLit) Pos() token.Pos   { return e.P }
func (e *Hole) Pos() token.Pos      { return e.P }
func (e *Regen) Pos() token.Pos     { return e.P }
func (e *Unary) Pos() token.Pos     { return e.P }
func (e *Binary) Pos() token.Pos    { return e.P }
func (e *FieldExpr) Pos() token.Pos { return e.P }
func (e *IndexExpr) Pos() token.Pos { return e.P }
func (e *SliceExpr) Pos() token.Pos { return e.P }
func (e *CallExpr) Pos() token.Pos  { return e.P }
func (e *CastExpr) Pos() token.Pos  { return e.P }
func (e *NewExpr) Pos() token.Pos   { return e.P }

func (*Ident) exprNode()     {}
func (*IntLit) exprNode()    {}
func (*BoolLit) exprNode()   {}
func (*NullLit) exprNode()   {}
func (*BitsLit) exprNode()   {}
func (*Hole) exprNode()      {}
func (*Regen) exprNode()     {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*FieldExpr) exprNode() {}
func (*IndexExpr) exprNode() {}
func (*SliceExpr) exprNode() {}
func (*CallExpr) exprNode()  {}
func (*CastExpr) exprNode()  {}
func (*NewExpr) exprNode()   {}
