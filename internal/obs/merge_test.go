package obs

import (
	"bytes"
	"testing"
)

// TestMergeJournals checks the structural merge rules: per-input span
// ID offsets that keep parent edges intact, sum-vs-high-water metric
// folding, and metadata annotation.
func TestMergeJournals(t *testing.T) {
	a := &Journal{
		Meta: map[string]string{"cmd": "psketch"},
		Spans: []SpanRecord{
			{ID: 1, Name: "root", Start: 0, Dur: 10},
			{ID: 2, Parent: 1, Name: "child", Start: 1, Dur: 5},
		},
		Metrics: map[string]int64{"cegis.iterations": 3, "heap.max_bytes": 100},
	}
	b := &Journal{
		Meta: map[string]string{"cmd": "psketch-join"},
		Spans: []SpanRecord{
			{ID: 1, Name: "root", Start: 0, Dur: 20},
			{ID: 5, Parent: 1, Name: "child", Start: 2, Dur: 6},
		},
		Metrics: map[string]int64{"cegis.iterations": 4, "heap.max_bytes": 70},
	}
	m := MergeJournals(a, nil, b)
	if len(m.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(m.Spans))
	}
	// b's IDs are offset by a's max ID (2): 1→3, 5→7, parent 1→3.
	if m.Spans[2].ID != 3 || m.Spans[3].ID != 7 || m.Spans[3].Parent != 3 {
		t.Errorf("offset IDs wrong: got %d/%d(parent %d)", m.Spans[2].ID, m.Spans[3].ID, m.Spans[3].Parent)
	}
	if m.Spans[1].Parent != 1 {
		t.Errorf("first journal's parent edge rewritten: %d", m.Spans[1].Parent)
	}
	if got := m.Metrics["cegis.iterations"]; got != 7 {
		t.Errorf("summed counter: got %d, want 7", got)
	}
	if got := m.Metrics["heap.max_bytes"]; got != 100 {
		t.Errorf("high-water counter: got %d, want max 100", got)
	}
	if m.Meta["cmd"] != "psketch" || m.Meta["merged_journals"] != "2" {
		t.Errorf("meta: %v", m.Meta)
	}
	if e := MergeJournals(); len(e.Spans) != 0 || e.Metrics != nil {
		t.Errorf("empty merge not empty: %+v", e)
	}
}

// TestMergeSummarizeGolden pins the psktrace rendering of a merged
// journal pair (the multi-process psktrace invocation).
func TestMergeSummarizeGolden(t *testing.T) {
	a := readTestJournal(t, "sample.jsonl")
	b := readTestJournal(t, "sample2.jsonl")
	var buf bytes.Buffer
	Summarize(&buf, MergeJournals(a, b), 5)
	checkGolden(t, "merged_summary.golden", buf.Bytes())
}
