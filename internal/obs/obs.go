// Package obs is the engine's structured-observability layer: a
// low-overhead hierarchical span tracer and an atomic-counter metrics
// registry, feeding pluggable sinks (a JSONL run-journal writer, an
// in-memory flight recorder, a debug HTTP endpoint).
//
// The paper's Figure 9 reports only end-of-run aggregates; this package
// is what lets a run answer "where did this 40 s synthesis go?" across
// the pipelined CEGIS loop, the SAT portfolio and the sharded model
// checker. cmd/psktrace renders and diffs the journals it produces.
//
// # Cost model
//
// Everything here is built around a nil fast path: a nil *Tracer (and a
// nil *Metrics, and a nil *Counter) is fully functional and does
// nothing. Span is a value type, so starting and ending a span against
// a nil tracer performs no allocation and no atomic operation; hot
// loops additionally guard their attribute construction behind
// Span.Active / an explicit tracer nil check, so the model checker's
// inner DFS pays zero extra allocations when tracing is off (verified
// by the alloc-tracked benchmarks in bench_test.go).
//
// # Concurrency contract
//
// A Tracer may be shared freely: Start/End are safe from any goroutine
// (span IDs come from one atomic counter) and every Sink shipped here
// serializes Emit internally — the portfolio's solver workers and the
// model checker's shard workers emit concurrently. Counters are single
// atomics.
package obs

import (
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one tracer's lifetime. 0 is "no
// span" (the root parent, and the ID of every span of a nil tracer).
type SpanID uint64

// Attr is one span attribute: a key with either an int64 or a string
// value (IsStr selects). Keeping the value unboxed avoids interface
// allocations on the emit path.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// Int makes an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// Str makes a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v, IsStr: true} }

// SpanRecord is a finished span as delivered to sinks and stored in
// journals: times are nanoseconds relative to the tracer's epoch, so
// records from one run are directly comparable.
type SpanRecord struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  int64 // ns since tracer epoch
	Dur    int64 // ns
	Attrs  []Attr
}

// Attr returns the named attribute and whether it is present.
func (r *SpanRecord) Attr(key string) (Attr, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// IntAttr returns the named integer attribute (0 when absent).
func (r *SpanRecord) IntAttr(key string) int64 {
	a, _ := r.Attr(key)
	return a.Int
}

// StrAttr returns the named string attribute ("" when absent).
func (r *SpanRecord) StrAttr(key string) string {
	a, _ := r.Attr(key)
	return a.Str
}

// Sink receives finished spans. Implementations must be safe for
// concurrent Emit (workers end spans from their own goroutines).
type Sink interface {
	Emit(rec SpanRecord)
}

// Tracer hands out hierarchical spans and emits them to a sink. A nil
// Tracer is valid and free: Start returns an inactive Span whose End
// is a no-op.
type Tracer struct {
	sink  Sink
	epoch time.Time
	next  atomic.Uint64
}

// NewTracer builds a tracer emitting to sink (which must not be nil;
// use a nil *Tracer to disable tracing).
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink, epoch: time.Now()}
}

// Epoch returns the tracer's time origin (span Start values are
// nanoseconds since it).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Span is an in-flight span. It is a value: copy it freely, end it
// exactly once. The zero Span (and any span from a nil tracer) is
// inactive.
type Span struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  int64
}

// Start opens a span under parent (SpanID 0 for a root). On a nil
// tracer it returns an inactive span at zero cost.
func (t *Tracer) Start(name string, parent SpanID) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		tr:     t,
		id:     SpanID(t.next.Add(1)),
		parent: parent,
		name:   name,
		start:  int64(time.Since(t.epoch)),
	}
}

// Active reports whether the span will be emitted. Guard attribute
// construction with it in hot paths.
func (s Span) Active() bool { return s.tr != nil }

// ID returns the span's ID (0 when inactive), for parenting children.
func (s Span) ID() SpanID { return s.id }

// End finishes the span and emits it with the given attributes. No-op
// when inactive.
func (s Span) End(attrs ...Attr) {
	if s.tr == nil {
		return
	}
	s.tr.sink.Emit(SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    int64(time.Since(s.tr.epoch)) - s.start,
		Attrs:  attrs,
	})
}

// EndDur finishes the span with an externally measured duration
// (nanoseconds). The CEGIS loop uses this so the span duration and the
// metrics-registry counter it feeds are the same measurement, making
// journal totals and Stats agree exactly.
func (s Span) EndDur(dur time.Duration, attrs ...Attr) {
	if s.tr == nil {
		return
	}
	s.tr.sink.Emit(SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    int64(dur),
		Attrs:  attrs,
	})
}

// multiSink fans Emit out to several sinks.
type multiSink []Sink

func (m multiSink) Emit(rec SpanRecord) {
	for _, s := range m {
		s.Emit(rec)
	}
}

// MultiSink combines sinks; nil entries are dropped. Returns nil when
// nothing remains (so the caller can pass the result straight to
// NewTracer or skip tracing).
func MultiSink(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
