package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Span and attribute names shared between the emitting packages
// (core, sat, mc, project, bench) and the consumers (psktrace, the
// benchgate journal mode, tests). Keeping them here keeps the journal
// vocabulary in one place.
const (
	// AttrPhase tags a span with the Stats phase its duration feeds:
	// every nanosecond counted into Stats.SSolve/SModel/VSolve/VModel/
	// SpecSolve is covered by exactly one span carrying this attribute,
	// which is what makes journal phase totals and Stats agree.
	AttrPhase = "phase"

	PhaseSSolve = "ssolve"
	PhaseSModel = "smodel"
	PhaseVSolve = "vsolve"
	PhaseVModel = "vmodel"
	PhaseSpec   = "spec"

	SpanBenchRun  = "bench.run"       // one benchmark row (attrs: bench, test)
	SpanIteration = "cegis.iteration" // one CEGIS iteration (attr: iter)
)

// PhaseCounter maps a phase tag to the metrics-registry counter that
// accumulates the same nanoseconds ("ssolve" -> "cegis.ssolve_ns").
func PhaseCounter(phase string) string { return "cegis." + phase + "_ns" }

// Phases lists the phase tags in presentation order.
var Phases = []string{PhaseSSolve, PhaseSModel, PhaseVSolve, PhaseVModel, PhaseSpec}

// index maps span IDs to records.
func (j *Journal) index() map[SpanID]*SpanRecord {
	idx := make(map[SpanID]*SpanRecord, len(j.Spans))
	for i := range j.Spans {
		idx[j.Spans[i].ID] = &j.Spans[i]
	}
	return idx
}

// children builds the parent -> children adjacency. Spans whose parent
// is unknown (0, or evicted from a flight-recorder ring) hang off 0.
func (j *Journal) children() map[SpanID][]*SpanRecord {
	idx := j.index()
	ch := make(map[SpanID][]*SpanRecord, len(j.Spans))
	for i := range j.Spans {
		r := &j.Spans[i]
		p := r.Parent
		if _, ok := idx[p]; !ok {
			p = 0
		}
		ch[p] = append(ch[p], r)
	}
	for _, rs := range ch {
		sort.Slice(rs, func(a, b int) bool {
			if rs[a].Start != rs[b].Start {
				return rs[a].Start < rs[b].Start
			}
			return rs[a].ID < rs[b].ID
		})
	}
	return ch
}

// Roots returns the journal's root spans with the given name ("" for
// all roots), in start order.
func (j *Journal) Roots(name string) []*SpanRecord {
	var out []*SpanRecord
	for _, r := range j.children()[0] {
		if name == "" || r.Name == name {
			out = append(out, r)
		}
	}
	return out
}

// SubtreePhaseTotals sums span durations by AttrPhase over the subtree
// rooted at root (inclusive). Only phase-tagged spans count, so nested
// untagged children are never double-counted.
func (j *Journal) SubtreePhaseTotals(root SpanID) map[string]int64 {
	ch := j.children()
	idx := j.index()
	totals := map[string]int64{}
	var walk func(id SpanID)
	walk = func(id SpanID) {
		if r, ok := idx[id]; ok {
			if p := r.StrAttr(AttrPhase); p != "" {
				totals[p] += r.Dur
			}
		}
		for _, c := range ch[id] {
			walk(c.ID)
		}
	}
	walk(root)
	return totals
}

// PhaseTotals sums phase-tagged span durations over the whole journal.
func (j *Journal) PhaseTotals() map[string]int64 {
	totals := map[string]int64{}
	for i := range j.Spans {
		if p := j.Spans[i].StrAttr(AttrPhase); p != "" {
			totals[p] += j.Spans[i].Dur
		}
	}
	return totals
}

// treeNode aggregates spans sharing a name path from the root.
type treeNode struct {
	name     string
	total    int64
	count    int64
	children map[string]*treeNode
}

func (n *treeNode) child(name string) *treeNode {
	if n.children == nil {
		n.children = map[string]*treeNode{}
	}
	c := n.children[name]
	if c == nil {
		c = &treeNode{name: name}
		n.children[name] = c
	}
	return c
}

// tree folds every span into a name-path aggregation.
func (j *Journal) tree() *treeNode {
	ch := j.children()
	root := &treeNode{}
	var walk func(id SpanID, at *treeNode)
	walk = func(id SpanID, at *treeNode) {
		for _, r := range ch[id] {
			n := at.child(r.Name)
			n.total += r.Dur
			n.count++
			walk(r.ID, n)
		}
	}
	walk(0, root)
	return root
}

// fmtNS renders nanoseconds compactly and deterministically.
func fmtNS(ns int64) string {
	if ns < 0 {
		return "-" + fmtNS(-ns)
	}
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// Summarize renders the journal: phase totals cross-checked against
// the metrics trailer, the aggregated time tree, the per-iteration
// table, and the topN hottest span names.
func Summarize(w io.Writer, j *Journal, topN int) {
	fmt.Fprintf(w, "journal: %d span(s)\n", len(j.Spans))

	// Phase totals vs the metrics registry trailer.
	totals := j.PhaseTotals()
	if len(totals) > 0 {
		fmt.Fprintf(w, "\n== phase totals (span time vs metrics registry) ==\n")
		fmt.Fprintf(w, "%-8s %10s %10s %8s\n", "phase", "spans", "metrics", "drift")
		for _, p := range Phases {
			st, ok := totals[p]
			if !ok {
				continue
			}
			ms, mok := int64(0), false
			if j.Metrics != nil {
				ms, mok = j.Metrics[PhaseCounter(p)]
			}
			drift := "-"
			mcol := "-"
			if mok {
				mcol = fmtNS(ms)
				if ms > 0 {
					drift = fmt.Sprintf("%+.1f%%", 100*float64(st-ms)/float64(ms))
				}
			}
			fmt.Fprintf(w, "%-8s %10s %10s %8s\n", p, fmtNS(st), mcol, drift)
		}
		if _, ok := totals[PhaseSpec]; ok {
			fmt.Fprintf(w, "(spec time overlaps verification; it is not on the critical path)\n")
		}
	}

	// Aggregated time tree.
	fmt.Fprintf(w, "\n== time tree ==\n")
	fmt.Fprintf(w, "%10s %6s %10s  %s\n", "total", "count", "avg", "span")
	var render func(n *treeNode, depth int)
	render = func(n *treeNode, depth int) {
		kids := make([]*treeNode, 0, len(n.children))
		for _, c := range n.children {
			kids = append(kids, c)
		}
		sort.Slice(kids, func(a, b int) bool {
			if kids[a].total != kids[b].total {
				return kids[a].total > kids[b].total
			}
			return kids[a].name < kids[b].name
		})
		for _, c := range kids {
			fmt.Fprintf(w, "%10s %6d %10s  %s%s\n",
				fmtNS(c.total), c.count, fmtNS(c.total/c.count),
				strings.Repeat("  ", depth), c.name)
			render(c, depth+1)
		}
	}
	render(j.tree(), 0)

	// Per-iteration table.
	iters := IterationRows(j)
	if len(iters) > 0 {
		cols := iterationColumns(iters)
		fmt.Fprintf(w, "\n== per-iteration table ==\n")
		fmt.Fprintf(w, "%5s %10s", "iter", "total")
		for _, c := range cols {
			fmt.Fprintf(w, " %10s", strings.TrimPrefix(c, "cegis."))
		}
		fmt.Fprintf(w, " %8s %7s\n", "states", "traces")
		for _, it := range iters {
			fmt.Fprintf(w, "%5d %10s", it.Iter, fmtNS(it.Total))
			for _, c := range cols {
				if d, ok := it.Children[c]; ok {
					fmt.Fprintf(w, " %10s", fmtNS(d))
				} else {
					fmt.Fprintf(w, " %10s", "-")
				}
			}
			fmt.Fprintf(w, " %8d %7d\n", it.States, it.Traces)
		}
	}

	// Hottest span names.
	type hot struct {
		name  string
		total int64
		count int64
	}
	byName := map[string]*hot{}
	for i := range j.Spans {
		r := &j.Spans[i]
		h := byName[r.Name]
		if h == nil {
			h = &hot{name: r.Name}
			byName[r.Name] = h
		}
		h.total += r.Dur
		h.count++
	}
	hots := make([]*hot, 0, len(byName))
	for _, h := range byName {
		hots = append(hots, h)
	}
	sort.Slice(hots, func(a, b int) bool {
		if hots[a].total != hots[b].total {
			return hots[a].total > hots[b].total
		}
		return hots[a].name < hots[b].name
	})
	if topN > len(hots) {
		topN = len(hots)
	}
	if topN > 0 {
		fmt.Fprintf(w, "\n== top %d spans by total time ==\n", topN)
		fmt.Fprintf(w, "%10s %6s %10s  %s\n", "total", "count", "avg", "name")
		for _, h := range hots[:topN] {
			fmt.Fprintf(w, "%10s %6d %10s  %s\n", fmtNS(h.total), h.count, fmtNS(h.total/h.count), h.name)
		}
	}
}

// IterRow is one row of the per-iteration table.
type IterRow struct {
	Iter     int64
	Total    int64            // iteration span duration, ns
	Children map[string]int64 // direct-child durations summed by name
	States   int64            // "states" attr (model-checker states)
	Traces   int64            // "traces" attr (counterexamples learned)
}

// IterationRows extracts the cegis.iteration spans in iteration order.
func IterationRows(j *Journal) []IterRow {
	ch := j.children()
	var rows []IterRow
	for i := range j.Spans {
		r := &j.Spans[i]
		if r.Name != SpanIteration {
			continue
		}
		row := IterRow{
			Iter:     r.IntAttr("iter"),
			Total:    r.Dur,
			Children: map[string]int64{},
			States:   r.IntAttr("states"),
			Traces:   r.IntAttr("traces"),
		}
		for _, c := range ch[r.ID] {
			row.Children[c.Name] += c.Dur
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].Iter < rows[b].Iter })
	return rows
}

// iterationColumns picks the child-span columns of the iteration
// table: preferred CEGIS phases first, any others alphabetically.
func iterationColumns(rows []IterRow) []string {
	preferred := []string{"cegis.solve", "cegis.verify", "cegis.project", "cegis.spec"}
	seen := map[string]bool{}
	for _, r := range rows {
		for name := range r.Children {
			seen[name] = true
		}
	}
	var cols []string
	for _, p := range preferred {
		if seen[p] {
			cols = append(cols, p)
			delete(seen, p)
		}
	}
	rest := make([]string, 0, len(seen))
	for name := range seen {
		rest = append(rest, name)
	}
	sort.Strings(rest)
	return append(cols, rest...)
}

// Diff renders the old-vs-new comparison of two journals: aggregated
// tree paths whose totals moved, then changed metrics counters.
func Diff(w io.Writer, old, new *Journal) {
	type flat struct {
		path     string
		oldTotal int64
		newTotal int64
	}
	paths := map[string]*flat{}
	var collect func(n *treeNode, prefix string, isNew bool)
	collect = func(n *treeNode, prefix string, isNew bool) {
		for _, c := range n.children {
			p := prefix + c.name
			f := paths[p]
			if f == nil {
				f = &flat{path: p}
				paths[p] = f
			}
			if isNew {
				f.newTotal += c.total
			} else {
				f.oldTotal += c.total
			}
			collect(c, p+" > ", isNew)
		}
	}
	collect(old.tree(), "", false)
	collect(new.tree(), "", true)

	flats := make([]*flat, 0, len(paths))
	for _, f := range paths {
		flats = append(flats, f)
	}
	sort.Slice(flats, func(a, b int) bool {
		da, db := abs64(flats[a].newTotal-flats[a].oldTotal), abs64(flats[b].newTotal-flats[b].oldTotal)
		if da != db {
			return da > db
		}
		return flats[a].path < flats[b].path
	})
	fmt.Fprintf(w, "== tree diff (old -> new) ==\n")
	fmt.Fprintf(w, "%10s %10s %10s %7s  %s\n", "old", "new", "delta", "ratio", "span path")
	for _, f := range flats {
		ratio := "-"
		if f.oldTotal > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(f.newTotal)/float64(f.oldTotal))
		}
		fmt.Fprintf(w, "%10s %10s %10s %7s  %s\n",
			fmtNS(f.oldTotal), fmtNS(f.newTotal), fmtNS(f.newTotal-f.oldTotal), ratio, f.path)
	}

	if old.Metrics != nil || new.Metrics != nil {
		names := map[string]bool{}
		for k := range old.Metrics {
			names[k] = true
		}
		for k := range new.Metrics {
			names[k] = true
		}
		keys := make([]string, 0, len(names))
		for k := range names {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "\n== metrics diff ==\n")
		fmt.Fprintf(w, "%14s %14s %14s  %s\n", "old", "new", "delta", "counter")
		for _, k := range keys {
			o, n := old.Metrics[k], new.Metrics[k]
			if o == n {
				continue
			}
			fmt.Fprintf(w, "%14d %14d %+14d  %s\n", o, n, n-o, k)
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
