package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"
)

// collectSink records emitted spans in order.
type collectSink struct {
	mu   sync.Mutex
	recs []SpanRecord
}

func (c *collectSink) Emit(rec SpanRecord) {
	c.mu.Lock()
	c.recs = append(c.recs, rec)
	c.mu.Unlock()
}

func TestNestedSpanOrdering(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(sink)
	root := tr.Start("root", 0)
	child := tr.Start("child", root.ID())
	grand := tr.Start("grand", child.ID())
	grand.End(Int("n", 1))
	child.End()
	root.End(Str("status", "done"))

	if len(sink.recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(sink.recs))
	}
	// Spans are emitted at End, so innermost-first.
	names := []string{sink.recs[0].Name, sink.recs[1].Name, sink.recs[2].Name}
	if !reflect.DeepEqual(names, []string{"grand", "child", "root"}) {
		t.Fatalf("emit order %v, want [grand child root]", names)
	}
	g, c, r := sink.recs[0], sink.recs[1], sink.recs[2]
	if g.Parent != c.ID || c.Parent != r.ID || r.Parent != 0 {
		t.Fatalf("parent chain broken: grand.Parent=%d child.ID=%d child.Parent=%d root.ID=%d root.Parent=%d",
			g.Parent, c.ID, c.Parent, r.ID, r.Parent)
	}
	if r.ID == 0 || c.ID == 0 || g.ID == 0 {
		t.Fatal("active spans must have non-zero IDs")
	}
	if r.Start > c.Start || c.Start > g.Start {
		t.Fatalf("start times not monotone down the stack: %d %d %d", r.Start, c.Start, g.Start)
	}
	if g.IntAttr("n") != 1 || r.StrAttr("status") != "done" {
		t.Fatal("attributes lost in emission")
	}
}

func TestNilTracerAndNilMetrics(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", 7)
	if sp.Active() || sp.ID() != 0 {
		t.Fatal("nil-tracer span must be inactive with ID 0")
	}
	sp.End(Int("k", 1)) // must not panic
	sp.EndDur(time.Second)
	if !tr.Epoch().IsZero() {
		t.Fatal("nil tracer epoch should be zero")
	}

	var m *Metrics
	c := m.Counter("x")
	c.Add(1)
	c.Set(2)
	c.Max(3)
	if c.Get() != 0 {
		t.Fatal("nil counter must read 0")
	}
	if m.Snapshot() != nil {
		t.Fatal("nil metrics snapshot should be nil")
	}
}

func TestEndDurOverridesWallClock(t *testing.T) {
	sink := &collectSink{}
	tr := NewTracer(sink)
	sp := tr.Start("solve", 0)
	sp.EndDur(123 * time.Millisecond)
	if got := sink.recs[0].Dur; got != int64(123*time.Millisecond) {
		t.Fatalf("EndDur stored %d, want %d", got, int64(123*time.Millisecond))
	}
}

func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	js := NewJournalSink(&buf, map[string]string{"test": "concurrent"})
	tr := NewTracer(js)
	m := NewMetrics()

	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := m.Counter("n")
			for i := 0; i < each; i++ {
				sp := tr.Start(fmt.Sprintf("w%d", w), 0)
				sp.End(Int("i", int64(i)))
				c.Add(1)
			}
		}(w)
	}
	wg.Wait()
	js.WriteMetrics(m.Snapshot())
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Spans) != workers*each {
		t.Fatalf("got %d spans, want %d", len(j.Spans), workers*each)
	}
	if j.Metrics["n"] != workers*each {
		t.Fatalf("counter n = %d, want %d", j.Metrics["n"], workers*each)
	}
	seen := map[SpanID]bool{}
	for _, r := range j.Spans {
		if seen[r.ID] {
			t.Fatalf("duplicate span ID %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestRingWraparound(t *testing.T) {
	ring := NewRingSink(4)
	tr := NewTracer(ring)
	for i := 1; i <= 10; i++ {
		sp := tr.Start(fmt.Sprintf("s%d", i), 0)
		sp.EndDur(time.Duration(i))
	}
	got := ring.Spans()
	if len(got) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(got))
	}
	for i, r := range got {
		want := fmt.Sprintf("s%d", 7+i)
		if r.Name != want {
			t.Fatalf("ring[%d] = %s, want %s (oldest first)", i, r.Name, want)
		}
	}
	// A partially full ring returns only what was emitted.
	small := NewRingSink(8)
	small.Emit(SpanRecord{ID: 1, Name: "only"})
	if got := small.Spans(); len(got) != 1 || got[0].Name != "only" {
		t.Fatalf("partial ring: %v", got)
	}
	// Dump produces a journal psktrace can read.
	var buf bytes.Buffer
	if err := ring.Dump(&buf, map[string]string{"kind": "flight"}, map[string]int64{"m": 9}); err != nil {
		t.Fatal(err)
	}
	j, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Spans) != 4 || j.Meta["kind"] != "flight" || j.Metrics["m"] != 9 {
		t.Fatalf("dump round-trip: spans=%d meta=%v metrics=%v", len(j.Spans), j.Meta, j.Metrics)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	js := NewJournalSink(&buf, map[string]string{"cmd": "test", "host": "ci"})
	want := []SpanRecord{
		{ID: 1, Parent: 0, Name: "root", Start: 10, Dur: 100,
			Attrs: []Attr{Int("iter", 3), Str("phase", "vsolve")}},
		{ID: 2, Parent: 1, Name: "child", Start: 20, Dur: 30},
	}
	for _, r := range want {
		js.Emit(r)
	}
	js.WriteMetrics(map[string]int64{"cegis.iterations": 3, "mc.states": 1234})
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.String()

	j, err := ReadJournalString(data)
	if err != nil {
		t.Fatal(err)
	}
	if j.Meta["cmd"] != "test" || j.Meta["host"] != "ci" {
		t.Fatalf("meta: %v", j.Meta)
	}
	if j.Metrics["cegis.iterations"] != 3 || j.Metrics["mc.states"] != 1234 {
		t.Fatalf("metrics: %v", j.Metrics)
	}
	if !reflect.DeepEqual(j.Spans, want) {
		t.Fatalf("spans:\n got %+v\nwant %+v", j.Spans, want)
	}

	// Concatenated journals (phases appended to one file) still parse:
	// the first header's meta wins and metrics trailers merge.
	cat, err := ReadJournalString(data + data)
	if err != nil {
		t.Fatalf("concatenated journal: %v", err)
	}
	if len(cat.Spans) != 2*len(want) || cat.Meta["cmd"] != "test" || cat.Metrics["mc.states"] != 1234 {
		t.Fatalf("concatenated journal: spans=%d meta=%v metrics=%v", len(cat.Spans), cat.Meta, cat.Metrics)
	}
}

func TestJournalRejectsGarbage(t *testing.T) {
	if _, err := ReadJournalString("{\"weird\":true}\n"); err == nil {
		t.Fatal("unrecognized line must error")
	}
	if _, err := ReadJournalString("{\"psketch_journal\":99}\n"); err == nil {
		t.Fatal("future version must error")
	}
	if _, err := ReadJournalString("not json"); err == nil {
		t.Fatal("non-JSON must error")
	}
}

func TestMultiSink(t *testing.T) {
	a, b := &collectSink{}, &collectSink{}
	if MultiSink() != nil || MultiSink(nil, nil) != nil {
		t.Fatal("all-nil MultiSink must collapse to nil")
	}
	if got := MultiSink(nil, a); got != Sink(a) {
		t.Fatal("single survivor should be returned unwrapped")
	}
	s := MultiSink(a, nil, b)
	s.Emit(SpanRecord{ID: 1, Name: "x"})
	if len(a.recs) != 1 || len(b.recs) != 1 {
		t.Fatalf("fan-out failed: a=%d b=%d", len(a.recs), len(b.recs))
	}
}

func TestCounterSemantics(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("c")
	c.Add(5)
	c.Add(-2)
	if c.Get() != 3 {
		t.Fatalf("Add: %d", c.Get())
	}
	c.Set(10)
	if c.Get() != 10 {
		t.Fatalf("Set: %d", c.Get())
	}
	c.Max(7)
	if c.Get() != 10 {
		t.Fatal("Max must not lower")
	}
	c.Max(12)
	if c.Get() != 12 {
		t.Fatal("Max must raise")
	}
	if m.Counter("c") != c {
		t.Fatal("Counter handles must be stable")
	}
	m.Counter("a").Set(1)
	var names []string
	m.Do(func(name string, v int64) { names = append(names, name) })
	if !reflect.DeepEqual(names, []string{"a", "c"}) {
		t.Fatalf("Do order: %v", names)
	}
}

func TestServeDebug(t *testing.T) {
	m := NewMetrics()
	m.Counter("cegis.iterations").Set(42)
	srv, err := ServeDebug("127.0.0.1:0", m)
	if err != nil {
		t.Skipf("cannot bind a loopback port: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap["cegis.iterations"] != 42 {
		t.Fatalf("metrics endpoint: %v", snap)
	}

	resp2, err := http.Get("http://" + srv.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint: %s", resp2.Status)
	}
}
