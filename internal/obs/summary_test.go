package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

func readTestJournal(t *testing.T, name string) *Journal {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	j, err := ReadJournalString(string(data))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden output; rerun with -update after verifying.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestSummarizeGolden pins psktrace's summary rendering: phase totals
// with the metrics cross-check, the aggregated time tree, the per-
// iteration table, and the hottest-spans list.
func TestSummarizeGolden(t *testing.T) {
	j := readTestJournal(t, "sample.jsonl")
	var buf bytes.Buffer
	Summarize(&buf, j, 5)
	checkGolden(t, "summary.golden", buf.Bytes())
}

// TestDiffGolden pins psktrace -diff's rendering over a journal pair
// where verification regressed ~2x.
func TestDiffGolden(t *testing.T) {
	old := readTestJournal(t, "sample.jsonl")
	new := readTestJournal(t, "sample2.jsonl")
	var buf bytes.Buffer
	Diff(&buf, old, new)
	checkGolden(t, "diff.golden", buf.Bytes())
}

// TestPhaseTotalsAgree asserts the invariant the golden journal is
// built on: span phase totals equal the metrics-registry counters.
func TestPhaseTotalsAgree(t *testing.T) {
	j := readTestJournal(t, "sample.jsonl")
	totals := j.PhaseTotals()
	for _, p := range Phases {
		if st, mt := totals[p], j.Metrics[PhaseCounter(p)]; st != mt {
			t.Errorf("phase %s: spans %d vs metrics %d", p, st, mt)
		}
	}
}

func TestIterationRows(t *testing.T) {
	j := readTestJournal(t, "sample.jsonl")
	rows := IterationRows(j)
	if len(rows) != 2 {
		t.Fatalf("got %d iteration rows, want 2", len(rows))
	}
	if rows[0].Iter != 1 || rows[1].Iter != 2 {
		t.Fatalf("iteration order: %d, %d", rows[0].Iter, rows[1].Iter)
	}
	if rows[0].States != 1000 || rows[0].Traces != 1 {
		t.Fatalf("row 1 attrs: states=%d traces=%d", rows[0].States, rows[0].Traces)
	}
	if rows[0].Children["cegis.verify"] != 20000000 {
		t.Fatalf("row 1 verify child: %d", rows[0].Children["cegis.verify"])
	}
}
