package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one named atomic metric. A nil *Counter is valid and
// inert, so callers can hold handles unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Set stores v (used for point-in-time gauges like the current
// iteration number, which overwrite rather than accumulate).
func (c *Counter) Set(v int64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Max raises the counter to v if v is larger (peak gauges, e.g. heap
// high-water marks).
func (c *Counter) Max(v int64) {
	if c == nil {
		return
	}
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Get returns the current value (0 on a nil counter).
func (c *Counter) Get() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Metrics is a registry of named counters: get-or-create by name, then
// update lock-free. The expvar-style Snapshot serializes a consistent-
// enough view for the debug endpoint and the journal trailer. A nil
// *Metrics is valid: Counter returns nil and Snapshot is empty.
type Metrics struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{m: make(map[string]*Counter)}
}

// Counter returns the named counter, creating it at zero on first use.
// The returned handle is stable — fetch once, update forever.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c := m.m[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.m[name]; c == nil {
		c = &Counter{}
		m.m[name] = c
	}
	return c
}

// Snapshot returns every counter's current value.
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]int64, len(m.m))
	for name, c := range m.m {
		out[name] = c.Get()
	}
	return out
}

// Do calls f for every counter in name order (expvar.Do's shape).
func (m *Metrics) Do(f func(name string, v int64)) {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f(name, snap[name])
	}
}
