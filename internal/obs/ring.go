package obs

import (
	"io"
	"sync"
)

// RingSink is the flight recorder: a fixed-capacity ring of the most
// recent spans, kept in memory at near-zero cost and dumped only when
// something goes wrong (an error or a timeout), so long runs get
// post-mortem traces without paying for a journal file.
type RingSink struct {
	mu      sync.Mutex
	buf     []SpanRecord
	next    int
	wrapped bool
}

// NewRingSink builds a flight recorder holding the last n spans
// (n < 1 is treated as 1).
func NewRingSink(n int) *RingSink {
	if n < 1 {
		n = 1
	}
	return &RingSink{buf: make([]SpanRecord, n)}
}

// Emit records a span, evicting the oldest once full.
func (s *RingSink) Emit(rec SpanRecord) {
	s.mu.Lock()
	s.buf[s.next] = rec
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.wrapped = true
	}
	s.mu.Unlock()
}

// Spans returns the recorded spans, oldest first.
func (s *RingSink) Spans() []SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.wrapped {
		return append([]SpanRecord(nil), s.buf[:s.next]...)
	}
	out := make([]SpanRecord, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Dump writes the ring's contents to w as a well-formed journal
// (header + spans + optional metrics trailer), so psktrace can read a
// flight-recorder dump like any other journal.
func (s *RingSink) Dump(w io.Writer, meta map[string]string, metrics map[string]int64) error {
	js := NewJournalSink(w, meta)
	for _, rec := range s.Spans() {
		js.Emit(rec)
	}
	js.WriteMetrics(metrics)
	return js.Close()
}
