package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// journalVersion is bumped when the line format changes incompatibly.
const journalVersion = 1

// journalLine is the on-disk shape of every JSONL line. One of three
// kinds, distinguished by which fields are set:
//
//   - header:  {"psketch_journal":1,"meta":{...}}       (first line)
//   - span:    {"name":...,"id":...,"start_ns":...}     (one per span)
//   - metrics: {"metrics":{"cegis.ssolve_ns":123,...}}  (trailer)
//
// Span attributes serialize as a JSON object; values are int64 or
// string, matching Attr's unboxed union.
type journalLine struct {
	Version int               `json:"psketch_journal,omitempty"`
	Meta    map[string]string `json:"meta,omitempty"`

	Name    string         `json:"name,omitempty"`
	ID      uint64         `json:"id,omitempty"`
	Parent  uint64         `json:"parent,omitempty"`
	StartNS int64          `json:"start_ns,omitempty"`
	DurNS   int64          `json:"dur_ns,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`

	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// JournalSink writes spans as JSON Lines to w. Emit is goroutine-safe;
// output is buffered, so Close (or Flush) must run before the
// underlying writer is read or closed. The caller owns w.
type JournalSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJournalSink starts a journal on w, writing the header line with
// the given metadata (nil is fine).
func NewJournalSink(w io.Writer, meta map[string]string) *JournalSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &JournalSink{w: bw, enc: json.NewEncoder(bw)}
	s.encode(journalLine{Version: journalVersion, Meta: meta})
	return s
}

func (s *JournalSink) encode(l journalLine) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(l)
}

// Emit writes one span record.
func (s *JournalSink) Emit(rec SpanRecord) {
	l := journalLine{
		Name:    rec.Name,
		ID:      uint64(rec.ID),
		Parent:  uint64(rec.Parent),
		StartNS: rec.Start,
		DurNS:   rec.Dur,
	}
	if len(rec.Attrs) > 0 {
		l.Attrs = make(map[string]any, len(rec.Attrs))
		for _, a := range rec.Attrs {
			if a.IsStr {
				l.Attrs[a.Key] = a.Str
			} else {
				l.Attrs[a.Key] = a.Int
			}
		}
	}
	s.mu.Lock()
	s.encode(l)
	s.mu.Unlock()
}

// WriteMetrics appends a metrics-snapshot trailer line (typically the
// final registry state; psktrace cross-checks span totals against it).
func (s *JournalSink) WriteMetrics(snap map[string]int64) {
	if len(snap) == 0 {
		return
	}
	s.mu.Lock()
	s.encode(journalLine{Metrics: snap})
	s.mu.Unlock()
}

// Close flushes the buffer and returns the first error seen anywhere
// in the journal's lifetime. It does not close the underlying writer.
func (s *JournalSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Journal is a parsed run journal.
type Journal struct {
	Meta    map[string]string
	Spans   []SpanRecord
	Metrics map[string]int64 // nil when the run wrote no trailer
}

// ReadJournal parses a JSONL journal. Unknown line kinds are rejected;
// multiple metrics trailers merge (later wins), so journals
// concatenated from phases still parse.
func ReadJournal(r io.Reader) (*Journal, error) {
	j := &Journal{}
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	first := true
	for n := 1; ; n++ {
		var l journalLine
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", n, err)
		}
		switch {
		case l.Version != 0:
			if l.Version != journalVersion {
				return nil, fmt.Errorf("obs: journal version %d (reader supports %d)", l.Version, journalVersion)
			}
			if first {
				j.Meta = l.Meta
			}
		case l.Metrics != nil:
			if j.Metrics == nil {
				j.Metrics = make(map[string]int64, len(l.Metrics))
			}
			for k, v := range l.Metrics {
				j.Metrics[k] = v
			}
		case l.Name != "":
			rec := SpanRecord{
				ID:     SpanID(l.ID),
				Parent: SpanID(l.Parent),
				Name:   l.Name,
				Start:  l.StartNS,
				Dur:    l.DurNS,
			}
			if len(l.Attrs) > 0 {
				rec.Attrs = make([]Attr, 0, len(l.Attrs))
				keys := make([]string, 0, len(l.Attrs))
				for k := range l.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					switch v := l.Attrs[k].(type) {
					case string:
						rec.Attrs = append(rec.Attrs, Str(k, v))
					case float64:
						rec.Attrs = append(rec.Attrs, Int(k, int64(v)))
					case json.Number:
						iv, err := v.Int64()
						if err != nil {
							return nil, fmt.Errorf("obs: journal line %d: attr %q: %w", n, k, err)
						}
						rec.Attrs = append(rec.Attrs, Int(k, iv))
					default:
						return nil, fmt.Errorf("obs: journal line %d: attr %q has unsupported type %T", n, k, v)
					}
				}
			}
			j.Spans = append(j.Spans, rec)
		default:
			return nil, fmt.Errorf("obs: journal line %d: unrecognized line", n)
		}
		first = false
	}
	return j, nil
}

// ReadJournalString is ReadJournal over an in-memory journal (tests
// and the psktrace golden files).
func ReadJournalString(s string) (*Journal, error) {
	return ReadJournal(strings.NewReader(s))
}
