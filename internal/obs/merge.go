package obs

import "strconv"

// HighWaterCounters names the registry counters that record peaks
// rather than sums. Everything that folds distributed or multi-journal
// metrics — cube workers merging private registries, MergeJournals
// combining trailers — must Max these and Add the rest, or a
// four-worker run would report four times the real heap high-water.
var HighWaterCounters = map[string]bool{
	"heap.max_bytes":   true,
	"mc.visited_bytes": true,
	"mc.sym_classes":   true,
	"sat.vars":         true,
	"sat.clauses":      true,
}

// MergeJournals combines several run journals — typically one per
// process of a distributed cube run (psketch -serve-cubes and each
// -join worker) — into one. Span IDs are offset per input so the
// merged ID space stays collision-free while every parent/child edge
// is preserved; metrics trailers fold with the HighWaterCounters rule;
// the first journal's metadata wins, annotated with the input count.
// Nil and empty inputs are skipped; merging nothing returns an empty
// journal.
func MergeJournals(js ...*Journal) *Journal {
	out := &Journal{}
	merged := 0
	var base uint64
	for _, j := range js {
		if j == nil {
			continue
		}
		merged++
		if out.Meta == nil && j.Meta != nil {
			out.Meta = make(map[string]string, len(j.Meta)+1)
			for k, v := range j.Meta {
				out.Meta[k] = v
			}
		}
		var maxID uint64
		for _, s := range j.Spans {
			rec := s
			rec.ID = SpanID(uint64(s.ID) + base)
			if s.Parent != 0 {
				rec.Parent = SpanID(uint64(s.Parent) + base)
			}
			if uint64(s.ID) > maxID {
				maxID = uint64(s.ID)
			}
			out.Spans = append(out.Spans, rec)
		}
		base += maxID
		if j.Metrics != nil {
			if out.Metrics == nil {
				out.Metrics = make(map[string]int64, len(j.Metrics))
			}
			for k, v := range j.Metrics {
				if HighWaterCounters[k] {
					if v > out.Metrics[k] {
						out.Metrics[k] = v
					}
				} else {
					out.Metrics[k] += v
				}
			}
		}
	}
	if out.Meta != nil && merged > 1 {
		out.Meta["merged_journals"] = strconv.Itoa(merged)
	}
	return out
}
