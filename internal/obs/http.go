package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the optional live-introspection endpoint behind the
// cmds' -debug-addr flag: GET /metrics returns the registry snapshot
// as JSON, and /debug/pprof/* serves the standard Go profiles. The
// handlers are registered on a private mux, so importing this package
// never touches http.DefaultServeMux.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine exits
	err  error         // its terminal error, read only after done
}

// ServeDebug starts serving m on addr (e.g. "localhost:6060"; ":0"
// picks a free port — see Addr). The server runs until Close.
func ServeDebug(addr string, m *Metrics) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		snap := m.Snapshot()
		if snap == nil {
			snap = map[string]int64{}
		}
		enc.Encode(snap)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "psketch debug endpoint\n\n/metrics\n/debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	d := &DebugServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		if err := d.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			d.err = err
		}
		close(d.done)
	}()
	return d, nil
}

// Addr returns the address actually bound (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Shutdown stops the server gracefully: the listener closes, in-flight
// requests run to completion (bounded by ctx), and the serve goroutine
// is joined so any serve-loop error surfaces instead of vanishing.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	err := d.srv.Shutdown(ctx)
	<-d.done
	if err == nil {
		err = d.err
	}
	return err
}

// Close stops the server immediately (open connections are dropped)
// and joins the serve goroutine. Prefer Shutdown where a context is
// available.
func (d *DebugServer) Close() error {
	err := d.srv.Close()
	<-d.done
	if err == nil {
		err = d.err
	}
	return err
}
