package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the optional live-introspection endpoint behind the
// cmds' -debug-addr flag: GET /metrics returns the registry snapshot
// as JSON, and /debug/pprof/* serves the standard Go profiles. The
// handlers are registered on a private mux, so importing this package
// never touches http.DefaultServeMux.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts serving m on addr (e.g. "localhost:6060"; ":0"
// picks a free port — see Addr). The server runs until Close.
func ServeDebug(addr string, m *Metrics) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		snap := m.Snapshot()
		if snap == nil {
			snap = map[string]int64{}
		}
		enc.Encode(snap)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "psketch debug endpoint\n\n/metrics\n/debug/pprof/\n")
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the address actually bound (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
