package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// JobView is the wire rendering of a job (GET /v1/jobs/{id} and the
// POST /v1/jobs response).
type JobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Target string `json:"target"`
	// Hash is the sketch hash — the warm-store key, stable across
	// submissions of the same sketch.
	Hash string `json:"sketch_hash"`
	// Count is |C|, the candidate-space size, as a decimal string.
	Count     string     `json:"candidate_count"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	EventsURL string     `json:"events_url"`

	// Terminal fields.
	Resolved    *bool            `json:"resolved,omitempty"`
	Code        string           `json:"code,omitempty"`
	Stats       *StatsView       `json:"stats,omitempty"`
	Certificate *CertificateView `json:"certificate,omitempty"`
	Error       string           `json:"error,omitempty"`
}

// StatsView is the summary slice of psketch.Stats worth shipping to
// clients (full stats live in the job's journal trailer).
type StatsView struct {
	Iterations int     `json:"iterations"`
	TotalMS    float64 `json:"total_ms"`
	SATConfl   int64   `json:"sat_conflicts"`
	MCStates   int     `json:"mc_states"`
	// WarmStart reports the run checked its encoding context out of the
	// cross-request warm store; ProjHits counts projection encodings
	// that restored a memoized trace prefix during this run.
	WarmStart bool  `json:"warm_start"`
	ProjHits  int64 `json:"proj_hits"`
}

// CertificateView is the DRAT-certificate metadata attached to a
// certified NO verdict. The certificate was replayed through the
// backward checker before the verdict committed; these are its shape.
type CertificateView struct {
	Premises    int `json:"premises"`
	Assumptions int `json:"assumptions"`
	Lemmas      int `json:"lemmas"`
}

// view renders the job under its lock.
func (j *Job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.ID,
		State:     string(j.state),
		Target:    j.Target,
		Hash:      j.Hash,
		Count:     j.Count,
		Submitted: j.Submitted,
		EventsURL: "/v1/jobs/" + j.ID + "/events",
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.res != nil {
		r := j.res.Resolved
		v.Resolved = &r
		v.Code = j.res.Code
		v.Stats = &StatsView{
			Iterations: j.res.Stats.Iterations,
			TotalMS:    float64(j.res.Stats.Total) / 1e6,
			SATConfl:   j.res.Stats.SATConfl,
			MCStates:   j.res.Stats.MCStates,
			WarmStart:  j.res.Stats.WarmStart,
			ProjHits:   j.res.Stats.ProjHits,
		}
		if c := j.res.Certificate; c != nil {
			v.Certificate = &CertificateView{
				Premises:    len(c.Premises),
				Assumptions: len(c.Assumptions),
				Lemmas:      c.NumLemmas(),
			}
		}
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a sketch; 201, 400, 429, or 503
//	GET    /v1/jobs             list all jobs (submission order)
//	GET    /v1/jobs/{id}        job status + terminal result
//	GET    /v1/jobs/{id}/events NDJSON event stream (replay + follow)
//	DELETE /v1/jobs/{id}        cooperative cancel; 202
//	GET    /healthz             liveness ("ok" / "draining")
//	GET    /metrics             server + warm-store counters, JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		var reqErr *RequestError
		switch {
		case errors.As(err, &reqErr):
			writeError(w, http.StatusBadRequest, "%s", reqErr.Msg)
		case errors.Is(err, errQueueFull):
			// The backpressure contract: the client should retry after
			// roughly one job's worth of service time.
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusTooManyRequests, "intake queue full (depth %d); retry later", s.cfg.QueueDepth)
		case errors.Is(err, errDraining):
			writeError(w, http.StatusServiceUnavailable, "server is draining")
		default:
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusCreated, j.view())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "state": string(j.State())})
}

// handleEvents streams the job's event history and then follows live
// emissions as NDJSON, one event per line, flushed per line. The stream
// ends when the job reaches a terminal state or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	next := 0
	for {
		lines, wake, closed := j.hub.snapshot(next)
		for _, line := range lines {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		next += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if closed {
			// The hub never publishes after close, so what we just
			// wrote was the full history.
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// handleMetrics snapshots the server registry — job lifecycle counters,
// live queue depth, and the warm store's warm.* counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.cQueueDepth.Set(int64(s.queue.Len()))
	snap := s.met.Snapshot()
	if snap == nil {
		snap = map[string]int64{}
	}
	writeJSON(w, http.StatusOK, snap)
}
