// Package service is psketchd's engine room: synthesis-as-a-service on
// top of the psketch library. It owns the bounded batched intake queue
// and fixed worker array (admission control, backpressure, graceful
// drain), the per-job observability plumbing (event streaming straight
// from each job's obs tracer, optional per-job journal files), and the
// cross-request warm-state cache (psketch.WarmStore) that lets repeat
// submissions of one sketch start with earlier runs' projection
// prefixes memoized. cmd/psketchd is a thin flag-parsing shell around
// Server + Handler.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"psketch"
	"psketch/internal/obs"
)

// Config sizes the service. Zero fields take the documented defaults.
type Config struct {
	// Workers is the fixed worker-array size: at most this many jobs
	// synthesize concurrently (default 2). Each job additionally runs
	// its own internal parallelism, so total CPU use is roughly
	// Workers × per-job Parallelism.
	Workers int
	// QueueDepth bounds the intake queue; submissions beyond it are
	// rejected with 429 (default 64).
	QueueDepth int
	// Batch is the largest batch one worker pulls from the queue in a
	// single critical section (default 8).
	Batch int
	// JobTimeout caps any job's wall clock; per-job timeout_ms requests
	// are clamped to it (default 5m).
	JobTimeout time.Duration
	// MaxMCStates / MaxIterations cap the per-job engine budgets
	// (defaults 4,000,000 and 256).
	MaxMCStates   int
	MaxIterations int
	// MaxParallelism caps per-job engine parallelism (default
	// GOMAXPROCS); the default per-job value is MaxParallelism/Workers,
	// at least 1.
	MaxParallelism int
	// NoWarmCache disables the cross-request warm-state cache (the
	// ablation lever for measuring what warm starts buy).
	NoWarmCache bool
	// WarmBytes bounds the warm store's estimated retained memory
	// (default 256 MiB; <= 0 keeps the default — pass NoWarmCache to
	// turn the cache off).
	WarmBytes int64
	// JournalDir, when set, receives one JSONL journal per job
	// (job-<id>.jsonl, psktrace-compatible) with a metrics trailer.
	JournalDir string
	// Verbose receives server progress lines when non-nil.
	Verbose func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.MaxMCStates <= 0 {
		c.MaxMCStates = 4_000_000
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 256
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.WarmBytes <= 0 {
		c.WarmBytes = 256 << 20
	}
	if c.Verbose == nil {
		c.Verbose = func(string, ...any) {}
	}
	return c
}

// RequestError is an admission failure the client caused (empty or
// unparseable sketch, unknown target); the HTTP layer maps it to 400.
type RequestError struct{ Msg string }

func (e *RequestError) Error() string { return e.Msg }

func badRequest(format string, args ...any) error {
	return &RequestError{Msg: fmt.Sprintf(format, args...)}
}

// errDraining rejects submissions once drain began; the HTTP layer maps
// it to 503.
var errDraining = errors.New("service: server is draining")

// countCacheCap bounds the cross-request |C| cache; on overflow the
// whole table is dropped (the projection cache's own idiom).
const countCacheCap = 4096

// Server runs synthesis jobs on a bounded worker pool fed by the
// batched intake queue. Build one with New, expose it with Handler,
// stop it with Drain.
type Server struct {
	cfg   Config
	met   *obs.Metrics
	warm  *psketch.WarmStore
	queue *jobQueue
	wg    sync.WaitGroup

	draining atomic.Bool

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	seq    int64
	counts map[string]string // sketch hash → |C| (cross-request)

	cSubmitted, cRejectedFull, cRejectedDraining, cRejectedInvalid *obs.Counter
	cDone, cFailed, cCanceled                                      *obs.Counter
	cRunning, cQueueDepth                                          *obs.Counter
}

// New builds the server and starts its worker array.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	met := obs.NewMetrics()
	s := &Server{
		cfg:    cfg,
		met:    met,
		queue:  newJobQueue(cfg.QueueDepth),
		jobs:   make(map[string]*Job),
		counts: make(map[string]string),

		cSubmitted:        met.Counter("jobs.submitted"),
		cRejectedFull:     met.Counter("jobs.rejected_full"),
		cRejectedDraining: met.Counter("jobs.rejected_draining"),
		cRejectedInvalid:  met.Counter("jobs.rejected_invalid"),
		cDone:             met.Counter("jobs.done"),
		cFailed:           met.Counter("jobs.failed"),
		cCanceled:         met.Counter("jobs.canceled"),
		cRunning:          met.Counter("jobs.running"),
		cQueueDepth:       met.Counter("queue.depth"),
	}
	if !cfg.NoWarmCache {
		s.warm = psketch.NewWarmStore(cfg.WarmBytes, met)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the server's registry (the /metrics endpoint; the
// warm store's counters live here too).
func (s *Server) Metrics() *obs.Metrics { return s.met }

// WarmStats returns the warm store's counters (zero when disabled).
func (s *Server) WarmStats() psketch.WarmStats { return s.warm.Stats() }

// jobOptions maps the request's engine surface onto psketch.Options,
// clamping every budget to the server's caps.
func (s *Server) jobOptions(o JobOptions) (psketch.Options, time.Duration) {
	opts := psketch.Options{
		IntWidth:           o.IntWidth,
		HoleWidth:          o.HoleWidth,
		LoopBound:          o.LoopBound,
		MaxRepeat:          o.MaxRepeat,
		MaxIterations:      o.MaxIterations,
		MCMaxStates:        o.MCMaxStates,
		TracesPerIteration: o.Traces,
		Parallelism:        o.Parallelism,
		Proof:              o.Proof,
		NoPipeline:         o.NoPipeline,
		NoShareClauses:     o.NoShare,
		NoPOR:              o.NoPOR,
		NoSymmetry:         o.NoSymmetry,
		Warm:               s.warm,
	}
	if o.Quadratic {
		opts.Encoding = psketch.EncodeQuadratic
	}
	if opts.MaxIterations <= 0 || opts.MaxIterations > s.cfg.MaxIterations {
		opts.MaxIterations = s.cfg.MaxIterations
	}
	if opts.MCMaxStates <= 0 || opts.MCMaxStates > s.cfg.MaxMCStates {
		opts.MCMaxStates = s.cfg.MaxMCStates
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = s.cfg.MaxParallelism / s.cfg.Workers
	}
	if opts.Parallelism > s.cfg.MaxParallelism {
		opts.Parallelism = s.cfg.MaxParallelism
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	timeout := s.cfg.JobTimeout
	if o.TimeoutMS > 0 && time.Duration(o.TimeoutMS)*time.Millisecond < timeout {
		timeout = time.Duration(o.TimeoutMS) * time.Millisecond
	}
	return opts, timeout
}

// Submit admits one job: validate and compile the sketch (cheap —
// parse + desugar), answer |C| from the cross-request count cache when
// the sketch hash is known, and enqueue. Admission errors are
// RequestError (client), errDraining, or errQueueFull (backpressure).
func (s *Server) Submit(req SubmitRequest) (*Job, error) {
	if s.draining.Load() {
		s.cRejectedDraining.Add(1)
		return nil, errDraining
	}
	if strings.TrimSpace(req.Src) == "" {
		s.cRejectedInvalid.Add(1)
		return nil, badRequest("empty sketch source")
	}
	target := req.Target
	if target == "" {
		t, err := psketch.DetectTarget(req.Src)
		if err != nil {
			s.cRejectedInvalid.Add(1)
			return nil, badRequest("%v", err)
		}
		target = t
	}
	opts, timeout := s.jobOptions(req.Options)
	hash := psketch.SketchHash(req.Src, target, opts)
	count, cached := s.cachedCount(hash)
	if !cached {
		sk, err := psketch.Compile(req.Src, target, opts)
		if err != nil {
			s.cRejectedInvalid.Add(1)
			return nil, badRequest("%v", err)
		}
		count = sk.CandidateCount().String()
		s.storeCount(hash, count)
	}

	j := &Job{
		Src:       req.Src,
		Target:    target,
		Hash:      hash,
		Count:     count,
		Submitted: time.Now(),
		opts:      opts,
		timeout:   timeout,
		hub:       newHub(),
		state:     StateQueued,
	}
	s.mu.Lock()
	s.seq++
	j.ID = fmt.Sprintf("j%06d", s.seq)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	j.hub.publish(Event{Event: "queued"})
	if err := s.queue.Push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		if errors.Is(err, errQueueFull) {
			s.cRejectedFull.Add(1)
		} else {
			s.cRejectedDraining.Add(1)
			err = errDraining
		}
		return nil, err
	}
	s.cSubmitted.Add(1)
	s.cQueueDepth.Set(int64(s.queue.Len()))
	s.cfg.Verbose("job %s queued: target=%s hash=%.12s |C|=%s", j.ID, target, hash, count)
	return j, nil
}

// cachedCount / storeCount implement the cross-request |C| cache.
func (s *Server) cachedCount(hash string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counts[hash]
	return c, ok
}

func (s *Server) storeCount(hash, count string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.counts) >= countCacheCap {
		s.counts = make(map[string]string)
	}
	s.counts[hash] = count
}

// Job returns the job by ID (nil when unknown).
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns every known job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// worker is one slot of the fixed worker array: pull a batch, run its
// jobs back-to-back, exit when the queue closes and empties.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		batch := s.queue.PullBatch(s.cfg.Batch)
		if batch == nil {
			return
		}
		s.cQueueDepth.Set(int64(s.queue.Len()))
		for _, j := range batch {
			if j.killed.Load() {
				s.cCanceled.Add(1)
				j.finish(StateCanceled, nil, errors.New("service: canceled while queued"))
				continue
			}
			s.run(j)
		}
	}
}

// run executes one job: per-job tracer (journal file + event hub),
// wall-clock budget, warm-store checkout via the library, and an honest
// terminal state.
func (s *Server) run(j *Job) {
	s.cRunning.Add(1)
	defer s.cRunning.Add(-1)
	j.setRunning()
	s.cfg.Verbose("job %s running (timeout %v, parallelism %d)", j.ID, j.timeout, j.opts.Parallelism)

	met := obs.NewMetrics()
	var sinks []obs.Sink
	var js *obs.JournalSink
	var jf *os.File
	if s.cfg.JournalDir != "" {
		f, err := os.Create(filepath.Join(s.cfg.JournalDir, "job-"+j.ID+".jsonl"))
		if err != nil {
			s.cfg.Verbose("job %s: journal: %v", j.ID, err)
		} else {
			jf = f
			js = obs.NewJournalSink(f, map[string]string{
				"cmd":         "psketchd",
				"job":         j.ID,
				"target":      j.Target,
				"sketch_hash": j.Hash,
			})
			sinks = append(sinks, js)
		}
	}
	sinks = append(sinks, j.hub)

	opts := j.opts
	opts.Trace = obs.NewTracer(obs.MultiSink(sinks...))
	opts.Metrics = met
	opts.Cancel = &j.cancel

	timer := time.AfterFunc(j.timeout, func() {
		j.timedOut.Store(true)
		j.cancel.Store(true)
	})
	// Compile again with the run-scoped options (tracer, metrics,
	// cancel); parse + desugar cost is noise next to synthesis, and the
	// admission-time compile already proved it cannot fail.
	res, err := psketch.Synthesize(j.Src, j.Target, opts)
	timer.Stop()

	if js != nil {
		js.WriteMetrics(met.Snapshot())
		if cerr := js.Close(); cerr != nil {
			s.cfg.Verbose("job %s: journal: %v", j.ID, cerr)
		}
		jf.Close()
	}

	switch {
	case err == nil:
		s.cDone.Add(1)
		j.finish(StateDone, res, nil)
		s.cfg.Verbose("job %s done: resolved=%v iters=%d warm=%v", j.ID, res.Resolved, res.Stats.Iterations, res.Stats.WarmStart)
	case errors.Is(err, psketch.ErrCanceled) && j.timedOut.Load():
		s.cFailed.Add(1)
		j.finish(StateFailed, nil, fmt.Errorf("job exceeded its wall-clock budget (%v)", j.timeout))
		s.cfg.Verbose("job %s timed out after %v", j.ID, j.timeout)
	case errors.Is(err, psketch.ErrCanceled):
		s.cCanceled.Add(1)
		j.finish(StateCanceled, nil, err)
		s.cfg.Verbose("job %s canceled", j.ID)
	default:
		s.cFailed.Add(1)
		j.finish(StateFailed, nil, err)
		s.cfg.Verbose("job %s failed: %v", j.ID, err)
	}
}

// Drain gracefully stops the server: new submissions are rejected with
// 503, the queue closes (jobs already admitted still run — admission is
// a promise), and Drain blocks until every worker exits. If ctx expires
// first, every queued-or-running job is cooperatively canceled, the
// workers are still joined, and ctx's error is returned.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, j := range s.Jobs() {
			if !j.terminal() {
				j.Cancel()
			}
		}
		<-done
		return ctx.Err()
	}
}
