package service

import (
	"encoding/json"
	"sync"
	"time"

	"psketch/internal/obs"
)

// Event is one line of a job's NDJSON event stream
// (GET /v1/jobs/{id}/events): a lifecycle transition or a coarse
// engine span re-emitted live from the job's obs tracer.
type Event struct {
	// Event is "queued", "started", "span", or "done".
	Event string `json:"event"`
	// TS is the wall-clock emission time.
	TS time.Time `json:"ts"`

	// Span fields (event == "span").
	Name  string         `json:"name,omitempty"`
	DurMS float64        `json:"dur_ms,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`

	// Terminal fields (event == "done").
	State    string `json:"state,omitempty"`
	Resolved *bool  `json:"resolved,omitempty"`
	Error    string `json:"error,omitempty"`
}

// streamSpans is the set of span names worth streaming to clients:
// iteration-level progress and run-level milestones. The full span
// firehose (per-solve, per-encode, per-shard) still goes to the job's
// journal file; streaming it would swamp slow readers for no insight.
var streamSpans = map[string]bool{
	obs.SpanIteration:  true,
	"cegis.synthesize": true,
	"cegis.verify":     true,
	"proof.certify":    true,
	"setup.lower":      true,
	"setup.encode":     true,
}

// hub buffers a job's events and fans them out to any number of
// concurrent stream readers. Readers replay the full history from index
// 0 and then follow live; close marks the end of stream. It doubles as
// an obs.Sink so the job's tracer feeds it directly.
type hub struct {
	mu     sync.Mutex
	lines  [][]byte
	wake   chan struct{} // closed and replaced on every publish
	closed bool
}

func newHub() *hub {
	return &hub{wake: make(chan struct{})}
}

// publish appends one event (pre-encoded to JSON outside the lock).
func (h *hub) publish(e Event) {
	e.TS = time.Now()
	line, err := json.Marshal(e)
	if err != nil {
		return // unreachable: Event marshals by construction
	}
	h.mu.Lock()
	if !h.closed {
		h.lines = append(h.lines, line)
		close(h.wake)
		h.wake = make(chan struct{})
	}
	h.mu.Unlock()
}

// Emit implements obs.Sink: coarse spans become "span" events. Safe for
// concurrent emission from engine workers.
func (h *hub) Emit(rec obs.SpanRecord) {
	if !streamSpans[rec.Name] {
		return
	}
	e := Event{Event: "span", Name: rec.Name, DurMS: float64(rec.Dur) / 1e6}
	if len(rec.Attrs) > 0 {
		e.Attrs = make(map[string]any, len(rec.Attrs))
		for _, a := range rec.Attrs {
			if a.IsStr {
				e.Attrs[a.Key] = a.Str
			} else {
				e.Attrs[a.Key] = a.Int
			}
		}
	}
	h.publish(e)
}

// close ends the stream; readers drain what is buffered and stop. The
// wake channel is closed and deliberately NOT replaced — publish never
// touches it again (closed guards it), and a replacement would leave
// late readers blocked on a channel nothing will ever close.
func (h *hub) close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.wake)
	}
	h.mu.Unlock()
}

// snapshot returns the lines from index i on, a channel that closes on
// the next publish, and whether the hub is closed. A reader loops:
// write lines, advance, and either stop (closed, nothing new) or wait
// on wake / its own cancellation.
func (h *hub) snapshot(i int) (lines [][]byte, wake <-chan struct{}, closed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if i < len(h.lines) {
		lines = h.lines[i:]
	}
	return lines, h.wake, h.closed
}
