package service

import (
	"errors"
	"sync"
)

// Queue errors surfaced by Push; the HTTP layer maps them to 429 (full)
// and 503 (draining).
var (
	errQueueFull   = errors.New("service: intake queue full")
	errQueueClosed = errors.New("service: intake queue closed")
)

// jobQueue is the bounded batched intake queue feeding the fixed worker
// array — the Go rendering of SNIPPETS.md snippet 1's idiom (a
// producer-token concurrent queue drained in batches by a fixed array
// of worker threads). Producers Push one job each and are rejected
// outright at the depth cap (the admission-control lever: the HTTP
// handler turns the rejection into 429 + Retry-After rather than
// letting latency grow unboundedly). Each worker PullBatch-es up to
// `max` queued jobs in a single critical section and runs them
// back-to-back, amortizing queue synchronization across bursts.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job
	depth  int
	closed bool
}

func newJobQueue(depth int) *jobQueue {
	if depth < 1 {
		depth = 1
	}
	q := &jobQueue{depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job, failing fast when the queue is at capacity or
// closed. It never blocks: backpressure is the caller's job.
func (q *jobQueue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if len(q.items) >= q.depth {
		return errQueueFull
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// PullBatch blocks until at least one job is queued (or the queue is
// closed and empty, returning nil — the worker-exit signal) and drains
// up to max jobs in one critical section.
func (q *jobQueue) PullBatch(max int) []*Job {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
	n := len(q.items)
	if n > max {
		n = max
	}
	batch := make([]*Job, n)
	copy(batch, q.items[:n])
	rest := copy(q.items, q.items[n:])
	for i := rest; i < len(q.items); i++ {
		q.items[i] = nil // release for GC
	}
	q.items = q.items[:rest]
	return batch
}

// Close stops intake. Jobs already queued are still delivered —
// admission is a promise — and every blocked PullBatch wakes.
func (q *jobQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len reports the current queue depth.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
