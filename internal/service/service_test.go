package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"psketch/internal/sketches"
)

// source returns a Table 1 sketch's text (queueE1 resolves in one
// iteration; lazyset's ar(ar|ar) row is the multi-second definitive-NO
// used where tests need a job slow enough to observe mid-flight).
func source(t *testing.T, name, test string) string {
	t.Helper()
	b := sketches.ByName(name)
	if b == nil {
		t.Fatalf("no benchmark %q", name)
	}
	src, err := b.Source(test)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func submit(t *testing.T, ts *httptest.Server, req SubmitRequest) (JobView, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// streamEvents reads the job's NDJSON stream to completion and returns
// every event. The stream must terminate by itself once the job does.
func streamEvents(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getMetrics(t *testing.T, ts *httptest.Server) map[string]int64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m := make(map[string]int64)
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// The happy path, end to end over HTTP: submit, stream events to the
// terminal line, read the verdict — then resubmit the identical sketch
// and require a cross-request warm hit.
func TestServiceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 2, JournalDir: dir})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	src := source(t, "queueE1", "ed(ee|dd)")
	v, code := submit(t, ts, SubmitRequest{Src: src})
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	if v.State != string(StateQueued) || v.Count != "4" || v.Target != "Main" {
		t.Fatalf("submit view %+v", v)
	}

	events := streamEvents(t, ts, v.ID)
	kinds := make(map[string]int)
	for _, e := range events {
		kinds[e.Event]++
	}
	if kinds["queued"] != 1 || kinds["started"] != 1 || kinds["done"] != 1 {
		t.Fatalf("event kinds %v: want one queued/started/done", kinds)
	}
	if kinds["span"] == 0 {
		t.Fatalf("event kinds %v: no engine spans streamed", kinds)
	}
	last := events[len(events)-1]
	if last.Event != "done" || last.State != string(StateDone) || last.Resolved == nil || !*last.Resolved {
		t.Fatalf("terminal event %+v", last)
	}

	final := getJob(t, ts, v.ID)
	if final.State != string(StateDone) || final.Resolved == nil || !*final.Resolved {
		t.Fatalf("final view %+v", final)
	}
	if final.Code == "" || final.Stats == nil || final.Stats.Iterations < 1 {
		t.Fatalf("final view missing result payload: %+v", final)
	}
	if final.Stats.WarmStart {
		t.Fatal("first job of a sketch reports warm_start")
	}

	// Second identical submission: must check the first run's context
	// out of the warm store.
	v2, code := submit(t, ts, SubmitRequest{Src: src})
	if code != http.StatusCreated {
		t.Fatalf("resubmit: status %d", code)
	}
	if v2.Hash != v.Hash {
		t.Fatalf("sketch hash drifted across submissions: %s vs %s", v2.Hash, v.Hash)
	}
	streamEvents(t, ts, v2.ID)
	final2 := getJob(t, ts, v2.ID)
	if final2.State != string(StateDone) || final2.Stats == nil || !final2.Stats.WarmStart {
		t.Fatalf("second identical job did not start warm: %+v", final2)
	}
	m := getMetrics(t, ts)
	if m["warm.hits"] < 1 {
		t.Fatalf("metrics %v: want warm.hits >= 1 after resubmission", m)
	}
	if m["jobs.done"] != 2 || m["jobs.submitted"] != 2 {
		t.Fatalf("metrics %v: want 2 submitted, 2 done", m)
	}

	// One journal per job, psktrace-compatible JSONL.
	for _, id := range []string{v.ID, v2.ID} {
		if _, err := os.Stat(filepath.Join(dir, "job-"+id+".jsonl")); err != nil {
			t.Fatalf("job journal missing: %v", err)
		}
	}
}

// Admission control: with one worker and a depth-1 queue, a burst of
// slow submissions must hit 429 + Retry-After once the worker is busy
// and the queue holds its one admitted job.
func TestServiceQueueFullReturns429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, Batch: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := source(t, "lazyset", "ar(ar|ar)")
	if _, code := submit(t, ts, SubmitRequest{Src: slow}); code != http.StatusCreated {
		t.Fatalf("first submit: status %d", code)
	}
	got429 := false
	for i := 0; i < 20 && !got429; i++ {
		body, _ := json.Marshal(SubmitRequest{Src: slow})
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
		resp.Body.Close()
	}
	if !got429 {
		t.Fatal("queue never reported full despite 20 submissions against a busy depth-1 server")
	}
	if m := getMetrics(t, ts); m["jobs.rejected_full"] < 1 {
		t.Fatalf("metrics %v: want jobs.rejected_full >= 1", m)
	}
	// Unblock the drain deferred above quickly.
	for _, j := range s.Jobs() {
		j.Cancel()
	}
}

// DELETE cancels a running job cooperatively, and drain (a) finishes
// by itself once jobs end, (b) rejects new submissions with 503.
func TestServiceCancelAndDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := source(t, "lazyset", "ar(ar|ar)")
	v, code := submit(t, ts, SubmitRequest{Src: slow})
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}

	// The event stream is the synchronization point: cancel only after
	// "started" so the cooperative-abort path is the one exercised.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lastEvent Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		lastEvent = e
		if e.Event == "started" {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
			dresp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if dresp.StatusCode != http.StatusAccepted {
				t.Fatalf("DELETE: status %d", dresp.StatusCode)
			}
			dresp.Body.Close()
		}
	}
	if lastEvent.Event != "done" || lastEvent.State != string(StateCanceled) {
		t.Fatalf("terminal event %+v, want canceled", lastEvent)
	}
	if st := getJob(t, ts, v.ID).State; st != string(StateCanceled) {
		t.Fatalf("state %s, want canceled", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, code := submit(t, ts, SubmitRequest{Src: slow}); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: status %d, want 503", code)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health map[string]string
	json.NewDecoder(hresp.Body).Decode(&health)
	if health["status"] != "draining" {
		t.Fatalf("healthz %v, want draining", health)
	}
}

// A job's wall-clock budget: timeout_ms is honored and the terminal
// state is failed (budget exceeded is the server refusing to finish,
// not the client walking away).
func TestServiceJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := source(t, "lazyset", "ar(ar|ar)")
	v, code := submit(t, ts, SubmitRequest{Src: slow, Options: JobOptions{TimeoutMS: 50}})
	if code != http.StatusCreated {
		t.Fatalf("submit: status %d", code)
	}
	streamEvents(t, ts, v.ID)
	final := getJob(t, ts, v.ID)
	if final.State != string(StateFailed) {
		t.Fatalf("state %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "wall-clock budget") {
		t.Fatalf("error %q does not name the budget", final.Error)
	}
}

// Client mistakes map to client status codes.
func TestServiceBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty source", `{"src":""}`, http.StatusBadRequest},
		{"parse error", `{"src":"void f() { !!! }"}`, http.StatusBadRequest},
		{"no harness", `{"src":"void f() { }"}`, http.StatusBadRequest},
		{"unknown field", `{"sauce":"x"}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// The ablation flag: with the warm cache disabled, identical
// resubmissions stay cold and no warm.* counters register.
func TestServiceNoWarmCacheAblation(t *testing.T) {
	s := New(Config{Workers: 1, NoWarmCache: true})
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	src := source(t, "queueE1", "ed(ee|dd)")
	for i := 0; i < 2; i++ {
		v, code := submit(t, ts, SubmitRequest{Src: src})
		if code != http.StatusCreated {
			t.Fatalf("submit %d: status %d", i, code)
		}
		streamEvents(t, ts, v.ID)
		if final := getJob(t, ts, v.ID); final.Stats == nil || final.Stats.WarmStart {
			t.Fatalf("run %d with -no-warm-cache: %+v", i, final)
		}
	}
	if m := getMetrics(t, ts); m["warm.hits"] != 0 {
		t.Fatalf("metrics %v: warm.hits nonzero under ablation", m)
	}
}

// The queue itself, at the unit level: batched pulls drain in FIFO
// order, the cap rejects, Close delivers the backlog then wakes
// blocked workers with nil.
func TestJobQueueBatching(t *testing.T) {
	q := newJobQueue(3)
	for i := 0; i < 3; i++ {
		if err := q.Push(&Job{ID: fmt.Sprintf("j%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push(&Job{ID: "j3"}); err != errQueueFull {
		t.Fatalf("Push over cap = %v, want errQueueFull", err)
	}
	batch := q.PullBatch(2)
	if len(batch) != 2 || batch[0].ID != "j0" || batch[1].ID != "j1" {
		t.Fatalf("batch %v, want [j0 j1]", batch)
	}
	q.Close()
	if err := q.Push(&Job{ID: "j4"}); err != errQueueClosed {
		t.Fatalf("Push after close = %v, want errQueueClosed", err)
	}
	if batch := q.PullBatch(8); len(batch) != 1 || batch[0].ID != "j2" {
		t.Fatalf("backlog after close = %v, want [j2]", batch)
	}
	if batch := q.PullBatch(8); batch != nil {
		t.Fatalf("drained closed queue returned %v, want nil", batch)
	}
}
