package service

import (
	"sync"
	"sync/atomic"
	"time"

	"psketch"
)

// JobState is a job's lifecycle phase. Transitions are strictly
// queued → running → one of the terminal states.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"     // synthesis completed (resolved or a definitive NO)
	StateFailed   JobState = "failed"   // engine error or wall-clock budget exceeded
	StateCanceled JobState = "canceled" // client DELETE or forced drain
)

// SubmitRequest is the POST /v1/jobs body: the sketch source plus
// engine options. Target "" autodetects the unique harness/implements
// function, exactly like the psketch CLI.
type SubmitRequest struct {
	Src     string     `json:"src"`
	Target  string     `json:"target,omitempty"`
	Options JobOptions `json:"options,omitempty"`
}

// JobOptions is the per-job engine surface. Budget-shaped fields are
// clamped to the server's caps (Config); zero values take the engine
// defaults. Booleans are spelled as ablations (no_*) so the zero value
// is the production configuration.
type JobOptions struct {
	IntWidth      int  `json:"int_width,omitempty"`
	HoleWidth     int  `json:"hole_width,omitempty"`
	LoopBound     int  `json:"loop_bound,omitempty"`
	MaxRepeat     int  `json:"max_repeat,omitempty"`
	Quadratic     bool `json:"quadratic,omitempty"`
	MaxIterations int  `json:"max_iterations,omitempty"`
	MCMaxStates   int  `json:"mc_max_states,omitempty"`
	Traces        int  `json:"traces,omitempty"`
	Parallelism   int  `json:"parallelism,omitempty"`
	Proof         bool `json:"proof,omitempty"`
	NoPipeline    bool `json:"no_pipeline,omitempty"`
	NoShare       bool `json:"no_share_clauses,omitempty"`
	NoPOR         bool `json:"no_por,omitempty"`
	NoSymmetry    bool `json:"no_symmetry,omitempty"`
	// TimeoutMS bounds the job's wall clock; 0 takes (and any value is
	// clamped to) the server's -job-timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Job is one admitted synthesis request. Immutable identity fields are
// set at admission; the mutable outcome fields are guarded by mu.
type Job struct {
	ID     string
	Src    string
	Target string
	// Hash is the sketch's warm-store key (psketch.SketchHash), shared
	// across jobs of the same sketch.
	Hash string
	// Count is |C| as a decimal string, computed once at admission.
	Count     string
	Submitted time.Time

	opts    psketch.Options
	timeout time.Duration
	hub     *hub

	// cancel aborts the engine cooperatively; timedOut and killed
	// record why, so the terminal state is honest about the cause.
	cancel   atomic.Bool
	timedOut atomic.Bool
	killed   atomic.Bool // client DELETE or forced drain

	mu       sync.Mutex
	state    JobState
	started  time.Time
	finished time.Time
	res      *psketch.Result
	err      error
}

// State returns the current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel requests cooperative termination (client DELETE / drain kill).
// It is a no-op once the job is terminal.
func (j *Job) Cancel() {
	j.killed.Store(true)
	j.cancel.Store(true)
}

// terminal reports whether the job reached a final state.
func (j *Job) terminal() bool {
	switch j.State() {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.hub.publish(Event{Event: "started"})
}

// finish records the outcome, emits the terminal event, and ends the
// event stream.
func (j *Job) finish(state JobState, res *psketch.Result, err error) {
	j.mu.Lock()
	j.state = state
	j.finished = time.Now()
	j.res = res
	j.err = err
	j.mu.Unlock()

	e := Event{Event: "done", State: string(state)}
	if res != nil {
		r := res.Resolved
		e.Resolved = &r
	}
	if err != nil {
		e.Error = err.Error()
	}
	j.hub.publish(e)
	j.hub.close()
}
