package sym

import (
	"psketch/internal/ast"
	"psketch/internal/circuit"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/token"
	"psketch/internal/types"
)

// locEntry is one possible concrete location of a symbolic l-value:
// the cell range [off, off+n) is meant when cond holds.
type locEntry struct {
	cond circuit.Lit
	off  int
	n    int
}

// BlockPolicy says what a false blocking condition means at a step.
type BlockPolicy int

const (
	// FailWhenBlocked: a blocked step is a deadlock failure (used for
	// single-threaded phases and for deadlock-set steps placed last in
	// a projection — no other thread can make progress, §6).
	FailWhenBlocked BlockPolicy = iota
	// AbortWhenBlocked: the projected trace diverges here; evaluation
	// of the remaining steps is disabled ("return OK" in §6).
	AbortWhenBlocked
)

// StepParts evaluates a step's guard conjunction and blocking condition
// under base, without executing the body. cond is True when the step
// has no blocking condition.
func (e *Evaluator) StepParts(seq *ir.Seq, step *ir.Step, base circuit.Lit) (g, cond circuit.Lit) {
	g = base
	for _, gexpr := range step.Guards {
		gv := e.evalExpr(seq, gexpr, g)
		g = e.B.And(g, gv.bit(e.B))
	}
	cond = circuit.True
	if step.Cond != nil {
		cond = e.evalExpr(seq, step.Cond, g).bit(e.B)
	}
	return g, cond
}

// ExecStepBody runs the step's body under guard g.
func (e *Evaluator) ExecStepBody(seq *ir.Seq, step *ir.Step, g circuit.Lit) {
	for _, st := range step.Body {
		e.execStmt(seq, st, g)
	}
}

// FailIf registers an explicit failure condition.
func (e *Evaluator) FailIf(cond circuit.Lit) {
	e.Fail = e.B.Or(e.Fail, cond)
}

// RunStep symbolically executes one step of seq under the activity
// literal active, returning the updated activity.
func (e *Evaluator) RunStep(seq *ir.Seq, step *ir.Step, active circuit.Lit, policy BlockPolicy) circuit.Lit {
	g, c := e.StepParts(seq, step, active)
	if step.Cond != nil {
		blocked := e.B.And(g, c.Not())
		switch policy {
		case FailWhenBlocked:
			e.fail(blocked, circuit.True)
		case AbortWhenBlocked:
			active = e.B.And(active, blocked.Not())
		}
		g = e.B.And(g, c)
	}
	e.ExecStepBody(seq, step, g)
	return active
}

// RunSeq executes a whole sequence under active (single-threaded
// semantics: a blocked step is a deadlock).
func (e *Evaluator) RunSeq(seq *ir.Seq, active circuit.Lit) {
	for _, step := range seq.Steps {
		e.RunStep(seq, step, active, FailWhenBlocked)
	}
}

// execStmt executes a body statement under guard g.
func (e *Evaluator) execStmt(seq *ir.Seq, s ast.Stmt, g circuit.Lit) {
	switch x := s.(type) {
	case *ast.Block:
		for _, st := range x.Stmts {
			e.execStmt(seq, st, g)
		}
	case *ast.AssignStmt:
		e.assign(seq, x.LHS, x.RHS, g)
	case *ast.AssertStmt:
		c := e.evalExpr(seq, x.Cond, g)
		e.fail(g, c.bit(e.B).Not())
	case *ast.ExprStmt:
		e.evalExpr(seq, x.X, g)
	case *ast.IfStmt:
		c := e.evalExpr(seq, x.Cond, g).bit(e.B)
		e.execStmt(seq, x.Then, e.B.And(g, c))
		if x.Else != nil {
			e.execStmt(seq, x.Else, e.B.And(g, c.Not()))
		}
	default:
		e.errorf("sym: unexpected statement %T", s)
	}
}

// resolveLoc resolves an l-value under guard g into its possible cell
// ranges, accumulating memory-safety failures guarded by g.
func (e *Evaluator) resolveLoc(seq *ir.Seq, lv ast.Expr, g circuit.Lit) []locEntry {
	switch x := lv.(type) {
	case *ast.Ident:
		if i := seq.Local(x.Name); i >= 0 {
			return []locEntry{{circuit.True, e.L.LocalOff(seq, i), cells(seq.Locals[i].Type)}}
		}
		if i := e.P.Global(x.Name); i >= 0 {
			return []locEntry{{circuit.True, e.L.GlobalOff(i), cells(e.P.Globals[i].Type)}}
		}
		e.errorf("sym: unknown variable %s", x.Name)
		return nil
	case *ast.FieldExpr:
		ref := e.evalExpr(seq, x.X, g)
		sn, err := e.P.StructOf(seq, x)
		if err != nil {
			e.errorf("sym: %v", err)
			return nil
		}
		arena := e.P.Arenas[sn]
		rw := circuit.ZextW(ref.w, refWidth(arena))
		// Null dereference fails whenever this location is touched.
		isNull := e.B.IsZeroW(rw)
		e.fail(g, isNull)
		var out []locEntry
		for slot := 1; slot <= arena; slot++ {
			off, err := e.L.FieldOff(sn, x.Name, int32(slot))
			if err != nil {
				e.errorf("sym: %v", err)
				return nil
			}
			eq := e.B.EqW(rw, circuit.ConstW(len(rw), int64(slot)))
			if ok, v := eq.IsConst(); ok && !v {
				continue
			}
			out = append(out, locEntry{eq, off, 1})
		}
		return out
	case *ast.IndexExpr:
		base := e.resolveLoc(seq, x.X, g)
		idx := e.evalExpr(seq, x.Index, g)
		return e.indexInto(base, idx, 1, g, x.P)
	case *ast.SliceExpr:
		base := e.resolveLoc(seq, x.X, g)
		idx := e.evalExpr(seq, x.Start, g)
		return e.indexInto(base, idx, x.Len, g, x.P)
	case *ast.Regen:
		meta := e.P.Sketch.Holes[x.ID]
		idx := e.Holes[x.ID]
		var out []locEntry
		for i, ch := range x.Choices {
			sel := e.choiceLit(idx, i, meta.Choices)
			if ok, v := sel.IsConst(); ok && !v {
				continue
			}
			sub := e.resolveLoc(seq, ch, e.B.And(g, sel))
			for _, en := range sub {
				out = append(out, locEntry{e.B.And(sel, en.cond), en.off, en.n})
			}
		}
		return out
	}
	e.errorf("sym: not a location: %T", lv)
	return nil
}

// choiceLit builds the literal "generator index == i" (the last choice
// also absorbs out-of-range indices so a candidate is always total).
func (e *Evaluator) choiceLit(idx circuit.Word, i, k int) circuit.Lit {
	if k == 1 {
		return circuit.True
	}
	return e.B.EqW(idx, circuit.ConstW(len(idx), int64(i)))
}

// indexInto composes a base location with a (possibly symbolic) index,
// producing one entry per in-range value and failing out of range.
func (e *Evaluator) indexInto(base []locEntry, idx val, n int, g circuit.Lit, pos token.Pos) []locEntry {
	var out []locEntry
	for _, b := range base {
		iw := e.intVal(idx)
		inRange := circuit.False
		for i := 0; i+n <= b.n; i++ {
			eq := e.B.EqW(iw, circuit.ConstW(e.W, int64(i)))
			if ok, v := eq.IsConst(); ok && !v {
				continue
			}
			inRange = e.B.Or(inRange, eq)
			out = append(out, locEntry{e.B.And(b.cond, eq), b.off + i, n})
		}
		e.fail(e.B.And(g, b.cond), inRange.Not())
	}
	return out
}

// readLoc muxes a scalar read over the location entries.
func (e *Evaluator) readLoc(entries []locEntry, width int, signed bool) val {
	out := circuit.ConstW(width, 0)
	for _, en := range entries {
		w := e.cells[en.off]
		if signed {
			w = circuit.SextW(w, width)
		} else {
			w = circuit.ZextW(w, width)
		}
		out = e.B.MuxW(en.cond, w, out)
	}
	return val{w: out, signed: signed}
}

// writeLoc writes a scalar under guard g across the location entries.
func (e *Evaluator) writeLoc(entries []locEntry, v val, g circuit.Lit) {
	for _, en := range entries {
		ci := e.info[en.off]
		nw := e.coerce(v.w, ci)
		sel := e.B.And(g, en.cond)
		e.cells[en.off] = e.B.MuxW(sel, nw, e.cells[en.off])
	}
}

// locInfo inspects the first entry for width/signedness (all entries of
// one l-value share a type).
func (e *Evaluator) locInfo(entries []locEntry) cellInfo {
	if len(entries) == 0 {
		return cellInfo{width: 1}
	}
	return e.info[entries[0].off]
}

// assign stores rhs into lhs under guard g (arrays, broadcasts,
// bit-array literals and holes included).
func (e *Evaluator) assign(seq *ir.Seq, lhs, rhs ast.Expr, g circuit.Lit) {
	dst := e.resolveLoc(seq, lhs, g)
	if len(dst) == 0 {
		return
	}
	n := dst[0].n
	if n == 1 {
		v := e.evalExpr(seq, rhs, g)
		e.writeLoc(dst, v, g)
		return
	}
	// Array assignment.
	cellVals := make([]val, n)
	switch r := rhs.(type) {
	case *ast.IntLit:
		for i := range cellVals {
			cellVals[i] = val{w: circuit.ConstW(e.W, r.Val), signed: true}
		}
	case *ast.BoolLit:
		b := circuit.False
		if r.Val {
			b = circuit.True
		}
		for i := range cellVals {
			cellVals[i] = e.boolVal(b)
		}
	case *ast.NullLit:
		for i := range cellVals {
			cellVals[i] = val{w: circuit.ConstW(1, 0)}
		}
	case *ast.BitsLit:
		for i := range cellVals {
			b := circuit.False
			if i < len(r.Text) && r.Text[i] == '1' {
				b = circuit.True
			}
			cellVals[i] = e.boolVal(b)
		}
	case *ast.Hole:
		bits := e.Holes[r.ID]
		for i := range cellVals {
			b := circuit.False
			if i < len(bits) {
				b = bits[i]
			}
			cellVals[i] = e.boolVal(b)
		}
	case *ast.Regen:
		meta := e.P.Sketch.Holes[r.ID]
		idx := e.Holes[r.ID]
		for i, ch := range r.Choices {
			sel := e.choiceLit(idx, i, meta.Choices)
			e.assign(seq, lhs, ch, e.B.And(g, sel))
		}
		return
	default:
		src := e.resolveLoc(seq, rhs, g)
		if len(src) == 0 {
			return
		}
		if src[0].n != n {
			e.errorf("sym: array length mismatch in assignment")
			return
		}
		for i := 0; i < n; i++ {
			sub := make([]locEntry, len(src))
			for j, en := range src {
				sub[j] = locEntry{en.cond, en.off + i, 1}
			}
			ci := e.locInfo(sub)
			cellVals[i] = e.readLoc(sub, ci.width, ci.signed)
		}
	}
	for i := 0; i < n; i++ {
		sub := make([]locEntry, len(dst))
		for j, en := range dst {
			sub[j] = locEntry{en.cond, en.off + i, 1}
		}
		e.writeLoc(sub, cellVals[i], g)
	}
}

// evalExpr evaluates a scalar expression under guard g. Side effects
// (builtins, allocation) apply under g.
func (e *Evaluator) evalExpr(seq *ir.Seq, x ast.Expr, g circuit.Lit) val {
	switch n := x.(type) {
	case *ast.IntLit:
		return val{w: circuit.ConstW(e.W, n.Val), signed: true}
	case *ast.BoolLit:
		return e.boolVal(circuit.Const(n.Val))
	case *ast.NullLit:
		return val{w: circuit.ConstW(1, 0)}
	case *ast.Ident:
		if n.Name == ir.TidVar {
			return val{w: circuit.ConstW(e.W, int64(seq.Tid)), signed: true}
		}
		entries := e.resolveLoc(seq, n, g)
		ci := e.locInfo(entries)
		return e.readLoc(entries, ci.width, ci.signed)
	case *ast.FieldExpr, *ast.IndexExpr:
		entries := e.resolveLoc(seq, x, g)
		ci := e.locInfo(entries)
		return e.readLoc(entries, ci.width, ci.signed)
	case *ast.Hole:
		meta := e.P.Sketch.Holes[n.ID]
		w := e.Holes[n.ID]
		if meta.Kind == desugar.HoleBool {
			return e.boolVal(w[0])
		}
		return val{w: circuit.ZextW(w, e.W), signed: true}
	case *ast.Regen:
		meta := e.P.Sketch.Holes[n.ID]
		idx := e.Holes[n.ID]
		var out val
		for i, ch := range n.Choices {
			sel := e.choiceLit(idx, i, meta.Choices)
			if ok, v := sel.IsConst(); ok && !v {
				continue
			}
			cv := e.evalExpr(seq, ch, e.B.And(g, sel))
			if out.w == nil {
				out = cv
				continue
			}
			a, bb, signed := e.align(out, cv)
			out = val{w: e.B.MuxW(sel, bb, a), signed: signed}
		}
		if out.w == nil {
			return val{w: circuit.ConstW(1, 0)}
		}
		return out
	case *ast.Unary:
		v := e.evalExpr(seq, n.X, g)
		switch n.Op {
		case token.NOT:
			return e.boolVal(v.bit(e.B).Not())
		case token.SUB:
			return val{w: e.B.NegW(e.intVal(v)), signed: true}
		}
	case *ast.Binary:
		return e.evalBinary(seq, n, g)
	case *ast.CastExpr:
		return e.evalCast(seq, n, g)
	case *ast.CallExpr:
		return e.evalBuiltin(seq, n, g)
	case *ast.NewExpr:
		return e.evalNew(seq, n, g)
	}
	e.errorf("sym: cannot evaluate %T", x)
	return val{w: circuit.ConstW(1, 0)}
}

func (e *Evaluator) evalBinary(seq *ir.Seq, n *ast.Binary, g circuit.Lit) val {
	switch n.Op {
	case token.LAND:
		l := e.evalExpr(seq, n.X, g).bit(e.B)
		r := e.evalExpr(seq, n.Y, e.B.And(g, l)).bit(e.B)
		return e.boolVal(e.B.And(l, r))
	case token.LOR:
		l := e.evalExpr(seq, n.X, g).bit(e.B)
		r := e.evalExpr(seq, n.Y, e.B.And(g, l.Not())).bit(e.B)
		return e.boolVal(e.B.Or(l, r))
	}
	lv := e.evalExpr(seq, n.X, g)
	rv := e.evalExpr(seq, n.Y, g)
	switch n.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		a, b := e.intVal(lv), e.intVal(rv)
		switch n.Op {
		case token.ADD:
			return val{w: e.B.AddW(a, b), signed: true}
		case token.SUB:
			return val{w: e.B.SubW(a, b), signed: true}
		case token.MUL:
			return val{w: e.B.MulW(a, b), signed: true}
		default:
			return e.divmod(a, b, n.Op == token.QUO, g)
		}
	case token.EQ, token.NEQ:
		a, b, _ := e.align(lv, rv)
		eq := e.B.EqW(a, b)
		if n.Op == token.NEQ {
			eq = eq.Not()
		}
		return e.boolVal(eq)
	case token.LT, token.LEQ, token.GT, token.GEQ:
		a, b := e.intVal(lv), e.intVal(rv)
		var r circuit.Lit
		switch n.Op {
		case token.LT:
			r = e.B.LtS(a, b)
		case token.GEQ:
			r = e.B.LtS(a, b).Not()
		case token.GT:
			r = e.B.LtS(b, a)
		default:
			r = e.B.LtS(b, a).Not()
		}
		return e.boolVal(r)
	}
	e.errorf("sym: bad binary operator")
	return val{w: circuit.ConstW(1, 0)}
}

// divmod implements Go-style truncated signed division with a guarded
// division-by-zero failure.
func (e *Evaluator) divmod(a, b circuit.Word, isDiv bool, g circuit.Lit) val {
	bz := e.B.IsZeroW(b)
	e.fail(g, bz)
	sa, sb := a[len(a)-1], b[len(b)-1]
	absA := e.B.MuxW(sa, e.B.NegW(a), a)
	absB := e.B.MuxW(sb, e.B.NegW(b), b)
	q, r := e.B.DivModU(absA, absB)
	if isDiv {
		neg := e.B.Xor(sa, sb)
		return val{w: e.B.MuxW(neg, e.B.NegW(q), q), signed: true}
	}
	return val{w: e.B.MuxW(sa, e.B.NegW(r), r), signed: true}
}

func (e *Evaluator) evalCast(seq *ir.Seq, n *ast.CastExpr, g circuit.Lit) val {
	switch inner := n.X.(type) {
	case *ast.SliceExpr, *ast.Ident, *ast.IndexExpr, *ast.FieldExpr:
		entries := e.resolveLoc(seq, inner, g)
		if len(entries) == 0 {
			return val{w: circuit.ConstW(e.W, 0), signed: true}
		}
		width := entries[0].n
		out := circuit.ConstW(e.W, 0)
		for _, en := range entries {
			w := make(circuit.Word, width)
			for i := 0; i < width; i++ {
				w[i] = e.cells[en.off+i][0]
			}
			out = e.B.MuxW(en.cond, circuit.ZextW(w, e.W), out)
		}
		return val{w: out, signed: true}
	default:
		v := e.evalExpr(seq, n.X, g)
		return val{w: circuit.ZextW(circuit.Word{v.bit(e.B)}, e.W), signed: true}
	}
}

func (e *Evaluator) evalBuiltin(seq *ir.Seq, n *ast.CallExpr, g circuit.Lit) val {
	loc := e.resolveLoc(seq, n.Args[0], g)
	ci := e.locInfo(loc)
	old := e.readLoc(loc, ci.width, ci.signed)
	switch n.Fun {
	case "AtomicSwap":
		v := e.evalExpr(seq, n.Args[1], g)
		e.writeLoc(loc, v, g)
		return old
	case "CAS":
		oldv := e.evalExpr(seq, n.Args[1], g)
		newv := e.evalExpr(seq, n.Args[2], g)
		a, b, _ := e.align(old, oldv)
		eq := e.B.EqW(a, b)
		e.writeLoc(loc, newv, e.B.And(g, eq))
		return e.boolVal(eq)
	case "AtomicReadAndDecr":
		nv := e.B.SubW(e.intVal(old), circuit.ConstW(e.W, 1))
		e.writeLoc(loc, val{w: nv, signed: true}, g)
		return old
	case "AtomicReadAndIncr":
		nv := e.B.AddW(e.intVal(old), circuit.ConstW(e.W, 1))
		e.writeLoc(loc, val{w: nv, signed: true}, g)
		return old
	}
	e.errorf("sym: unknown builtin %s", n.Fun)
	return val{w: circuit.ConstW(1, 0)}
}

func (e *Evaluator) evalNew(seq *ir.Seq, n *ast.NewExpr, g circuit.Lit) val {
	site := e.P.Sites[n.Site]
	slot := site.Slot
	si := e.P.Sketch.Info.Structs[n.Type]
	ctor := si.CtorFields()
	argOf := map[int]ast.Expr{}
	for i, fi := range ctor {
		argOf[fi] = n.Args[i]
	}
	for fi, fld := range si.Fields {
		var v val
		if a, ok := argOf[fi]; ok {
			v = e.evalExpr(seq, a, g)
		} else if fld.Default != nil {
			v = e.evalExpr(seq, fld.Default, g)
		} else {
			v = val{w: circuit.ConstW(1, 0)}
		}
		off, err := e.L.FieldOff(n.Type, fld.Name, int32(slot))
		if err != nil {
			e.errorf("sym: %v", err)
			return val{w: circuit.ConstW(1, 0)}
		}
		e.writeLoc([]locEntry{{circuit.True, off, 1}}, v, g)
	}
	w := refWidth(e.P.Arenas[n.Type])
	return val{w: circuit.ConstW(w, int64(slot))}
}

// EvalConstraint evaluates a synthesis-time side constraint (an
// expression over holes and literals only).
func (e *Evaluator) EvalConstraint(c ast.Expr) circuit.Lit {
	v := e.evalExpr(nil, c, circuit.True)
	return v.bit(e.B)
}

func cells(t types.Type) int {
	if t.IsArray() {
		return t.Len
	}
	return 1
}
