package sym

import (
	"testing"
	"testing/quick"

	"psketch/internal/circuit"
	"psketch/internal/desugar"
	"psketch/internal/interp"
	"psketch/internal/ir"
	"psketch/internal/parser"
	"psketch/internal/state"
)

// crossSrc is a sequential torture program exercising arithmetic
// (including division), arrays, heap records, builtins, short-circuit
// evaluation, generator choices and holes.
const crossSrc = `
struct Node {
	Node next = null;
	int v;
}

Node head;
int[4] arr;

int F(int a, int b) {
	Node n1 = new Node(a);
	Node n2 = new Node(b);
	n1.next = n2;
	head = n1;
	int acc = a + b * 2 - ??;
	if (b != 0) { acc = acc + a / b; }
	if (b != 0) { acc = acc + a % b; }
	arr[0] = acc;
	arr[1] = {| a | b | a + b |};
	if (a < b && head.next != null) { arr[2] = head.next.v; }
	if (a == b || {| true | false |}) { arr[3] = 1; }
	int old = AtomicSwap(arr[0], 7);
	acc = acc + old + arr[0];
	bool did = CAS(arr[1], b, a);
	if (did) { acc = acc + 1; }
	acc = acc + AtomicReadAndIncr(arr[2]);
	acc = acc - AtomicReadAndDecr(arr[3]);
	Node p = head;
	while (p != null) {
		acc = acc + p.v;
		p = p.next;
	}
	return acc;
}
`

func buildCross(t testing.TB) (*ir.Program, *state.Layout, *desugar.Sketch) {
	t.Helper()
	prog, err := parser.Parse(crossSrc)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "F", desugar.Options{IntWidth: 6, LoopBound: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := state.NewLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, l, sk
}

// runConcrete executes the program with the interpreter.
func runConcrete(p *ir.Program, l *state.Layout, cand desugar.Candidate, a, b int32) (result int32, fail bool) {
	st := l.NewState()
	seq := p.Prologue
	ctx := interp.NewCtx(l, st, seq, cand)
	st.Cells[l.LocalOff(seq, seq.Local("a"))] = a
	st.Cells[l.LocalOff(seq, seq.Local("b"))] = b
	for _, sq := range []*ir.Seq{p.GlobalInit, seq} {
		c2 := interp.NewCtx(l, st, sq, cand)
		for _, step := range sq.Steps {
			ok, f := c2.EvalGuards(step)
			if f != nil {
				return 0, true
			}
			if !ok {
				continue
			}
			en, f := c2.EvalCond(step)
			if f != nil || !en {
				return 0, true
			}
			if f := c2.ExecBody(step); f != nil {
				return 0, true
			}
		}
	}
	_ = ctx
	ri := seq.Local(p.ResultVar)
	return st.Cells[l.LocalOff(seq, ri)], false
}

// runSymbolic executes the program with the symbolic evaluator using
// constant holes and inputs, then folds the circuits to constants.
func runSymbolic(t testing.TB, p *ir.Program, l *state.Layout, sk *desugar.Sketch, cand desugar.Candidate, a, b int32) (result int32, fail bool) {
	bld := circuit.NewBuilder()
	holes := HoleConsts(sk, cand)
	e := New(bld, l, holes)
	seq := p.Prologue
	if err := e.SetVarCells(seq, "a", []circuit.Word{circuit.ConstW(p.W, int64(a))}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetVarCells(seq, "b", []circuit.Word{circuit.ConstW(p.W, int64(b))}); err != nil {
		t.Fatal(err)
	}
	e.RunSeq(p.GlobalInit, circuit.True)
	e.RunSeq(seq, circuit.True)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if ok, v := e.Fail.IsConst(); !ok {
		t.Fatal("fail literal not constant under constant inputs")
	} else if v {
		return 0, true
	}
	out, err := e.ReadVar(seq, p.ResultVar)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := circuit.ConstVal(out[0])
	if !ok {
		t.Fatal("result not constant under constant inputs")
	}
	return int32(v), false
}

// The central soundness property: on every input and candidate, the
// symbolic evaluator computes exactly what the concrete interpreter
// does — same failure verdict, same result.
func TestSymMatchesInterp(t *testing.T) {
	p, l, sk := buildCross(t)
	f := func(a, b int8, h1, h2, h3 uint8) bool {
		av := int32(a) % 32
		bv := int32(b) % 32
		cand := make(desugar.Candidate, len(sk.Holes))
		vals := []uint8{h1, h2, h3}
		for i, m := range sk.Holes {
			v := int64(vals[i%3])
			if m.Kind == desugar.HoleChoice {
				v %= int64(m.Choices)
			} else {
				v &= (1 << uint(m.Bits)) - 1
			}
			cand[i] = v
		}
		cr, cf := runConcrete(p, l, cand, av, bv)
		sr, sf := runSymbolic(t, p, l, sk, cand, av, bv)
		if cf != sf {
			t.Logf("a=%d b=%d cand=%v: concrete fail=%v symbolic fail=%v", av, bv, cand, cf, sf)
			return false
		}
		if !cf && cr != sr {
			t.Logf("a=%d b=%d cand=%v: concrete=%d symbolic=%d", av, bv, cand, cr, sr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// With symbolic holes, evaluating the projection-style failure literal
// under a concrete assignment must agree with the concrete run too.
func TestSymbolicHolesAgree(t *testing.T) {
	p, l, sk := buildCross(t)
	bld := circuit.NewBuilder()
	holes := HoleInputs(bld, sk)
	e := New(bld, l, holes)
	seq := p.Prologue
	if err := e.SetVarCells(seq, "a", []circuit.Word{circuit.ConstW(p.W, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetVarCells(seq, "b", []circuit.Word{circuit.ConstW(p.W, 5)}); err != nil {
		t.Fatal(err)
	}
	e.RunSeq(p.GlobalInit, circuit.True)
	e.RunSeq(seq, circuit.True)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	for h1 := int64(0); h1 < 4; h1++ {
		cand := make(desugar.Candidate, len(sk.Holes))
		for i, m := range sk.Holes {
			v := h1
			if m.Kind == desugar.HoleChoice {
				v %= int64(m.Choices)
			} else {
				v &= (1 << uint(m.Bits)) - 1
			}
			cand[i] = v
		}
		in := map[circuit.Lit]bool{}
		for i, w := range holes {
			for j, lit := range w {
				in[lit] = (cand.Value(i)>>uint(j))&1 == 1
			}
		}
		symFail := bld.Eval(in, e.Fail)
		_, concFail := runConcrete(p, l, cand, 3, 5)
		if symFail != concFail {
			t.Fatalf("cand %v: symbolic fail=%v concrete fail=%v", cand, symFail, concFail)
		}
	}
}

// SetVarCells/ReadVar input validation.
func TestVarAccessErrors(t *testing.T) {
	p, l, sk := buildCross(t)
	b := circuit.NewBuilder()
	e := New(b, l, HoleConsts(sk, make(desugar.Candidate, len(sk.Holes))))
	if err := e.SetVarCells(p.Prologue, "nosuch", nil); err == nil {
		t.Fatal("expected unknown-variable error")
	}
	if err := e.SetVarCells(p.Prologue, "a", []circuit.Word{circuit.ConstW(6, 1), circuit.ConstW(6, 2)}); err == nil {
		t.Fatal("expected cell-count error")
	}
	if _, err := e.ReadVar(p.Prologue, "nosuch"); err == nil {
		t.Fatal("expected unknown-variable error")
	}
}

// Division by zero must be a guarded failure, not a bogus value: a
// candidate that divides by zero on the given input fails.
func TestSymbolicDivByZero(t *testing.T) {
	p, l, sk := buildCross(t)
	_ = p
	b := circuit.NewBuilder()
	e := New(b, l, HoleConsts(sk, make(desugar.Candidate, len(sk.Holes))))
	seq := l.Prog.Prologue
	if err := e.SetVarCells(seq, "a", []circuit.Word{circuit.ConstW(6, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetVarCells(seq, "b", []circuit.Word{circuit.ConstW(6, 0)}); err != nil {
		t.Fatal(err)
	}
	e.RunSeq(l.Prog.GlobalInit, circuit.True)
	e.RunSeq(seq, circuit.True)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	// The cross program guards its divisions with b != 0, so no
	// failure is expected here...
	if ok, v := e.Fail.IsConst(); !ok || v {
		t.Fatalf("guarded division flagged a failure: %v", e.Fail)
	}
}
