// Package sym symbolically evaluates lowered programs over AIG words:
// every state cell holds a bit-vector circuit over the hole inputs (and
// over symbolic program inputs in sequential mode). Running a projected
// counterexample trace yields fail(Skt[c]) as one literal — the
// inductive constraint of §6 — and running a sequential sketch against
// its spec yields the equivalence condition of §5.
package sym

import (
	"fmt"

	"psketch/internal/circuit"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/state"
	"psketch/internal/types"
)

// cellInfo describes the bit width and signedness of one state cell.
type cellInfo struct {
	width  int
	signed bool
}

// Evaluator holds the symbolic machine state.
type Evaluator struct {
	B *circuit.Builder
	P *ir.Program
	L *state.Layout
	W int

	cells []circuit.Word
	info  []cellInfo

	// Holes maps hole IDs to their input words (synthesis mode) or
	// constant words (verification mode).
	Holes []circuit.Word

	// Fail accumulates the failure condition.
	Fail circuit.Lit

	// err records a structural problem (not a program failure).
	err error
}

// New builds an evaluator with zeroed cells. holes[i] must have exactly
// Sketch.Holes[i].Bits bits.
func New(b *circuit.Builder, l *state.Layout, holes []circuit.Word) *Evaluator {
	e := &Evaluator{B: b, P: l.Prog, L: l, W: l.Prog.W, Holes: holes, Fail: circuit.False}
	e.buildInfo()
	e.cells = make([]circuit.Word, l.Size)
	for i := range e.cells {
		e.cells[i] = circuit.ConstW(e.info[i].width, 0)
	}
	return e
}

// HoleInputs allocates fresh input words for every hole of the sketch.
func HoleInputs(b *circuit.Builder, sk *desugar.Sketch) []circuit.Word {
	hs := make([]circuit.Word, len(sk.Holes))
	for i, m := range sk.Holes {
		hs[i] = b.InputW(m.Bits)
	}
	return hs
}

// HoleConsts encodes a concrete candidate as constant words.
func HoleConsts(sk *desugar.Sketch, cand desugar.Candidate) []circuit.Word {
	hs := make([]circuit.Word, len(sk.Holes))
	for i, m := range sk.Holes {
		hs[i] = circuit.ConstW(m.Bits, cand.Value(i))
	}
	return hs
}

// Err returns the structural error encountered, if any.
func (e *Evaluator) Err() error { return e.err }

// Snapshot is a saved copy of the symbolic machine state (cells, Fail,
// structural error). Words are immutable once stored in a cell — writes
// replace whole slices via MuxW — so a shallow copy of the cell array
// captures the state exactly.
type Snapshot struct {
	cells []circuit.Word
	fail  circuit.Lit
	err   error
}

// SizeBytes estimates the snapshot's retained memory: the cell backing
// array plus each word's literal slice (words are shared between
// snapshots of one builder, so this over-counts shared tails — it is a
// bound for cache-eviction accounting, not an exact measurement).
func (s Snapshot) SizeBytes() int64 {
	n := int64(len(s.cells)) * 24 // slice headers
	for _, w := range s.cells {
		n += int64(len(w)) * 4 // circuit.Lit is an int32
	}
	return n
}

// Snapshot captures the current machine state.
func (e *Evaluator) Snapshot() Snapshot {
	return Snapshot{
		cells: append([]circuit.Word(nil), e.cells...),
		fail:  e.Fail,
		err:   e.err,
	}
}

// Restore rewinds the machine to a snapshot taken on an evaluator with
// the same layout. Because the builder is hash-consed, re-running the
// same steps from a restored state rebuilds bit-identical literals.
func (e *Evaluator) Restore(s Snapshot) {
	copy(e.cells, s.cells)
	e.Fail = s.fail
	e.err = s.err
}

func (e *Evaluator) fail(g circuit.Lit, cond circuit.Lit) {
	e.Fail = e.B.Or(e.Fail, e.B.And(g, cond))
}

func (e *Evaluator) errorf(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf(format, args...)
	}
}

// buildInfo computes the width/signedness of every layout cell.
func (e *Evaluator) buildInfo() {
	e.info = make([]cellInfo, e.L.Size)
	fill := func(off int, t types.Type) {
		n := 1
		if t.IsArray() {
			n = t.Len
		}
		ci := e.cellType(t)
		for i := 0; i < n; i++ {
			e.info[off+i] = ci
		}
	}
	for i, g := range e.P.Globals {
		fill(e.L.GlobalOff(i), g.Type)
	}
	for _, sd := range e.P.Sketch.Prog.Structs {
		si := e.P.Sketch.Info.Structs[sd.Name]
		arena := e.P.Arenas[sd.Name]
		for slot := 1; slot <= arena; slot++ {
			for _, f := range si.Fields {
				off, err := e.L.FieldOff(sd.Name, f.Name, int32(slot))
				if err != nil {
					e.errorf("sym: %v", err)
					return
				}
				e.info[off] = e.cellType(f.Type)
			}
		}
	}
	for _, seq := range e.allSeqs() {
		for i, v := range seq.Locals {
			fill(e.L.LocalOff(seq, i), v.Type)
		}
	}
}

func (e *Evaluator) allSeqs() []*ir.Seq {
	p := e.P
	out := []*ir.Seq{}
	for _, s := range []*ir.Seq{p.GlobalInit, p.Prologue} {
		if s != nil {
			out = append(out, s)
		}
	}
	out = append(out, p.Threads...)
	for _, s := range []*ir.Seq{p.Epilogue, p.Spec} {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (e *Evaluator) cellType(t types.Type) cellInfo {
	switch t.Base {
	case types.Bool:
		return cellInfo{width: 1}
	case types.Ref:
		return cellInfo{width: refWidth(e.P.Arenas[t.Struct])}
	default:
		return cellInfo{width: e.W, signed: true}
	}
}

func refWidth(arena int) int {
	b := 1
	for (1 << b) < arena+1 {
		b++
	}
	return b
}

// SetVarCells overwrites a local variable with symbolic words, one per
// cell (used to bind sequential inputs; scalars pass one word).
func (e *Evaluator) SetVarCells(seq *ir.Seq, name string, ws []circuit.Word) error {
	i := seq.Local(name)
	if i < 0 {
		return fmt.Errorf("sym: no local %s in %s", name, seq.Name)
	}
	off := e.L.LocalOff(seq, i)
	n := cells(seq.Locals[i].Type)
	if len(ws) != n {
		return fmt.Errorf("sym: %s has %d cells, got %d words", name, n, len(ws))
	}
	for j, w := range ws {
		e.cells[off+j] = e.coerce(w, e.info[off+j])
	}
	return nil
}

// ReadVar returns the cells of a local variable.
func (e *Evaluator) ReadVar(seq *ir.Seq, name string) ([]circuit.Word, error) {
	i := seq.Local(name)
	if i < 0 {
		return nil, fmt.Errorf("sym: no local %s in %s", name, seq.Name)
	}
	off := e.L.LocalOff(seq, i)
	n := 1
	if t := seq.Locals[i].Type; t.IsArray() {
		n = t.Len
	}
	out := make([]circuit.Word, n)
	for j := 0; j < n; j++ {
		out[j] = e.cells[off+j]
	}
	return out, nil
}

// coerce adjusts a word to a cell's width (sign- or zero-extending).
func (e *Evaluator) coerce(w circuit.Word, ci cellInfo) circuit.Word {
	if ci.signed {
		return circuit.SextW(w, ci.width)
	}
	return circuit.ZextW(w, ci.width)
}

// val is a symbolic scalar: a word plus signedness.
type val struct {
	w      circuit.Word
	signed bool
}

func (e *Evaluator) boolVal(l circuit.Lit) val { return val{w: circuit.Word{l}} }

func (v val) bit(b *circuit.Builder) circuit.Lit {
	any := circuit.False
	for _, l := range v.w {
		any = b.Or(any, l)
	}
	return any
}

// align extends two values to a common width for comparison/arithmetic.
func (e *Evaluator) align(x, y val) (circuit.Word, circuit.Word, bool) {
	w := len(x.w)
	if len(y.w) > w {
		w = len(y.w)
	}
	signed := x.signed && y.signed
	ext := func(v val) circuit.Word {
		if v.signed {
			return circuit.SextW(v.w, w)
		}
		return circuit.ZextW(v.w, w)
	}
	return ext(x), ext(y), signed
}

// intVal truncates/extends to the machine int width.
func (e *Evaluator) intVal(v val) circuit.Word {
	if v.signed {
		return circuit.SextW(v.w, e.W)
	}
	return circuit.ZextW(v.w, e.W)
}
