package state

import (
	"testing"
	"testing/quick"

	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/parser"
)

func layoutFor(t *testing.T, src string) (*ir.Program, *Layout) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "Main", desugar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, l
}

const layoutSrc = `
struct N { N next = null; int v; }
N head;
int[3] xs;
bool flag;
harness void Main() {
	head = new N(1);
	N extra = new N(2);
	head.next = extra;
	fork (i; 2) {
		int t = i;
		t = t;
	}
}
`

// Every storage cell must get a distinct offset, and the total must
// cover globals, arenas and all sequences' locals.
func TestDisjointOffsets(t *testing.T) {
	p, l := layoutFor(t, layoutSrc)
	used := map[int]string{}
	claim := func(off, n int, what string) {
		for i := 0; i < n; i++ {
			if prev, ok := used[off+i]; ok {
				t.Fatalf("cell %d claimed by %s and %s", off+i, prev, what)
			}
			used[off+i] = what
		}
	}
	for i, g := range p.Globals {
		n := 1
		if g.Type.IsArray() {
			n = g.Type.Len
		}
		claim(l.GlobalOff(i), n, "global "+g.Name)
	}
	for name, arena := range p.Arenas {
		si := p.Sketch.Info.Structs[name]
		for slot := 1; slot <= arena; slot++ {
			for _, f := range si.Fields {
				off, err := l.FieldOff(name, f.Name, int32(slot))
				if err != nil {
					t.Fatal(err)
				}
				claim(off, 1, name+"."+f.Name)
			}
		}
	}
	seqs := []*ir.Seq{p.GlobalInit, p.Prologue, p.Epilogue}
	seqs = append(seqs, p.Threads...)
	for _, sq := range seqs {
		if sq == nil {
			continue
		}
		for i, v := range sq.Locals {
			n := 1
			if v.Type.IsArray() {
				n = v.Type.Len
			}
			claim(l.LocalOff(sq, i), n, sq.Name+"."+v.Name)
		}
	}
	if len(used) != l.Size {
		t.Fatalf("claimed %d cells, layout size %d", len(used), l.Size)
	}
}

func TestFieldOffBounds(t *testing.T) {
	p, l := layoutFor(t, layoutSrc)
	_ = p
	if _, err := l.FieldOff("N", "v", 0); err == nil {
		t.Fatal("slot 0 (null) must be rejected")
	}
	if _, err := l.FieldOff("N", "v", 99); err == nil {
		t.Fatal("out-of-arena slot must be rejected")
	}
	if _, err := l.FieldOff("N", "nope", 1); err == nil {
		t.Fatal("unknown field must be rejected")
	}
}

// Key is injective in practice: differing cells or pcs give different
// keys; equal states give equal keys.
func TestKeyProperty(t *testing.T) {
	_, l := layoutFor(t, layoutSrc)
	base := l.NewState()
	f := func(idx uint8, delta int32, pcFlip bool) bool {
		s1 := base.Clone()
		s2 := s1.Clone()
		if s1.Key() != s2.Key() {
			return false
		}
		if pcFlip && len(s2.PCs) > 0 {
			s2.PCs[int(idx)%len(s2.PCs)]++
		} else if len(s2.Cells) > 0 {
			i := int(idx) % len(s2.Cells)
			s2.Cells[i] += delta | 1
		}
		return s1.Key() != s2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	_, l := layoutFor(t, layoutSrc)
	a := l.NewState()
	b := a.Clone()
	b.Cells[0] = 42
	if a.Cells[0] == 42 {
		t.Fatal("clone shares cell storage")
	}
	if len(b.PCs) > 0 {
		b.PCs[0] = 7
		if a.PCs[0] == 7 {
			t.Fatal("clone shares pc storage")
		}
	}
}
