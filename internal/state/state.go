// Package state defines the bounded machine state of a lowered program:
// a flat vector of small integers holding globals, the heap arenas, and
// every sequence's locals, plus per-thread program counters. States are
// cheap to copy and hash, which the explicit-state model checker
// depends on.
package state

import (
	"fmt"

	"psketch/internal/ir"
	"psketch/internal/types"
)

// Layout assigns every storage cell of a program a fixed offset.
//
// Cell encoding: ints are W-bit two's complement stored in an int32;
// bools are 0/1; references are arena slot numbers (0 = null). Struct
// fields are scalars (the checker rejects array fields).
type Layout struct {
	Prog *ir.Program
	Size int // number of value cells (excluding pcs)

	globalOff []int
	heapBase  map[string]int
	fieldIdx  map[string]int // "Struct.field" -> field position
	fieldCnt  map[string]int
	seqBase   map[*ir.Seq][]int // per-seq local offsets (by local index)
	sharedEnd int               // cells [0,sharedEnd) are globals + arenas
}

// NewLayout computes the layout for a lowered program.
func NewLayout(p *ir.Program) (*Layout, error) {
	l := &Layout{
		Prog:     p,
		heapBase: map[string]int{},
		fieldIdx: map[string]int{},
		fieldCnt: map[string]int{},
		seqBase:  map[*ir.Seq][]int{},
	}
	off := 0
	cells := func(t types.Type) int {
		if t.IsArray() {
			return t.Len
		}
		return 1
	}
	l.globalOff = make([]int, len(p.Globals))
	for i, g := range p.Globals {
		l.globalOff[i] = off
		off += cells(g.Type)
	}
	// Heap arenas: struct names iterated deterministically via Sites
	// plus the sketch's struct declarations.
	for _, sd := range p.Sketch.Prog.Structs {
		si := p.Sketch.Info.Structs[sd.Name]
		n := len(si.Fields)
		for fi, f := range si.Fields {
			if f.Type.IsArray() {
				return nil, fmt.Errorf("state: struct %s has array field %s (not supported)", sd.Name, f.Name)
			}
			l.fieldIdx[sd.Name+"."+f.Name] = fi
		}
		l.fieldCnt[sd.Name] = n
		l.heapBase[sd.Name] = off
		off += n * p.Arenas[sd.Name]
	}
	l.sharedEnd = off
	for _, seq := range l.allSeqs() {
		offs := make([]int, len(seq.Locals))
		for i, v := range seq.Locals {
			offs[i] = off
			off += cells(v.Type)
		}
		l.seqBase[seq] = offs
	}
	l.Size = off
	return l, nil
}

func (l *Layout) allSeqs() []*ir.Seq {
	p := l.Prog
	seqs := []*ir.Seq{}
	for _, s := range []*ir.Seq{p.GlobalInit, p.Prologue} {
		if s != nil {
			seqs = append(seqs, s)
		}
	}
	seqs = append(seqs, p.Threads...)
	for _, s := range []*ir.Seq{p.Epilogue, p.Spec} {
		if s != nil {
			seqs = append(seqs, s)
		}
	}
	return seqs
}

// GlobalOff returns the cell offset of global i.
func (l *Layout) GlobalOff(i int) int { return l.globalOff[i] }

// SharedCells returns the number of leading cells holding shared state
// (globals followed by the heap arenas); the remaining cells are
// per-sequence thread-local storage. The model checker's footprint
// bitsets range over exactly these cells.
func (l *Layout) SharedCells() int { return l.sharedEnd }

// LocalOff returns the cell offset of a sequence's local i.
func (l *Layout) LocalOff(seq *ir.Seq, i int) int { return l.seqBase[seq][i] }

// FieldOff returns the cell offset of field f of slot s (1-based) in
// the arena of the named struct.
func (l *Layout) FieldOff(structName, field string, slot int32) (int, error) {
	fi, ok := l.fieldIdx[structName+"."+field]
	if !ok {
		return 0, fmt.Errorf("state: unknown field %s.%s", structName, field)
	}
	n := l.fieldCnt[structName]
	arena := l.Prog.Arenas[structName]
	if slot < 1 || int(slot) > arena {
		return 0, fmt.Errorf("state: slot %d out of arena %s[%d]", slot, structName, arena)
	}
	return l.heapBase[structName] + (int(slot)-1)*n + fi, nil
}

// State is a machine state: the value cells plus one program counter
// per forked thread (the prologue/epilogue run deterministically).
type State struct {
	Cells []int32
	PCs   []int32
}

// NewState allocates a zeroed state for the layout.
func (l *Layout) NewState() *State {
	return &State{
		Cells: make([]int32, l.Size),
		PCs:   make([]int32, len(l.Prog.Threads)),
	}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{Cells: make([]int32, len(s.Cells)), PCs: make([]int32, len(s.PCs))}
	copy(c.Cells, s.Cells)
	copy(c.PCs, s.PCs)
	return c
}

// CopyFrom overwrites s with src's contents (the states must share a
// layout). It lets the model checker reuse freelisted states instead of
// allocating a fresh Clone per transition.
func (s *State) CopyFrom(src *State) {
	copy(s.Cells, src.Cells)
	copy(s.PCs, src.PCs)
}

// Key returns a 128-bit FNV-1a fingerprint of the state, used as the
// visited-set identity by the model checker (hash compaction, as in
// SPIN).
func (s *State) Key() [16]byte {
	// Two independent 64-bit FNV-1a-style streams with distinct offset
	// bases and primes give a 128-bit fingerprint.
	const (
		off1   = uint64(14695981039346656037)
		off2   = uint64(0x9ae16a3b2f90404f)
		prime1 = uint64(1099511628211)
		prime2 = uint64(0x100000001b3 ^ 0x5bd1e995)
	)
	h1, h2 := off1, off2
	feed := func(v int32) {
		for i := 0; i < 4; i++ {
			b := byte(v >> (8 * i))
			h1 = (h1 ^ uint64(b)) * prime1
			h2 = (h2 ^ uint64(b)) * prime2
		}
	}
	for _, v := range s.Cells {
		feed(v)
	}
	for _, v := range s.PCs {
		feed(v)
	}
	var k [16]byte
	for i := 0; i < 8; i++ {
		k[i] = byte(h1 >> (8 * i))
		k[8+i] = byte(h2 >> (8 * i))
	}
	return k
}
