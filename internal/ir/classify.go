package ir

import (
	"fmt"

	"psketch/internal/ast"
	"psketch/internal/token"
)

// classification of an expression for step granularity decisions.
type class struct {
	shared  bool // reads globals or the heap
	effects bool // performs writes/allocation (builtins, new)
}

// classify analyses which state an expression touches. Globals are
// shared; locals, holes and literals are not. Field accesses always
// touch the heap; array indexing is shared only when the array is a
// global.
func (lo *lowerer) classify(e ast.Expr) class {
	var c class
	ast.WalkExpr(e, func(x ast.Expr) {
		switch n := x.(type) {
		case *ast.Ident:
			if !lo.isLocal(n.Name) && n.Name != TidVar {
				c.shared = true
			}
		case *ast.FieldExpr:
			c.shared = true
		case *ast.CallExpr:
			c.shared = true
			c.effects = true
		case *ast.NewExpr:
			c.shared = true
			c.effects = true
		}
	})
	return c
}

// classifyStmt extends classify to statements, treating writes to
// globals, heap fields, and global arrays as shared.
func (lo *lowerer) classifyStmt(s ast.Stmt) class {
	var c class
	merge := func(o class) {
		c.shared = c.shared || o.shared
		c.effects = c.effects || o.effects
	}
	switch x := s.(type) {
	case nil:
	case *ast.Block:
		for _, st := range x.Stmts {
			merge(lo.classifyStmt(st))
		}
	case *ast.DeclStmt:
		merge(lo.classify(x.Init))
	case *ast.AssignStmt:
		merge(lo.classify(x.LHS))
		merge(lo.classify(x.RHS))
	case *ast.AssertStmt:
		merge(lo.classify(x.Cond))
	case *ast.IfStmt:
		merge(lo.classify(x.Cond))
		merge(lo.classifyStmt(x.Then))
		merge(lo.classifyStmt(x.Else))
	case *ast.ExprStmt:
		merge(lo.classify(x.X))
	default:
		c.shared, c.effects = true, true
	}
	return c
}

// evalConstInt folds an integer expression made of literals and
// arithmetic (used for fork thread counts).
func evalConstInt(e ast.Expr) (int64, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Val, nil
	case *ast.Unary:
		if x.Op == token.SUB {
			v, err := evalConstInt(x.X)
			return -v, err
		}
	case *ast.Binary:
		a, err := evalConstInt(x.X)
		if err != nil {
			return 0, err
		}
		b, err := evalConstInt(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.ADD:
			return a + b, nil
		case token.SUB:
			return a - b, nil
		case token.MUL:
			return a * b, nil
		case token.QUO:
			if b == 0 {
				return 0, fmt.Errorf("%s: division by zero in constant", x.P)
			}
			return a / b, nil
		case token.REM:
			if b == 0 {
				return 0, fmt.Errorf("%s: division by zero in constant", x.P)
			}
			return a % b, nil
		}
	}
	return 0, fmt.Errorf("%s: expected a compile-time integer constant", e.Pos())
}
