package ir

import (
	"psketch/internal/ast"
	"psketch/internal/desugar"
	"psketch/internal/token"
	"psketch/internal/types"
)

// This file is the static footprint analysis behind the model checker's
// partial-order reduction: for every thread step it computes an
// over-approximation of the shared cells (globals and heap arenas) the
// step may read and write under a fixed candidate. Two transitions with
// disjoint footprints commute — executing them in either order reaches
// the same state and neither can enable, disable, or change the effect
// of the other — which is exactly the independence relation persistent
// sets and sleep sets need.
//
// Precision levers (all soundly widened when they do not apply):
//
//   - constant folding over literals, hole values, resolved generator
//     choices, __tid, and arithmetic narrows array indices to single
//     cells (fork indices are substituted as literals per thread, so
//     `results[k]` with a constant k becomes one exclusive cell);
//   - dominance-proven constant locals: a local assigned exactly once,
//     from a constant, before every read, under guards implied by each
//     reader's guards, is folded like a literal (this resolves inlined
//     function parameters such as a thread-id argument);
//   - static allocation sites: every `new` writes a fixed arena slot,
//     and a ref local proven constant resolves field accesses to that
//     exact slot;
//   - unknown array indices widen to the whole array, unknown field
//     receivers widen to the field's column across the arena, and any
//     construct outside the analysed fragment widens to everything.

// Loc is one symbolic set of shared cells. Exactly one shape applies:
//
//   - Global >= 0: cells [Lo,Hi) of Program.Globals[Global];
//   - Struct != "", Field != "": that field of Struct — Slot > 0 is the
//     exact 1-based arena slot, Slot == 0 every slot (widened);
//   - Struct != "", Field == "": every field of arena slot Slot (an
//     allocation site).
type Loc struct {
	Global        int
	Lo, Hi        int
	Struct, Field string
	Slot          int
}

// Footprint over-approximates the shared cells one step touches. All
// marks a step widened to "may touch anything".
type Footprint struct {
	Reads, Writes []Loc
	All           bool
}

// Footprints computes the footprint of every thread step of p under the
// candidate (generator choices select which access expressions run, and
// hole values fold into indices). Result is indexed [thread][step].
func Footprints(p *Program, cand desugar.Candidate) [][]Footprint {
	out := make([][]Footprint, len(p.Threads))
	for t, seq := range p.Threads {
		a := &fpAnalyzer{p: p, seq: seq, cand: cand}
		a.findConstLocals()
		fps := make([]Footprint, len(seq.Steps))
		for i, s := range seq.Steps {
			fps[i] = a.step(s)
		}
		out[t] = fps
	}
	return out
}

type fpAnalyzer struct {
	p      *Program
	seq    *Seq
	cand   desugar.Candidate
	consts map[string]int64 // dominance-proven constant locals

	fp *Footprint // footprint under construction
}

// ------------------------------------------------------ constant locals

// occurrence locates one use or definition of a local in the sequence.
type occurrence struct {
	step, pos int // step index; top-level body position (-1: guard/cond)
}

type localInfo struct {
	assigns  int
	def      occurrence
	rhs      ast.Expr
	impure   bool // nested/builtin/array writes: never constant
	readsAny bool
	reads    []occurrence
}

// findConstLocals proves locals constant: assigned exactly once by a
// top-level body assignment whose value folds, with every read
// lexically after the definition and guarded at least as strongly
// (the defining step's guard conjunction is an identity-prefix of the
// reader's, so a read implies the definition ran).
func (a *fpAnalyzer) findConstLocals() {
	a.consts = map[string]int64{}
	info := map[string]*localInfo{}
	at := func(name string) *localInfo {
		li := info[name]
		if li == nil {
			li = &localInfo{}
			info[name] = li
		}
		return li
	}

	noteReads := func(e ast.Expr, occ occurrence) {
		ast.WalkExpr(e, func(x ast.Expr) {
			if id, ok := x.(*ast.Ident); ok && a.seq.Local(id.Name) >= 0 {
				li := at(id.Name)
				li.reads = append(li.reads, occ)
			}
		})
	}
	var noteStmt func(s ast.Stmt, occ occurrence, top bool)
	noteStmt = func(s ast.Stmt, occ occurrence, top bool) {
		switch x := s.(type) {
		case *ast.Block:
			for _, st := range x.Stmts {
				noteStmt(st, occ, false)
			}
		case *ast.AssignStmt:
			lhs := a.resolveRegen(x.LHS)
			if id, ok := lhs.(*ast.Ident); ok && a.seq.Local(id.Name) >= 0 {
				li := at(id.Name)
				li.assigns++
				if top && li.assigns == 1 {
					li.def, li.rhs = occ, x.RHS
				} else {
					li.impure = true
				}
			} else {
				noteReads(x.LHS, occ)
			}
			noteReads(x.RHS, occ)
		case *ast.AssertStmt:
			noteReads(x.Cond, occ)
		case *ast.ExprStmt:
			noteReads(x.X, occ)
		case *ast.IfStmt:
			noteReads(x.Cond, occ)
			noteStmt(x.Then, occ, false)
			if x.Else != nil {
				noteStmt(x.Else, occ, false)
			}
		}
	}
	// Builtin first arguments are written in place; a local used there is
	// not constant. Writes through index/slice l-values read the index
	// but never redefine the (array) local as a scalar constant.
	markBuiltinWrites := func(e ast.Expr, _ occurrence) {
		ast.WalkExpr(e, func(x ast.Expr) {
			if c, ok := x.(*ast.CallExpr); ok && len(c.Args) > 0 {
				if id, ok := a.resolveRegen(c.Args[0]).(*ast.Ident); ok {
					at(id.Name).impure = true
				}
			}
		})
	}

	for si, s := range a.seq.Steps {
		gocc := occurrence{si, -1}
		for _, g := range s.Guards {
			noteReads(g, gocc)
		}
		if s.Cond != nil {
			noteReads(s.Cond, gocc)
			markBuiltinWrites(s.Cond, gocc)
		}
		for bi, st := range s.Body {
			occ := occurrence{si, bi}
			noteStmt(st, occ, true)
			if as, ok := st.(*ast.AssignStmt); ok {
				markBuiltinWrites(as.RHS, occ)
			} else {
				var walkAll func(ast.Stmt)
				walkAll = func(s2 ast.Stmt) {
					switch x := s2.(type) {
					case *ast.Block:
						for _, st2 := range x.Stmts {
							walkAll(st2)
						}
					case *ast.IfStmt:
						markBuiltinWrites(x.Cond, occ)
						walkAll(x.Then)
						if x.Else != nil {
							walkAll(x.Else)
						}
					case *ast.AssertStmt:
						markBuiltinWrites(x.Cond, occ)
					case *ast.ExprStmt:
						markBuiltinWrites(x.X, occ)
					case *ast.AssignStmt:
						markBuiltinWrites(x.RHS, occ)
					}
				}
				walkAll(st)
			}
		}
	}

	// Fold in step order so constant chains (x = 2; y = x + 1) resolve.
	type cdef struct {
		name string
		li   *localInfo
	}
	var defs []cdef
	for name, li := range info {
		if li.assigns == 1 && !li.impure {
			defs = append(defs, cdef{name, li})
		}
	}
	// Deterministic order: by definition position.
	for i := 0; i < len(defs); i++ {
		for j := i + 1; j < len(defs); j++ {
			a, b := defs[i].li.def, defs[j].li.def
			if b.step < a.step || (b.step == a.step && b.pos < a.pos) {
				defs[i], defs[j] = defs[j], defs[i]
			}
		}
	}
	for _, d := range defs {
		v, ok := a.foldConst(d.li.rhs)
		if !ok || !a.readsDominated(d.li) {
			continue
		}
		a.consts[d.name] = v
	}
}

// readsDominated checks every read happens after the definition and
// under guards that include the definition's (identity prefix).
func (a *fpAnalyzer) readsDominated(li *localInfo) bool {
	defG := a.seq.Steps[li.def.step].Guards
	for _, r := range li.reads {
		if r.step < li.def.step {
			return false
		}
		if r.step == li.def.step && r.pos <= li.def.pos {
			return false
		}
		if r.step != li.def.step && !guardPrefix(defG, a.seq.Steps[r.step].Guards) {
			return false
		}
	}
	return true
}

// guardPrefix reports whether pre is an identity-prefix of g (guard
// expressions are shared pointers down the lowering's guard stack).
func guardPrefix(pre, g []ast.Expr) bool {
	if len(pre) > len(g) {
		return false
	}
	for i, e := range pre {
		if g[i] != e {
			return false
		}
	}
	return true
}

// -------------------------------------------------------- constant fold

func (a *fpAnalyzer) resolveRegen(e ast.Expr) ast.Expr {
	for {
		r, ok := e.(*ast.Regen)
		if !ok {
			return e
		}
		meta := a.p.Sketch.Holes[r.ID]
		e = r.Choices[a.cand.Choice(r.ID, meta.Choices)]
	}
}

// wrapW truncates to the program's W-bit two's complement, mirroring the
// concrete interpreter.
func (a *fpAnalyzer) wrapW(v int64) int64 {
	w := uint(a.p.W)
	m := int64(1) << w
	v &= m - 1
	if v >= m>>1 {
		v -= m
	}
	return v
}

// foldConst evaluates an expression to a compile-time constant under the
// candidate (hole values, generator choices, __tid, proven-constant
// locals). Allocation folds to its static arena slot. The result
// mirrors the interpreter bit-for-bit (W-bit wrapping).
func (a *fpAnalyzer) foldConst(e ast.Expr) (int64, bool) {
	switch x := a.resolveRegen(e).(type) {
	case *ast.IntLit:
		return a.wrapW(x.Val), true
	case *ast.BoolLit:
		if x.Val {
			return 1, true
		}
		return 0, true
	case *ast.NullLit:
		return 0, true
	case *ast.Ident:
		if x.Name == TidVar {
			return int64(a.seq.Tid), true
		}
		if v, ok := a.consts[x.Name]; ok {
			return v, true
		}
		return 0, false
	case *ast.Hole:
		meta := a.p.Sketch.Holes[x.ID]
		v := a.cand.Value(x.ID)
		if meta.Kind == desugar.HoleBool {
			if v != 0 {
				return 1, true
			}
			return 0, true
		}
		return a.wrapW(v), true
	case *ast.NewExpr:
		if x.Site >= 0 && x.Site < len(a.p.Sites) {
			return int64(a.p.Sites[x.Site].Slot), true
		}
		return 0, false
	case *ast.Unary:
		v, ok := a.foldConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case token.SUB:
			return a.wrapW(-v), true
		}
		return 0, false
	case *ast.Binary:
		l, ok := a.foldConst(x.X)
		if !ok {
			return 0, false
		}
		r, ok := a.foldConst(x.Y)
		if !ok {
			return 0, false
		}
		b := func(c bool) (int64, bool) {
			if c {
				return 1, true
			}
			return 0, true
		}
		switch x.Op {
		case token.ADD:
			return a.wrapW(l + r), true
		case token.SUB:
			return a.wrapW(l - r), true
		case token.MUL:
			return a.wrapW(l * r), true
		case token.QUO:
			if r == 0 {
				return 0, false
			}
			return a.wrapW(l / r), true
		case token.REM:
			if r == 0 {
				return 0, false
			}
			return a.wrapW(l % r), true
		case token.EQ:
			return b(l == r)
		case token.NEQ:
			return b(l != r)
		case token.LT:
			return b(l < r)
		case token.LEQ:
			return b(l <= r)
		case token.GT:
			return b(l > r)
		case token.GEQ:
			return b(l >= r)
		case token.LAND:
			return b(l != 0 && r != 0)
		case token.LOR:
			return b(l != 0 || r != 0)
		}
		return 0, false
	}
	return 0, false
}

// ---------------------------------------------------- footprint walking

func (a *fpAnalyzer) step(s *Step) Footprint {
	fp := Footprint{}
	a.fp = &fp
	for _, g := range s.Guards {
		a.reads(g)
	}
	if s.Cond != nil {
		a.reads(s.Cond)
	}
	for _, st := range s.Body {
		a.stmt(st)
	}
	a.fp = nil
	if fp.All {
		return Footprint{All: true}
	}
	return fp
}

func (a *fpAnalyzer) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		for _, st := range x.Stmts {
			a.stmt(st)
		}
	case *ast.AssignStmt:
		a.write(x.LHS)
		a.reads(x.RHS)
	case *ast.AssertStmt:
		a.reads(x.Cond)
	case *ast.ExprStmt:
		a.reads(x.X)
	case *ast.IfStmt:
		a.reads(x.Cond)
		a.stmt(x.Then)
		if x.Else != nil {
			a.stmt(x.Else)
		}
	default:
		a.fp.All = true
	}
}

// write records the cells the l-value designates as written (and the
// reads performed while resolving it).
func (a *fpAnalyzer) write(e ast.Expr) {
	locs, ok := a.target(e)
	if !ok {
		a.fp.All = true
		return
	}
	a.fp.Writes = append(a.fp.Writes, locs...)
}

// target resolves an l-value to its shared cells (nil for thread-local
// storage), recording the reads its evaluation performs. ok=false means
// the shape is outside the analysed fragment (caller widens).
func (a *fpAnalyzer) target(e ast.Expr) ([]Loc, bool) {
	switch x := a.resolveRegen(e).(type) {
	case *ast.Ident:
		if a.seq.Local(x.Name) >= 0 || x.Name == TidVar {
			return nil, true
		}
		if i := a.p.Global(x.Name); i >= 0 {
			return []Loc{{Global: i, Lo: 0, Hi: cellCount(a.p.Globals[i].Type)}}, true
		}
		return nil, false
	case *ast.FieldExpr:
		a.reads(x.X)
		sn, err := a.p.StructOf(a.seq, x)
		if err != nil {
			return nil, false
		}
		if slot, ok := a.foldConst(x.X); ok {
			if slot <= 0 || int(slot) > a.p.Arenas[sn] {
				// Null (faults before any heap access) or impossible.
				return nil, true
			}
			return []Loc{{Global: -1, Struct: sn, Field: x.Name, Slot: int(slot)}}, true
		}
		return []Loc{{Global: -1, Struct: sn, Field: x.Name}}, true
	case *ast.IndexExpr:
		a.reads(x.Index)
		base, ok := a.target(x.X)
		if !ok {
			return nil, false
		}
		if base == nil {
			return nil, true // local array
		}
		if len(base) != 1 || base[0].Global < 0 {
			return nil, false
		}
		b := base[0]
		if idx, ok := a.foldConst(x.Index); ok {
			if idx < int64(b.Lo) || idx >= int64(b.Hi) {
				return nil, true // out of bounds: faults, no access
			}
			return []Loc{{Global: b.Global, Lo: int(idx), Hi: int(idx) + 1}}, true
		}
		return base, true
	case *ast.SliceExpr:
		a.reads(x.Start)
		base, ok := a.target(x.X)
		if !ok {
			return nil, false
		}
		if base == nil {
			return nil, true
		}
		if len(base) != 1 || base[0].Global < 0 {
			return nil, false
		}
		b := base[0]
		if st, ok := a.foldConst(x.Start); ok && st >= int64(b.Lo) && st+int64(x.Len) <= int64(b.Hi) {
			return []Loc{{Global: b.Global, Lo: int(st), Hi: int(st) + x.Len}}, true
		}
		return base, true
	}
	return nil, false
}

// reads records every shared cell the expression may read (builtins also
// write their first argument; allocation writes its site's slot).
func (a *fpAnalyzer) reads(e ast.Expr) {
	switch x := a.resolveRegen(e).(type) {
	case nil:
	case *ast.IntLit, *ast.BoolLit, *ast.NullLit, *ast.BitsLit, *ast.Hole:
	case *ast.Ident:
		locs, ok := a.target(x)
		if !ok {
			a.fp.All = true
			return
		}
		a.fp.Reads = append(a.fp.Reads, locs...)
	case *ast.FieldExpr, *ast.IndexExpr, *ast.SliceExpr:
		locs, ok := a.target(x)
		if !ok {
			a.fp.All = true
			return
		}
		a.fp.Reads = append(a.fp.Reads, locs...)
	case *ast.Unary:
		a.reads(x.X)
	case *ast.Binary:
		a.reads(x.X)
		a.reads(x.Y)
	case *ast.CastExpr:
		a.reads(x.X)
	case *ast.CallExpr:
		// Atomic builtins read and write their first argument in place.
		if len(x.Args) > 0 {
			a.reads(x.Args[0])
			a.write(x.Args[0])
			for _, arg := range x.Args[1:] {
				a.reads(arg)
			}
			return
		}
		a.fp.All = true
	case *ast.NewExpr:
		if x.Site < 0 || x.Site >= len(a.p.Sites) {
			a.fp.All = true
			return
		}
		site := a.p.Sites[x.Site]
		a.fp.Writes = append(a.fp.Writes, Loc{Global: -1, Struct: site.Struct, Slot: site.Slot})
		for _, arg := range x.Args {
			a.reads(arg)
		}
		if si := a.p.Sketch.Info.Structs[x.Type]; si != nil {
			for _, f := range si.Fields {
				if f.Default != nil {
					a.reads(f.Default)
				}
			}
		}
	default:
		a.fp.All = true
	}
}

func cellCount(t types.Type) int {
	if t.IsArray() {
		return t.Len
	}
	return 1
}
