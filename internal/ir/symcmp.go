package ir

import (
	"psketch/internal/ast"
	"psketch/internal/types"
)

// symCmp compares two thread sequences in lockstep, folding each side
// with its own analyzer, and records the generator moves the divergences
// induce into acc. Divergence is only ever accepted at the positions
// documented in symmetry.go; any other mismatch fails the comparison
// (and with it the class). For the epilogue self-matching pass a and b
// are the same analyzer and only single steps are compared.
type symCmp struct {
	p    *Program
	a, b *fpAnalyzer
	acc  *symAcc
}

func (c *symCmp) seqs() bool {
	sa, sb := c.a.seq, c.b.seq
	if len(sa.Steps) != len(sb.Steps) || len(sa.Locals) != len(sb.Locals) {
		return false
	}
	for i := range sa.Locals {
		if sa.Locals[i].Type != sb.Locals[i].Type {
			return false
		}
	}
	for i := range sa.Steps {
		if !c.step(sa.Steps[i], sb.Steps[i]) {
			symDebugf("sym: step %d (%q vs %q) diverges", i, sa.Steps[i].Label, sb.Steps[i].Label)
			return false
		}
	}
	return true
}

func (c *symCmp) step(sa, sb *Step) bool {
	if len(sa.Guards) != len(sb.Guards) || len(sa.Body) != len(sb.Body) {
		return false
	}
	for i := range sa.Guards {
		if !c.expr(sa.Guards[i], sb.Guards[i]) {
			return false
		}
	}
	if (sa.Cond == nil) != (sb.Cond == nil) {
		return false
	}
	if sa.Cond != nil && !c.expr(sa.Cond, sb.Cond) {
		return false
	}
	for i := range sa.Body {
		if !c.stmt(sa.Body[i], sb.Body[i], true) {
			return false
		}
	}
	return true
}

func (c *symCmp) stmt(sa, sb ast.Stmt, top bool) bool {
	switch xa := sa.(type) {
	case *ast.Block:
		xb, ok := sb.(*ast.Block)
		if !ok || len(xa.Stmts) != len(xb.Stmts) {
			return false
		}
		for i := range xa.Stmts {
			if !c.stmt(xa.Stmts[i], xb.Stmts[i], false) {
				return false
			}
		}
		return true
	case *ast.AssignStmt:
		xb, ok := sb.(*ast.AssignStmt)
		if !ok {
			return false
		}
		return c.assign(xa, xb, top)
	case *ast.AssertStmt:
		xb, ok := sb.(*ast.AssertStmt)
		return ok && c.expr(xa.Cond, xb.Cond)
	case *ast.ExprStmt:
		xb, ok := sb.(*ast.ExprStmt)
		return ok && c.expr(xa.X, xb.X)
	case *ast.IfStmt:
		xb, ok := sb.(*ast.IfStmt)
		if !ok {
			return false
		}
		if !c.expr(xa.Cond, xb.Cond) {
			return false
		}
		if !c.stmt(xa.Then, xb.Then, false) {
			return false
		}
		if (xa.Else == nil) != (xb.Else == nil) {
			return false
		}
		return xa.Else == nil || c.stmt(xa.Else, xb.Else, false)
	}
	return false
}

// assign compares an assignment. Writes to locals compare the target by
// position only (the value correspondence lives in the RHS); this is
// also the one place where folded values may legitimately diverge: the
// defining assignment of a proven-constant scalar local (the fork index
// and its derivatives), which the block rotation rewrites. symmetry.go's
// collectForkLocals re-derives and further validates those defs.
func (c *symCmp) assign(xa, xb *ast.AssignStmt, top bool) bool {
	lhsA := c.a.resolveRegen(xa.LHS)
	lhsB := c.b.resolveRegen(xb.LHS)
	ida, isIdA := lhsA.(*ast.Ident)
	idb, isIdB := lhsB.(*ast.Ident)
	if isIdA && isIdB {
		la, lb := c.a.seq.Local(ida.Name), c.b.seq.Local(idb.Name)
		if (la >= 0) != (lb >= 0) {
			return false
		}
		if la >= 0 {
			if la != lb {
				return false
			}
			if c.expr(xa.RHS, xb.RHS) {
				return true
			}
			if !top {
				return false
			}
			t := c.a.seq.Locals[la].Type
			if t.Base == types.Ref || t.IsArray() {
				return false
			}
			_, ca := c.a.consts[ida.Name]
			_, cb := c.b.consts[idb.Name]
			va, oka := c.a.foldConst(xa.RHS)
			vb, okb := c.b.foldConst(xb.RHS)
			return ca && cb && oka && okb && va != vb
		}
	}
	if !c.expr(xa.LHS, xb.LHS) {
		return false
	}
	return c.expr(xa.RHS, xb.RHS)
}

// expr compares two expressions in value position. Both sides must fold
// to the same constant, or fail to fold and agree structurally (with
// the index/receiver divergences the structural walk absorbs as
// generator moves). Reference-typed expressions compare as references:
// their runtime values travel through the heap isomorphism, so folded
// slot constants pair up instead of having to agree.
func (c *symCmp) expr(ea, eb ast.Expr) bool {
	ra := c.a.resolveRegen(ea)
	rb := c.b.resolveRegen(eb)
	// __tid matches __tid; where it may appear is validated separately
	// by the lock/unlock shape scan.
	if ia, ok := ra.(*ast.Ident); ok && ia.Name == TidVar {
		ib, ok := rb.(*ast.Ident)
		return ok && ib.Name == TidVar
	}
	ta, errA := c.p.StaticType(c.a.seq, ra)
	tb, errB := c.p.StaticType(c.b.seq, rb)
	if errA != nil || errB != nil || ta != tb {
		return false
	}
	if ta.Base == types.Ref && !ta.IsArray() {
		return c.refExpr(ra, rb)
	}
	va, oka := c.a.foldConst(ra)
	vb, okb := c.b.foldConst(rb)
	if oka != okb {
		return false
	}
	if oka {
		return va == vb
	}
	return c.structural(ra, rb)
}

// structural compares two non-folding, non-reference expressions node
// by node.
func (c *symCmp) structural(ra, rb ast.Expr) bool {
	switch xa := ra.(type) {
	case *ast.Ident:
		xb, ok := rb.(*ast.Ident)
		if !ok {
			return false
		}
		la, lb := c.a.seq.Local(xa.Name), c.b.seq.Local(xb.Name)
		if (la >= 0) != (lb >= 0) {
			return false
		}
		if la >= 0 {
			if la != lb {
				return false
			}
			// A fork-derived constant read where the enclosing
			// expression did not fold would evaluate differently under
			// the identity correspondence of local blocks: the values
			// must agree (e.g. `(p + t) % 2` guards reject here).
			va, ca := c.a.consts[xa.Name]
			vb, cb := c.b.consts[xb.Name]
			if ca != cb || (ca && va != vb) {
				return false
			}
			return true
		}
		ga, gb := c.p.Global(xa.Name), c.p.Global(xb.Name)
		if ga < 0 || ga != gb {
			return false
		}
		// Reading a whole shared array order-dependently is only sound
		// if the rotation does not move its cells.
		if c.p.Globals[ga].Type.IsArray() {
			c.acc.dyn[ga] = true
		}
		return true
	case *ast.BitsLit:
		xb, ok := rb.(*ast.BitsLit)
		return ok && xa.Text == xb.Text
	case *ast.Unary:
		xb, ok := rb.(*ast.Unary)
		return ok && xa.Op == xb.Op && c.expr(xa.X, xb.X)
	case *ast.Binary:
		xb, ok := rb.(*ast.Binary)
		return ok && xa.Op == xb.Op && c.expr(xa.X, xb.X) && c.expr(xa.Y, xb.Y)
	case *ast.FieldExpr:
		xb, ok := rb.(*ast.FieldExpr)
		return ok && c.fieldExpr(xa, xb)
	case *ast.IndexExpr:
		xb, ok := rb.(*ast.IndexExpr)
		return ok && c.indexExpr(xa, xb)
	case *ast.SliceExpr:
		xb, ok := rb.(*ast.SliceExpr)
		if !ok || xa.Len != xb.Len {
			return false
		}
		// Conservative: the base is treated as a whole-array access
		// (dyn-marked if global), and the start offsets must agree.
		if !c.expr(xa.X, xb.X) {
			return false
		}
		return c.expr(xa.Start, xb.Start)
	case *ast.CallExpr:
		xb, ok := rb.(*ast.CallExpr)
		if !ok || xa.Fun != xb.Fun || len(xa.Args) != len(xb.Args) {
			return false
		}
		for i := range xa.Args {
			if !c.expr(xa.Args[i], xb.Args[i]) {
				return false
			}
		}
		return true
	case *ast.CastExpr:
		xb, ok := rb.(*ast.CastExpr)
		return ok && xa.Type == xb.Type && c.expr(xa.X, xb.X)
	}
	return false
}

// refExpr compares two reference-typed expressions.
func (c *symCmp) refExpr(ra, rb ast.Expr) bool {
	switch xa := ra.(type) {
	case *ast.NullLit:
		_, ok := rb.(*ast.NullLit)
		return ok
	case *ast.Ident:
		xb, ok := rb.(*ast.Ident)
		if !ok {
			return false
		}
		la, lb := c.a.seq.Local(xa.Name), c.b.seq.Local(xb.Name)
		if (la >= 0) != (lb >= 0) {
			return false
		}
		if la >= 0 {
			// Runtime slot values travel through the heap isomorphism;
			// proven-constant ref locals recorded their slot pair at
			// their defining allocation or receiver fold.
			return la == lb
		}
		ga, gb := c.p.Global(xa.Name), c.p.Global(xb.Name)
		return ga >= 0 && ga == gb
	case *ast.NewExpr:
		xb, ok := rb.(*ast.NewExpr)
		if !ok || xa.Type != xb.Type || len(xa.Args) != len(xb.Args) {
			return false
		}
		if xa.Site < 0 || xa.Site >= len(c.p.Sites) || xb.Site < 0 || xb.Site >= len(c.p.Sites) {
			return false
		}
		sa, sb := c.p.Sites[xa.Site], c.p.Sites[xb.Site]
		if sa.Struct != sb.Struct || !c.acc.addSlot(sa.Struct, sa.Slot, sb.Slot) {
			return false
		}
		for i := range xa.Args {
			if !c.expr(xa.Args[i], xb.Args[i]) {
				return false
			}
		}
		return true
	case *ast.FieldExpr:
		xb, ok := rb.(*ast.FieldExpr)
		return ok && c.fieldExpr(xa, xb)
	case *ast.IndexExpr:
		xb, ok := rb.(*ast.IndexExpr)
		return ok && c.indexExpr(xa, xb)
	case *ast.CallExpr:
		xb, ok := rb.(*ast.CallExpr)
		if !ok || xa.Fun != xb.Fun || len(xa.Args) != len(xb.Args) {
			return false
		}
		for i := range xa.Args {
			if !c.expr(xa.Args[i], xb.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// fieldExpr compares two field accesses. Receivers that fold to
// distinct arena slots are an approved divergence recorded as a slot
// move (equal folds record the identity constraint, keeping the maps
// bijective).
func (c *symCmp) fieldExpr(fa, fb *ast.FieldExpr) bool {
	if fa.Name != fb.Name {
		return false
	}
	sa, errA := c.p.StructOf(c.a.seq, fa)
	sb, errB := c.p.StructOf(c.b.seq, fb)
	if errA != nil || errB != nil || sa != sb {
		return false
	}
	va, oka := c.a.foldConst(fa.X)
	vb, okb := c.b.foldConst(fb.X)
	if oka != okb {
		return false
	}
	if oka {
		inA := va > 0 && int(va) <= c.p.Arenas[sa]
		inB := vb > 0 && int(vb) <= c.p.Arenas[sa]
		if inA != inB {
			return false
		}
		if !inA {
			return va == vb // null faults identically on both sides
		}
		return c.acc.addSlot(sa, int(va), int(vb))
	}
	return c.refExpr(c.a.resolveRegen(fa.X), c.b.resolveRegen(fb.X))
}

// indexExpr compares two array accesses. Indices into the same global
// array that fold to distinct cells are the canonical approved
// divergence, recorded as a cell move; dynamic indices compare
// structurally and mark the global (the class fails if the rotation
// moves a dynamically indexed array).
func (c *symCmp) indexExpr(xa, xb *ast.IndexExpr) bool {
	ia := c.a.resolveRegen(xa.X)
	ib := c.b.resolveRegen(xb.X)
	ida, okA := ia.(*ast.Ident)
	idb, okB := ib.(*ast.Ident)
	if !okA || !okB {
		return false
	}
	la, lb := c.a.seq.Local(ida.Name), c.b.seq.Local(idb.Name)
	if (la >= 0) != (lb >= 0) {
		return false
	}
	if la >= 0 {
		// Local array: blocks rotate wholesale, so the intra-block
		// index must agree.
		if la != lb {
			return false
		}
		va, oka := c.a.foldConst(xa.Index)
		vb, okb := c.b.foldConst(xb.Index)
		if oka != okb {
			return false
		}
		if oka {
			return va == vb
		}
		return c.expr(xa.Index, xb.Index)
	}
	ga, gb := c.p.Global(ida.Name), c.p.Global(idb.Name)
	if ga < 0 || ga != gb {
		return false
	}
	va, oka := c.a.foldConst(xa.Index)
	vb, okb := c.b.foldConst(xb.Index)
	if oka != okb {
		return false
	}
	if !oka {
		c.acc.dyn[ga] = true
		return c.expr(xa.Index, xb.Index)
	}
	n := int64(cellCount(c.p.Globals[ga].Type))
	inA := va >= 0 && va < n
	inB := vb >= 0 && vb < n
	if inA != inB {
		return false
	}
	if !inA {
		return true // both fault out of bounds: identical outcome
	}
	return c.acc.addCell(ga, int(va), int(vb))
}
