package ir

import (
	"strings"
	"testing"

	"psketch/internal/ast"
	"psketch/internal/desugar"
	"psketch/internal/parser"
	"psketch/internal/types"
)

func lowerSrc(t *testing.T, src, target string, opts desugar.Options) *Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPhasesAndThreads(t *testing.T) {
	p := lowerSrc(t, `
int g;
harness void Main() {
	g = 1;
	fork (i; 3) { g = g + 1; }
	assert g > 0;
}
`, "Main", desugar.Options{})
	if !p.Concurrent() || p.NumThreads() != 3 {
		t.Fatalf("threads: %d", p.NumThreads())
	}
	if len(p.Prologue.Steps) == 0 || len(p.Epilogue.Steps) == 0 {
		t.Fatal("prologue/epilogue empty")
	}
	if p.MainTid() != 4 {
		t.Fatalf("main tid %d", p.MainTid())
	}
	// Fork index substitution: each thread's guard/step set is distinct
	// only through the substituted constant, so tids must be 1..3.
	for i, th := range p.Threads {
		if th.Tid != i+1 {
			t.Fatalf("thread %d tid %d", i, th.Tid)
		}
	}
}

// Loop unrolling: LoopBound condition evaluations plus a termination
// assert, sharing holes across iterations.
func TestLoopUnroll(t *testing.T) {
	p := lowerSrc(t, `
int g;
harness void Main() {
	fork (i; 1) {
		while (g < 3) { g = g + ??(2); }
	}
}
`, "Main", desugar.Options{LoopBound: 4})
	seq := p.Threads[0]
	conds, bounds := 0, 0
	ids := map[int]bool{}
	for _, s := range seq.Steps {
		if strings.HasPrefix(s.Label, "while[") {
			conds++
		}
		if strings.HasPrefix(s.Label, "while bound") {
			bounds++
		}
		for _, b := range s.Body {
			ast.WalkExprs(b, func(e ast.Expr) {
				if h, ok := e.(*ast.Hole); ok {
					ids[h.ID] = true
				}
			})
		}
	}
	if conds != 4 || bounds != 1 {
		t.Fatalf("conds=%d bounds=%d", conds, bounds)
	}
	if len(ids) != 1 {
		t.Fatalf("loop iterations do not share the hole: %v", ids)
	}
}

// lock/unlock lower to the Figure 7 conditional-atomic encoding.
func TestLockLowering(t *testing.T) {
	p := lowerSrc(t, `
struct L { int v = 0; }
L a;
harness void Main() {
	a = new L();
	fork (i; 1) {
		lock(a);
		unlock(a);
	}
}
`, "Main", desugar.Options{})
	seq := p.Threads[0]
	var lockStep, unlockStep *Step
	for _, s := range seq.Steps {
		if strings.HasPrefix(s.Label, "lock(") {
			lockStep = s
		}
		if strings.HasPrefix(s.Label, "unlock(") {
			unlockStep = s
		}
	}
	if lockStep == nil || lockStep.Cond == nil {
		t.Fatal("lock step must have a blocking condition")
	}
	if unlockStep == nil || unlockStep.Cond != nil {
		t.Fatal("unlock step must not block")
	}
	// Unlock asserts ownership.
	if _, ok := unlockStep.Body[0].(*ast.AssertStmt); !ok {
		t.Fatal("unlock must assert ownership")
	}
}

// Static allocation: every `new` gets its own arena slot.
func TestAllocSites(t *testing.T) {
	p := lowerSrc(t, `
struct N { int v; }
N a;
N b;
harness void Main() {
	a = new N(1);
	b = new N(2);
	fork (i; 2) {
		N c = new N(3);
		c = c;
	}
}
`, "Main", desugar.Options{})
	// 2 prologue sites + 2 per-thread clones = 4 slots.
	if p.Arenas["N"] != 4 {
		t.Fatalf("arena %d", p.Arenas["N"])
	}
	slots := map[int]bool{}
	for _, s := range p.Sites {
		if s.Struct != "N" || slots[s.Slot] {
			t.Fatalf("bad sites %v", p.Sites)
		}
		slots[s.Slot] = true
	}
}

// Guards only mention thread-local state; shared-reading conditions get
// an evaluation step.
func TestGuardLocality(t *testing.T) {
	p := lowerSrc(t, `
int g;
harness void Main() {
	fork (i; 1) {
		int x = 0;
		if (x == 0) { x = 1; }
		if (g == 0) { x = 2; }
	}
}
`, "Main", desugar.Options{})
	seq := p.Threads[0]
	evalSteps := 0
	for _, s := range seq.Steps {
		for _, gexpr := range s.Guards {
			ast.WalkExpr(gexpr, func(e ast.Expr) {
				if id, ok := e.(*ast.Ident); ok {
					if p.Global(id.Name) >= 0 {
						t.Fatalf("guard reads global %s", id.Name)
					}
				}
			})
		}
		if strings.HasPrefix(s.Label, "if ") {
			evalSteps++
		}
	}
	if evalSteps != 1 {
		t.Fatalf("expected exactly one condition-evaluation step, got %d", evalSteps)
	}
}

func TestStaticTypeResolution(t *testing.T) {
	p := lowerSrc(t, `
struct N { N next = null; int v; }
N head;
harness void Main() {
	head = new N(1);
	fork (i; 1) {
		N x = head.next;
		x = x;
	}
}
`, "Main", desugar.Options{})
	seq := p.Threads[0]
	var fe *ast.FieldExpr
	for _, s := range seq.Steps {
		for _, b := range s.Body {
			ast.WalkExprs(b, func(e ast.Expr) {
				if f, ok := e.(*ast.FieldExpr); ok && f.Name == "next" {
					fe = f
				}
			})
		}
	}
	if fe == nil {
		t.Fatal("field access not found")
	}
	sn, err := p.StructOf(seq, fe)
	if err != nil || sn != "N" {
		t.Fatalf("StructOf = %q, %v", sn, err)
	}
	ty, err := p.StaticType(seq, fe)
	if err != nil || !ty.Equal(types.RefTo("N")) {
		t.Fatalf("StaticType = %v, %v", ty, err)
	}
}

func TestSequentialMode(t *testing.T) {
	p := lowerSrc(t, `
int spec(int x) { return x + 1; }
int f(int x) implements spec { return x + ??; }
`, "f", desugar.Options{})
	if p.Concurrent() {
		t.Fatal("sequential program misclassified")
	}
	if p.Spec == nil || p.ResultVar == "" || p.SpecResultVar == "" {
		t.Fatal("spec wiring missing")
	}
	if len(p.Inputs) != 1 || p.Inputs[0].Name != "x" {
		t.Fatalf("inputs: %v", p.Inputs)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		// two forks
		`harness void Main() { fork (i; 1) { } fork (j; 1) { } }`,
		// effectful blocking condition
		`int g; harness void Main() { fork (i; 1) { atomic (AtomicSwap(g, 1) == 0) { } } }`,
	}
	for _, src := range cases {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := desugar.Desugar(prog, "Main", desugar.Options{})
		if err != nil {
			continue // also acceptable: rejected earlier
		}
		if _, err := Lower(sk); err == nil {
			t.Errorf("Lower(%q): expected error", src)
		}
	}
}

// Nested atomic bodies: declarations hoist to assignments; ifs stay
// nested; globals initialize via the init sequence.
func TestAtomicNormalizationAndGlobalInit(t *testing.T) {
	p := lowerSrc(t, `
struct N { N next = null; int v; }
int g = 3;
N head;
harness void Main() {
	fork (i; 1) {
		atomic {
			int t = g;
			if (t > 0) { g = t - 1; } else { g = 0; }
		}
	}
}
`, "Main", desugar.Options{})
	if len(p.GlobalInit.Steps) != 1 {
		t.Fatalf("global init steps: %d", len(p.GlobalInit.Steps))
	}
	seq := p.Threads[0]
	if len(seq.Steps) != 1 {
		t.Fatalf("atomic should be one step, got %d", len(seq.Steps))
	}
	step := seq.Steps[0]
	if _, ok := step.Body[0].(*ast.AssignStmt); !ok {
		t.Fatalf("decl not hoisted: %T", step.Body[0])
	}
	if _, ok := step.Body[1].(*ast.IfStmt); !ok {
		t.Fatalf("if not preserved: %T", step.Body[1])
	}
	found := false
	for _, v := range seq.Locals {
		if strings.HasPrefix(v.Name, "t_") || v.Name == "t" {
			found = true
		}
	}
	if !found {
		t.Fatalf("atomic-local variable not hoisted: %v", seq.Locals)
	}
}

func TestRejectWhileInsideAtomic(t *testing.T) {
	prog, err := parser.Parse(`
int g;
harness void Main() {
	fork (i; 1) {
		atomic { while (g > 0) { g = g - 1; } }
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "Main", desugar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(sk); err == nil {
		t.Fatal("expected error for while inside atomic")
	}
}

func TestStaticTypeKinds(t *testing.T) {
	p := lowerSrc(t, `
struct N { N next = null; int v; }
N head;
int[4] xs;
harness void Main() {
	head = new N(1);
	fork (i; 1) {
		int a = xs[0];
		bool b = head != null;
		a = a; b = b;
	}
}
`, "Main", desugar.Options{})
	seq := p.Threads[0]
	cases := []struct {
		src  string
		want types.Type
	}{
		{"3", types.TInt},
		{"true", types.TBool},
		{"null", types.Type{Base: types.Ref}},
		{"xs[1]", types.TInt},
		{"head.next", types.RefTo("N")},
		{"head.v + 1", types.TInt},
		{"head == null", types.TBool},
		{"!true", types.TBool},
		{"new N(1)", types.RefTo("N")},
		{"AtomicSwap(head, null)", types.RefTo("N")},
		{"CAS(head.v, 0, 1)", types.TBool},
	}
	for _, c := range cases {
		e, err := parser.ParseExprString(c.src)
		if err != nil {
			t.Fatal(err)
		}
		// Allocation sites in throwaway expressions need assignment.
		ast.WalkExpr(e, func(x ast.Expr) {
			if n, ok := x.(*ast.NewExpr); ok {
				n.Site = 0
			}
		})
		got, err := p.StaticType(seq, e)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if !got.Equal(c.want) {
			t.Fatalf("%s: got %v want %v", c.src, got, c.want)
		}
	}
	if _, err := p.StaticType(seq, &ast.Ident{Name: "nosuch"}); err == nil {
		t.Fatal("unknown variable must error")
	}
}

func TestSliceTypeAndTid(t *testing.T) {
	p := lowerSrc(t, `
bit[8] bits;
harness void Main() {
	fork (i; 2) { bits[0] = true; }
}
`, "Main", desugar.Options{})
	seq := p.Threads[1]
	e, _ := parser.ParseExprString("bits[2::4]")
	got, err := p.StaticType(seq, e)
	if err != nil || !got.Equal(types.ArrayOf(types.TBool, 4)) {
		t.Fatalf("slice type %v err %v", got, err)
	}
	tid, err := p.StaticType(seq, &ast.Ident{Name: TidVar})
	if err != nil || !tid.Equal(types.TInt) {
		t.Fatalf("tid type %v err %v", tid, err)
	}
}
