// Package ir lowers a desugared sketch into the linear guarded-step
// form of §6: each thread becomes a fixed sequence of predicated atomic
// steps (if-conversion), with loops unrolled to a bound and a
// termination assertion (liveness as bounded safety).
//
// Every candidate implementation executes a subset of the sketch's
// statement instances, which is exactly the property trace projection
// relies on: the model checker runs candidates over this step list, and
// the projection of a counterexample trace is a reordering of the same
// step instances.
//
// Besides lowering, the package hosts the static analyses the model
// checker's reductions are built on: per-step shared read/write
// footprints (Footprints) feeding the partial-order reduction, and
// candidate-conditional thread-symmetry detection (Symmetry), which
// proves groups of forked threads permutation-equivalent under a
// concrete candidate and hands internal/mc the generators of the
// induced state-space automorphisms.
package ir

import (
	"fmt"

	"psketch/internal/ast"
	"psketch/internal/desugar"
	"psketch/internal/token"
	"psketch/internal/types"
)

// TidVar is the reserved identifier that evaluates to the executing
// thread's lock-owner id (1..N for forked threads, N+1 for main).
const TidVar = "__tid"

// Var is a variable slot (global or thread-local).
type Var struct {
	Name string
	Type types.Type
}

// Step is one predicated atomic step.
type Step struct {
	// Guards is a conjunction of side-effect-free boolean expressions
	// over thread-locals and holes; if any is false the step is skipped.
	Guards []ast.Expr
	// Cond is the blocking condition of a conditional atomic (nil if
	// the step is always enabled).
	Cond ast.Expr
	// Body is executed atomically when the step runs. It contains only
	// assignments, asserts, builtin-call statements, and (inside atomic
	// blocks) nested ifs/blocks.
	Body []ast.Stmt
	// Local reports that the step reads and writes only thread-local
	// state; the model checker runs such steps without a scheduling
	// point (a sound partial-order reduction).
	Local bool
	// Pos/Label locate the step for diagnostics and trace printing.
	Pos   token.Pos
	Label string
}

// Seq is a straight-line program for one thread.
type Seq struct {
	Name   string
	Tid    int // value of __tid while running this sequence
	Steps  []*Step
	Locals []Var
	// localIdx maps a local name to its Locals index.
	localIdx map[string]int
}

// Local returns the index of a named local, or -1.
func (s *Seq) Local(name string) int {
	if i, ok := s.localIdx[name]; ok {
		return i
	}
	return -1
}

// AllocSite records the static arena slot of one `new` occurrence.
type AllocSite struct {
	Struct string
	Slot   int // 1-based slot within the struct's arena
}

// Program is the lowered form of a sketch.
type Program struct {
	Sketch *desugar.Sketch
	W      int // int bit width

	// GlobalInit are steps run before the prologue to evaluate global
	// initializers (in declaration order).
	GlobalInit *Seq
	Prologue   *Seq
	Threads    []*Seq // nil for sequential sketches
	Epilogue   *Seq
	Spec       *Seq // sequential mode: the reference implementation

	Globals   []Var
	globalIdx map[string]int
	// Inputs are the harness parameters (sequential mode); symbolic
	// during verification, concrete during inductive synthesis.
	Inputs []Var
	// ResultVar names the local holding the harness return value
	// (sequential mode), and SpecResultVar the spec's.
	ResultVar     string
	SpecResultVar string

	// Arenas gives the number of allocation slots per struct type
	// (slot 0 is reserved for null).
	Arenas map[string]int
	// Sites maps allocation-site ids to arena slots.
	Sites []AllocSite
}

// Global returns the index of a named global, or -1.
func (p *Program) Global(name string) int {
	if i, ok := p.globalIdx[name]; ok {
		return i
	}
	return -1
}

// Concurrent reports whether the program has forked threads.
func (p *Program) Concurrent() bool { return len(p.Threads) > 0 }

// NumThreads returns the number of forked threads.
func (p *Program) NumThreads() int { return len(p.Threads) }

// MainTid is the lock-owner id used by the prologue and epilogue.
func (p *Program) MainTid() int { return len(p.Threads) + 1 }

// StaticType resolves the type of an expression structurally, using
// the sequence's local table and the globals (the checker's Types map
// does not survive loop unrolling and per-thread cloning).
func (p *Program) StaticType(seq *Seq, e ast.Expr) (types.Type, error) {
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == TidVar {
			return types.TInt, nil
		}
		if seq != nil {
			if i := seq.Local(x.Name); i >= 0 {
				return seq.Locals[i].Type, nil
			}
		}
		if i := p.Global(x.Name); i >= 0 {
			return p.Globals[i].Type, nil
		}
		return types.Type{}, fmt.Errorf("%s: unknown variable %s", x.P, x.Name)
	case *ast.NullLit:
		return types.Type{Base: types.Ref}, nil
	case *ast.IntLit:
		return types.TInt, nil
	case *ast.BoolLit:
		return types.TBool, nil
	case *ast.NewExpr:
		return types.RefTo(x.Type), nil
	case *ast.FieldExpr:
		sn, err := p.StructOf(seq, x)
		if err != nil {
			return types.Type{}, err
		}
		fi, idx := p.Sketch.Info.Structs[sn].Field(x.Name)
		if idx < 0 {
			return types.Type{}, fmt.Errorf("%s: struct %s has no field %s", x.P, sn, x.Name)
		}
		return fi.Type, nil
	case *ast.IndexExpr:
		t, err := p.StaticType(seq, x.X)
		if err != nil {
			return types.Type{}, err
		}
		return t.Elem(), nil
	case *ast.SliceExpr:
		t, err := p.StaticType(seq, x.X)
		if err != nil {
			return types.Type{}, err
		}
		return types.ArrayOf(t.Elem(), x.Len), nil
	case *ast.Regen:
		// All type-valid choices share one type; use the first that
		// resolves concretely.
		var last error
		for _, ch := range x.Choices {
			t, err := p.StaticType(seq, ch)
			if err == nil && !(t.Base == types.Ref && t.Struct == "") {
				return t, nil
			}
			if err == nil {
				return t, nil
			}
			last = err
		}
		return types.Type{}, fmt.Errorf("%s: cannot type generator: %v", x.P, last)
	case *ast.CallExpr:
		switch x.Fun {
		case "AtomicSwap":
			return p.StaticType(seq, x.Args[0])
		case "CAS":
			return types.TBool, nil
		default:
			return types.TInt, nil
		}
	case *ast.CastExpr:
		return types.TInt, nil
	case *ast.Unary:
		if x.Op == token.NOT {
			return types.TBool, nil
		}
		return types.TInt, nil
	case *ast.Binary:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
			return types.TInt, nil
		default:
			return types.TBool, nil
		}
	}
	return types.Type{}, fmt.Errorf("%s: cannot type %T", e.Pos(), e)
}

// StructOf resolves the struct type of a field access receiver.
func (p *Program) StructOf(seq *Seq, f *ast.FieldExpr) (string, error) {
	t, err := p.StaticType(seq, f.X)
	if err != nil {
		return "", err
	}
	if t.Base != types.Ref || t.Struct == "" {
		return "", fmt.Errorf("%s: receiver of .%s is not a struct reference (%s)", f.P, f.Name, t)
	}
	return t.Struct, nil
}
