package ir

import (
	"fmt"

	"psketch/internal/ast"
	"psketch/internal/desugar"
	"psketch/internal/token"
	"psketch/internal/types"
)

// Lower converts a desugared sketch into linear guarded-step form.
func Lower(sk *desugar.Sketch) (*Program, error) {
	p := &Program{
		Sketch:    sk,
		W:         sk.Opts.IntWidth,
		globalIdx: map[string]int{},
		Arenas:    map[string]int{},
	}
	for _, g := range sk.Prog.Globals {
		t, err := resolveType(sk.Info, g.Type)
		if err != nil {
			return nil, err
		}
		p.globalIdx[g.Name] = len(p.Globals)
		p.Globals = append(p.Globals, Var{Name: g.Name, Type: t})
	}

	// Global initializers run as main-thread steps before the prologue.
	gi := newSeq("init", 0)
	lo := &lowerer{p: p, sk: sk, seq: gi}
	for _, g := range sk.Prog.Globals {
		if g.Init == nil {
			continue
		}
		lo.emit(&Step{
			Body:  []ast.Stmt{&ast.AssignStmt{P: g.P, LHS: &ast.Ident{P: g.P, Name: g.Name}, RHS: g.Init}},
			Pos:   g.P,
			Label: g.Name + " = " + types.ExprString(g.Init),
		})
	}
	p.GlobalInit = gi

	h := sk.Harness
	var fork *ast.ForkStmt
	forkIdx := -1
	for i, s := range h.Body.Stmts {
		if f, ok := s.(*ast.ForkStmt); ok {
			if fork != nil {
				return nil, fmt.Errorf("%s: only one fork per harness is supported", f.P)
			}
			fork = f
			forkIdx = i
		}
	}
	if fork != nil {
		n64, err := evalConstInt(fork.N)
		if err != nil {
			return nil, fmt.Errorf("fork thread count: %w", err)
		}
		n := int(n64)
		if n < 1 || n > 16 {
			return nil, fmt.Errorf("%s: fork thread count %d out of range [1,16]", fork.P, n)
		}
		mainTid := n + 1

		pro := newSeq("main", mainTid)
		if err := (&lowerer{p: p, sk: sk, seq: pro}).lowerStmts(h.Body.Stmts[:forkIdx]); err != nil {
			return nil, err
		}
		p.Prologue = pro

		for t := 0; t < n; t++ {
			body := ast.NewCloner(ast.CloneShare).Block(fork.Body)
			substIdent(body, fork.Var, &ast.IntLit{P: fork.P, Val: int64(t)})
			seq := newSeq(fmt.Sprintf("thread%d", t), t+1)
			if err := (&lowerer{p: p, sk: sk, seq: seq}).lowerStmts(body.Stmts); err != nil {
				return nil, err
			}
			p.Threads = append(p.Threads, seq)
		}

		epi := newSeq("epilogue", mainTid)
		if err := (&lowerer{p: p, sk: sk, seq: epi}).lowerStmts(h.Body.Stmts[forkIdx+1:]); err != nil {
			return nil, err
		}
		p.Epilogue = epi
		// The global-init sequence shares the main tid.
		gi.Tid = mainTid
	} else {
		// Sequential mode: the whole body is one sequence; parameters
		// are inputs.
		seq := newSeq("main", 1)
		gi.Tid = 1
		for _, prm := range h.Params {
			t, err := resolveType(sk.Info, prm.Type)
			if err != nil {
				return nil, err
			}
			p.Inputs = append(p.Inputs, Var{Name: prm.Name, Type: t})
			addLocal(seq, prm.Name, t)
		}
		if err := (&lowerer{p: p, sk: sk, seq: seq}).lowerStmts(h.Body.Stmts); err != nil {
			return nil, err
		}
		p.Prologue = seq
		p.ResultVar = sk.ResultVar

		if sk.Spec != nil {
			spec := newSeq("spec", 1)
			for _, prm := range sk.Spec.Params {
				t, err := resolveType(sk.Info, prm.Type)
				if err != nil {
					return nil, err
				}
				addLocal(spec, prm.Name, t)
			}
			if err := (&lowerer{p: p, sk: sk, seq: spec}).lowerStmts(sk.Spec.Body.Stmts); err != nil {
				return nil, err
			}
			p.Spec = spec
			p.SpecResultVar = sk.SpecResultVar
		}
	}

	if err := p.assignAllocSites(); err != nil {
		return nil, err
	}
	return p, nil
}

func newSeq(name string, tid int) *Seq {
	return &Seq{Name: name, Tid: tid, localIdx: map[string]int{}}
}

func addLocal(s *Seq, name string, t types.Type) error {
	if i, ok := s.localIdx[name]; ok {
		if !s.Locals[i].Type.Equal(t) {
			return fmt.Errorf("ir: local %s redeclared with different type", name)
		}
		return nil
	}
	s.localIdx[name] = len(s.Locals)
	s.Locals = append(s.Locals, Var{Name: name, Type: t})
	return nil
}

// substIdent replaces every use of name in b with the expression e
// (used to bind the fork index variable per thread).
func substIdent(b *ast.Block, name string, e ast.Expr) {
	rewrite := func(x *ast.Expr) {
		if id, ok := (*x).(*ast.Ident); ok && id.Name == name {
			*x = e
		}
	}
	var walkE func(x *ast.Expr)
	walkE = func(x *ast.Expr) {
		if *x == nil {
			return
		}
		rewrite(x)
		switch n := (*x).(type) {
		case *ast.Regen:
			for i := range n.Choices {
				walkE(&n.Choices[i])
			}
		case *ast.Unary:
			walkE(&n.X)
		case *ast.Binary:
			walkE(&n.X)
			walkE(&n.Y)
		case *ast.FieldExpr:
			walkE(&n.X)
		case *ast.IndexExpr:
			walkE(&n.X)
			walkE(&n.Index)
		case *ast.SliceExpr:
			walkE(&n.X)
			walkE(&n.Start)
		case *ast.CallExpr:
			for i := range n.Args {
				walkE(&n.Args[i])
			}
		case *ast.CastExpr:
			walkE(&n.X)
		case *ast.NewExpr:
			for i := range n.Args {
				walkE(&n.Args[i])
			}
		}
	}
	var walkS func(s ast.Stmt)
	walkS = func(s ast.Stmt) {
		switch x := s.(type) {
		case nil:
		case *ast.Block:
			for _, st := range x.Stmts {
				walkS(st)
			}
		case *ast.DeclStmt:
			walkE(&x.Init)
		case *ast.AssignStmt:
			walkE(&x.LHS)
			walkE(&x.RHS)
		case *ast.IfStmt:
			walkE(&x.Cond)
			walkS(x.Then)
			walkS(x.Else)
		case *ast.WhileStmt:
			walkE(&x.Cond)
			walkS(x.Body)
		case *ast.ReturnStmt:
			walkE(&x.Val)
		case *ast.AssertStmt:
			walkE(&x.Cond)
		case *ast.AtomicStmt:
			if x.Cond != nil {
				walkE(&x.Cond)
			}
			walkS(x.Body)
		case *ast.LockStmt:
			walkE(&x.Target)
		case *ast.ExprStmt:
			walkE(&x.X)
		}
	}
	walkS(b)
}

// resolveType mirrors the checker's type resolution for lowering.
func resolveType(info *types.Info, te *ast.TypeExpr) (types.Type, error) {
	if te == nil {
		return types.TVoid, nil
	}
	var base types.Type
	switch te.Name {
	case "int":
		base = types.TInt
	case "bool", "bit":
		base = types.TBool
	case "void":
		return types.TVoid, nil
	default:
		if info.Structs[te.Name] == nil {
			return types.Type{}, fmt.Errorf("%s: unknown type %s", te.P, te.Name)
		}
		base = types.RefTo(te.Name)
	}
	if te.ArrayLen > 0 {
		return types.ArrayOf(base, te.ArrayLen), nil
	}
	return base, nil
}

// assignAllocSites numbers every `new` occurrence and sizes the arenas.
// Some of the walked nodes belong to the sketch's shared AST (prologue
// and epilogue statements are not cloned), so sites are reset first:
// lowering the same sketch twice must yield the same program.
func (p *Program) assignAllocSites() error {
	seqs := []*Seq{p.GlobalInit, p.Prologue}
	seqs = append(seqs, p.Threads...)
	if p.Epilogue != nil {
		seqs = append(seqs, p.Epilogue)
	}
	if p.Spec != nil {
		seqs = append(seqs, p.Spec)
	}
	for _, s := range seqs {
		if s == nil {
			continue
		}
		for _, st := range s.Steps {
			for _, b := range st.Body {
				ast.WalkExprs(b, func(e ast.Expr) {
					if n, ok := e.(*ast.NewExpr); ok {
						n.Site = -1
					}
				})
			}
		}
	}
	for _, s := range seqs {
		if s == nil {
			continue
		}
		for _, st := range s.Steps {
			for _, b := range st.Body {
				ast.WalkExprs(b, func(e ast.Expr) {
					if n, ok := e.(*ast.NewExpr); ok && n.Site == -1 {
						p.Arenas[n.Type]++
						n.Site = len(p.Sites)
						p.Sites = append(p.Sites, AllocSite{Struct: n.Type, Slot: p.Arenas[n.Type]})
					}
				})
			}
			if st.Cond != nil {
				var bad bool
				ast.WalkExpr(st.Cond, func(e ast.Expr) {
					if _, ok := e.(*ast.NewExpr); ok {
						bad = true
					}
				})
				if bad {
					return fmt.Errorf("%s: allocation inside a blocking condition is not supported", st.Pos)
				}
			}
		}
	}
	// Ensure every struct has an arena entry (possibly empty).
	for name := range p.Sketch.Info.Structs {
		if _, ok := p.Arenas[name]; !ok {
			p.Arenas[name] = 0
		}
	}
	return nil
}

// ------------------------------------------------------------- lowerer

type lowerer struct {
	p    *Program
	sk   *desugar.Sketch
	seq  *Seq
	g    []ast.Expr // current guard conjunction
	tmpN int
}

func (lo *lowerer) isLocal(name string) bool {
	if lo.seq.Local(name) >= 0 {
		return true
	}
	// A name that is neither a global nor a known local is a
	// forward-declared local (declarations are hoisted as they are
	// encountered, and lowering is in program order, so this only
	// happens for synthesized names being introduced right now).
	return lo.p.Global(name) < 0
}

func (lo *lowerer) fresh(prefix string) string {
	lo.tmpN++
	return fmt.Sprintf("%s%d_%s", prefix, lo.tmpN, lo.seq.Name)
}

func (lo *lowerer) guardsCopy() []ast.Expr {
	g := make([]ast.Expr, len(lo.g))
	copy(g, lo.g)
	return g
}

func (lo *lowerer) emit(s *Step) {
	if s.Guards == nil {
		s.Guards = lo.guardsCopy()
	}
	cls := class{}
	for _, b := range s.Body {
		c := lo.classifyStmt(b)
		cls.shared = cls.shared || c.shared
		cls.effects = cls.effects || c.effects
	}
	s.Local = !cls.shared && s.Cond == nil
	lo.seq.Steps = append(lo.seq.Steps, s)
}

func (lo *lowerer) lowerStmts(stmts []ast.Stmt) error {
	for _, s := range stmts {
		if err := lo.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func not(e ast.Expr) ast.Expr {
	return &ast.Unary{P: e.Pos(), Op: token.NOT, X: e}
}

func (lo *lowerer) lowerStmt(s ast.Stmt) error {
	switch x := s.(type) {
	case *ast.Block:
		return lo.lowerStmts(x.Stmts)
	case *ast.DeclStmt:
		t, err := resolveType(lo.sk.Info, x.Type)
		if err != nil {
			return err
		}
		if err := addLocal(lo.seq, x.Name, t); err != nil {
			return err
		}
		rhs := x.Init
		if rhs == nil {
			rhs = zeroExpr(t, x.P)
		}
		lo.emit(&Step{
			Body:  []ast.Stmt{&ast.AssignStmt{P: x.P, LHS: &ast.Ident{P: x.P, Name: x.Name}, RHS: rhs}},
			Pos:   x.P,
			Label: x.Name + " = " + types.ExprString(rhs),
		})
		return nil
	case *ast.AssignStmt:
		lo.emit(&Step{
			Body:  []ast.Stmt{x},
			Pos:   x.P,
			Label: types.ExprString(x.LHS) + " = " + types.ExprString(x.RHS),
		})
		return nil
	case *ast.AssertStmt:
		lo.emit(&Step{Body: []ast.Stmt{x}, Pos: x.P, Label: "assert " + types.ExprString(x.Cond)})
		return nil
	case *ast.ExprStmt:
		lo.emit(&Step{Body: []ast.Stmt{x}, Pos: x.P, Label: types.ExprString(x.X)})
		return nil
	case *ast.IfStmt:
		return lo.lowerIf(x)
	case *ast.WhileStmt:
		return lo.lowerWhile(x)
	case *ast.AtomicStmt:
		return lo.lowerAtomic(x)
	case *ast.LockStmt:
		return lo.lowerLock(x)
	case *ast.ReturnStmt:
		return fmt.Errorf("%s: return is not allowed here (thread bodies and harnesses do not return)", x.P)
	case *ast.ForkStmt:
		return fmt.Errorf("%s: fork must be a top-level statement of the harness", x.P)
	}
	return fmt.Errorf("ir: unhandled statement %T", s)
}

func (lo *lowerer) lowerIf(x *ast.IfStmt) error {
	cls := lo.classify(x.Cond)
	var condT, condF ast.Expr
	if !cls.shared && !cls.effects {
		condT, condF = x.Cond, not(x.Cond)
	} else {
		t := lo.fresh("_c")
		if err := addLocal(lo.seq, t, types.TBool); err != nil {
			return err
		}
		tv := &ast.Ident{P: x.P, Name: t}
		lo.emit(&Step{
			Body:  []ast.Stmt{&ast.AssignStmt{P: x.P, LHS: tv, RHS: x.Cond}},
			Pos:   x.P,
			Label: "if " + types.ExprString(x.Cond),
		})
		condT, condF = tv, not(tv)
	}
	lo.g = append(lo.g, condT)
	if err := lo.lowerStmts(x.Then.Stmts); err != nil {
		return err
	}
	lo.g = lo.g[:len(lo.g)-1]
	if x.Else != nil {
		lo.g = append(lo.g, condF)
		if err := lo.lowerStmt(x.Else); err != nil {
			return err
		}
		lo.g = lo.g[:len(lo.g)-1]
	}
	return nil
}

func (lo *lowerer) lowerWhile(x *ast.WhileStmt) error {
	bound := lo.sk.Opts.LoopBound
	for i := 0; i < bound; i++ {
		cl := ast.NewCloner(ast.CloneShare)
		cond := cl.Expr(x.Cond)
		t := lo.fresh("_w")
		if err := addLocal(lo.seq, t, types.TBool); err != nil {
			return err
		}
		tv := &ast.Ident{P: x.P, Name: t}
		lo.emit(&Step{
			Body:  []ast.Stmt{&ast.AssignStmt{P: x.P, LHS: tv, RHS: cond}},
			Pos:   x.P,
			Label: fmt.Sprintf("while[%d] %s", i, types.ExprString(x.Cond)),
		})
		lo.g = append(lo.g, tv)
		body := cl.Block(x.Body)
		if err := lo.lowerStmts(body.Stmts); err != nil {
			return err
		}
		// Keep tv on the guard stack: iteration i+1 only runs if every
		// previous condition evaluation was true.
	}
	// Termination bound (§6): after LoopBound iterations the condition
	// must be false; evaluating it performs its side effects exactly as
	// a real (B+1)-th loop test would.
	cl := ast.NewCloner(ast.CloneShare)
	cond := cl.Expr(x.Cond)
	t := lo.fresh("_w")
	if err := addLocal(lo.seq, t, types.TBool); err != nil {
		return err
	}
	tv := &ast.Ident{P: x.P, Name: t}
	lo.emit(&Step{
		Body: []ast.Stmt{
			&ast.AssignStmt{P: x.P, LHS: tv, RHS: cond},
			&ast.AssertStmt{P: x.P, Cond: not(tv)},
		},
		Pos:   x.P,
		Label: fmt.Sprintf("while bound %d", bound),
	})
	// Pop the B condition guards.
	lo.g = lo.g[:len(lo.g)-bound]
	return nil
}

func (lo *lowerer) lowerAtomic(x *ast.AtomicStmt) error {
	if x.Cond != nil && lo.classify(x.Cond).effects {
		return fmt.Errorf("%s: blocking condition must be side-effect free", x.P)
	}
	body, err := lo.normalizeAtomicBody(x.Body.Stmts)
	if err != nil {
		return err
	}
	lbl := "atomic"
	if x.Cond != nil {
		lbl = "atomic (" + types.ExprString(x.Cond) + ")"
	}
	lo.emit(&Step{Cond: x.Cond, Body: body, Pos: x.P, Label: lbl})
	return nil
}

// normalizeAtomicBody hoists declarations out of an atomic block's body
// (turning them into assignments) and validates that only simple
// statements occur inside.
func (lo *lowerer) normalizeAtomicBody(stmts []ast.Stmt) ([]ast.Stmt, error) {
	var out []ast.Stmt
	for _, s := range stmts {
		switch x := s.(type) {
		case *ast.DeclStmt:
			t, err := resolveType(lo.sk.Info, x.Type)
			if err != nil {
				return nil, err
			}
			if err := addLocal(lo.seq, x.Name, t); err != nil {
				return nil, err
			}
			rhs := x.Init
			if rhs == nil {
				rhs = zeroExpr(t, x.P)
			}
			out = append(out, &ast.AssignStmt{P: x.P, LHS: &ast.Ident{P: x.P, Name: x.Name}, RHS: rhs})
		case *ast.AssignStmt, *ast.AssertStmt, *ast.ExprStmt:
			out = append(out, s)
		case *ast.IfStmt:
			thenB, err := lo.normalizeAtomicBody(x.Then.Stmts)
			if err != nil {
				return nil, err
			}
			n := &ast.IfStmt{P: x.P, Cond: x.Cond, Then: &ast.Block{P: x.P, Stmts: thenB}}
			if x.Else != nil {
				elseB, err := lo.normalizeAtomicBody([]ast.Stmt{x.Else})
				if err != nil {
					return nil, err
				}
				n.Else = &ast.Block{P: x.P, Stmts: elseB}
			}
			out = append(out, n)
		case *ast.Block:
			inner, err := lo.normalizeAtomicBody(x.Stmts)
			if err != nil {
				return nil, err
			}
			out = append(out, inner...)
		default:
			return nil, fmt.Errorf("%s: %T is not allowed inside an atomic section", s.Pos(), s)
		}
	}
	return out, nil
}

// lowerLock emits the Figure 7 encoding: lock(x) is a conditional
// atomic that waits for x._lock == 0 and claims it; unlock(x) asserts
// ownership and releases.
func (lo *lowerer) lowerLock(x *ast.LockStmt) error {
	lockF := func() ast.Expr {
		return &ast.FieldExpr{P: x.P, X: x.Target, Name: types.LockField}
	}
	tid := &ast.Ident{P: x.P, Name: TidVar}
	if x.Unlock {
		lo.emit(&Step{
			Body: []ast.Stmt{
				&ast.AssertStmt{P: x.P, Cond: &ast.Binary{P: x.P, Op: token.EQ, X: lockF(), Y: tid}},
				&ast.AssignStmt{P: x.P, LHS: lockF(), RHS: &ast.IntLit{P: x.P, Val: 0}},
			},
			Pos:   x.P,
			Label: "unlock(" + types.ExprString(x.Target) + ")",
		})
		return nil
	}
	lo.emit(&Step{
		Cond: &ast.Binary{P: x.P, Op: token.EQ, X: lockF(), Y: &ast.IntLit{P: x.P, Val: 0}},
		Body: []ast.Stmt{
			&ast.AssignStmt{P: x.P, LHS: lockF(), RHS: tid},
		},
		Pos:   x.P,
		Label: "lock(" + types.ExprString(x.Target) + ")",
	})
	return nil
}

// zeroExpr builds the zero value of a type (arrays broadcast scalars).
func zeroExpr(t types.Type, pos token.Pos) ast.Expr {
	switch t.Base {
	case types.Bool:
		return &ast.BoolLit{P: pos, Val: false}
	case types.Ref:
		return &ast.NullLit{P: pos}
	default:
		return &ast.IntLit{P: pos, Val: 0}
	}
}
