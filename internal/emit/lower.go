package emit

import (
	"fmt"
	"sort"
	"strings"

	"psketch/internal/ast"
	"psketch/internal/desugar"
	"psketch/internal/printer"
	"psketch/internal/token"
	"psketch/internal/types"
)

// gen lowers resolved sketch ASTs (printer.ResolveAST output) to Go
// source. All shared state — globals and struct fields — becomes
// atomic cells on a DS struct; thread-locals stay plain Go values.
type gen struct {
	sk   *desugar.Sketch
	cand desugar.Candidate

	structs     map[string]*types.StructInfo
	structOrder []string
	globals     map[string]types.Type
	globalOrder []string
	funcs       map[string]*ast.FuncDecl // WorkProg functions by name

	// per-function emission state
	buf      strings.Builder
	ind      int
	recv     string
	locals   map[string]types.Type
	reads    map[string]int
	retT     types.Type
	inAtomic int

	needs   map[string]bool // imports
	helpers map[string]bool // helper functions referenced
	err     error
}

func newGen(sk *desugar.Sketch, cand desugar.Candidate) *gen {
	g := &gen{
		sk:      sk,
		cand:    cand,
		structs: sk.Info.Structs,
		globals: map[string]types.Type{},
		funcs:   map[string]*ast.FuncDecl{},
		needs:   map[string]bool{},
		helpers: map[string]bool{},
	}
	for _, s := range sk.WorkProg.Structs {
		g.structOrder = append(g.structOrder, s.Name)
	}
	for _, f := range sk.WorkProg.Funcs {
		g.funcs[f.Name] = f
	}
	for _, gd := range sk.WorkProg.Globals {
		t, err := g.typeExprType(gd.Type)
		if err != nil {
			g.errf("global %s: %v", gd.Name, err)
			continue
		}
		g.globals[gd.Name] = t
		g.globalOrder = append(g.globalOrder, gd.Name)
	}
	return g
}

func (g *gen) errf(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("emit: "+format, args...)
	}
}

// ------------------------------------------------------------ types

// goType renders the plain (thread-local) Go type of a model type.
func goType(t types.Type) string {
	var s string
	switch t.Base {
	case types.Int:
		s = "int64"
	case types.Bool:
		s = "bool"
	case types.Ref:
		s = "*" + safeType(t.Struct)
	default:
		s = "int64"
	}
	if t.Len > 0 {
		return fmt.Sprintf("[%d]%s", t.Len, s)
	}
	return s
}

// goAtomic renders the atomic-cell Go type of a shared model type.
func goAtomic(t types.Type) string {
	var s string
	switch t.Base {
	case types.Int:
		s = "atomic.Int64"
	case types.Bool:
		s = "atomic.Bool"
	case types.Ref:
		s = "atomic.Pointer[" + safeType(t.Struct) + "]"
	default:
		s = "atomic.Int64"
	}
	if t.Len > 0 {
		return fmt.Sprintf("[%d]%s", t.Len, s)
	}
	return s
}

func safeType(name string) string { return safeIdent(name) }

// ------------------------------------------------------------ typing

// typeOf computes the structural type of a resolved expression.
func (g *gen) typeOf(e ast.Expr) types.Type {
	switch x := e.(type) {
	case *ast.Ident:
		if t, ok := g.locals[x.Name]; ok {
			return t
		}
		if t, ok := g.globals[x.Name]; ok {
			return t
		}
		g.errf("unknown identifier %s", x.Name)
	case *ast.IntLit:
		return types.TInt
	case *ast.BoolLit:
		return types.TBool
	case *ast.NullLit:
		return types.Type{Base: types.Ref}
	case *ast.BitsLit:
		return types.ArrayOf(types.TBool, len(x.Text))
	case *ast.Unary:
		if x.Op == token.NOT {
			return types.TBool
		}
		return types.TInt
	case *ast.Binary:
		switch x.Op {
		case token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ, token.LAND, token.LOR:
			return types.TBool
		}
		return types.TInt
	case *ast.FieldExpr:
		bt := g.typeOf(x.X)
		si := g.structs[bt.Struct]
		if si == nil {
			g.errf("field %s of non-struct %s", x.Name, bt)
			return types.TInt
		}
		f, i := si.Field(x.Name)
		if i < 0 {
			g.errf("no field %s on %s", x.Name, bt.Struct)
			return types.TInt
		}
		return f.Type
	case *ast.IndexExpr:
		return g.typeOf(x.X).Elem()
	case *ast.CallExpr:
		return g.callType(x)
	case *ast.CastExpr:
		t, err := g.typeExprType(x.Type)
		if err != nil {
			g.errf("%v", err)
		}
		return t
	case *ast.NewExpr:
		return types.RefTo(x.Type)
	}
	g.errf("untypable expression %T", e)
	return types.TInt
}

func (g *gen) callType(x *ast.CallExpr) types.Type {
	switch x.Fun {
	case "CAS":
		return types.TBool
	case "AtomicSwap":
		if len(x.Args) > 0 {
			return g.typeOf(x.Args[0])
		}
		return types.TInt
	case "AtomicReadAndIncr", "AtomicReadAndDecr":
		return types.TInt
	}
	f := g.funcs[x.Fun]
	if f == nil {
		g.errf("call to unknown function %s", x.Fun)
		return types.TInt
	}
	t, err := g.typeExprType(f.Ret)
	if err != nil {
		g.errf("%v", err)
	}
	return t
}

// ------------------------------------------------------------ lvalues

// cell returns the Go expression addressing an lvalue's storage cell,
// the cell's model type, and whether it is a shared atomic cell.
func (g *gen) cell(e ast.Expr) (string, types.Type, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		if t, ok := g.locals[x.Name]; ok {
			return safeIdent(x.Name), t, false
		}
		if t, ok := g.globals[x.Name]; ok {
			return g.recv + "." + safeIdent(x.Name), t, true
		}
		g.errf("unknown identifier %s", x.Name)
	case *ast.IndexExpr:
		base, t, shared := g.cell(x.X)
		if !t.IsArray() {
			g.errf("indexing non-array %s", types.ExprString(x.X))
		}
		return base + "[" + g.exprInt(x.Index) + "]", t.Elem(), shared
	case *ast.FieldExpr:
		obj, bt := g.expr(x.X)
		si := g.structs[bt.Struct]
		if si == nil {
			g.errf("field %s of non-struct", x.Name)
			return "", types.TInt, false
		}
		f, i := si.Field(x.Name)
		if i < 0 {
			g.errf("no field %s on %s", x.Name, bt.Struct)
			return "", types.TInt, false
		}
		// Struct fields are always shared atomic cells.
		return obj + "." + safeIdent(x.Name), f.Type, true
	default:
		g.errf("unsupported lvalue %T", e)
	}
	return "", types.TInt, false
}

// ------------------------------------------------------------ rvalues

// expr renders an expression's value and reports its model type.
func (g *gen) expr(e ast.Expr) (string, types.Type) {
	switch x := e.(type) {
	case *ast.Ident, *ast.FieldExpr, *ast.IndexExpr:
		c, t, shared := g.cell(e)
		if shared && !t.IsArray() {
			return c + ".Load()", t
		}
		return c, t
	case *ast.IntLit:
		return fmt.Sprintf("%d", x.Val), types.TInt
	case *ast.BoolLit:
		if x.Val {
			return "true", types.TBool
		}
		return "false", types.TBool
	case *ast.NullLit:
		return "nil", types.Type{Base: types.Ref}
	case *ast.BitsLit:
		var elems []string
		for i := 0; i < len(x.Text); i++ {
			if x.Text[i] == '1' {
				elems = append(elems, "true")
			} else {
				elems = append(elems, "false")
			}
		}
		return fmt.Sprintf("[%d]bool{%s}", len(x.Text), strings.Join(elems, ", ")),
			types.ArrayOf(types.TBool, len(x.Text))
	case *ast.Unary:
		switch x.Op {
		case token.NOT:
			return "(!" + g.cond(x.X) + ")", types.TBool
		case token.SUB:
			return "(-" + g.exprInt(x.X) + ")", types.TInt
		}
		g.errf("unsupported unary op %v", x.Op)
	case *ast.Binary:
		return g.binary(x)
	case *ast.CallExpr:
		return g.call(x)
	case *ast.NewExpr:
		return g.newExpr(x)
	case *ast.CastExpr:
		t, err := g.typeExprType(x.Type)
		if err != nil {
			g.errf("%v", err)
			return "0", types.TInt
		}
		if t.IsArray() {
			g.errf("array casts are not supported by the Go backend")
			return "0", t
		}
		return g.exprAs(x.X, t), t
	case *ast.Hole:
		g.errf("unresolved hole ?? (id %d) survived resolution", x.ID)
	case *ast.Regen:
		g.errf("unresolved generator {| %s |} survived resolution", x.Text)
	default:
		g.errf("unsupported expression %T", e)
	}
	return "0", types.TInt
}

func (g *gen) binary(x *ast.Binary) (string, types.Type) {
	goOp := map[token.Kind]string{
		token.ADD: "+", token.SUB: "-", token.MUL: "*",
		token.QUO: "/", token.REM: "%",
		token.EQ: "==", token.NEQ: "!=",
		token.LT: "<", token.LEQ: "<=", token.GT: ">", token.GEQ: ">=",
	}
	switch x.Op {
	case token.LAND:
		return "(" + g.cond(x.X) + " && " + g.cond(x.Y) + ")", types.TBool
	case token.LOR:
		return "(" + g.cond(x.X) + " || " + g.cond(x.Y) + ")", types.TBool
	case token.EQ, token.NEQ:
		xt, yt := g.typeOf(x.X), g.typeOf(x.Y)
		switch {
		case xt.Base == types.Ref || yt.Base == types.Ref:
			xs, _ := g.expr(x.X)
			ys, _ := g.expr(x.Y)
			return "(" + xs + " " + goOp[x.Op] + " " + ys + ")", types.TBool
		case xt.Base == types.Bool && yt.Base == types.Bool:
			xs, _ := g.expr(x.X)
			ys, _ := g.expr(x.Y)
			return "(" + xs + " " + goOp[x.Op] + " " + ys + ")", types.TBool
		default:
			// Mixed bool/int comparisons go through b2i, like the
			// model's 0/1 cells.
			return "(" + g.exprInt(x.X) + " " + goOp[x.Op] + " " + g.exprInt(x.Y) + ")", types.TBool
		}
	case token.LT, token.LEQ, token.GT, token.GEQ:
		return "(" + g.exprInt(x.X) + " " + goOp[x.Op] + " " + g.exprInt(x.Y) + ")", types.TBool
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		return "(" + g.exprInt(x.X) + " " + goOp[x.Op] + " " + g.exprInt(x.Y) + ")", types.TInt
	}
	g.errf("unsupported binary op %v", x.Op)
	return "0", types.TInt
}

func (g *gen) call(x *ast.CallExpr) (string, types.Type) {
	switch x.Fun {
	case "AtomicSwap", "CAS", "AtomicReadAndIncr", "AtomicReadAndDecr":
		return g.atomicBuiltin(x)
	}
	f := g.funcs[x.Fun]
	if f == nil {
		g.errf("call to unknown function %s", x.Fun)
		return "0", types.TInt
	}
	var args []string
	for i, a := range x.Args {
		if i >= len(f.Params) {
			g.errf("too many arguments to %s", x.Fun)
			break
		}
		pt, err := g.typeExprType(f.Params[i].Type)
		if err != nil {
			g.errf("%v", err)
			pt = types.TInt
		}
		args = append(args, g.exprAs(a, pt))
	}
	ret, err := g.typeExprType(f.Ret)
	if err != nil {
		g.errf("%v", err)
	}
	return g.recv + "." + g.methodName(f) + "(" + strings.Join(args, ", ") + ")", ret
}

func (g *gen) newExpr(x *ast.NewExpr) (string, types.Type) {
	si := g.structs[x.Type]
	if si == nil {
		g.errf("new of unknown struct %s", x.Type)
		return "nil", types.Type{Base: types.Ref}
	}
	ctor := si.CtorFields()
	var args []string
	for i, a := range x.Args {
		if i >= len(ctor) {
			g.errf("too many constructor arguments for %s", si.Name)
			break
		}
		args = append(args, g.exprAs(a, si.Fields[ctor[i]].Type))
	}
	return g.recv + ".new" + exported(safeType(si.Name)) + "(" + strings.Join(args, ", ") + ")",
		types.RefTo(si.Name)
}

func (g *gen) atomicBuiltin(x *ast.CallExpr) (string, types.Type) {
	if len(x.Args) == 0 {
		g.errf("%s needs a location argument", x.Fun)
		return "0", types.TInt
	}
	c, t, shared := g.cell(x.Args[0])
	if !shared {
		g.errf("%s on thread-local %s (the Go backend lowers atomics only on shared cells)",
			x.Fun, types.ExprString(x.Args[0]))
		return "0", types.TInt
	}
	switch x.Fun {
	case "AtomicSwap":
		if len(x.Args) != 2 {
			g.errf("AtomicSwap needs 2 arguments")
			return "0", t
		}
		return c + ".Swap(" + g.exprAs(x.Args[1], t) + ")", t
	case "CAS":
		if len(x.Args) != 3 {
			g.errf("CAS needs 3 arguments")
			return "false", types.TBool
		}
		return c + ".CompareAndSwap(" + g.exprAs(x.Args[1], t) + ", " + g.exprAs(x.Args[2], t) + ")",
			types.TBool
	case "AtomicReadAndIncr":
		return "(" + c + ".Add(1) - 1)", types.TInt
	case "AtomicReadAndDecr":
		return "(" + c + ".Add(-1) + 1)", types.TInt
	}
	g.errf("unknown atomic builtin %s", x.Fun)
	return "0", types.TInt
}

// exprAs renders e coerced to the model type want (bool↔int bridging,
// matching the model's 0/1 boolean cells).
func (g *gen) exprAs(e ast.Expr, want types.Type) string {
	s, t := g.expr(e)
	switch {
	case want.Base == types.Bool && t.Base == types.Int:
		return "(" + s + " != 0)"
	case want.Base == types.Int && t.Base == types.Bool:
		g.helpers["b2i"] = true
		return "b2i(" + s + ")"
	}
	return s
}

func (g *gen) cond(e ast.Expr) string    { return g.exprAs(e, types.TBool) }
func (g *gen) exprInt(e ast.Expr) string { return g.exprAs(e, types.TInt) }

// ------------------------------------------------------------ statements

func (g *gen) line(format string, args ...any) {
	for i := 0; i < g.ind; i++ {
		g.buf.WriteByte('\t')
	}
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func (g *gen) block(b *ast.Block) {
	for _, s := range b.Stmts {
		g.stmt(s)
	}
}

func (g *gen) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		g.block(x)
	case *ast.DeclStmt:
		g.declStmt(x)
	case *ast.AssignStmt:
		g.assignStmt(x)
	case *ast.IfStmt:
		g.line("if %s {", g.cond(x.Cond))
		g.ind++
		g.block(x.Then)
		g.ind--
		if x.Else != nil {
			g.line("} else {")
			g.ind++
			g.stmt(x.Else)
			g.ind--
		}
		g.line("}")
	case *ast.WhileStmt:
		g.line("for %s {", g.cond(x.Cond))
		g.ind++
		g.block(x.Body)
		g.ind--
		g.line("}")
	case *ast.ReturnStmt:
		for i := 0; i < g.inAtomic; i++ {
			g.line("%s.mu.Unlock()", g.recv)
		}
		if x.Val == nil || g.retT.Base == types.Void {
			g.line("return")
		} else {
			g.line("return %s", g.exprAs(x.Val, g.retT))
		}
	case *ast.AssertStmt:
		g.helpers["assertTrue"] = true
		g.line("assertTrue(%s, %q)", g.cond(x.Cond), types.ExprString(x.Cond))
	case *ast.AtomicStmt:
		g.atomicStmt(x)
	case *ast.ForkStmt:
		g.forkStmt(x)
	case *ast.LockStmt:
		obj, t := g.expr(x.Target)
		if t.Base != types.Ref {
			g.errf("lock target %s is not a reference", types.ExprString(x.Target))
			return
		}
		if x.Unlock {
			g.helpers["lockRelease"] = true
			g.line("lockRelease(&%s.%s)", obj, types.LockField)
		} else {
			g.helpers["lockAcquire"] = true
			g.line("lockAcquire(&%s.%s)", obj, types.LockField)
		}
	case *ast.ExprStmt:
		g.exprStmt(x)
	default:
		g.errf("unsupported statement %T (must be resolved before emission)", s)
	}
}

func (g *gen) declStmt(x *ast.DeclStmt) {
	t, err := g.typeExprType(x.Type)
	if err != nil {
		g.errf("local %s: %v", x.Name, err)
		return
	}
	g.locals[x.Name] = t
	name := safeIdent(x.Name)
	switch {
	case x.Init == nil:
		g.line("var %s %s", name, goType(t))
	case t.IsArray():
		s, rt := g.expr(x.Init)
		if rt.IsArray() {
			g.line("var %s %s = %s", name, goType(t), s)
		} else {
			g.line("var %s %s", name, goType(t))
			g.broadcast(name, t, x.Init, false)
		}
	default:
		g.line("var %s %s = %s", name, goType(t), g.exprAs(x.Init, t))
	}
	if g.reads[x.Name] == 0 {
		g.line("_ = %s", name)
	}
}

func (g *gen) assignStmt(x *ast.AssignStmt) {
	c, t, shared := g.cell(x.LHS)
	if t.IsArray() {
		rt := g.typeOf(x.RHS)
		if rt.IsArray() {
			if shared {
				g.errf("whole-array assignment to shared %s is not supported", types.ExprString(x.LHS))
				return
			}
			s, _ := g.expr(x.RHS)
			g.line("%s = %s", c, s)
			return
		}
		g.broadcast(c, t, x.RHS, shared)
		return
	}
	if shared {
		g.line("%s.Store(%s)", c, g.exprAs(x.RHS, t))
	} else {
		g.line("%s = %s", c, g.exprAs(x.RHS, t))
	}
}

// broadcast fills every element of an array cell with a scalar value
// (the model's `arr = v` fill semantics).
func (g *gen) broadcast(c string, t types.Type, v ast.Expr, shared bool) {
	i := freshName("i", g.usedNames())
	val := g.exprAs(v, t.Elem())
	if shared {
		g.line("for %s := range %s {", i, c)
		g.ind++
		g.line("%s[%s].Store(%s)", c, i, val)
	} else {
		g.line("for %s := range %s {", i, c)
		g.ind++
		g.line("%s[%s] = %s", c, i, val)
	}
	g.ind--
	g.line("}")
}

func (g *gen) usedNames() map[string]bool {
	used := map[string]bool{g.recv: true}
	for n := range g.locals {
		used[safeIdent(n)] = true
	}
	return used
}

func (g *gen) atomicStmt(x *ast.AtomicStmt) {
	if g.inAtomic > 0 {
		g.errf("nested atomic blocks are not supported by the Go backend")
		return
	}
	g.needs["sync"] = true
	g.helpers["mu"] = true
	if x.Cond == nil {
		g.line("%s.mu.Lock()", g.recv)
		g.inAtomic++
		g.block(x.Body)
		g.inAtomic--
		g.line("%s.mu.Unlock()", g.recv)
		return
	}
	// Conditional atomic: spin until the condition holds with the
	// mutex held, run the body, release. Gosched keeps the spin from
	// starving the writer on a loaded scheduler.
	g.needs["runtime"] = true
	g.line("for {")
	g.ind++
	g.line("%s.mu.Lock()", g.recv)
	g.line("if %s {", g.cond(x.Cond))
	g.ind++
	g.line("break")
	g.ind--
	g.line("}")
	g.line("%s.mu.Unlock()", g.recv)
	g.line("runtime.Gosched()")
	g.ind--
	g.line("}")
	g.inAtomic++
	g.block(x.Body)
	g.inAtomic--
	g.line("%s.mu.Unlock()", g.recv)
}

func (g *gen) forkStmt(x *ast.ForkStmt) {
	g.needs["sync"] = true
	wg := freshName("wg", g.usedNames())
	v := safeIdent(x.Var)
	g.locals[x.Var] = types.TInt
	n := g.exprInt(x.N)
	g.line("var %s sync.WaitGroup", wg)
	g.line("for %s := int64(0); %s < %s; %s++ {", v, v, n, v)
	g.ind++
	g.line("%s.Add(1)", wg)
	g.line("go func(%s int64) {", v)
	g.ind++
	g.line("defer %s.Done()", wg)
	prevRet := g.retT
	g.retT = types.TVoid
	g.block(x.Body)
	g.retT = prevRet
	g.ind--
	g.line("}(%s)", v)
	g.ind--
	g.line("}")
	g.line("%s.Wait()", wg)
}

func (g *gen) exprStmt(x *ast.ExprStmt) {
	if call, ok := x.X.(*ast.CallExpr); ok {
		switch call.Fun {
		case "AtomicSwap", "CAS":
			s, _ := g.atomicBuiltin(call)
			g.line("%s", s)
			return
		case "AtomicReadAndIncr", "AtomicReadAndDecr":
			if len(call.Args) == 1 {
				c, _, shared := g.cell(call.Args[0])
				if shared {
					if call.Fun == "AtomicReadAndIncr" {
						g.line("%s.Add(1)", c)
					} else {
						g.line("%s.Add(-1)", c)
					}
					return
				}
			}
			s, _ := g.atomicBuiltin(call)
			g.line("_ = %s", s)
			return
		default:
			s, _ := g.call(call)
			g.line("%s", s)
			return
		}
	}
	if ne, ok := x.X.(*ast.NewExpr); ok {
		s, _ := g.newExpr(ne)
		g.line("%s", s)
		return
	}
	s, _ := g.expr(x.X)
	g.line("_ = %s", s)
}

// ------------------------------------------------------------ functions

// methodName maps a sketch function onto its Go method name: exported,
// with the harness becoming Run.
func (g *gen) methodName(f *ast.FuncDecl) string {
	if f.Name == g.harnessName() {
		return "Run"
	}
	return exported(safeIdent(f.Name))
}

func (g *gen) harnessName() string {
	if g.sk.Harness != nil {
		return g.sk.Harness.Name
	}
	return ""
}

// countReads walks a statement list counting identifier reads — every
// identifier occurrence in expression position except a plain-Ident
// assignment target. Locals with zero reads get a `_ = x` discard so
// the emitted package always compiles.
func countReads(stmts []ast.Stmt) map[string]int {
	reads := map[string]int{}
	var walkE func(e ast.Expr)
	walkE = func(e ast.Expr) {
		switch x := e.(type) {
		case nil:
		case *ast.Ident:
			reads[x.Name]++
		case *ast.Unary:
			walkE(x.X)
		case *ast.Binary:
			walkE(x.X)
			walkE(x.Y)
		case *ast.FieldExpr:
			walkE(x.X)
		case *ast.IndexExpr:
			walkE(x.X)
			walkE(x.Index)
		case *ast.SliceExpr:
			walkE(x.X)
			walkE(x.Start)
		case *ast.CallExpr:
			for _, a := range x.Args {
				walkE(a)
			}
		case *ast.CastExpr:
			walkE(x.X)
		case *ast.NewExpr:
			for _, a := range x.Args {
				walkE(a)
			}
		}
	}
	var walkS func(s ast.Stmt)
	walkS = func(s ast.Stmt) {
		switch x := s.(type) {
		case nil:
		case *ast.Block:
			for _, st := range x.Stmts {
				walkS(st)
			}
		case *ast.DeclStmt:
			walkE(x.Init)
		case *ast.AssignStmt:
			if _, plain := x.LHS.(*ast.Ident); !plain {
				walkE(x.LHS)
			}
			walkE(x.RHS)
		case *ast.IfStmt:
			walkE(x.Cond)
			walkS(x.Then)
			walkS(x.Else)
		case *ast.WhileStmt:
			walkE(x.Cond)
			walkS(x.Body)
		case *ast.ReturnStmt:
			walkE(x.Val)
		case *ast.AssertStmt:
			walkE(x.Cond)
		case *ast.AtomicStmt:
			walkE(x.Cond)
			walkS(x.Body)
		case *ast.ForkStmt:
			walkE(x.N)
			walkS(x.Body)
		case *ast.LockStmt:
			walkE(x.Target)
		case *ast.ExprStmt:
			walkE(x.X)
		case *ast.ReorderStmt:
			walkS(x.Body)
		case *ast.RepeatStmt:
			walkE(x.Count)
			walkS(x.Body)
		}
	}
	for _, s := range stmts {
		walkS(s)
	}
	return reads
}

// declaredNames collects local declarations and fork variables, for
// receiver-collision avoidance.
func declaredNames(stmts []ast.Stmt, into map[string]bool) {
	var walkS func(s ast.Stmt)
	walkS = func(s ast.Stmt) {
		switch x := s.(type) {
		case nil:
		case *ast.Block:
			for _, st := range x.Stmts {
				walkS(st)
			}
		case *ast.DeclStmt:
			into[safeIdent(x.Name)] = true
		case *ast.IfStmt:
			walkS(x.Then)
			walkS(x.Else)
		case *ast.WhileStmt:
			walkS(x.Body)
		case *ast.AtomicStmt:
			walkS(x.Body)
		case *ast.ForkStmt:
			into[safeIdent(x.Var)] = true
			walkS(x.Body)
		case *ast.ReorderStmt:
			walkS(x.Body)
		case *ast.RepeatStmt:
			walkS(x.Body)
		}
	}
	for _, s := range stmts {
		walkS(s)
	}
}

// emitFunc renders one function-like body (a method on *DS) into a
// standalone chunk.
func (g *gen) emitFunc(doc []string, name string, f *ast.FuncDecl, stmts []ast.Stmt, ret *ast.TypeExpr) (string, error) {
	used := map[string]bool{}
	for n := range g.globals {
		used[safeIdent(n)] = true
	}
	for _, st := range g.structOrder {
		used[safeType(st)] = true
	}
	var params []*ast.Param
	if f != nil {
		params = f.Params
	}
	for _, p := range params {
		used[safeIdent(p.Name)] = true
	}
	declaredNames(stmts, used)
	g.recv = freshName("s", used)
	g.locals = map[string]types.Type{}
	for _, p := range params {
		t, err := g.typeExprType(p.Type)
		if err != nil {
			return "", fmt.Errorf("emit: param %s: %v", p.Name, err)
		}
		g.locals[p.Name] = t
	}
	g.reads = countReads(stmts)
	retT, err := g.typeExprType(ret)
	if err != nil {
		return "", fmt.Errorf("emit: %v", err)
	}
	g.retT = retT
	g.buf.Reset()
	for _, d := range doc {
		g.line("// %s", d)
	}
	var sig strings.Builder
	fmt.Fprintf(&sig, "func (%s *DS) %s(", g.recv, name)
	for i, p := range params {
		if i > 0 {
			sig.WriteString(", ")
		}
		fmt.Fprintf(&sig, "%s %s", safeIdent(p.Name), goType(g.locals[p.Name]))
	}
	sig.WriteString(")")
	if retT.Base != types.Void {
		sig.WriteString(" " + goType(retT))
	}
	sig.WriteString(" {")
	g.line("%s", sig.String())
	g.ind++
	g.block(&ast.Block{Stmts: stmts})
	g.ind--
	g.line("}")
	if g.err != nil {
		err := g.err
		g.err = nil
		return "", err
	}
	return g.buf.String(), nil
}

// resolveFunc resolves one WorkProg function for the candidate.
func (g *gen) resolveFunc(name string) (*ast.FuncDecl, error) {
	return printer.ResolveAST(g.sk, g.cand, name)
}

// reachable walks resolved call graphs from the harness and returns
// the reachable function set (harness included).
func (g *gen) reachable(resolved map[string]*ast.FuncDecl) ([]string, error) {
	seen := map[string]bool{}
	var visit func(name string) error
	var collectCalls func(s ast.Stmt, out *[]string)
	var collectCallsE func(e ast.Expr, out *[]string)
	collectCallsE = func(e ast.Expr, out *[]string) {
		switch x := e.(type) {
		case nil:
		case *ast.Unary:
			collectCallsE(x.X, out)
		case *ast.Binary:
			collectCallsE(x.X, out)
			collectCallsE(x.Y, out)
		case *ast.FieldExpr:
			collectCallsE(x.X, out)
		case *ast.IndexExpr:
			collectCallsE(x.X, out)
			collectCallsE(x.Index, out)
		case *ast.CallExpr:
			if g.funcs[x.Fun] != nil {
				*out = append(*out, x.Fun)
			}
			for _, a := range x.Args {
				collectCallsE(a, out)
			}
		case *ast.CastExpr:
			collectCallsE(x.X, out)
		case *ast.NewExpr:
			for _, a := range x.Args {
				collectCallsE(a, out)
			}
		}
	}
	collectCalls = func(s ast.Stmt, out *[]string) {
		switch x := s.(type) {
		case nil:
		case *ast.Block:
			for _, st := range x.Stmts {
				collectCalls(st, out)
			}
		case *ast.DeclStmt:
			collectCallsE(x.Init, out)
		case *ast.AssignStmt:
			collectCallsE(x.LHS, out)
			collectCallsE(x.RHS, out)
		case *ast.IfStmt:
			collectCallsE(x.Cond, out)
			collectCalls(x.Then, out)
			collectCalls(x.Else, out)
		case *ast.WhileStmt:
			collectCallsE(x.Cond, out)
			collectCalls(x.Body, out)
		case *ast.ReturnStmt:
			collectCallsE(x.Val, out)
		case *ast.AssertStmt:
			collectCallsE(x.Cond, out)
		case *ast.AtomicStmt:
			collectCallsE(x.Cond, out)
			collectCalls(x.Body, out)
		case *ast.ForkStmt:
			collectCallsE(x.N, out)
			collectCalls(x.Body, out)
		case *ast.LockStmt:
			collectCallsE(x.Target, out)
		case *ast.ExprStmt:
			collectCallsE(x.X, out)
		}
	}
	visit = func(name string) error {
		if seen[name] {
			return nil
		}
		seen[name] = true
		f, err := g.resolveFunc(name)
		if err != nil {
			return err
		}
		if f.Generator {
			return fmt.Errorf("emit: generator %s is called but was not inlined (only expression-inlinable generators are supported)", name)
		}
		resolved[name] = f
		var callees []string
		collectCalls(f.Body, &callees)
		for _, c := range callees {
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	h := g.harnessName()
	if h == "" || g.funcs[h] == nil {
		return nil, fmt.Errorf("emit: sketch has no harness function")
	}
	if err := visit(h); err != nil {
		return nil, err
	}
	// Deterministic order: WorkProg declaration order, harness last.
	var order []string
	for _, f := range g.sk.WorkProg.Funcs {
		if seen[f.Name] && f.Name != h {
			order = append(order, f.Name)
		}
	}
	order = append(order, h)
	return order, nil
}

// collectOps lists calls to user functions inside the harness's fork
// body (or the whole body when sequential), in source order — the op
// sequence the load harness replays per round.
func (g *gen) collectOps(harness *ast.FuncDecl) []string {
	stmts := harness.Body.Stmts
	if fork := topLevelFork(harness.Body); fork != nil {
		stmts = fork.Body.Stmts
	}
	var out []string
	var blk ast.Stmt = &ast.Block{Stmts: stmts}
	var collect func(s ast.Stmt)
	var collectE func(e ast.Expr)
	collectE = func(e ast.Expr) {
		switch x := e.(type) {
		case nil:
		case *ast.Unary:
			collectE(x.X)
		case *ast.Binary:
			collectE(x.X)
			collectE(x.Y)
		case *ast.FieldExpr:
			collectE(x.X)
		case *ast.IndexExpr:
			collectE(x.X)
			collectE(x.Index)
		case *ast.CallExpr:
			if f := g.funcs[x.Fun]; f != nil && !f.Generator && x.Fun != g.harnessName() {
				if g.opDrivable(f) {
					out = append(out, g.methodName(f))
				}
			}
			for _, a := range x.Args {
				collectE(a)
			}
		case *ast.CastExpr:
			collectE(x.X)
		case *ast.NewExpr:
			for _, a := range x.Args {
				collectE(a)
			}
		}
	}
	collect = func(s ast.Stmt) {
		switch x := s.(type) {
		case nil:
		case *ast.Block:
			for _, st := range x.Stmts {
				collect(st)
			}
		case *ast.DeclStmt:
			collectE(x.Init)
		case *ast.AssignStmt:
			collectE(x.RHS)
		case *ast.IfStmt:
			collect(x.Then)
			collect(x.Else)
		case *ast.WhileStmt:
			collect(x.Body)
		case *ast.AssertStmt:
		case *ast.AtomicStmt:
			collect(x.Body)
		case *ast.ExprStmt:
			collectE(x.X)
		}
	}
	collect(blk)
	return out
}

// opDrivable reports whether the load harness can synthesize arguments
// for an operation: scalar int/bool parameters only.
func (g *gen) opDrivable(f *ast.FuncDecl) bool {
	for _, p := range f.Params {
		t, err := g.typeExprType(p.Type)
		if err != nil || t.IsArray() || t.Base == types.Ref {
			return false
		}
	}
	return true
}

// topLevelFork finds the harness's top-level fork statement, if any.
func topLevelFork(b *ast.Block) *ast.ForkStmt {
	for _, s := range b.Stmts {
		if f, ok := s.(*ast.ForkStmt); ok {
			return f
		}
	}
	return nil
}

// ------------------------------------------------------------ ds.go

// dsFile generates the main source file: struct types, the DS globals
// bundle, constructors, methods, the harness Run/Init split, and the
// helpers. It also returns the load-harness op list.
func (g *gen) dsFile(name, code string) ([]byte, []string, error) {
	resolved := map[string]*ast.FuncDecl{}
	order, err := g.reachable(resolved)
	if err != nil {
		return nil, nil, err
	}
	harness := resolved[g.harnessName()]
	ops := g.collectOps(harness)

	var chunks []string

	// Constructors (one per struct, in declaration order).
	for _, sn := range g.structOrder {
		c, err := g.ctor(g.structs[sn])
		if err != nil {
			return nil, nil, err
		}
		chunks = append(chunks, c)
	}

	// Operations, then the harness.
	for _, fn := range order {
		f := resolved[fn]
		if fn == g.harnessName() {
			continue
		}
		c, err := g.emitFunc(
			[]string{fmt.Sprintf("%s is the sketch operation `%s`.", g.methodName(f), fn)},
			g.methodName(f), f, f.Body.Stmts, f.Ret)
		if err != nil {
			return nil, nil, err
		}
		chunks = append(chunks, c)
	}

	// Init: the harness prologue (everything before the fork), used by
	// the load harness to set the structure up without running the
	// whole verification scenario.
	prologue := harness.Body.Stmts
	for i, s := range harness.Body.Stmts {
		if _, ok := s.(*ast.ForkStmt); ok {
			prologue = harness.Body.Stmts[:i]
			break
		}
	}
	initChunk, err := g.emitFunc(
		[]string{"Init runs the harness prologue: it puts the structure in its", "verified initial state without running the full scenario."},
		"Init", nil, prologue, nil)
	if err != nil {
		return nil, nil, err
	}
	chunks = append(chunks, initChunk)

	runChunk, err := g.emitFunc(
		[]string{"Run executes the verified harness once end to end: prologue,", "concurrent threads (as real goroutines), epilogue assertions.", "It panics if an assertion the model checker proved is violated."},
		"Run", nil, harness.Body.Stmts, nil)
	if err != nil {
		return nil, nil, err
	}
	chunks = append(chunks, runChunk)

	// Assemble the file.
	var b strings.Builder
	b.WriteString("// Code generated by psketch (internal/emit); DO NOT EDIT.\n//\n")
	fmt.Fprintf(&b, "// Candidate %s of sketch harness %s.\n", name, g.harnessName())
	fmt.Fprintf(&b, "// Hole assignment: %v\n//\n", []int64(g.cand))
	b.WriteString("// Resolved sketch (model syntax):\n//\n")
	for _, ln := range strings.Split(strings.TrimRight(code, "\n"), "\n") {
		if ln == "" {
			b.WriteString("//\n")
		} else {
			b.WriteString("//\t" + ln + "\n")
		}
	}
	b.WriteString("package main\n\n")

	if len(g.structOrder) > 0 || len(g.globalOrder) > 0 {
		g.needs["sync/atomic"] = true
	}
	var imps []string
	for imp := range g.needs {
		imps = append(imps, imp)
	}
	sort.Strings(imps)
	if len(imps) > 0 {
		b.WriteString("import (\n")
		for _, imp := range imps {
			fmt.Fprintf(&b, "\t%q\n", imp)
		}
		b.WriteString(")\n\n")
	}

	// Struct types: every field is a shared atomic cell (including the
	// implicit _lock owner used by lock/unlock).
	for _, sn := range g.structOrder {
		si := g.structs[sn]
		fmt.Fprintf(&b, "// %s mirrors the sketch struct of the same name; all fields\n// are shared atomic cells.\ntype %s struct {\n", safeType(sn), safeType(sn))
		for _, f := range si.Fields {
			fmt.Fprintf(&b, "\t%s %s\n", safeIdent(f.Name), goAtomic(f.Type))
		}
		b.WriteString("}\n\n")
	}

	// DS: the globals bundle.
	b.WriteString("// DS holds the sketch's shared globals. Allocate with New; each\n// DS is an independent instance of the synthesized structure.\ntype DS struct {\n")
	if g.helpers["mu"] {
		b.WriteString("\tmu sync.Mutex // the model's atomic{} blocks\n")
	}
	for _, gn := range g.globalOrder {
		fmt.Fprintf(&b, "\t%s %s\n", safeIdent(gn), goAtomic(g.globals[gn]))
	}
	b.WriteString("}\n\n")

	// New + global initializers.
	newChunk, err := g.newFunc()
	if err != nil {
		return nil, nil, err
	}
	b.WriteString(newChunk)
	b.WriteString("\n")

	for _, c := range chunks {
		b.WriteString(c)
		b.WriteString("\n")
	}

	b.WriteString(g.helperChunk())
	return []byte(b.String()), ops, nil
}

// newFunc renders New() with the sketch's global initializers.
func (g *gen) newFunc() (string, error) {
	g.buf.Reset()
	g.locals = map[string]types.Type{}
	g.reads = map[string]int{}
	g.retT = types.TVoid
	used := map[string]bool{}
	for n := range g.globals {
		used[safeIdent(n)] = true
	}
	g.recv = freshName("s", used)
	g.line("// New allocates the structure and applies the sketch's global")
	g.line("// initializers.")
	g.line("func New() *DS {")
	g.ind++
	g.line("%s := &DS{}", g.recv)
	for _, gd := range g.sk.WorkProg.Globals {
		if gd.Init == nil {
			continue
		}
		t := g.globals[gd.Name]
		if t.IsArray() {
			g.broadcast(g.recv+"."+safeIdent(gd.Name), t, gd.Init, true)
			continue
		}
		g.line("%s.%s.Store(%s)", g.recv, safeIdent(gd.Name), g.exprAs(gd.Init, t))
	}
	g.line("return %s", g.recv)
	g.ind--
	g.line("}")
	if g.err != nil {
		err := g.err
		g.err = nil
		return "", err
	}
	return g.buf.String(), nil
}

// ctor renders the arena-free constructor for one struct: positional
// arguments bind the defaultless fields (the model's `new T(args)`),
// defaults are stored after.
func (g *gen) ctor(si *types.StructInfo) (string, error) {
	g.buf.Reset()
	g.locals = map[string]types.Type{}
	g.reads = map[string]int{}
	g.retT = types.TVoid
	used := map[string]bool{"n": true}
	for n := range g.globals {
		used[safeIdent(n)] = true
	}
	g.recv = freshName("s", used)
	ctor := si.CtorFields()
	var params []string
	argNames := map[int]string{}
	for _, fi := range ctor {
		f := si.Fields[fi]
		an := freshName("a_"+safeIdent(f.Name), used)
		used[an] = true
		argNames[fi] = an
		params = append(params, fmt.Sprintf("%s %s", an, goType(f.Type)))
	}
	g.line("// new%s allocates a %s node (the model's `new %s(...)`).",
		exported(safeType(si.Name)), safeType(si.Name), si.Name)
	g.line("func (%s *DS) new%s(%s) *%s {", g.recv, exported(safeType(si.Name)),
		strings.Join(params, ", "), safeType(si.Name))
	g.ind++
	g.line("n := &%s{}", safeType(si.Name))
	for i, f := range si.Fields {
		if an, ok := argNames[i]; ok {
			g.line("n.%s.Store(%s)", safeIdent(f.Name), an)
			continue
		}
		if f.Default == nil {
			continue
		}
		if _, isNull := f.Default.(*ast.NullLit); isNull {
			continue // zero value
		}
		if lit, ok := f.Default.(*ast.IntLit); ok && lit.Val == 0 && f.Type.Base == types.Int {
			continue // zero value
		}
		if lit, ok := f.Default.(*ast.BoolLit); ok && !lit.Val {
			continue // zero value
		}
		g.line("n.%s.Store(%s)", safeIdent(f.Name), g.exprAs(f.Default, f.Type))
	}
	g.line("return n")
	g.ind--
	g.line("}")
	if g.err != nil {
		err := g.err
		g.err = nil
		return "", err
	}
	return g.buf.String(), nil
}

// helperChunk renders only the helpers the lowering referenced.
func (g *gen) helperChunk() string {
	var b strings.Builder
	if g.helpers["assertTrue"] {
		b.WriteString(`// assertTrue mirrors the model's assert statement: the model
// checker proved these under its interleaving semantics, so a panic
// here means Go's weaker memory model (or the mutex approximation of
// atomic blocks) broke an assumption — see ARCHITECTURE.md.
func assertTrue(cond bool, msg string) {
	if !cond {
		panic("assertion failed: " + msg)
	}
}

`)
	}
	if g.helpers["b2i"] {
		b.WriteString(`// b2i bridges Go bools back to the model's 0/1 integer cells.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

`)
	}
	if g.helpers["lockAcquire"] || g.helpers["lockRelease"] {
		g.needs["sync/atomic"] = true
		b.WriteString(`// lockAcquire spin-claims a node's _lock cell (the model's lock(x)
// sugar: an atomic wait for _lock == 0 that then stores the owner).
func lockAcquire(l *atomic.Int64) {
	for !l.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

// lockRelease releases a node's _lock cell (the model's unlock(x)).
func lockRelease(l *atomic.Int64) {
	l.Store(0)
}

`)
	}
	return b.String()
}
