// Package emit is the Go codegen backend: it lowers a verified
// candidate of a concurrent sketch into a self-contained, compilable Go
// package — real sync/atomic operations for the model's atomic steps,
// real goroutines for its threads, the structure's operations exposed
// as exported methods — plus a generated high-contention load harness
// and a race-detector stress test.
//
// The lowering map (see ARCHITECTURE.md §codegen backend):
//
//	model shared cell (global, struct field) → atomic.Int64 / atomic.Bool / atomic.Pointer[T]
//	AtomicSwap / CAS / AtomicReadAndIncr/Decr → Swap / CompareAndSwap / Add
//	atomic { ... } and atomic (cond) { ... }  → a structure-wide sync.Mutex (cond spins)
//	lock(x) / unlock(x)                       → spin-CAS on the node's _lock cell
//	fork (t; N)                               → N goroutines + sync.WaitGroup
//	assert e                                  → panic on violation
//	arena references                          → real Go pointers (null → nil)
//
// Soundness caveat: the model checker proves the candidate under the
// model's sequentially-interleaved atomic-step semantics; Go's memory
// model is weaker, so the emitted code's stress test is evidence, not
// proof. All shared cells are atomics, which at least makes the emitted
// package race-detector-clean by construction.
package emit

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"psketch/internal/ast"
	"psketch/internal/desugar"
	"psketch/internal/obs"
	"psketch/internal/printer"
	"psketch/internal/types"
)

// Options configure one Emit call.
type Options struct {
	// Name is the candidate's directory-friendly name ("cand00"...);
	// it becomes the emitted module path suffix.
	Name string
	// Tracer/Parent/Metrics thread the emit.* spans and counters
	// through internal/obs (all optional).
	Tracer  *obs.Tracer
	Parent  obs.SpanID
	Metrics *obs.Metrics
}

// Package is one emitted candidate: a file set forming a complete Go
// module (package main, so it both builds as a binary and runs under
// `go test -race`).
type Package struct {
	// Name echoes Options.Name.
	Name string
	// Candidate is the hole assignment the package was lowered from.
	Candidate desugar.Candidate
	// Code is the resolved sketch in model syntax (the same text
	// printer.Program renders), embedded in ds.go's header comment.
	Code string
	// Files maps file name → contents: ds.go, bench.go, ds_test.go,
	// go.mod.
	Files map[string][]byte
	// Ops lists the exported structure operations the load harness
	// drives, in harness-thread order.
	Ops []string
}

// WriteDir writes the package under dir (created if needed).
func (p *Package) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := make([]string, 0, len(p.Files))
	for name := range p.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), p.Files[name], 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Emit lowers one verified candidate of the sketch into a compilable
// Go package. The candidate must satisfy the sketch's structural
// constraints (i.e. come from Synthesize/Enumerate); unresolved holes
// or reorder blocks surviving resolution are an error.
func Emit(sk *desugar.Sketch, cand desugar.Candidate, opts Options) (*Package, error) {
	t0 := time.Now()
	sp := opts.Tracer.Start("emit.package", opts.Parent)
	met := opts.Metrics
	if met == nil {
		met = obs.NewMetrics()
	}
	if opts.Name == "" {
		opts.Name = "cand"
	}
	code, err := printer.Program(sk, cand)
	if err != nil {
		return nil, err
	}
	g := newGen(sk, cand)
	dsGo, ops, err := g.dsFile(opts.Name, code)
	if err != nil {
		return nil, err
	}
	p := &Package{
		Name:      opts.Name,
		Candidate: append(desugar.Candidate(nil), cand...),
		Code:      code,
		Ops:       ops,
		Files: map[string][]byte{
			"ds.go":      gofmt(dsGo),
			"bench.go":   gofmt(g.benchFile(ops)),
			"ds_test.go": gofmt(g.testFile(ops)),
			"go.mod":     []byte(fmt.Sprintf("module psketch-emitted/%s\n\ngo 1.22\n", opts.Name)),
		},
	}
	var bytes int64
	for _, f := range p.Files {
		bytes += int64(len(f))
	}
	met.Counter("emit.packages").Add(1)
	met.Counter("emit.files").Add(int64(len(p.Files)))
	met.Counter("emit.bytes").Add(bytes)
	sp.EndDur(time.Since(t0), obs.Str("name", opts.Name), obs.Int("bytes", bytes))
	return p, nil
}

// gofmt formats an emitted Go file; on any error (which would mean the
// lowering produced invalid Go — the compile step will report it far
// more usefully) the raw bytes pass through.
func gofmt(src []byte) []byte {
	out, err := format.Source(src)
	if err != nil {
		return src
	}
	return out
}

// exported upper-cases an op name's first rune so structure operations
// become exported methods of the emitted DS type.
func exported(name string) string {
	if name == "" {
		return name
	}
	return strings.ToUpper(name[:1]) + name[1:]
}

// goKeywords is the set of identifiers the lowering must not collide
// with: Go keywords plus the predeclared names the generated code
// relies on.
var goKeywords = map[string]bool{
	"break": true, "case": true, "chan": true, "const": true,
	"continue": true, "default": true, "defer": true, "else": true,
	"fallthrough": true, "for": true, "func": true, "go": true,
	"goto": true, "if": true, "import": true, "interface": true,
	"map": true, "package": true, "range": true, "return": true,
	"select": true, "struct": true, "switch": true, "type": true,
	"var": true, "nil": true, "true": true, "false": true,
	"int": true, "int64": true, "bool": true, "string": true,
	"append": true, "len": true, "cap": true, "new": true,
	"make": true, "panic": true, "atomic": true, "sync": true,
	"runtime": true, "main": true,
}

// safeIdent maps a sketch identifier onto a legal, collision-free Go
// identifier.
func safeIdent(name string) string {
	if goKeywords[name] {
		return name + "_"
	}
	return name
}

// freshName returns base, or base with underscores appended until it
// avoids used.
func freshName(base string, used map[string]bool) string {
	n := base
	for used[n] {
		n += "_"
	}
	return n
}

// typeExprType converts a surface type expression to a types.Type
// using the sketch's struct table.
func (g *gen) typeExprType(t *ast.TypeExpr) (types.Type, error) {
	if t == nil {
		return types.TVoid, nil
	}
	var base types.Type
	switch t.Name {
	case "int":
		base = types.TInt
	case "bool", "bit":
		base = types.TBool
	case "void":
		return types.TVoid, nil
	default:
		if g.structs[t.Name] == nil {
			return types.Type{}, fmt.Errorf("emit: unknown type %s", t.Name)
		}
		base = types.RefTo(t.Name)
	}
	if t.ArrayLen > 0 {
		return types.ArrayOf(base, t.ArrayLen), nil
	}
	return base, nil
}
