package emit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os/exec"
	"path/filepath"
	"sort"
	"time"

	"psketch/internal/obs"
)

// RankOptions configure a ranking pass over emitted candidate
// directories.
type RankOptions struct {
	// GoTool is the go binary to build/run with ("go" when empty).
	GoTool string
	// Goroutines is the load-harness worker count (8 when zero).
	Goroutines int
	// Duration is the per-run measurement window (500ms when zero).
	Duration time.Duration
	// Mix overrides the harness op mix ("Enqueue,Dequeue,...").
	Mix string
	// Runs measures each candidate this many times and keeps the best
	// (3 when zero) — best-of damps scheduler noise.
	Runs int
	// BuildTimeout / RunTimeout bound each subprocess (60s / 30s when
	// zero; the run timeout is added on top of Duration).
	BuildTimeout time.Duration
	RunTimeout   time.Duration

	Tracer  *obs.Tracer
	Parent  obs.SpanID
	Metrics *obs.Metrics
}

func (o *RankOptions) defaults() {
	if o.GoTool == "" {
		o.GoTool = "go"
	}
	if o.Goroutines <= 0 {
		o.Goroutines = 8
	}
	if o.Duration <= 0 {
		o.Duration = 500 * time.Millisecond
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.BuildTimeout <= 0 {
		o.BuildTimeout = 60 * time.Second
	}
	if o.RunTimeout <= 0 {
		o.RunTimeout = 30 * time.Second
	}
}

// Measurement is one candidate's measured throughput. Err is non-empty
// when the candidate failed to build or run; failed candidates sort
// after all measured ones.
type Measurement struct {
	Dir       string  `json:"dir"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Ops       int64   `json:"ops"`
	BuildMS   int64   `json:"build_ms"`
	Err       string  `json:"err,omitempty"`
}

// HaveGo reports whether the go tool is available on PATH — callers
// (CLI, tests) use it to degrade gracefully on go-less hosts.
func HaveGo(tool string) bool {
	if tool == "" {
		tool = "go"
	}
	_, err := exec.LookPath(tool)
	return err == nil
}

// Rank builds every emitted candidate directory, runs its load harness,
// and returns measurements ordered fastest-first (build/run failures
// last, in input order). Candidates are measured sequentially so they
// do not contend with each other.
func Rank(dirs []string, o RankOptions) ([]Measurement, error) {
	o.defaults()
	sp := o.Tracer.Start("emit.rank", o.Parent)
	t0 := time.Now()
	met := o.Metrics
	if met == nil {
		met = obs.NewMetrics()
	}
	if !HaveGo(o.GoTool) {
		return nil, fmt.Errorf("emit: go tool %q not found in PATH", o.GoTool)
	}
	ms := make([]Measurement, 0, len(dirs))
	for _, dir := range dirs {
		ms = append(ms, o.measure(dir, met))
	}
	sort.SliceStable(ms, func(i, j int) bool {
		if (ms[i].Err == "") != (ms[j].Err == "") {
			return ms[i].Err == ""
		}
		return ms[i].OpsPerSec > ms[j].OpsPerSec
	})
	sp.EndDur(time.Since(t0), obs.Int("candidates", int64(len(ms))))
	return ms, nil
}

func (o *RankOptions) measure(dir string, met *obs.Metrics) Measurement {
	m := Measurement{Dir: dir}
	// The bench binary runs with cmd.Dir = dir, so its path must be
	// relative to that dir (or absolute), not to our own cwd.
	bin := "." + string(filepath.Separator) + "bench.bin"

	bsp := o.Tracer.Start("emit.rank.build", o.Parent)
	bt0 := time.Now()
	met.Counter("emit.rank.builds").Add(1)
	build := exec.Command(o.GoTool, "build", "-o", "bench.bin", ".")
	build.Dir = dir
	out, err := runWithTimeout(build, o.BuildTimeout)
	m.BuildMS = time.Since(bt0).Milliseconds()
	bsp.EndDur(time.Since(bt0), obs.Str("dir", dir))
	if err != nil {
		met.Counter("emit.rank.build_failures").Add(1)
		m.Err = fmt.Sprintf("build: %v: %s", err, firstLine(out))
		return m
	}

	for run := 0; run < o.Runs; run++ {
		rsp := o.Tracer.Start("emit.rank.run", o.Parent)
		rt0 := time.Now()
		met.Counter("emit.rank.runs").Add(1)
		args := []string{
			fmt.Sprintf("-goroutines=%d", o.Goroutines),
			fmt.Sprintf("-duration-ms=%d", o.Duration.Milliseconds()),
		}
		if o.Mix != "" {
			args = append(args, "-mix="+o.Mix)
		}
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		out, err := runWithTimeout(cmd, o.RunTimeout+o.Duration)
		rsp.EndDur(time.Since(rt0), obs.Str("dir", dir))
		if err != nil {
			met.Counter("emit.rank.run_failures").Add(1)
			m.Err = fmt.Sprintf("run: %v: %s", err, firstLine(out))
			return m
		}
		var r struct {
			Ops       int64   `json:"ops"`
			OpsPerSec float64 `json:"ops_per_sec"`
		}
		if err := json.Unmarshal(lastJSONLine(out), &r); err != nil {
			m.Err = fmt.Sprintf("run: bad bench output: %v", err)
			return m
		}
		if r.OpsPerSec > m.OpsPerSec {
			m.OpsPerSec = r.OpsPerSec
			m.Ops = r.Ops
		}
	}
	return m
}

// runWithTimeout runs cmd with combined output and a hard kill after d.
func runWithTimeout(cmd *exec.Cmd, d time.Duration) ([]byte, error) {
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return buf.Bytes(), err
	case <-time.After(d):
		_ = cmd.Process.Kill()
		<-done
		return buf.Bytes(), fmt.Errorf("timed out after %s", d)
	}
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

// lastJSONLine picks the last {...} line of output, tolerating stray
// warnings around the bench JSON.
func lastJSONLine(b []byte) []byte {
	lines := bytes.Split(bytes.TrimSpace(b), []byte("\n"))
	for i := len(lines) - 1; i >= 0; i-- {
		l := bytes.TrimSpace(lines[i])
		if len(l) > 0 && l[0] == '{' {
			return l
		}
	}
	return bytes.TrimSpace(b)
}
