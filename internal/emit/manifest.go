package emit

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Manifest is the saved verdict an emit run leaves at the emit root:
// which sketch was synthesized and which candidate directories were
// written. pskemit -dir reloads it to re-rank without re-synthesizing.
type Manifest struct {
	// Sketch is the harness (or sketch file) the candidates came from.
	Sketch string `json:"sketch"`
	// Candidates lists the emitted packages, in enumeration order.
	Candidates []ManifestEntry `json:"candidates"`
	// Ranked holds the last ranking pass's measurements, fastest
	// first, when one was run.
	Ranked []Measurement `json:"ranked,omitempty"`
}

// ManifestEntry records one emitted candidate.
type ManifestEntry struct {
	// Name is the candidate's directory name under the emit root.
	Name string `json:"name"`
	// Candidate is the hole assignment.
	Candidate []int64 `json:"candidate"`
	// Code is the resolved sketch in model syntax.
	Code string `json:"code"`
	// Ops is the load-harness op mix.
	Ops []string `json:"ops"`
}

// ManifestName is the manifest's file name under the emit root.
const ManifestName = "manifest.json"

// WriteManifest saves m at dir/manifest.json.
func WriteManifest(dir string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(b, '\n'), 0o644)
}

// ReadManifest loads dir/manifest.json.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("emit: no manifest in %s (expected a directory written by psketch -emit-dir): %w", dir, err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("emit: corrupt manifest in %s: %w", dir, err)
	}
	return &m, nil
}

// CandidateDirs returns the absolute candidate directories of a
// manifest, in enumeration order.
func (m *Manifest) CandidateDirs(root string) []string {
	dirs := make([]string, 0, len(m.Candidates))
	for _, c := range m.Candidates {
		dirs = append(dirs, filepath.Join(root, c.Name))
	}
	return dirs
}
