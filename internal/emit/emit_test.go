package emit

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/parser"
	"psketch/internal/sketches"
)

// -update regenerates the golden emitted sources under testdata/golden.
var update = flag.Bool("update", false, "rewrite golden emitted sources")

// synthesize runs sequential CEGIS (Parallelism 1 keeps the chosen
// candidate deterministic, which the golden files rely on).
func synthesize(t *testing.T, bench, test string) (*desugar.Sketch, desugar.Candidate) {
	t.Helper()
	b := sketches.ByName(bench)
	if b == nil {
		t.Fatalf("no benchmark %s", bench)
	}
	src, err := b.Source(test)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "Main", b.Opts(test))
	if err != nil {
		t.Fatal(err)
	}
	syn, err := core.New(sk, core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatalf("%s %s must resolve", bench, test)
	}
	return sk, res.Candidate
}

func TestEmitQueueE1(t *testing.T) {
	sk, cand := synthesize(t, "queueE1", "ed(ee|dd)")
	p, err := Emit(sk, cand, Options{Name: "cand00"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"ds.go", "bench.go", "ds_test.go", "go.mod"} {
		if len(p.Files[f]) == 0 {
			t.Errorf("missing emitted file %s", f)
		}
	}
	if len(p.Ops) == 0 {
		t.Error("no load-harness ops collected from the fork body")
	}
	ds := string(p.Files["ds.go"])
	for _, want := range []string{"package main", "type DS struct", "func New() *DS", ") Run()", ") Init()", "sync/atomic"} {
		if !strings.Contains(ds, want) {
			t.Errorf("ds.go missing %q", want)
		}
	}
	// The restricted Enqueue uses CAS/AtomicSwap; the lowering must
	// produce real sync/atomic calls, not plain loads/stores.
	if !strings.Contains(ds, ".Swap(") && !strings.Contains(ds, ".CompareAndSwap(") {
		t.Error("ds.go has no atomic RMW operations")
	}
}

// TestEmittedQueueE1AgreesWithMC is the model-checker cross-check: the
// emitted package must vet, build, and pass its own generated stress
// test under the race detector — i.e. the harness assertions the MC
// proved must hold when the candidate runs as real concurrent Go.
func TestEmittedQueueE1AgreesWithMC(t *testing.T) {
	if !HaveGo("go") {
		t.Skip("go tool not on PATH")
	}
	sk, cand := synthesize(t, "queueE1", "ed(ee|dd)")
	p, err := Emit(sk, cand, Options{Name: "cand00"})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "cand00")
	if err := p.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	goRun := func(args ...string) (string, error) {
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}
	if out, err := goRun("vet", "."); err != nil {
		t.Fatalf("go vet: %v\n%s", err, out)
	}
	if out, err := goRun("build", "-o", os.DevNull, "."); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	if out, err := goRun("test", "-race", "-short", "."); err != nil {
		if strings.Contains(out, "requires cgo") || strings.Contains(out, "-race is not supported") {
			t.Skipf("race detector unavailable: %s", out)
		}
		t.Fatalf("go test -race on emitted package: %v\n%s", err, out)
	}
}

// TestGolden pins the emitted Go source for two small Table 1 sketches
// so codegen drift shows up in reviewable diffs. Regenerate with
//
//	go test ./internal/emit/ -run TestGolden -update
func TestGolden(t *testing.T) {
	cases := []struct{ bench, test string }{
		{"queueE1", "ed(ee|dd)"},
		{"barrier1", "2"},
	}
	for _, tc := range cases {
		t.Run(tc.bench, func(t *testing.T) {
			b := sketches.ByName(tc.bench)
			if b == nil {
				t.Fatalf("no benchmark %s", tc.bench)
			}
			test := tc.test
			found := false
			for _, tt := range b.Tests {
				if tt == test {
					found = true
				}
			}
			if !found {
				test = b.Tests[0]
			}
			sk, cand := synthesize(t, tc.bench, test)
			p, err := Emit(sk, cand, Options{Name: "golden"})
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join("testdata", "golden", tc.bench)
			if *update {
				if err := os.RemoveAll(dir); err != nil {
					t.Fatal(err)
				}
				// Golden files get a .txt suffix so the emitted
				// package main does not join the repo build.
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				for name, data := range p.Files {
					if err := os.WriteFile(filepath.Join(dir, name+".txt"), data, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				return
			}
			for name, data := range p.Files {
				want, err := os.ReadFile(filepath.Join(dir, name+".txt"))
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				if string(want) != string(data) {
					t.Errorf("%s/%s drifted from golden; run with -update and review the diff", tc.bench, name)
				}
			}
		})
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		Sketch: "queueE1",
		Candidates: []ManifestEntry{
			{Name: "cand00", Candidate: []int64{1, 0}, Code: "...", Ops: []string{"Enqueue", "Dequeue"}},
		},
		Ranked: []Measurement{{Dir: "cand00", OpsPerSec: 123}},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sketch != "queueE1" || len(got.Candidates) != 1 || got.Candidates[0].Name != "cand00" {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
	dirs := got.CandidateDirs(dir)
	if len(dirs) != 1 || dirs[0] != filepath.Join(dir, "cand00") {
		t.Fatalf("CandidateDirs: %v", dirs)
	}
}

func TestSafeIdentAndFreshName(t *testing.T) {
	if safeIdent("type") != "type_" || safeIdent("head") != "head" {
		t.Error("safeIdent")
	}
	used := map[string]bool{"s": true, "s_": true}
	if freshName("s", used) != "s__" {
		t.Error("freshName")
	}
	if exported("enqueue") != "Enqueue" {
		t.Error("exported")
	}
}

func TestLastJSONLine(t *testing.T) {
	out := []byte("warning: something\n{\"ops\":5}\n")
	if string(lastJSONLine(out)) != `{"ops":5}` {
		t.Errorf("lastJSONLine: %s", lastJSONLine(out))
	}
}
