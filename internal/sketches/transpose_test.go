package sketches

import (
	"testing"

	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/parser"
	"psketch/internal/printer"
)

func synthTranspose(t *testing.T, n int, verbose bool) (*core.Result, *desugar.Sketch) {
	t.Helper()
	src := TransposeSource(n)
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	sk, err := desugar.Desugar(prog, "trans_sse", TransposeOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{}
	if verbose {
		opts.Verbose = t.Logf
	}
	syn, err := core.New(sk, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	return res, sk
}

// The 2×2 shuf-based transpose resolves quickly; this exercises the
// whole sequential CEGIS path of §5 (repeat, array holes, bit holes).
func TestTranspose2x2(t *testing.T) {
	res, sk := synthTranspose(t, 2, true)
	if !res.Resolved {
		t.Fatal("2x2 transpose should resolve")
	}
	code, err := printer.Resolve(sk, res.Candidate, "trans_sse")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resolved:\n%s", code)
	t.Logf("iters=%d total=%v", res.Stats.Iterations, res.Stats.Total)
}

// The full 4×4 shufps transpose of §3 (the paper resolved it in 33
// minutes on 2008 hardware).
func TestTranspose4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("long synthesis run")
	}
	res, sk := synthTranspose(t, 4, false)
	if !res.Resolved {
		t.Fatal("4x4 transpose should resolve")
	}
	code, err := printer.Resolve(sk, res.Candidate, "trans_sse")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resolved:\n%s", code)
	t.Logf("iters=%d total=%v", res.Stats.Iterations, res.Stats.Total)
}
