package sketches

import (
	"math/big"
	"testing"

	"psketch/internal/desugar"
	"psketch/internal/parser"
)

// Compile every benchmark/test pair and report |C| (the Table 1
// column); sizes must be within two orders of magnitude of the paper.
func TestAllBenchmarksCompile(t *testing.T) {
	for _, b := range All() {
		for _, test := range b.Tests {
			src, err := b.Source(test)
			if err != nil {
				t.Errorf("%s %s: source: %v", b.Name, test, err)
				continue
			}
			prog, err := parser.Parse(src)
			if err != nil {
				t.Errorf("%s %s: parse: %v", b.Name, test, err)
				continue
			}
			sk, err := desugar.Desugar(prog, "Main", b.Opts(test))
			if err != nil {
				t.Errorf("%s %s: desugar: %v", b.Name, test, err)
				continue
			}
			logC := logBig(sk.Count)
			t.Logf("%-10s %-14s |C| = %s (log10 ≈ %.1f, paper ≈ 10^%.1f) holes=%d",
				b.Name, test, sk.Count, logC, b.PaperC, len(sk.Holes))
		}
	}
}

func logBig(x *big.Int) float64 {
	f := new(big.Float).SetInt(x)
	exp := f.MantExp(nil)
	return float64(exp) * 0.30103
}
