package sketches

import (
	"runtime"
	"testing"

	"psketch/internal/desugar"
	"psketch/internal/interp"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/state"
)

// This file cross-checks the model checker's partial-order reduction
// against the unreduced search, sketch by sketch: the verdicts must be
// identical under every combination of {POR, NoPOR} × {local fusion on,
// off} × {sequential, parallel}, every POR counterexample must replay
// to the same failure on a concrete interpreter, and on the paper
// benchmarks POR must explore strictly fewer states.

func lowerBench(t *testing.T, b *Benchmark, test string) *state.Layout {
	t.Helper()
	sk := compile(t, b, test)
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := state.NewLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mcCheck(t *testing.T, l *state.Layout, cand desugar.Candidate, o mc.Options) *mc.Result {
	t.Helper()
	res, err := mc.Check(l, cand, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// replayTrace re-executes a counterexample schedule on a fresh state
// with the plain interpreter and demands it reproduce the reported
// failure — every POR trace must be a real schedule, not an artifact of
// the reduced search.
func replayTrace(t *testing.T, l *state.Layout, cand desugar.Candidate, tr *mc.Trace) {
	t.Helper()
	p := l.Prog
	st := l.NewState()
	for _, seq := range []*ir.Seq{p.GlobalInit, p.Prologue} {
		if f := replaySeq(l, st, seq, cand); f != nil {
			if tr.Phase == mc.PhasePrologue {
				return
			}
			t.Fatalf("replay: prologue failed unexpectedly: %s", f)
		}
	}
	if tr.Phase == mc.PhasePrologue {
		t.Fatal("replay: prologue did not fail")
	}

	var lastFail *interp.Failure
	for i, ev := range tr.Events {
		seq := p.Threads[ev.Thread]
		ctx := interp.NewCtx(l, st, seq, cand)
		// Guard-skipped steps are not trace events; replay the skips.
		for int(st.PCs[ev.Thread]) < ev.Step {
			step := seq.Steps[st.PCs[ev.Thread]]
			ok, f := ctx.EvalGuards(step)
			if f != nil {
				t.Fatalf("replay: guard failure before event %d: %s", i, f)
			}
			if ok {
				t.Fatalf("replay: event %d skips a guard-true step of thread %d", i, ev.Thread)
			}
			st.PCs[ev.Thread]++
		}
		step := seq.Steps[ev.Step]
		ok, f := ctx.EvalGuards(step)
		if f != nil || !ok {
			t.Fatalf("replay: event %d (thread %d step %d) has false guards", i, ev.Thread, ev.Step)
		}
		if step.Cond != nil {
			en, f := ctx.EvalCond(step)
			if f != nil || !en {
				t.Fatalf("replay: event %d (thread %d step %d) not enabled", i, ev.Thread, ev.Step)
			}
		}
		if f := ctx.ExecBody(step); f != nil {
			if i != len(tr.Events)-1 {
				t.Fatalf("replay: failure %s at event %d before the end of the trace", f, i)
			}
			lastFail = f
		}
		st.PCs[ev.Thread] = int32(ev.Step + 1)
	}

	switch {
	case lastFail != nil:
		if lastFail.Kind != tr.Failure.Kind {
			t.Fatalf("replay: failure kind %v, trace reported %v", lastFail.Kind, tr.Failure.Kind)
		}
	case tr.Phase == mc.PhaseEpilogue:
		if f := replaySeq(l, st, p.Epilogue, cand); f == nil {
			t.Fatal("replay: epilogue did not fail")
		} else if f.Kind != tr.Failure.Kind {
			t.Fatalf("replay: epilogue failure kind %v, trace reported %v", f.Kind, tr.Failure.Kind)
		}
	case len(tr.Deadlocked) > 0:
		// Every thread must be finished or blocked at the end state.
		for th := range p.Threads {
			if f := replayToBlock(l, st, th, cand); f != nil {
				t.Fatalf("replay: thread %d failed while checking deadlock: %s", th, f)
			}
			seq := p.Threads[th]
			if int(st.PCs[th]) < len(seq.Steps) {
				step := seq.Steps[st.PCs[th]]
				if step.Cond == nil {
					t.Fatalf("replay: deadlocked trace leaves thread %d enabled", th)
				}
			}
		}
	case tr.FailThread >= 0:
		// The failure happened while probing the failing thread's next
		// step (a guard or blocking-condition evaluation): re-running
		// that thread must hit it.
		f := replayToFailure(l, st, tr.FailThread, cand)
		if f == nil {
			t.Fatalf("replay: thread %d does not reproduce %s", tr.FailThread, tr.Failure)
		}
		if f.Kind != tr.Failure.Kind {
			t.Fatalf("replay: failure kind %v, trace reported %v", f.Kind, tr.Failure.Kind)
		}
	default:
		t.Fatalf("replay: trace shape not reproduced: %s", tr)
	}
}

// replaySeq runs a deterministic sequence to completion.
func replaySeq(l *state.Layout, st *state.State, seq *ir.Seq, cand desugar.Candidate) *interp.Failure {
	ctx := interp.NewCtx(l, st, seq, cand)
	for _, step := range seq.Steps {
		ok, f := ctx.EvalGuards(step)
		if f != nil {
			return f
		}
		if !ok {
			continue
		}
		if step.Cond != nil {
			en, f := ctx.EvalCond(step)
			if f != nil {
				return f
			}
			if !en {
				return &interp.Failure{Kind: interp.FailDeadlock, Pos: step.Pos}
			}
		}
		if f := ctx.ExecBody(step); f != nil {
			return f
		}
	}
	return nil
}

// replayToBlock advances a thread past guard-false steps, stopping at
// its first blocking step (or the end); a failure on the way is
// returned.
func replayToBlock(l *state.Layout, st *state.State, th int, cand desugar.Candidate) *interp.Failure {
	seq := l.Prog.Threads[th]
	ctx := interp.NewCtx(l, st, seq, cand)
	for int(st.PCs[th]) < len(seq.Steps) {
		step := seq.Steps[st.PCs[th]]
		ok, f := ctx.EvalGuards(step)
		if f != nil {
			return f
		}
		if !ok {
			st.PCs[th]++
			continue
		}
		if step.Cond != nil {
			en, f := ctx.EvalCond(step)
			if f != nil {
				return f
			}
			if !en {
				return nil // blocked here
			}
		}
		return nil // enabled here
	}
	return nil
}

// replayToFailure runs one thread forward until it fails (returning the
// failure) or blocks/finishes (returning nil).
func replayToFailure(l *state.Layout, st *state.State, th int, cand desugar.Candidate) *interp.Failure {
	seq := l.Prog.Threads[th]
	ctx := interp.NewCtx(l, st, seq, cand)
	for int(st.PCs[th]) < len(seq.Steps) {
		step := seq.Steps[st.PCs[th]]
		ok, f := ctx.EvalGuards(step)
		if f != nil {
			return f
		}
		if !ok {
			st.PCs[th]++
			continue
		}
		if step.Cond != nil {
			en, f := ctx.EvalCond(step)
			if f != nil {
				return f
			}
			if !en {
				return nil
			}
		}
		if f := ctx.ExecBody(step); f != nil {
			return f
		}
		st.PCs[th]++
	}
	return nil
}

// TestPORCrossCheckAllSketches model checks the all-zero candidate of
// every Table 1 benchmark under {POR, NoPOR} × {fusion, NoLocalFusion}
// × {-j 1, -j N}: the verdict must be identical in all eight
// configurations, and every POR counterexample must replay concretely.
func TestPORCrossCheckAllSketches(t *testing.T) {
	jN := runtime.GOMAXPROCS(0)
	if jN < 2 {
		jN = 2
	}
	for _, b := range All() {
		b := b
		test := b.Tests[0]
		t.Run(b.Name+"/"+test, func(t *testing.T) {
			sk := compile(t, b, test)
			prog, err := ir.Lower(sk)
			if err != nil {
				t.Fatal(err)
			}
			l, err := state.NewLayout(prog)
			if err != nil {
				t.Fatal(err)
			}
			cand := make(desugar.Candidate, len(sk.Holes))
			want := -1 // 0/1 verdict across configurations
			for _, fusionOff := range []bool{false, true} {
				for _, noPOR := range []bool{false, true} {
					for _, j := range []int{1, jN} {
						res := mcCheck(t, l, cand, mc.Options{
							NoPOR: noPOR, NoLocalFusion: fusionOff, Parallelism: j,
						})
						got := 0
						if res.OK {
							got = 1
						}
						if want == -1 {
							want = got
						} else if got != want {
							t.Fatalf("verdict flips: NoPOR=%v NoLocalFusion=%v j=%d: OK=%v (want %v)",
								noPOR, fusionOff, j, res.OK, want == 1)
						}
						if !res.OK && !noPOR {
							replayTrace(t, l, cand, res.Trace)
						}
					}
				}
			}
		})
	}
}

// TestPORStateReduction checks the acceptance bar for the reduction:
// on verified candidates of the paper benchmarks, the POR search
// reaches the same verdict while expanding strictly fewer states than
// the unreduced search, sequentially and in parallel.
func TestPORStateReduction(t *testing.T) {
	jN := runtime.GOMAXPROCS(0)
	if jN < 2 {
		jN = 2
	}
	cases := []struct {
		bench *Benchmark
		test  string
		// cand, when non-nil, skips synthesis (queueE1's known
		// solution); otherwise the candidate is synthesized in-test.
		cand desugar.Candidate
		// tieOK allows POR to merely match the fused state count
		// (barrier1's local fusion already collapses the commuting
		// steps; POR still cuts transitions and the unfused states).
		tieOK bool
	}{
		{QueueE1(), "ed(ed|ed)", desugar.Candidate{0, 0}, false},
		{Barrier1(), "N=2,B=2", nil, true},
		{FineSet1(), "a(a|r)", nil, false},
		{DinPhilo(), "N=3,T=2", nil, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.bench.Name+"/"+c.test, func(t *testing.T) {
			cand := c.cand
			if cand == nil {
				res, _ := synth(t, c.bench, c.test, false)
				if !res.Resolved {
					t.Fatalf("%s %s did not resolve", c.bench.Name, c.test)
				}
				cand = res.Candidate
			}
			l := lowerBench(t, c.bench, c.test)
			full := mcCheck(t, l, cand, mc.Options{NoPOR: true})
			por := mcCheck(t, l, cand, mc.Options{})
			if !full.OK || !por.OK {
				t.Fatalf("candidate not verified: NoPOR OK=%v POR OK=%v", full.OK, por.OK)
			}
			t.Logf("states: NoPOR=%d POR=%d (%.1f%%), trans: NoPOR=%d POR=%d",
				full.States, por.States, 100*float64(por.States)/float64(full.States),
				full.Trans, por.Trans)
			if c.tieOK {
				if por.States > full.States || por.Trans >= full.Trans {
					t.Errorf("POR regresses: states %d vs %d, trans %d vs %d",
						por.States, full.States, por.Trans, full.Trans)
				}
			} else if por.States >= full.States {
				t.Errorf("POR does not reduce states: %d >= %d", por.States, full.States)
			}

			// The parallel NoPOR search visits exactly the sequential
			// state set; the parallel POR search stays within it.
			fullJ := mcCheck(t, l, cand, mc.Options{NoPOR: true, Parallelism: jN})
			porJ := mcCheck(t, l, cand, mc.Options{Parallelism: jN})
			if !fullJ.OK || !porJ.OK {
				t.Fatalf("parallel verdict flips: NoPOR OK=%v POR OK=%v", fullJ.OK, porJ.OK)
			}
			if fullJ.States != full.States {
				t.Errorf("parallel NoPOR states %d != sequential %d", fullJ.States, full.States)
			}
			if porJ.States > full.States {
				t.Errorf("parallel POR states %d > unreduced %d", porJ.States, full.States)
			}

			// POR composes with disabling local fusion.
			fullNF := mcCheck(t, l, cand, mc.Options{NoPOR: true, NoLocalFusion: true})
			porNF := mcCheck(t, l, cand, mc.Options{NoLocalFusion: true})
			if !fullNF.OK || !porNF.OK {
				t.Fatalf("NoLocalFusion verdict flips: NoPOR OK=%v POR OK=%v", fullNF.OK, porNF.OK)
			}
			t.Logf("states (NoLocalFusion): NoPOR=%d POR=%d", fullNF.States, porNF.States)
			if porNF.States >= fullNF.States {
				t.Errorf("POR does not reduce unfused states: %d >= %d", porNF.States, fullNF.States)
			}
		})
	}
}
