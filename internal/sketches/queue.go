package sketches

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
)

// The lock-free FIFO queue of §2: PrevHead/Tail pointers, an atomic
// swap primitive, and `taken` flags instead of physical removal.
//
// Values are tagged producer*4+seq so the epilogue can check the
// paper's correctness conditions: sequential consistency (per-producer
// FIFO through the list structure, whose order is the swap order) and
// structural integrity (reachability, tail.next == null, no cycles — a
// cycle trips the walk's termination bound —, prevHead.taken == 1, no
// untaken node before a taken one), plus memory safety and
// every-dequeued-value-was-enqueued-and-taken accounting.

const queueStructs = `
struct QueueEntry {
	QueueEntry next = null;
	int stored;
	int taken = 0;
}

QueueEntry head0;
QueueEntry prevHead;
QueueEntry tail;
`

// enqueueRestricted is queueE1's Enqueue: the same shape as Figure 2
// with two small choices left open (|C| = 4).
const enqueueRestricted = `
void Enqueue(int v) {
	QueueEntry tmp = null;
	QueueEntry newEntry = new QueueEntry(v);
	tmp = AtomicSwap({| tail | tail.next |}, newEntry);
	{| tmp | newEntry |}.next = newEntry;
}
`

// enqueueFull is the Figure 1 sketch verbatim (|C| = 1,975,680).
const enqueueFull = `
#define aLocation {| tail(.next)? | (tmp|newEntry).next |}
#define aValue {| (tail|tmp|newEntry)(.next)? | null |}
#define anExpr(x,y) {| x==y | x!=y | false |}

void Enqueue(int v) {
	QueueEntry tmp = null;
	QueueEntry newEntry = new QueueEntry(v);
	reorder {
		aLocation = aValue;
		tmp = AtomicSwap(aLocation, aValue);
		if (anExpr(tmp, aValue)) { aLocation = aValue; }
	}
}
`

// dequeueFixed is the resolved concurrent Dequeue (Figure 4, made
// null-safe), used by the queueE* benchmarks where only Enqueue is
// sketched.
const dequeueFixed = `
int Dequeue() {
	QueueEntry nextEntry = prevHead.next;
	while (nextEntry != null && AtomicSwap(nextEntry.taken, 1) == 1) {
		nextEntry = nextEntry.next;
	}
	if (nextEntry == null) { return 0 - 1; }
	QueueEntry p = prevHead;
	while (p.next != null && p.next.taken == 1) {
		prevHead = p.next;
		p = p.next;
	}
	return nextEntry.stored;
}
`

// dequeueSketched is the single-while-loop Dequeue sketch of §8.2.1
// (reorder of 4 statements × a 3-way × a 4-way generator = 288
// candidates).
const dequeueSketched = `
int Dequeue() {
	QueueEntry tmp = null;
	int taken = 1;
	while (taken == 1) {
		reorder {
			tmp = {| prevHead(.next)?(.next)? |};
			if (tmp == null) { return 0 - 1; }
			prevHead = {| (tmp|prevHead)(.next)? |};
			if (tmp.taken == 0) { taken = AtomicSwap(tmp.taken, 1); }
		}
	}
	return tmp.stored;
}
`

// queueSource builds the complete benchmark program for a pattern.
func queueSource(enqueue, dequeue, test string) (string, error) {
	p, err := parsePattern(test)
	if err != nil {
		return "", err
	}
	totalEnq := p.count('e')
	totalDeq := p.count('d')
	nThreads := len(p.threads)
	mainProducer := nThreads // producer tag for prologue+epilogue ops

	var b strings.Builder
	b.WriteString(queueStructs)
	if totalDeq > 0 {
		fmt.Fprintf(&b, "int[%d] results;\n", totalDeq)
	}
	fmt.Fprintf(&b, "bool[%d] takenv;\n", (mainProducer+1)*4)
	b.WriteString(enqueue)
	b.WriteString(dequeue)

	b.WriteString("\nharness void Main() {\n")
	b.WriteString("\thead0 = new QueueEntry(0);\n")
	b.WriteString("\thead0.taken = 1;\n")
	b.WriteString("\tprevHead = head0;\n")
	b.WriteString("\ttail = head0;\n")

	// Sequential prefixes are deterministic, so their dequeues must
	// return the exact FIFO value.
	deqSlot := 0
	seq := map[int]int{} // producer -> next sequence number
	var fifo []int       // values currently in the queue (for the deterministic prefix)
	emitSeqOp := func(op byte, producer int) {
		switch op {
		case 'e':
			v := producer*4 + seq[producer]
			seq[producer]++
			fifo = append(fifo, v)
			fmt.Fprintf(&b, "\tEnqueue(%d);\n", v)
		case 'd':
			fmt.Fprintf(&b, "\tresults[%d] = Dequeue();\n", deqSlot)
			if len(fifo) > 0 {
				fmt.Fprintf(&b, "\tassert results[%d] == %d;\n", deqSlot, fifo[0])
				fifo = fifo[1:]
			} else {
				fmt.Fprintf(&b, "\tassert results[%d] == 0 - 1;\n", deqSlot)
			}
			deqSlot++
		}
	}
	for _, op := range []byte(p.pro) {
		emitSeqOp(op, mainProducer)
	}

	// Fork phase: each thread runs its own op string; the fork index
	// condition folds to a constant per thread.
	fmt.Fprintf(&b, "\tfork (t; %d) {\n", nThreads)
	for ti, ops := range p.threads {
		fmt.Fprintf(&b, "\t\tif (t == %d) {\n", ti)
		tseq := 0
		for _, op := range []byte(ops) {
			switch op {
			case 'e':
				fmt.Fprintf(&b, "\t\t\tEnqueue(%d);\n", ti*4+tseq)
				tseq++
			case 'd':
				fmt.Fprintf(&b, "\t\t\tresults[%d] = Dequeue();\n", deqSlot)
				deqSlot++
			default:
				fmt.Fprintf(&b, "\t\t\t/* bad op %c */\n", op)
			}
		}
		b.WriteString("\t\t}\n")
	}
	b.WriteString("\t}\n")

	// Epilogue ops: the queue content is no longer deterministic, but
	// with at least as many prior enqueues as total dequeues each
	// epilogue dequeue must succeed.
	enqSoFar := totalEnq
	deqBeforeEpi := deqSlot
	for _, op := range []byte(p.epi) {
		if op == 'e' {
			v := mainProducer*4 + seq[mainProducer]
			seq[mainProducer]++
			fmt.Fprintf(&b, "\tEnqueue(%d);\n", v)
			continue
		}
		fmt.Fprintf(&b, "\tresults[%d] = Dequeue();\n", deqSlot)
		if enqSoFar-deqBeforeEpi > deqSlot-deqBeforeEpi {
			fmt.Fprintf(&b, "\tassert results[%d] != 0 - 1;\n", deqSlot)
		}
		deqSlot++
	}

	// ---- correctness epilogue (see package comment) ----
	b.WriteString("\tQueueEntry n = head0;\n")
	b.WriteString("\tint cnt = 0;\n")
	b.WriteString("\tint tcnt = 0;\n")
	b.WriteString("\tint untakenSeen = 0;\n")
	b.WriteString("\tint prevSeen = 0;\n")
	b.WriteString("\tif (prevHead == head0) { prevSeen = 1; }\n")
	for pr := 0; pr <= mainProducer; pr++ {
		fmt.Fprintf(&b, "\tint last%d = 0 - 1;\n", pr)
	}
	b.WriteString("\twhile (n.next != null) {\n")
	b.WriteString("\t\tn = n.next;\n")
	b.WriteString("\t\tcnt = cnt + 1;\n")
	b.WriteString("\t\tint v = n.stored;\n")
	b.WriteString("\t\tint pp = v / 4;\n")
	b.WriteString("\t\tint kk = v - pp * 4;\n")
	for pr := 0; pr <= mainProducer; pr++ {
		fmt.Fprintf(&b, "\t\tif (pp == %d) { assert kk > last%d; last%d = kk; }\n", pr, pr, pr)
	}
	b.WriteString("\t\tif (n.taken == 0) { untakenSeen = 1; }\n")
	b.WriteString("\t\tif (n.taken == 1) { assert untakenSeen == 0; tcnt = tcnt + 1; takenv[v] = true; }\n")
	b.WriteString("\t\tif (n == prevHead) { prevSeen = 1; }\n")
	b.WriteString("\t}\n")
	fmt.Fprintf(&b, "\tassert cnt == %d;\n", totalEnq)
	b.WriteString("\tassert tail == n;\n")
	b.WriteString("\tassert prevSeen == 1;\n")
	b.WriteString("\tassert prevHead.taken == 1;\n")
	// Completeness: each producer's values all present.
	perProducer := map[int]int{}
	for ti, ops := range p.threads {
		perProducer[ti] = strings.Count(ops, "e")
	}
	perProducer[mainProducer] = seq[mainProducer]
	for pr := 0; pr <= mainProducer; pr++ {
		fmt.Fprintf(&b, "\tassert last%d == %d;\n", pr, perProducer[pr]-1)
	}
	// Dequeue accounting: successful results are distinct taken values.
	if totalDeq > 0 {
		b.WriteString("\tint succ = 0;\n")
		for j := 0; j < totalDeq; j++ {
			fmt.Fprintf(&b, "\tif (results[%d] != 0 - 1) { succ = succ + 1; assert takenv[results[%d]] == true; }\n", j, j)
		}
		b.WriteString("\tassert tcnt == succ;\n")
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func queueOpts(test string) desugar.Options {
	p, err := parsePattern(test)
	if err != nil {
		return desugar.Options{}
	}
	// The epilogue walk and the dequeue scans visit at most
	// totalEnq+1 nodes.
	return desugar.Options{
		IntWidth:  6,
		LoopBound: p.count('e') + 2,
	}
}

var queueTests = []string{"ed(ee|dd)", "ed(ed|ed)", "(e|e|e)ddd"}

// QueueE1 is Table 1's queueE1: the restricted Enqueue sketch, |C|=4.
func QueueE1() *Benchmark {
	return &Benchmark{
		Name: "queueE1",
		Source: func(test string) (string, error) {
			return queueSource(enqueueRestricted, dequeueFixed, test)
		},
		Opts:       queueOpts,
		Tests:      queueTests,
		Resolvable: map[string]bool{"ed(ee|dd)": true, "ed(ed|ed)": true, "(e|e|e)ddd": true},
		PaperC:     0.6, // |C| = 4
	}
}

// QueueE2 is Table 1's queueE2: the full Figure 1 Enqueue, |C|≈2·10⁶.
func QueueE2() *Benchmark {
	return &Benchmark{
		Name: "queueE2",
		Source: func(test string) (string, error) {
			return queueSource(enqueueFull, dequeueFixed, test)
		},
		Opts:       queueOpts,
		Tests:      []string{"ed(ed|ed)", "(e|e|e)ddd"},
		Resolvable: map[string]bool{"ed(ed|ed)": true, "(e|e|e)ddd": true},
		PaperC:     6,
	}
}

// QueueDE1 is queueE1 plus the sketched Dequeue (|C|≈10³).
func QueueDE1() *Benchmark {
	return &Benchmark{
		Name: "queueDE1",
		Source: func(test string) (string, error) {
			return queueSource(enqueueRestricted, dequeueSketched, test)
		},
		Opts:       queueOpts,
		Tests:      []string{"ed(ee|dd)", "ed(ed|ed)"},
		Resolvable: map[string]bool{"ed(ee|dd)": true, "ed(ed|ed)": true},
		PaperC:     3,
	}
}

// QueueDE2 is queueE2 plus the sketched Dequeue (|C|≈10⁸).
func QueueDE2() *Benchmark {
	return &Benchmark{
		Name: "queueDE2",
		Source: func(test string) (string, error) {
			return queueSource(enqueueFull, dequeueSketched, test)
		},
		Opts:       queueOpts,
		Tests:      []string{"ed(ed|ed)"},
		Resolvable: map[string]bool{"ed(ed|ed)": true},
		PaperC:     8,
	}
}
