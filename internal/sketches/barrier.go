package sketches

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
)

// The sense-reversing barrier of §8.2.2: a global sense, per-thread
// local senses, and a count of threads yet to arrive. The next() method
// is sketched as a soup of operations in a reorder block; the paper's
// correctness client has N threads pass B barrier points, setting
// reached[t][b] before waiting and asserting the left neighbour's flag
// after (plus the implicit deadlock check).
//
// Tests are "N=<threads>,B=<rounds>".

// barrierSource builds the barrier program for n threads and rounds b.
// full selects the barrier2 sketch; otherwise the reduced barrier1.
func barrierSource(n, b int, full bool) string {
	var s strings.Builder
	fmt.Fprintf(&s, "bool sense = false;\n")
	fmt.Fprintf(&s, "bool[%d] senses;\n", n)
	fmt.Fprintf(&s, "int count = %d;\n", n)
	fmt.Fprintf(&s, "bool[%d] reached;\n", n*b)

	if full {
		// The paper's predicate generator, minus nothing: a boolean
		// expression of two ints and two bools, optionally negated.
		s.WriteString(`
generator bool predicate(int a, int b, bool c, bool d) {
	return {| (!)? (a == b | (a|b) == ??(1) | c | d) |};
}

void next(int th) {
	bool s = senses[th];
	s = predicate(0, 0, s, s);
	int cv = 0;
	bool tmp = false;
	reorder {
		senses[th] = s;
		cv = AtomicReadAndDecr(count);
		tmp = predicate(count, cv, s, tmp);
		if (tmp) {
			reorder {
				count = NTHREADS;
				sense = predicate(count, cv, s, s);
			}
		}
		tmp = predicate(count, cv, s, tmp);
		if (tmp) {
			bool t = predicate(0, 0, s, s);
			atomic (sense == t);
		}
	}
}
`)
	} else {
		// barrier1: the sense flip and flag update are fixed; the
		// wake-up/wait logic is the sketched soup.
		s.WriteString(`
generator bool predicate(int a, int b, bool c, bool d) {
	return {| (!)? (b == ??(1) | c | d) |};
}

void next(int th) {
	bool s = senses[th];
	s = !s;
	senses[th] = s;
	int cv = 0;
	reorder {
		cv = AtomicReadAndDecr(count);
		if (predicate(count, cv, s, s)) {
			count = NTHREADS;
			sense = s;
		}
		if (predicate(count, cv, s, s)) {
			bool t = predicate(0, 0, s, s);
			atomic (sense == t);
		}
	}
}
`)
	}

	s.WriteString("\nharness void Main() {\n")
	fmt.Fprintf(&s, "\tfork (t; %d) {\n", n)
	s.WriteString("\t\tint b = 0;\n")
	fmt.Fprintf(&s, "\t\twhile (b < %d) {\n", b)
	fmt.Fprintf(&s, "\t\t\treached[t * %d + b] = true;\n", b)
	s.WriteString("\t\t\tnext(t);\n")
	fmt.Fprintf(&s, "\t\t\tassert reached[((t + %d) %% %d) * %d + b] == true;\n", n-1, n, b)
	s.WriteString("\t\t\tb = b + 1;\n")
	s.WriteString("\t\t}\n")
	s.WriteString("\t}\n")
	fmt.Fprintf(&s, "\tassert count == %d;\n", n)
	s.WriteString("}\n")

	out := s.String()
	return strings.ReplaceAll(out, "NTHREADS", fmt.Sprintf("%d", n))
}

// parseNB parses "N=3,B=2".
func parseNB(test string) (n, b int, err error) {
	_, err = fmt.Sscanf(test, "N=%d,B=%d", &n, &b)
	return n, b, err
}

func barrierBench(name string, full bool, tests []string) *Benchmark {
	res := map[string]bool{}
	for _, t := range tests {
		res[t] = true
	}
	return &Benchmark{
		Name: name,
		Source: func(test string) (string, error) {
			n, b, err := parseNB(test)
			if err != nil {
				return "", err
			}
			return barrierSource(n, b, full), nil
		},
		Opts: func(test string) desugar.Options {
			_, b, err := parseNB(test)
			if err != nil {
				b = 3
			}
			return desugar.Options{IntWidth: 5, LoopBound: b + 1}
		},
		Tests:      tests,
		Resolvable: res,
		PaperC: func() float64 {
			if full {
				return 7
			}
			return 4
		}(),
	}
}

// Barrier1 is the reduced sense-reversing barrier sketch.
func Barrier1() *Benchmark {
	return barrierBench("barrier1", false, []string{"N=3,B=2", "N=3,B=3"})
}

// Barrier2 is the full §8.2.2 sketch.
func Barrier2() *Benchmark {
	return barrierBench("barrier2", true, []string{"N=2,B=3"})
}
