package sketches

import (
	"strings"
	"testing"

	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/parser"
	"psketch/internal/printer"
	"psketch/internal/state"
)

func compile(t *testing.T, b *Benchmark, test string) *desugar.Sketch {
	t.Helper()
	src, err := b.Source(test)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	sk, err := desugar.Desugar(prog, "Main", b.Opts(test))
	if err != nil {
		t.Fatalf("desugar: %v", err)
	}
	return sk
}

func synth(t *testing.T, b *Benchmark, test string, verbose bool) (*core.Result, *desugar.Sketch) {
	t.Helper()
	sk := compile(t, b, test)
	opts := core.Options{}
	if b.Name == "dinphilo" && strings.HasPrefix(test, "N=5") {
		// Like the paper's 746-second SPIN run, this row needs a much
		// larger verifier budget.
		opts.MCMaxStates = 60_000_000
	}
	if verbose {
		opts.Verbose = t.Logf
	}
	syn, err := core.New(sk, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	return res, sk
}

func TestQueueE1Count(t *testing.T) {
	sk := compile(t, QueueE1(), "ed(ed|ed)")
	if sk.Count.Int64() != 4 {
		t.Fatalf("|C| = %s, want 4", sk.Count)
	}
}

// The Figure 1 Enqueue sketch must count exactly 1,975,680 candidates
// per §2 (times the fixed Dequeue's 1).
func TestQueueE2Count(t *testing.T) {
	sk := compile(t, QueueE2(), "ed(ed|ed)")
	if sk.Count.Int64() != 1975680 {
		t.Fatalf("|C| = %s, want 1975680", sk.Count)
	}
}

func TestQueueE1Synthesize(t *testing.T) {
	res, sk := synth(t, QueueE1(), "ed(ed|ed)", true)
	if !res.Resolved {
		t.Fatal("queueE1 should resolve")
	}
	code, err := printer.Resolve(sk, res.Candidate, "Enqueue")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resolved Enqueue:\n%s", code)
	t.Logf("iterations=%d states=%d total=%v", res.Stats.Iterations, res.Stats.MCStates, res.Stats.Total)
}

// Exactly one of queueE1's four candidates may pass the verifier: the
// Figure 2 implementation. This checks the harness is strong enough to
// refute the other three.
func TestQueueE1HarnessStrength(t *testing.T) {
	sk := compile(t, QueueE1(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for c0 := int64(0); c0 < 2; c0++ {
		for c1 := int64(0); c1 < 2; c1++ {
			res, err := mc.Check(layout, desugar.Candidate{c0, c1}, mc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("candidate [%d %d]: ok=%v states=%d", c0, c1, res.OK, res.States)
			if res.OK {
				okCount++
				if c0 != 0 || c1 != 0 {
					t.Errorf("wrong candidate [%d %d] passed", c0, c1)
				}
			}
		}
	}
	if okCount != 1 {
		t.Fatalf("%d candidates passed, want 1", okCount)
	}
}

func TestQueueE2Synthesize(t *testing.T) {
	if testing.Short() {
		t.Skip("long synthesis run")
	}
	res, sk := synth(t, QueueE2(), "ed(ed|ed)", true)
	if !res.Resolved {
		t.Fatal("queueE2 should resolve")
	}
	code, err := printer.Resolve(sk, res.Candidate, "Enqueue")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resolved Enqueue:\n%s", code)
	t.Logf("iterations=%d states=%d total=%v", res.Stats.Iterations, res.Stats.MCStates, res.Stats.Total)
}
