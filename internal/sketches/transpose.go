package sketches

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
)

// The §3 sequential SKETCH example: a 4×4 matrix transpose implemented
// with the SIMD semi-permute instruction shufps, written as
//
//	repeat (??) S[??::4] = shufps(M[??::4], M[??::4], ??);
//	repeat (??) T[??::4] = shufps(S[??::4], S[??::4], ??);
//
// against the loop-nest specification. The 2×2 variant scales the same
// sketch down for fast tests.

// TransposeSource builds the sketch for an n×n transpose (n = 2 or 4).
func TransposeSource(n int) string {
	cells := n * n
	ibits := 1
	for (1 << ibits) < n {
		ibits++
	}
	selBits := n * ibits // shuf control: one lane index per output cell

	var b strings.Builder
	fmt.Fprintf(&b, "int[%d] trans(int[%d] M) {\n", cells, cells)
	fmt.Fprintf(&b, "\tint[%d] T = 0;\n", cells)
	fmt.Fprintf(&b, "\tint i = 0;\n\twhile (i < %d) {\n\t\tint j = 0;\n\t\twhile (j < %d) {\n", n, n)
	fmt.Fprintf(&b, "\t\t\tT[%d * i + j] = M[%d * j + i];\n", n, n)
	b.WriteString("\t\t\tj = j + 1;\n\t\t}\n\t\ti = i + 1;\n\t}\n\treturn T;\n}\n\n")

	fmt.Fprintf(&b, "int[%d] shuf(int[%d] x1, int[%d] x2, bit[%d] b) {\n", n, n, n, selBits)
	fmt.Fprintf(&b, "\tint[%d] s = 0;\n", n)
	for i := 0; i < n; i++ {
		src := "x1"
		if i >= n/2 {
			src = "x2"
		}
		fmt.Fprintf(&b, "\ts[%d] = %s[(int) b[%d::%d]];\n", i, src, i*ibits, ibits)
	}
	b.WriteString("\treturn s;\n}\n\n")

	fmt.Fprintf(&b, "int[%d] trans_sse(int[%d] M) implements trans {\n", cells, cells)
	fmt.Fprintf(&b, "\tint[%d] S = 0;\n\tint[%d] T = 0;\n", cells, cells)
	fmt.Fprintf(&b, "\trepeat (??) S[??::%d] = shuf(M[??::%d], M[??::%d], ??);\n", n, n, n)
	fmt.Fprintf(&b, "\trepeat (??) T[??::%d] = shuf(S[??::%d], S[??::%d], ??);\n", n, n, n)
	b.WriteString("\treturn T;\n}\n")
	return b.String()
}

// TransposeOpts returns suitable bounded-machine options for an n×n
// transpose sketch.
func TransposeOpts(n int) desugar.Options {
	holeW := 1
	for (1 << holeW) < n*n {
		holeW++
	}
	return desugar.Options{
		IntWidth:  4, // matrix values; equality only
		HoleWidth: holeW,
		LoopBound: n + 1,
		MaxRepeat: n,
	}
}
