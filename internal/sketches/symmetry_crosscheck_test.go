package sketches

import (
	"testing"

	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/oracle"
)

// This file cross-checks the orbit reduction and the compressed visited
// sets against the unreduced search and the naive reference checker,
// sketch by sketch: verdicts must be identical, and every
// counterexample found under a reduction must replay to the same
// failure on a concrete interpreter.

// TestSymmetryCrossCheckAllSketches sweeps every benchmark through the
// symmetry × compression configuration space with the zero candidate
// and demands one verdict, replaying each counterexample. The naive
// reference checker (which applies no reduction beyond normalization)
// must agree on that verdict too.
func TestSymmetryCrossCheckAllSketches(t *testing.T) {
	for _, b := range All() {
		b := b
		test := b.Tests[0]
		t.Run(b.Name+"/"+test, func(t *testing.T) {
			sk := compile(t, b, test)
			l := lowerBench(t, b, test)
			cand := make(desugar.Candidate, len(sk.Holes))
			v, err := oracle.CheckExhaustive(l, cand, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range []mc.Options{
				{NoSymmetry: true},
				{},
				{Compress: "collapse"},
				{Compress: "bitstate"},
				{Parallelism: 4},
			} {
				res := mcCheck(t, l, cand, o)
				if res.OK != v.OK {
					t.Fatalf("%+v verdict %v, oracle %v", o, res.OK, v.OK)
				}
				if !res.OK {
					replayTrace(t, l, cand, res.Trace)
				}
			}
		})
	}
}

// TestSymmetryStateReduction checks the acceptance bar for the orbit
// reduction on a genuinely symmetric candidate. The dining-philosophers
// winner is asymmetric (its policy breaks the ring on one philosopher),
// so ir.Symmetry correctly reports no classes for it; forcing every
// policy generator to its `true` arm instead yields a rotation-
// symmetric — and deadlocking — candidate. The reduced search must
// reach the same verdict on strictly fewer states, and its
// counterexample must replay concretely.
func TestSymmetryStateReduction(t *testing.T) {
	b, test := DinPhilo(), "N=3,T=5"
	res, sk := synth(t, b, test, false)
	if !res.Resolved {
		t.Fatalf("%s %s did not resolve", b.Name, test)
	}
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	if cls := ir.Symmetry(prog, res.Candidate); len(cls) != 0 {
		t.Fatalf("winning candidate should be asymmetric, got %d classes", len(cls))
	}
	cand := append(res.Candidate[:0:0], res.Candidate...)
	for _, h := range sk.Holes {
		if h.Kind == desugar.HoleChoice && len(h.Label) > 2 && h.Label[:3] == "{|(" {
			cand[h.ID] = int64(h.Choices - 1)
		}
	}
	if cls := ir.Symmetry(prog, cand); len(cls) != 1 {
		t.Fatalf("forced candidate should form one ring class, got %d", len(cls))
	}

	// The forced candidate deadlocks, and a failing search stops at its
	// first counterexample — a huge trace budget forces both searches to
	// sweep the whole graph so the state counts are comparable.
	sweep := 1 << 20
	l := lowerBench(t, b, test)
	full := mcCheck(t, l, cand, mc.Options{NoSymmetry: true, MaxTraces: sweep})
	sym := mcCheck(t, l, cand, mc.Options{MaxTraces: sweep})
	if sym.OK != full.OK {
		t.Fatalf("orbit reduction changed the verdict: sym=%v full=%v", sym.OK, full.OK)
	}
	if sym.SymClasses != 1 {
		t.Fatalf("expected 1 symmetry class in the run, got %d", sym.SymClasses)
	}
	t.Logf("states: NoSymmetry=%d sym=%d (%.1f%%), orbit hits=%d",
		full.States, sym.States, 100*float64(sym.States)/float64(full.States), sym.OrbitHits)
	if sym.States >= full.States {
		t.Errorf("orbit reduction does not reduce states: %d >= %d", sym.States, full.States)
	}
	if sym.OrbitHits == 0 {
		t.Error("orbit reduction reported no orbit hits on a symmetric sweep")
	}
	for _, tr := range sym.Traces {
		replayTrace(t, l, cand, tr)
	}

	// The reduction must also compose with collapse compression, which
	// is exact: same verdict on exactly the same canonical states.
	col := mcCheck(t, l, cand, mc.Options{Compress: "collapse", MaxTraces: sweep})
	if col.OK != full.OK || col.States != sym.States {
		t.Fatalf("collapse over orbits: OK=%v states=%d, want OK=%v states=%d",
			col.OK, col.States, full.OK, sym.States)
	}
}
