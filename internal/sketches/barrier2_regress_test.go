package sketches

import (
	"testing"

	"psketch/internal/ast"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/state"
	"psketch/internal/types"
)

// TestBarrier2HoleStructure dumps the hole structure and generator choices
// of the full barrier sketch so the intended solution can be encoded by
// hand.
func TestBarrier2HoleStructure(t *testing.T) {
	sk := compile(t, Barrier2(), "N=2,B=2")
	regens := map[int]*ast.Regen{}
	ast.WalkExprs(sk.Harness.Body, func(e ast.Expr) {
		if r, ok := e.(*ast.Regen); ok {
			if _, dup := regens[r.ID]; !dup {
				regens[r.ID] = r
			}
		}
	})
	for _, h := range sk.Holes {
		t.Logf("hole %d: kind=%d bits=%d choices=%d %s", h.ID, h.Kind, h.Bits, h.Choices, h.Label)
		if r, ok := regens[h.ID]; ok {
			for i, c := range r.Choices {
				t.Logf("   [%d] %s", i, types.ExprString(c))
			}
		}
	}
	for _, c := range sk.Constraints {
		t.Logf("constraint: %s", types.ExprString(c))
	}
}

// TestBarrier2ManualCandidate model checks a hand-built intended solution.
func TestBarrier2ManualCandidate(t *testing.T) {
	sk := compile(t, Barrier2(), "N=2,B=2")
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	cand := make(desugar.Candidate, len(sk.Holes))
	copy(cand, manualBarrier2)
	res, err := mc.Check(layout, cand, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("manual candidate fails: %s", res.Trace)
	}
	t.Logf("manual candidate verified, %d states", res.States)
}

// manualBarrier2 encodes the textbook sense-reversing barrier in the
// barrier2 sketch's hole space (found by TestBarrier2TextbookSolutionInSpace):
// s = !s; tmp = (cv == 1); wake: {count = N; sense = s}; tmp = !tmp;
// wait: atomic(sense == s); with the insertion-encoded order
// senses-update, decrement, test, wake, retest, wait.
var manualBarrier2 = desugar.Candidate{0, 0, 0, 0, 0, 8, 0, 0, 0, 0, 2, 0, 1, 0, 0, 3, 0, 0, 0, 0, 9, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 1, 0, 4, 0, 0}
