package sketches

import (
	"testing"

	"psketch/internal/circuit"
	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/printer"
	"psketch/internal/project"
	"psketch/internal/state"
	"psketch/internal/sym"
)

func runBench(t *testing.T, b *Benchmark, test string, wantResolved bool, show ...string) {
	t.Helper()
	res, sk := synth(t, b, test, true)
	if res.Resolved != wantResolved {
		t.Fatalf("%s %s: resolved=%v, want %v", b.Name, test, res.Resolved, wantResolved)
	}
	for _, fn := range show {
		code, err := printer.Resolve(sk, res.Candidate, fn)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("resolved %s:\n%s", fn, code)
	}
	t.Logf("%s %s: iters=%d states=%d Ssolve=%v Smodel=%v Vsolve=%v total=%v",
		b.Name, test, res.Stats.Iterations, res.Stats.MCStates,
		res.Stats.SSolve, res.Stats.SModel, res.Stats.VSolve, res.Stats.Total)
}

func TestDinPhiloN3T2(t *testing.T) {
	b := DinPhilo()
	runBench(t, b, "N=3,T=2", true, "phil")
}

func TestBarrier1N2B2(t *testing.T) {
	runBench(t, Barrier1(), "N=2,B=2", true, "next")
}

func TestFineSet1Small(t *testing.T) {
	runBench(t, FineSet1(), "a(a|r)", true, "find")
}

func TestLazySetAARR(t *testing.T) {
	runBench(t, LazySet(), "ar(aa|rr)", true, "rem")
}

func TestLazySetARAR(t *testing.T) {
	runBench(t, LazySet(), "ar(ar|ar)", false)
}

// The lazyset NO verdict must be sound: exhaustively model check every
// candidate in the space and confirm none passes. This also
// cross-checks that the trace projections never eliminated a correct
// candidate.
func TestLazySetARARExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	sk := compile(t, LazySet(), "ar(ar|ar)")
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	dims := make([]int64, len(sk.Holes))
	for i, h := range sk.Holes {
		if h.Kind == desugar.HoleChoice {
			dims[i] = int64(h.Choices)
		} else {
			dims[i] = 1 << uint(h.Bits)
		}
	}
	cand := make(desugar.Candidate, len(dims))
	total, passed := 0, 0
	var rec func(i int)
	rec = func(i int) {
		if passed > 0 {
			return
		}
		if i == len(dims) {
			total++
			res, err := mc.Check(layout, cand, mc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.OK {
				passed++
				t.Errorf("candidate %v passes but CEGIS said NO", cand)
			}
			return
		}
		for v := int64(0); v < dims[i]; v++ {
			cand[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	t.Logf("exhaustively refuted %d candidates", total)
}

// TestPaperGrid runs the full Figure 9 test grid (long).
func TestPaperGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 9 grid")
	}
	for _, b := range All() {
		for _, test := range b.Tests {
			b, test := b, test
			t.Run(b.Name+"/"+test, func(t *testing.T) {
				res, _ := synth(t, b, test, false)
				want := b.Resolvable[test]
				if res.Resolved != want {
					t.Errorf("resolved=%v want %v", res.Resolved, want)
				}
				t.Logf("%s %s: resolved=%v iters=%d states=%d total=%v",
					b.Name, test, res.Resolved, res.Stats.Iterations, res.Stats.MCStates, res.Stats.Total)
			})
		}
	}
}

// N=5 dining philosophers needs a larger verifier budget, like the
// paper's 746-second SPIN run for the same test.
func TestDinPhiloN5(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	sk := compile(t, DinPhilo(), "N=5,T=3")
	syn, err := core.New(sk, core.Options{MCMaxStates: 60_000_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("dinphilo N=5,T=3 should resolve")
	}
	t.Logf("iters=%d states=%d total=%v", res.Stats.Iterations, res.Stats.MCStates, res.Stats.Total)
}

func TestQueueDE2(t *testing.T) {
	if testing.Short() {
		t.Skip("10^8 candidate space")
	}
	res, sk := synth(t, QueueDE2(), "ed(ed|ed)", false)
	if !res.Resolved {
		t.Fatal("queueDE2 should resolve")
	}
	code, _ := printer.Resolve(sk, res.Candidate, "Dequeue")
	t.Logf("resolved Dequeue:\n%s", code)
	t.Logf("iters=%d states=%d total=%v", res.Stats.Iterations, res.Stats.MCStates, res.Stats.Total)
}

func TestFineSet2Grid(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res, sk := synth(t, FineSet2(), "ar(ar|ar)", false)
	if !res.Resolved {
		t.Fatal("fineset2 should resolve")
	}
	code, _ := printer.Resolve(sk, res.Candidate, "find")
	t.Logf("resolved find:\n%s", code)
	t.Logf("iters=%d total=%v", res.Stats.Iterations, res.Stats.Total)
}

// The lock-free stack extension (§4.1's CAS idiom): the sketched Push
// must resolve to link-then-CAS(top, old, n).
func TestTreiberSynthesize(t *testing.T) {
	res, sk := synth(t, Treiber(), "ed(ed|ed)", true)
	if !res.Resolved {
		t.Fatal("treiber should resolve")
	}
	code, err := printer.Resolve(sk, res.Candidate, "Push")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resolved Push:\n%s", code)
	t.Logf("iters=%d states=%d total=%v", res.Stats.Iterations, res.Stats.MCStates, res.Stats.Total)
}

// Soundness of trace projection across a whole space: project every
// failing queueE1 candidate's counterexample and check that the
// verified candidate ([0 0], the Figure 2 implementation) survives
// every constraint, while each failing candidate is refuted by its own.
func TestProjectionSoundnessQueueE1(t *testing.T) {
	sk := compile(t, QueueE1(), "ed(ed|ed)")
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	b := circuit.NewBuilder()
	holes := sym.HoleInputs(b, sk)
	assign := func(c desugar.Candidate) map[circuit.Lit]bool {
		m := map[circuit.Lit]bool{}
		for i, w := range holes {
			for j, lit := range w {
				m[lit] = (c.Value(i)>>uint(j))&1 == 1
			}
		}
		return m
	}
	good := desugar.Candidate{0, 0}
	for c0 := int64(0); c0 < 2; c0++ {
		for c1 := int64(0); c1 < 2; c1++ {
			cand := desugar.Candidate{c0, c1}
			res, err := mc.Check(layout, cand, mc.Options{MaxTraces: 4})
			if err != nil {
				t.Fatal(err)
			}
			if res.OK {
				continue
			}
			for _, tr := range res.Traces {
				fail, err := project.Encode(b, layout, holes, project.Build(prog, tr))
				if err != nil {
					t.Fatal(err)
				}
				if !b.Eval(assign(cand), fail) {
					t.Errorf("candidate %v not refuted by its own trace", cand)
				}
				if b.Eval(assign(good), fail) {
					t.Errorf("projection of %v's trace wrongly eliminates the verified candidate", cand)
				}
			}
		}
	}
}

// The full lazy list (both ops' locks sketched): the concurrent ar|ar
// workload must be resolvable with two locks — the contrast to the
// single-lock NO. Uses multi-trace learning to keep the run short.
func TestLazyFullARAR(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sk := compile(t, LazyFull(), "(ar|ar)")
	syn, err := core.New(sk, core.Options{TracesPerIteration: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("two-lock remove must be synthesizable for (ar|ar)")
	}
	code, err := printer.Resolve(sk, res.Candidate, "remTry")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resolved remTry:\n%s", code)
	t.Logf("iters=%d total=%v", res.Stats.Iterations, res.Stats.Total)
}

// End-to-end POR cross-check: whatever CEGIS synthesizes must also
// verify under the unreduced model checker (no eager local steps).
func TestSynthesizedVerifiesUnreduced(t *testing.T) {
	for _, tc := range []struct {
		b    *Benchmark
		test string
	}{
		{QueueE1(), "ed(ed|ed)"},
		{Barrier1(), "N=2,B=2"},
		{Treiber(), "ed(ed|ed)"},
	} {
		res, sk := synth(t, tc.b, tc.test, false)
		if !res.Resolved {
			t.Fatalf("%s %s did not resolve", tc.b.Name, tc.test)
		}
		prog, err := ir.Lower(sk)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := state.NewLayout(prog)
		if err != nil {
			t.Fatal(err)
		}
		mres, err := mc.Check(layout, res.Candidate, mc.Options{NoLocalFusion: true})
		if err != nil {
			t.Fatal(err)
		}
		if !mres.OK {
			t.Fatalf("%s %s: synthesized candidate fails the unreduced checker: %s",
				tc.b.Name, tc.test, mres.Trace)
		}
	}
}
