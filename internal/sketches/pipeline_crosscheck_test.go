package sketches

import (
	"testing"

	"psketch/internal/core"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/state"
)

// This file cross-checks the pipelined CEGIS engine sketch by sketch:
// on every Table 1 benchmark the verdict must be identical under every
// combination of {pipeline, no pipeline} × {clause sharing, no
// sharing}, and every resolved candidate must independently model
// check. Candidates themselves may differ between configurations —
// several correct completions can exist — so the check is
// verdict + verification, not bitwise equality.

func TestPipelineCrossCheckAllSketches(t *testing.T) {
	for _, b := range All() {
		b := b
		if testing.Short() && b.Name != "queueE1" && b.Name != "barrier1" {
			continue
		}
		test := b.Tests[0]
		t.Run(b.Name+"/"+test, func(t *testing.T) {
			sk := compile(t, b, test)
			want := b.Resolvable[test]
			var layout *state.Layout
			for _, noPipe := range []bool{false, true} {
				for _, noShare := range []bool{false, true} {
					opts := core.Options{
						Parallelism: 4, NoPipeline: noPipe, NoShareClauses: noShare,
					}
					syn, err := core.New(sk, opts)
					if err != nil {
						t.Fatal(err)
					}
					res, err := syn.Synthesize()
					if err != nil {
						t.Fatal(err)
					}
					if res.Resolved != want {
						t.Fatalf("NoPipeline=%v NoShareClauses=%v: resolved=%v, want %v",
							noPipe, noShare, res.Resolved, want)
					}
					if !res.Resolved {
						continue
					}
					if layout == nil {
						prog, err := ir.Lower(sk)
						if err != nil {
							t.Fatal(err)
						}
						layout, err = state.NewLayout(prog)
						if err != nil {
							t.Fatal(err)
						}
					}
					mres, err := mc.Check(layout, res.Candidate, mc.Options{})
					if err != nil {
						t.Fatal(err)
					}
					if !mres.OK {
						t.Fatalf("NoPipeline=%v NoShareClauses=%v: resolved candidate %v fails verification: %s",
							noPipe, noShare, res.Candidate, mres.Trace)
					}
				}
			}
		})
	}
}

// The fully disabled configuration at -j 1 must reproduce the
// sequential engine's verdict and per-iteration trajectory exactly —
// the paper-comparable mode must stay bit-for-bit stable regardless of
// the new machinery.
func TestPipelineSequentialModeUnchanged(t *testing.T) {
	b := QueueE1()
	test := b.Tests[0]
	sk := compile(t, b, test)
	var ref *core.Result
	for run := 0; run < 2; run++ {
		syn, err := core.New(sk, core.Options{
			Parallelism: 1, NoPipeline: true, NoShareClauses: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := syn.Synthesize()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Resolved {
			t.Fatal("queueE1 must resolve")
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Stats.Iterations != ref.Stats.Iterations ||
			res.Stats.SATConfl != ref.Stats.SATConfl ||
			res.Stats.MCStates != ref.Stats.MCStates {
			t.Fatalf("sequential mode drifted: run %d iters=%d confl=%d states=%d vs iters=%d confl=%d states=%d",
				run, res.Stats.Iterations, res.Stats.SATConfl, res.Stats.MCStates,
				ref.Stats.Iterations, ref.Stats.SATConfl, ref.Stats.MCStates)
		}
		if res.Stats.SpecSolves != 0 || res.Stats.SATExported != 0 {
			t.Fatalf("sequential mode ran pipeline machinery: %+v", res.Stats)
		}
		for i := range ref.Candidate {
			if res.Candidate.Value(i) != ref.Candidate.Value(i) {
				t.Fatalf("sequential candidate drifted: %v vs %v", res.Candidate, ref.Candidate)
			}
		}
	}
}
