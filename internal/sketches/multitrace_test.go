package sketches

import (
	"testing"

	"psketch/internal/core"
)

// Multi-trace learning ablation: several counterexamples per verifier
// call cut the iteration count on deadlock-heavy spaces (dinphilo).
func TestDinPhiloMultiTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sk := compile(t, DinPhilo(), "N=4,T=3")
	syn, err := core.New(sk, core.Options{TracesPerIteration: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("should resolve")
	}
	t.Logf("multi-trace: iters=%d total=%v (single-trace baseline: 71 iterations)",
		res.Stats.Iterations, res.Stats.Total)
	if res.Stats.Iterations >= 71 {
		t.Errorf("multi-trace learning did not reduce iterations: %d", res.Stats.Iterations)
	}
}
