package sketches

import (
	"errors"
	"sync"
	"testing"

	"psketch"
)

var errNotResolved = errors.New("queueE1 must resolve")

// This file cross-checks the cross-request warm-state cache
// (psketch.Options.Warm, psketchd's workhorse) against cold runs: on
// Table 1 rows the verdict must be identical whether a run builds its
// encoding context from scratch or checks a warm one out of the store,
// and a warm second run must actually reuse the first run's work
// (WarmStart set, projection-prefix hits for rows that project traces).

// warmOptions maps a benchmark's desugar options onto the public API.
func warmOptions(b *Benchmark, test string) psketch.Options {
	d := b.Opts(test)
	return psketch.Options{
		IntWidth:  d.IntWidth,
		HoleWidth: d.HoleWidth,
		LoopBound: d.LoopBound,
		MaxRepeat: d.MaxRepeat,
		Encoding:  d.Encoding,
		// Deterministic sequential engine: cold and warm runs explore
		// the identical candidate sequence, so the reuse assertions
		// below are exact, not probabilistic.
		Parallelism: 1,
	}
}

func TestWarmCrossCheckVerdictParity(t *testing.T) {
	for _, b := range All() {
		b := b
		if b.Name != "queueE1" && b.Name != "barrier1" && b.Name != "lazyset" {
			continue // fast resolved rows + the definitive-NO row
		}
		if testing.Short() && b.Name == "lazyset" {
			continue
		}
		test := b.Tests[0]
		t.Run(b.Name+"/"+test, func(t *testing.T) {
			src, err := b.Source(test)
			if err != nil {
				t.Fatal(err)
			}
			target, err := psketch.DetectTarget(src)
			if err != nil {
				t.Fatal(err)
			}
			want := b.Resolvable[test]

			cold := warmOptions(b, test)
			coldRes, err := psketch.Synthesize(src, target, cold)
			if err != nil {
				t.Fatal(err)
			}
			if coldRes.Resolved != want {
				t.Fatalf("cold: resolved=%v, want %v", coldRes.Resolved, want)
			}
			if coldRes.Stats.WarmStart {
				t.Fatal("cold run reports WarmStart")
			}

			store := psketch.NewWarmStore(0, nil)
			warm := cold
			warm.Warm = store
			var prev *psketch.Result
			for run := 0; run < 2; run++ {
				res, err := psketch.Synthesize(src, target, warm)
				if err != nil {
					t.Fatal(err)
				}
				if res.Resolved != want {
					t.Fatalf("warm run %d: resolved=%v, want %v", run, res.Resolved, want)
				}
				if wantWarm := run > 0; res.Stats.WarmStart != wantWarm {
					t.Fatalf("warm run %d: WarmStart=%v, want %v", run, res.Stats.WarmStart, wantWarm)
				}
				// The deterministic engine must take the same trajectory
				// warm as cold — warm state memoizes work, it must not
				// change what is explored.
				if res.Stats.Iterations != coldRes.Stats.Iterations {
					t.Fatalf("warm run %d took %d iterations, cold took %d",
						run, res.Stats.Iterations, coldRes.Stats.Iterations)
				}
				if res.Resolved {
					for i := range coldRes.Candidate {
						if res.Candidate.Value(i) != coldRes.Candidate.Value(i) {
							t.Fatalf("warm run %d candidate drifted: %v vs cold %v",
								run, res.Candidate, coldRes.Candidate)
						}
					}
				}
				if run > 0 && prev.Stats.ProjMisses > 0 && res.Stats.ProjHits == 0 {
					// The first warm run projected traces (misses > 0 ⇒
					// encodes happened); the second run replays the same
					// traces and must hit the memoized prefixes.
					t.Fatalf("warm run %d: ProjHits=0 despite %d first-run projection encodes",
						run, prev.Stats.ProjMisses+prev.Stats.ProjHits)
				}
				prev = res
			}
			st := store.Stats()
			if st.Hits < 1 {
				t.Fatalf("store stats %+v: second identical run did not hit", st)
			}
			if st.Entries != 1 {
				t.Fatalf("store stats %+v: want exactly one idle context", st)
			}
		})
	}
}

// Many synthesizers of the same sketch sharing one store (run under
// -race): the exclusive checkout must keep every run race-clean and
// verdicts identical; losers of the Acquire race build cold.
func TestWarmConcurrentSynthesizersShareStore(t *testing.T) {
	b := QueueE1()
	test := b.Tests[0]
	src, err := b.Source(test)
	if err != nil {
		t.Fatal(err)
	}
	target, err := psketch.DetectTarget(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := warmOptions(b, test)
	opts.Warm = psketch.NewWarmStore(0, nil)

	const goroutines, rounds = 4, 2
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := psketch.Synthesize(src, target, opts)
				if err != nil {
					errs <- err
					return
				}
				if !res.Resolved {
					errs <- errNotResolved
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := opts.Warm.Stats()
	if st.Hits+st.Misses != goroutines*rounds {
		t.Fatalf("store stats %+v: want %d acquires", st, goroutines*rounds)
	}
	if st.Entries != 1 {
		t.Fatalf("store stats %+v: want one idle context for one sketch", st)
	}
}
