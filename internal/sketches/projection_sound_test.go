package sketches

import (
	"testing"

	"psketch/internal/circuit"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/project"
	"psketch/internal/state"
	"psketch/internal/sym"
)

// Projection soundness under deadlock traces: no counterexample trace
// for a wrong candidate may project to a constraint that excludes a
// known-correct one. The parallel model checker surfaces deadlock
// traces (rather than the sequential DFS's assertion failures)
// nondeterministically, which is exactly the shape that once tripped
// the encoding — a thread parked at its blocked step is not finished,
// so another thread blocking later in the projected order is not
// automatically a deadlock. Regression test for the fineset1/barrier2
// false-NO verdicts.
func TestProjectionSoundOnDeadlockTraces(t *testing.T) {
	b := FineSet1()
	test := "ar(ar|ar)"
	sk := compile(t, b, test)
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := state.NewLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The hand-over-hand locking completion (verified below).
	good := desugar.Candidate{3, 2, 0, 1, 3, 4}
	if res := mcCheck(t, l, good, mc.Options{}); !res.OK {
		t.Fatalf("good candidate no longer verifies: %s", res.Trace)
	}
	// Wrong completions one hole away from good, plus all-zero: their
	// counterexamples include lock-cycle deadlocks.
	bads := []desugar.Candidate{
		{0, 0, 0, 0, 0, 0},
		{2, 2, 0, 1, 3, 4},
		{3, 1, 0, 1, 3, 4},
		{3, 2, 0, 0, 3, 4},
		{3, 2, 0, 1, 3, 0},
	}
	runs := 20
	if testing.Short() {
		runs = 4
	}
	deadlocks := 0
	for run := 0; run < runs; run++ {
		for _, bad := range bads {
			res := mcCheck(t, l, bad, mc.Options{Parallelism: 4})
			if res.OK {
				continue // also a correct completion — nothing to project
			}
			for _, tr := range res.Traces {
				if len(tr.Deadlocked) > 0 {
					deadlocks++
				}
				entries := project.Build(prog, tr)
				cb := circuit.NewBuilder()
				holes := sym.HoleInputs(cb, sk)
				fail, err := project.Encode(cb, l, holes, entries)
				if err != nil {
					t.Fatal(err)
				}
				asn := map[circuit.Lit]bool{}
				for i, w := range holes {
					for j, lit := range w {
						asn[lit] = (good.Value(i)>>uint(j))&1 == 1
					}
				}
				if cb.Eval(asn, fail) {
					t.Fatalf("projection of trace for %v refutes the good candidate: %s",
						bad, tr)
				}
			}
		}
	}
	t.Logf("checked %d runs × %d candidates (%d deadlock traces), all projections sound",
		runs, len(bads), deadlocks)
}
