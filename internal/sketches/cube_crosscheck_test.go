package sketches

import (
	"net"
	"testing"
	"time"

	"psketch/internal/core"
	"psketch/internal/cube"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/state"
)

// This file cross-checks cube-and-conquer CEGIS against the
// whole-space engine: on Table 1 the verdict must be identical under
// {cubes=1, cubes=4 in-process, multi-process serve/join}, every
// resolved candidate must independently model check, and every cube-
// mode NO must come with a merged DRAT certificate that replayed.
// Candidates may differ between modes — several correct completions
// can exist — so the check is verdict + verification, not bitwise
// equality (except for the sequential pin below).

// verifyCandidate independently model checks a resolved completion.
func verifyCandidate(t *testing.T, sk *desugar.Sketch, cand desugar.Candidate, mode string) {
	t.Helper()
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := mc.Check(layout, cand, mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mres.OK {
		t.Fatalf("%s: resolved candidate %v fails verification: %s", mode, cand, mres.Trace)
	}
}

func TestCubeCrossCheckAllSketches(t *testing.T) {
	for _, b := range All() {
		b := b
		if testing.Short() && b.Name != "queueE1" && b.Name != "barrier1" {
			continue
		}
		test := b.Tests[0]
		t.Run(b.Name+"/"+test, func(t *testing.T) {
			sk := compile(t, b, test)
			want := b.Resolvable[test]

			// cubes=1 takes the plain whole-space path.
			plain, err := cube.Synthesize(sk, cube.Options{
				Cubes: 1, Core: core.Options{Parallelism: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Resolved != want {
				t.Fatalf("cubes=1: resolved=%v, want %v", plain.Resolved, want)
			}
			if plain.Resolved {
				verifyCandidate(t, sk, plain.Candidate, "cubes=1")
			}

			// cubes=4 splits the candidate space; NO verdicts must
			// carry a replayed merged certificate.
			quad, err := cube.Synthesize(sk, cube.Options{
				Cubes: 4, Workers: 2, Proof: !want,
				Core: core.Options{Parallelism: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			if quad.Resolved != want {
				t.Fatalf("cubes=4: resolved=%v, want %v", quad.Resolved, want)
			}
			if quad.Resolved {
				verifyCandidate(t, sk, quad.Candidate, "cubes=4")
			} else {
				if quad.Certificate == nil || quad.Stats.ProofChecked == 0 {
					t.Fatalf("cubes=4 NO without a replayed merged certificate: cert=%v checked=%d",
						quad.Certificate != nil, quad.Stats.ProofChecked)
				}
				if len(quad.Bits) == 0 {
					t.Fatal("cube split chose no bits")
				}
			}
		})
	}
}

// serveJoin runs one benchmark across two OS-level roles in-process:
// a coordinator serving the cube queue over localhost TCP and a joiner
// connecting to it — the same code paths psketch -serve-cubes and
// psketch -join execute.
func serveJoin(t *testing.T, b *Benchmark, test string, proof bool, localWorkers int) *cube.Result {
	t.Helper()
	src, err := b.Source(test)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	type out struct {
		res *cube.Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := cube.Serve(addr, cube.RemoteOptions{
			Src: src, Target: "Main", Desugar: b.Opts(test),
		}, cube.Options{
			Cubes: 4, Workers: localWorkers, Proof: proof,
			Core: core.Options{Parallelism: 1, NoPipeline: true},
		}, t.Logf)
		ch <- out{res, err}
	}()
	time.Sleep(300 * time.Millisecond)
	joinErr := make(chan error, 1)
	go func() { joinErr <- cube.Join(addr, t.Logf) }()

	o := <-ch
	if o.err != nil {
		t.Fatal(o.err)
	}
	if err := <-joinErr; err != nil {
		t.Errorf("join: %v", err)
	}
	remote := 0
	for _, pc := range o.res.PerCube {
		t.Logf("cube %d: resolved=%v exhausted=%v canceled=%v remote=%v stolen=%v iters=%d remtr=%d pruned=%d",
			pc.ID, pc.Resolved, pc.Exhausted, pc.Canceled, pc.Remote, pc.Stolen,
			pc.Stats.Iterations, pc.RemoteTraces, pc.PrunedByRemote)
		if pc.Remote {
			remote++
		}
	}
	if remote == 0 {
		t.Error("no cube ran on the joiner")
	}
	return o.res
}

// An UNSAT row distributed across coordinator and joiner must still
// produce one merged, replayed DRAT certificate covering the cubes
// that ran in the other process.
func TestCubeRemoteUnsatCertified(t *testing.T) {
	if testing.Short() {
		t.Skip("full UNSAT refutation in every cube; CI's distributed smoke job covers this cross-process")
	}
	b := LazySet()
	test := "ar(ar|ar)"
	if b.Resolvable[test] {
		t.Fatal("test row must be UNSAT")
	}
	res := serveJoin(t, b, test, true, 1)
	if res.Resolved {
		t.Fatal("want NO")
	}
	if res.Certificate == nil || res.Stats.ProofChecked == 0 {
		t.Fatalf("distributed NO without a replayed merged certificate: cert=%v checked=%d",
			res.Certificate != nil, res.Stats.ProofChecked)
	}
}

// A resolvable row distributed the same way must agree on YES, and the
// winning candidate — possibly synthesized in the other process — must
// model check locally.
func TestCubeRemoteResolves(t *testing.T) {
	b := QueueE1()
	test := b.Tests[0]
	if !b.Resolvable[test] {
		t.Fatal("test row must be resolvable")
	}
	// No local workers: the joiner must synthesize the winner, proving
	// candidates travel back over the wire intact.
	res := serveJoin(t, b, test, false, 0)
	if !res.Resolved {
		t.Fatal("want YES")
	}
	sk := compile(t, b, test)
	verifyCandidate(t, sk, res.Candidate, "remote")
}

// cube.Synthesize with Cubes=1 at -j 1 must be byte-identical to the
// plain sequential engine: same verdict, same per-iteration
// trajectory, same candidate bits, no cube or pipeline machinery.
func TestCubeSequentialModeUnchanged(t *testing.T) {
	b := QueueE1()
	test := b.Tests[0]
	sk := compile(t, b, test)
	seq := core.Options{Parallelism: 1, NoPipeline: true, NoShareClauses: true}

	syn, err := core.New(sk, seq)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cube.Synthesize(sk, cube.Options{Cubes: 1, Core: seq})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved || !ref.Resolved {
		t.Fatal("queueE1 must resolve")
	}
	if res.Stats.Iterations != ref.Stats.Iterations ||
		res.Stats.SATConfl != ref.Stats.SATConfl ||
		res.Stats.MCStates != ref.Stats.MCStates {
		t.Fatalf("cubes=1 -j1 drifted from sequential: iters=%d confl=%d states=%d vs iters=%d confl=%d states=%d",
			res.Stats.Iterations, res.Stats.SATConfl, res.Stats.MCStates,
			ref.Stats.Iterations, ref.Stats.SATConfl, ref.Stats.MCStates)
	}
	if res.Stats.SpecSolves != 0 || res.Stats.SATExported != 0 || res.Stats.SATBusExported != 0 {
		t.Fatalf("cubes=1 -j1 ran parallel machinery: %+v", res.Stats)
	}
	for i := range ref.Candidate {
		if res.Candidate.Value(i) != ref.Candidate.Value(i) {
			t.Fatalf("cubes=1 -j1 candidate drifted: %v vs %v", res.Candidate, ref.Candidate)
		}
	}
	if len(res.PerCube) != 0 || res.Winner != 0 || len(res.Bits) != 0 {
		t.Fatalf("cubes=1 must not split: %+v", res)
	}
}
