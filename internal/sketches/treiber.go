package sketches

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
)

// An extension benchmark beyond Table 1: a lock-free (Treiber) stack
// whose Push is sketched in the §4.1 style — the paper's example of
// sketching a compare-and-swap in a linked structure:
//
//	CAS({| head(.next|.prev)? |}, {| newNode(...) |}, {| ... |})
//
// Here the programmer knows Push needs a retry loop around a CAS but
// not which location to update, with which old and new values, nor
// where the link store goes relative to the CAS. Pop is fixed (the
// standard CAS pop). §8.2 notes the authors sketched further structures
// beyond the Table 1 set; this reconstructs that exercise for the CAS
// idiom.

const treiberSrc = `
struct SNode {
	SNode next = null;
	int v;
}

SNode top;

#define CLOC {| top | (n|old)(.next)? |}
#define CVAL {| (top|n|old)(.next)? | null |}

void Push(int v, int th) {
	SNode n = new SNode(v);
	int done = 0;
	while (done == 0) {
		SNode old = top;
		reorder {
			n.next = CVAL;
			if (CAS(CLOC, CVAL, CVAL)) { done = 1; }
		}
	}
}

int Pop(int th) {
	int done = 0;
	int out = 0 - 1;
	while (done == 0) {
		SNode old = top;
		if (old == null) {
			return 0 - 1;
		}
		if (CAS(top, old, old.next)) {
			out = old.v;
			done = 1;
		}
	}
	return out;
}
`

// treiberSource builds a push/pop workload using the queue pattern
// syntax with 'e' = push and 'd' = pop.
func treiberSource(test string) (string, error) {
	p, err := parsePattern(test)
	if err != nil {
		return "", err
	}
	totalPush := p.count('e')
	totalPop := p.count('d')
	nThreads := len(p.threads)
	mainTh := nThreads

	var b strings.Builder
	b.WriteString(treiberSrc)
	if totalPop > 0 {
		fmt.Fprintf(&b, "int[%d] results;\n", totalPop)
	}
	fmt.Fprintf(&b, "bool[%d] popped;\n", (mainTh+1)*4)

	b.WriteString("\nharness void Main() {\n")
	slot := 0
	seq := map[int]int{}
	emit := func(indent string, op byte, producer, th int) {
		switch op {
		case 'e':
			v := producer*4 + seq[producer]
			seq[producer]++
			fmt.Fprintf(&b, "%sPush(%d, %d);\n", indent, v, th)
		case 'd':
			fmt.Fprintf(&b, "%sresults[%d] = Pop(%d);\n", indent, slot, th)
			slot++
		}
	}
	for _, op := range []byte(p.pro) {
		emit("\t", op, mainTh, mainTh)
	}
	fmt.Fprintf(&b, "\tfork (t; %d) {\n", nThreads)
	for ti, ops := range p.threads {
		fmt.Fprintf(&b, "\t\tif (t == %d) {\n", ti)
		for _, op := range []byte(ops) {
			emit("\t\t\t", op, ti, ti)
		}
		b.WriteString("\t\t}\n")
	}
	b.WriteString("\t}\n")
	for _, op := range []byte(p.epi) {
		emit("\t", op, mainTh, mainTh)
	}

	// Correctness: walking the final stack yields each pushed value at
	// most once; popped results are valid, distinct pushed values; the
	// stack plus the pops account for every push exactly once. The walk
	// bound catches cycles; per-producer LIFO is visible in the chain
	// (a producer's values appear in decreasing sequence order).
	b.WriteString("\tSNode w = top;\n")
	b.WriteString("\tint cnt = 0;\n")
	fmt.Fprintf(&b, "\tbool[%d] inStack;\n", (mainTh+1)*4)
	for pr := 0; pr <= mainTh; pr++ {
		fmt.Fprintf(&b, "\tint last%d = 4;\n", pr)
	}
	b.WriteString("\twhile (w != null) {\n")
	b.WriteString("\t\tcnt = cnt + 1;\n")
	b.WriteString("\t\tint v = w.v;\n")
	b.WriteString("\t\tassert inStack[v] == false;\n")
	b.WriteString("\t\tinStack[v] = true;\n")
	b.WriteString("\t\tint pp = v / 4;\n")
	b.WriteString("\t\tint kk = v - pp * 4;\n")
	for pr := 0; pr <= mainTh; pr++ {
		// Stack order is newest-first, so a producer's sequence numbers
		// must strictly decrease along the chain.
		fmt.Fprintf(&b, "\t\tif (pp == %d) { assert kk < last%d; last%d = kk; }\n", pr, pr, pr)
	}
	b.WriteString("\t\tw = w.next;\n")
	b.WriteString("\t}\n")
	if totalPop > 0 {
		b.WriteString("\tint succ = 0;\n")
		fmt.Fprintf(&b, "\tbool[%d] seen;\n", (mainTh+1)*4)
		for j := 0; j < totalPop; j++ {
			fmt.Fprintf(&b, "\tif (results[%d] != 0 - 1) {\n", j)
			fmt.Fprintf(&b, "\t\tsucc = succ + 1;\n")
			fmt.Fprintf(&b, "\t\tassert seen[results[%d]] == false;\n", j)
			fmt.Fprintf(&b, "\t\tseen[results[%d]] = true;\n", j)
			fmt.Fprintf(&b, "\t\tassert inStack[results[%d]] == false;\n", j)
			b.WriteString("\t}\n")
		}
		fmt.Fprintf(&b, "\tassert cnt + succ == %d;\n", totalPush)
	} else {
		fmt.Fprintf(&b, "\tassert cnt == %d;\n", totalPush)
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// Treiber is the lock-free stack extension benchmark.
func Treiber() *Benchmark {
	tests := []string{"e(ee|ee)d", "ed(ed|ed)", "(e|e|e)ddd"}
	res := map[string]bool{}
	for _, t := range tests {
		res[t] = true
	}
	return &Benchmark{
		Name:   "treiber",
		Source: treiberSource,
		Opts: func(test string) desugar.Options {
			p, err := parsePattern(test)
			if err != nil {
				return desugar.Options{}
			}
			return desugar.Options{IntWidth: 6, LoopBound: p.count('e') + 2}
		},
		Tests:      tests,
		Resolvable: res,
		PaperC:     -1, // extension: not in Table 1
	}
}
