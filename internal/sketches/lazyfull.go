package sketches

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
)

// The "full version of the lazy list-based set" that §8.2 mentions
// sketching but omits from the tables: both add() and remove() keep
// their optimistic traversal and bounded retry, but the two lock
// statements, their order relative to validation and mutation, and the
// validation conjuncts themselves are all left to the synthesizer.
//
// The interesting contrast with the lazyset benchmark: with TWO locks
// available, remove() is synthesizable even for the ar(ar|ar) workload
// where the single-lock version is a proven NO.

func lazyFullSource(test string) (string, error) {
	p, err := parsePattern(test)
	if err != nil {
		return "", err
	}
	plan := planSetOps(p)
	nThreads := len(p.threads)
	mainTh := nThreads

	var b strings.Builder
	b.WriteString(`
struct Node {
	Node next = null;
	int key;
	int marked = 0;
}

Node head;
`)
	fmt.Fprintf(&b, "int[%d] opdone;\n", mainTh+1)
	b.WriteString(`
#define LNODE {| (pred|cur)(.next)? |}
#define AVALID {| (pred.next == cur) | (pred.marked == 0) | (cur.marked == 0) | true |}

void addTry(int key, int th) {
	if (opdone[th] == 0) {
		Node pred = head;
		Node cur = pred.next;
		while (cur.key < key) {
			pred = cur;
			cur = cur.next;
		}
		reorder {
			lock(LNODE);
			lock(LNODE);
			if (AVALID && AVALID && AVALID) {
				if (cur.key != key) {
					Node n = new Node(key);
					n.next = cur;
					pred.next = n;
				}
				opdone[th] = 1;
			}
		}
		unlock(LNODE);
		unlock(LNODE);
	}
}

void add(int key, int th) {
	opdone[th] = 0;
	addTry(key, th);
	addTry(key, th);
	addTry(key, th);
	assert opdone[th] == 1;
}

void remTry(int key, int th) {
	if (opdone[th] == 0) {
		Node pred = head;
		Node cur = pred.next;
		while (cur.key < key) {
			pred = cur;
			cur = cur.next;
		}
		reorder {
			lock(LNODE);
			lock(LNODE);
			if (AVALID && AVALID && AVALID) {
				if (cur.key == key) {
					cur.marked = 1;
					pred.next = cur.next;
				}
				opdone[th] = 1;
			}
		}
		unlock(LNODE);
		unlock(LNODE);
	}
}

void rem(int key, int th) {
	opdone[th] = 0;
	remTry(key, th);
	remTry(key, th);
	remTry(key, th);
	assert opdone[th] == 1;
}
`)

	b.WriteString("\nharness void Main() {\n")
	b.WriteString("\thead = new Node(0);\n")
	fmt.Fprintf(&b, "\tNode tl = new Node(%d);\n", maxKey)
	b.WriteString("\thead.next = tl;\n")
	prevName := "head"
	for _, k := range sortedInts(plan.initial) {
		fmt.Fprintf(&b, "\tNode n%d = new Node(%d);\n", k, k)
		fmt.Fprintf(&b, "\t%s.next = n%d;\n", prevName, k)
		prevName = fmt.Sprintf("n%d", k)
	}
	fmt.Fprintf(&b, "\t%s.next = tl;\n", prevName)

	emitOps := func(indent string, ops []setOp, th int) {
		for _, op := range ops {
			if op.add {
				fmt.Fprintf(&b, "%sadd(%d, %d);\n", indent, op.key, th)
			} else {
				fmt.Fprintf(&b, "%srem(%d, %d);\n", indent, op.key, th)
			}
		}
	}
	emitOps("\t", plan.pro, mainTh)
	fmt.Fprintf(&b, "\tfork (t; %d) {\n", nThreads)
	for ti, ops := range plan.threads {
		fmt.Fprintf(&b, "\t\tif (t == %d) {\n", ti)
		emitOps("\t\t\t", ops, ti)
		b.WriteString("\t\t}\n")
	}
	b.WriteString("\t}\n")
	emitOps("\t", plan.epi, mainTh)

	b.WriteString("\tNode w = head;\n")
	b.WriteString("\tassert w._lock == 0;\n")
	b.WriteString("\tint lastKey = 0;\n")
	fmt.Fprintf(&b, "\tbool[%d] present;\n", maxKey+1)
	b.WriteString("\twhile (w.next != null) {\n")
	b.WriteString("\t\tw = w.next;\n")
	b.WriteString("\t\tassert w.key > lastKey;\n")
	b.WriteString("\t\tlastKey = w.key;\n")
	b.WriteString("\t\tassert w.marked == 0;\n")
	b.WriteString("\t\tpresent[w.key] = true;\n")
	b.WriteString("\t\tassert w._lock == 0;\n")
	b.WriteString("\t}\n")
	fmt.Fprintf(&b, "\tassert w.key == %d;\n", maxKey)
	for k := 1; k < maxKey; k++ {
		if plan.final[k] {
			fmt.Fprintf(&b, "\tassert present[%d] == true;\n", k)
		} else {
			fmt.Fprintf(&b, "\tassert present[%d] == false;\n", k)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// LazyFull is the fully sketched lazy list (extension benchmark).
func LazyFull() *Benchmark {
	tests := []string{"(ar|ar)"}
	return &Benchmark{
		Name:   "lazyfull",
		Source: lazyFullSource,
		Opts: func(test string) desugar.Options {
			p, err := parsePattern(test)
			if err != nil {
				return desugar.Options{}
			}
			n := 2 + p.count('a') + p.count('r')
			return desugar.Options{IntWidth: 5, LoopBound: n + 1}
		},
		Tests:      tests,
		Resolvable: map[string]bool{"(ar|ar)": true},
		PaperC:     -1,
	}
}
