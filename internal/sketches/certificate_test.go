package sketches

import (
	"testing"

	"psketch/internal/core"
)

// Acceptance gate for the proof subsystem: with Options.Proof set,
// core replays every UNSAT verdict it commits to through the DRAT
// backward checker and turns a failed replay into an error — so
// running the Table 1 suite with proofs on, across the solo,
// portfolio, and portfolio-without-sharing configurations, enforces
// that every such verdict carries a valid certificate.
func TestTable1UNSATVerdictsAreCertified(t *testing.T) {
	cases := []struct {
		b        *Benchmark
		test     string
		resolved bool
	}{
		{QueueE1(), "ed(ed|ed)", true},
		{Barrier1(), "N=2,B=2", true},
		{FineSet1(), "a(a|r)", true},
		{LazySet(), "ar(aa|rr)", true},
		{LazySet(), "ar(ar|ar)", false}, // the Table 1 "NO" row
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"solo", core.Options{Parallelism: 1, Proof: true}},
		{"portfolio-sharing", core.Options{Parallelism: 4, Proof: true}},
		{"portfolio-noshare", core.Options{Parallelism: 4, NoShareClauses: true, Proof: true}},
	}
	for _, tc := range cases {
		for _, cfg := range configs {
			t.Run(tc.b.Name+"/"+tc.test+"/"+cfg.name, func(t *testing.T) {
				sk := compile(t, tc.b, tc.test)
				syn, err := core.New(sk, cfg.opts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := syn.Synthesize()
				if err != nil {
					// This includes "DRAT replay ... failed": a verdict
					// whose proof does not check is a test failure, not
					// a tolerated degradation.
					t.Fatal(err)
				}
				if res.Resolved != tc.resolved {
					t.Fatalf("resolved=%v, want %v", res.Resolved, tc.resolved)
				}
				if !tc.resolved {
					if res.Certificate == nil {
						t.Fatal("definitive NO carries no certificate")
					}
					cs, err := res.Certificate.Verify()
					if err != nil {
						t.Fatalf("independent re-verification failed: %v", err)
					}
					t.Logf("NO certificate: %d premises, %d lemmas (%d checked, %d core)",
						res.Certificate.NumPremises(), cs.Lemmas, cs.Checked, cs.Core)
				}
				t.Logf("proof stats: lemmas=%d checked=%d core=%d replay=%v",
					res.Stats.ProofLemmas, res.Stats.ProofChecked, res.Stats.ProofCore, res.Stats.ProofCheck)
			})
		}
	}
}
