// Package sketches contains the benchmark sketches of Table 1 — the
// lock-free queue (queueE1/E2/DE1/DE2), the sense-reversing barrier
// (barrier1/2), the finely locked list-based set (fineset1/2), the
// singly-locked lazy-list remove (lazyset), and the dining philosophers
// protocol (dinphilo) — together with the workload patterns of
// Figure 9 ("ed(ed|ed)", "N=3,B=2", "ar(ar|ar)", ...).
package sketches

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
)

// Benchmark describes one Table 1 sketch and its Figure 9 test grid.
type Benchmark struct {
	Name string
	// Source builds the complete sketch text for one test pattern.
	Source func(test string) (string, error)
	// Opts are the bounded-machine options the benchmark needs.
	Opts func(test string) desugar.Options
	// Tests is the Figure 9 grid for this benchmark.
	Tests []string
	// Resolvable gives the expected verdict per test.
	Resolvable map[string]bool
	// PaperC is Table 1's |C| as an order of magnitude (log10), with
	// -1 meaning "an exact small count" (queueE1's 4).
	PaperC float64
}

// pattern is a parsed workload like "ed(ee|dd)": a sequential prologue,
// per-thread operation strings, and a sequential epilogue.
type pattern struct {
	pro     string
	threads []string
	epi     string
}

func parsePattern(s string) (pattern, error) {
	open := strings.IndexByte(s, '(')
	closeP := strings.IndexByte(s, ')')
	if open < 0 || closeP < open {
		return pattern{}, fmt.Errorf("sketches: bad test pattern %q", s)
	}
	p := pattern{
		pro: s[:open],
		epi: s[closeP+1:],
	}
	for _, t := range strings.Split(s[open+1:closeP], "|") {
		p.threads = append(p.threads, t)
	}
	if len(p.threads) == 0 {
		return pattern{}, fmt.Errorf("sketches: no threads in pattern %q", s)
	}
	return p, nil
}

// count returns the number of occurrences of op in the whole pattern.
func (p pattern) count(op byte) int {
	n := strings.Count(p.pro, string(op)) + strings.Count(p.epi, string(op))
	for _, t := range p.threads {
		n += strings.Count(t, string(op))
	}
	return n
}

// All returns every benchmark in Table 1 order.
func All() []*Benchmark {
	return []*Benchmark{
		QueueE1(), QueueE2(), QueueDE1(), QueueDE2(),
		Barrier1(), Barrier2(),
		FineSet1(), FineSet2(),
		LazySet(), DinPhilo(),
	}
}

// Extras returns extension benchmarks beyond Table 1 (structures the
// paper mentions sketching but does not tabulate, §8.2).
func Extras() []*Benchmark {
	return []*Benchmark{Treiber(), LazyFull()}
}

// ByName returns the named benchmark (including extensions), or nil.
func ByName(name string) *Benchmark {
	for _, b := range append(All(), Extras()...) {
		if b.Name == name {
			return b
		}
	}
	return nil
}
