package sketches

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
)

// The finely locked list-based set of §8.2.3: a sorted singly linked
// list with sentinel head and tail, traversed with a sliding window of
// locks (hand-over-hand, Figure 5/6). The find(key) helper is sketched:
// the synthesizer must discover which nodes to lock and unlock, under
// what conditions, and in what order relative to the traversal.
//
// Keys are assigned statically so the final set is deterministic: every
// key is touched by exactly one op sequence. Sentinels use keys 0 and
// MAXKEY.
//
// Tests use the a/r pattern syntax: "ar(ar|ar)" etc.

const maxKey = 15

// finesetOps assigns keys to the a/r ops of a pattern such that each
// key is owned by one thread: an 'r' removes the key its own thread
// most recently added (or a reserved initial key), an 'a' adds a fresh
// key. It returns per-context op lists and the initial/final key sets.
type setOp struct {
	add bool
	key int
}

type setPlan struct {
	pro, epi []setOp
	threads  [][]setOp
	initial  []int
	final    map[int]bool
}

func planSetOps(p pattern) setPlan {
	plan := setPlan{final: map[int]bool{}}
	nextFresh := 1
	fresh := func() int {
		k := nextFresh
		nextFresh += 2 // odd keys are added at run time
		return k
	}
	nextInit := 2
	reserveInit := func() int {
		k := nextInit
		nextInit += 2 // even keys form the initial set
		plan.initial = append(plan.initial, k)
		plan.final[k] = true
		return k
	}
	compile := func(ops string) []setOp {
		var out []setOp
		var owned []int // keys added by this context, not yet removed
		for _, op := range []byte(ops) {
			switch op {
			case 'a':
				k := fresh()
				owned = append(owned, k)
				plan.final[k] = true
				out = append(out, setOp{add: true, key: k})
			case 'r':
				var k int
				if len(owned) > 0 {
					k = owned[len(owned)-1]
					owned = owned[:len(owned)-1]
				} else {
					k = reserveInit()
				}
				delete(plan.final, k)
				out = append(out, setOp{add: false, key: k})
			}
		}
		return out
	}
	plan.pro = compile(p.pro)
	for _, t := range p.threads {
		plan.threads = append(plan.threads, compile(t))
	}
	plan.epi = compile(p.epi)
	return plan
}

// finesetFind returns the sketched find() (full or restricted).
func finesetFind(full bool) string {
	if full {
		// Figure 5 verbatim, with tprev snapshotting the old prev.
		return `
#define NODE {| (tprev|cur|prev)(.next)? |}
#define COMP {| (!)? ((null|cur|prev)(.next)? == (null|cur|prev)(.next)?) |}

void find(int key, int th) {
	lock(head);
	Node prev = head;
	Node cur = prev.next;
	lock(cur);
	while (cur.key < key) {
		Node tprev = prev;
		reorder {
			if (COMP) { lock(NODE); }
			if (COMP) { unlock(NODE); }
			prev = cur;
			cur = cur.next;
		}
	}
	fprev[th] = prev;
	fcur[th] = cur;
}
`
	}
	return `
#define NODE {| (tprev|cur|prev)(.next)? |}
#define COMP {| (!)? ((cur|prev) == (null|tprev|prev)(.next)?) |}

void find(int key, int th) {
	lock(head);
	Node prev = head;
	Node cur = prev.next;
	lock(cur);
	while (cur.key < key) {
		Node tprev = prev;
		reorder {
			lock(NODE);
			if (COMP) { unlock(NODE); }
			prev = cur;
			cur = cur.next;
		}
	}
	fprev[th] = prev;
	fcur[th] = cur;
}
`
}

// finesetSource builds the whole benchmark program.
func finesetSource(full bool, test string) (string, error) {
	p, err := parsePattern(test)
	if err != nil {
		return "", err
	}
	plan := planSetOps(p)
	nThreads := len(p.threads)
	mainTh := nThreads

	var b strings.Builder
	b.WriteString(`
struct Node {
	Node next = null;
	int key;
}

Node head;
`)
	fmt.Fprintf(&b, "Node[%d] fprev;\n", mainTh+1)
	fmt.Fprintf(&b, "Node[%d] fcur;\n", mainTh+1)
	b.WriteString(finesetFind(full))
	b.WriteString(`
void add(int key, int th) {
	find(key, th);
	Node prev = fprev[th];
	Node cur = fcur[th];
	if (cur.key != key) {
		Node n = new Node(key);
		n.next = cur;
		prev.next = n;
	}
	unlock(prev);
	unlock(cur);
}

void rem(int key, int th) {
	find(key, th);
	Node prev = fprev[th];
	Node cur = fcur[th];
	if (cur.key == key) {
		prev.next = cur.next;
	}
	unlock(prev);
	unlock(cur);
}
`)

	b.WriteString("\nharness void Main() {\n")
	fmt.Fprintf(&b, "\thead = new Node(0);\n")
	fmt.Fprintf(&b, "\tNode tl = new Node(%d);\n", maxKey)
	b.WriteString("\thead.next = tl;\n")
	// Build the initial set (sorted insert order is fine: ascending).
	for _, k := range sortedInts(plan.initial) {
		fmt.Fprintf(&b, "\tNode n%d = new Node(%d);\n", k, k)
	}
	// Link initial nodes in ascending key order between sentinels.
	prevName := "head"
	for _, k := range sortedInts(plan.initial) {
		fmt.Fprintf(&b, "\t%s.next = n%d;\n", prevName, k)
		prevName = fmt.Sprintf("n%d", k)
	}
	fmt.Fprintf(&b, "\t%s.next = tl;\n", prevName)

	emitOps := func(indent string, ops []setOp, th int) {
		for _, op := range ops {
			if op.add {
				fmt.Fprintf(&b, "%sadd(%d, %d);\n", indent, op.key, th)
			} else {
				fmt.Fprintf(&b, "%srem(%d, %d);\n", indent, op.key, th)
			}
		}
	}
	emitOps("\t", plan.pro, mainTh)
	fmt.Fprintf(&b, "\tfork (t; %d) {\n", nThreads)
	for ti, ops := range plan.threads {
		fmt.Fprintf(&b, "\t\tif (t == %d) {\n", ti)
		emitOps("\t\t\t", ops, ti)
		b.WriteString("\t\t}\n")
	}
	b.WriteString("\t}\n")
	emitOps("\t", plan.epi, mainTh)

	// Correctness epilogue: strictly sorted walk from head to the tail
	// sentinel, expected membership, all locks released.
	b.WriteString("\tNode w = head;\n")
	b.WriteString("\tassert w._lock == 0;\n")
	b.WriteString("\tint lastKey = 0;\n")
	fmt.Fprintf(&b, "\tbool[%d] present;\n", maxKey+1)
	b.WriteString("\twhile (w.next != null) {\n")
	b.WriteString("\t\tw = w.next;\n")
	b.WriteString("\t\tassert w.key > lastKey;\n")
	b.WriteString("\t\tlastKey = w.key;\n")
	b.WriteString("\t\tpresent[w.key] = true;\n")
	b.WriteString("\t\tassert w._lock == 0;\n")
	b.WriteString("\t}\n")
	fmt.Fprintf(&b, "\tassert w.key == %d;\n", maxKey)
	for k := 1; k < maxKey; k++ {
		if plan.final[k] {
			fmt.Fprintf(&b, "\tassert present[%d] == true;\n", k)
		} else {
			fmt.Fprintf(&b, "\tassert present[%d] == false;\n", k)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func finesetOptsFor(test string) desugar.Options {
	p, err := parsePattern(test)
	if err != nil {
		return desugar.Options{}
	}
	// The list never holds more than initial + adds + 2 sentinel nodes;
	// traversals and the checking walk are bounded by that.
	n := 2 + p.count('a') + p.count('r') // removes may reserve initial keys
	return desugar.Options{IntWidth: 5, LoopBound: n + 1}
}

func finesetBench(name string, full bool, tests []string) *Benchmark {
	res := map[string]bool{}
	for _, t := range tests {
		res[t] = true
	}
	c := 4.0
	if full {
		c = 7
	}
	return &Benchmark{
		Name: name,
		Source: func(test string) (string, error) {
			return finesetSource(full, test)
		},
		Opts:       finesetOptsFor,
		Tests:      tests,
		Resolvable: res,
		PaperC:     c,
	}
}

// FineSet1 is the restricted hand-over-hand sketch.
func FineSet1() *Benchmark {
	return finesetBench("fineset1", false,
		[]string{"ar(ar|ar)", "ar(ar|ar|ar)", "ar(a|r|a|r)", "ar(arar|arar)", "ar(aaaa|rrrr)"})
}

// FineSet2 is the full Figure 5 sketch.
func FineSet2() *Benchmark {
	return finesetBench("fineset2", true,
		[]string{"ar(ar|ar)", "ar(ar|ar|ar)", "ar(a|r|a|r)", "ar(arar|arar)", "ar(aaaa|rrrr)"})
}
