package sketches

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
)

// The dining philosophers protocol of §8.2.5: P philosophers, P
// chopstick locks on a ring, T meals each. The acquisition policy is
// sketched as predicates of (p, t, P) guarding the two lock statements
// inside a reorder block; the release order is also left open. A
// philosopher must hold both neighbouring chopsticks to eat (checked
// with in-use counters), deadlock freedom is implicit, and the bounded
// liveness property — everyone eats T times — is asserted after the
// join, exactly as the paper approximates property (2).
//
// Tests are "N=<philosophers>,T=<meals>".

func dinphiloSource(p, t int) string {
	var b strings.Builder
	b.WriteString(`
struct Chop {
	int inuse = 0;
}
`)
	fmt.Fprintf(&b, "Chop[%d] sticks;\n", p)
	fmt.Fprintf(&b, "int[%d] eats;\n", p)
	b.WriteString(`
generator bool policy(int p, int t) {
	return {| (!)? (p == ??(2) | p % 2 == ??(1) | (p + t) % 2 == ??(1) | true) |};
}

void phil(int p) {
	int t = 0;
`)
	fmt.Fprintf(&b, "\twhile (t < %d) {\n", t)
	fmt.Fprintf(&b, "\t\tChop left = sticks[p];\n")
	fmt.Fprintf(&b, "\t\tChop right = sticks[(p + 1) %% %d];\n", p)
	b.WriteString(`		reorder {
			if (policy(p, t)) { lock(left); }
			if (policy(p, t)) { lock(right); }
			if (policy(p, t)) { lock(left); }
			if (policy(p, t)) { lock(right); }
		}
		atomic {
			left.inuse = left.inuse + 1;
			right.inuse = right.inuse + 1;
		}
		atomic {
			assert left.inuse == 1;
			assert right.inuse == 1;
			eats[p] = eats[p] + 1;
		}
		atomic {
			left.inuse = left.inuse - 1;
			right.inuse = right.inuse - 1;
		}
		reorder {
			unlock(left);
			unlock(right);
		}
		t = t + 1;
	}
}
`)
	b.WriteString("\nharness void Main() {\n")
	for i := 0; i < p; i++ {
		fmt.Fprintf(&b, "\tsticks[%d] = new Chop();\n", i)
	}
	fmt.Fprintf(&b, "\tfork (i; %d) {\n", p)
	b.WriteString("\t\tphil(i);\n")
	b.WriteString("\t}\n")
	for i := 0; i < p; i++ {
		fmt.Fprintf(&b, "\tassert eats[%d] == %d;\n", i, t)
		fmt.Fprintf(&b, "\tassert sticks[%d]._lock == 0;\n", i)
	}
	b.WriteString("}\n")
	return b.String()
}

// parseNT parses "N=3,T=5".
func parseNT(test string) (n, t int, err error) {
	_, err = fmt.Sscanf(test, "N=%d,T=%d", &n, &t)
	return n, t, err
}

// DinPhilo is the dining philosophers benchmark.
func DinPhilo() *Benchmark {
	tests := []string{"N=3,T=5", "N=4,T=3", "N=5,T=3"}
	res := map[string]bool{}
	for _, tst := range tests {
		res[tst] = true
	}
	return &Benchmark{
		Name: "dinphilo",
		Source: func(test string) (string, error) {
			n, t, err := parseNT(test)
			if err != nil {
				return "", err
			}
			return dinphiloSource(n, t), nil
		},
		Opts: func(test string) desugar.Options {
			_, t, err := parseNT(test)
			if err != nil {
				t = 5
			}
			return desugar.Options{IntWidth: 5, LoopBound: t + 1}
		},
		Tests:      tests,
		Resolvable: res,
		PaperC:     6,
	}
}
