package sketches

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
)

// The lazy list-based set of §8.2.4 (after Heller et al.): add() and
// remove() traverse optimistically without locks, then lock and
// validate before mutating; logically deleted nodes carry a marked bit.
// The paper's question: can remove() take just ONE lock instead of two?
// The sketch strips remove()'s locks and lets the synthesizer place one
// lock/unlock pair on a choice of nodes, with a choice of validation.
//
// Expected verdicts (Figure 9): ar(aa|rr) resolves — one thread only
// adds while the other only removes; ar(ar|ar) is NOT resolvable.

func lazySource(test string) (string, error) {
	p, err := parsePattern(test)
	if err != nil {
		return "", err
	}
	plan := planSetOps(p)
	nThreads := len(p.threads)
	mainTh := nThreads

	var b strings.Builder
	b.WriteString(`
struct Node {
	Node next = null;
	int key;
	int marked = 0;
}

Node head;
`)
	// Per-thread op status for the bounded optimistic retry loops.
	fmt.Fprintf(&b, "int[%d] opdone;\n", mainTh+1)

	// The fixed, correct two-lock add() with validation and bounded
	// retry (optimistic traversal, as in Heller et al.).
	b.WriteString(`
void addTry(int key, int th) {
	if (opdone[th] == 0) {
		Node pred = head;
		Node cur = pred.next;
		while (cur.key < key) {
			pred = cur;
			cur = cur.next;
		}
		lock(pred);
		lock(cur);
		if (pred.next == cur && pred.marked == 0 && cur.marked == 0) {
			if (cur.key != key) {
				Node n = new Node(key);
				n.next = cur;
				pred.next = n;
			}
			opdone[th] = 1;
		}
		unlock(pred);
		unlock(cur);
	}
}

void add(int key, int th) {
	opdone[th] = 0;
	addTry(key, th);
	addTry(key, th);
	addTry(key, th);
	assert opdone[th] == 1;
}
`)
	// The sketched single-lock remove(): one lock on a chosen node, a
	// chosen validation, and the reorder decides where the lock and
	// unlock go relative to the mutation. Validation failure retries
	// (bounded), exactly like the original two-lock remove.
	b.WriteString(`
#define LNODE {| (pred|cur)(.next)? |}
#define VALID {| (pred.next == cur) | (pred.marked == 0) | (cur.marked == 0) | true |}

void remTry(int key, int th) {
	if (opdone[th] == 0) {
		Node pred = head;
		Node cur = pred.next;
		while (cur.key < key) {
			pred = cur;
			cur = cur.next;
		}
		reorder {
			lock(LNODE);
			if (VALID && VALID) {
				if (cur.key == key) {
					cur.marked = 1;
					pred.next = cur.next;
				}
				opdone[th] = 1;
			}
			unlock(LNODE);
		}
	}
}

void rem(int key, int th) {
	opdone[th] = 0;
	remTry(key, th);
	remTry(key, th);
	remTry(key, th);
	assert opdone[th] == 1;
}
`)

	b.WriteString("\nharness void Main() {\n")
	b.WriteString("\thead = new Node(0);\n")
	fmt.Fprintf(&b, "\tNode tl = new Node(%d);\n", maxKey)
	b.WriteString("\thead.next = tl;\n")
	prevName := "head"
	for _, k := range sortedInts(plan.initial) {
		fmt.Fprintf(&b, "\tNode n%d = new Node(%d);\n", k, k)
		fmt.Fprintf(&b, "\t%s.next = n%d;\n", prevName, k)
		prevName = fmt.Sprintf("n%d", k)
	}
	fmt.Fprintf(&b, "\t%s.next = tl;\n", prevName)

	emitOps := func(indent string, ops []setOp, th int) {
		for _, op := range ops {
			if op.add {
				fmt.Fprintf(&b, "%sadd(%d, %d);\n", indent, op.key, th)
			} else {
				fmt.Fprintf(&b, "%srem(%d, %d);\n", indent, op.key, th)
			}
		}
	}
	emitOps("\t", plan.pro, mainTh)
	fmt.Fprintf(&b, "\tfork (t; %d) {\n", nThreads)
	for ti, ops := range plan.threads {
		fmt.Fprintf(&b, "\t\tif (t == %d) {\n", ti)
		emitOps("\t\t\t", ops, ti)
		b.WriteString("\t\t}\n")
	}
	b.WriteString("\t}\n")
	emitOps("\t", plan.epi, mainTh)

	// Correctness: the set abstraction (reachable unmarked keys) equals
	// the expected final set; the list is sorted; locks are free.
	b.WriteString("\tNode w = head;\n")
	b.WriteString("\tassert w._lock == 0;\n")
	b.WriteString("\tint lastKey = 0;\n")
	fmt.Fprintf(&b, "\tbool[%d] present;\n", maxKey+1)
	b.WriteString("\twhile (w.next != null) {\n")
	b.WriteString("\t\tw = w.next;\n")
	b.WriteString("\t\tassert w.key > lastKey;\n")
	b.WriteString("\t\tlastKey = w.key;\n")
	// Physical removal is required (the paper's criteria match the
	// fineset structural checks): no marked node may stay reachable.
	b.WriteString("\t\tassert w.marked == 0;\n")
	b.WriteString("\t\tpresent[w.key] = true;\n")
	b.WriteString("\t\tassert w._lock == 0;\n")
	b.WriteString("\t}\n")
	fmt.Fprintf(&b, "\tassert w.key == %d;\n", maxKey)
	for k := 1; k < maxKey; k++ {
		if plan.final[k] {
			fmt.Fprintf(&b, "\tassert present[%d] == true;\n", k)
		} else {
			fmt.Fprintf(&b, "\tassert present[%d] == false;\n", k)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// LazySet is the singly-locked lazy-list remove() benchmark.
func LazySet() *Benchmark {
	tests := []string{"ar(aa|rr)", "ar(ar|ar)"}
	return &Benchmark{
		Name:   "lazyset",
		Source: lazySource,
		Opts: func(test string) desugar.Options {
			p, err := parsePattern(test)
			if err != nil {
				return desugar.Options{}
			}
			n := 2 + p.count('a') + p.count('r')
			return desugar.Options{IntWidth: 5, LoopBound: n + 1}
		},
		Tests: tests,
		Resolvable: map[string]bool{
			"ar(aa|rr)": true,
			"ar(ar|ar)": false, // the paper's "NO"
		},
		PaperC: 3,
	}
}
