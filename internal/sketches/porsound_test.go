package sketches

import (
	"testing"

	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/state"
)

// Lowering the same sketch twice must produce equivalent programs —
// allocation sites live on shared AST nodes and once corrupted the
// second program silently mis-verified (regression: the POR cross-check
// "failure" that was really a double-lower artifact).
func TestLowerIdempotent(t *testing.T) {
	sk := compile(t, QueueE1(), "ed(ed|ed)")
	p1, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Sites) != len(p2.Sites) || len(p1.Sites) == 0 {
		t.Fatalf("site counts differ: %d vs %d", len(p1.Sites), len(p2.Sites))
	}
	for i := range p1.Sites {
		if p1.Sites[i] != p2.Sites[i] {
			t.Fatalf("site %d differs: %v vs %v", i, p1.Sites[i], p2.Sites[i])
		}
	}
	for name, n := range p1.Arenas {
		if p2.Arenas[name] != n {
			t.Fatalf("arena %s differs: %d vs %d", name, n, p2.Arenas[name])
		}
	}
	// Both lowerings must verify the same candidate identically.
	cand := desugar.Candidate{0, 0}
	for _, p := range []*ir.Program{p1, p2} {
		l, err := state.NewLayout(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(l, cand, mc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("verdict changed across lowerings: %s", res.Trace)
		}
	}
}

// Synthesize-then-ModelCheck on one compiled sketch (the API pattern
// that exercises double lowering end to end).
func TestLowerTwiceViaCEGISAndMC(t *testing.T) {
	sk := compile(t, QueueE1(), "ed(ed|ed)")
	syn, err := core.New(sk, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatal("should resolve")
	}
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := state.NewLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := mc.Check(l, res.Candidate, mc.Options{NoLocalFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if !mres.OK {
		t.Fatalf("re-lowered program refutes the synthesized candidate: %s", mres.Trace)
	}
}
