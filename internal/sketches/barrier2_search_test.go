package sketches

import (
	"testing"

	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/state"
)

// Fix the generator choices to the textbook barrier and search the
// reorder positions exhaustively; at least one ordering must verify.
func TestBarrier2TextbookSolutionInSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("search")
	}
	sk := compile(t, Barrier2(), "N=2,B=2")
	prog, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := state.NewLayout(prog)
	if err != nil {
		t.Fatal(err)
	}
	cand := make(desugar.Candidate, len(sk.Holes))
	cand[5] = 8  // s = !s
	cand[10] = 2 // tmp = (cv == ??)
	cand[12] = 1 //   ... == 1
	cand[15] = 3 // sense = s
	cand[20] = 9 // tmp = !tmp
	cand[25] = 3 // t = s
	reorderHoles := []int{30, 31, 32, 33, 34, 35}
	bits := []int{1, 1, 2, 3, 4, 5}
	found := 0
	var rec func(i int)
	total := 0
	rec = func(i int) {
		if found > 0 {
			return
		}
		if i == len(reorderHoles) {
			total++
			res, err := mc.Check(layout, cand, mc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.OK {
				found++
				t.Logf("FOUND after %d combos: %v", total, cand)
			}
			return
		}
		for v := int64(0); v < 1<<uint(bits[i]); v++ {
			cand[reorderHoles[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	if found == 0 {
		t.Fatalf("no reorder position verified (%d combos)", total)
	}
}

// TestBarrier2WatchedCandidateSurvives reruns CEGIS with the known-good candidate
// watched, to locate the unsound projection.
func TestBarrier2WatchedCandidateSurvives(t *testing.T) {
	sk := compile(t, Barrier2(), "N=2,B=2")
	good := make(desugar.Candidate, len(sk.Holes))
	for i, v := range []int64{0, 0, 0, 0, 0, 8, 0, 0, 0, 0, 2, 0, 1, 0, 0, 3, 0, 0, 0, 0, 9, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 1, 0, 4, 0, 0} {
		good[i] = v
	}
	syn, err := core.New(sk, core.Options{Verbose: t.Logf, WatchCandidate: good})
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("resolved=%v iters=%d", res.Resolved, res.Stats.Iterations)
}
