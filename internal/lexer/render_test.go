package lexer

import (
	"testing"

	"psketch/internal/token"
)

// Render keeps adjacent word tokens apart and glues punctuation, so
// re-lexing a rendering yields the same token kinds.
func TestRenderRoundTrip(t *testing.T) {
	srcs := []string{
		"int x = a + b * 3;",
		"if (a == b && !c) { x.y[2] = null; }",
		`bits = "1010";`,
		"x = AtomicSwap(tail.next, n);",
	}
	for _, src := range srcs {
		toks, err := Lex(src)
		if err != nil {
			t.Fatal(err)
		}
		rendered := Render(toks[:len(toks)-1])
		again, err := Lex(rendered)
		if err != nil {
			t.Fatalf("re-lex %q: %v", rendered, err)
		}
		if len(again) != len(toks) {
			t.Fatalf("token count changed: %q -> %q", src, rendered)
		}
		for i := range toks {
			if toks[i].Kind != again[i].Kind || toks[i].Lit != again[i].Lit {
				t.Fatalf("token %d changed: %v -> %v (%q)", i, toks[i], again[i], rendered)
			}
		}
	}
}

// Sticky operator sequences must not merge into different tokens.
func TestRenderStickyOperators(t *testing.T) {
	toks := []token.Token{
		{Kind: token.IDENT, Lit: "a"},
		{Kind: token.ASSIGN},
		{Kind: token.NOT},
		{Kind: token.IDENT, Lit: "b"},
	}
	out := Render(toks)
	// "a = ! b" or "a = !b" both fine; "a =! b" must re-lex as = then !.
	again, err := Lex(out)
	if err != nil {
		t.Fatal(err)
	}
	if again[1].Kind != token.ASSIGN || again[2].Kind != token.NOT {
		t.Fatalf("sticky merge in %q", out)
	}
}
