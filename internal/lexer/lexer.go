// Package lexer implements the PSketch scanner and its small C-style
// macro preprocessor (#define NAME body, #define NAME(a,b) body).
//
// Macro expansion is textual at the token level, which gives the
// semantics the paper relies on: every expansion of a macro containing
// a hole or a generator yields a *fresh* hole, so the three uses of
// aLocation in the Enqueue sketch of Figure 1 are chosen independently.
package lexer

import (
	"strings"

	"psketch/internal/token"
)

// Scanner turns source text into tokens.
type Scanner struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// NewScanner returns a scanner over src.
func NewScanner(src string) *Scanner {
	return &Scanner{src: src, line: 1, col: 1}
}

// Errs returns the scan errors encountered so far.
func (s *Scanner) Errs() []error { return s.errs }

func (s *Scanner) pos() token.Pos {
	return token.Pos{Offset: s.off, Line: s.line, Col: s.col}
}

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peek2() byte {
	if s.off+1 >= len(s.src) {
		return 0
	}
	return s.src[s.off+1]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) errorf(pos token.Pos, format string, args ...any) {
	s.errs = append(s.errs, token.Errorf(pos, format, args...))
}

// skipSpace skips whitespace and comments. If stopAtNewline is true it
// stops before consuming a newline (used while reading #define bodies).
func (s *Scanner) skipSpace(stopAtNewline bool) {
	for s.off < len(s.src) {
		c := s.peek()
		switch {
		case c == '\n' && stopAtNewline:
			return
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.advance()
		case c == '/' && s.peek2() == '/':
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		case c == '/' && s.peek2() == '*':
			start := s.pos()
			s.advance()
			s.advance()
			closed := false
			for s.off < len(s.src) {
				if s.peek() == '*' && s.peek2() == '/' {
					s.advance()
					s.advance()
					closed = true
					break
				}
				s.advance()
			}
			if !closed {
				s.errorf(start, "unterminated block comment")
			}
		case c == '\\' && s.peek2() == '\n' && stopAtNewline:
			// Line continuation inside a #define body.
			s.advance()
			s.advance()
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next scans the next token. #define lines are surfaced as a DEFINE
// token followed by the name and a BITS-free raw body via ScanDefine;
// the Lex entry point below handles them.
func (s *Scanner) Next() token.Token {
	s.skipSpace(false)
	pos := s.pos()
	if s.off >= len(s.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := s.peek()
	switch {
	case isLetter(c):
		start := s.off
		for s.off < len(s.src) && (isLetter(s.peek()) || isDigit(s.peek())) {
			s.advance()
		}
		lit := s.src[start:s.off]
		if k, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: k, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
	case isDigit(c):
		start := s.off
		for s.off < len(s.src) && isDigit(s.peek()) {
			s.advance()
		}
		return token.Token{Kind: token.INT, Lit: s.src[start:s.off], Pos: pos}
	}
	s.advance()
	two := func(next byte, k2 token.Kind, k1 token.Kind) token.Token {
		if s.peek() == next {
			s.advance()
			return token.Token{Kind: k2, Pos: pos}
		}
		return token.Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '+':
		return token.Token{Kind: token.ADD, Pos: pos}
	case '-':
		return token.Token{Kind: token.SUB, Pos: pos}
	case '*':
		return token.Token{Kind: token.MUL, Pos: pos}
	case '/':
		return token.Token{Kind: token.QUO, Pos: pos}
	case '%':
		return token.Token{Kind: token.REM, Pos: pos}
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LEQ, token.LT)
	case '>':
		return two('=', token.GEQ, token.GT)
	case '&':
		if s.peek() == '&' {
			s.advance()
			return token.Token{Kind: token.LAND, Pos: pos}
		}
		s.errorf(pos, "unexpected character %q (did you mean &&?)", string(c))
		return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
	case '|':
		if s.peek() == '|' {
			s.advance()
			return token.Token{Kind: token.LOR, Pos: pos}
		}
		s.errorf(pos, "unexpected character %q (did you mean ||?)", string(c))
		return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		if s.peek() == '|' {
			s.advance()
			return s.scanRegen(pos)
		}
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case ':':
		if s.peek() == ':' {
			s.advance()
			return token.Token{Kind: token.COLON2, Pos: pos}
		}
		s.errorf(pos, "unexpected character %q", string(c))
		return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
	case '?':
		if s.peek() == '?' {
			s.advance()
			return token.Token{Kind: token.HOLE, Pos: pos}
		}
		// A lone ? is the optional operator inside regex generators; it
		// never appears in plain code.
		s.errorf(pos, "unexpected character %q outside a generator", string(c))
		return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
	case '"':
		start := s.off
		for s.off < len(s.src) && s.peek() != '"' && s.peek() != '\n' {
			s.advance()
		}
		if s.peek() != '"' {
			s.errorf(pos, "unterminated bit-string literal")
			return token.Token{Kind: token.ILLEGAL, Pos: pos}
		}
		lit := s.src[start:s.off]
		s.advance() // closing quote
		return token.Token{Kind: token.BITS, Lit: lit, Pos: pos}
	case '#':
		start := s.off
		for s.off < len(s.src) && isLetter(s.peek()) {
			s.advance()
		}
		if s.src[start:s.off] == "define" {
			return token.Token{Kind: token.DEFINE, Pos: pos}
		}
		s.errorf(pos, "unknown directive #%s", s.src[start:s.off])
		return token.Token{Kind: token.ILLEGAL, Lit: "#" + s.src[start:s.off], Pos: pos}
	}
	s.errorf(pos, "unexpected character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// scanRegen scans the body of a {| ... |} generator, handling nesting.
func (s *Scanner) scanRegen(pos token.Pos) token.Token {
	start := s.off
	depth := 1
	for s.off < len(s.src) {
		if s.peek() == '{' && s.peek2() == '|' {
			depth++
			s.advance()
			s.advance()
			continue
		}
		if s.peek() == '|' && s.peek2() == '}' {
			depth--
			if depth == 0 {
				lit := s.src[start:s.off]
				s.advance()
				s.advance()
				return token.Token{Kind: token.REGEN, Lit: strings.TrimSpace(lit), Pos: pos}
			}
			s.advance()
			s.advance()
			continue
		}
		s.advance()
	}
	s.errorf(pos, "unterminated generator {| ... |}")
	return token.Token{Kind: token.ILLEGAL, Pos: pos}
}

// restOfLine returns the raw remainder of the current line (for #define
// bodies), honoring backslash-newline continuations.
func (s *Scanner) restOfLine() string {
	var b strings.Builder
	for s.off < len(s.src) {
		c := s.peek()
		if c == '\\' && s.peek2() == '\n' {
			s.advance()
			s.advance()
			b.WriteByte(' ')
			continue
		}
		if c == '\n' {
			break
		}
		b.WriteByte(s.advance())
	}
	return b.String()
}
