package lexer

import (
	"fmt"
	"strings"

	"psketch/internal/token"
)

// macro is one #define. Params is nil for object-like macros.
type macro struct {
	name   string
	params []string // nil => object-like
	body   []token.Token
}

// Lex scans src, processes #define directives, expands macro uses, and
// returns the fully expanded token stream terminated by EOF.
func Lex(src string) ([]token.Token, error) {
	s := NewScanner(src)
	macros := map[string]*macro{}
	var raw []token.Token
	for {
		t := s.Next()
		if t.Kind == token.DEFINE {
			if err := scanDefine(s, macros); err != nil {
				return nil, err
			}
			continue
		}
		raw = append(raw, t)
		if t.Kind == token.EOF {
			break
		}
	}
	if errs := s.Errs(); len(errs) > 0 {
		return nil, errs[0]
	}
	return expand(raw, macros, 0)
}

// scanDefine parses "#define NAME body" or "#define NAME(a,b) body".
// The body runs to end of line (with backslash continuations).
func scanDefine(s *Scanner, macros map[string]*macro) error {
	nameTok := s.Next()
	if nameTok.Kind != token.IDENT {
		return token.Errorf(nameTok.Pos, "#define: expected macro name, got %s", nameTok)
	}
	m := &macro{name: nameTok.Lit}
	// A parameter list only counts if the '(' is immediately adjacent
	// to the name (standard C preprocessor rule).
	if s.peek() == '(' {
		s.advance()
		m.params = []string{}
		for {
			s.skipSpace(true)
			p := s.Next()
			if p.Kind == token.RPAREN && len(m.params) == 0 {
				break
			}
			if p.Kind != token.IDENT {
				return token.Errorf(p.Pos, "#define %s: expected parameter name, got %s", m.name, p)
			}
			m.params = append(m.params, p.Lit)
			sep := s.Next()
			if sep.Kind == token.RPAREN {
				break
			}
			if sep.Kind != token.COMMA {
				return token.Errorf(sep.Pos, "#define %s: expected , or ) in parameter list", m.name)
			}
		}
	}
	body := s.restOfLine()
	bs := NewScanner(body)
	for {
		t := bs.Next()
		if t.Kind == token.EOF {
			break
		}
		if t.Kind == token.DEFINE {
			return token.Errorf(nameTok.Pos, "#define %s: nested #define in body", m.name)
		}
		m.body = append(m.body, t)
	}
	if errs := bs.Errs(); len(errs) > 0 {
		return fmt.Errorf("#define %s: %w", m.name, errs[0])
	}
	macros[m.name] = m
	return nil
}

const maxExpandDepth = 32

// expand rewrites macro invocations in toks. Each invocation splices a
// fresh copy of the body, so holes and generators in macro bodies are
// independent at every use site (the Figure 1 Enqueue sketch depends on
// this: its three aLocation uses are chosen independently).
//
// Parameters are substituted both for plain identifier tokens in the
// body and textually inside {| ... |} generator literals (the paper's
// anExpr(x,y) mentions x and y inside a generator). Arguments are fully
// macro-expanded first, so passing the aValue macro as an argument
// yields a nested {| ... |} group inside the outer generator, which the
// generator grammar treats like a parenthesized alternation.
func expand(toks []token.Token, macros map[string]*macro, depth int) ([]token.Token, error) {
	if depth > maxExpandDepth {
		return nil, fmt.Errorf("macro expansion too deep (recursive #define?)")
	}
	var out []token.Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		var m *macro
		if t.Kind == token.IDENT {
			m = macros[t.Lit]
		}
		if m == nil {
			out = append(out, t)
			continue
		}
		var body []token.Token
		if m.params == nil {
			body = append(body, m.body...)
		} else {
			rawArgs, next, err := collectArgs(toks, i+1, m)
			if err != nil {
				return nil, err
			}
			if len(rawArgs) != len(m.params) {
				return nil, token.Errorf(t.Pos, "macro %s expects %d argument(s), got %d", m.name, len(m.params), len(rawArgs))
			}
			i = next
			subToks := map[string][]token.Token{}
			subText := map[string]string{}
			for k, p := range m.params {
				arg, err := expand(rawArgs[k], macros, depth+1)
				if err != nil {
					return nil, err
				}
				subToks[p] = arg
				subText[p] = Render(arg)
			}
			for _, bt := range m.body {
				switch {
				case bt.Kind == token.IDENT && subToks[bt.Lit] != nil:
					body = append(body, subToks[bt.Lit]...)
				case bt.Kind == token.REGEN:
					bt.Lit = substIdentsInText(bt.Lit, subText)
					body = append(body, bt)
				default:
					body = append(body, bt)
				}
			}
		}
		exp, err := expand(retagPos(body, t.Pos), macros, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, exp...)
	}
	return out, nil
}

// collectArgs parses a parenthesized, comma-separated argument list
// starting at toks[start] (which must be LPAREN). It returns the raw
// argument token slices and the index of the closing RPAREN.
func collectArgs(toks []token.Token, start int, m *macro) ([][]token.Token, int, error) {
	if start >= len(toks) || toks[start].Kind != token.LPAREN {
		pos := token.Pos{}
		if start < len(toks) {
			pos = toks[start].Pos
		}
		return nil, 0, token.Errorf(pos, "macro %s: expected (", m.name)
	}
	var args [][]token.Token
	cur := []token.Token{}
	depth := 1
	for i := start + 1; i < len(toks); i++ {
		t := toks[i]
		switch t.Kind {
		case token.LPAREN, token.LBRACK, token.LBRACE:
			depth++
		case token.RPAREN, token.RBRACK, token.RBRACE:
			depth--
			if depth == 0 {
				if len(cur) > 0 || len(args) > 0 {
					args = append(args, cur)
				}
				return args, i, nil
			}
		case token.COMMA:
			if depth == 1 {
				args = append(args, cur)
				cur = []token.Token{}
				continue
			}
		case token.EOF:
			return nil, 0, token.Errorf(t.Pos, "macro %s: unterminated argument list", m.name)
		}
		cur = append(cur, t)
	}
	return nil, 0, token.Errorf(toks[start].Pos, "macro %s: unterminated argument list", m.name)
}

// Render turns tokens back into compact source text. Used for argument
// substitution inside generator literals and for diagnostics.
func Render(toks []token.Token) string {
	var b strings.Builder
	for i, t := range toks {
		s := t.String()
		if t.Kind == token.BITS {
			s = `"` + t.Lit + `"`
		}
		if i > 0 && needsSpace(toks[i-1], t) {
			b.WriteByte(' ')
		}
		b.WriteString(s)
	}
	return b.String()
}

// needsSpace reports whether two adjacent tokens would glue into a
// different token if printed without separation.
func needsSpace(a, b token.Token) bool {
	wordy := func(t token.Token) bool {
		switch t.Kind {
		case token.IDENT, token.INT, token.KwNull, token.KwTrue, token.KwFalse,
			token.KwInt, token.KwBool, token.KwBit, token.KwNew:
			return true
		}
		return false
	}
	if wordy(a) && wordy(b) {
		return true
	}
	// Keep relational/assign/bang sequences apart: "=" "=" etc.
	sticky := func(k token.Kind) bool {
		switch k {
		case token.ASSIGN, token.EQ, token.NEQ, token.LT, token.LEQ,
			token.GT, token.GEQ, token.NOT, token.LAND, token.LOR:
			return true
		}
		return false
	}
	return sticky(a.Kind) && sticky(b.Kind)
}

// substIdentsInText replaces whole-word identifier occurrences in a
// generator literal with their substitution text.
func substIdentsInText(text string, sub map[string]string) string {
	var b strings.Builder
	for i := 0; i < len(text); {
		c := text[i]
		if isLetter(c) {
			j := i + 1
			for j < len(text) && (isLetter(text[j]) || isDigit(text[j])) {
				j++
			}
			word := text[i:j]
			if rep, ok := sub[word]; ok {
				b.WriteString(rep)
			} else {
				b.WriteString(word)
			}
			i = j
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

// retagPos stamps every expanded token with the invocation position so
// diagnostics point at the use site.
func retagPos(body []token.Token, pos token.Pos) []token.Token {
	out := make([]token.Token, len(body))
	for i, t := range body {
		t.Pos = pos
		out[i] = t
	}
	return out
}
