package lexer

import (
	"strings"
	"testing"

	"psketch/internal/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	var ks []token.Kind
	for _, tk := range toks {
		ks = append(ks, tk.Kind)
	}
	return ks
}

func TestBasicTokens(t *testing.T) {
	ks := kinds(t, "int x = 3; x = x + 1;")
	want := []token.Kind{
		token.KwInt, token.IDENT, token.ASSIGN, token.INT, token.SEMI,
		token.IDENT, token.ASSIGN, token.IDENT, token.ADD, token.INT, token.SEMI,
		token.EOF,
	}
	if len(ks) != len(want) {
		t.Fatalf("got %v want %v", ks, want)
	}
	for i := range ks {
		if ks[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, ks[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	ks := kinds(t, "== != <= >= < > && || ! :: = ??")
	want := []token.Kind{
		token.EQ, token.NEQ, token.LEQ, token.GEQ, token.LT, token.GT,
		token.LAND, token.LOR, token.NOT, token.COLON2, token.ASSIGN, token.HOLE,
		token.EOF,
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("token %d: got %v want %v", i, ks[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	ks := kinds(t, "a // line comment ??\n/* block {| |} */ b")
	want := []token.Kind{token.IDENT, token.IDENT, token.EOF}
	if len(ks) != len(want) {
		t.Fatalf("got %v", ks)
	}
}

func TestRegenToken(t *testing.T) {
	toks, err := Lex("x = {| tail(.next)? | null |};")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != token.REGEN {
		t.Fatalf("got %v", toks[2])
	}
	if toks[2].Lit != "tail(.next)? | null" {
		t.Fatalf("regen body %q", toks[2].Lit)
	}
}

func TestNestedRegen(t *testing.T) {
	toks, err := Lex("x = {| a == {| b | c |} |};")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != token.REGEN || !strings.Contains(toks[2].Lit, "{| b | c |}") {
		t.Fatalf("got %v %q", toks[2].Kind, toks[2].Lit)
	}
}

func TestBitString(t *testing.T) {
	toks, err := Lex(`b = "1100";`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != token.BITS || toks[2].Lit != "1100" {
		t.Fatalf("got %v %q", toks[2].Kind, toks[2].Lit)
	}
}

func TestObjectMacro(t *testing.T) {
	toks, err := Lex("#define LOC tail.next\nx = LOC;")
	if err != nil {
		t.Fatal(err)
	}
	var lits []string
	for _, tk := range toks {
		lits = append(lits, tk.String())
	}
	got := strings.Join(lits[:len(lits)-1], " ")
	if got != "x = tail . next ;" {
		t.Fatalf("got %q", got)
	}
}

func TestParamMacro(t *testing.T) {
	toks, err := Lex("#define SWAP(a, b) a = b\nSWAP(x, y + 1);")
	if err != nil {
		t.Fatal(err)
	}
	var lits []string
	for _, tk := range toks[:len(toks)-1] {
		lits = append(lits, tk.String())
	}
	if strings.Join(lits, " ") != "x = y + 1 ;" {
		t.Fatalf("got %q", strings.Join(lits, " "))
	}
}

// The Figure 1 idiom: a macro argument that is itself a generator macro
// must splice into the generator literal of the callee's body.
func TestMacroIntoRegen(t *testing.T) {
	src := `#define aValue {| x | y |}
#define anExpr(p, q) {| p == q | false |}
if (anExpr(tmp, aValue)) { }`
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	var regen string
	for _, tk := range toks {
		if tk.Kind == token.REGEN {
			regen = tk.Lit
		}
	}
	flat := strings.Join(strings.Fields(regen), " ")
	if !strings.Contains(flat, "tmp == {|x | y|}") {
		t.Fatalf("substitution failed: %q", regen)
	}
}

func TestMacroRecursionRejected(t *testing.T) {
	if _, err := Lex("#define A B\n#define B A\nx = A;"); err == nil {
		t.Fatal("expected recursion error")
	}
}

func TestLineContinuation(t *testing.T) {
	toks, err := Lex("#define M a + \\\n b\nx = M;")
	if err != nil {
		t.Fatal(err)
	}
	var lits []string
	for _, tk := range toks[:len(toks)-1] {
		lits = append(lits, tk.String())
	}
	if strings.Join(lits, " ") != "x = a + b ;" {
		t.Fatalf("got %q", strings.Join(lits, " "))
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{
		"x = {| a ;", // unterminated generator
		`s = "110`,   // unterminated bit string
		"a & b",      // single &
		"a | b",      // single |
		"#oops",      // unknown directive
	} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Lex("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("bb at %v", toks[1].Pos)
	}
}
