// Package oracle holds deliberately naive reference implementations of
// the two components the whole reproduction depends on: the
// interleaving verifier (internal/mc) and the candidate search
// (internal/core). Both are written for obviousness, not speed — no
// partial-order reduction, no local fusion, no thread-symmetry
// canonicalization, no visited-set compression, no incremental
// hashing, no sharding, no freelists, no incremental SAT — and exist
// purely as differential oracles: the
// optimized engines must agree with them on every verdict. The fuzz
// targets (FuzzMCvsReference, FuzzProjection) and the differential
// tests in internal/sketches drive the comparison.
//
// The one semantic choice shared with the optimized checker is
// guard-skipping: a step whose guard conjunction is false is not
// executed at all and is not a scheduling point. This is not a
// reduction but the IR's step semantics (guards are side-effect-free
// expressions over thread-locals and holes — ir.Step), so the naive
// checker commits guard skips exactly like internal/mc does with
// NoLocalFusion set. Every guard-true step, local or shared, is a
// scheduling point here, and states are keyed on their full normalized
// contents — so CheckExhaustive's States count equals the optimized
// checker's exactly when (and only when) every mc reduction is off
// (NoPOR, NoLocalFusion, NoSymmetry, no compression), which is what
// the differential state-count tests pin.
package oracle

import (
	"fmt"

	"psketch/internal/circuit"
	"psketch/internal/desugar"
	"psketch/internal/interp"
	"psketch/internal/ir"
	"psketch/internal/state"
	"psketch/internal/sym"
)

// Verdict is the naive checker's answer.
type Verdict struct {
	OK bool
	// Failure is the first violation found (nil when OK): an assertion,
	// memory-safety, or deadlock failure.
	Failure *interp.Failure
	// Deadlock reports that the failure is a global deadlock (all
	// unfinished threads blocked).
	Deadlock bool
	// States counts the distinct (normalized) states visited.
	States int
}

// checker is one CheckExhaustive run. Everything is per-call: the
// visited set is a plain Go map and every child state is a fresh
// Clone — the obviously-correct baseline the optimized checker's
// freelists and striped tables are measured against.
type checker struct {
	l       *state.Layout
	p       *ir.Program
	cand    desugar.Candidate
	max     int
	visited map[[16]byte]bool
	verdict *Verdict
}

// CheckExhaustive explores every interleaving of the candidate with a
// tree-walking interpreter and no reductions beyond guard skipping.
// maxStates bounds the search (<= 0 means 1,000,000; the naive checker
// is for small differential instances, not Table 1 state spaces).
func CheckExhaustive(l *state.Layout, cand desugar.Candidate, maxStates int) (*Verdict, error) {
	p := l.Prog
	if !p.Concurrent() {
		return nil, fmt.Errorf("oracle: program has no fork")
	}
	if maxStates <= 0 {
		maxStates = 1_000_000
	}
	c := &checker{l: l, p: p, cand: cand, max: maxStates,
		visited: make(map[[16]byte]bool), verdict: &Verdict{OK: true}}

	st := l.NewState()
	for _, seq := range []*ir.Seq{p.GlobalInit, p.Prologue} {
		if f := c.runSeq(st, seq); f != nil {
			return &Verdict{Failure: f}, nil
		}
	}
	if err := c.dfs(st); err != nil {
		return nil, err
	}
	c.verdict.States = len(c.visited)
	return c.verdict, nil
}

// runSeq executes a deterministic phase (global init, prologue,
// epilogue) to completion.
func (c *checker) runSeq(st *state.State, seq *ir.Seq) *interp.Failure {
	ctx := interp.NewCtx(c.l, st, seq, c.cand)
	for _, step := range seq.Steps {
		ok, f := ctx.EvalGuards(step)
		if f != nil {
			return f
		}
		if !ok {
			continue
		}
		enabled, f := ctx.EvalCond(step)
		if f != nil {
			return f
		}
		if !enabled {
			return &interp.Failure{Kind: interp.FailDeadlock, Pos: step.Pos, Msg: "blocking condition false in single-threaded phase"}
		}
		if f := ctx.ExecBody(step); f != nil {
			return f
		}
	}
	return nil
}

// normalize commits guard skips for every thread: each PC is moved to
// its thread's next guard-true step (or past the end).
func (c *checker) normalize(st *state.State) *interp.Failure {
	for t, seq := range c.p.Threads {
		ctx := interp.NewCtx(c.l, st, seq, c.cand)
		for {
			pc := int(st.PCs[t])
			if pc >= len(seq.Steps) {
				break
			}
			ok, f := ctx.EvalGuards(seq.Steps[pc])
			if f != nil {
				return f
			}
			if ok {
				break
			}
			st.PCs[t] = int32(pc + 1)
		}
	}
	return nil
}

// fail records the first counterexample and stops the search.
func (c *checker) fail(f *interp.Failure, deadlock bool) {
	if c.verdict.OK {
		c.verdict.OK = false
		c.verdict.Failure = f
		c.verdict.Deadlock = deadlock
	}
}

// dfs explores the interleavings from st (which it owns and may
// mutate). The search stops at the first counterexample.
func (c *checker) dfs(st *state.State) error {
	if f := c.normalize(st); f != nil {
		c.fail(f, false)
		return nil
	}
	key := st.Key()
	if c.visited[key] {
		return nil
	}
	c.visited[key] = true
	if len(c.visited) > c.max {
		return fmt.Errorf("oracle: state space exceeds %d states", c.max)
	}

	unfinished := 0
	var enabled []int
	for t, seq := range c.p.Threads {
		pc := int(st.PCs[t])
		if pc >= len(seq.Steps) {
			continue
		}
		unfinished++
		step := seq.Steps[pc]
		if step.Cond == nil {
			enabled = append(enabled, t)
			continue
		}
		ctx := interp.NewCtx(c.l, st, seq, c.cand)
		ok, f := ctx.EvalCond(step)
		if f != nil {
			c.fail(f, false)
			return nil
		}
		if ok {
			enabled = append(enabled, t)
		}
	}

	if unfinished == 0 {
		if f := c.runSeq(st.Clone(), c.p.Epilogue); f != nil {
			c.fail(f, false)
		}
		return nil
	}
	if len(enabled) == 0 {
		c.fail(&interp.Failure{Kind: interp.FailDeadlock, Msg: "all unfinished threads blocked"}, true)
		return nil
	}
	for _, t := range enabled {
		if !c.verdict.OK {
			return nil
		}
		child := st.Clone()
		seq := c.p.Threads[t]
		pc := int(child.PCs[t])
		ctx := interp.NewCtx(c.l, child, seq, c.cand)
		if f := ctx.ExecBody(seq.Steps[pc]); f != nil {
			c.fail(f, false)
			return nil
		}
		child.PCs[t] = int32(pc + 1)
		if err := c.dfs(child); err != nil {
			return err
		}
	}
	return nil
}

// SearchResult is the enumerative searcher's answer.
type SearchResult struct {
	Resolved  bool
	Candidate desugar.Candidate // first correct assignment in lexicographic order
	// Space is the full assignment count, Valid the structurally valid
	// subset, Checked how many ran through the exhaustive checker.
	Space   int
	Valid   int
	Checked int
}

// holeDims returns the enumeration radix of every hole: declared
// choices for generator holes, the full bit range otherwise.
func holeDims(sk *desugar.Sketch) []int64 {
	dims := make([]int64, len(sk.Holes))
	for i, m := range sk.Holes {
		if m.Kind == desugar.HoleChoice {
			dims[i] = int64(m.Choices)
		} else {
			dims[i] = int64(1) << uint(m.Bits)
		}
	}
	return dims
}

// structuralFilter evaluates the sketch's structural constraints
// (reorder permutations, repeat bounds, generator ranges) on concrete
// candidates, reusing the same circuit encoding the CEGIS engine
// solves — but only ever evaluating it, never solving.
type structuralFilter struct {
	b     *circuit.Builder
	holes []circuit.Word
	lits  []circuit.Lit
}

func newStructuralFilter(sk *desugar.Sketch, l *state.Layout) (*structuralFilter, error) {
	f := &structuralFilter{b: circuit.NewBuilder()}
	f.holes = sym.HoleInputs(f.b, sk)
	ev := sym.New(f.b, l, f.holes)
	for _, c := range sk.Constraints {
		f.lits = append(f.lits, ev.EvalConstraint(c))
	}
	if err := ev.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *structuralFilter) valid(cand desugar.Candidate) bool {
	asn := map[circuit.Lit]bool{}
	for i, w := range f.holes {
		for j, in := range w {
			asn[in] = (cand.Value(i)>>uint(j))&1 == 1
		}
	}
	for _, lit := range f.lits {
		if !f.b.Eval(asn, lit) {
			return false
		}
	}
	return true
}

// SearchEnumerative is the reference synthesizer for concurrent
// sketches with small hole spaces: it enumerates every hole assignment
// in lexicographic order, filters by the structural constraints, and
// model checks each survivor exhaustively. maxSpace bounds the
// assignment count (<= 0 means 1<<16), maxStates bounds each check.
// The verdict is definitive either way: Resolved with the first
// correct candidate, or an exhaustive NO — which is exactly what the
// CEGIS engine's UNSAT exit claims.
func SearchEnumerative(sk *desugar.Sketch, maxSpace, maxStates int) (*SearchResult, error) {
	if maxSpace <= 0 {
		maxSpace = 1 << 16
	}
	prog, err := ir.Lower(sk)
	if err != nil {
		return nil, err
	}
	l, err := state.NewLayout(prog)
	if err != nil {
		return nil, err
	}
	dims := holeDims(sk)
	space := 1
	for _, d := range dims {
		if int64(space)*d > int64(maxSpace) {
			return nil, fmt.Errorf("oracle: hole space exceeds %d assignments", maxSpace)
		}
		space *= int(d)
	}
	filter, err := newStructuralFilter(sk, l)
	if err != nil {
		return nil, err
	}

	res := &SearchResult{Space: space}
	cand := make(desugar.Candidate, len(dims))
	for idx := 0; idx < space; idx++ {
		rem := idx
		for i, d := range dims {
			cand[i] = int64(rem % int(d))
			rem /= int(d)
		}
		if !filter.valid(cand) {
			continue
		}
		res.Valid++
		v, err := CheckExhaustive(l, cand, maxStates)
		if err != nil {
			return nil, err
		}
		res.Checked++
		if v.OK {
			res.Resolved = true
			res.Candidate = append(desugar.Candidate(nil), cand...)
			return res, nil
		}
	}
	return res, nil
}
