package oracle

import (
	"testing"

	"psketch/internal/core"
	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/parser"
	"psketch/internal/state"
)

func compile(t *testing.T, src, target string) (*desugar.Sketch, *state.Layout) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, target, desugar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := state.NewLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	return sk, l
}

// Concurrent mini-programs covering the verdict space: data race
// (assert failure), correct atomic version, blocking conditions, and a
// deadlock.
var miniPrograms = []struct {
	name, src string
	ok        bool
}{
	{"racy-increment", `
int g = 0;
harness void M() {
	fork (i; 2) {
		int t = g;
		t = t + 1;
		g = t;
	}
	assert g == 2;
}
`, false},
	{"atomic-increment", `
int g = 0;
harness void M() {
	fork (i; 2) {
		atomic { g = g + 1; }
	}
	assert g == 2;
}
`, true},
	{"blocking-handoff", `
int turn = 0;
int done = 0;
harness void M() {
	fork (i; 2) {
		atomic (turn == i) { turn = turn + 1; done = done + 1; }
	}
	assert done == 2;
}
`, true},
	{"deadlock", `
int a = 0;
harness void M() {
	fork (i; 2) {
		atomic (a == i + 5) { a = 0; }
	}
}
`, false},
}

// The naive checker and the optimized model checker must agree on
// every verdict, in every engine configuration.
func TestCheckAgreesWithMC(t *testing.T) {
	for _, tc := range miniPrograms {
		t.Run(tc.name, func(t *testing.T) {
			_, l := compile(t, tc.src, "M")
			v, err := CheckExhaustive(l, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if v.OK != tc.ok {
				t.Fatalf("oracle verdict %v, want %v (failure: %v)", v.OK, tc.ok, v.Failure)
			}
			for _, cfg := range []mc.Options{
				{},
				{NoPOR: true},
				{NoPOR: true, NoLocalFusion: true},
				{Parallelism: 4},
				{Parallelism: 4, NoPOR: true},
			} {
				res, err := mc.Check(l, nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.OK != v.OK {
					t.Fatalf("mc %+v verdict %v, oracle %v", cfg, res.OK, v.OK)
				}
			}
			if !v.OK && tc.name == "deadlock" && !v.Deadlock {
				t.Fatal("oracle missed the deadlock kind")
			}
		})
	}
}

// With every mc reduction off, both checkers walk the same normalized
// state graph, so the state counts of a full (OK) exploration must be
// identical — a much sharper check than the verdict alone.
func TestStatesMatchUnreducedMC(t *testing.T) {
	for _, tc := range miniPrograms {
		if !tc.ok {
			continue // failing runs stop early; counts are search-order dependent
		}
		_, l := compile(t, tc.src, "M")
		v, err := CheckExhaustive(l, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mc.Check(l, nil, mc.Options{NoPOR: true, NoLocalFusion: true, NoSymmetry: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.States != v.States {
			t.Fatalf("%s: mc explored %d states, oracle %d", tc.name, res.States, v.States)
		}
	}
}

// Hole sketches: the enumerative reference search and the CEGIS engine
// must agree on resolvability, and each other's winners must pass the
// other's checker.
func TestSearchAgreesWithCEGIS(t *testing.T) {
	cases := []struct {
		name, src string
		resolved  bool
	}{
		{"pick-atomic", `
int g = 0;
harness void M() {
	fork (i; 2) {
		if ({| true | false |}) {
			int t = g;
			t = t + 1;
			g = t;
		} else {
			atomic { g = g + 1; }
		}
	}
	assert g == 2;
}
`, true},
		{"no-solution", `
int g = 0;
harness void M() {
	fork (i; 2) {
		int t = g;
		t = t + ??(2);
		g = t;
	}
	assert g == 4;
}
`, false},
		{"constant-hole", `
int g = 0;
harness void M() {
	fork (i; 2) {
		atomic { g = g + ??(2); }
	}
	assert g == 6;
}
`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sk, l := compile(t, tc.src, "M")
			ref, err := SearchEnumerative(sk, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Resolved != tc.resolved {
				t.Fatalf("reference search resolved=%v, want %v", ref.Resolved, tc.resolved)
			}
			for _, par := range []int{1, 4} {
				syn, err := core.New(sk, core.Options{Parallelism: par, Proof: true})
				if err != nil {
					t.Fatal(err)
				}
				res, err := syn.Synthesize()
				if err != nil {
					t.Fatal(err)
				}
				if res.Resolved != ref.Resolved {
					t.Fatalf("parallelism %d: CEGIS resolved=%v, reference=%v", par, res.Resolved, ref.Resolved)
				}
				if res.Resolved {
					// The optimized engine's winner must pass the naive
					// checker too.
					v, err := CheckExhaustive(l, res.Candidate, 0)
					if err != nil {
						t.Fatal(err)
					}
					if !v.OK {
						t.Fatalf("parallelism %d: CEGIS candidate %v fails the reference checker: %v", par, res.Candidate, v.Failure)
					}
				} else if res.Certificate == nil {
					t.Fatalf("parallelism %d: CEGIS NO without a certificate", par)
				}
			}
		})
	}
}
