package printer

import (
	"strings"
	"testing"

	"psketch/internal/desugar"
	"psketch/internal/parser"
)

func sketch(t *testing.T, src, target string, opts desugar.Options) *desugar.Sketch {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, target, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// Holes and generators substitute to their chosen constants/choices.
func TestSubstitution(t *testing.T) {
	sk := sketch(t, `
int g;
void f() {
	g = ??(3);
	g = {| g + 1 | g - 1 |};
	bool b = ??;
	if (b) { g = 0; }
}
harness void Main() { f(); fork (i; 1) { } }
`, "Main", desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	for i, m := range sk.Holes {
		switch m.Kind {
		case desugar.HoleInt:
			cand[i] = 5
		case desugar.HoleChoice:
			cand[i] = 1
		case desugar.HoleBool:
			cand[i] = 1
		}
	}
	out, err := Resolve(sk, cand, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "g = 5;") {
		t.Fatalf("hole not substituted:\n%s", out)
	}
	if !strings.Contains(out, "g - 1") || strings.Contains(out, "{|") {
		t.Fatalf("generator not substituted:\n%s", out)
	}
	if !strings.Contains(out, "= true;") {
		t.Fatalf("bool hole not substituted:\n%s", out)
	}
}

// Reorder encodings fold back to the chosen order: constant guards
// collapse, so exactly one copy of each statement remains.
func TestReorderFoldsBack(t *testing.T) {
	for _, enc := range []desugar.Encoding{desugar.EncodeInsertion, desugar.EncodeQuadratic} {
		sk := sketch(t, `
int g;
void f() {
	reorder { g = 1; g = 2; }
}
harness void Main() { f(); fork (i; 1) { } }
`, "Main", desugar.Options{Encoding: enc})
		// Try every raw assignment; the valid ones must print exactly
		// one copy of each statement.
		validSeen := 0
		max := int64(1)
		for _, m := range sk.Holes {
			max *= 1 << uint(m.Bits)
		}
		for v := int64(0); v < max; v++ {
			cand := make(desugar.Candidate, len(sk.Holes))
			rest := v
			for i, m := range sk.Holes {
				cand[i] = rest & ((1 << uint(m.Bits)) - 1)
				rest >>= uint(m.Bits)
			}
			out, err := Resolve(sk, cand, "f")
			if err != nil {
				t.Fatal(err)
			}
			c1 := strings.Count(out, "g = 1;")
			c2 := strings.Count(out, "g = 2;")
			if c1 == 1 && c2 == 1 && !strings.Contains(out, "if (") {
				validSeen++
			}
		}
		if validSeen == 0 {
			t.Fatalf("encoding %v: no candidate folded to a clean order", enc)
		}
	}
}

// Figure 2 regression: the known queueE1 solution prints as the paper's
// resolved Enqueue.
func TestFigure2Golden(t *testing.T) {
	sk := sketch(t, `
struct QueueEntry { QueueEntry next = null; int stored; int taken = 0; }
QueueEntry tail;

void Enqueue(int v) {
	QueueEntry tmp = null;
	QueueEntry newEntry = new QueueEntry(v);
	tmp = AtomicSwap({| tail | tail.next |}, newEntry);
	{| tmp | newEntry |}.next = newEntry;
}
harness void Main() {
	tail = new QueueEntry(0);
	fork (i; 1) { Enqueue(1); }
}
`, "Main", desugar.Options{})
	out, err := Resolve(sk, desugar.Candidate{0, 0}, "Enqueue")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"AtomicSwap(tail, newEntry",
		".next = newEntry",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestProgramPrintsAllFunctions(t *testing.T) {
	sk := sketch(t, `
int g;
void f() { g = ??(1); }
generator int p() { return {| 1 | 2 |}; }
harness void Main() { f(); fork (i; 1) { } }
`, "Main", desugar.Options{})
	out, err := Program(sk, make(desugar.Candidate, len(sk.Holes)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "void f()") || !strings.Contains(out, "harness void Main()") {
		t.Fatalf("functions missing:\n%s", out)
	}
	if strings.Contains(out, "generator") {
		t.Fatalf("generator functions should be omitted:\n%s", out)
	}
}

// Every statement form prints; the output is stable and re-parseable
// in spirit (checked by substring).
func TestPrintAllForms(t *testing.T) {
	sk := sketch(t, `
struct N { N next = null; int v; }
N head;
int g;

int helper(int x) {
	while (x > 0) { x = x - 1; }
	assert x == 0;
	return x;
}

harness void Main() {
	head = new N(1);
	lock(head);
	unlock(head);
	atomic { g = 1; }
	atomic (g == 1) { g = 2; }
	atomic (g == 2);
	int r = helper(3);
	r = r;
	fork (i; 2) {
		int t = i;
		if (t == 0) { g = g + 1; } else { g = g - 1; }
	}
}
`, "Main", desugar.Options{})
	out, err := Program(sk, make(desugar.Candidate, len(sk.Holes)))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"harness void Main()",
		"int helper(int x)",
		"while (x > 0)",
		"assert x == 0;",
		"return x;",
		"lock(head);",
		"unlock(head);",
		"atomic {",
		"atomic (g == 1)",
		"atomic (g == 2);",
		"fork (i; 2)",
		"} else {",
		"new N(1)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// Pretty renaming restores base names when unambiguous and leaves
// ambiguous or colliding ones suffixed.
func TestPrettyLocalNames(t *testing.T) {
	sk := sketch(t, `
int tmp;
void f() {
	int tmp2 = 0;
	tmp2 = tmp2 + 1;
	if (true) { int inner = 1; inner = inner; }
	if (true) { int inner = 2; inner = inner; }
}
harness void Main() { f(); fork (i; 1) { } }
`, "Main", desugar.Options{})
	out, err := Resolve(sk, make(desugar.Candidate, len(sk.Holes)), "f")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int tmp2 = 0;") {
		t.Fatalf("unique local not restored:\n%s", out)
	}
	// Two 'inner' locals: must stay distinct.
	if strings.Count(out, "int inner_") != 2 && strings.Count(out, "int inner ") >= 2 {
		t.Fatalf("ambiguous locals collided:\n%s", out)
	}
}

// Hole kinds print as their literal forms (int, bool, bit-string).
func TestHoleRendering(t *testing.T) {
	sk := sketch(t, `
void f() {
	int a = ??(4);
	bool b = ??;
	bit[3] v = ??;
	a = a; b = b; v[0] = v[0];
}
harness void Main() { f(); fork (i; 1) { } }
`, "Main", desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	for i, m := range sk.Holes {
		switch m.Kind {
		case desugar.HoleInt:
			cand[i] = 9
		case desugar.HoleBool:
			cand[i] = 1
		case desugar.HoleBits:
			cand[i] = 0b101
		}
	}
	out, err := Resolve(sk, cand, "f")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"int a = 9;", "bool b = true;", `bit[3] v = "101";`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
