// Package printer renders resolved sketches back to source: holes are
// replaced by their synthesized constants, generators by their chosen
// alternative, and the guarded statement copies produced by the reorder
// encodings collapse back to the selected order — recovering output in
// the style of the paper's Figures 2, 4 and 6.
package printer

import (
	"fmt"
	"strings"

	"psketch/internal/ast"
	"psketch/internal/desugar"
	"psketch/internal/token"
	"psketch/internal/types"
)

// Resolve renders the named function of the sketch with the candidate's
// choices substituted and constant control flow folded away.
func Resolve(sk *desugar.Sketch, cand desugar.Candidate, fn string) (string, error) {
	f, err := ResolveAST(sk, cand, fn)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	writeSignature(&b, f)
	b.WriteString(" ")
	writeBlock(&b, f.Body, 0)
	b.WriteString("\n")
	return b.String(), nil
}

// ResolveAST returns the named function of the sketch with the
// candidate's choices substituted and constant control flow folded
// away, as an AST rather than text — the entry point the Go codegen
// backend (internal/emit) lowers from. The returned declaration is a
// fresh copy down to statement level; leaf expressions may be shared
// with the sketch and must not be mutated.
func ResolveAST(sk *desugar.Sketch, cand desugar.Candidate, fn string) (*ast.FuncDecl, error) {
	f := sk.WorkProg.Func(fn)
	if f == nil {
		return nil, fmt.Errorf("printer: no function %s", fn)
	}
	r := &resolver{sk: sk, cand: cand}
	body := r.block(f.Body)
	taken := map[string]bool{}
	for _, g := range sk.WorkProg.Globals {
		taken[g.Name] = true
	}
	for _, fd := range sk.WorkProg.Funcs {
		taken[fd.Name] = true
	}
	prettyLocals(f, body, taken)
	return &ast.FuncDecl{
		P: f.P, Generator: f.Generator, Harness: f.Harness,
		Ret: f.Ret, Name: f.Name, Params: f.Params,
		Implements: f.Implements, Body: body,
	}, nil
}

// Program renders every non-generator function of the resolved sketch.
func Program(sk *desugar.Sketch, cand desugar.Candidate) (string, error) {
	var b strings.Builder
	for _, f := range sk.WorkProg.Funcs {
		if f.Generator {
			continue
		}
		s, err := Resolve(sk, cand, f.Name)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String(), nil
}

func writeSignature(b *strings.Builder, f *ast.FuncDecl) {
	if f.Harness {
		b.WriteString("harness ")
	}
	if f.Generator {
		b.WriteString("generator ")
	}
	if f.Ret != nil {
		b.WriteString(f.Ret.String())
	} else {
		b.WriteString("void")
	}
	b.WriteString(" " + f.Name + "(")
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Type.String() + " " + p.Name)
	}
	b.WriteString(")")
	if f.Implements != "" {
		b.WriteString(" implements " + f.Implements)
	}
}

// resolver substitutes candidate choices and folds constants.
type resolver struct {
	sk   *desugar.Sketch
	cand desugar.Candidate
}

// subst replaces holes and generators in an expression.
func (r *resolver) subst(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Hole:
		if x.ID < 0 || x.ID >= len(r.sk.Holes) {
			return x
		}
		m := r.sk.Holes[x.ID]
		v := r.cand.Value(x.ID)
		switch m.Kind {
		case desugar.HoleBool:
			return &ast.BoolLit{P: x.P, Val: v != 0}
		case desugar.HoleBits:
			text := make([]byte, m.Bits)
			for i := range text {
				text[i] = '0'
				if (v>>uint(i))&1 == 1 {
					text[i] = '1'
				}
			}
			return &ast.BitsLit{P: x.P, Text: string(text)}
		default:
			return &ast.IntLit{P: x.P, Val: v}
		}
	case *ast.Regen:
		if x.ID < 0 || x.ID >= len(r.sk.Holes) {
			return x
		}
		m := r.sk.Holes[x.ID]
		return r.subst(x.Choices[r.cand.Choice(x.ID, m.Choices)])
	case *ast.Unary:
		return &ast.Unary{P: x.P, Op: x.Op, X: r.subst(x.X)}
	case *ast.Binary:
		return &ast.Binary{P: x.P, Op: x.Op, X: r.subst(x.X), Y: r.subst(x.Y)}
	case *ast.FieldExpr:
		return &ast.FieldExpr{P: x.P, X: r.subst(x.X), Name: x.Name}
	case *ast.IndexExpr:
		return &ast.IndexExpr{P: x.P, X: r.subst(x.X), Index: r.subst(x.Index)}
	case *ast.SliceExpr:
		return &ast.SliceExpr{P: x.P, X: r.subst(x.X), Start: r.subst(x.Start), Len: x.Len}
	case *ast.CallExpr:
		c := &ast.CallExpr{P: x.P, Fun: x.Fun}
		for _, a := range x.Args {
			c.Args = append(c.Args, r.subst(a))
		}
		return c
	case *ast.CastExpr:
		return &ast.CastExpr{P: x.P, Type: x.Type, X: r.subst(x.X)}
	case *ast.NewExpr:
		c := &ast.NewExpr{P: x.P, Type: x.Type, Site: x.Site}
		for _, a := range x.Args {
			c.Args = append(c.Args, r.subst(a))
		}
		return c
	}
	return e
}

// constBool folds an expression to a boolean constant if possible.
func constBool(e ast.Expr) (bool, bool) {
	v, ok := constInt(e)
	if !ok {
		return false, false
	}
	return v != 0, true
}

func constInt(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Val, true
	case *ast.BoolLit:
		if x.Val {
			return 1, true
		}
		return 0, true
	case *ast.Unary:
		v, ok := constInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case token.SUB:
			return -v, true
		}
	case *ast.Binary:
		a, ok1 := constInt(x.X)
		b, ok2 := constInt(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		toB := func(c bool) (int64, bool) {
			if c {
				return 1, true
			}
			return 0, true
		}
		switch x.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.EQ:
			return toB(a == b)
		case token.NEQ:
			return toB(a != b)
		case token.LT:
			return toB(a < b)
		case token.LEQ:
			return toB(a <= b)
		case token.GT:
			return toB(a > b)
		case token.GEQ:
			return toB(a >= b)
		case token.LAND:
			return toB(a != 0 && b != 0)
		case token.LOR:
			return toB(a != 0 || b != 0)
		}
	}
	return 0, false
}

// block resolves a block, folding constant ifs (which collapses the
// reorder encodings back to the chosen order).
func (r *resolver) block(b *ast.Block) *ast.Block {
	out := &ast.Block{P: b.P}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, r.stmt(s)...)
	}
	return out
}

func (r *resolver) stmt(s ast.Stmt) []ast.Stmt {
	switch x := s.(type) {
	case *ast.Block:
		inner := r.block(x)
		return inner.Stmts
	case *ast.DeclStmt:
		return []ast.Stmt{&ast.DeclStmt{P: x.P, Type: x.Type, Name: x.Name, Init: r.subst(x.Init)}}
	case *ast.AssignStmt:
		return []ast.Stmt{&ast.AssignStmt{P: x.P, LHS: r.subst(x.LHS), RHS: r.subst(x.RHS)}}
	case *ast.IfStmt:
		cond := r.subst(x.Cond)
		if v, ok := constBool(cond); ok {
			if v {
				return r.block(x.Then).Stmts
			}
			if x.Else != nil {
				return r.stmt(x.Else)
			}
			return nil
		}
		n := &ast.IfStmt{P: x.P, Cond: cond, Then: r.block(x.Then)}
		if x.Else != nil {
			es := r.stmt(x.Else)
			if len(es) == 1 {
				n.Else = es[0]
			} else if len(es) > 1 {
				n.Else = &ast.Block{P: x.P, Stmts: es}
			}
		}
		return []ast.Stmt{n}
	case *ast.WhileStmt:
		return []ast.Stmt{&ast.WhileStmt{P: x.P, Cond: r.subst(x.Cond), Body: r.block(x.Body)}}
	case *ast.ReturnStmt:
		return []ast.Stmt{&ast.ReturnStmt{P: x.P, Val: r.subst(x.Val)}}
	case *ast.AssertStmt:
		return []ast.Stmt{&ast.AssertStmt{P: x.P, Cond: r.subst(x.Cond)}}
	case *ast.AtomicStmt:
		n := &ast.AtomicStmt{P: x.P, Body: r.block(x.Body)}
		if x.Cond != nil {
			n.Cond = r.subst(x.Cond)
		}
		return []ast.Stmt{n}
	case *ast.ForkStmt:
		return []ast.Stmt{&ast.ForkStmt{P: x.P, Var: x.Var, N: r.subst(x.N), Body: r.block(x.Body)}}
	case *ast.LockStmt:
		return []ast.Stmt{&ast.LockStmt{P: x.P, Target: r.subst(x.Target), Unlock: x.Unlock}}
	case *ast.ExprStmt:
		return []ast.Stmt{&ast.ExprStmt{P: x.P, X: r.subst(x.X)}}
	case *ast.ReorderStmt:
		return []ast.Stmt{&ast.ReorderStmt{P: x.P, Body: r.block(x.Body)}}
	case *ast.RepeatStmt:
		return []ast.Stmt{&ast.RepeatStmt{P: x.P, Count: r.subst(x.Count), Body: first(r.stmt(x.Body))}}
	}
	return []ast.Stmt{s}
}

func first(ss []ast.Stmt) ast.Stmt {
	if len(ss) == 1 {
		return ss[0]
	}
	return &ast.Block{Stmts: ss}
}

// ------------------------------------------------------------ writing

func writeBlock(b *strings.Builder, blk *ast.Block, indent int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		writeStmt(b, s, indent+1)
	}
	writeIndent(b, indent)
	b.WriteString("}")
}

func writeIndent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("    ")
	}
}

func writeStmt(b *strings.Builder, s ast.Stmt, indent int) {
	writeIndent(b, indent)
	switch x := s.(type) {
	case *ast.Block:
		writeBlock(b, x, indent)
		b.WriteString("\n")
	case *ast.DeclStmt:
		b.WriteString(x.Type.String() + " " + x.Name)
		if x.Init != nil {
			b.WriteString(" = " + types.ExprString(x.Init))
		}
		b.WriteString(";\n")
	case *ast.AssignStmt:
		b.WriteString(types.ExprString(x.LHS) + " = " + types.ExprString(x.RHS) + ";\n")
	case *ast.IfStmt:
		b.WriteString("if (" + types.ExprString(x.Cond) + ") ")
		writeBlock(b, x.Then, indent)
		if x.Else != nil {
			b.WriteString(" else ")
			switch e := x.Else.(type) {
			case *ast.Block:
				writeBlock(b, e, indent)
			default:
				b.WriteString("{\n")
				writeStmt(b, e, indent+1)
				writeIndent(b, indent)
				b.WriteString("}")
			}
		}
		b.WriteString("\n")
	case *ast.WhileStmt:
		b.WriteString("while (" + types.ExprString(x.Cond) + ") ")
		writeBlock(b, x.Body, indent)
		b.WriteString("\n")
	case *ast.ReturnStmt:
		if x.Val != nil {
			b.WriteString("return " + types.ExprString(x.Val) + ";\n")
		} else {
			b.WriteString("return;\n")
		}
	case *ast.AssertStmt:
		b.WriteString("assert " + types.ExprString(x.Cond) + ";\n")
	case *ast.AtomicStmt:
		b.WriteString("atomic")
		if x.Cond != nil {
			b.WriteString(" (" + types.ExprString(x.Cond) + ")")
		}
		if len(x.Body.Stmts) == 0 {
			b.WriteString(";\n")
			return
		}
		b.WriteString(" ")
		writeBlock(b, x.Body, indent)
		b.WriteString("\n")
	case *ast.ForkStmt:
		b.WriteString("fork (" + x.Var + "; " + types.ExprString(x.N) + ") ")
		writeBlock(b, x.Body, indent)
		b.WriteString("\n")
	case *ast.LockStmt:
		kw := "lock"
		if x.Unlock {
			kw = "unlock"
		}
		b.WriteString(kw + "(" + types.ExprString(x.Target) + ");\n")
	case *ast.ExprStmt:
		b.WriteString(types.ExprString(x.X) + ";\n")
	case *ast.ReorderStmt:
		b.WriteString("reorder ")
		writeBlock(b, x.Body, indent)
		b.WriteString("\n")
	case *ast.RepeatStmt:
		b.WriteString("repeat (" + types.ExprString(x.Count) + ")\n")
		writeStmt(b, x.Body, indent+1)
	default:
		fmt.Fprintf(b, "/* %T */\n", s)
	}
}

// prettyLocals undoes the alpha-renaming suffixes ("tmp_1" → "tmp")
// where unambiguous, so resolved sketches read like the paper's
// figures. The resolved body is freshly built by the resolver except
// for leaf identifier nodes, so those are rebuilt before renaming.
func prettyLocals(f *ast.FuncDecl, body *ast.Block, taken map[string]bool) {
	for _, p := range f.Params {
		taken[p.Name] = true
	}
	// Collect candidate renames from declarations and fork variables.
	baseOf := func(name string) string {
		i := strings.LastIndexByte(name, '_')
		if i <= 0 {
			return ""
		}
		for _, c := range name[i+1:] {
			if c < '0' || c > '9' {
				return ""
			}
		}
		if i == len(name)-1 {
			return ""
		}
		return name[:i]
	}
	count := map[string]int{}
	var scan func(s ast.Stmt)
	scan = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.Block:
			for _, st := range x.Stmts {
				scan(st)
			}
		case *ast.DeclStmt:
			if b := baseOf(x.Name); b != "" {
				count[b]++
			}
		case *ast.ForkStmt:
			if b := baseOf(x.Var); b != "" {
				count[b]++
			}
			scan(x.Body)
		case *ast.IfStmt:
			scan(x.Then)
			scan(x.Else)
		case *ast.WhileStmt:
			scan(x.Body)
		case *ast.AtomicStmt:
			scan(x.Body)
		case *ast.ReorderStmt:
			scan(x.Body)
		case *ast.RepeatStmt:
			scan(x.Body)
		}
	}
	scan(body)
	ren := map[string]string{}
	var collect func(s ast.Stmt)
	collect = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.Block:
			for _, st := range x.Stmts {
				collect(st)
			}
		case *ast.DeclStmt:
			if b := baseOf(x.Name); b != "" && count[b] == 1 && !taken[b] {
				ren[x.Name] = b
				taken[b] = true
			}
		case *ast.ForkStmt:
			if b := baseOf(x.Var); b != "" && count[b] == 1 && !taken[b] {
				ren[x.Var] = b
				taken[b] = true
			}
			collect(x.Body)
		case *ast.IfStmt:
			collect(x.Then)
			collect(x.Else)
		case *ast.WhileStmt:
			collect(x.Body)
		case *ast.AtomicStmt:
			collect(x.Body)
		case *ast.ReorderStmt:
			collect(x.Body)
		case *ast.RepeatStmt:
			collect(x.Body)
		}
	}
	collect(body)
	if len(ren) == 0 {
		return
	}
	applyRename(body, ren)
}

// applyRename rewrites declarations and identifier uses. Identifier
// leaves may be shared with the original sketch AST, so they are
// replaced rather than mutated.
func applyRename(b *ast.Block, ren map[string]string) {
	var rewriteE func(e *ast.Expr)
	rewriteE = func(e *ast.Expr) {
		if *e == nil {
			return
		}
		switch x := (*e).(type) {
		case *ast.Ident:
			if n, ok := ren[x.Name]; ok {
				*e = &ast.Ident{P: x.P, Name: n}
			}
		case *ast.Unary:
			rewriteE(&x.X)
		case *ast.Binary:
			rewriteE(&x.X)
			rewriteE(&x.Y)
		case *ast.FieldExpr:
			rewriteE(&x.X)
		case *ast.IndexExpr:
			rewriteE(&x.X)
			rewriteE(&x.Index)
		case *ast.SliceExpr:
			rewriteE(&x.X)
			rewriteE(&x.Start)
		case *ast.CallExpr:
			for i := range x.Args {
				rewriteE(&x.Args[i])
			}
		case *ast.CastExpr:
			rewriteE(&x.X)
		case *ast.NewExpr:
			for i := range x.Args {
				rewriteE(&x.Args[i])
			}
		case *ast.Regen:
			for i := range x.Choices {
				rewriteE(&x.Choices[i])
			}
		}
	}
	var rewriteS func(s ast.Stmt)
	rewriteS = func(s ast.Stmt) {
		switch x := s.(type) {
		case nil:
		case *ast.Block:
			for _, st := range x.Stmts {
				rewriteS(st)
			}
		case *ast.DeclStmt:
			if n, ok := ren[x.Name]; ok {
				x.Name = n
			}
			rewriteE(&x.Init)
		case *ast.AssignStmt:
			rewriteE(&x.LHS)
			rewriteE(&x.RHS)
		case *ast.IfStmt:
			rewriteE(&x.Cond)
			rewriteS(x.Then)
			rewriteS(x.Else)
		case *ast.WhileStmt:
			rewriteE(&x.Cond)
			rewriteS(x.Body)
		case *ast.ReturnStmt:
			rewriteE(&x.Val)
		case *ast.AssertStmt:
			rewriteE(&x.Cond)
		case *ast.AtomicStmt:
			if x.Cond != nil {
				rewriteE(&x.Cond)
			}
			rewriteS(x.Body)
		case *ast.ForkStmt:
			if n, ok := ren[x.Var]; ok {
				x.Var = n
			}
			rewriteE(&x.N)
			rewriteS(x.Body)
		case *ast.ReorderStmt:
			rewriteS(x.Body)
		case *ast.RepeatStmt:
			rewriteE(&x.Count)
			rewriteS(x.Body)
		case *ast.LockStmt:
			rewriteE(&x.Target)
		case *ast.ExprStmt:
			rewriteE(&x.X)
		}
	}
	rewriteS(b)
}
