package mc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"psketch/internal/interp"
	"psketch/internal/state"
)

// stripedSet is the shared visited-state set of the parallel search: 64
// independently locked map shards, indexed by the low bits of the state
// fingerprint, so workers contend only when they hash into the same
// stripe.
type stripedSet struct {
	stripes [64]struct {
		mu sync.Mutex
		m  map[[16]byte]bool
	}
}

func newStripedSet() *stripedSet {
	s := &stripedSet{}
	for i := range s.stripes {
		s.stripes[i].m = map[[16]byte]bool{}
	}
	return s
}

// visit marks the key visited, reporting whether this call claimed it
// first (exactly one worker expands each state).
func (s *stripedSet) visit(k [16]byte) bool {
	st := &s.stripes[k[0]&63]
	st.mu.Lock()
	claimed := !st.m[k]
	if claimed {
		st.m[k] = true
	}
	st.mu.Unlock()
	return claimed
}

// pshared is the state the parallel search workers share: the visited
// set, the global state/transition counters, the collected traces, and
// the cancellation flag that stops every shard once the trace budget is
// met (or an error occurred).
type pshared struct {
	visited   *stripedSet
	states    atomic.Int64
	trans     atomic.Int64
	maxStates int
	maxTraces int
	cancel    atomic.Bool

	mu     sync.Mutex
	traces []*Trace
	err    error
}

// record stores a counterexample (up to the trace budget) and cancels
// the search when the budget is met.
func (sh *pshared) record(tr *Trace) {
	sh.mu.Lock()
	if len(sh.traces) < sh.maxTraces {
		sh.traces = append(sh.traces, tr)
	}
	full := len(sh.traces) >= sh.maxTraces
	sh.mu.Unlock()
	if full {
		sh.cancel.Store(true)
	}
}

// fail records the first error and cancels all workers.
func (sh *pshared) fail(err error) {
	sh.mu.Lock()
	if sh.err == nil {
		sh.err = err
	}
	sh.mu.Unlock()
	sh.cancel.Store(true)
}

// pworker is one parallel search worker: the sequential checker's
// normalization/status/trace helpers (via embedding) plus dfs/expand
// variants that go through the shared visited set and counters.
type pworker struct {
	checker
	sh       *pshared
	expanded int64 // states this worker claimed
}

func (w *pworker) dfs(st *state.State, path *[]Event) error {
	if w.sh.cancel.Load() {
		return nil
	}
	if t, f := w.normalize(st, path); f != nil {
		w.sh.record(w.failTrace(*path, f, t))
		return nil
	}
	return w.expand(st, path)
}

func (w *pworker) expand(st *state.State, path *[]Event) error {
	if !w.sh.visited.visit(st.Key()) {
		return nil
	}
	w.expanded++
	// The DFS is CPU-bound; when workers outnumber cores, a shard that
	// would find a counterexample quickly can starve behind a large
	// benign shard for a full preemption quantum (~10ms). Yielding
	// every so often bounds that latency and, with it, how long a
	// cancelled search keeps burning cycles.
	if w.expanded&255 == 0 {
		runtime.Gosched()
	}
	if w.sh.states.Add(1) > int64(w.sh.maxStates) {
		return fmt.Errorf("mc: state space exceeds %d states", w.sh.maxStates)
	}

	unfinished, enabled, blocked, tr := w.status(st)
	if tr != nil {
		tr.Events = append(tr.Events, *path...)
		w.sh.record(tr)
		return nil
	}
	if unfinished == 0 {
		scratch := st.Clone()
		if f := w.runSequential(scratch, w.p.Epilogue); f != nil {
			w.sh.record(w.failTraceEpilogue(*path, f))
		}
		return nil
	}
	if len(enabled) == 0 {
		f := &interp.Failure{Kind: interp.FailDeadlock, Pos: w.p.Threads[blocked[0].Thread].Steps[blocked[0].Step].Pos}
		tr := w.failTrace(*path, f, -1)
		tr.Deadlocked = blocked
		w.sh.record(tr)
		return nil
	}

	for _, t := range enabled {
		if w.sh.cancel.Load() {
			return nil
		}
		child := st.Clone()
		seq := w.p.Threads[t]
		pc := int(child.PCs[t])
		step := seq.Steps[pc]
		ctx := interp.NewCtx(w.l, child, seq, w.cand)
		w.sh.trans.Add(1)
		*path = append(*path, Event{Thread: t, Step: pc})
		if f := ctx.ExecBody(step); f != nil {
			w.sh.record(w.failTrace(*path, f, t))
			*path = (*path)[:len(*path)-1]
			continue
		}
		child.PCs[t] = int32(pc + 1)
		mark := len(*path)
		if err := w.dfs(child, path); err != nil {
			return err
		}
		*path = (*path)[:mark-1]
	}
	return nil
}

// checkParallel runs the sharded search: the root state is normalized
// and expanded on the caller's goroutine, then each enabled first event
// becomes a shard, and Parallelism workers drain the shard queue
// against the shared visited set.
func (m *checker) checkParallel(st *state.State) (*Result, error) {
	sh := &pshared{visited: newStripedSet(), maxStates: m.opts.MaxStates, maxTraces: m.opts.MaxTraces}
	finish := func(workers int, perWorker []int) *Result {
		res := &Result{
			OK:     len(sh.traces) == 0,
			Traces: sh.traces,
			States: int(sh.states.Load()),
			Trans:  int(sh.trans.Load()),

			Workers:      workers,
			WorkerStates: perWorker,
		}
		if !res.OK {
			res.Trace = sh.traces[0]
		}
		return res
	}

	// Root handling mirrors the sequential dfs+expand exactly.
	var prefix []Event
	if t, f := m.normalize(st, &prefix); f != nil {
		sh.record(m.failTrace(prefix, f, t))
		return finish(0, nil), nil
	}
	sh.visited.visit(st.Key())
	sh.states.Add(1)
	unfinished, enabled, blocked, tr := m.status(st)
	switch {
	case tr != nil:
		tr.Events = append(tr.Events, prefix...)
		sh.record(tr)
		return finish(0, nil), nil
	case unfinished == 0:
		scratch := st.Clone()
		if f := m.runSequential(scratch, m.p.Epilogue); f != nil {
			sh.record(m.failTraceEpilogue(prefix, f))
		}
		return finish(0, nil), nil
	case len(enabled) == 0:
		f := &interp.Failure{Kind: interp.FailDeadlock, Pos: m.p.Threads[blocked[0].Thread].Steps[blocked[0].Step].Pos}
		dtr := m.failTrace(prefix, f, -1)
		dtr.Deadlocked = blocked
		sh.record(dtr)
		return finish(0, nil), nil
	}

	// One shard per enabled first event.
	type shard struct {
		st   *state.State
		path []Event
	}
	var shards []shard
	for _, t := range enabled {
		child := st.Clone()
		seq := m.p.Threads[t]
		pc := int(child.PCs[t])
		step := seq.Steps[pc]
		ctx := interp.NewCtx(m.l, child, seq, m.cand)
		sh.trans.Add(1)
		spath := append(append([]Event(nil), prefix...), Event{Thread: t, Step: pc})
		if f := ctx.ExecBody(step); f != nil {
			sh.record(m.failTrace(spath, f, t))
			continue
		}
		child.PCs[t] = int32(pc + 1)
		shards = append(shards, shard{child, spath})
	}

	workers := m.opts.Parallelism
	if workers > len(shards) {
		workers = len(shards)
	}
	perWorker := make([]int, workers)
	if workers > 0 && !sh.cancel.Load() {
		queue := make(chan shard, len(shards))
		for _, s := range shards {
			queue <- s
		}
		close(queue)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				w := &pworker{checker: checker{l: m.l, p: m.p, cand: m.cand, opts: m.opts}, sh: sh}
				for s := range queue {
					if sh.cancel.Load() {
						break
					}
					path := s.path
					if err := w.dfs(s.st, &path); err != nil {
						sh.fail(err)
						break
					}
				}
				perWorker[id] = int(w.expanded)
			}(i)
		}
		wg.Wait()
	}
	if sh.err != nil {
		return nil, sh.err
	}
	return finish(workers, perWorker), nil
}
