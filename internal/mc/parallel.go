package mc

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"psketch/internal/interp"
	"psketch/internal/obs"
	"psketch/internal/state"
)

// stripedSet is the shared visited-state table of the parallel search:
// 64 independently locked map shards, indexed by the low bits of the
// state fingerprint, so workers contend only when they hash into the
// same stripe. Each entry carries the same bookkeeping as the
// sequential fpTable: the done-mask of claimed transitions and the
// stored persistent mask (pmaskKnown-tagged once computed).
type stripedSet struct {
	stripes [64]struct {
		mu sync.Mutex
		m  map[[16]byte]*pentry
	}
}

type pentry struct {
	done uint64
	pmw  uint64 // pmaskKnown | persistent mask, 0 while uncomputed
}

func newStripedSet() *stripedSet {
	s := &stripedSet{}
	for i := range s.stripes {
		s.stripes[i].m = map[[16]byte]*pentry{}
	}
	return s
}

// arrive registers the key, reporting whether this call created the
// entry (exactly one worker counts and classifies each state) plus a
// snapshot of the done mask and stored pmask word.
func (s *stripedSet) arrive(k [16]byte) (fresh bool, done, pmw uint64) {
	st := &s.stripes[k[0]&63]
	st.mu.Lock()
	e := st.m[k]
	if e == nil {
		e = &pentry{}
		st.m[k] = e
		fresh = true
	}
	done, pmw = e.done, e.pmw
	st.mu.Unlock()
	return fresh, done, pmw
}

// claim atomically takes the not-yet-done subset of want, marks it
// done, and stores the pmask word if the entry has none yet. The caller
// explores exactly the returned transitions.
func (s *stripedSet) claim(k [16]byte, pmw, want uint64) uint64 {
	st := &s.stripes[k[0]&63]
	st.mu.Lock()
	e := st.m[k]
	todo := want &^ e.done
	e.done |= todo
	if e.pmw == 0 {
		e.pmw = pmw
	}
	st.mu.Unlock()
	return todo
}

// pshared is the state the parallel search workers share: the visited
// set, the global state/transition counters, the collected traces, and
// the cancellation flag that stops every shard once the trace budget is
// met (or an error occurred).
type pshared struct {
	visited   *stripedSet
	states    atomic.Int64
	trans     atomic.Int64
	maxStates int
	maxTraces int
	cancel    atomic.Bool

	mu     sync.Mutex
	traces []*Trace
	err    error
}

// record stores a counterexample (up to the trace budget) and cancels
// the search when the budget is met.
func (sh *pshared) record(tr *Trace) {
	sh.mu.Lock()
	if len(sh.traces) < sh.maxTraces {
		sh.traces = append(sh.traces, tr)
	}
	full := len(sh.traces) >= sh.maxTraces
	sh.mu.Unlock()
	if full {
		sh.cancel.Store(true)
	}
}

// fail records the first error and cancels all workers.
func (sh *pshared) fail(err error) {
	sh.mu.Lock()
	if sh.err == nil {
		sh.err = err
	}
	sh.mu.Unlock()
	sh.cancel.Store(true)
}

// pworker is one parallel search worker: the sequential checker's
// normalization/status/trace helpers (via embedding, with its own
// evaluation contexts and state freelist) plus dfs/expand variants that
// go through the shared visited table and counters.
type pworker struct {
	checker
	sh       *pshared
	expanded int64 // states this worker claimed first
}

func (w *pworker) dfsChild(st *state.State, t int, sleep uint64, path *[]Event, h1, h2 uint64) error {
	if w.sh.cancel.Load() {
		return nil
	}
	b1, b2 := w.hz.block(st, t)
	if f := w.advance(st, t, path); f != nil {
		w.sh.record(w.failTrace(*path, f, t))
		return nil
	}
	a1, a2 := w.hz.block(st, t)
	return w.expand(st, sleep, path, h1^b1^a1, h2^b2^a2)
}

func (w *pworker) expand(st *state.State, sleep uint64, path *[]Event, h1, h2 uint64) error {
	if w.opts.Cancel != nil && w.opts.Cancel.Load() {
		// Route through fail so checkParallel reports ErrCanceled (the
		// partial traces collected so far are not a verdict).
		w.sh.fail(ErrCanceled)
		return nil
	}
	if debugHash {
		if f1, f2 := w.hz.full(st); f1 != h1 || f2 != h2 {
			panic("mc: incremental fingerprint diverged from full rehash")
		}
	}
	ch1, ch2 := h1, h2
	var act *symElem
	if w.sym != nil {
		ch1, ch2, act = w.sym.canonKey(st, h1, h2)
	}
	k := key16(ch1, ch2)
	sleepC := symFwd(sleep, act)
	fresh, done, pmw := w.sh.visited.arrive(k)
	if !fresh && act != nil {
		w.orbitHits++
	}
	if !fresh && pmw&pmaskKnown != 0 && (pmw&^pmaskKnown)&^sleepC&^done == 0 {
		return nil // nothing new to explore here
	}
	var pmask uint64
	if pmw&pmaskKnown != 0 {
		pmask = pmw &^ pmaskKnown
	} else {
		// The persistent mask depends only on the state (and the fixed
		// candidate), so racing workers that compute it concurrently
		// agree on the value; claim() keeps the first stored word.
		unfinished, enabled, unfin, tr := w.statusMask(st)
		if fresh {
			w.expanded++
			// The DFS is CPU-bound; when workers outnumber cores, a
			// shard that would find a counterexample quickly can starve
			// behind a large benign shard for a full preemption quantum
			// (~10ms). Yielding every so often bounds that latency and,
			// with it, how long a cancelled search keeps burning cycles.
			if w.expanded&255 == 0 {
				runtime.Gosched()
			}
			if w.sh.states.Add(1) > int64(w.sh.maxStates) {
				return fmt.Errorf("mc: state space exceeds %d states", w.sh.maxStates)
			}
			switch {
			case tr != nil:
				tr.Events = append(tr.Events, *path...)
				w.sh.record(tr)
			case unfinished == 0:
				if f := w.runSequential(w.scratchFrom(st), w.p.Epilogue); f != nil {
					w.sh.record(w.failTraceEpilogue(*path, f))
				}
			case enabled == 0:
				blocked := w.blockedEvents(st, unfin)
				f := &interp.Failure{Kind: interp.FailDeadlock, Pos: w.p.Threads[blocked[0].Thread].Steps[blocked[0].Step].Pos}
				dtr := w.failTrace(*path, f, -1)
				dtr.Deadlocked = blocked
				w.sh.record(dtr)
			default:
				local := enabled
				if w.por {
					local = w.pt.persistentSet(st, enabled, unfin)
					w.porPruned += int64(bits.OnesCount64(enabled &^ local))
				}
				pmask = symFwd(local, act)
			}
		} else if tr == nil && unfinished > 0 && enabled != 0 {
			// A racing revisit before the first arriver stored its
			// mask: recompute and claim what we can (any valid
			// persistent set is sound; claim keeps the first stored).
			local := enabled
			if w.por {
				local = w.pt.persistentSet(st, enabled, unfin)
			}
			pmask = symFwd(local, act)
		}
	}
	w.sleepSkips += int64(bits.OnesCount64(pmask & sleepC))
	todoC := w.sh.visited.claim(k, pmaskKnown|pmask, pmask&^sleepC)
	if todoC == 0 {
		return nil
	}
	todo := symInv(todoC, act)
	single := todo&(todo-1) == 0
	explored := uint64(0)
	for work := todo; work != 0; {
		t := bits.TrailingZeros64(work)
		work &^= 1 << uint(t)
		if w.sh.cancel.Load() {
			return nil
		}
		var cs uint64
		if w.por {
			cs = w.pt.childSleep(st, sleep|explored, t)
		}
		explored |= 1 << uint(t)
		child := st
		if !single {
			child = w.cloneState(st)
		}
		seq := w.p.Threads[t]
		pc := int(child.PCs[t])
		step := seq.Steps[pc]
		ctx := w.ctxs[t]
		ctx.Reset(child, seq)
		w.sh.trans.Add(1)
		*path = append(*path, Event{Thread: t, Step: pc})
		preB1, preB2 := w.hz.block(child, t)
		preS1, preS2 := w.hz.sharedW(child, t, pc)
		if f := ctx.ExecBody(step); f != nil {
			w.sh.record(w.failTrace(*path, f, t))
			*path = (*path)[:len(*path)-1]
			if !single {
				w.release(child)
			}
			continue
		}
		child.PCs[t] = int32(pc + 1)
		postS1, postS2 := w.hz.sharedW(child, t, pc)
		postB1, postB2 := w.hz.block(child, t)
		mark := len(*path)
		err := w.dfsChild(child, t, cs, path,
			h1^preB1^postB1^preS1^postS1, h2^preB2^postB2^preS2^postS2)
		if !single {
			w.release(child)
		}
		if err != nil {
			return err
		}
		*path = (*path)[:mark-1]
	}
	return nil
}

// checkParallel runs the sharded search: the root state is normalized
// and expanded on the caller's goroutine, then each member of the
// root's persistent set becomes a shard (seeded with the sleep set its
// sequential sibling order implies), and Parallelism workers drain the
// shard queue against the shared visited table.
func (m *checker) checkParallel(st *state.State) (*Result, error) {
	sh := &pshared{visited: newStripedSet(), maxStates: m.opts.MaxStates, maxTraces: m.opts.MaxTraces}
	m.pvisited = sh.visited
	finish := func(workers int, perWorker []int) *Result {
		res := &Result{
			OK:     len(sh.traces) == 0,
			Traces: sh.traces,
			States: int(sh.states.Load()),
			Trans:  int(sh.trans.Load()),

			Workers:      workers,
			WorkerStates: perWorker,
		}
		if !res.OK {
			res.Trace = sh.traces[0]
		}
		return res
	}

	// Root handling mirrors the sequential dfs+expand exactly.
	var prefix []Event
	if t, f := m.normalize(st, &prefix); f != nil {
		sh.record(m.failTrace(prefix, f, t))
		return finish(0, nil), nil
	}
	rootH1, rootH2 := m.hz.full(st)
	rch1, rch2 := rootH1, rootH2
	var ract *symElem
	if m.sym != nil {
		rch1, rch2, ract = m.sym.canonKey(st, rootH1, rootH2)
	}
	rootKey := key16(rch1, rch2)
	sh.visited.arrive(rootKey)
	sh.states.Add(1)
	unfinished, enabled, unfin, tr := m.statusMask(st)
	switch {
	case tr != nil:
		tr.Events = append(tr.Events, prefix...)
		sh.record(tr)
		return finish(0, nil), nil
	case unfinished == 0:
		if f := m.runSequential(m.scratchFrom(st), m.p.Epilogue); f != nil {
			sh.record(m.failTraceEpilogue(prefix, f))
		}
		return finish(0, nil), nil
	case enabled == 0:
		blocked := m.blockedEvents(st, unfin)
		f := &interp.Failure{Kind: interp.FailDeadlock, Pos: m.p.Threads[blocked[0].Thread].Steps[blocked[0].Step].Pos}
		dtr := m.failTrace(prefix, f, -1)
		dtr.Deadlocked = blocked
		sh.record(dtr)
		return finish(0, nil), nil
	}
	pmask := enabled
	if m.por {
		pmask = m.pt.persistentSet(st, enabled, unfin)
		m.porPruned += int64(bits.OnesCount64(enabled &^ pmask))
	}
	sh.visited.claim(rootKey, pmaskKnown|symFwd(pmask, ract), symFwd(pmask, ract))

	// One shard per member of the root persistent set, each seeded with
	// the sleep set the sequential sibling order would give it.
	type shard struct {
		st     *state.State
		path   []Event
		t      int
		sleep  uint64
		h1, h2 uint64
	}
	var shards []shard
	explored := uint64(0)
	for work := pmask; work != 0; {
		t := bits.TrailingZeros64(work)
		work &^= 1 << uint(t)
		var cs uint64
		if m.por {
			cs = m.pt.childSleep(st, explored, t)
		}
		explored |= 1 << uint(t)
		child := st.Clone()
		seq := m.p.Threads[t]
		pc := int(child.PCs[t])
		step := seq.Steps[pc]
		ctx := m.ctxs[t]
		ctx.Reset(child, seq)
		sh.trans.Add(1)
		spath := append(append([]Event(nil), prefix...), Event{Thread: t, Step: pc})
		if f := ctx.ExecBody(step); f != nil {
			sh.record(m.failTrace(spath, f, t))
			continue
		}
		child.PCs[t] = int32(pc + 1)
		sh1, sh2 := m.hz.full(child)
		shards = append(shards, shard{child, spath, t, cs, sh1, sh2})
	}

	workers := m.opts.Parallelism
	if workers > len(shards) {
		workers = len(shards)
	}
	perWorker := make([]int, workers)
	perPruned := make([]int64, workers)
	perSleep := make([]int64, workers)
	perOrbit := make([]int64, workers)
	if workers > 0 && !sh.cancel.Load() {
		queue := make(chan shard, len(shards))
		for _, s := range shards {
			queue <- s
		}
		close(queue)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				wsp := m.opts.Tracer.Start("mc.worker", m.span.ID())
				w := &pworker{checker: checker{l: m.l, p: m.p, cand: m.cand, opts: m.opts, por: m.por, pt: m.pt, hz: m.hz, sym: m.sym}, sh: sh}
				w.initEval()
				for s := range queue {
					if sh.cancel.Load() {
						break
					}
					path := s.path
					if err := w.dfsChild(s.st, s.t, s.sleep, &path, s.h1, s.h2); err != nil {
						sh.fail(err)
						break
					}
				}
				perWorker[id] = int(w.expanded)
				perPruned[id] = w.porPruned
				perSleep[id] = w.sleepSkips
				perOrbit[id] = w.orbitHits
				if wsp.Active() {
					wsp.End(obs.Int("worker", int64(id)),
						obs.Int("states", w.expanded),
						obs.Int("por_pruned", w.porPruned),
						obs.Int("sleep_skips", w.sleepSkips))
				}
			}(i)
		}
		wg.Wait()
	}
	// Fold the workers' POR counters into the parent checker so the
	// mc.check span reports whole-search totals.
	for i := 0; i < workers; i++ {
		m.porPruned += perPruned[i]
		m.sleepSkips += perSleep[i]
		m.orbitHits += perOrbit[i]
	}
	if sh.err != nil {
		return nil, sh.err
	}
	return finish(workers, perWorker), nil
}
