package mc

import (
	"math/bits"

	"psketch/internal/state"
)

// This file implements the checker's incremental state hashing. The
// visited-set identity of a state is a 128-bit Zobrist-style
// fingerprint: two independent 64-bit streams, each the XOR over all
// cells of mix(cell, value) plus one mix(pcSlot, pc) per thread. XOR
// composition is what makes the hash incremental — executing a step of
// thread t touches only the step's written shared cells (known from
// the POR footprints, which over-approximate soundly: XORing an
// unchanged cell out and back in cancels) and thread t's local block,
// so the successor's hash is the parent's hash XOR a small delta
// instead of a full-vector rehash. It is also what makes symmetry
// canonicalization affordable: applying a thread permutation changes
// only the moved cells' contributions, so the orbit-minimal key is a
// min over per-element deltas (see symmetry.go).

// Two fixed seeds give two independent streams; a collision must happen
// in both simultaneously (hash compaction, as in SPIN).
const (
	zobSeed1 = 0x9e3779b97f4a7c15
	zobSeed2 = 0xc2b2ae3d27d4eb4f
)

// zmix is the splitmix64 finalizer over (seed, cell, value). It is the
// sole mixing primitive of both streams.
func zmix(seed uint64, cell int, val int32) uint64 {
	x := seed ^ (uint64(cell)+1)*0x9e3779b97f4a7c15 ^ uint64(uint32(val))*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hasher precomputes the per-thread layout slices the incremental
// updates need: each thread's contiguous local-cell block and, per
// step, the flattened list of shared cells the step may write.
type hasher struct {
	size      int // value cells; PC t hashes as pseudo-cell size+t
	sharedEnd int

	blockLo, blockHi []int // per thread: local cell range [lo,hi)

	// wcells[t][pc] lists the shared cells step pc of thread t may
	// write; nil with wall[t][pc] set means the step was widened to
	// "may write anything" and the delta rescans all shared cells.
	wcells [][][]int32
	wall   [][]bool
}

// threadBlocks returns each forked thread's contiguous local-cell
// range [lo,hi) in the layout (lo == hi for threads without locals).
func threadBlocks(l *state.Layout) (lo, hi []int) {
	p := l.Prog
	lo = make([]int, len(p.Threads))
	hi = make([]int, len(p.Threads))
	for t, seq := range p.Threads {
		if len(seq.Locals) == 0 {
			continue
		}
		lo[t] = l.LocalOff(seq, 0)
		last := len(seq.Locals) - 1
		n := 1
		if seq.Locals[last].Type.IsArray() {
			n = seq.Locals[last].Type.Len
		}
		hi[t] = l.LocalOff(seq, last) + n
	}
	return lo, hi
}

func newHasher(l *state.Layout, pt *porTables) *hasher {
	p := l.Prog
	h := &hasher{
		size:      l.Size,
		sharedEnd: l.SharedCells(),
		wcells:    make([][][]int32, len(p.Threads)),
		wall:      make([][]bool, len(p.Threads)),
	}
	h.blockLo, h.blockHi = threadBlocks(l)
	for t := range p.Threads {
		steps := pt.cur[t]
		h.wcells[t] = make([][]int32, len(steps))
		h.wall[t] = make([]bool, len(steps))
		for pc, fp := range steps {
			var cells []int32
			for w := 0; w < len(fp.w); w++ {
				for b := fp.w[w]; b != 0; b &= b - 1 {
					c := w*64 + bits.TrailingZeros64(b)
					if c >= h.sharedEnd {
						break
					}
					cells = append(cells, int32(c))
				}
			}
			if len(cells) >= h.sharedEnd {
				h.wall[t][pc] = true
			} else {
				h.wcells[t][pc] = cells
			}
		}
	}
	return h
}

// full computes the fingerprint of st from scratch (used for the root
// and for cross-checking the incremental updates in tests).
func (h *hasher) full(st *state.State) (uint64, uint64) {
	var h1, h2 uint64
	for c, v := range st.Cells {
		h1 ^= zmix(zobSeed1, c, v)
		h2 ^= zmix(zobSeed2, c, v)
	}
	for t, pc := range st.PCs {
		h1 ^= zmix(zobSeed1, h.size+t, pc)
		h2 ^= zmix(zobSeed2, h.size+t, pc)
	}
	return h1, h2
}

// block XORs thread t's contribution: its local cells and its PC.
func (h *hasher) block(st *state.State, t int) (uint64, uint64) {
	var h1, h2 uint64
	for c := h.blockLo[t]; c < h.blockHi[t]; c++ {
		v := st.Cells[c]
		h1 ^= zmix(zobSeed1, c, v)
		h2 ^= zmix(zobSeed2, c, v)
	}
	pc := st.PCs[t]
	h1 ^= zmix(zobSeed1, h.size+t, pc)
	h2 ^= zmix(zobSeed2, h.size+t, pc)
	return h1, h2
}

// sharedW XORs the contribution of the shared cells step pc of thread t
// may write. Called before and after executing the step, the XOR of the
// two results is the step's shared-state hash delta.
func (h *hasher) sharedW(st *state.State, t, pc int) (uint64, uint64) {
	var h1, h2 uint64
	if h.wall[t][pc] {
		for c := 0; c < h.sharedEnd; c++ {
			v := st.Cells[c]
			h1 ^= zmix(zobSeed1, c, v)
			h2 ^= zmix(zobSeed2, c, v)
		}
		return h1, h2
	}
	for _, c := range h.wcells[t][pc] {
		v := st.Cells[c]
		h1 ^= zmix(zobSeed1, int(c), v)
		h2 ^= zmix(zobSeed2, int(c), v)
	}
	return h1, h2
}

// key16 packs the two streams into the visited table's byte key.
func key16(h1, h2 uint64) [16]byte {
	var k [16]byte
	for i := 0; i < 8; i++ {
		k[i] = byte(h1 >> (8 * i))
		k[8+i] = byte(h2 >> (8 * i))
	}
	return k
}
