package mc

import "psketch/internal/state"

// This file implements SPIN-style state compression for the visited
// set, selected by Options.Compress.
//
// "collapse" (SPIN's COLLAPSE) interns each state component — the
// shared cells as one fragment, each thread's local block plus its
// program counter as another — into per-component tables, and keys the
// visited set on the small tuple of component ids. Repeated components
// (threads parked at the same point, a shared heap most interleavings
// do not touch) are stored once, so memory scales with the number of
// distinct components instead of distinct full vectors. Unlike the
// default fingerprint table this is exact: it compares full state
// contents, so it doubles as a hash-collision cross-check for the
// default mode in tests.
//
// "bitstate" (SPIN's bitstate hashing / supertrace) stores no state at
// all: two bits of a large bit array, addressed by the two fingerprint
// streams, stand in for each visited state. A state is taken as
// visited when both bits are already set, so hash aliasing can silently
// prune unexplored states: verdicts lose their completeness guarantee
// (a reported counterexample is still a real, replayable schedule).
// It is strictly opt-in and meant for memory-bound exploratory runs.

// colEntry carries the same per-state bookkeeping as fpTable.
type colEntry struct {
	done uint64
	pm   uint64
}

// collapseTab is the collapse-compression visited set.
type collapseTab struct {
	sharedEnd        int
	blockLo, blockHi []int

	shared  map[string]uint32   // shared-fragment bytes -> id
	blocks  []map[string]uint32 // per thread: block bytes -> id
	entries map[string]*colEntry

	interned uint64 // bytes held by interned fragment keys
	frag     []byte // scratch
	key      []byte // scratch
}

func newCollapse(l *state.Layout) *collapseTab {
	c := &collapseTab{
		sharedEnd: l.SharedCells(),
		shared:    map[string]uint32{},
		entries:   map[string]*colEntry{},
	}
	c.blockLo, c.blockHi = threadBlocks(l)
	c.blocks = make([]map[string]uint32, len(c.blockLo))
	for t := range c.blocks {
		c.blocks[t] = map[string]uint32{}
	}
	return c
}

func (c *collapseTab) intern(m map[string]uint32, b []byte) uint32 {
	if id, ok := m[string(b)]; ok {
		return id
	}
	id := uint32(len(m))
	m[string(b)] = id
	c.interned += uint64(len(b)) + 16 // key bytes + string header
	return id
}

func appendCells(b []byte, cells []int32) []byte {
	for _, v := range cells {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return b
}

// slot finds or inserts the state (which must already be canonical if
// symmetry is on), returning its bookkeeping entry and whether it was
// inserted now. Entries are stable pointers.
func (c *collapseTab) slot(st *state.State) (*colEntry, bool) {
	c.key = c.key[:0]
	c.frag = appendCells(c.frag[:0], st.Cells[:c.sharedEnd])
	id := c.intern(c.shared, c.frag)
	c.key = append(c.key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	for t := range c.blocks {
		c.frag = appendCells(c.frag[:0], st.Cells[c.blockLo[t]:c.blockHi[t]])
		pc := st.PCs[t]
		c.frag = append(c.frag, byte(pc), byte(pc>>8))
		id := c.intern(c.blocks[t], c.frag)
		c.key = append(c.key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	if e, ok := c.entries[string(c.key)]; ok {
		return e, false
	}
	e := &colEntry{}
	c.entries[string(c.key)] = e
	return e, true
}

// bytes estimates the table's live memory: interned fragments plus the
// id-tuple index (tuple key, entry, and map overhead per state).
func (c *collapseTab) bytes() uint64 {
	keyLen := uint64(4 * (1 + len(c.blocks)))
	return c.interned + uint64(len(c.entries))*(keyLen+16+32)
}

// bitstate is the bitstate-hashing visited set: nbits is a power of
// two.
type bitstate struct {
	words []uint64
	nbits uint64
}

// newBitstate sizes the array at ~64 bits per budgeted state (SPIN's
// rule of thumb for a low false-positive rate), clamped to [8 MiB,
// 512 MiB].
func newBitstate(maxStates int) *bitstate {
	nbits := uint64(1) << 26
	for nbits < uint64(maxStates)*64 && nbits < 1<<32 {
		nbits <<= 1
	}
	return &bitstate{words: make([]uint64, nbits/64), nbits: nbits}
}

// visit marks the state's two bits and reports whether it was fresh
// (either bit previously clear).
func (b *bitstate) visit(h1, h2 uint64) bool {
	i1, i2 := h1&(b.nbits-1), h2&(b.nbits-1)
	w1, m1 := i1>>6, uint64(1)<<(i1&63)
	w2, m2 := i2>>6, uint64(1)<<(i2&63)
	seen := b.words[w1]&m1 != 0 && b.words[w2]&m2 != 0
	b.words[w1] |= m1
	b.words[w2] |= m2
	return !seen
}

func (b *bitstate) bytes() uint64 { return uint64(len(b.words)) * 8 }

// bytes estimates the fingerprint table's live memory.
func (t *fpTable) bytes() uint64 {
	return uint64(len(t.keys)) * (16 + 8 + 8 + 1)
}

// bytes estimates the parallel striped set's live memory (key, entry,
// and per-bucket map overhead).
func (s *stripedSet) bytes() uint64 {
	var n uint64
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
		n += uint64(len(s.stripes[i].m)) * (16 + 16 + 16)
		s.stripes[i].mu.Unlock()
	}
	return n
}
