package mc

import (
	"encoding/binary"
	"math/bits"

	"psketch/internal/ir"
	"psketch/internal/state"
)

// This file implements the checker's partial-order reduction: persistent
// sets choose which enabled threads to expand at each state, sleep sets
// prune transitions whose interleavings were already covered, and an
// open-addressed fingerprint table carries the per-state bookkeeping
// (which transitions were explored, which persistent set was chosen).
//
// Independence comes from the static footprint analysis in internal/ir:
// two transitions are independent when their shared-cell footprints do
// not conflict (write/write or write/read overlap). Conflict-freedom
// implies they commute and neither can enable or disable the other
// (blocking conditions read only footprint cells, guards are
// thread-local by construction).
//
// Soundness of the selective search: the interleaving space is a finite
// DAG (program counters strictly increase), failures and terminal
// states are sinks, and the search explores a persistent set at every
// expanded state — so every deadlock, every terminal state, and (up to
// commuting reorderings, which cannot change the failing step's effect)
// every failing transition remains reachable. Sleep sets only skip
// transitions whose successor subtree is explored from a sibling, and
// the per-state done-mask makes revisits through other paths explore
// exactly the transitions not yet claimed.

// fpBits is a bitset over the layout's shared cells.
type fpBits []uint64

func newFpBits(n int) fpBits { return make(fpBits, (n+63)/64) }

func (b fpBits) set(i int) { b[i>>6] |= 1 << uint(i&63) }

func (b fpBits) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b fpBits) setRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		b.set(i)
	}
}

func (b fpBits) setAll() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

func (b fpBits) or(o fpBits) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b fpBits) intersects(o fpBits) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// stepFP is one transition's flattened footprint.
type stepFP struct {
	r, w fpBits
}

// fpConflict reports whether two footprints are dependent: one writes a
// cell the other reads or writes.
func fpConflict(a, b stepFP) bool {
	return a.w.intersects(b.r) || a.w.intersects(b.w) || a.r.intersects(b.w)
}

// porTables holds the per-candidate footprint data: cur[t][pc] is the
// footprint of thread t's step at pc, fut[t][pc] the union over all its
// steps from pc on (fut[t][len] is empty — a finished thread conflicts
// with nothing).
type porTables struct {
	cur [][]stepFP
	fut [][]stepFP
}

// buildPOR flattens the symbolic footprints onto the layout's shared
// cells and precomputes the future (suffix) unions.
func buildPOR(l *state.Layout, fps [][]ir.Footprint) *porTables {
	n := l.SharedCells()
	p := l.Prog
	flatten := func(locs []ir.Loc, all bool) fpBits {
		b := newFpBits(n)
		if all {
			b.setAll()
			return b
		}
		for _, lc := range locs {
			switch {
			case lc.Global >= 0:
				off := l.GlobalOff(lc.Global)
				b.setRange(off+lc.Lo, off+lc.Hi)
			case lc.Field != "":
				lo, hi := lc.Slot, lc.Slot
				if lc.Slot == 0 {
					lo, hi = 1, p.Arenas[lc.Struct]
				}
				for s := lo; s <= hi; s++ {
					if off, err := l.FieldOff(lc.Struct, lc.Field, int32(s)); err == nil {
						b.set(off)
					}
				}
			default:
				// Allocation: every field of the site's slot.
				if si := p.Sketch.Info.Structs[lc.Struct]; si != nil {
					for _, f := range si.Fields {
						if off, err := l.FieldOff(lc.Struct, f.Name, int32(lc.Slot)); err == nil {
							b.set(off)
						}
					}
				}
			}
		}
		return b
	}

	t := &porTables{
		cur: make([][]stepFP, len(fps)),
		fut: make([][]stepFP, len(fps)),
	}
	for ti, steps := range fps {
		cur := make([]stepFP, len(steps))
		fut := make([]stepFP, len(steps)+1)
		fut[len(steps)] = stepFP{r: newFpBits(n), w: newFpBits(n)}
		for i, fp := range steps {
			cur[i] = stepFP{r: flatten(fp.Reads, fp.All), w: flatten(fp.Writes, fp.All)}
		}
		for i := len(steps) - 1; i >= 0; i-- {
			r, w := newFpBits(n), newFpBits(n)
			r.or(fut[i+1].r)
			w.or(fut[i+1].w)
			r.or(cur[i].r)
			w.or(cur[i].w)
			fut[i] = stepFP{r: r, w: w}
		}
		t.cur[ti], t.fut[ti] = cur, fut
	}
	return t
}

// curFP returns thread t's current-step footprint at st.
func (pt *porTables) curFP(st *state.State, t int) stepFP {
	return pt.cur[t][st.PCs[t]]
}

// indepCur reports whether the current transitions of u and t at st are
// independent.
func (pt *porTables) indepCur(st *state.State, u, t int) bool {
	return !fpConflict(pt.curFP(st, u), pt.curFP(st, t))
}

// persistentSet picks a sound persistent subset of the enabled threads
// at st: starting from each enabled seed, it closes under "some future
// step of an outside thread conflicts with a member's current step";
// a closure that would need a disabled thread is abandoned (a blocked
// thread has no transition to include, and its future conflict means
// outside threads could interfere after it unblocks). The smallest
// closure wins, ties broken by lowest seed — deterministic. Falls back
// to the full enabled set when every seed fails.
func (pt *porTables) persistentSet(st *state.State, enabled, unfin uint64) uint64 {
	if enabled == 0 || enabled&(enabled-1) == 0 {
		return enabled
	}
	best := enabled
	bestN := bits.OnesCount64(enabled)
	for seeds := enabled; seeds != 0; {
		s := bits.TrailingZeros64(seeds)
		seeds &^= 1 << uint(s)
		P := uint64(1) << uint(s)
		ok := true
		for changed := true; changed && ok; {
			changed = false
			for rest := unfin &^ P; rest != 0; {
				u := bits.TrailingZeros64(rest)
				rest &^= 1 << uint(u)
				if !pt.futureConflicts(st, u, P) {
					continue
				}
				if enabled&(1<<uint(u)) == 0 {
					ok = false
					break
				}
				P |= 1 << uint(u)
				changed = true
			}
		}
		if ok {
			if n := bits.OnesCount64(P); n < bestN {
				best, bestN = P, n
				if n == 1 {
					break
				}
			}
		}
	}
	return best
}

// futureConflicts reports whether any future step of u conflicts with
// the current step of any member of P.
func (pt *porTables) futureConflicts(st *state.State, u int, P uint64) bool {
	fu := pt.fut[u][st.PCs[u]]
	for rest := P; rest != 0; {
		p := bits.TrailingZeros64(rest)
		rest &^= 1 << uint(p)
		if fpConflict(fu, pt.curFP(st, p)) {
			return true
		}
	}
	return false
}

// childSleep computes the sleep set passed to the successor reached by
// executing t: threads already covered (inherited sleep plus siblings
// explored before t) stay asleep only while independent of t.
func (pt *porTables) childSleep(st *state.State, inherited uint64, t int) uint64 {
	out := uint64(0)
	for rest := inherited &^ (1 << uint(t)); rest != 0; {
		u := bits.TrailingZeros64(rest)
		rest &^= 1 << uint(u)
		if pt.indepCur(st, u, t) {
			out |= 1 << uint(u)
		}
	}
	return out
}

// ------------------------------------------------------ visited tables

// pmaskKnown flags a stored persistent mask as computed (so pmask 0 can
// mean "state has no expansion work": terminal, deadlocked, or failed).
const pmaskKnown = uint64(1) << 63

// fpTable is the sequential search's visited set: an open-addressed
// hash table from state fingerprints to the exploration bookkeeping,
// replacing the old map[[16]byte]bool (fewer allocations, one probe per
// lookup, and room for the done/persistent masks POR needs).
type fpTable struct {
	keys []([16]byte)
	done []uint64
	pm   []uint64
	used []bool
	n    int
}

func newFpTable() *fpTable {
	const cap0 = 1 << 10
	return &fpTable{
		keys: make([][16]byte, cap0),
		done: make([]uint64, cap0),
		pm:   make([]uint64, cap0),
		used: make([]bool, cap0),
	}
}

// slot finds or inserts the key, returning its index and whether it was
// inserted now. Indices are invalidated by the next insertion (growth).
func (t *fpTable) slot(k [16]byte) (int, bool) {
	if 4*(t.n+1) >= 3*len(t.keys) {
		t.grow()
	}
	mask := len(t.keys) - 1
	i := int(binary.LittleEndian.Uint64(k[:8])) & mask
	for t.used[i] {
		if t.keys[i] == k {
			return i, false
		}
		i = (i + 1) & mask
	}
	t.keys[i] = k
	t.used[i] = true
	t.n++
	return i, true
}

func (t *fpTable) grow() {
	old := *t
	n := len(old.keys) * 2
	t.keys = make([][16]byte, n)
	t.done = make([]uint64, n)
	t.pm = make([]uint64, n)
	t.used = make([]bool, n)
	mask := n - 1
	for i, u := range old.used {
		if !u {
			continue
		}
		j := int(binary.LittleEndian.Uint64(old.keys[i][:8])) & mask
		for t.used[j] {
			j = (j + 1) & mask
		}
		t.keys[j] = old.keys[i]
		t.done[j] = old.done[i]
		t.pm[j] = old.pm[i]
		t.used[j] = true
	}
}
