package mc

import (
	"testing"

	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/parser"
	"psketch/internal/state"
)

func lower(t *testing.T, src string, opts desugar.Options) (*ir.Program, *state.Layout, *desugar.Sketch) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := desugar.Desugar(prog, "Main", opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(sk)
	if err != nil {
		t.Fatal(err)
	}
	l, err := state.NewLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, l, sk
}

func checkSrc(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	_, l, sk := lower(t, src, desugar.Options{})
	res, err := Check(l, make(desugar.Candidate, len(sk.Holes)), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const racySrc = `
int counter = 0;
harness void Main() {
	fork (i; 2) {
		int t = counter;
		t = t + 1;
		counter = t;
	}
	assert counter == 2;
}
`

const atomicSrc = `
int counter = 0;
harness void Main() {
	fork (i; 2) {
		atomic { counter = counter + 1; }
	}
	assert counter == 2;
}
`

// The classic AB-BA deadlock.
const deadlockSrc = `
struct L { int v = 0; }
L a;
L b;
harness void Main() {
	a = new L();
	b = new L();
	fork (i; 2) {
		if (i == 0) { lock(a); lock(b); unlock(b); unlock(a); }
		if (i == 1) { lock(b); lock(a); unlock(a); unlock(b); }
	}
}
`

func TestFindsRace(t *testing.T) {
	res := checkSrc(t, racySrc, Options{})
	if res.OK {
		t.Fatal("missed the lost update")
	}
	if res.Trace.Failure.Kind != 0 /* FailAssert */ {
		t.Fatalf("kind %v", res.Trace.Failure.Kind)
	}
	if len(res.Trace.Events) == 0 {
		t.Fatal("empty counterexample trace")
	}
}

func TestVerifiesAtomic(t *testing.T) {
	res := checkSrc(t, atomicSrc, Options{})
	if !res.OK {
		t.Fatalf("false positive: %s", res.Trace)
	}
}

func TestFindsDeadlock(t *testing.T) {
	res := checkSrc(t, deadlockSrc, Options{})
	if res.OK {
		t.Fatal("missed the AB-BA deadlock")
	}
	if len(res.Trace.Deadlocked) != 2 {
		t.Fatalf("deadlock set: %v", res.Trace.Deadlocked)
	}
}

func TestLockOrderNoDeadlock(t *testing.T) {
	src := `
struct L { int v = 0; }
L a;
L b;
harness void Main() {
	a = new L();
	b = new L();
	fork (i; 2) {
		lock(a); lock(b); unlock(b); unlock(a);
	}
}
`
	res := checkSrc(t, src, Options{})
	if !res.OK {
		t.Fatalf("false deadlock: %s", res.Trace)
	}
}

func TestNullDeref(t *testing.T) {
	src := `
struct N { N next = null; }
N head;
harness void Main() {
	fork (i; 1) {
		N x = head.next;
		x = x;
	}
}
`
	res := checkSrc(t, src, Options{})
	if res.OK {
		t.Fatal("missed null dereference")
	}
}

func TestTerminationBound(t *testing.T) {
	src := `
int x = 0;
harness void Main() {
	fork (i; 1) {
		while (x == 0) { x = 0; }
	}
}
`
	res := checkSrc(t, src, Options{})
	if res.OK {
		t.Fatal("missed nontermination (bounded liveness, §6)")
	}
}

// The partial-order reduction (eager local steps) must not change
// verdicts: cross-check against the unreduced search.
func TestLocalFusionSound(t *testing.T) {
	for _, src := range []string{racySrc, atomicSrc, deadlockSrc} {
		_, l, sk := lower(t, src, desugar.Options{})
		cand := make(desugar.Candidate, len(sk.Holes))
		fused, err := Check(l, cand, Options{})
		if err != nil {
			t.Fatal(err)
		}
		unfused, err := Check(l, cand, Options{NoLocalFusion: true})
		if err != nil {
			t.Fatal(err)
		}
		if fused.OK != unfused.OK {
			t.Fatalf("POR changed the verdict: fused=%v unfused=%v", fused.OK, unfused.OK)
		}
		if fused.States > unfused.States {
			t.Errorf("POR did not reduce states (%d vs %d)", fused.States, unfused.States)
		}
	}
}

// Verdicts must be deterministic across runs.
func TestDeterminism(t *testing.T) {
	_, l, sk := lower(t, racySrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	first, err := Check(l, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Check(l, cand, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again.OK != first.OK || again.States != first.States || len(again.Trace.Events) != len(first.Trace.Events) {
			t.Fatal("nondeterministic model checking")
		}
	}
}

func TestStateBudget(t *testing.T) {
	_, l, sk := lower(t, atomicSrc, desugar.Options{})
	if _, err := Check(l, make(desugar.Candidate, len(sk.Holes)), Options{MaxStates: 1}); err == nil {
		t.Fatal("expected state-budget error")
	}
}

func TestBlockedInPrologue(t *testing.T) {
	src := `
struct L { int v = 0; }
L a;
harness void Main() {
	a = new L();
	lock(a);
	lock(a);
	fork (i; 1) { }
}
`
	res := checkSrc(t, src, Options{})
	if res.OK || res.Trace.Phase != PhasePrologue {
		t.Fatalf("expected prologue deadlock, got %v", res.Trace)
	}
}

// Conditional atomics block until the condition holds: a producer
// thread signals a waiter through a flag.
func TestConditionalAtomicSignalling(t *testing.T) {
	src := `
int flag = 0;
int seen = 0;
harness void Main() {
	fork (i; 2) {
		if (i == 0) {
			atomic (flag == 1) { seen = 1; }
		}
		if (i == 1) {
			flag = 1;
		}
	}
	assert seen == 1;
}
`
	res := checkSrc(t, src, Options{})
	if !res.OK {
		t.Fatalf("signalling failed: %s", res.Trace)
	}
}

// A waiter with no signaller deadlocks.
func TestConditionalAtomicStuck(t *testing.T) {
	src := `
int flag = 0;
harness void Main() {
	fork (i; 1) {
		atomic (flag == 1);
	}
}
`
	res := checkSrc(t, src, Options{})
	if res.OK || res.Trace.Failure.Kind != 4 /* FailDeadlock */ {
		t.Fatalf("got %v", res.Trace)
	}
}

// Locks taken in the prologue are owned by main; a forked thread
// cannot sneak past and the epilogue can release.
func TestMainThreadLockOwnership(t *testing.T) {
	src := `
struct L { int v = 0; }
L a;
int entered = 0;
harness void Main() {
	a = new L();
	lock(a);
	fork (i; 1) {
		lock(a);
		entered = 1;
		unlock(a);
	}
	assert entered == 0;
}
`
	// The forked thread blocks on the main-held lock forever: that is a
	// deadlock at join time.
	res := checkSrc(t, src, Options{})
	if res.OK || res.Trace.Failure.Kind != 4 {
		t.Fatalf("got %v", res.Trace)
	}
}

// Atomic sections are indivisible: a two-cell invariant updated inside
// atomic blocks can never be observed torn.
func TestAtomicIndivisible(t *testing.T) {
	src := `
int a = 0;
int b = 0;
harness void Main() {
	fork (i; 2) {
		if (i == 0) {
			atomic { a = a + 1; b = b + 1; }
			atomic { a = a + 1; b = b + 1; }
		}
		if (i == 1) {
			atomic { assert a == b; }
			atomic { assert a == b; }
		}
	}
}
`
	res := checkSrc(t, src, Options{})
	if !res.OK {
		t.Fatalf("atomicity violated: %s", res.Trace)
	}
}

// The same program with non-atomic updates must be refuted.
func TestNonAtomicTorn(t *testing.T) {
	src := `
int a = 0;
int b = 0;
harness void Main() {
	fork (i; 2) {
		if (i == 0) {
			a = a + 1;
			b = b + 1;
		}
		if (i == 1) {
			atomic { assert a == b; }
		}
	}
}
`
	res := checkSrc(t, src, Options{})
	if res.OK {
		t.Fatal("missed the torn read")
	}
}

// Epilogue failures carry the whole fork-phase schedule.
func TestEpilogueTracePhase(t *testing.T) {
	res := checkSrc(t, racySrc, Options{})
	if res.OK || res.Trace.Phase != PhaseEpilogue {
		t.Fatalf("got %v", res.Trace)
	}
	if len(res.Trace.Events) == 0 {
		t.Fatal("no schedule recorded")
	}
}

// The hook observes every executed step in order.
func TestHookSeesSchedule(t *testing.T) {
	_, l, sk := lower(t, atomicSrc, desugar.Options{})
	var events int
	res, err := Check(l, make(desugar.Candidate, len(sk.Holes)), Options{
		Hook: func(ev Event, st *state.State) { events++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || events == 0 {
		t.Fatalf("ok=%v hook events=%d", res.OK, events)
	}
}
