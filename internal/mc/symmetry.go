package mc

// This file is the checker side of thread-symmetry reduction. The IR
// analysis (internal/ir.Symmetry) finds rings of permutation-equivalent
// threads for a concrete candidate; this file flattens each ring onto
// the state layout as a group of state automorphisms and exposes the
// orbit-canonicalization the search uses: before every visited-set
// lookup the state's fingerprint is replaced by the minimum fingerprint
// over its orbit, so permutation-equivalent states collapse to one
// visited entry.
//
// An automorphism act_e is a permutation of the state vector's cells
// plus three value remaps:
//
//   - reference cells are remapped through the per-struct slot
//     permutation rho (heap slots allocated symmetrically by rotated
//     threads trade places);
//   - _lock cells are remapped through the thread-id permutation (a
//     lock held by thread t is held by g(t) in the permuted state);
//   - "fork locals" (the paper's fork(p; N) induction variable) are
//     rewritten to the destination thread's constant once defined.
//
// Soundness is re-validated here against the concrete layout before
// the group is used: every generator must have the claimed order, fix
// the post-prologue root state, map each member's per-step POR
// footprint onto the next member's, and be a bijection on cells and
// slots. Any check failing drops the class (the search stays exact,
// just unreduced).
//
// Composition with POR: persistent and sleep masks stored in the
// visited table live in the canonical state's thread numbering. A
// lookup that canonicalizes through element e translates its local
// masks with e's thread map on the way in and translates the claimed
// work back with the inverse map on the way out, so revisits through
// different orbit representatives agree on which transitions are
// covered. A persistent set of s maps to a persistent set of act_e(s)
// (the property is closed under automorphism), so the stored mask is
// valid for every representative.

import (
	"psketch/internal/ir"
	"psketch/internal/state"
	"psketch/internal/types"
)

// Cell-kind codes for value remapping. Non-negative kinds are an index
// into the struct table (the cell holds a reference into that struct's
// arena).
const (
	kindPlain int16 = -1 // value copied unchanged
	kindLock  int16 = -2 // value is a thread id (a _lock field)
)

// elemFork is one fork-local rewrite: when the source thread has
// executed its defining step, the destination cell holds the
// destination member's constant instead of the source's.
type elemFork struct {
	thread  int32 // source thread
	cell    int32 // source cell (the fork local's cell in thread's block)
	defStep int32
	dstVal  int32
}

// symElem is one non-identity group element, flattened for the hot
// path.
type symElem struct {
	cellMap []int32   // image of every value cell (identity off-support)
	tmap    []int32   // thread permutation
	inv     []int32   // inverse thread permutation
	tid     []int32   // thread-id value map, len nthreads+2 (0 = free)
	rho     [][]int32 // per struct index: slot value map, len arena+1
	aff     []int32   // cells whose hash contribution can change
	forks   []elemFork
}

// symAuto is the automorphism group for one (program, candidate) pair.
type symAuto struct {
	size      int
	sharedEnd int
	nthreads  int
	kind      []int16 // per cell: kindPlain, kindLock, or struct index
	elems     []symElem
	classes   int // symmetry classes the group was built from
}

// buildSym flattens the detected classes onto the layout. root must be
// the post-prologue state (the search root before normalization); its
// heap decides the slot permutation rho. Returns nil if no class
// survives validation.
func buildSym(l *state.Layout, classes []ir.SymClass, pt *porTables, root *state.State) *symAuto {
	p := l.Prog
	n := len(p.Threads)
	if n < 2 || n > 62 || len(classes) == 0 {
		return nil
	}
	a := &symAuto{size: l.Size, sharedEnd: l.SharedCells(), nthreads: n}

	// Struct table (declaration order) and per-cell kinds over the
	// active region: shared cells plus the forked threads' local
	// blocks. Cells of the one-shot sequences (global init, prologue,
	// epilogue, spec) are constant during the search and stay
	// kindPlain with identity mapping.
	sidx := map[string]int{}
	var snames []string
	for _, sd := range p.Sketch.Prog.Structs {
		sidx[sd.Name] = len(snames)
		snames = append(snames, sd.Name)
	}
	a.kind = make([]int16, l.Size)
	for i := range a.kind {
		a.kind[i] = kindPlain
	}
	classify := func(off int, t types.Type) bool {
		if t.Base != types.Ref {
			return true
		}
		si, ok := sidx[t.Struct]
		if !ok {
			return false // wildcard-typed ref cell: cannot remap
		}
		nc := 1
		if t.IsArray() {
			nc = t.Len
		}
		for c := 0; c < nc; c++ {
			a.kind[off+c] = int16(si)
		}
		return true
	}
	for gi, g := range p.Globals {
		if !classify(l.GlobalOff(gi), g.Type) {
			return nil
		}
	}
	for _, name := range snames {
		si := p.Sketch.Info.Structs[name]
		for _, f := range si.Fields {
			for s := 1; s <= p.Arenas[name]; s++ {
				off, err := l.FieldOff(name, f.Name, int32(s))
				if err != nil {
					return nil
				}
				if f.Name == "_lock" {
					a.kind[off] = kindLock
				} else if !classify(off, f.Type) {
					return nil
				}
			}
		}
	}
	blockLo, blockHi := threadBlocks(l)
	for t, seq := range p.Threads {
		for i, v := range seq.Locals {
			if !classify(l.LocalOff(p.Threads[t], i), v.Type) {
				return nil
			}
		}
	}

	ident := func() symElem {
		e := symElem{
			cellMap: make([]int32, l.Size),
			tmap:    make([]int32, n),
			tid:     make([]int32, n+2),
			rho:     make([][]int32, len(snames)),
		}
		for c := range e.cellMap {
			e.cellMap[c] = int32(c)
		}
		for t := range e.tmap {
			e.tmap[t] = int32(t)
		}
		for v := range e.tid {
			e.tid[v] = int32(v)
		}
		for s, name := range snames {
			r := make([]int32, p.Arenas[name]+1)
			for v := range r {
				r[v] = int32(v)
			}
			e.rho[s] = r
		}
		return e
	}
	isIdent := func(e *symElem) bool {
		for c, d := range e.cellMap {
			if int(d) != c {
				return false
			}
		}
		for t, d := range e.tmap {
			if int(d) != t {
				return false
			}
		}
		for v, d := range e.tid {
			if int(d) != v {
				return false
			}
		}
		for _, r := range e.rho {
			for v, d := range r {
				if int(d) != v {
					return false
				}
			}
		}
		return true
	}
	// compose returns "apply x, then y". Fork rewrites are only valid
	// for cross-class composition (disjoint supports); same-class
	// powers regenerate them directly.
	compose := func(x, y *symElem) symElem {
		e := symElem{
			cellMap: make([]int32, l.Size),
			tmap:    make([]int32, n),
			tid:     make([]int32, n+2),
			rho:     make([][]int32, len(snames)),
		}
		for c := range e.cellMap {
			e.cellMap[c] = y.cellMap[x.cellMap[c]]
		}
		for t := range e.tmap {
			e.tmap[t] = y.tmap[x.tmap[t]]
		}
		for v := range e.tid {
			e.tid[v] = y.tid[x.tid[v]]
		}
		for s := range e.rho {
			r := make([]int32, len(x.rho[s]))
			for v := range r {
				r[v] = y.rho[s][x.rho[s][v]]
			}
			e.rho[s] = r
		}
		e.forks = append(append([]elemFork(nil), x.forks...), y.forks...)
		return e
	}

	// buildGen flattens one class's ring generator (rotation by one).
	buildGen := func(cl ir.SymClass) (symElem, bool) {
		k := len(cl.Members)
		e := ident()
		for i, m := range cl.Members {
			d := cl.Members[(i+1)%k]
			e.tmap[m] = int32(d)
			e.tid[m+1] = int32(d + 1)
			if blockHi[m]-blockLo[m] != blockHi[d]-blockLo[d] {
				return e, false
			}
			for o := 0; o < blockHi[m]-blockLo[m]; o++ {
				e.cellMap[blockLo[m]+o] = int32(blockLo[d] + o)
			}
		}
		// rho: explicit slot moves from the analysis, then constraints
		// from the root's values on moved reference cells, then
		// identity completion checked for bijectivity.
		set := make([][]bool, len(snames))
		for s := range set {
			set[s] = make([]bool, len(e.rho[s]))
		}
		setRho := func(si int, from, to int32) bool {
			if from <= 0 || int(from) >= len(e.rho[si]) || to <= 0 || int(to) >= len(e.rho[si]) {
				return false
			}
			if set[si][from] {
				return e.rho[si][from] == to
			}
			set[si][from] = true
			e.rho[si][from] = to
			return true
		}
		for _, sp := range cl.Slots {
			si, ok := sidx[sp.Struct]
			if !ok || !setRho(si, int32(sp.From), int32(sp.To)) {
				return e, false
			}
		}
		for _, cp := range cl.Cells {
			from := l.GlobalOff(cp.Global) + cp.From
			to := l.GlobalOff(cp.Global) + cp.To
			e.cellMap[from] = int32(to)
			if si := a.kind[from]; si >= 0 {
				v, w := root.Cells[from], root.Cells[to]
				if (v == 0) != (w == 0) {
					return e, false
				}
				if v != 0 && !setRho(int(si), v, w) {
					return e, false
				}
			}
		}
		for s := range e.rho {
			seen := make([]bool, len(e.rho[s]))
			for v := 1; v < len(e.rho[s]); v++ {
				w := e.rho[s][v]
				if w <= 0 || int(w) >= len(e.rho[s]) || seen[w] {
					return e, false
				}
				seen[w] = true
			}
		}
		for _, fs := range cl.FixedSlots {
			si, ok := sidx[fs.Struct]
			if !ok || fs.Slot <= 0 || fs.Slot >= len(e.rho[si]) || e.rho[si][fs.Slot] != int32(fs.Slot) {
				return e, false
			}
		}
		// Arena cells follow their slot under rho.
		for s, name := range snames {
			si := p.Sketch.Info.Structs[name]
			for slot := 1; slot < len(e.rho[s]); slot++ {
				d := e.rho[s][slot]
				if d == int32(slot) {
					continue
				}
				for _, f := range si.Fields {
					from, err1 := l.FieldOff(name, f.Name, int32(slot))
					to, err2 := l.FieldOff(name, f.Name, d)
					if err1 != nil || err2 != nil {
						return e, false
					}
					e.cellMap[from] = int32(to)
				}
			}
		}
		for _, fl := range cl.ForkLocals {
			if len(fl.Vals) != k {
				return e, false
			}
			for i, m := range cl.Members {
				if fl.Local < 0 || fl.Local >= len(p.Threads[m].Locals) {
					return e, false
				}
				e.forks = append(e.forks, elemFork{
					thread:  int32(m),
					cell:    int32(l.LocalOff(p.Threads[m], fl.Local)),
					defStep: int32(fl.DefStep),
					dstVal:  int32(fl.Vals[(i+1)%k]),
				})
			}
		}
		return e, true
	}
	// power regenerates rotation-by-j from the generator (fork rewrites
	// rebuilt for the composite shift).
	power := func(cl ir.SymClass, gen *symElem, j int) symElem {
		e := *gen
		for i := 1; i < j; i++ {
			e = compose(&e, gen)
		}
		e.forks = nil
		k := len(cl.Members)
		for _, fl := range cl.ForkLocals {
			for i, m := range cl.Members {
				e.forks = append(e.forks, elemFork{
					thread:  int32(m),
					cell:    int32(l.LocalOff(p.Threads[m], fl.Local)),
					defStep: int32(fl.DefStep),
					dstVal:  int32(fl.Vals[(i+j)%k]),
				})
			}
		}
		return e
	}

	// Validate each class against the layout; accept greedily while the
	// composite group stays small and supports stay disjoint.
	scratch := root.Clone()
	rootFixed := func(e *symElem) bool {
		a.applyAct(scratch, root, e)
		for c := range root.Cells {
			if scratch.Cells[c] != root.Cells[c] {
				return false
			}
		}
		for t := range root.PCs {
			if scratch.PCs[t] != root.PCs[t] {
				return false
			}
		}
		return true
	}
	fpEquiv := func(cl ir.SymClass, gen *symElem) bool {
		k := len(cl.Members)
		for i, m := range cl.Members {
			d := cl.Members[(i+1)%k]
			if len(pt.cur[m]) != len(pt.cur[d]) {
				return false
			}
			for pc := range pt.cur[m] {
				if !permEq(gen, pt.cur[m][pc].r, pt.cur[d][pc].r, a.sharedEnd) ||
					!permEq(gen, pt.cur[m][pc].w, pt.cur[d][pc].w, a.sharedEnd) {
					return false
				}
			}
		}
		return true
	}

	type accepted struct {
		cl     ir.SymClass
		powers []symElem // index j in 1..k-1
	}
	var acc []accepted
	usedThread := make([]bool, n)
	usedCell := make([]bool, l.Size)
	rhoOwner := make([]int, len(snames))
	for s := range rhoOwner {
		rhoOwner[s] = -1
	}
	total := 1
	for ci, cl := range classes {
		k := len(cl.Members)
		if k < 2 || total*k > 64 {
			continue
		}
		gen, ok := buildGen(cl)
		if !ok {
			continue
		}
		// Disjointness with already-accepted classes.
		clash := false
		for _, m := range cl.Members {
			if usedThread[m] {
				clash = true
			}
		}
		for c := range gen.cellMap {
			if int(gen.cellMap[c]) != c && usedCell[c] {
				clash = true
			}
		}
		for s := range gen.rho {
			nontrivial := false
			for v, d := range gen.rho[s] {
				if int(d) != v {
					nontrivial = true
				}
			}
			if nontrivial && rhoOwner[s] >= 0 {
				clash = true
			}
		}
		if clash {
			continue
		}
		// Order k, root fixpoint, footprint equivariance.
		idc := power(cl, &gen, 1)
		for i := 1; i < k; i++ {
			idc = compose(&idc, &gen)
		}
		if !isIdent(&idc) || !rootFixed(&gen) || !fpEquiv(cl, &gen) {
			continue
		}
		ac := accepted{cl: cl}
		for j := 1; j < k; j++ {
			ac.powers = append(ac.powers, power(cl, &gen, j))
		}
		acc = append(acc, ac)
		total *= k
		for _, m := range cl.Members {
			usedThread[m] = true
		}
		for c := range gen.cellMap {
			if int(gen.cellMap[c]) != c {
				usedCell[c] = true
			}
		}
		for s := range gen.rho {
			for v, d := range gen.rho[s] {
				if int(d) != v {
					rhoOwner[s] = ci
					break
				}
			}
		}
	}
	if len(acc) == 0 {
		return nil
	}
	a.classes = len(acc)

	// Composite group: the product of the accepted classes' cyclic
	// groups, identity omitted. Supports are disjoint, so composition
	// order does not matter and fork lists concatenate.
	elems := []symElem{}
	var build func(i int, cur *symElem)
	build = func(i int, cur *symElem) {
		if i == len(acc) {
			if cur != nil {
				elems = append(elems, *cur)
			}
			return
		}
		build(i+1, cur) // power 0 of this class
		for j := range acc[i].powers {
			pw := &acc[i].powers[j]
			if cur == nil {
				cp := *pw
				build(i+1, &cp)
			} else {
				cp := compose(cur, pw)
				build(i+1, &cp)
			}
		}
	}
	build(0, nil)
	for i := range elems {
		a.finalize(&elems[i])
	}
	a.elems = elems
	return a
}

// finalize computes the element's affected-cell list and inverse
// thread map.
func (a *symAuto) finalize(e *symElem) {
	rhoTriv := make([]bool, len(e.rho))
	for s := range e.rho {
		rhoTriv[s] = true
		for v, d := range e.rho[s] {
			if int(d) != v {
				rhoTriv[s] = false
				break
			}
		}
	}
	tidTriv := true
	for v, d := range e.tid {
		if int(d) != v {
			tidTriv = false
			break
		}
	}
	for c := 0; c < a.size; c++ {
		moved := int(e.cellMap[c]) != c
		switch k := a.kind[c]; {
		case k >= 0:
			if moved || !rhoTriv[k] {
				e.aff = append(e.aff, int32(c))
			}
		case k == kindLock:
			if moved || !tidTriv {
				e.aff = append(e.aff, int32(c))
			}
		default:
			if moved {
				e.aff = append(e.aff, int32(c))
			}
		}
	}
	e.inv = make([]int32, len(e.tmap))
	for t, d := range e.tmap {
		e.inv[d] = int32(t)
	}
}

// permEq reports whether src's bits, pushed through the element's cell
// map, equal dst's over the first n cells.
func permEq(e *symElem, src, dst fpBits, n int) bool {
	for c := 0; c < n; c++ {
		if src.get(c) != dst.get(int(e.cellMap[c])) {
			return false
		}
	}
	return true
}

// remap applies the element's value maps to cell c's value v.
func (a *symAuto) remap(e *symElem, c int32, v int32) int32 {
	switch k := a.kind[c]; {
	case k >= 0:
		if v > 0 && int(v) < len(e.rho[k]) {
			return e.rho[k][v]
		}
	case k == kindLock:
		if v >= 0 && int(v) < len(e.tid) {
			return e.tid[v]
		}
	}
	return v
}

// imageHash returns the fingerprint of act_e(st), derived from st's
// own fingerprint by XORing out each affected cell's contribution and
// XORing in its image's.
func (a *symAuto) imageHash(st *state.State, e *symElem, h1, h2 uint64) (uint64, uint64) {
	for _, c := range e.aff {
		v := st.Cells[c]
		w := a.remap(e, c, v)
		d := int(e.cellMap[c])
		h1 ^= zmix(zobSeed1, int(c), v) ^ zmix(zobSeed1, d, w)
		h2 ^= zmix(zobSeed2, int(c), v) ^ zmix(zobSeed2, d, w)
	}
	for _, f := range e.forks {
		if st.PCs[f.thread] > f.defStep {
			d := int(e.cellMap[f.cell])
			v := st.Cells[f.cell]
			if v != f.dstVal {
				h1 ^= zmix(zobSeed1, d, v) ^ zmix(zobSeed1, d, f.dstVal)
				h2 ^= zmix(zobSeed2, d, v) ^ zmix(zobSeed2, d, f.dstVal)
			}
		}
	}
	for t, pc := range st.PCs {
		if d := int(e.tmap[t]); d != t {
			h1 ^= zmix(zobSeed1, a.size+t, pc) ^ zmix(zobSeed1, a.size+d, pc)
			h2 ^= zmix(zobSeed2, a.size+t, pc) ^ zmix(zobSeed2, a.size+d, pc)
		}
	}
	return h1, h2
}

// canonKey returns the orbit-minimal fingerprint of st and the element
// that reaches it (nil for the identity).
func (a *symAuto) canonKey(st *state.State, h1, h2 uint64) (uint64, uint64, *symElem) {
	b1, b2 := h1, h2
	var be *symElem
	for i := range a.elems {
		e := &a.elems[i]
		g1, g2 := a.imageHash(st, e, h1, h2)
		if g1 < b1 || (g1 == b1 && g2 < b2) {
			b1, b2, be = g1, g2, e
		}
	}
	return b1, b2, be
}

// applyAct materializes act_e(src) into dst (dst must not alias src).
// Affected cells are a permutation-closed set, so writing each image
// over a plain copy is exact.
func (a *symAuto) applyAct(dst, src *state.State, e *symElem) {
	dst.CopyFrom(src)
	if e == nil {
		return
	}
	for _, c := range e.aff {
		dst.Cells[e.cellMap[c]] = a.remap(e, c, src.Cells[c])
	}
	for _, f := range e.forks {
		if src.PCs[f.thread] > f.defStep {
			dst.Cells[e.cellMap[f.cell]] = f.dstVal
		}
	}
	for t, pc := range src.PCs {
		dst.PCs[e.tmap[t]] = pc
	}
}

// symFwd translates a thread bitmask into the canonical frame reached
// through e (nil is the identity).
func symFwd(mask uint64, e *symElem) uint64 {
	if e == nil || mask == 0 {
		return mask
	}
	out := uint64(0)
	for t, d := range e.tmap {
		if mask&(1<<uint(t)) != 0 {
			out |= 1 << uint(d)
		}
	}
	return out
}

// symInv translates a canonical-frame thread bitmask back to the local
// frame.
func symInv(mask uint64, e *symElem) uint64 {
	if e == nil || mask == 0 {
		return mask
	}
	out := uint64(0)
	for t, d := range e.inv {
		if mask&(1<<uint(t)) != 0 {
			out |= 1 << uint(d)
		}
	}
	return out
}
