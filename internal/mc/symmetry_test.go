package mc

import (
	"testing"

	"psketch/internal/desugar"
)

// Two identical lock/unlock threads on one shared node: the smallest
// program whose state graph is hand-computable under every reduction.
const symPairSrc = `
struct L { int v = 0; }
L a;
harness void Main() {
	a = new L();
	fork (i; 2) {
		lock(a);
		unlock(a);
	}
	assert a.v == 0;
}
`

// Hand-computed regression for the orbit reduction. Writing a thread's
// position as its PC (0 = before lock, 1 = holds the lock, 2 = done),
// the unreduced graph is the 8-state diamond-with-tails
//
//	(0,0) -> (1,0) -> (2,0) -> (2,1) -> (2,2)
//	      -> (0,1) -> (0,2) -> (1,2) -> (2,2)
//
// (while one thread holds the lock the other is blocked, so each branch
// is a chain). Swapping the two threads is an automorphism that pairs
// (1,0)~(0,1), (2,0)~(0,2), (2,1)~(1,2) and fixes the root and the
// final state, leaving exactly 5 orbits.
func TestSymmetryPinnedCounts(t *testing.T) {
	_, l, sk := lower(t, symPairSrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))

	raw, err := Check(l, cand, Options{NoPOR: true, NoLocalFusion: true, NoSymmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if !raw.OK || raw.States != 8 {
		t.Fatalf("unreduced search: ok=%v states=%d, want ok=true states=8", raw.OK, raw.States)
	}
	if raw.SymClasses != 0 {
		t.Fatalf("NoSymmetry run reported %d symmetry classes", raw.SymClasses)
	}

	sym, err := Check(l, cand, Options{NoPOR: true, NoLocalFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sym.OK || sym.States != 5 {
		t.Fatalf("orbit search: ok=%v states=%d, want ok=true states=5", sym.OK, sym.States)
	}
	if sym.SymClasses != 1 {
		t.Fatalf("expected 1 symmetry class, got %d", sym.SymClasses)
	}
}

// Every visited-set backend and the parallel engine must agree on the
// verdict (and failure kind) for each outcome class: lost update,
// verified atomic counter, AB-BA deadlock.
func TestCompressModesAgree(t *testing.T) {
	for _, src := range []string{racySrc, atomicSrc, deadlockSrc} {
		_, l, sk := lower(t, src, desugar.Options{})
		cand := make(desugar.Candidate, len(sk.Holes))
		base, err := Check(l, cand, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range []Options{
			{NoSymmetry: true},
			{Compress: "collapse"},
			{Compress: "bitstate"},
			{Compress: "collapse", NoPOR: true},
			{Parallelism: 4},
		} {
			res, err := Check(l, cand, o)
			if err != nil {
				t.Fatalf("%+v: %v", o, err)
			}
			if res.OK != base.OK {
				t.Fatalf("%+v changed the verdict: got %v want %v", o, res.OK, base.OK)
			}
			if !res.OK && res.Trace.Failure.Kind != base.Trace.Failure.Kind {
				t.Fatalf("%+v changed the failure kind: got %v want %v",
					o, res.Trace.Failure.Kind, base.Trace.Failure.Kind)
			}
			if res.VisitedBytes == 0 {
				t.Fatalf("%+v reported zero visited-set bytes", o)
			}
		}
	}
}

// Collapse compression is exact: on a verified program it must walk
// exactly the same set of (canonical) states as the fingerprint table.
func TestCollapseExactStates(t *testing.T) {
	_, l, sk := lower(t, atomicSrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	exact, err := Check(l, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	col, err := Check(l, cand, Options{Compress: "collapse"})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.OK || !col.OK || col.States != exact.States {
		t.Fatalf("collapse states=%d, fingerprint table states=%d", col.States, exact.States)
	}
}

// debugHash recomputes the full Zobrist hash at every visited-set
// lookup and panics on any divergence from the incrementally maintained
// one — run the whole verdict space through it, sequential and
// parallel.
func TestIncrementalHashCrossCheck(t *testing.T) {
	debugHash = true
	defer func() { debugHash = false }()
	for _, src := range []string{racySrc, atomicSrc, deadlockSrc, symPairSrc} {
		_, l, sk := lower(t, src, desugar.Options{})
		cand := make(desugar.Candidate, len(sk.Holes))
		for _, o := range []Options{
			{},
			{NoPOR: true, NoLocalFusion: true},
			{Parallelism: 4},
		} {
			if _, err := Check(l, cand, o); err != nil {
				t.Fatalf("%+v: %v", o, err)
			}
		}
	}
}

func TestUnknownCompressMode(t *testing.T) {
	_, l, sk := lower(t, atomicSrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	if _, err := Check(l, cand, Options{Compress: "gzip"}); err == nil {
		t.Fatal("expected an error for an unknown compression mode")
	}
}
