package mc

import (
	"testing"

	"psketch/internal/desugar"
)

// fpTable must behave like the map it replaced: find-or-insert with
// stable bookkeeping across growth.
func TestFpTableInsertLookupGrow(t *testing.T) {
	tab := newFpTable()
	mk := func(i int) [16]byte {
		var k [16]byte
		k[0] = byte(i)
		k[1] = byte(i >> 8)
		k[15] = byte(i * 7)
		return k
	}
	const n = 5000 // forces several growths from the 1024-slot start
	for i := 0; i < n; i++ {
		idx, fresh := tab.slot(mk(i))
		if !fresh {
			t.Fatalf("key %d reported as seen on first insert", i)
		}
		tab.done[idx] = uint64(i)
		tab.pm[idx] = pmaskKnown | uint64(i%7)
	}
	for i := 0; i < n; i++ {
		idx, fresh := tab.slot(mk(i))
		if fresh {
			t.Fatalf("key %d lost after growth", i)
		}
		if tab.done[idx] != uint64(i) || tab.pm[idx] != pmaskKnown|uint64(i%7) {
			t.Fatalf("key %d bookkeeping corrupted: done=%d pm=%d", i, tab.done[idx], tab.pm[idx])
		}
	}
	if tab.n != n {
		t.Fatalf("size %d, want %d", tab.n, n)
	}
}

// POR must preserve every verdict of the unreduced search on programs
// covering the outcome kinds (assertion race, verified atomic, AB-BA
// deadlock), while never exploring more states, and the reduced search
// must stay deterministic.
func TestPORVerdictsMatchUnreduced(t *testing.T) {
	for _, src := range []string{racySrc, atomicSrc, deadlockSrc} {
		_, l, sk := lower(t, src, desugar.Options{})
		cand := make(desugar.Candidate, len(sk.Holes))
		por, err := Check(l, cand, Options{})
		if err != nil {
			t.Fatal(err)
		}
		full, err := Check(l, cand, Options{NoPOR: true})
		if err != nil {
			t.Fatal(err)
		}
		if por.OK != full.OK {
			t.Fatalf("POR changed the verdict: por=%v full=%v", por.OK, full.OK)
		}
		if por.States > full.States {
			t.Errorf("POR explored more states (%d vs %d)", por.States, full.States)
		}
		if !por.OK {
			if por.Trace.Failure.Kind != full.Trace.Failure.Kind {
				t.Fatalf("failure kind differs: por=%v full=%v",
					por.Trace.Failure.Kind, full.Trace.Failure.Kind)
			}
		}
		again, err := Check(l, cand, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again.OK != por.OK || again.States != por.States || again.Trans != por.Trans {
			t.Fatal("POR search is nondeterministic")
		}
	}
}

// Two threads writing disjoint globals commute completely: POR must
// collapse the diamond (strictly fewer states than the full search).
func TestPORCollapsesIndependentWriters(t *testing.T) {
	src := `
int a = 0;
int b = 0;
harness void Main() {
	fork (i; 2) {
		if (i == 0) { a = 1; a = 2; a = 3; }
		if (i == 1) { b = 1; b = 2; b = 3; }
	}
	assert a == 3;
	assert b == 3;
}
`
	_, l, sk := lower(t, src, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	// Local fusion off isolates the footprint-based reduction: every
	// shared write is a scheduling point.
	por, err := Check(l, cand, Options{NoLocalFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Check(l, cand, Options{NoLocalFusion: true, NoPOR: true})
	if err != nil {
		t.Fatal(err)
	}
	if !por.OK || !full.OK {
		t.Fatalf("false positive: por=%v full=%v", por.Trace, full.Trace)
	}
	if por.States >= full.States {
		t.Fatalf("independent writers not collapsed: %d vs %d states", por.States, full.States)
	}
}

// Threads racing on one global conflict everywhere: POR must not skip
// any interleaving (same verdict, and the racy outcome still found).
func TestPORKeepsConflictingInterleavings(t *testing.T) {
	_, l, sk := lower(t, racySrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	res, err := Check(l, cand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("POR skipped the losing-update interleaving")
	}
}

// The multi-trace API stays sound under POR: each returned trace is a
// real failing schedule (the budget may not fill — commuting variants
// of one failure count once).
func TestPORMultiTrace(t *testing.T) {
	_, l, sk := lower(t, racySrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	res, err := Check(l, cand, Options{MaxTraces: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || len(res.Traces) == 0 {
		t.Fatalf("ok=%v traces=%d", res.OK, len(res.Traces))
	}
	for _, tr := range res.Traces {
		if tr.Failure == nil {
			t.Fatal("trace without failure")
		}
	}
}
