// Package mc is the explicit-state model checker PSKETCH needs from its
// verifier (the paper used SPIN): given a concrete candidate, it
// explores all thread interleavings of the lowered program, checking
// assertions, memory safety, deadlock freedom, and bounded termination,
// and produces a counterexample trace on failure (§6).
//
// Two sound reductions keep the state space tractable:
//
//   - steps whose guards are false are skipped without a scheduling
//     point (they are not executed at all);
//   - steps that touch only thread-local state run eagerly after the
//     scheduled step (they commute with every other thread's steps).
//
// Visited states are hashed so each global state is expanded once.
//
// # Concurrency contract
//
// Check is safe to call from multiple goroutines on the same Layout
// and candidate: the layout and lowered program are read-only, and all
// mutable search state lives in per-call structures.
//
// With Options.Parallelism > 1 the search itself is parallel: the DFS
// is sharded at the root by first-event choice, each shard explored by
// a worker goroutine against a lock-striped shared visited set, and a
// shared cancellation flag stops every worker as soon as the trace
// budget is met (so counterexamples surface as soon as any shard finds
// one). Parallel search is sound and complete over the same
// interleaving space, but nondeterministic in which counterexample it
// reports first and in the exact States count (shards race to claim
// states). Parallelism <= 1 runs the original sequential DFS and is
// fully deterministic — bit-for-bit the pre-parallel behaviour.
// Options.Hook forces the sequential path (the hook would otherwise
// observe interleaved shards).
package mc

import (
	"fmt"
	"strings"

	"psketch/internal/desugar"
	"psketch/internal/interp"
	"psketch/internal/ir"
	"psketch/internal/state"
)

// Event is one executed step of the fork phase.
type Event struct {
	Thread int // 0-based forked thread index
	Step   int // index into the thread's Seq.Steps
}

// Phase locates a failure.
type Phase int

// Failure phases.
const (
	PhasePrologue Phase = iota
	PhaseThreads
	PhaseEpilogue
)

// Trace is a counterexample: the schedule that led to a violation.
type Trace struct {
	Events  []Event
	Failure *interp.Failure
	Phase   Phase
	// FailThread is the forked thread whose step failed (-1 for
	// prologue/epilogue failures and deadlocks).
	FailThread int
	// FailStep is the failing step index within FailThread.
	FailStep int
	// Deadlocked lists, per blocked thread, the step it is blocked at.
	Deadlocked []Event
}

func (t *Trace) String() string {
	if t == nil {
		return "ok"
	}
	s := fmt.Sprintf("%s (phase %d", t.Failure, t.Phase)
	if t.FailThread >= 0 {
		s += fmt.Sprintf(", thread %d step %d", t.FailThread, t.FailStep)
	}
	return s + fmt.Sprintf(") after %d events", len(t.Events))
}

// Options bound the search.
type Options struct {
	MaxStates int // default 4,000,000
	// Hook, when set, observes every executed step (for debugging and
	// trace replay); it must not retain st.
	Hook func(ev Event, st *state.State)
	// NoLocalFusion disables the eager execution of thread-local steps
	// (the partial-order reduction), used to cross-check its soundness
	// in tests.
	NoLocalFusion bool
	// MaxTraces asks the search to keep going after the first
	// counterexample and return up to this many distinct failing
	// traces (default 1, the paper's behaviour). More traces per
	// verifier call means more observations per CEGIS iteration.
	MaxTraces int
	// Parallelism shards the search across this many worker goroutines
	// (<= 1, or a set Hook, runs the deterministic sequential DFS).
	Parallelism int
}

// Result is the verifier's verdict.
type Result struct {
	OK     bool
	Trace  *Trace   // nil when OK (the first counterexample)
	Traces []*Trace // all collected counterexamples (≥1 when !OK)
	States int      // distinct states expanded
	Trans  int      // transitions executed
	// Workers is the number of parallel search workers used (0 for the
	// sequential DFS); WorkerStates counts the states each expanded.
	Workers      int
	WorkerStates []int
}

// Check explores all interleavings of the candidate.
func Check(l *state.Layout, cand desugar.Candidate, opts Options) (*Result, error) {
	if opts.MaxStates == 0 {
		opts.MaxStates = 4_000_000
	}
	if opts.MaxTraces == 0 {
		opts.MaxTraces = 1
	}
	p := l.Prog
	if !p.Concurrent() {
		return nil, fmt.Errorf("mc: program has no fork; use the sequential checker")
	}
	m := &checker{l: l, p: p, cand: cand, opts: opts, visited: map[[16]byte]bool{}}

	st := l.NewState()
	// Global initializers and prologue run deterministically.
	for _, seq := range []*ir.Seq{p.GlobalInit, p.Prologue} {
		if fail := m.runSequential(st, seq); fail != nil {
			tr := &Trace{Failure: fail, Phase: PhasePrologue, FailThread: -1}
			return &Result{OK: false, Trace: tr, Traces: []*Trace{tr}}, nil
		}
	}

	if opts.Parallelism > 1 && opts.Hook == nil {
		return m.checkParallel(st)
	}

	var path []Event
	if err := m.dfs(st, &path); err != nil {
		return nil, err
	}
	res := &Result{OK: len(m.traces) == 0, Traces: m.traces, States: m.states, Trans: m.trans}
	if !res.OK {
		res.Trace = m.traces[0]
	}
	return res, nil
}

type checker struct {
	l       *state.Layout
	p       *ir.Program
	cand    desugar.Candidate
	opts    Options
	visited map[[16]byte]bool
	states  int
	trans   int
	traces  []*Trace
}

// record stores a counterexample and reports whether the search should
// stop (trace budget reached).
func (m *checker) record(tr *Trace) bool {
	m.traces = append(m.traces, tr)
	return len(m.traces) >= m.opts.MaxTraces
}

// runSequential executes a deterministic sequence (prologue, epilogue,
// global init) to completion on st.
func (m *checker) runSequential(st *state.State, seq *ir.Seq) *interp.Failure {
	ctx := interp.NewCtx(m.l, st, seq, m.cand)
	for _, step := range seq.Steps {
		ok, f := ctx.EvalGuards(step)
		if f != nil {
			return f
		}
		if !ok {
			continue
		}
		enabled, f := ctx.EvalCond(step)
		if f != nil {
			return f
		}
		if !enabled {
			return &interp.Failure{Kind: interp.FailDeadlock, Pos: step.Pos, Msg: "blocking condition false in single-threaded phase"}
		}
		if f := ctx.ExecBody(step); f != nil {
			return f
		}
	}
	return nil
}

// advance normalizes one thread: skips guard-false steps and eagerly
// runs local steps, recording executed events. It stops at the first
// shared (scheduling-relevant) step or at the end of the sequence.
func (m *checker) advance(st *state.State, t int, path *[]Event) *interp.Failure {
	seq := m.p.Threads[t]
	ctx := interp.NewCtx(m.l, st, seq, m.cand)
	for {
		pc := int(st.PCs[t])
		if pc >= len(seq.Steps) {
			return nil
		}
		step := seq.Steps[pc]
		ok, f := ctx.EvalGuards(step)
		if f != nil {
			return f
		}
		if !ok {
			st.PCs[t] = int32(pc + 1)
			continue
		}
		if !step.Local || m.opts.NoLocalFusion {
			return nil
		}
		if m.opts.Hook != nil {
			m.opts.Hook(Event{Thread: t, Step: pc}, st)
		}
		if f := ctx.ExecBody(step); f != nil {
			*path = append(*path, Event{Thread: t, Step: pc})
			return f
		}
		*path = append(*path, Event{Thread: t, Step: pc})
		st.PCs[t] = int32(pc + 1)
	}
}

// normalize advances every thread (guard skips + eager local runs).
func (m *checker) normalize(st *state.State, path *[]Event) (int, *interp.Failure) {
	for t := range m.p.Threads {
		if f := m.advance(st, t, path); f != nil {
			return t, f
		}
	}
	return -1, nil
}

// dfs explores the interleavings from st (which must be normalized by
// the caller for the root; children are normalized here). It returns
// only on error or when the whole (pruned) space is explored or the
// trace budget is met; counterexamples accumulate in m.traces.
func (m *checker) dfs(st *state.State, path *[]Event) error {
	if t, f := m.normalize(st, path); f != nil {
		m.record(m.failTrace(*path, f, t))
		return nil
	}
	return m.expand(st, path)
}

// done reports whether the trace budget is met.
func (m *checker) done() bool {
	return len(m.traces) >= m.opts.MaxTraces
}

func (m *checker) expand(st *state.State, path *[]Event) error {
	key := st.Key()
	if m.visited[key] {
		return nil
	}
	m.visited[key] = true
	m.states++
	if m.states > m.opts.MaxStates {
		return fmt.Errorf("mc: state space exceeds %d states", m.opts.MaxStates)
	}

	unfinished, enabled, blocked, tr := m.status(st)
	if tr != nil {
		tr.Events = append(tr.Events, *path...)
		m.record(tr)
		return nil
	}
	if unfinished == 0 {
		// All threads done: check the epilogue on a scratch copy (the
		// search continues from other interleavings).
		scratch := st.Clone()
		if f := m.runSequential(scratch, m.p.Epilogue); f != nil {
			m.record(m.failTraceEpilogue(*path, f))
		}
		return nil
	}
	if len(enabled) == 0 {
		f := &interp.Failure{Kind: interp.FailDeadlock, Pos: m.p.Threads[blocked[0].Thread].Steps[blocked[0].Step].Pos}
		tr := m.failTrace(*path, f, -1)
		tr.Deadlocked = blocked
		m.record(tr)
		return nil
	}

	for _, t := range enabled {
		if m.done() {
			return nil
		}
		child := st.Clone()
		seq := m.p.Threads[t]
		pc := int(child.PCs[t])
		step := seq.Steps[pc]
		ctx := interp.NewCtx(m.l, child, seq, m.cand)
		m.trans++
		*path = append(*path, Event{Thread: t, Step: pc})
		if m.opts.Hook != nil {
			m.opts.Hook(Event{Thread: t, Step: pc}, child)
		}
		if f := ctx.ExecBody(step); f != nil {
			m.record(m.failTrace(*path, f, t))
			*path = (*path)[:len(*path)-1]
			continue
		}
		child.PCs[t] = int32(pc + 1)
		mark := len(*path)
		if err := m.dfs(child, path); err != nil {
			return err
		}
		*path = (*path)[:mark-1]
	}
	return nil
}

// status inspects the normalized state: counts unfinished threads,
// collects enabled ones, and the blocked pending steps. A failure while
// evaluating a blocking condition is itself a counterexample.
func (m *checker) status(st *state.State) (unfinished int, enabled []int, blocked []Event, tr *Trace) {
	for t, seq := range m.p.Threads {
		pc := int(st.PCs[t])
		if pc >= len(seq.Steps) {
			continue
		}
		unfinished++
		step := seq.Steps[pc]
		// Blocking conditions are side-effect free (enforced at
		// lowering), so no state copy is needed.
		ctx := interp.NewCtx(m.l, st, seq, m.cand)
		ok, f := ctx.EvalCond(step)
		if f != nil {
			return 0, nil, nil, m.failTrace(nil, f, t)
		}
		if ok {
			enabled = append(enabled, t)
		} else {
			blocked = append(blocked, Event{Thread: t, Step: pc})
		}
	}
	return unfinished, enabled, blocked, nil
}

func (m *checker) failTrace(path []Event, f *interp.Failure, thread int) *Trace {
	tr := &Trace{
		Events:  append([]Event(nil), path...),
		Failure: f,
		Phase:   PhaseThreads,
		FailThread: func() int {
			if thread < 0 {
				return -1
			}
			return thread
		}(),
		FailStep: -1,
	}
	if thread >= 0 && len(tr.Events) > 0 {
		last := tr.Events[len(tr.Events)-1]
		if last.Thread == thread {
			tr.FailStep = last.Step
		}
	}
	return tr
}

func (m *checker) failTraceEpilogue(path []Event, f *interp.Failure) *Trace {
	return &Trace{
		Events:     append([]Event(nil), path...),
		Failure:    f,
		Phase:      PhaseEpilogue,
		FailThread: -1,
		FailStep:   -1,
	}
}

// Format renders the counterexample as a readable schedule, one line
// per executed step, using the lowered program's step labels.
func (t *Trace) Format(p *ir.Program) string {
	if t == nil {
		return "ok"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample: %s\n", t.Failure)
	switch t.Phase {
	case PhasePrologue:
		b.WriteString("  (failed while running the sequential prologue)\n")
		return b.String()
	case PhaseEpilogue:
		b.WriteString("  (the correctness checks after the join failed under this schedule)\n")
	}
	for i, ev := range t.Events {
		label := ""
		if ev.Thread >= 0 && ev.Thread < len(p.Threads) {
			seq := p.Threads[ev.Thread]
			if ev.Step >= 0 && ev.Step < len(seq.Steps) {
				label = seq.Steps[ev.Step].Label
			}
		}
		fmt.Fprintf(&b, "  %3d. thread %d: %s\n", i+1, ev.Thread, label)
	}
	if len(t.Deadlocked) > 0 {
		b.WriteString("  deadlocked threads:\n")
		for _, d := range t.Deadlocked {
			label := ""
			if d.Thread < len(p.Threads) && d.Step < len(p.Threads[d.Thread].Steps) {
				label = p.Threads[d.Thread].Steps[d.Step].Label
			}
			fmt.Fprintf(&b, "    thread %d blocked at: %s\n", d.Thread, label)
		}
	}
	return b.String()
}
