// Package mc is the explicit-state model checker PSKETCH needs from its
// verifier (the paper used SPIN): given a concrete candidate, it
// explores all thread interleavings of the lowered program, checking
// assertions, memory safety, deadlock freedom, and bounded termination,
// and produces a counterexample trace on failure (§6).
//
// Four sound reductions keep the state space tractable:
//
//   - steps whose guards are false are skipped without a scheduling
//     point (they are not executed at all);
//   - steps that touch only thread-local state run eagerly after the
//     scheduled step (they commute with every other thread's steps;
//     disable with NoLocalFusion);
//   - a footprint-based partial-order reduction (the role SPIN's POR
//     plays in the paper): a static analysis over-approximates the
//     shared cells each step reads and writes (internal/ir), and the
//     search expands only a persistent subset of the enabled threads at
//     each state, carrying sleep sets down the DFS to skip commuting
//     interleavings it has already covered (disable with NoPOR);
//   - a thread-symmetry (orbit) reduction: ir.Symmetry detects groups
//     of threads the candidate treats identically (same code, rotatable
//     locals, interchangeable heap roles), and every visited-set lookup
//     uses the minimum fingerprint over the state's orbit under the
//     induced automorphism group, so permutation-equivalent states are
//     expanded once (disable with NoSymmetry; candidates whose policy
//     breaks the symmetry get no classes and pay nothing).
//
// "Visited" therefore means: this state's canonical orbit
// representative was already expanded under some persistent set that is
// valid for the whole orbit — stored per-state masks live in the
// canonical frame and are translated through the automorphism at every
// lookup, which is what makes the symmetry reduction compose soundly
// with the POR's persistent/sleep sets. The visited table also records,
// per canonical state, which transitions were already explored, so
// revisits through other paths only do new work. States are fingerprinted
// with an incrementally maintained Zobrist hash (updated from each
// step's touched footprint, not recomputed), and Options.Compress can
// swap the fingerprint table for a SPIN-style collapse-compressed exact
// table or a lossy bitstate filter; see ARCHITECTURE.md's state-space
// reduction stack section for how the pieces interact.
//
// # Concurrency contract
//
// Check is safe to call from multiple goroutines on the same Layout
// and candidate: the layout and lowered program are read-only, and all
// mutable search state lives in per-call structures.
//
// With Options.Parallelism > 1 the search itself is parallel: the DFS
// is sharded at the root by first-event choice, each shard explored by
// a worker goroutine against a lock-striped shared visited set, and a
// shared cancellation flag stops every worker as soon as the trace
// budget is met (so counterexamples surface as soon as any shard finds
// one). Parallel search is sound and complete over the same
// interleaving space, but nondeterministic in which counterexample it
// reports first and in the exact States count (shards race to claim
// states, and with POR the sleep sets depend on claim order).
// Parallelism <= 1 runs the sequential DFS and is fully deterministic.
// Options.Hook forces the sequential path with POR off (the hook
// observes the full schedule space).
package mc

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"psketch/internal/desugar"
	"psketch/internal/interp"
	"psketch/internal/ir"
	"psketch/internal/obs"
	"psketch/internal/state"
)

// Event is one executed step of the fork phase.
type Event struct {
	Thread int // 0-based forked thread index
	Step   int // index into the thread's Seq.Steps
}

// Phase locates a failure.
type Phase int

// Failure phases.
const (
	PhasePrologue Phase = iota
	PhaseThreads
	PhaseEpilogue
)

// Trace is a counterexample: the schedule that led to a violation.
type Trace struct {
	Events  []Event
	Failure *interp.Failure
	Phase   Phase
	// FailThread is the forked thread whose step failed (-1 for
	// prologue/epilogue failures and deadlocks).
	FailThread int
	// FailStep is the failing step index within FailThread.
	FailStep int
	// Deadlocked lists, per blocked thread, the step it is blocked at.
	Deadlocked []Event
}

func (t *Trace) String() string {
	if t == nil {
		return "ok"
	}
	s := fmt.Sprintf("%s (phase %d", t.Failure, t.Phase)
	if t.FailThread >= 0 {
		s += fmt.Sprintf(", thread %d step %d", t.FailThread, t.FailStep)
	}
	return s + fmt.Sprintf(") after %d events", len(t.Events))
}

// Options bound the search.
type Options struct {
	MaxStates int // default 4,000,000
	// Hook, when set, observes every executed step (for debugging and
	// trace replay); it must not retain st. A hook forces the
	// sequential search and disables the partial-order reduction, so
	// the full schedule space is observed.
	Hook func(ev Event, st *state.State)
	// NoLocalFusion disables the eager execution of thread-local steps,
	// used to cross-check its soundness in tests.
	NoLocalFusion bool
	// NoPOR disables the footprint-based partial-order reduction
	// (persistent sets + sleep sets), used to cross-check its soundness
	// in tests and to measure its effect.
	NoPOR bool
	// NoSymmetry disables the thread-symmetry reduction (orbit
	// canonicalization of visited-set lookups), used to cross-check its
	// soundness in tests and to measure its effect. Symmetry is also
	// off whenever a Hook is set.
	NoSymmetry bool
	// Compress selects the visited-set representation: "" (default)
	// is the exact open-addressed fingerprint table, "collapse" interns
	// state components SPIN-style and keys on id tuples (exact, full
	// contents compared), and "bitstate" is SPIN's supertrace — two
	// bits per state, which can silently prune states on hash aliasing
	// and so trades the completeness guarantee for memory (reported
	// counterexamples remain real schedules). Compression forces the
	// sequential search.
	Compress string
	// MaxTraces asks the search to keep going after the first
	// counterexample and return up to this many distinct failing
	// traces (default 1, the paper's behaviour). More traces per
	// verifier call means more observations per CEGIS iteration.
	// With POR enabled, commuting variants of one failure count as one
	// schedule, so fewer than MaxTraces distinct traces may be found.
	MaxTraces int
	// Parallelism shards the search across this many worker goroutines
	// (<= 1, or a set Hook, runs the deterministic sequential DFS).
	Parallelism int
	// Cancel, when set and stored true by another goroutine, makes the
	// search unwind cooperatively; Check then returns ErrCanceled. The
	// pipelined CEGIS loop uses this to abandon a verification the
	// speculative solver has already made moot.
	Cancel *atomic.Bool
	// Tracer, when set, emits one "mc.check" span per Check (states,
	// transitions, POR-pruned and sleep-set-skipped transition counts)
	// with one "mc.worker" child per parallel shard worker, parented
	// under ParentSpan. Nil keeps the DFS hot path allocation-free.
	Tracer     *obs.Tracer
	ParentSpan obs.SpanID
}

// ErrCanceled is returned by Check when Options.Cancel fired before the
// search finished. A canceled check produced no verdict.
var ErrCanceled = errors.New("mc: canceled")

// Result is the verifier's verdict.
type Result struct {
	OK     bool
	Trace  *Trace   // nil when OK (the first counterexample)
	Traces []*Trace // all collected counterexamples (≥1 when !OK)
	States int      // distinct states expanded
	Trans  int      // transitions executed
	// Workers is the number of parallel search workers used (0 for the
	// sequential DFS); WorkerStates counts the states each expanded.
	Workers      int
	WorkerStates []int
	// SymClasses is the number of thread-symmetry classes the search
	// canonicalized under (0 = candidate asymmetric or reduction off);
	// OrbitHits counts visited-set hits reached through a non-identity
	// orbit representative.
	SymClasses int
	OrbitHits  int64
	// VisitedBytes estimates the peak memory held by the visited set.
	VisitedBytes uint64
}

// Check explores all interleavings of the candidate.
func Check(l *state.Layout, cand desugar.Candidate, opts Options) (*Result, error) {
	if opts.MaxStates == 0 {
		opts.MaxStates = 4_000_000
	}
	if opts.MaxTraces == 0 {
		opts.MaxTraces = 1
	}
	p := l.Prog
	if !p.Concurrent() {
		return nil, fmt.Errorf("mc: program has no fork; use the sequential checker")
	}
	m := &checker{l: l, p: p, cand: cand, opts: opts}
	m.por = !opts.NoPOR && opts.Hook == nil
	// The footprint tables drive the POR and the incremental hashing's
	// per-step write lists, so they are built even with POR off.
	m.pt = buildPOR(l, ir.Footprints(p, cand))
	m.hz = newHasher(l, m.pt)
	switch opts.Compress {
	case "":
		m.tab = newFpTable()
	case "collapse":
		m.col = newCollapse(l)
	case "bitstate":
		m.bst = newBitstate(opts.MaxStates)
	default:
		return nil, fmt.Errorf("mc: unknown Compress mode %q (want \"\", \"collapse\" or \"bitstate\")", opts.Compress)
	}
	m.initEval()
	m.span = opts.Tracer.Start("mc.check", opts.ParentSpan)

	st := l.NewState()
	// Global initializers and prologue run deterministically.
	for _, seq := range []*ir.Seq{p.GlobalInit, p.Prologue} {
		if fail := m.runSequential(st, seq); fail != nil {
			tr := &Trace{Failure: fail, Phase: PhasePrologue, FailThread: -1}
			res := &Result{OK: false, Trace: tr, Traces: []*Trace{tr}}
			m.endSpan(res, nil)
			return res, nil
		}
	}

	// Thread-symmetry reduction: detect permutation-equivalent thread
	// rings for this candidate and validate them against the layout and
	// the post-prologue heap. A Hook observes the raw schedule space,
	// so canonicalization is off under one.
	if !opts.NoSymmetry && opts.Hook == nil {
		if classes := ir.Symmetry(p, cand); len(classes) > 0 {
			m.sym = buildSym(l, classes, m.pt, st)
		}
	}

	if opts.Parallelism > 1 && opts.Hook == nil && opts.Compress == "" {
		res, err := m.checkParallel(st)
		m.finishResult(res)
		m.endSpan(res, err)
		return res, err
	}

	var path []Event
	if err := m.dfs(st, &path); err != nil {
		m.endSpan(nil, err)
		return nil, err
	}
	res := &Result{OK: len(m.traces) == 0, Traces: m.traces, States: m.states, Trans: m.trans}
	if !res.OK {
		res.Trace = m.traces[0]
	}
	m.finishResult(res)
	m.endSpan(res, nil)
	return res, nil
}

// finishResult fills the reduction/memory fields shared by both search
// modes.
func (m *checker) finishResult(res *Result) {
	if res == nil {
		return
	}
	if m.sym != nil {
		res.SymClasses = m.sym.classes
	}
	res.OrbitHits = m.orbitHits
	switch {
	case m.col != nil:
		res.VisitedBytes = m.col.bytes()
	case m.bst != nil:
		res.VisitedBytes = m.bst.bytes()
	case m.tab != nil:
		res.VisitedBytes = m.tab.bytes()
	}
	if m.pvisited != nil {
		res.VisitedBytes = m.pvisited.bytes()
	}
}

// endSpan finishes the mc.check span with the search totals. The
// parallel path has already folded its workers' counters into m.
func (m *checker) endSpan(res *Result, err error) {
	if !m.span.Active() {
		return
	}
	if err != nil || res == nil {
		m.span.End(obs.Str("status", "error"))
		return
	}
	ok := int64(0)
	if res.OK {
		ok = 1
	}
	m.span.End(
		obs.Int("ok", ok),
		obs.Int("states", int64(res.States)),
		obs.Int("trans", int64(res.Trans)),
		obs.Int("traces", int64(len(res.Traces))),
		obs.Int("workers", int64(res.Workers)),
		obs.Int("por_pruned", m.porPruned),
		obs.Int("sleep_skips", m.sleepSkips),
		obs.Int("sym_classes", int64(res.SymClasses)),
		obs.Int("orbit_hits", res.OrbitHits),
		obs.Int("visited_bytes", int64(res.VisitedBytes)))
}

type checker struct {
	l    *state.Layout
	p    *ir.Program
	cand desugar.Candidate
	opts Options

	por bool
	pt  *porTables // footprints for the fixed candidate (read-only)
	hz  *hasher    // incremental Zobrist hashing (read-only)
	sym *symAuto   // thread-symmetry group, nil if none (read-only)

	// Exactly one visited backend is set (Options.Compress); the
	// parallel search uses its striped set instead (pvisited, kept for
	// the memory estimate).
	tab      *fpTable
	col      *collapseTab
	bst      *bitstate
	pvisited *stripedSet

	states int
	trans  int
	traces []*Trace

	// orbitHits counts visited-set hits reached through a non-identity
	// orbit representative; symScratch materializes canonical states
	// for the collapse backend.
	orbitHits  int64
	symScratch *state.State

	// POR effectiveness counters (plain int adds on the hot path, no
	// allocation): transitions dropped by the persistent-set choice, and
	// transitions skipped because the sleep set already covered them.
	// Reported as mc.check span attributes when tracing is on.
	porPruned  int64
	sleepSkips int64
	span       obs.Span // the in-flight mc.check span (inactive when untraced)

	// Hot-path scratch: long-lived evaluation contexts (one per thread,
	// retargeted at the state under evaluation), a freelist of state
	// clones, and the epilogue scratch state.
	ctxs    []*interp.Ctx
	seqCtx  *interp.Ctx
	scratch *state.State
	free    []*state.State
}

// initEval builds the reusable evaluation contexts.
func (m *checker) initEval() {
	m.ctxs = make([]*interp.Ctx, len(m.p.Threads))
	for t, seq := range m.p.Threads {
		m.ctxs[t] = interp.NewCtx(m.l, nil, seq, m.cand)
	}
	m.seqCtx = interp.NewCtx(m.l, nil, nil, m.cand)
}

// cloneState takes a state off the freelist (or allocates) and copies
// st into it.
func (m *checker) cloneState(st *state.State) *state.State {
	if n := len(m.free); n > 0 {
		c := m.free[n-1]
		m.free = m.free[:n-1]
		c.CopyFrom(st)
		return c
	}
	return st.Clone()
}

// release returns a clone to the freelist once its subtree is explored.
func (m *checker) release(st *state.State) {
	m.free = append(m.free, st)
}

// scratchFrom copies st into the checker's persistent scratch state.
func (m *checker) scratchFrom(st *state.State) *state.State {
	if m.scratch == nil {
		m.scratch = st.Clone()
	} else {
		m.scratch.CopyFrom(st)
	}
	return m.scratch
}

// record stores a counterexample and reports whether the search should
// stop (trace budget reached).
func (m *checker) record(tr *Trace) bool {
	m.traces = append(m.traces, tr)
	return len(m.traces) >= m.opts.MaxTraces
}

// runSequential executes a deterministic sequence (prologue, epilogue,
// global init) to completion on st.
func (m *checker) runSequential(st *state.State, seq *ir.Seq) *interp.Failure {
	ctx := m.seqCtx
	ctx.Reset(st, seq)
	for _, step := range seq.Steps {
		ok, f := ctx.EvalGuards(step)
		if f != nil {
			return f
		}
		if !ok {
			continue
		}
		enabled, f := ctx.EvalCond(step)
		if f != nil {
			return f
		}
		if !enabled {
			return &interp.Failure{Kind: interp.FailDeadlock, Pos: step.Pos, Msg: "blocking condition false in single-threaded phase"}
		}
		if f := ctx.ExecBody(step); f != nil {
			return f
		}
	}
	return nil
}

// advance normalizes one thread: skips guard-false steps and eagerly
// runs local steps, recording executed events. It stops at the first
// shared (scheduling-relevant) step or at the end of the sequence.
func (m *checker) advance(st *state.State, t int, path *[]Event) *interp.Failure {
	seq := m.p.Threads[t]
	ctx := m.ctxs[t]
	ctx.Reset(st, seq)
	for {
		pc := int(st.PCs[t])
		if pc >= len(seq.Steps) {
			return nil
		}
		step := seq.Steps[pc]
		ok, f := ctx.EvalGuards(step)
		if f != nil {
			return f
		}
		if !ok {
			st.PCs[t] = int32(pc + 1)
			continue
		}
		if !step.Local || m.opts.NoLocalFusion {
			return nil
		}
		if m.opts.Hook != nil {
			m.opts.Hook(Event{Thread: t, Step: pc}, st)
		}
		if f := ctx.ExecBody(step); f != nil {
			*path = append(*path, Event{Thread: t, Step: pc})
			return f
		}
		*path = append(*path, Event{Thread: t, Step: pc})
		st.PCs[t] = int32(pc + 1)
	}
}

// normalize advances every thread (guard skips + eager local runs).
func (m *checker) normalize(st *state.State, path *[]Event) (int, *interp.Failure) {
	for t := range m.p.Threads {
		if f := m.advance(st, t, path); f != nil {
			return t, f
		}
	}
	return -1, nil
}

// debugHash, set by tests, cross-checks every incrementally maintained
// fingerprint against a full rehash.
var debugHash = false

// dfs explores the interleavings from the root state st; counterexamples
// accumulate in m.traces.
func (m *checker) dfs(st *state.State, path *[]Event) error {
	if t, f := m.normalize(st, path); f != nil {
		m.record(m.failTrace(*path, f, t))
		return nil
	}
	h1, h2 := m.hz.full(st)
	return m.expand(st, 0, path, h1, h2)
}

// dfsChild continues the search after executing a step of thread t:
// only t needs renormalizing (no other thread's locals changed), then
// the state is expanded under the child's sleep set. h1, h2 fingerprint
// st as passed in; normalization touches only t's block and PC, so the
// fingerprint is patched from the block delta.
func (m *checker) dfsChild(st *state.State, t int, sleep uint64, path *[]Event, h1, h2 uint64) error {
	b1, b2 := m.hz.block(st, t)
	if f := m.advance(st, t, path); f != nil {
		m.record(m.failTrace(*path, f, t))
		return nil
	}
	a1, a2 := m.hz.block(st, t)
	return m.expand(st, sleep, path, h1^b1^a1, h2^b2^a2)
}

// canonState materializes the canonical orbit representative (st
// itself under the identity).
func (m *checker) canonState(st *state.State, act *symElem) *state.State {
	if act == nil {
		return st
	}
	if m.symScratch == nil {
		m.symScratch = st.Clone()
	}
	m.sym.applyAct(m.symScratch, st, act)
	return m.symScratch
}

// done reports whether the trace budget is met.
func (m *checker) done() bool {
	return len(m.traces) >= m.opts.MaxTraces
}

// expand explores the (normalized) state st. sleep is the set of
// threads whose current transitions are already covered by sibling
// subtrees; the visited table's done-mask extends that across revisits
// through other paths, so each (state, transition) pair is explored at
// most once.
func (m *checker) expand(st *state.State, sleep uint64, path *[]Event, h1, h2 uint64) error {
	if m.opts.Cancel != nil && m.opts.Cancel.Load() {
		return ErrCanceled
	}
	if debugHash {
		if f1, f2 := m.hz.full(st); f1 != h1 || f2 != h2 {
			panic("mc: incremental fingerprint diverged from full rehash")
		}
	}
	// Orbit canonicalization: look up under the minimal fingerprint
	// over the state's symmetry orbit; act is the element that reaches
	// it (nil for the identity).
	ch1, ch2 := h1, h2
	var act *symElem
	if m.sym != nil {
		ch1, ch2, act = m.sym.canonKey(st, h1, h2)
	}

	// Visited lookup through the selected backend. Bitstate stores no
	// per-state masks: a seen state is never re-expanded, a fresh one
	// explores its full persistent set minus the local sleep set.
	var idx int
	var ce *colEntry
	var fresh bool
	switch {
	case m.bst != nil:
		fresh = m.bst.visit(ch1, ch2)
	case m.col != nil:
		ce, fresh = m.col.slot(m.canonState(st, act))
	default:
		idx, fresh = m.tab.slot(key16(ch1, ch2))
	}
	if !fresh && act != nil {
		m.orbitHits++
	}

	var pmaskLocal uint64
	haveWork := false
	if fresh {
		m.states++
		if m.states > m.opts.MaxStates {
			return fmt.Errorf("mc: state space exceeds %d states", m.opts.MaxStates)
		}
		unfinished, enabled, unfin, tr := m.statusMask(st)
		switch {
		case tr != nil:
			tr.Events = append(tr.Events, *path...)
			m.record(tr)
		case unfinished == 0:
			// All threads done: check the epilogue on a scratch copy
			// (the search continues from other interleavings).
			if f := m.runSequential(m.scratchFrom(st), m.p.Epilogue); f != nil {
				m.record(m.failTraceEpilogue(*path, f))
			}
		case enabled == 0:
			blocked := m.blockedEvents(st, unfin)
			f := &interp.Failure{Kind: interp.FailDeadlock, Pos: m.p.Threads[blocked[0].Thread].Steps[blocked[0].Step].Pos}
			dtr := m.failTrace(*path, f, -1)
			dtr.Deadlocked = blocked
			m.record(dtr)
		default:
			pmaskLocal = enabled
			if m.por {
				pmaskLocal = m.pt.persistentSet(st, enabled, unfin)
				m.porPruned += int64(bits.OnesCount64(enabled &^ pmaskLocal))
			}
			haveWork = true
		}
	}
	if m.bst != nil {
		if !fresh || !haveWork {
			return nil
		}
		m.sleepSkips += int64(bits.OnesCount64(pmaskLocal & sleep))
		todo := pmaskLocal &^ sleep
		if todo == 0 {
			return nil
		}
		return m.exploreTodo(st, todo, sleep, path, h1, h2)
	}

	// Stored masks live in the canonical frame: translate local masks
	// in with act's thread map, translate the claimed work back out.
	if fresh && haveWork {
		pmw := pmaskKnown | symFwd(pmaskLocal, act)
		if ce != nil {
			ce.pm = pmw
		} else {
			m.tab.pm[idx] = pmw
		}
	}
	var pmw, doneC uint64
	if ce != nil {
		pmw, doneC = ce.pm, ce.done
	} else {
		pmw, doneC = m.tab.pm[idx], m.tab.done[idx]
	}
	pmaskC := pmw &^ pmaskKnown
	sleepC := symFwd(sleep, act)
	availC := pmaskC &^ doneC
	m.sleepSkips += int64(bits.OnesCount64(availC & sleepC))
	todoC := availC &^ sleepC
	if todoC == 0 {
		return nil
	}
	// Claim now: the fingerprint table's index is invalidated by
	// insertions below (collapse entries are stable pointers).
	if ce != nil {
		ce.done |= todoC
	} else {
		m.tab.done[idx] |= todoC
	}
	return m.exploreTodo(st, symInv(todoC, act), sleep, path, h1, h2)
}

// exploreTodo executes each claimed transition (todo, in the local
// thread frame) and recurses; h1, h2 fingerprint st.
func (m *checker) exploreTodo(st *state.State, todo, sleep uint64, path *[]Event, h1, h2 uint64) error {
	single := todo&(todo-1) == 0
	explored := uint64(0)
	for work := todo; work != 0; {
		t := bits.TrailingZeros64(work)
		work &^= 1 << uint(t)
		if m.done() {
			return nil
		}
		var cs uint64
		if m.por {
			cs = m.pt.childSleep(st, sleep|explored, t)
		}
		explored |= 1 << uint(t)
		child := st
		if !single {
			child = m.cloneState(st)
		}
		seq := m.p.Threads[t]
		pc := int(child.PCs[t])
		step := seq.Steps[pc]
		ctx := m.ctxs[t]
		ctx.Reset(child, seq)
		m.trans++
		*path = append(*path, Event{Thread: t, Step: pc})
		if m.opts.Hook != nil {
			m.opts.Hook(Event{Thread: t, Step: pc}, child)
		}
		// Fingerprint delta: the step may write its footprint's shared
		// cells and its own block (locals + PC).
		preB1, preB2 := m.hz.block(child, t)
		preS1, preS2 := m.hz.sharedW(child, t, pc)
		if f := ctx.ExecBody(step); f != nil {
			m.record(m.failTrace(*path, f, t))
			*path = (*path)[:len(*path)-1]
			if !single {
				m.release(child)
			}
			continue
		}
		child.PCs[t] = int32(pc + 1)
		postS1, postS2 := m.hz.sharedW(child, t, pc)
		postB1, postB2 := m.hz.block(child, t)
		mark := len(*path)
		err := m.dfsChild(child, t, cs, path,
			h1^preB1^postB1^preS1^postS1, h2^preB2^postB2^preS2^postS2)
		if !single {
			m.release(child)
		}
		if err != nil {
			return err
		}
		*path = (*path)[:mark-1]
	}
	return nil
}

// statusMask inspects the normalized state: counts unfinished threads
// and reports the enabled and unfinished thread sets as bitmasks. A
// failure while evaluating a blocking condition is itself a
// counterexample.
func (m *checker) statusMask(st *state.State) (unfinished int, enabled, unfin uint64, tr *Trace) {
	for t, seq := range m.p.Threads {
		pc := int(st.PCs[t])
		if pc >= len(seq.Steps) {
			continue
		}
		unfinished++
		unfin |= 1 << uint(t)
		step := seq.Steps[pc]
		// Steps without a blocking condition are always enabled — no
		// evaluation needed.
		if step.Cond == nil {
			enabled |= 1 << uint(t)
			continue
		}
		// Blocking conditions are side-effect free (enforced at
		// lowering), so no state copy is needed.
		ctx := m.ctxs[t]
		ctx.Reset(st, seq)
		ok, f := ctx.EvalCond(step)
		if f != nil {
			return 0, 0, 0, m.failTrace(nil, f, t)
		}
		if ok {
			enabled |= 1 << uint(t)
		}
	}
	return unfinished, enabled, unfin, nil
}

// blockedEvents lists, per unfinished thread, the step it is blocked at
// (used only to report deadlocks).
func (m *checker) blockedEvents(st *state.State, unfin uint64) []Event {
	var out []Event
	for rest := unfin; rest != 0; {
		t := bits.TrailingZeros64(rest)
		rest &^= 1 << uint(t)
		out = append(out, Event{Thread: t, Step: int(st.PCs[t])})
	}
	return out
}

func (m *checker) failTrace(path []Event, f *interp.Failure, thread int) *Trace {
	tr := &Trace{
		Events:  append([]Event(nil), path...),
		Failure: f,
		Phase:   PhaseThreads,
		FailThread: func() int {
			if thread < 0 {
				return -1
			}
			return thread
		}(),
		FailStep: -1,
	}
	if thread >= 0 && len(tr.Events) > 0 {
		last := tr.Events[len(tr.Events)-1]
		if last.Thread == thread {
			tr.FailStep = last.Step
		}
	}
	return tr
}

func (m *checker) failTraceEpilogue(path []Event, f *interp.Failure) *Trace {
	return &Trace{
		Events:     append([]Event(nil), path...),
		Failure:    f,
		Phase:      PhaseEpilogue,
		FailThread: -1,
		FailStep:   -1,
	}
}

// Format renders the counterexample as a readable schedule, one line
// per executed step, using the lowered program's step labels.
func (t *Trace) Format(p *ir.Program) string {
	if t == nil {
		return "ok"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample: %s\n", t.Failure)
	switch t.Phase {
	case PhasePrologue:
		b.WriteString("  (failed while running the sequential prologue)\n")
		return b.String()
	case PhaseEpilogue:
		b.WriteString("  (the correctness checks after the join failed under this schedule)\n")
	}
	for i, ev := range t.Events {
		label := ""
		if ev.Thread >= 0 && ev.Thread < len(p.Threads) {
			seq := p.Threads[ev.Thread]
			if ev.Step >= 0 && ev.Step < len(seq.Steps) {
				label = seq.Steps[ev.Step].Label
			}
		}
		fmt.Fprintf(&b, "  %3d. thread %d: %s\n", i+1, ev.Thread, label)
	}
	if len(t.Deadlocked) > 0 {
		b.WriteString("  deadlocked threads:\n")
		for _, d := range t.Deadlocked {
			label := ""
			if d.Thread < len(p.Threads) && d.Step < len(p.Threads[d.Thread].Steps) {
				label = p.Threads[d.Thread].Steps[d.Step].Label
			}
			fmt.Fprintf(&b, "    thread %d blocked at: %s\n", d.Thread, label)
		}
	}
	return b.String()
}
