package mc

import (
	"testing"

	"psketch/internal/desugar"
	"psketch/internal/state"
)

// The parallel search must agree with the sequential verdict on every
// kind of outcome: assertion race, verified atomic, AB-BA deadlock.
func TestParallelMatchesSequential(t *testing.T) {
	for _, src := range []string{racySrc, atomicSrc, deadlockSrc} {
		_, l, sk := lower(t, src, desugar.Options{})
		cand := make(desugar.Candidate, len(sk.Holes))
		seq, err := Check(l, cand, Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Check(l, cand, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.OK != seq.OK {
			t.Fatalf("parallel changed the verdict: par=%v seq=%v", par.OK, seq.OK)
		}
		if !par.OK {
			if par.Trace == nil || par.Trace.Failure == nil {
				t.Fatal("parallel counterexample missing")
			}
			if par.Trace.Failure.Kind != seq.Trace.Failure.Kind {
				t.Fatalf("failure kind differs: par=%v seq=%v",
					par.Trace.Failure.Kind, seq.Trace.Failure.Kind)
			}
		}
	}
}

// A verified program must be explored exhaustively: with no
// counterexample to cancel on, the unreduced parallel search covers the
// same state space as the sequential one (the visited set is shared, so
// the total distinct states match exactly). With POR on, the parallel
// sleep sets depend on claim order, so the guarantee weakens to "same
// verdict, never more states than the unreduced search".
func TestParallelExhaustiveStates(t *testing.T) {
	_, l, sk := lower(t, atomicSrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	seq, err := Check(l, cand, Options{NoPOR: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Check(l, cand, Options{NoPOR: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.OK || !seq.OK {
		t.Fatal("expected both searches to verify")
	}
	if par.States != seq.States {
		t.Fatalf("parallel explored %d states, sequential %d", par.States, seq.States)
	}
	if par.Workers < 1 || len(par.WorkerStates) != par.Workers {
		t.Fatalf("worker accounting: workers=%d states=%v", par.Workers, par.WorkerStates)
	}
	total := 0
	for _, n := range par.WorkerStates {
		total += n
	}
	// Workers claim every state except the root, which the caller's
	// goroutine expands.
	if total != par.States-1 {
		t.Fatalf("per-worker states %v sum to %d, want %d", par.WorkerStates, total, par.States-1)
	}

	porPar, err := Check(l, cand, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !porPar.OK {
		t.Fatal("POR parallel search changed the verdict")
	}
	if porPar.States > seq.States {
		t.Fatalf("POR parallel explored %d states, more than the unreduced %d", porPar.States, seq.States)
	}
}

// Deadlock counterexamples must survive the parallel path with their
// blocked-thread sets intact.
func TestParallelDeadlockTrace(t *testing.T) {
	_, l, sk := lower(t, deadlockSrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	res, err := Check(l, cand, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("missed the AB-BA deadlock in parallel mode")
	}
	if len(res.Trace.Deadlocked) != 2 {
		t.Fatalf("deadlock set: %v", res.Trace.Deadlocked)
	}
}

// The state budget must be enforced across all shards combined.
func TestParallelStateBudget(t *testing.T) {
	_, l, sk := lower(t, atomicSrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	// NoSymmetry: the two threads are symmetric, and the orbit
	// reduction would legitimately fit the space into the budget.
	_, err := Check(l, cand, Options{Parallelism: 4, MaxStates: 3, NoSymmetry: true})
	if err == nil {
		t.Fatal("expected the shared state budget to trip")
	}
}

// MaxTraces > 1 must collect distinct traces in parallel mode too.
func TestParallelMultiTrace(t *testing.T) {
	_, l, sk := lower(t, racySrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	res, err := Check(l, cand, Options{Parallelism: 4, MaxTraces: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("missed the lost update")
	}
	if len(res.Traces) == 0 || len(res.Traces) > 3 {
		t.Fatalf("trace budget violated: got %d traces", len(res.Traces))
	}
	for _, tr := range res.Traces {
		if tr.Failure == nil {
			t.Fatal("trace without failure")
		}
	}
}

// A Hook forces the sequential path: the schedule observation must be
// deterministic even when Parallelism is requested.
func TestParallelHookSequentialFallback(t *testing.T) {
	_, l, sk := lower(t, racySrc, desugar.Options{})
	cand := make(desugar.Candidate, len(sk.Holes))
	events := 0
	res, err := Check(l, cand, Options{
		Parallelism: 4,
		Hook:        func(Event, *state.State) { events++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("missed the lost update")
	}
	if res.Workers != 0 {
		t.Fatalf("hooked search must be sequential, got %d workers", res.Workers)
	}
	if events == 0 {
		t.Fatal("hook never fired")
	}
}
