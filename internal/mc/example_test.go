package mc_test

import (
	"fmt"

	"psketch/internal/desugar"
	"psketch/internal/ir"
	"psketch/internal/mc"
	"psketch/internal/parser"
	"psketch/internal/state"
)

// ExampleCheck verifies one concrete program (no holes) over every
// thread interleaving: a racy increment is refuted, its atomic variant
// is verified.
func ExampleCheck() {
	for _, p := range []struct{ name, body string }{
		{"racy", "int t = g; t = t + 1; g = t;"},
		{"atomic", "atomic { g = g + 1; }"},
	} {
		src := fmt.Sprintf(`
int g = 0;
harness void Main() {
	fork (i; 2) { %s }
	assert g == 2;
}
`, p.body)
		prog, err := parser.Parse(src)
		if err != nil {
			panic(err)
		}
		sk, err := desugar.Desugar(prog, "Main", desugar.Options{})
		if err != nil {
			panic(err)
		}
		lowered, err := ir.Lower(sk)
		if err != nil {
			panic(err)
		}
		layout, err := state.NewLayout(lowered)
		if err != nil {
			panic(err)
		}
		// No holes, so the empty candidate is the program itself.
		res, err := mc.Check(layout, desugar.Candidate{}, mc.Options{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: ok=%v\n", p.name, res.OK)
	}
	// Output:
	// racy: ok=false
	// atomic: ok=true
}
