package mc

import (
	"errors"
	"sync/atomic"
	"testing"

	"psketch/internal/desugar"
)

// A pre-fired cancel token must surface ErrCanceled from Check rather
// than a partial verdict, on both the sequential and parallel searches.
func TestCheckCancel(t *testing.T) {
	for _, par := range []int{1, 4} {
		var cancel atomic.Bool
		cancel.Store(true)
		_, l, sk := lower(t, racySrc, desugar.Options{})
		_, err := Check(l, make(desugar.Candidate, len(sk.Holes)),
			Options{Parallelism: par, Cancel: &cancel})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("parallelism %d: want ErrCanceled, got %v", par, err)
		}
	}
}

// A nil token (the default) must leave the search untouched.
func TestCheckNilCancel(t *testing.T) {
	res := checkSrc(t, atomicSrc, Options{Cancel: nil})
	if !res.OK {
		t.Fatalf("atomic counter should verify: %v", res.Trace)
	}
}
