package parser

import (
	"strings"
	"testing"

	"psketch/internal/ast"
	"psketch/internal/token"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, src)
	}
	return prog
}

func TestStructAndGlobals(t *testing.T) {
	prog := parseOK(t, `
struct Node {
	Node next = null;
	int key;
}
Node head;
int[4] results;
bool flag = true;
`)
	if len(prog.Structs) != 1 || prog.Structs[0].Name != "Node" {
		t.Fatal("struct missing")
	}
	n := prog.Structs[0]
	if len(n.Fields) != 2 || n.Fields[0].Default == nil || n.Fields[1].Default != nil {
		t.Fatal("field defaults wrong")
	}
	if len(prog.Globals) != 3 {
		t.Fatalf("globals: %d", len(prog.Globals))
	}
	if prog.Globals[1].Type.ArrayLen != 4 {
		t.Fatal("array type wrong")
	}
}

func TestFunctionForms(t *testing.T) {
	prog := parseOK(t, `
int spec(int x) { return x; }
int f(int x) implements spec { return x; }
generator bool g(int a) { return {| a == 0 | true |}; }
harness void Main() { fork (i; 2) { } }
`)
	if prog.Func("f").Implements != "spec" {
		t.Fatal("implements lost")
	}
	if !prog.Func("g").Generator {
		t.Fatal("generator flag lost")
	}
	if !prog.Func("Main").Harness {
		t.Fatal("harness flag lost")
	}
}

func TestStatements(t *testing.T) {
	prog := parseOK(t, `
struct T { int v; }
T obj;
void f(int n) {
	int x = 0;
	x = x + 1;
	if (x == 1) { x = 2; } else if (x == 2) { x = 3; } else { x = 4; }
	while (x < n) { x = x + 1; }
	assert x >= 0;
	atomic { x = 0; }
	atomic (x == 0) { x = 1; }
	atomic (x == 1);
	lock(obj);
	unlock(obj);
	reorder { x = 1; x = 2; }
	repeat (3) x = x + 1;
	return;
}
`)
	body := prog.Func("f").Body.Stmts
	kinds := []string{}
	for _, s := range body {
		kinds = append(kinds, strings.TrimPrefix(strings.TrimPrefix(typeName(s), "*ast."), "ast."))
	}
	want := []string{"DeclStmt", "AssignStmt", "IfStmt", "WhileStmt", "AssertStmt",
		"AtomicStmt", "AtomicStmt", "AtomicStmt", "LockStmt", "LockStmt",
		"ReorderStmt", "RepeatStmt", "ReturnStmt"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v", kinds)
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *ast.DeclStmt:
		return "DeclStmt"
	case *ast.AssignStmt:
		return "AssignStmt"
	case *ast.IfStmt:
		return "IfStmt"
	case *ast.WhileStmt:
		return "WhileStmt"
	case *ast.AssertStmt:
		return "AssertStmt"
	case *ast.AtomicStmt:
		return "AtomicStmt"
	case *ast.LockStmt:
		return "LockStmt"
	case *ast.ReorderStmt:
		return "ReorderStmt"
	case *ast.RepeatStmt:
		return "RepeatStmt"
	case *ast.ReturnStmt:
		return "ReturnStmt"
	}
	return "?"
}

func TestExpressionPrecedence(t *testing.T) {
	e, err := ParseExprString("a + b * c == d && !e || f < g")
	if err != nil {
		t.Fatal(err)
	}
	// ((a + (b*c)) == d && !e) || (f < g)
	or, ok := e.(*ast.Binary)
	if !ok || or.Op != token.LOR {
		t.Fatalf("top is %T", e)
	}
	and, ok := or.X.(*ast.Binary)
	if !ok || and.Op != token.LAND {
		t.Fatal("lhs not &&")
	}
	eq, ok := and.X.(*ast.Binary)
	if !ok || eq.Op != token.EQ {
		t.Fatal("not ==")
	}
	add, ok := eq.X.(*ast.Binary)
	if !ok || add.Op != token.ADD {
		t.Fatal("not +")
	}
	if mul, ok := add.Y.(*ast.Binary); !ok || mul.Op != token.MUL {
		t.Fatal("b*c not grouped")
	}
}

func TestPostfixChain(t *testing.T) {
	e, err := ParseExprString("a.b.c[2].d")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := e.(*ast.FieldExpr)
	if !ok || f.Name != "d" {
		t.Fatalf("got %T", e)
	}
}

func TestHoleForms(t *testing.T) {
	e, err := ParseExprString("??")
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := e.(*ast.Hole); !ok || h.Width != 0 {
		t.Fatalf("got %#v", e)
	}
	e, err = ParseExprString("??(4)")
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := e.(*ast.Hole); !ok || h.Width != 4 {
		t.Fatalf("got %#v", e)
	}
}

func TestSliceAndCast(t *testing.T) {
	e, err := ParseExprString("(int) b[2::3]")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*ast.CastExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	sl, ok := c.X.(*ast.SliceExpr)
	if !ok || sl.Len != 3 {
		t.Fatalf("got %T", c.X)
	}
}

func TestNewExpr(t *testing.T) {
	e, err := ParseExprString("new Node(3, x)")
	if err != nil {
		t.Fatal(err)
	}
	n, ok := e.(*ast.NewExpr)
	if !ok || n.Type != "Node" || len(n.Args) != 2 {
		t.Fatalf("got %#v", e)
	}
}

func TestForkForms(t *testing.T) {
	// Both the paper's "fork (int i, N)" and our "fork (i; N)".
	for _, src := range []string{
		"harness void M() { fork (int i, 3) { } }",
		"harness void M() { fork (i; 3) { } }",
	} {
		prog := parseOK(t, src)
		f := prog.Func("M").Body.Stmts[0].(*ast.ForkStmt)
		if f.Var != "i" {
			t.Fatalf("%s: var %q", src, f.Var)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"void f() { int; }",
		"void f() { x = ; }",
		"void f() { if x { } }",
		"void f( { }",
		"struct S { int }",
		"void f() { a = b",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("void f() {\n  x = ;\n}")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Fatalf("got %v", err)
	}
}
