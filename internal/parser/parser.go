// Package parser implements a recursive-descent parser for the PSketch
// language.
package parser

import (
	"strconv"

	"psketch/internal/ast"
	"psketch/internal/lexer"
	"psketch/internal/token"
)

// Parse lexes and parses a PSketch source file.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type parser struct {
	toks []token.Token
	pos  int
}

type parseError struct{ err error }

func (p *parser) fail(at token.Pos, format string, args ...any) {
	panic(parseError{token.Errorf(at, format, args...)})
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) peek() token.Token { return p.at(1) }

func (p *parser) at(n int) token.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.cur()
	if t.Kind != k {
		p.fail(t.Pos, "expected %s, got %s", k, t)
	}
	return p.next()
}

func (p *parser) parseProgram() (prog *ast.Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(parseError); ok {
				prog, err = nil, pe.err
				return
			}
			panic(r)
		}
	}()
	prog = &ast.Program{}
	for p.cur().Kind != token.EOF {
		switch {
		case p.cur().Kind == token.KwStruct:
			prog.Structs = append(prog.Structs, p.parseStruct())
		default:
			p.parseTopLevel(prog)
		}
	}
	return prog, nil
}

func (p *parser) parseStruct() *ast.StructDecl {
	start := p.expect(token.KwStruct)
	name := p.expect(token.IDENT)
	p.expect(token.LBRACE)
	d := &ast.StructDecl{P: start.Pos, Name: name.Lit}
	for !p.accept(token.RBRACE) {
		ft := p.parseType()
		fn := p.expect(token.IDENT)
		f := &ast.Field{P: ft.P, Type: ft, Name: fn.Lit}
		if p.accept(token.ASSIGN) {
			f.Default = p.parseExpr()
		}
		p.expect(token.SEMI)
		d.Fields = append(d.Fields, f)
	}
	return d
}

// parseTopLevel parses either a function or a global variable.
func (p *parser) parseTopLevel(prog *ast.Program) {
	start := p.cur().Pos
	generator, harness := false, false
	for {
		if p.accept(token.KwGenerator) {
			generator = true
			continue
		}
		if p.accept(token.KwHarness) {
			harness = true
			continue
		}
		break
	}
	typ := p.parseType()
	name := p.expect(token.IDENT)
	if p.cur().Kind == token.LPAREN {
		fn := &ast.FuncDecl{P: start, Generator: generator, Harness: harness, Name: name.Lit}
		if typ.Name != "void" || typ.ArrayLen > 0 {
			fn.Ret = typ
		}
		p.expect(token.LPAREN)
		for p.cur().Kind != token.RPAREN {
			pt := p.parseType()
			pn := p.expect(token.IDENT)
			fn.Params = append(fn.Params, &ast.Param{P: pt.P, Type: pt, Name: pn.Lit})
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		if p.accept(token.KwImplements) {
			fn.Implements = p.expect(token.IDENT).Lit
		}
		fn.Body = p.parseBlock()
		prog.Funcs = append(prog.Funcs, fn)
		return
	}
	if generator || harness {
		p.fail(start, "generator/harness only apply to functions")
	}
	g := &ast.GlobalDecl{P: start, Type: typ, Name: name.Lit}
	if p.accept(token.ASSIGN) {
		g.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	prog.Globals = append(prog.Globals, g)
}

func (p *parser) parseType() *ast.TypeExpr {
	t := p.cur()
	var name string
	switch t.Kind {
	case token.KwInt:
		name = "int"
	case token.KwBool:
		name = "bool"
	case token.KwBit:
		name = "bit"
	case token.KwVoid:
		name = "void"
	case token.IDENT:
		name = t.Lit
	default:
		p.fail(t.Pos, "expected type, got %s", t)
	}
	p.next()
	te := &ast.TypeExpr{P: t.Pos, Name: name}
	if p.cur().Kind == token.LBRACK {
		p.next()
		n := p.expect(token.INT)
		v, err := strconv.Atoi(n.Lit)
		if err != nil || v <= 0 {
			p.fail(n.Pos, "bad array length %q", n.Lit)
		}
		te.ArrayLen = v
		p.expect(token.RBRACK)
	}
	return te
}

func (p *parser) parseBlock() *ast.Block {
	start := p.expect(token.LBRACE)
	b := &ast.Block{P: start.Pos}
	for !p.accept(token.RBRACE) {
		if p.cur().Kind == token.EOF {
			p.fail(start.Pos, "unterminated block")
		}
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	return b
}

// startsType reports whether the tokens at the cursor begin a local
// variable declaration.
func (p *parser) startsType() bool {
	switch p.cur().Kind {
	case token.KwInt, token.KwBool, token.KwBit:
		return true
	case token.IDENT:
		// "QueueEntry nextEntry" — two adjacent identifiers.
		return p.peek().Kind == token.IDENT
	}
	return false
}

func (p *parser) parseStmt() ast.Stmt {
	t := p.cur()
	switch t.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.KwIf:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		var thenB *ast.Block
		if p.cur().Kind == token.LBRACE {
			thenB = p.parseBlock()
		} else {
			thenB = &ast.Block{P: p.cur().Pos, Stmts: []ast.Stmt{p.parseStmt()}}
		}
		st := &ast.IfStmt{P: t.Pos, Cond: cond, Then: thenB}
		if p.accept(token.KwElse) {
			if p.cur().Kind == token.KwIf {
				st.Else = p.parseStmt()
			} else if p.cur().Kind == token.LBRACE {
				st.Else = p.parseBlock()
			} else {
				st.Else = &ast.Block{P: p.cur().Pos, Stmts: []ast.Stmt{p.parseStmt()}}
			}
		}
		return st
	case token.KwWhile:
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		var body *ast.Block
		if p.cur().Kind == token.LBRACE {
			body = p.parseBlock()
		} else {
			body = &ast.Block{P: p.cur().Pos, Stmts: []ast.Stmt{p.parseStmt()}}
		}
		return &ast.WhileStmt{P: t.Pos, Cond: cond, Body: body}
	case token.KwReturn:
		p.next()
		st := &ast.ReturnStmt{P: t.Pos}
		if p.cur().Kind != token.SEMI {
			st.Val = p.parseExpr()
		}
		p.expect(token.SEMI)
		return st
	case token.KwAssert:
		p.next()
		cond := p.parseExpr()
		p.expect(token.SEMI)
		return &ast.AssertStmt{P: t.Pos, Cond: cond}
	case token.KwAtomic:
		p.next()
		st := &ast.AtomicStmt{P: t.Pos}
		if p.accept(token.LPAREN) {
			st.Cond = p.parseExpr()
			p.expect(token.RPAREN)
		}
		if p.cur().Kind == token.LBRACE {
			st.Body = p.parseBlock()
		} else {
			p.expect(token.SEMI)
			st.Body = &ast.Block{P: t.Pos}
		}
		return st
	case token.KwFork:
		p.next()
		p.expect(token.LPAREN)
		p.accept(token.KwInt) // "fork (int i, N)" and "fork (i; N)" both accepted
		v := p.expect(token.IDENT)
		if !p.accept(token.SEMI) {
			p.expect(token.COMMA)
		}
		n := p.parseExpr()
		p.expect(token.RPAREN)
		body := p.parseBlock()
		return &ast.ForkStmt{P: t.Pos, Var: v.Lit, N: n, Body: body}
	case token.KwReorder:
		p.next()
		return &ast.ReorderStmt{P: t.Pos, Body: p.parseBlock()}
	case token.KwRepeat:
		p.next()
		p.expect(token.LPAREN)
		n := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.RepeatStmt{P: t.Pos, Count: n, Body: p.parseStmt()}
	case token.KwLock, token.KwUnlock:
		p.next()
		p.expect(token.LPAREN)
		target := p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.LockStmt{P: t.Pos, Target: target, Unlock: t.Kind == token.KwUnlock}
	case token.SEMI:
		p.next()
		return &ast.Block{P: t.Pos} // empty statement
	}
	if p.startsType() {
		typ := p.parseType()
		name := p.expect(token.IDENT)
		st := &ast.DeclStmt{P: t.Pos, Type: typ, Name: name.Lit}
		if p.accept(token.ASSIGN) {
			st.Init = p.parseExpr()
		}
		p.expect(token.SEMI)
		return st
	}
	// Expression statement or assignment.
	e := p.parseExpr()
	if p.accept(token.ASSIGN) {
		rhs := p.parseExpr()
		p.expect(token.SEMI)
		return &ast.AssignStmt{P: t.Pos, LHS: e, RHS: rhs}
	}
	p.expect(token.SEMI)
	return &ast.ExprStmt{P: t.Pos, X: e}
}

// ------------------------------------------------------------ expressions

func (p *parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *parser) parseOr() ast.Expr {
	x := p.parseAnd()
	for p.cur().Kind == token.LOR {
		op := p.next()
		y := p.parseAnd()
		x = &ast.Binary{P: op.Pos, Op: token.LOR, X: x, Y: y}
	}
	return x
}

func (p *parser) parseAnd() ast.Expr {
	x := p.parseEquality()
	for p.cur().Kind == token.LAND {
		op := p.next()
		y := p.parseEquality()
		x = &ast.Binary{P: op.Pos, Op: token.LAND, X: x, Y: y}
	}
	return x
}

func (p *parser) parseEquality() ast.Expr {
	x := p.parseRelational()
	for p.cur().Kind == token.EQ || p.cur().Kind == token.NEQ {
		op := p.next()
		y := p.parseRelational()
		x = &ast.Binary{P: op.Pos, Op: op.Kind, X: x, Y: y}
	}
	return x
}

func (p *parser) parseRelational() ast.Expr {
	x := p.parseAdditive()
	for {
		k := p.cur().Kind
		if k != token.LT && k != token.LEQ && k != token.GT && k != token.GEQ {
			return x
		}
		op := p.next()
		y := p.parseAdditive()
		x = &ast.Binary{P: op.Pos, Op: op.Kind, X: x, Y: y}
	}
}

func (p *parser) parseAdditive() ast.Expr {
	x := p.parseMultiplicative()
	for p.cur().Kind == token.ADD || p.cur().Kind == token.SUB {
		op := p.next()
		y := p.parseMultiplicative()
		x = &ast.Binary{P: op.Pos, Op: op.Kind, X: x, Y: y}
	}
	return x
}

func (p *parser) parseMultiplicative() ast.Expr {
	x := p.parseUnary()
	for {
		k := p.cur().Kind
		if k != token.MUL && k != token.QUO && k != token.REM {
			return x
		}
		op := p.next()
		y := p.parseUnary()
		x = &ast.Binary{P: op.Pos, Op: op.Kind, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.NOT:
		p.next()
		return &ast.Unary{P: t.Pos, Op: token.NOT, X: p.parseUnary()}
	case token.SUB:
		p.next()
		return &ast.Unary{P: t.Pos, Op: token.SUB, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.DOT:
			p.next()
			name := p.expect(token.IDENT)
			x = &ast.FieldExpr{P: name.Pos, X: x, Name: name.Lit}
		case token.LBRACK:
			lb := p.next()
			idx := p.parseExpr()
			if p.accept(token.COLON2) {
				n := p.expect(token.INT)
				v, err := strconv.Atoi(n.Lit)
				if err != nil || v <= 0 {
					p.fail(n.Pos, "bad slice length %q", n.Lit)
				}
				p.expect(token.RBRACK)
				x = &ast.SliceExpr{P: lb.Pos, X: x, Start: idx, Len: v}
			} else {
				p.expect(token.RBRACK)
				x = &ast.IndexExpr{P: lb.Pos, X: x, Index: idx}
			}
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.fail(t.Pos, "bad integer literal %q", t.Lit)
		}
		return &ast.IntLit{P: t.Pos, Val: v}
	case token.BITS:
		p.next()
		for _, c := range t.Lit {
			if c != '0' && c != '1' {
				p.fail(t.Pos, "bad bit-string literal %q", t.Lit)
			}
		}
		return &ast.BitsLit{P: t.Pos, Text: t.Lit}
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{P: t.Pos, Val: true}
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{P: t.Pos, Val: false}
	case token.KwNull:
		p.next()
		return &ast.NullLit{P: t.Pos}
	case token.HOLE:
		p.next()
		h := &ast.Hole{P: t.Pos, ID: -1}
		// ??(w) gives the hole an explicit bit width.
		if p.cur().Kind == token.LPAREN && p.peek().Kind == token.INT && p.at(2).Kind == token.RPAREN {
			p.next()
			w, _ := strconv.Atoi(p.next().Lit)
			p.next()
			if w <= 0 || w > 30 {
				p.fail(t.Pos, "hole width %d out of range [1,30]", w)
			}
			h.Width = w
		}
		return h
	case token.REGEN:
		p.next()
		return &ast.Regen{P: t.Pos, Text: t.Lit, ID: -1}
	case token.KwNew:
		p.next()
		name := p.expect(token.IDENT)
		e := &ast.NewExpr{P: t.Pos, Type: name.Lit, Site: -1}
		p.expect(token.LPAREN)
		for p.cur().Kind != token.RPAREN {
			e.Args = append(e.Args, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		return e
	case token.LPAREN:
		// "(int) e" cast or parenthesized expression.
		if p.peek().Kind == token.KwInt && p.at(2).Kind == token.RPAREN {
			p.next()
			ty := p.parseType()
			p.expect(token.RPAREN)
			return &ast.CastExpr{P: t.Pos, Type: ty, X: p.parseUnary()}
		}
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case token.IDENT:
		p.next()
		if p.cur().Kind == token.LPAREN {
			p.next()
			c := &ast.CallExpr{P: t.Pos, Fun: t.Lit}
			for p.cur().Kind != token.RPAREN {
				c.Args = append(c.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
			return c
		}
		return &ast.Ident{P: t.Pos, Name: t.Lit}
	}
	p.fail(t.Pos, "expected expression, got %s", t)
	return nil
}

// ParseExprString parses a standalone expression (used to parse the
// enumerated strings of {| ... |} generators).
func ParseExprString(src string) (e ast.Expr, err error) {
	toks, lerr := lexer.Lex(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(parseError); ok {
				e, err = nil, pe.err
				return
			}
			panic(r)
		}
	}()
	e = p.parseExpr()
	if p.cur().Kind != token.EOF {
		return nil, token.Errorf(p.cur().Pos, "unexpected trailing tokens in expression %q", src)
	}
	return e, nil
}
