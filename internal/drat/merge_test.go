package drat

import (
	"reflect"
	"testing"
)

// Namespaces leave the common prefix alone, give each solver group its
// own fresh block above it, and remap the same source variable
// consistently within a group.
func TestNamespaceRemap(t *testing.T) {
	r := NewRecorder()
	n1 := r.Namespace(3)
	n2 := r.Namespace(3)

	n1.AddLemma([]int{1, -2, 4}) // 4 > common → fresh var (4)
	n1.AddLemma([]int{-4, 5})    // 4 again → same image; 5 → next fresh (5)... unless n2 interleaves
	n2.AddLemma([]int{3, 4})     // n2's 4 is a DIFFERENT solver's var → its own fresh image
	n1.AddLemma([]int{2, -4})    // stable mapping within n1

	_, lemmas := r.Export()
	if len(lemmas) != 4 {
		t.Fatalf("got %d lemmas, want 4", len(lemmas))
	}
	// Prefix vars 1..3 untouched, signs preserved.
	if lemmas[0][0] != 1 || lemmas[0][1] != -2 {
		t.Fatalf("prefix literals rewritten: %v", lemmas[0])
	}
	img1 := lemmas[0][2] // n1's image of 4
	if img1 <= 3 {
		t.Fatalf("above-prefix var not remapped above common: %v", lemmas[0])
	}
	if lemmas[1][0] != -img1 {
		t.Fatalf("n1's var 4 remapped inconsistently: %v vs image %d", lemmas[1], img1)
	}
	if lemmas[3][1] != -img1 {
		t.Fatalf("n1's var 4 drifted: %v vs image %d", lemmas[3], img1)
	}
	img2 := lemmas[2][1] // n2's image of 4
	if img2 == img1 || img2 <= 3 {
		t.Fatalf("namespaces collide: n1's 4→%d, n2's 4→%d", img1, img2)
	}
	if lemmas[2][0] != 3 {
		t.Fatalf("n2 prefix literal rewritten: %v", lemmas[2])
	}
}

// CubeClause negates the assignment named by the cube index, bit j of
// the index giving vars[j]'s polarity.
func TestCubeClausePolarity(t *testing.T) {
	vars := []int{7, 9}
	cases := [][]int{
		{7, 9},   // i=0: both false → clause asserts (7 ∨ 9)
		{-7, 9},  // i=1: bit0 set → 7 true → ¬7
		{7, -9},  // i=2
		{-7, -9}, // i=3
	}
	for i, want := range cases {
		if got := CubeClause(vars, i); !reflect.DeepEqual(got, want) {
			t.Errorf("CubeClause(%v, %d) = %v, want %v", vars, i, got, want)
		}
	}
	if got := CubeClause(nil, 0); len(got) != 0 {
		t.Errorf("empty cube clause: %v", got)
	}
}

// CubeTree enumerates every proper prefix assignment deepest-first:
// for k vars that is 2^(k-1) + ... + 2 clauses, ordered so each is RUP
// given the pair one level deeper.
func TestCubeTreeShape(t *testing.T) {
	if got := CubeTree([]int{1}); len(got) != 0 {
		t.Fatalf("1-var split needs no interior clauses, got %v", got)
	}
	got := CubeTree([]int{1, 2, 3})
	want := [][]int{
		// d=2: the four 2-prefix clauses
		{1, 2}, {-1, 2}, {1, -2}, {-1, -2},
		// d=1: the two 1-prefix clauses — conflicting units
		{1}, {-1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CubeTree = %v, want %v", got, want)
	}
}

// Export keeps premises apart from lemmas, preserves stamp order, and
// drops deletions (sound: more clauses stay available to the merge).
func TestExportDropsDeletions(t *testing.T) {
	r := NewRecorder()
	r.Attach()
	r.AddPremise([]int{1, 2})
	r.AddLemma([]int{1})
	r.DeleteLemma([]int{1})
	r.AddLemma([]int{2})
	prem, lem := r.Export()
	if len(prem) != 1 || prem[0][0] != 1 {
		t.Fatalf("premises: %v", prem)
	}
	if !reflect.DeepEqual(lem, [][]int{{1}, {2}}) {
		t.Fatalf("lemmas: %v", lem)
	}
}

// End-to-end shape of a merged cube refutation: per-cube UNSATs become
// CubeClause lemmas, CubeTree closes the split, and the standard
// backward checker replays the whole-space UNSAT.
func TestMergedCubeCertificateVerifies(t *testing.T) {
	// UNSAT over a,b,c: every polarity combination is excluded. No
	// premise is ever unit until BOTH cube vars are assigned, so the
	// cube clauses are each genuinely RUP under their cube assignment
	// while unit propagation alone derives nothing from the premises.
	var premises [][]int
	for m := 0; m < 8; m++ {
		premises = append(premises, CubeClause([]int{1, 2, 3}, m))
	}
	cubeVars := []int{1, 2}
	var lemmas [][]int
	// Each cube's worker reports UNSAT under its cube assumptions; its
	// refutation clause is RUP (propagating the negated clause makes
	// the two matching premises conflicting units on var 3).
	for i := 0; i < 4; i++ {
		lemmas = append(lemmas, CubeClause(cubeVars, i))
	}
	withTree := append(append([][]int{}, lemmas...), CubeTree(cubeVars)...)
	cert := NewCertificate(premises, nil, withTree)
	stats, err := cert.Verify()
	if err != nil {
		t.Fatalf("merged cube certificate rejected: %v", err)
	}
	if stats.Checked == 0 {
		t.Fatal("nothing checked")
	}

	// Without the resolution tree the empty clause is not RUP — the
	// cube clauses are all binary, so propagation never starts. The
	// tree is load-bearing, not decoration.
	if _, err := NewCertificate(premises, nil, lemmas).Verify(); err == nil {
		t.Fatal("certificate without the cube tree verified")
	}
}
