package drat

import "sync"

// This file extends the Recorder for cube-and-conquer CEGIS
// (internal/cube): several solver groups — one per cube of the
// candidate space — log into ONE Recorder through per-cube Namespaces,
// and a top-level resolution over the cube literals closes the merged
// proof so the ordinary backward checker (Certificate.Verify) replays
// the whole-space UNSAT verdict.
//
// The variable problem a Namespace solves: every cube's solver encodes
// the same sketch, so the variables allocated during setup (hole bits,
// structural constraints) are a deterministic common prefix with the
// same meaning everywhere. But as CEGIS progresses, each cube encodes
// its own projection circuits, and the Tseitin variables above the
// prefix diverge — variable 5000 in cube 2's solver and in cube 3's
// solver are different nodes. A Namespace maps everything above the
// common prefix into a fresh per-cube block of the merged certificate's
// variable space, leaving the prefix untouched, so all logs land in one
// consistent namespace and the cube-refutation clauses (which are over
// hole variables, inside the prefix) resolve across cubes.
//
// The merge is sound for the same reason portfolio sharing is: a lemma
// never depends on Solve assumptions (first-UIP learning resolves only
// on reason clauses), and internal/cube constrains each worker to its
// cube via assumptions, never clauses. So every lemma every cube learns
// is a consequence of the premises stamped before it, and the
// Recorder's mutex linearizes all cubes into one derivation order.

// Sink is the proof-logging interface the SAT backends write through:
// either a Recorder directly, or a Namespace of one (internal/cube).
type Sink interface {
	// Attach registers one more logging solver and returns the total.
	Attach() int
	// AddPremise logs one problem clause.
	AddPremise(lits []int)
	// AddLemma logs one learnt clause; the call order is the merged
	// derivation order, so callers stamp a lemma before publishing it.
	AddLemma(lits []int)
	// DeleteLemma logs a clause deletion (dropped when the underlying
	// Recorder is shared by several solvers).
	DeleteLemma(lits []int)
}

var (
	_ Sink = (*Recorder)(nil)
	_ Sink = (*Namespace)(nil)
)

// allocVar hands out a fresh merged-space variable above the common
// prefix (and above every variable previously allocated by any
// namespace of this recorder).
func (r *Recorder) allocVar(common int) int {
	r.mu.Lock()
	if r.nextVar < common {
		r.nextVar = common
	}
	r.nextVar++
	v := r.nextVar
	r.mu.Unlock()
	return v
}

// Namespace returns a Sink that logs into r, remapping every variable
// above common (1-based DIMACS, so "above" means > common) into a
// fresh block of the merged variable space. Variables ≤ common pass
// through unchanged. One Namespace per solver group; a Namespace is
// safe for concurrent use by the group's workers.
func (r *Recorder) Namespace(common int) *Namespace {
	return &Namespace{r: r, common: common, m: map[int]int{}}
}

// Namespace remaps one solver group's diverged variables into the
// shared Recorder. See the file comment.
type Namespace struct {
	r      *Recorder
	common int

	mu  sync.Mutex
	m   map[int]int
	buf []int
}

// remap is called with ns.mu held; the returned slice is ns.buf, valid
// until the next remap (the Recorder copies what it is handed).
func (n *Namespace) remap(lits []int) []int {
	n.buf = n.buf[:0]
	for _, l := range lits {
		v, neg := l, false
		if v < 0 {
			v, neg = -v, true
		}
		if v > n.common {
			mv, ok := n.m[v]
			if !ok {
				mv = n.r.allocVar(n.common)
				n.m[v] = mv
			}
			v = mv
		}
		if neg {
			v = -v
		}
		n.buf = append(n.buf, v)
	}
	return n.buf
}

// Attach registers one more solver on the underlying Recorder.
func (n *Namespace) Attach() int { return n.r.Attach() }

// AddPremise logs a problem clause, remapped into the merged space.
func (n *Namespace) AddPremise(lits []int) {
	n.mu.Lock()
	n.r.AddPremise(n.remap(lits))
	n.mu.Unlock()
}

// AddLemma logs a learnt clause, remapped into the merged space.
func (n *Namespace) AddLemma(lits []int) {
	n.mu.Lock()
	n.r.AddLemma(n.remap(lits))
	n.mu.Unlock()
}

// DeleteLemma forwards a deletion (the shared Recorder drops it when
// more than one solver is attached, which is always the case in a cube
// merge).
func (n *Namespace) DeleteLemma(lits []int) {
	n.mu.Lock()
	n.r.DeleteLemma(n.remap(lits))
	n.mu.Unlock()
}

// Export snapshots the log as plain clause lists: the premises, and
// the addition steps in stamp order (deletions are dropped — sound, it
// only leaves more clauses available — because the importer merges
// this log with others'). This is how a remote cube worker ships its
// derivation to the coordinator, which replays it into the master
// Recorder through a Namespace.
func (r *Recorder) Export() (premises, lemmas [][]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	premises = append([][]int(nil), r.premises...)
	for _, s := range r.steps {
		if !s.del {
			lemmas = append(lemmas, s.lits)
		}
	}
	return premises, lemmas
}

// CubeClause returns the refutation clause of cube index i over the
// given cube variables (positive DIMACS indices): the negation of the
// assignment in which bit j of i gives vars[j]'s polarity. When cube
// i's CEGIS worker exhausts its sub-space, this clause is RUP with
// respect to the merged log — the worker's UNSAT-under-cube-assumptions
// verdict means unit propagation from the cube literals conflicts — and
// is appended as a lemma.
func CubeClause(vars []int, i int) []int {
	out := make([]int, len(vars))
	for j, v := range vars {
		if i>>uint(j)&1 == 1 {
			out[j] = -v
		} else {
			out[j] = v
		}
	}
	return out
}

// CubeTree returns the interior clauses of the top-level resolution
// that closes a full 2^k cube split: for every proper prefix
// assignment (deepest first), the clause negating it. Each clause is
// RUP given the two clauses extending the prefix by one more variable,
// so appending the tree after all 2^k CubeClause lemmas makes the
// empty clause itself RUP (the two length-1 clauses are conflicting
// units), which is exactly what Certificate.Verify checks first.
func CubeTree(vars []int) [][]int {
	var out [][]int
	for d := len(vars) - 1; d >= 1; d-- {
		for m := 0; m < 1<<uint(d); m++ {
			out = append(out, CubeClause(vars[:d], m))
		}
	}
	return out
}
