// Package drat produces and checks clausal UNSAT certificates for the
// CDCL solver (internal/sat), so the CEGIS loop's "no candidate
// exists" verdicts — the load-bearing NO answers of the reproduction —
// carry machine-checked evidence instead of resting on the solver's
// correctness (the same role certificates play for SynRG-style
// quantified synthesis loops; see PAPERS.md).
//
// A Recorder collects, in one globally ordered log, the problem
// clauses (premises) and every clause the solver learns (lemmas). The
// order is the point: a sharing SAT portfolio has several workers
// learning concurrently, and a clause imported from the shared pool is
// only derivable from clauses stamped before it. Each worker logs its
// lemmas through the same Recorder, whose mutex assigns the global
// stamp at learn time — before the clause is published to the pool —
// so the merged log linearizes the portfolio's distributed derivation:
// every lemma is a reverse-unit-propagation (RUP) consequence of the
// premises plus earlier lemmas, regardless of which worker learned it
// and which workers later imported it.
//
// A Certificate snapshots the log together with the assumptions of one
// UNSAT Solve call. Verify replays it backward, DRAT-trim style: the
// empty clause is checked first (unit propagation over premises,
// assumption units, and all live lemmas must conflict), the clauses
// used in that conflict are marked core, and then the lemmas are
// unwound in reverse — each core lemma must itself be RUP with respect
// to the clauses before it, marking its own antecedents core in turn.
// Non-core lemmas are skipped entirely, which is what makes backward
// checking cheap: CEGIS solves learn thousands of lemmas, few of which
// feed the final conflict. Assumption units participate only in the
// empty-clause step; lemmas must derive from the formula alone, which
// is exactly the property that makes portfolio clause sharing sound.
//
// Deletion lines (the "D" of DRAT) are honored when replaying a
// single-solver proof and dropped by the Recorder when several solvers
// share it: a portfolio worker's reduceDB only removes the clause from
// that worker's database, while the merged log is the union of all
// workers', so applying one worker's deletions globally would be
// unsound. Ignoring deletions never admits a bogus proof — it only
// leaves more clauses available to propagation.
//
// Literals use the DIMACS convention throughout: variable v (0-based
// in the solver) appears as ±(v+1), and a clause is a plain []int.
package drat

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// op is one proof step: a lemma addition or a clause deletion.
type op struct {
	lits []int
	del  bool
}

// Recorder accumulates premises and proof steps under a mutex. One
// Recorder may be shared by every worker of a SAT portfolio; Attach
// counts the solvers logging into it.
type Recorder struct {
	mu       sync.Mutex
	premises [][]int
	steps    []op
	attached int
	lemmas   int
	// nextVar is the high-water mark of merged-space variables handed
	// out to Namespaces (see merge.go); 0 until the first allocation.
	nextVar int
}

// NewRecorder returns an empty proof log.
func NewRecorder() *Recorder { return &Recorder{} }

// Attach registers one more solver logging into the Recorder and
// reports how many are now attached. Deletions are honored only while
// exactly one solver is attached (see the package comment).
func (r *Recorder) Attach() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attached++
	return r.attached
}

// AddPremise logs one problem clause, exactly as given to the solver
// (before any normalization).
func (r *Recorder) AddPremise(lits []int) {
	cp := append([]int(nil), lits...)
	r.mu.Lock()
	r.premises = append(r.premises, cp)
	r.mu.Unlock()
}

// AddLemma logs one learnt clause. The stamp order of concurrent
// AddLemma calls is the merged derivation order; callers must log a
// lemma before making it visible to any other solver.
func (r *Recorder) AddLemma(lits []int) {
	cp := append([]int(nil), lits...)
	r.mu.Lock()
	r.steps = append(r.steps, op{lits: cp})
	r.lemmas++
	r.mu.Unlock()
}

// DeleteLemma logs a clause deletion. With more than one solver
// attached the deletion is dropped (a per-worker deletion is not a
// deletion from the merged database).
func (r *Recorder) DeleteLemma(lits []int) {
	r.mu.Lock()
	if r.attached <= 1 {
		cp := append([]int(nil), lits...)
		r.steps = append(r.steps, op{lits: cp, del: true})
	}
	r.mu.Unlock()
}

// NumLemmas returns the number of lemmas logged so far.
func (r *Recorder) NumLemmas() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lemmas
}

// NumPremises returns the number of problem clauses logged so far.
func (r *Recorder) NumPremises() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.premises)
}

// Certificate snapshots the log as a self-contained certificate that
// the premises together with the given assumption literals are
// unsatisfiable. The snapshot copies slice headers only; the recorded
// clauses are immutable after logging.
func (r *Recorder) Certificate(assumptions []int) *Certificate {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Certificate{
		Premises:    append([][]int(nil), r.premises...),
		Assumptions: append([]int(nil), assumptions...),
		steps:       append([]op(nil), r.steps...),
	}
}

// Certificate is a checkable UNSAT certificate: premises ∧ assumptions
// is unsatisfiable, witnessed by the lemma sequence.
type Certificate struct {
	Premises    [][]int
	Assumptions []int
	steps       []op
}

// NewCertificate builds a certificate directly from clause lists
// (tests and external proofs; lemmas are additions only).
func NewCertificate(premises [][]int, assumptions []int, lemmas [][]int) *Certificate {
	c := &Certificate{Premises: premises, Assumptions: assumptions}
	for _, l := range lemmas {
		c.steps = append(c.steps, op{lits: append([]int(nil), l...)})
	}
	return c
}

// NumLemmas returns the number of addition steps in the proof.
func (c *Certificate) NumLemmas() int {
	n := 0
	for _, s := range c.steps {
		if !s.del {
			n++
		}
	}
	return n
}

// NumPremises returns the number of problem clauses.
func (c *Certificate) NumPremises() int { return len(c.Premises) }

// Proof renders the proof steps in the standard DRAT text format
// (additions as "l1 l2 ... 0", deletions prefixed with "d").
func (c *Certificate) Proof() string {
	var b strings.Builder
	for _, s := range c.steps {
		if s.del {
			b.WriteString("d ")
		}
		for _, l := range s.lits {
			fmt.Fprintf(&b, "%d ", l)
		}
		b.WriteString("0\n")
	}
	return b.String()
}

// CheckStats reports the work a Verify call did.
type CheckStats struct {
	Lemmas       int // addition steps in the proof
	Checked      int // lemmas whose RUP check actually ran (core lemmas)
	Core         int // clauses marked as antecedents of some conflict
	Propagations int // literals assigned across all propagation runs
}

// Verify replays the certificate through the backward checker. It
// returns an error if the proof does not establish unsatisfiability of
// Premises ∧ Assumptions.
func (c *Certificate) Verify() (CheckStats, error) {
	k := newChecker()
	var stats CheckStats

	// Load premises (always live) and assumption units (live for the
	// empty-clause check only).
	for _, lits := range c.Premises {
		k.addClause(lits)
	}
	var assumptionIdx []int
	for _, a := range c.Assumptions {
		assumptionIdx = append(assumptionIdx, k.addClause([]int{a}))
	}
	// Load the proof: additions become live clauses, deletions
	// deactivate the most recent live clause with the same literals.
	type rstep struct {
		idx int
		del bool
	}
	live := map[string][]int{} // canonical lits -> stack of clause indices
	steps := make([]rstep, 0, len(c.steps))
	for _, s := range c.steps {
		key := canon(s.lits)
		if s.del {
			stack := live[key]
			if len(stack) == 0 {
				// Deleting a clause that is not live (e.g. a premise
				// already deleted, or sharing artifacts): ignore — the
				// clause stays available, which is sound.
				steps = append(steps, rstep{idx: -1, del: true})
				continue
			}
			idx := stack[len(stack)-1]
			live[key] = stack[:len(stack)-1]
			k.clauses[idx].active = false
			steps = append(steps, rstep{idx: idx, del: true})
			continue
		}
		stats.Lemmas++
		idx := k.addClause(s.lits)
		live[key] = append(live[key], idx)
		steps = append(steps, rstep{idx: idx})
	}

	// Empty-clause check: propagation over everything live must
	// conflict.
	confl := k.rup(nil)
	stats.Propagations += k.props
	if confl < 0 {
		k.reset()
		return stats, fmt.Errorf("drat: empty clause is not RUP (the proof does not close)")
	}
	k.mark(confl)
	k.reset()

	// Assumptions are out of bounds for lemma derivations.
	for _, idx := range assumptionIdx {
		k.clauses[idx].active = false
	}

	// Backward pass: unwind the proof, checking exactly the core
	// lemmas.
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		if s.del {
			if s.idx >= 0 {
				k.clauses[s.idx].active = true
			}
			continue
		}
		cl := &k.clauses[s.idx]
		cl.active = false
		if !cl.core {
			continue
		}
		stats.Checked++
		confl := k.rup(cl.lits)
		stats.Propagations += k.props
		if confl < 0 {
			k.reset()
			return stats, fmt.Errorf("drat: lemma %d (%v) is not RUP", stats.Lemmas-stats.Checked, cl.lits)
		}
		k.mark(confl)
		k.reset()
	}
	for _, cl := range k.clauses {
		if cl.core {
			stats.Core++
		}
	}
	return stats, nil
}

// canon returns a canonical key for a clause (sorted literals).
func canon(lits []int) string {
	s := append([]int(nil), lits...)
	sort.Ints(s)
	var b strings.Builder
	for _, l := range s {
		fmt.Fprintf(&b, "%d ", l)
	}
	return b.String()
}

// ------------------------------------------------------------ checker

// ccl is one clause of the checker's database.
type ccl struct {
	lits   []int // deduplicated; literals in DIMACS convention
	active bool
	core   bool
}

// checker is a miniature unit-propagation engine over DIMACS literals,
// independent of internal/sat by construction: two watched literals,
// full re-propagation per RUP query, reasons kept for core marking.
type checker struct {
	clauses []ccl
	units   []int     // indices of unit clauses
	watches [][]int32 // literal index -> watching clause indices
	assign  []int8    // var (0-based) -> 0 unknown, 1 true, -1 false
	reason  []int32   // var -> implying clause index, -1 for query literals
	trail   []int     // assigned literals, DIMACS
	props   int       // assignments made by the last propagate call
}

func newChecker() *checker { return &checker{} }

// lidx maps a DIMACS literal to a watch-list index.
func lidx(l int) int {
	if l > 0 {
		return 2 * (l - 1)
	}
	return 2*(-l-1) + 1
}

func (k *checker) ensureVar(v int) {
	for len(k.assign) < v {
		k.assign = append(k.assign, 0)
		k.reason = append(k.reason, -1)
		k.watches = append(k.watches, nil, nil)
	}
}

// addClause installs a clause (deduplicated; tautologies become inert)
// and returns its index.
func (k *checker) addClause(lits []int) int {
	out := make([]int, 0, len(lits))
	taut := false
	for _, l := range lits {
		if l == 0 {
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == -l {
				taut = true
			}
		}
		if !dup {
			out = append(out, l)
		}
		v := l
		if v < 0 {
			v = -v
		}
		k.ensureVar(v)
	}
	idx := len(k.clauses)
	if taut {
		// A tautology can never propagate or conflict; keep it inactive
		// so the watch lists never see it.
		k.clauses = append(k.clauses, ccl{lits: out, active: false})
		return idx
	}
	k.clauses = append(k.clauses, ccl{lits: out, active: true})
	switch len(out) {
	case 0:
		// An empty premise: propagate will report it as an immediate
		// conflict via the units list (treated as a falsified unit).
		k.units = append(k.units, idx)
	case 1:
		k.units = append(k.units, idx)
	default:
		k.watches[lidx(out[0])] = append(k.watches[lidx(out[0])], int32(idx))
		k.watches[lidx(out[1])] = append(k.watches[lidx(out[1])], int32(idx))
	}
	return idx
}

func (k *checker) value(l int) int8 {
	if l > 0 {
		return k.assign[l-1]
	}
	return -k.assign[-l-1]
}

// enqueue assigns l true with the given reason; it returns false if l
// is already false (conflict at the caller).
func (k *checker) enqueue(l int, reason int32) bool {
	switch k.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := l
	if v < 0 {
		v = -v
	}
	if l > 0 {
		k.assign[v-1] = 1
	} else {
		k.assign[v-1] = -1
	}
	k.reason[v-1] = reason
	k.trail = append(k.trail, l)
	k.props++
	return true
}

// rup runs unit propagation from scratch: root units, then the
// negation of the query clause (nil for the empty-clause check), then
// watched-literal propagation. It returns the index of a conflicting
// clause, or -1 if propagation terminates without conflict. The trail
// and reasons stay live (so the caller can mark the conflict's core)
// until reset is called.
func (k *checker) rup(query []int) int {
	k.props = 0
	return k.run(query)
}

// reset undoes the assignment left by rup.
func (k *checker) reset() {
	for _, l := range k.trail {
		v := l
		if v < 0 {
			v = -v
		}
		k.assign[v-1] = 0
		k.reason[v-1] = -1
	}
	k.trail = k.trail[:0]
}

func (k *checker) run(query []int) int {
	// Root units.
	for _, idx := range k.units {
		cl := &k.clauses[idx]
		if !cl.active {
			continue
		}
		if len(cl.lits) == 0 {
			return idx
		}
		if !k.enqueue(cl.lits[0], int32(idx)) {
			return idx
		}
	}
	// Negated query literals (RUP assumptions; reason -1).
	for _, l := range query {
		if !k.enqueue(-l, -1) {
			// ¬l already false means l is a root consequence; the
			// conflict clause is l's reason.
			v := l
			if v < 0 {
				v = -v
			}
			if r := k.reason[v-1]; r >= 0 {
				return int(r)
			}
			// Two query literals clash (tautological lemma): cannot
			// conflict, keep going.
			continue
		}
	}
	// Watched-literal propagation.
	for qh := 0; qh < len(k.trail); qh++ {
		p := k.trail[qh] // p is true; visit clauses watching ¬p
		ws := k.watches[lidx(-p)]
		n := 0
	nextWatch:
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			cl := &k.clauses[ci]
			if !cl.active {
				ws[n] = ci
				n++
				continue
			}
			// Ensure the false literal is lits[1].
			if cl.lits[0] == -p {
				cl.lits[0], cl.lits[1] = cl.lits[1], cl.lits[0]
			}
			first := cl.lits[0]
			if k.value(first) == 1 {
				ws[n] = ci
				n++
				continue
			}
			for j := 2; j < len(cl.lits); j++ {
				if k.value(cl.lits[j]) != -1 {
					cl.lits[1], cl.lits[j] = cl.lits[j], cl.lits[1]
					k.watches[lidx(cl.lits[1])] = append(k.watches[lidx(cl.lits[1])], ci)
					continue nextWatch
				}
			}
			ws[n] = ci
			n++
			if !k.enqueue(first, ci) {
				// Copy back the remaining watchers before reporting.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				k.watches[lidx(-p)] = ws[:n]
				return int(ci)
			}
		}
		k.watches[lidx(-p)] = ws[:n]
	}
	return -1
}

// mark walks the reason graph from the conflicting clause, marking
// every clause that fed the conflict as core. Must run while the rup
// trail (and its reasons) is still live.
func (k *checker) mark(confl int) {
	if confl < 0 {
		return
	}
	seen := map[int]bool{}
	queue := []int{confl}
	for len(queue) > 0 {
		ci := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if ci < 0 || seen[ci] {
			continue
		}
		seen[ci] = true
		k.clauses[ci].core = true
		for _, l := range k.clauses[ci].lits {
			v := l
			if v < 0 {
				v = -v
			}
			if r := k.reason[v-1]; r >= 0 {
				queue = append(queue, int(r))
			}
		}
	}
}
