package drat

import (
	"strings"
	"testing"
)

// The four binary clauses over {a, b} are UNSAT; (a) is RUP, and the
// empty clause follows. This is the smallest interesting RUP proof.
func unsat2() [][]int {
	return [][]int{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}
}

func TestHandProofVerifies(t *testing.T) {
	cert := NewCertificate(unsat2(), nil, [][]int{{1}})
	stats, err := cert.Verify()
	if err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	if stats.Lemmas != 1 || stats.Checked != 1 {
		t.Fatalf("stats = %+v, want 1 lemma checked", stats)
	}
}

func TestProofWithoutLemmasFails(t *testing.T) {
	cert := NewCertificate(unsat2(), nil, nil)
	if _, err := cert.Verify(); err == nil {
		t.Fatal("proof with no lemmas should not close (binary clauses alone do not propagate)")
	}
}

func TestNonRUPLemmaFails(t *testing.T) {
	// (1) is not RUP from a satisfiable premise set, and the bogus
	// "proof" needs it to close.
	cert := NewCertificate([][]int{{1, 2}, {-1, 2}, {-2, 3}}, nil, [][]int{{1}, {-3}, {2}, {-2}})
	if _, err := cert.Verify(); err == nil {
		t.Fatal("bogus proof of a satisfiable formula accepted")
	}
}

func TestAssumptionsOnlyCloseTheEmptyClause(t *testing.T) {
	// ¬a ∨ ¬b is satisfiable; under assumptions a, b it is not.
	cert := NewCertificate([][]int{{-1, -2}}, []int{1, 2}, nil)
	if _, err := cert.Verify(); err != nil {
		t.Fatalf("assumption UNSAT rejected: %v", err)
	}
	cert = NewCertificate([][]int{{-1, -2}}, nil, nil)
	if _, err := cert.Verify(); err == nil {
		t.Fatal("satisfiable formula certified without assumptions")
	}
}

func TestEmptyPremiseIsImmediatelyUNSAT(t *testing.T) {
	cert := NewCertificate([][]int{{}}, nil, nil)
	if _, err := cert.Verify(); err != nil {
		t.Fatalf("empty premise not recognized: %v", err)
	}
}

func TestDeletionsAreHonoredExclusively(t *testing.T) {
	r := NewRecorder()
	if n := r.Attach(); n != 1 {
		t.Fatalf("attach count %d", n)
	}
	for _, c := range unsat2() {
		r.AddPremise(c)
	}
	r.AddLemma([]int{1})
	r.DeleteLemma([]int{1})
	if _, err := r.Certificate(nil).Verify(); err == nil {
		t.Fatal("proof should fail once its only lemma is deleted")
	}

	// With a second solver attached, the deletion is dropped and the
	// proof closes again.
	r2 := NewRecorder()
	r2.Attach()
	r2.Attach()
	for _, c := range unsat2() {
		r2.AddPremise(c)
	}
	r2.AddLemma([]int{1})
	r2.DeleteLemma([]int{1})
	if _, err := r2.Certificate(nil).Verify(); err != nil {
		t.Fatalf("shared-recorder deletion should be dropped: %v", err)
	}
}

func TestNonCoreLemmasAreSkipped(t *testing.T) {
	// Lemma (3) is junk but RUP-irrelevant; backward checking must not
	// even look at it — it is not derivable, so a forward checker would
	// reject the proof.
	cert := NewCertificate(append(unsat2(), []int{3, 4}), nil, [][]int{{3}, {1}})
	stats, err := cert.Verify()
	if err != nil {
		t.Fatalf("proof rejected: %v", err)
	}
	if stats.Checked != 1 {
		t.Fatalf("checked %d lemmas, want 1 (the junk lemma must be skipped)", stats.Checked)
	}
}

func TestTautologyAndDuplicateLiterals(t *testing.T) {
	// Tautological and duplicated premises must not break propagation.
	premises := [][]int{{1, -1}, {2, 2}, {-2, -2}, {1, 2}, {-1, 2}}
	cert := NewCertificate(premises, nil, nil)
	if _, err := cert.Verify(); err != nil {
		t.Fatalf("units (2) and (¬2) should conflict immediately: %v", err)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes. Verified via a full
	// resolution-free route: every clause the recorder gets is checked
	// through the solver integration in internal/sat; here we only
	// exercise a hand-rolled unit-heavy instance.
	// x_{p,h} = p*n + h + 1, pigeons p in 0..n, holes h in 0..n-1.
	n := 3
	var premises [][]int
	for p := 0; p <= n; p++ {
		var c []int
		for h := 0; h < n; h++ {
			c = append(c, p*n+h+1)
		}
		premises = append(premises, c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				premises = append(premises, []int{-(p1*n + h + 1), -(p2*n + h + 1)})
			}
		}
	}
	// No lemma list: propagation alone cannot close PHP, so Verify must
	// reject — the positive PHP case is covered by the solver tests.
	if _, err := NewCertificate(premises, nil, nil).Verify(); err == nil {
		t.Fatal("PHP closed without any lemmas")
	}
}

func TestProofRendering(t *testing.T) {
	r := NewRecorder()
	r.Attach()
	r.AddPremise([]int{1, 2})
	r.AddLemma([]int{1})
	r.DeleteLemma([]int{1})
	got := r.Certificate(nil).Proof()
	want := "1 0\nd 1 0\n"
	if got != want {
		t.Fatalf("Proof() = %q, want %q", got, want)
	}
	if !strings.Contains(got, "d 1 0") {
		t.Fatal("deletion line missing")
	}
}
